// Benchmarks regenerating the paper's evaluation. One benchmark per
// table/figure cell: BenchmarkTable1, BenchmarkFigure1, BenchmarkFigure2,
// BenchmarkFigure3, plus the §5.1 protocol microbenchmarks and ablations
// of the design choices DESIGN.md calls out (dynamic group size bound,
// instrumentation overhead).
//
// Reported custom metrics:
//
//	sim-ms        simulated execution time of the run (the figures' bars)
//	msgs          protocol messages
//	useless-msgs  messages classified useless per §5.3
//	data-KB       diff payload
//	writers-mean  mean concurrent-writer cardinality (Figure 3)
//
// Wall-clock ns/op measures the simulator itself, not the paper's system.
package dsm

import (
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/tmk"
)

// mustNew builds a façade System for the micro benchmarks.
func mustNew(b *testing.B, opts ...Option) *System {
	b.Helper()
	sys, err := New(opts...)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

func benchCell(b *testing.B, e harness.Experiment, c harness.Config) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		cell, err := harness.Run(e, c, harness.Procs)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			st := cell.Stats
			b.ReportMetric(float64(cell.Time.Microseconds())/1000, "sim-ms")
			b.ReportMetric(float64(st.Messages.Total()), "msgs")
			b.ReportMetric(float64(st.Messages.Useless), "useless-msgs")
			b.ReportMetric(float64(st.TotalDataBytes())/1024, "data-KB")
		}
	}
}

// BenchmarkTable1 regenerates Table 1: per application, the simulated
// sequential time (sim-ms on the seq sub-benchmark) and the 8-processor
// run at the 4 KB unit; speedup = seq/par.
func BenchmarkTable1(b *testing.B) {
	for _, e := range harness.Table1() {
		e := e
		b.Run(e.App+"/seq", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cell, err := harness.Run(e, harness.Config{Label: "seq", Unit: 1}, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(cell.Time.Microseconds())/1000, "sim-ms")
			}
		})
		b.Run(e.App+"/8proc-4K", func(b *testing.B) {
			benchCell(b, e, harness.Config{Label: "4K", Unit: 1})
		})
	}
}

// BenchmarkFigure1 regenerates Figure 1 (Barnes, Ilink, TSP, Water at
// 4K/8K/16K/Dyn).
func BenchmarkFigure1(b *testing.B) {
	for _, e := range harness.Figure1() {
		for _, c := range harness.Configs() {
			e, c := e, c
			b.Run(fmt.Sprintf("%s/%s", e.App, c.Label), func(b *testing.B) {
				benchCell(b, e, c)
			})
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2 (the size-sensitive apps).
func BenchmarkFigure2(b *testing.B) {
	for _, e := range harness.Figure2() {
		for _, c := range harness.Configs() {
			e, c := e, c
			b.Run(fmt.Sprintf("%s-%s/%s", e.App, e.Dataset, c.Label), func(b *testing.B) {
				benchCell(b, e, c)
			})
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3: the false-sharing signatures at
// 4 KB and 16 KB, reported as the histogram's mean writer count.
func BenchmarkFigure3(b *testing.B) {
	for _, e := range harness.Figure3() {
		for _, c := range []harness.Config{{Label: "4K", Unit: 1}, {Label: "16K", Unit: 4}} {
			e, c := e, c
			b.Run(fmt.Sprintf("%s/%s", e.App, c.Label), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					cell, err := harness.Run(e, c, harness.Procs)
					if err != nil {
						b.Fatal(err)
					}
					sig := core.SignatureOf(cell.Stats)
					b.ReportMetric(sig.Mean(), "writers-mean")
					b.ReportMetric(float64(cell.Stats.Messages.Useless), "useless-msgs")
				}
			})
		}
	}
}

// --- §5.1 protocol microbenchmarks (simulated costs + real engine speed) ----

// BenchmarkMicroMessagePassing measures the basic barrier + one-page
// transfer path (cf. the paper's 296 µs RTT and 861 µs barrier).
func BenchmarkMicroMessagePassing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := mustNew(b, WithProcs(2), WithSegmentBytes(PageSize), WithCollection(true))
		res := sys.Run(func(p *Proc) {
			if p.ID() == 0 {
				for w := 0; w < 512; w++ {
					p.WriteF64(8*w, float64(w))
				}
			}
			p.Barrier()
			if p.ID() == 1 {
				for w := 0; w < 512; w++ {
					p.ReadF64(8 * w)
				}
			}
		})
		if i == b.N-1 {
			b.ReportMetric(float64(res.Time.Microseconds()), "sim-us")
		}
	}
}

// BenchmarkMicroLockTransfer measures a lock hand-off chain (cf. the
// paper's 374–574 µs lock acquisition).
func BenchmarkMicroLockTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := mustNew(b, WithProcs(4), WithSegmentBytes(PageSize), WithLocks(1), WithCollection(true))
		res := sys.Run(func(p *Proc) {
			for k := 0; k < 8; k++ {
				p.Lock(0)
				p.WriteI64(0, p.ReadI64(0)+1)
				p.Unlock(0)
			}
		})
		if i == b.N-1 {
			b.ReportMetric(float64(res.Time.Microseconds()), "sim-us")
		}
	}
}

// BenchmarkMicroBarrier measures back-to-back barriers (861 µs each on
// the paper's platform).
func BenchmarkMicroBarrier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := mustNew(b, WithProcs(8), WithSegmentBytes(PageSize))
		res := sys.Run(func(p *Proc) {
			for k := 0; k < 10; k++ {
				p.Barrier()
			}
		})
		if i == b.N-1 {
			b.ReportMetric(float64(res.Time.Microseconds())/10, "sim-us-per-barrier")
		}
	}
}

// --- ablations ---------------------------------------------------------------

// BenchmarkAblationGroupSize sweeps the dynamic aggregation bound
// (MaxGroupPages) on the Barnes workload: DESIGN.md calls the 4-page
// default out as matching the largest static unit.
func BenchmarkAblationGroupSize(b *testing.B) {
	e := harness.Figure1()[0] // Barnes
	for _, maxPages := range []int{1, 2, 4, 8} {
		maxPages := maxPages
		b.Run(fmt.Sprintf("maxGroup=%d", maxPages), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := e.Make(harness.Procs)
				res, err := apps.Run(w, tmk.Config{
					Procs: harness.Procs, Dynamic: true,
					MaxGroupPages: maxPages, Collect: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					b.ReportMetric(float64(res.Time.Microseconds())/1000, "sim-ms")
					b.ReportMetric(float64(res.Messages), "msgs")
				}
			}
		})
	}
}

// BenchmarkAblationInstrumentation measures the real-time cost of the
// §5.3 word-level instrumentation (Collect on/off) on Jacobi.
func BenchmarkAblationInstrumentation(b *testing.B) {
	e := harness.Figure2()[0]
	for _, collect := range []bool{false, true} {
		collect := collect
		b.Run(fmt.Sprintf("collect=%v", collect), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := e.Make(harness.Procs)
				if _, err := apps.Run(w, tmk.Config{
					Procs: harness.Procs, Collect: collect,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineAccessPath measures the raw shared-access rate of the
// simulator (fault-free reads), the figure that bounds how large a
// dataset the reproduction can afford.
func BenchmarkEngineAccessPath(b *testing.B) {
	sys := mustNew(b, WithProcs(1), WithSegmentBytes(1<<20), WithCollection(true))
	b.ResetTimer()
	var sink float64
	sys.Run(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			sink += p.ReadF64(8 * (i & 1023))
		}
	})
	_ = sink
}
