// Command dsmd is the DSM experiment service: a long-running HTTP
// control plane over the workload registry and the simulation engine.
// POST an experiment spec to /v1/run and get back the same JSON report
// dsmrun -json emits; identical concurrent specs coalesce into one
// engine execution, and completed cells are served from a
// content-addressed result cache (GET /v1/cells/{hash}).
//
// Configuration is by environment:
//
//	DSMD_ADDR                 listen address       (default :8080)
//	DSMD_CACHE_ENTRIES        result-cache LRU cap (default 1024)
//	DSMD_TRACE_ENTRIES        stored-capture LRU cap behind derived
//	                          serving (default 64)
//	DSMD_MAX_CONCURRENT_RUNS  engine run pool      (default GOMAXPROCS)
//	DSMD_DEBUG_ADDR           debug listener (pprof + flight recorder);
//	                          off when empty — the debug surface binds
//	                          separately so it is never exposed on the
//	                          service address
//	DSMD_FLIGHT_EVENTS        flight-recorder ring capacity in events
//	                          (default 65536; 0 disables the recorder)
//
// The service address also serves GET /metrics (Prometheus text). With
// DSMD_DEBUG_ADDR set, the debug address serves net/http/pprof under
// /debug/pprof/ and the flight-recorder window at GET /debug/trace
// (summarize with dsmtrace; it is a trailing window, not a replayable
// capture).
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight
// requests finish (bounded by a drain timeout), then the process exits.
//
// Example:
//
//	dsmd &
//	curl -s localhost:8080/v1/registry | head
//	curl -s -X POST localhost:8080/v1/run -d '{"app":"jacobi","network":"bus"}'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics | grep dsmd_cache
package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/expsvc"
	"repro/internal/trace"
)

const drainTimeout = 30 * time.Second

func main() {
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{
		Level: slog.LevelInfo,
	}))
	slog.SetDefault(logger)

	addr := getenv("DSMD_ADDR", ":8080")
	cacheEntries, err := getenvInt("DSMD_CACHE_ENTRIES", expsvc.DefaultCacheEntries)
	if err != nil {
		fatal(logger, err)
	}
	traceEntries, err := getenvInt("DSMD_TRACE_ENTRIES", expsvc.DefaultTraceEntries)
	if err != nil {
		fatal(logger, err)
	}
	maxRuns, err := getenvInt("DSMD_MAX_CONCURRENT_RUNS", 0) // 0 = GOMAXPROCS
	if err != nil {
		fatal(logger, err)
	}
	debugAddr := os.Getenv("DSMD_DEBUG_ADDR")
	flightEvents, err := getenvInt("DSMD_FLIGHT_EVENTS", 1<<16)
	if err != nil {
		fatal(logger, err)
	}

	var flight *trace.Ring
	if flightEvents > 0 {
		flight = trace.NewRing(flightEvents)
	}
	svc := expsvc.New(expsvc.Config{
		CacheEntries:      cacheEntries,
		TraceEntries:      traceEntries,
		MaxConcurrentRuns: maxRuns,
		Logger:            logger,
		Flight:            flight,
	})
	srv := &http.Server{
		Addr:              addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("dsmd listening",
		"addr", addr, "cache_entries", cacheEntries,
		"max_concurrent_runs", svc.Stats().MaxConcurrentRuns,
		"flight_events", flightEvents)

	var debugSrv *http.Server
	if debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              debugAddr,
			Handler:           debugMux(svc),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			// The debug listener is best-effort: its failure is logged but
			// does not take the service down.
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", debugAddr, "err", err)
			}
		}()
		logger.Info("dsmd debug listening", "addr", debugAddr)
	}

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(logger, err)
		}
	case <-ctx.Done():
		stop() // a second signal kills immediately
		logger.Info("signal received; draining", "timeout", drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fatal(logger, fmt.Errorf("drain: %w", err))
		}
		if debugSrv != nil {
			_ = debugSrv.Shutdown(shutdownCtx)
		}
		logger.Info("dsmd stopped")
	}
}

// debugMux builds the debug listener's handler: the stdlib pprof
// surface plus the engine flight recorder. Registered explicitly (not
// via the net/http/pprof DefaultServeMux side effect) so nothing leaks
// onto the service mux.
func debugMux(svc *expsvc.Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/trace", func(w http.ResponseWriter, r *http.Request) {
		ring := svc.Flight()
		if ring == nil {
			http.Error(w, "flight recorder disabled (DSMD_FLIGHT_EVENTS=0)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := ring.Dump(w); err != nil {
			// Headers are already out; all we can do is cut the stream.
			return
		}
	})
	return mux
}

func getenv(key, fallback string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return fallback
}

func getenvInt(key string, fallback int) (int, error) {
	v := os.Getenv(key)
	if v == "" {
		return fallback, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%s=%q: %w", key, v, err)
	}
	return n, nil
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("dsmd failed", "err", err)
	os.Exit(1)
}
