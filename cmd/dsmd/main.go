// Command dsmd is the DSM experiment service: a long-running HTTP
// control plane over the workload registry and the simulation engine.
// POST an experiment spec to /v1/run and get back the same JSON report
// dsmrun -json emits; identical concurrent specs coalesce into one
// engine execution, and completed cells are served from a
// content-addressed result cache (GET /v1/cells/{hash}).
//
// Configuration is by environment:
//
//	DSMD_ADDR                 listen address       (default :8080)
//	DSMD_CACHE_ENTRIES        result-cache LRU cap (default 1024)
//	DSMD_MAX_CONCURRENT_RUNS  engine run pool      (default GOMAXPROCS)
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight
// requests finish (bounded by a drain timeout), then the process exits.
//
// Example:
//
//	dsmd &
//	curl -s localhost:8080/v1/registry | head
//	curl -s -X POST localhost:8080/v1/run -d '{"app":"jacobi","network":"bus"}'
//	curl -s localhost:8080/v1/stats
package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/expsvc"
)

const drainTimeout = 30 * time.Second

func main() {
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{
		Level: slog.LevelInfo,
	}))
	slog.SetDefault(logger)

	addr := getenv("DSMD_ADDR", ":8080")
	cacheEntries, err := getenvInt("DSMD_CACHE_ENTRIES", expsvc.DefaultCacheEntries)
	if err != nil {
		fatal(logger, err)
	}
	maxRuns, err := getenvInt("DSMD_MAX_CONCURRENT_RUNS", 0) // 0 = GOMAXPROCS
	if err != nil {
		fatal(logger, err)
	}

	svc := expsvc.New(expsvc.Config{
		CacheEntries:      cacheEntries,
		MaxConcurrentRuns: maxRuns,
		Logger:            logger,
	})
	srv := &http.Server{
		Addr:              addr,
		Handler:           svc,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("dsmd listening",
		"addr", addr, "cache_entries", cacheEntries,
		"max_concurrent_runs", svc.Stats().MaxConcurrentRuns)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(logger, err)
		}
	case <-ctx.Done():
		stop() // a second signal kills immediately
		logger.Info("signal received; draining", "timeout", drainTimeout)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fatal(logger, fmt.Errorf("drain: %w", err))
		}
		logger.Info("dsmd stopped")
	}
}

func getenv(key, fallback string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return fallback
}

func getenvInt(key string, fallback int) (int, error) {
	v := os.Getenv(key)
	if v == "" {
		return fallback, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%s=%q: %w", key, v, err)
	}
	return n, nil
}

func fatal(logger *slog.Logger, err error) {
	logger.Error("dsmd failed", "err", err)
	os.Exit(1)
}
