// Command dsmrun executes one application × dataset × configuration and
// prints its full communication breakdown — the per-cell view behind
// dsmbench's figures.
//
// Usage:
//
//	dsmrun -app MGS -unit 2          # MGS at the 8 KB consistency unit
//	dsmrun -app Jacobi -dynamic      # dynamic aggregation
//	dsmrun -list                     # available application/dataset pairs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
)

func experiments() []harness.Experiment {
	seen := map[string]bool{}
	var out []harness.Experiment
	for _, e := range append(harness.Figure1(), harness.Figure2()...) {
		key := e.App + "/" + e.Dataset
		if !seen[key] {
			seen[key] = true
			out = append(out, e)
		}
	}
	return out
}

func main() {
	app := flag.String("app", "", "application name (see -list)")
	dataset := flag.String("dataset", "", "dataset (optional; first match wins)")
	unit := flag.Int("unit", 1, "consistency unit in 4 KB pages (1, 2, 4)")
	dynamic := flag.Bool("dynamic", false, "use dynamic aggregation")
	procs := flag.Int("procs", harness.Procs, "number of processors")
	list := flag.Bool("list", false, "list application/dataset pairs")
	flag.Parse()

	es := experiments()
	if *list {
		for _, e := range es {
			fmt.Printf("%-8s  %-22s (paper: %s)\n", e.App, e.Dataset, e.Paper)
		}
		return
	}
	if *app == "" {
		flag.Usage()
		os.Exit(2)
	}
	for _, e := range es {
		if !strings.EqualFold(e.App, *app) {
			continue
		}
		if *dataset != "" && !strings.Contains(e.Dataset, *dataset) {
			continue
		}
		label := fmt.Sprintf("%dK", 4**unit)
		if *dynamic {
			label = "Dyn"
		}
		cell, err := harness.Run(e,
			harness.Config{Label: label, Unit: *unit, Dynamic: *dynamic}, *procs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsmrun:", err)
			os.Exit(1)
		}
		st := cell.Stats
		fmt.Printf("%s %s  [%s, %d procs]  (verified against sequential reference)\n",
			e.App, e.Dataset, label, *procs)
		fmt.Printf("  simulated time        %s s\n", fmt.Sprintf("%.3f", cell.Time.Seconds()))
		fmt.Printf("  messages              %d (%d useful, %d useless)\n",
			st.Messages.Total(), st.Messages.Useful, st.Messages.Useless)
		fmt.Printf("  diff data bytes       %d (%d useful, %d useless, %d piggybacked useless)\n",
			st.TotalDataBytes(), st.UsefulBytes, st.UselessBytes, st.PiggybackedBytes)
		fmt.Printf("  wire bytes            %d\n", st.TotalWireBytes)
		fmt.Printf("  faults                %d (%d needed no fetch)\n", st.Faults, st.ZeroFetchFaults)
		fmt.Printf("  exchanges             %d\n", st.Exchanges)
		return
	}
	fmt.Fprintf(os.Stderr, "dsmrun: no experiment matches -app %q -dataset %q\n", *app, *dataset)
	os.Exit(1)
}
