// Command dsmrun executes any application × dataset × configuration ×
// trials combination from the workload registry and prints the full
// communication breakdown — the per-cell view behind dsmbench's
// figures. Every run is verified against the application's sequential
// reference.
//
// Usage:
//
//	dsmrun -app MGS -unit 2                       # MGS at the 8 KB unit
//	dsmrun -app Jacobi -dynamic                   # dynamic aggregation
//	dsmrun -app jacobi -dataset 1024 -unit 2 -trials 3 -json
//	dsmrun -app jacobi -protocol home             # home-based LRC engine
//	dsmrun -app jacobi -protocol adaptive         # per-unit homeless/home hybrid
//	dsmrun -app jacobi -network bus               # contended shared-medium Ethernet
//	dsmrun -app jacobi -protocol home -placement firsttouch   # first-writer homes
//	dsmrun -app jacobi -protocol home -placement migrate      # JIAJIA-style home migration
//	dsmrun -list                                  # registered workloads + protocols + networks + placements
//	dsmrun -list -json                            # the same registries, machine-readable (= GET /v1/registry on dsmd)
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/apps"
	_ "repro/internal/apps/all" // populate the workload registry
	"repro/internal/expsvc"
	"repro/internal/harness"
	"repro/internal/netmodel"
	"repro/internal/prof"
	"repro/internal/tmk"
	"repro/internal/trace"
)

func main() {
	app := flag.String("app", "", "application name (see -list)")
	dataset := flag.String("dataset", "", "dataset: exact name, substring, or small/medium/large (empty = app default)")
	unit := flag.Int("unit", 1, "consistency unit in 4 KB pages (paper: 1, 2, 4)")
	dynamic := flag.Bool("dynamic", false, "use dynamic aggregation")
	protocol := flag.String("protocol", tmk.DefaultProtocol,
		"coherence protocol: "+strings.Join(tmk.ProtocolNames(), " or "))
	network := flag.String("network", netmodel.Default,
		"interconnect timing model: "+strings.Join(netmodel.Names(), ", "))
	placement := flag.String("placement", tmk.DefaultPlacement,
		"home-placement policy: "+strings.Join(tmk.PlacementNames(), ", "))
	scale := flag.String("scale", tmk.DefaultScale,
		"engine scaling representation: "+tmk.ScaleSparse+" or "+tmk.ScaleDense+" (reference)")
	barrier := flag.String("barrier", tmk.DefaultBarrier,
		"barrier fabric: "+strings.Join(tmk.BarrierNames(), " or "))
	barrierRadix := flag.Int("barrier-radix", tmk.DefaultBarrierRadix,
		"tree barrier fan-in (children per node); ignored by central")
	procs := flag.Int("procs", harness.Procs, "number of processors")
	trials := flag.Int("trials", 1, "independent trials on one reused system")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON")
	traceOut := flag.String("trace", "", "capture a JSONL run trace to FILE (analyze/replay with dsmtrace)")
	list := flag.Bool("list", false, "list registered application/dataset pairs")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to FILE (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an allocation profile to FILE at exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fail(err)
	}
	defer stopProf()

	if *list {
		if *jsonOut {
			// The same document the service's GET /v1/registry serves —
			// one shared helper, so the two surfaces cannot drift.
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(expsvc.Registry()); err != nil {
				fail(err)
			}
			return
		}
		for _, e := range apps.Entries() {
			paper := ""
			if e.Paper != "" {
				paper = fmt.Sprintf(" (paper: %s)", e.Paper)
			}
			fmt.Printf("%-8s  %-22s%s\n", e.App, e.Dataset, paper)
		}
		fmt.Printf("\nprotocols:  %s (default %s)\n",
			strings.Join(tmk.ProtocolNames(), ", "), tmk.DefaultProtocol)
		fmt.Printf("networks:   %s (default %s)\n",
			strings.Join(netmodel.Names(), ", "), netmodel.Default)
		fmt.Printf("placements: %s (default %s)\n",
			strings.Join(tmk.PlacementNames(), ", "), tmk.DefaultPlacement)
		fmt.Printf("barriers:   %s (default %s)\n",
			strings.Join(tmk.BarrierNames(), ", "), tmk.DefaultBarrier)
		fmt.Printf("scales:     %s, %s (default %s)\n",
			tmk.ScaleSparse, tmk.ScaleDense, tmk.DefaultScale)
		return
	}
	if *app == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *procs <= 0 {
		fail(fmt.Errorf("-procs must be positive (got %d)", *procs))
	}
	if *unit <= 0 {
		fail(fmt.Errorf("-unit must be at least 1 page (got %d)", *unit))
	}
	e, ok := apps.Lookup(*app, *dataset)
	if !ok {
		fail(fmt.Errorf("no registered workload matches -app %q -dataset %q (try -list)", *app, *dataset))
	}

	cfg := tmk.Config{
		Procs: *procs, UnitPages: *unit, Dynamic: *dynamic,
		Protocol: *protocol, Network: *network, Placement: *placement,
		Scale: *scale, Barrier: *barrier, BarrierRadix: *barrierRadix,
		Collect: true,
	}
	var traceFile *os.File
	var traceBuf *bufio.Writer
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		traceFile = f
		traceBuf = bufio.NewWriter(f)
		tw := trace.NewWriter(traceBuf)
		tw.SetLabel(e.App, e.Dataset)
		cfg.Trace = tw
	}
	// Ctrl-C (or SIGTERM) stops the remaining trials instead of running
	// the cell to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ts, err := apps.RunTrialsContext(ctx, e.Make(*procs), cfg, *trials)
	if err != nil {
		fail(err)
	}
	if cfg.Trace != nil {
		// A trace that could not be fully written must fail the run, not
		// pass silently as a truncated file that replays to wrong totals.
		if err := cfg.Trace.Close(); err != nil {
			fail(err)
		}
		if err := traceBuf.Flush(); err != nil {
			fail(err)
		}
		if err := traceFile.Close(); err != nil {
			fail(err)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(harness.TrialsReport(e.App, e.Dataset, e.Paper, cfg, ts)); err != nil {
			fail(err)
		}
		return
	}

	label := harness.LabelFor(*unit, *dynamic)
	last := ts.Trials[len(ts.Trials)-1]
	st := last.Stats
	fmt.Printf("%s %s  [%s, %s, %s net, %s homes, %d procs, %d trial(s)]  (verified against sequential reference)\n",
		e.App, e.Dataset, label, cfg.ProtocolName(), cfg.NetworkName(), cfg.PlacementName(), *procs, len(ts.Trials))
	fmt.Printf("  simulated time        %.3f s (min %.3f, mean %.3f, max %.3f)\n",
		last.Time.Seconds(), ts.MinTime.Seconds(), ts.MeanTime.Seconds(), ts.MaxTime.Seconds())
	fmt.Printf("  network queue delay   %.3f s cumulative\n", last.QueueDelay.Seconds())
	fmt.Printf("  messages              %d (%d useful, %d useless)\n",
		st.Messages.Total(), st.Messages.Useful, st.Messages.Useless)
	fmt.Printf("  diff data bytes       %d (%d useful, %d useless, %d piggybacked useless)\n",
		st.TotalDataBytes(), st.UsefulBytes, st.UselessBytes, st.PiggybackedBytes)
	fmt.Printf("  wire bytes            %d\n", st.TotalWireBytes)
	fmt.Printf("  faults                %d (%d needed no fetch)\n", st.Faults, st.ZeroFetchFaults)
	fmt.Printf("  exchanges             %d\n", st.Exchanges)
	if cfg.ProtocolName() == "adaptive" {
		fmt.Printf("  protocol switches     %d (%d unit(s) switched, %d home at end)\n",
			last.ProtocolSwitches, last.SwitchedUnits, last.HomeUnits)
	}
	if cfg.PlacementName() != tmk.DefaultPlacement {
		fmt.Printf("  rehomes               %d (%d bytes of home state moved on the wire)\n",
			last.Rehomes, last.RehomeBytes)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dsmrun:", err)
	os.Exit(1)
}
