// Command dsmsig prints the false-sharing signature — the histogram of
// concurrent writers seen at access faults (§3) — of one application at
// one or more consistency-unit sizes, plus the paper's shift verdict.
//
// Usage:
//
//	dsmsig -app MGS                 # signatures at 4K and 16K + verdict
//	dsmsig -app Water -units 1,2,4
//	dsmsig -app jacobi -dataset 1024
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/apps"
	_ "repro/internal/apps/all" // populate the workload registry
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/netmodel"
	"repro/internal/tmk"
)

func main() {
	app := flag.String("app", "", "application name")
	dataset := flag.String("dataset", "", "dataset (exact or substring; empty = app default)")
	units := flag.String("units", "1,4", "comma-separated unit sizes in pages")
	procs := flag.Int("procs", harness.Procs, "number of processors")
	protocol := flag.String("protocol", tmk.DefaultProtocol,
		"coherence protocol: "+strings.Join(tmk.ProtocolNames(), " or "))
	network := flag.String("network", netmodel.Default,
		"interconnect timing model: "+strings.Join(netmodel.Names(), ", "))
	placement := flag.String("placement", tmk.DefaultPlacement,
		"home-placement policy: "+strings.Join(tmk.PlacementNames(), ", "))
	flag.Parse()

	if *app == "" {
		flag.Usage()
		os.Exit(2)
	}
	entry, ok := apps.Lookup(*app, *dataset)
	if !ok {
		fmt.Fprintf(os.Stderr, "dsmsig: no registered workload matches -app %q -dataset %q\n", *app, *dataset)
		os.Exit(1)
	}
	e := &harness.Experiment{App: entry.App, Dataset: entry.Dataset, Paper: entry.Paper, Make: entry.Make}

	var sigs []core.Signature
	var labels []string
	for _, us := range strings.Split(*units, ",") {
		u, err := strconv.Atoi(strings.TrimSpace(us))
		if err != nil || (u != 1 && u != 2 && u != 4) {
			fmt.Fprintf(os.Stderr, "dsmsig: bad unit %q (want 1, 2, or 4)\n", us)
			os.Exit(1)
		}
		label := fmt.Sprintf("%dK", 4*u)
		cell, err := harness.Run(*e, harness.Config{
			Label: label, Unit: u,
			Protocol: *protocol, Network: *network, Placement: *placement,
		}, *procs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dsmsig:", err)
			os.Exit(1)
		}
		sig := core.SignatureOf(cell.Stats)
		sigs = append(sigs, sig)
		labels = append(labels, label)

		fmt.Printf("%s %s  [%s]\n", e.App, e.Dataset, label)
		for _, k := range sig.Buckets() {
			bar := strings.Repeat("#", int(sig[k]*50+0.5))
			fmt.Printf("  %d writers  %5.1f%%  %s\n", k, 100*sig[k], bar)
		}
		fmt.Printf("  mean concurrent writers: %.2f\n\n", sig.Mean())
	}

	if len(sigs) >= 2 {
		shift := core.Shift(sigs[0], sigs[len(sigs)-1])
		fmt.Printf("signature shift %s → %s: %+.2f writers (%s)\n",
			labels[0], labels[len(labels)-1], shift, core.Classify(shift))
		fmt.Println("paper's rule: a sizable rightward shift predicts a performance loss at the larger unit.")
	}
}
