// Command dsmbench regenerates the paper's evaluation: Table 1 and
// Figures 1–3, plus the §5.1 platform-calibration microbenchmarks.
//
// Usage:
//
//	dsmbench -all            # everything (what EXPERIMENTS.md records)
//	dsmbench -table 1        # sequential times and 8-processor speedups
//	dsmbench -figure 1       # Barnes/Ilink/TSP/Water breakdowns
//	dsmbench -figure 2       # size-sensitive apps
//	dsmbench -figure 3       # false-sharing signatures at 4K and 16K
//	dsmbench -micro          # simulated platform costs vs the paper's
//
// Every cell is verified against the application's sequential reference
// before its numbers are printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	table := flag.Int("table", 0, "regenerate Table N (1)")
	figure := flag.Int("figure", 0, "regenerate Figure N (1, 2, or 3)")
	micro := flag.Bool("micro", false, "print the §5.1 platform calibration")
	all := flag.Bool("all", false, "regenerate everything")
	flag.Parse()

	if !*all && *table == 0 && *figure == 0 && !*micro {
		flag.Usage()
		os.Exit(2)
	}
	if *micro || *all {
		fmt.Println("=== §5.1 platform calibration ===")
		harness.RenderMicro(os.Stdout)
		fmt.Println()
	}
	if *table == 1 || *all {
		fmt.Println("=== Table 1: datasets, sequential (simulated) time, 8-processor speedup at 4 KB ===")
		rows, err := harness.RunTable1(harness.Table1())
		check(err)
		harness.RenderTable1(os.Stdout, rows)
		fmt.Println()
	}
	if *figure == 1 || *all {
		fmt.Println("=== Figure 1: execution time, messages, data (normalized to 4 KB) ===")
		for _, e := range harness.Figure1() {
			_, err := harness.RunAndRenderFigure(os.Stdout, e)
			check(err)
		}
	}
	if *figure == 2 || *all {
		fmt.Println("=== Figure 2: size-sensitive applications (normalized to 4 KB) ===")
		for _, e := range harness.Figure2() {
			_, err := harness.RunAndRenderFigure(os.Stdout, e)
			check(err)
		}
	}
	if *figure == 3 || *all {
		fmt.Println("=== Figure 3: false-sharing signatures (4 KB vs 16 KB) ===")
		for _, e := range harness.Figure3() {
			cells := map[string]harness.Cell{}
			for _, label := range []string{"4K", "16K"} {
				unit := 1
				if label == "16K" {
					unit = 4
				}
				c, err := harness.Run(e, harness.Config{Label: label, Unit: unit}, harness.Procs)
				check(err)
				cells[label] = c
			}
			harness.RenderSignature(os.Stdout, e, cells)
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmbench:", err)
		os.Exit(1)
	}
}
