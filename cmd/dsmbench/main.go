// Command dsmbench regenerates the paper's evaluation: Table 1 and
// Figures 1–3, plus the §5.1 platform-calibration microbenchmarks.
//
// Usage:
//
//	dsmbench -all            # everything (what EXPERIMENTS.md records)
//	dsmbench -all -json      # the same, as one machine-readable document
//	dsmbench -table 1        # sequential times and 8-processor speedups
//	dsmbench -figure 1       # Barnes/Ilink/TSP/Water breakdowns
//	dsmbench -figure 2       # size-sensitive apps
//	dsmbench -figure 3       # false-sharing signatures at 4K and 16K
//	dsmbench -micro          # simulated platform costs vs the paper's
//	dsmbench -protocols      # homeless vs home-based LRC, per application
//	dsmbench -networks       # network sensitivity: every app across every interconnect model
//	dsmbench -placements     # home placement: every app × placement policy × {home, adaptive}, ideal + bus
//	dsmbench -all -protocol home   # regenerate everything on home-based LRC
//	dsmbench -all -network switch  # regenerate everything on the contended switch model
//	dsmbench -all -placement firsttouch  # regenerate everything with first-writer homes
//	dsmbench -baseline -json       # perf-trajectory seed: every app's small dataset
//	dsmbench -check-baseline BENCH_baseline.json  # regression gate: exit non-zero on >2% time drift
//	dsmbench -scaling -json        # 8→1024-proc wall-clock curves: dense/central vs sparse/tree
//	dsmbench -check-scaling BENCH_scaling.json    # scaling gate: the sparse win must still reproduce
//
// Every cell is verified against the application's sequential reference
// before its numbers are printed. With -json the text tables are
// replaced by a single JSON document (the §5.1 calibration table is
// text-only and skipped).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/apps"
	_ "repro/internal/apps/all" // populate the workload registry
	_ "repro/internal/expsvc"   // canonical cell keys for sweep dedup
	"repro/internal/harness"
	"repro/internal/netmodel"
	"repro/internal/prof"
	"repro/internal/tmk"
	"repro/internal/trace"
)

// document is the -json output: only the requested sections are set.
type document struct {
	Table1     []harness.Table1RowJSON           `json:"table1,omitempty"`
	Figure1    []harness.ExperimentJSON          `json:"figure1,omitempty"`
	Figure2    []harness.ExperimentJSON          `json:"figure2,omitempty"`
	Figure3    []harness.ExperimentJSON          `json:"figure3,omitempty"`
	Protocols  []harness.ProtocolComparisonJSON  `json:"protocols,omitempty"`
	Networks   []harness.NetworkComparisonJSON   `json:"networks,omitempty"`
	Placements []harness.PlacementComparisonJSON `json:"placements,omitempty"`
	Baseline   []harness.CellJSON                `json:"baseline,omitempty"`
	Perf       *perfJSON                         `json:"perf,omitempty"`
	// Scaling carries the -scaling sweep: per-protocol × per-network
	// wall-clock curves at n ∈ {8, 64, 256, 1024} for the dense/central
	// reference vs the sparse/tree configuration, plus the GOMAXPROCS
	// the generating host ran with (wall ratios are host-independent;
	// absolute wall seconds are not).
	Scaling           []harness.ScalingCurveJSON `json:"scaling,omitempty"`
	ScalingGOMAXPROCS int                        `json:"scaling_gomaxprocs,omitempty"`
}

// perfJSON records how long the -networks sweep took on the machine that
// generated the document, normalized by a fixed single-core calibration
// loop so the number is comparable across hosts. The committed
// BENCH_before.json / BENCH_after.json pair carries the before/after
// wall-clock claim; -check-baseline gates on networks_norm.
type perfJSON struct {
	NetworksWallSeconds float64 `json:"networks_wall_seconds"`
	CalibSeconds        float64 `json:"calib_seconds"`
	NetworksNorm        float64 `json:"networks_norm"`
	GOMAXPROCS          int     `json:"gomaxprocs"`
}

func main() {
	table := flag.Int("table", 0, "regenerate Table N (1)")
	figure := flag.Int("figure", 0, "regenerate Figure N (1, 2, or 3)")
	micro := flag.Bool("micro", false, "print the §5.1 platform calibration (text only)")
	protocols := flag.Bool("protocols", false, "compare coherence protocols per application (4 KB units)")
	networks := flag.Bool("networks", false, "network sensitivity: every application across every registered interconnect model")
	realNetworks := flag.Bool("real-networks", false,
		"force every -networks cell through the engine (disable replay-derived cells)")
	checkSpeedup := flag.String("check-speedup", "",
		"run the replay-derived -networks sweep and fail unless it beats the committed engine-only FILE (BENCH_before.json) by the speedup floor")
	placements := flag.Bool("placements", false, "home placement: every application across every placement policy for the home and adaptive protocols, on ideal and bus")
	baseline := flag.Bool("baseline", false, "perf-trajectory seed: every application's small dataset under the default configuration")
	checkBaseline := flag.String("check-baseline", "",
		"diff the current -baseline run against the committed FILE and exit non-zero on >2% time regression")
	scaling := flag.Bool("scaling", false,
		"scaling sweep: jacobi/large wall-clock curves at 8–1024 procs, dense/central vs sparse/tree, per protocol × network")
	checkScaling := flag.String("check-scaling", "",
		"validate the committed scaling FILE's ≥5× claim and re-run its best 256-proc cell; exit non-zero if the sparse win is gone")
	derivedScaling := flag.Bool("derived-scaling", false,
		"with -scaling: derive network-axis cells by trace replay instead of engine runs (derived points' wall clocks measure the replay, not the engine)")
	protocol := flag.String("protocol", tmk.DefaultProtocol,
		"coherence protocol for tables/figures: "+strings.Join(tmk.ProtocolNames(), " or "))
	network := flag.String("network", netmodel.Default,
		"interconnect timing model for tables/figures: "+strings.Join(netmodel.Names(), ", "))
	placement := flag.String("placement", tmk.DefaultPlacement,
		"home-placement policy for tables/figures: "+strings.Join(tmk.PlacementNames(), ", "))
	all := flag.Bool("all", false, "regenerate everything")
	jsonOut := flag.Bool("json", false, "emit one machine-readable JSON document")
	traceOut := flag.String("trace", "", "with -baseline: capture a JSONL trace of the suite's runs to FILE (one run id per app)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to FILE (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an allocation profile to FILE at exit")
	flag.Parse()

	// The sweeps are batch jobs with a small live heap (one cell per
	// worker) and heavy short-lived allocation (twins, diffs, page
	// materialization — ~0.5 GB churn per -networks sweep), so the
	// default GOGC=100 spends a sizable slice of wall clock collecting
	// a heap that is mostly garbage. Trade headroom for wall time
	// unless the operator chose a setting.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(400)
	}

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		check(err)
	}
	defer stopProf()

	if *checkBaseline != "" {
		code := runCheckBaseline(*checkBaseline)
		stopProf()
		os.Exit(code)
	}
	if *checkScaling != "" {
		code := runCheckScaling(*checkScaling)
		stopProf()
		os.Exit(code)
	}
	if *checkSpeedup != "" {
		code := runCheckSpeedup(*checkSpeedup)
		stopProf()
		os.Exit(code)
	}
	if *realNetworks {
		harness.SetNetworkDerivation(false)
	}
	if !*all && *table == 0 && *figure == 0 && !*micro && !*protocols && !*networks && !*placements && !*baseline && !*scaling {
		flag.Usage()
		os.Exit(2)
	}
	if !tmk.KnownProtocol(*protocol) {
		check(fmt.Errorf("unknown protocol %q (known: %s)",
			*protocol, strings.Join(tmk.ProtocolNames(), ", ")))
	}
	if !netmodel.Known(*network) {
		check(fmt.Errorf("unknown network model %q (known: %s)",
			*network, strings.Join(netmodel.Names(), ", ")))
	}
	if !tmk.KnownPlacement(*placement) {
		check(fmt.Errorf("unknown placement %q (known: %s)",
			*placement, strings.Join(tmk.PlacementNames(), ", ")))
	}
	if *table != 0 && *table != 1 {
		check(fmt.Errorf("unknown table %d (only Table 1 exists)", *table))
	}
	if *traceOut != "" && !*baseline {
		// The sweeps run cells concurrently on the shared scheduler;
		// only the sequential baseline suite produces a clean capture.
		check(fmt.Errorf("-trace requires -baseline"))
	}
	if *figure < 0 || *figure > 3 {
		check(fmt.Errorf("unknown figure %d (want 1, 2, or 3)", *figure))
	}
	var doc document
	text := !*jsonOut

	if *micro || *all {
		if text {
			fmt.Println("=== §5.1 platform calibration ===")
			harness.RenderMicro(os.Stdout)
			fmt.Println()
		} else if *micro {
			fmt.Fprintln(os.Stderr, "dsmbench: the §5.1 calibration table is text-only; omitted from -json output")
		}
	}
	if *table == 1 || *all {
		rows, err := harness.RunTable1(harness.Table1(), *protocol, *network, *placement)
		check(err)
		if text {
			fmt.Println("=== Table 1: datasets, sequential (simulated) time, 8-processor speedup at 4 KB ===")
			harness.RenderTable1(os.Stdout, rows)
			fmt.Println()
		} else {
			for _, r := range rows {
				doc.Table1 = append(doc.Table1, harness.Table1RowJSON{
					App:        r.App,
					Dataset:    r.Dataset,
					SeqSeconds: r.SeqTime.Seconds(),
					ParSeconds: r.ParTime.Seconds(),
					Speedup:    r.Speedup,
				})
			}
		}
	}
	if *figure == 1 || *all {
		if text {
			fmt.Println("=== Figure 1: execution time, messages, data (normalized to 4 KB) ===")
		}
		doc.Figure1 = runFigure(harness.Figure1(), configLabels(), *protocol, *network, *placement, text, harness.RenderFigure)
	}
	if *figure == 2 || *all {
		if text {
			fmt.Println("=== Figure 2: size-sensitive applications (normalized to 4 KB) ===")
		}
		doc.Figure2 = runFigure(harness.Figure2(), configLabels(), *protocol, *network, *placement, text, harness.RenderFigure)
	}
	if *figure == 3 || *all {
		if text {
			fmt.Println("=== Figure 3: false-sharing signatures (4 KB vs 16 KB) ===")
		}
		doc.Figure3 = runFigure(harness.Figure3(), []string{"4K", "16K"}, *protocol, *network, *placement, text, harness.RenderSignature)
	}
	if *protocols || *all {
		pcs, err := harness.RunProtocolComparison(harness.Table1(), harness.Procs)
		check(err)
		if text {
			fmt.Println("=== Protocol comparison: homeless vs home-based LRC (4 KB units) ===")
			harness.RenderProtocolComparison(os.Stdout, pcs)
			fmt.Println()
		} else {
			for _, pc := range pcs {
				doc.Protocols = append(doc.Protocols, harness.ProtocolComparisonReport(pc))
			}
		}
	}
	if *networks || *all {
		sweepStart := time.Now()
		ncs, err := harness.RunNetworkComparison(harness.Table1(), harness.Procs, nil)
		wall := time.Since(sweepStart).Seconds()
		check(err)
		calib := hostCalibration()
		doc.Perf = &perfJSON{
			NetworksWallSeconds: wall,
			CalibSeconds:        calib,
			NetworksNorm:        wall / calib,
			GOMAXPROCS:          runtime.GOMAXPROCS(0),
		}
		if text {
			fmt.Println("=== Network sensitivity: the protocol and aggregation trades per interconnect ===")
			harness.RenderNetworkComparison(os.Stdout, ncs)
			fmt.Printf("(sweep wall clock %.2fs, host-normalized %.1f, GOMAXPROCS %d)\n\n",
				doc.Perf.NetworksWallSeconds, doc.Perf.NetworksNorm, doc.Perf.GOMAXPROCS)
		} else {
			for _, nc := range ncs {
				doc.Networks = append(doc.Networks, harness.NetworkComparisonReport(nc))
			}
		}
	}
	if *placements || *all {
		pcs, err := harness.RunPlacementComparison(harness.Table1(), harness.Procs, nil, nil)
		check(err)
		if text {
			fmt.Println("=== Home placement: rr vs block vs firsttouch vs migrate (4 KB units, home & adaptive) ===")
			harness.RenderPlacementComparison(os.Stdout, pcs)
			fmt.Println()
		} else {
			for _, pc := range pcs {
				doc.Placements = append(doc.Placements, harness.PlacementComparisonReport(pc))
			}
		}
	}
	if *scaling {
		// Deliberately not part of -all: the dense 1024-proc cells take
		// tens of seconds each by design — that cost is the datum.
		if *derivedScaling {
			harness.SetScalingDerivation(true)
		}
		e, err := scalingExperiment()
		check(err)
		curves, err := harness.RunScaling(e, nil, nil, nil, nil)
		check(err)
		if text {
			fmt.Println("=== Scaling: dense/central reference vs sparse/tree at 8–1024 procs ===")
			harness.RenderScaling(os.Stdout, curves)
			proto, network, speedup := bestScalingCell(curves, scalingCheckProcs)
			fmt.Printf("best %d-proc wall-clock speedup: %.1f× (%s × %s)\n\n",
				scalingCheckProcs, speedup, proto, network)
		} else {
			for _, c := range curves {
				doc.Scaling = append(doc.Scaling, harness.ScalingReport(c))
			}
			doc.ScalingGOMAXPROCS = runtime.GOMAXPROCS(0)
		}
	}
	if *baseline {
		var tw *trace.Writer
		var traceFile *os.File
		var traceBuf *bufio.Writer
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			check(err)
			traceFile = f
			traceBuf = bufio.NewWriter(f)
			tw = trace.NewWriter(traceBuf)
		}
		cells, err := runBaseline(tw)
		check(err)
		if tw != nil {
			check(tw.Close())
			check(traceBuf.Flush())
			check(traceFile.Close())
		}
		if text {
			fmt.Println("=== Baseline: small datasets, 4 KB units, homeless, ideal network ===")
			fmt.Printf("%-8s  %-8s  %9s  %10s  %12s\n",
				"Program", "Dataset", "Time(s)", "Msgs", "Bytes")
			for _, c := range cells {
				fmt.Printf("%-8s  %-8s  %9.3f  %10d  %12d\n",
					c.App, c.Dataset, c.TimeSeconds, c.Messages, c.Bytes)
			}
			fmt.Println()
		} else {
			doc.Baseline = cells
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		check(enc.Encode(doc))
	}
}

// runBaseline runs every registered application's "small" dataset under
// the default configuration (4 KB units, homeless, ideal network) —
// the comparison point future performance work measures against. A
// non-nil tw captures every run into one trace stream (the suite is
// sequential, so the per-app label is race-free).
func runBaseline(tw *trace.Writer) ([]harness.CellJSON, error) {
	var out []harness.CellJSON
	for _, app := range apps.Apps() {
		e, ok := apps.Lookup(app, "small")
		if !ok {
			return nil, fmt.Errorf("%s has no small dataset", app)
		}
		cfg := tmk.Config{Procs: harness.Procs, UnitPages: 1}
		if tw != nil {
			tw.SetLabel(e.App, e.Dataset)
			cfg.Trace = tw
		}
		res, err := apps.Run(e.Make(harness.Procs), cfg)
		if err != nil {
			return nil, fmt.Errorf("%s/small: %w", app, err)
		}
		exp := harness.Experiment{App: e.App, Dataset: e.Dataset, Paper: e.Paper}
		cell := harness.Cell{Time: res.Time, Queue: res.QueueDelay, Msgs: res.Messages, Bytes: res.Bytes}
		out = append(out, harness.CellReport(exp, harness.Config{Label: "4K", Unit: 1}, harness.Procs, cell))
	}
	return out, nil
}

// regressionTolerance is the relative simulated-time drift -check-baseline
// tolerates. The baseline runs on the deterministic ideal network, so any
// drift is a real engine change; 2% gives refactors that legitimately move
// a rounding edge a little room while catching performance regressions.
const regressionTolerance = 0.02

// wallTolerance is the relative host-normalized wall-clock slowdown the
// -networks sweep may show against the committed BENCH_after.json before
// -check-baseline fails. Wall clock is noisy in ways simulated time is
// not (CI neighbors, turbo states), so the gate is deliberately loose:
// 25% catches a lost optimization, not scheduler jitter.
const wallTolerance = 0.25

// calibSink keeps the calibration loop from being optimized away.
var calibSink uint64

// hostCalibration times a fixed single-core integer loop and returns the
// best of three runs in seconds. Dividing a measured wall clock by this
// number yields a host-independent figure: the same engine on a machine
// with cores twice as fast produces (roughly) the same networks_norm.
// Single-threaded on purpose — the sweep's per-cell work is also
// single-threaded, and core count is reported separately as GOMAXPROCS.
func hostCalibration() float64 {
	const iters = 1 << 27
	best := 0.0
	for run := 0; run < 3; run++ {
		acc := uint64(0x9e3779b97f4a7c15) + calibSink
		start := time.Now()
		for i := 0; i < iters; i++ {
			acc ^= acc << 13
			acc ^= acc >> 7
			acc ^= acc << 17
		}
		elapsed := time.Since(start).Seconds()
		calibSink = acc
		if best == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best
}

// speedupFloor is the minimum host-normalized wall-clock speedup the
// replay-derived -networks sweep must show over the committed
// engine-only artifact (BENCH_before.json): the derivation replaces
// five of six engine executions per base cell, so well over 3x is
// expected for the replay-safe majority of the suite even with the
// schedule-sensitive apps (TSP, Water) still running every cell.
const speedupFloor = 3.0

// runCheckSpeedup runs the -networks sweep with derivation on and
// compares its host-normalized wall clock against the committed
// engine-only artifact's perf section, returning the process exit
// code: 0 when the speedup is at least speedupFloor.
func runCheckSpeedup(path string) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmbench: -check-speedup:", err)
		return 1
	}
	var before document
	if err := json.Unmarshal(raw, &before); err != nil {
		fmt.Fprintf(os.Stderr, "dsmbench: -check-speedup: parsing %s: %v\n", path, err)
		return 1
	}
	if before.Perf == nil || before.Perf.NetworksNorm <= 0 {
		fmt.Fprintf(os.Stderr, "dsmbench: -check-speedup: %s has no networks perf section (regenerate with 'dsmbench -real-networks -networks -json')\n", path)
		return 1
	}
	// Best of two trials: a single sweep on a small CI host carries
	// ±10% scheduler and GC noise, and the committed before-number is
	// itself a best-of-N — compare like with like.
	wall := 0.0
	for trial := 0; trial < 2; trial++ {
		start := time.Now()
		if _, err := harness.RunNetworkComparison(harness.Table1(), harness.Procs, nil); err != nil {
			fmt.Fprintln(os.Stderr, "dsmbench:", err)
			return 1
		}
		if w := time.Since(start).Seconds(); trial == 0 || w < wall {
			wall = w
		}
	}
	calib := hostCalibration()
	norm := wall / calib
	speedup := before.Perf.NetworksNorm / norm
	verdict := "ok"
	if speedup < speedupFloor {
		verdict = "TOO SLOW"
	}
	fmt.Printf("derived networks sweep: %.2fs wall (calib %.3fs, norm %.1f) vs engine-only norm %.1f — %.1fx speedup (floor %.1fx)  %s\n",
		wall, calib, norm, before.Perf.NetworksNorm, speedup, speedupFloor, verdict)
	if speedup < speedupFloor {
		return 1
	}
	return 0
}

// runCheckBaseline re-runs the baseline suite and diffs it against the
// committed baseline file, returning the process exit code: 0 when every
// application's simulated time is within the tolerance, 1 on regression,
// missing entries, or an unreadable file. Message and byte drifts are
// reported but only time gates — it is the paper's headline metric, and
// intentional protocol work legitimately trades messages for bytes.
func runCheckBaseline(path string) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmbench: -check-baseline:", err)
		return 1
	}
	var committed document
	if err := json.Unmarshal(raw, &committed); err != nil {
		fmt.Fprintf(os.Stderr, "dsmbench: -check-baseline: parsing %s: %v\n", path, err)
		return 1
	}
	if len(committed.Baseline) == 0 {
		fmt.Fprintf(os.Stderr, "dsmbench: -check-baseline: %s has no baseline section (regenerate with 'make bench')\n", path)
		return 1
	}
	current, err := runBaseline(nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmbench:", err)
		return 1
	}

	key := func(c harness.CellJSON) string { return c.App + "/" + c.Dataset }
	committedBy := make(map[string]harness.CellJSON, len(committed.Baseline))
	for _, c := range committed.Baseline {
		committedBy[key(c)] = c
	}

	fmt.Printf("%-8s  %-8s  %12s  %12s  %8s  %s\n",
		"Program", "Dataset", "base(s)", "now(s)", "Δtime", "verdict")
	failed := false
	seen := make(map[string]bool, len(current))
	for _, cur := range current {
		seen[key(cur)] = true
		base, ok := committedBy[key(cur)]
		if !ok {
			fmt.Printf("%-8s  %-8s  %12s  %12.6f  %8s  new app — refresh the baseline with 'make bench'\n",
				cur.App, cur.Dataset, "-", cur.TimeSeconds, "-")
			failed = true
			continue
		}
		if base.TimeSeconds <= 0 {
			fmt.Printf("%-8s  %-8s  %12.6f  %12.6f  %8s  corrupt baseline entry (time %v) — regenerate with 'make bench'\n",
				cur.App, cur.Dataset, base.TimeSeconds, cur.TimeSeconds, "-", base.TimeSeconds)
			failed = true
			continue
		}
		delta := cur.TimeSeconds/base.TimeSeconds - 1
		verdict := "ok"
		if delta > regressionTolerance {
			verdict = "REGRESSION"
			failed = true
		} else if delta < -regressionTolerance {
			verdict = "improved — refresh the baseline with 'make bench'"
		}
		note := ""
		if cur.Messages != base.Messages || cur.Bytes != base.Bytes {
			note = fmt.Sprintf("  (msgs %+d, bytes %+d)", cur.Messages-base.Messages, cur.Bytes-base.Bytes)
		}
		fmt.Printf("%-8s  %-8s  %12.6f  %12.6f  %+7.2f%%  %s%s\n",
			cur.App, cur.Dataset, base.TimeSeconds, cur.TimeSeconds, 100*delta, verdict, note)
	}
	for _, c := range committed.Baseline {
		if !seen[key(c)] {
			fmt.Printf("%-8s  %-8s  %12.6f  %12s  %8s  missing from current run\n",
				c.App, c.Dataset, c.TimeSeconds, "-", "-")
			failed = true
		}
	}

	// Wall-clock gate: when the committed file carries a perf section
	// (BENCH_after.json does; the original BENCH_baseline.json does not),
	// re-run the -networks sweep and compare host-normalized wall time.
	if committed.Perf != nil && committed.Perf.NetworksNorm > 0 {
		start := time.Now()
		if _, err := harness.RunNetworkComparison(harness.Table1(), harness.Procs, nil); err != nil {
			fmt.Fprintln(os.Stderr, "dsmbench:", err)
			return 1
		}
		wall := time.Since(start).Seconds()
		calib := hostCalibration()
		norm := wall / calib
		slow := norm/committed.Perf.NetworksNorm - 1
		verdict := "ok"
		if slow > wallTolerance {
			verdict = "WALL-CLOCK REGRESSION"
			failed = true
		}
		fmt.Printf("\nnetworks sweep wall clock: %.2fs (calib %.3fs, norm %.1f) vs committed norm %.1f  %+.1f%%  %s\n",
			wall, calib, norm, committed.Perf.NetworksNorm, 100*slow, verdict)
	}

	if failed {
		fmt.Println("\nbaseline check FAILED (tolerance ±2% simulated time, +25% normalized wall clock)")
		return 1
	}
	fmt.Println("\nbaseline check passed (tolerance ±2% simulated time, +25% normalized wall clock)")
	return 0
}

// Scaling-gate parameters.
const (
	// scalingCheckProcs is the processor count the scaling claim is
	// made at.
	scalingCheckProcs = 256
	// scalingCommitFloor is the wall-clock speedup the committed sweep
	// must show at scalingCheckProcs on at least one protocol × network
	// cell — the sparse-representation work's acceptance claim.
	scalingCommitFloor = 5.0
	// scalingCheckFloor is the speedup the live re-run of that cell must
	// still show. Wall clock is noisy in ways the committed snapshot is
	// not (CI neighbors, turbo states), so the gate is deliberately
	// looser than the claim: 2× catches losing the optimization, not
	// scheduler jitter.
	scalingCheckFloor = 2.0
)

// scalingExperiment returns the sweep's workload: Storm on the large
// dataset. Unlike the paper apps — whose bands thin out as the machine
// grows, so their per-barrier communication shrinks — Storm holds
// per-processor work constant, which keeps the dense engine's
// acquire-side notice fan-out (episodes × written units × procs list
// appends) the dominant host cost at 256+ processors — exactly the
// term the sparse engine's fault-time reconstruction removes.
func scalingExperiment() (harness.Experiment, error) {
	e, ok := apps.Lookup("Storm", "large")
	if !ok {
		return harness.Experiment{}, fmt.Errorf("storm has no large dataset")
	}
	return harness.Experiment{App: e.App, Dataset: e.Dataset, Paper: e.Paper, Make: e.Make}, nil
}

// bestScalingCell returns the protocol × network cell with the highest
// wall-clock speedup of the last mode over the first at the given
// processor count.
func bestScalingCell(curves []harness.ScalingCurve, procs int) (proto, network string, speedup float64) {
	type cell struct{ proto, network string }
	byCell := make(map[cell][]harness.ScalingCurve)
	for _, c := range curves {
		k := cell{c.Protocol, c.Network}
		byCell[k] = append(byCell[k], c)
	}
	for k, cs := range byCell {
		if len(cs) < 2 {
			continue
		}
		if s := harness.ScalingSpeedup(cs[0], cs[len(cs)-1], procs); s > speedup {
			proto, network, speedup = k.proto, k.network, s
		}
	}
	return proto, network, speedup
}

// runCheckScaling validates the committed scaling sweep and re-proves
// its headline cell, returning the process exit code. Two gates: the
// committed file must still claim a ≥5× wall-clock win at 256 procs on
// some protocol × network cell (the artifact's integrity — if a
// regenerated sweep lost the win, it must not be committed silently),
// and a live re-run of that one cell must show the win is still real
// on this machine (≥2×; see scalingCheckFloor). Only the single best
// cell re-runs, so the gate stays seconds, not minutes.
func runCheckScaling(path string) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmbench: -check-scaling:", err)
		return 1
	}
	var committed document
	if err := json.Unmarshal(raw, &committed); err != nil {
		fmt.Fprintf(os.Stderr, "dsmbench: -check-scaling: parsing %s: %v\n", path, err)
		return 1
	}
	if len(committed.Scaling) == 0 {
		fmt.Fprintf(os.Stderr, "dsmbench: -check-scaling: %s has no scaling section (regenerate with 'make scaling')\n", path)
		return 1
	}

	modes := harness.ScalingModes()
	refMode, candMode := modes[0].Name, modes[len(modes)-1].Name
	type cell struct{ proto, network string }
	wall := make(map[cell]map[string]float64)
	for _, c := range committed.Scaling {
		for _, pt := range c.Points {
			if pt.Procs != scalingCheckProcs || pt.WallSeconds <= 0 {
				continue
			}
			k := cell{c.Protocol, c.Network}
			if wall[k] == nil {
				wall[k] = make(map[string]float64)
			}
			wall[k][c.Mode] = pt.WallSeconds
		}
	}
	var best cell
	bestSpeedup := 0.0
	fmt.Printf("committed %d-proc wall clock, %s vs %s:\n", scalingCheckProcs, refMode, candMode)
	fmt.Printf("%-10s  %-8s  %12s  %12s  %8s\n", "protocol", "network", refMode+"(s)", candMode+"(s)", "speedup")
	for k, byMode := range wall {
		ref, cand := byMode[refMode], byMode[candMode]
		if ref <= 0 || cand <= 0 {
			continue
		}
		s := ref / cand
		fmt.Printf("%-10s  %-8s  %12.3f  %12.3f  %7.1f×\n", k.proto, k.network, ref, cand, s)
		if s > bestSpeedup {
			best, bestSpeedup = k, s
		}
	}
	if bestSpeedup < scalingCommitFloor {
		fmt.Printf("\nscaling check FAILED: committed sweep's best %d-proc speedup is %.1f× (< %.0f×) — the sparse-representation win is gone from the artifact; regenerate with 'make scaling' only after restoring it\n",
			scalingCheckProcs, bestSpeedup, scalingCommitFloor)
		return 1
	}

	e, err := scalingExperiment()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmbench:", err)
		return 1
	}
	curves, err := harness.RunScaling(e,
		[]string{best.proto}, []string{best.network}, []int{scalingCheckProcs}, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmbench:", err)
		return 1
	}
	now := 0.0
	if len(curves) >= 2 {
		now = harness.ScalingSpeedup(curves[0], curves[len(curves)-1], scalingCheckProcs)
	}
	fmt.Printf("\nre-run %s × %s at %d procs: %.1f× now vs %.1f× committed (floor %.0f×)\n",
		best.proto, best.network, scalingCheckProcs, now, bestSpeedup, scalingCheckFloor)
	if now < scalingCheckFloor {
		fmt.Printf("\nscaling check FAILED: the sparse/tree configuration no longer beats dense/central by ≥%.0f× wall clock\n",
			scalingCheckFloor)
		return 1
	}
	fmt.Printf("\nscaling check passed (committed claim ≥%.0f×, live floor ≥%.0f×)\n",
		scalingCommitFloor, scalingCheckFloor)
	return 0
}

// configLabels returns the labels of the paper's four configurations.
func configLabels() []string {
	var out []string
	for _, c := range harness.Configs() {
		out = append(out, c.Label)
	}
	return out
}

// runFigure executes each experiment under the configurations named by
// the labels on the given coherence protocol and network model,
// rendering (text mode) or collecting cells (JSON mode).
func runFigure(es []harness.Experiment, labels []string, protocol, network, placement string,
	text bool, render func(io.Writer, harness.Experiment, map[string]harness.Cell)) []harness.ExperimentJSON {
	var out []harness.ExperimentJSON
	for _, e := range es {
		cells := make(map[string]harness.Cell, len(labels))
		ej := harness.ExperimentJSON{App: e.App, Dataset: e.Dataset, Paper: e.Paper}
		for _, label := range labels {
			c, ok := harness.ConfigByLabel(label)
			if !ok {
				check(fmt.Errorf("unknown configuration label %q", label))
			}
			c.Protocol = protocol
			c.Network = network
			c.Placement = placement
			cell, err := harness.Run(e, c, harness.Procs)
			check(err)
			cells[label] = cell
			ej.Cells = append(ej.Cells, harness.CellReport(e, c, harness.Procs, cell))
		}
		if text {
			render(os.Stdout, e, cells)
		} else {
			out = append(out, ej)
		}
	}
	return out
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dsmbench:", err)
		os.Exit(1)
	}
}
