// Command dsmtrace analyzes and replays JSONL run traces captured with
// dsmrun/dsmbench -trace (or dsm.WithTrace).
//
// The default mode prints, per captured run: the run's identity and
// recorded totals, a per-processor virtual-time timeline summary, a
// queue-delay histogram per message kind, the hottest consistency units
// by fault count, and a per-barrier-phase traffic breakdown.
//
// Replay mode (-replay) streams the capture's message events back
// through a network model without re-executing the application:
//
//	dsmtrace trace.jsonl                      # analyze
//	dsmtrace -top 20 trace.jsonl              # more hot units
//	dsmtrace -json trace.jsonl                # machine-readable summary
//	dsmtrace -replay trace.jsonl              # re-price through the capture's own model
//	dsmtrace -replay -network bus trace.jsonl # sweep the capture onto another interconnect
//	dsmtrace -replay -network all trace.jsonl # one pass, every registered model, side by side
//
// Same-model replay must reproduce the recorded message/byte/queue
// totals bit-identically — dsmtrace exits non-zero if it does not, so
// a plain `dsmtrace -replay capture.jsonl` doubles as an integrity
// check of the trace (`-network all` includes the capture's own model,
// so it carries the same check).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	replay := flag.Bool("replay", false, "re-price the capture through a network model instead of summarizing")
	network := flag.String("network", "", "replay network model (empty = each run's own model, \"all\" = every registered model in one pass; see dsmrun -list)")
	topN := flag.Int("top", 10, "number of hottest units to list")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dsmtrace [-replay] [-network MODEL] [-top N] [-json] TRACE.jsonl ('-' for stdin)")
		os.Exit(2)
	}
	in := os.Stdin
	if name := flag.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}

	if *replay {
		if *network == "all" {
			runReplayAll(in, *jsonOut)
			return
		}
		runReplay(in, *network, *jsonOut)
		return
	}
	runSummary(in, *topN, *jsonOut)
}

// --- replay ---------------------------------------------------------------

func runReplay(in io.Reader, network string, jsonOut bool) {
	runs, err := trace.Replay(in, network)
	if err != nil {
		fail(err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(runs); err != nil {
			fail(err)
		}
	} else {
		fmt.Printf("%-4s %-8s %-10s %-8s %-8s  %10s %12s %12s  %s\n",
			"run", "app", "captured", "replayed", "", "msgs", "bytes", "queue(s)", "verdict")
		for _, r := range runs {
			verdict := "re-priced"
			if r.Network == r.Meta.Network {
				if r.Matches() {
					verdict = "bit-identical"
				} else {
					verdict = "MISMATCH"
				}
			}
			fmt.Printf("%-4d %-8s %-10s %-8s %-8s  %10d %12d %12.6f  recorded\n",
				r.ID, r.Meta.App, r.Meta.Network, "", "", r.Recorded.Msgs, r.Recorded.Bytes, r.Recorded.Queue.Seconds())
			fmt.Printf("%-4s %-8s %-10s %-8s %-8s  %10d %12d %12.6f  %s\n",
				"", "", "", r.Network, "", r.Replayed.Msgs, r.Replayed.Bytes, r.Replayed.Queue.Seconds(), verdict)
		}
	}
	// Same-model replay is an integrity check: a mismatch means the
	// trace does not reproduce the run it claims to record.
	for _, r := range runs {
		if r.Network == r.Meta.Network && !r.Matches() {
			fmt.Fprintf(os.Stderr, "dsmtrace: run %d: same-model replay diverged from recorded totals\n", r.ID)
			os.Exit(1)
		}
	}
}

// runReplayAll re-prices every captured run through every registered
// network model in one streaming pass and prints a comparison table:
// one row per model, the capture's own model marked and checked against
// the recorded totals bit-identically.
func runReplayAll(in io.Reader, jsonOut bool) {
	runs, err := trace.ReplayAll(in, nil)
	if err != nil {
		fail(err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(runs); err != nil {
			fail(err)
		}
	} else {
		for _, r := range runs {
			name := r.Meta.App
			if r.Meta.Dataset != "" {
				name += "/" + r.Meta.Dataset
			}
			if name == "" {
				name = "(unlabeled)"
			}
			fmt.Printf("=== run %d: %s  [%s, captured on %s, %d procs] ===\n",
				r.ID, name, r.Meta.Protocol, r.Meta.Network, r.Meta.Procs)
			fmt.Printf("  %-10s %10s %12s %12s  %s\n", "network", "msgs", "bytes", "queue(s)", "verdict")
			fmt.Printf("  %-10s %10d %12d %12.6f  %s\n",
				"(recorded)", r.Recorded.Msgs, r.Recorded.Bytes, r.Recorded.Queue.Seconds(), "")
			for i, n := range r.Networks {
				t := r.Replayed[i]
				verdict := "re-priced"
				if n == r.Meta.Network {
					if t == r.Recorded {
						verdict = "bit-identical"
					} else {
						verdict = "MISMATCH"
					}
				}
				fmt.Printf("  %-10s %10d %12d %12.6f  %s\n",
					n, t.Msgs, t.Bytes, t.Queue.Seconds(), verdict)
			}
			fmt.Println()
		}
	}
	for _, r := range runs {
		if !r.Matches() {
			fmt.Fprintf(os.Stderr, "dsmtrace: run %d: same-model replay diverged from recorded totals\n", r.ID)
			os.Exit(1)
		}
	}
}

// --- summary --------------------------------------------------------------

// queueBuckets are the queue-delay histogram's upper bounds (the last
// bucket is open-ended).
var queueBuckets = []sim.Duration{
	0,
	10_000,        // 10 µs
	100_000,       // 100 µs
	1_000_000,     // 1 ms
	10_000_000,    // 10 ms
	100_000_000,   // 100 ms
	1_000_000_000, // 1 s
}

func bucketLabel(i int) string {
	names := []string{"0", "≤10µs", "≤100µs", "≤1ms", "≤10ms", "≤100ms", "≤1s", ">1s"}
	return names[i]
}

func bucketOf(q sim.Duration) int {
	for i, ub := range queueBuckets {
		if q <= ub {
			return i
		}
	}
	return len(queueBuckets)
}

type procStats struct {
	Proc     int     `json:"proc"`
	Sent     int     `json:"messages_sent"`
	Faults   int     `json:"faults"`
	Barriers int     `json:"barriers"`
	Locks    int     `json:"lock_acquires"`
	LastSec  float64 `json:"last_event_seconds"`
	last     sim.Duration
}

type kindStats struct {
	Kind    string `json:"kind"`
	Msgs    int64  `json:"messages"`
	Bytes   int64  `json:"bytes"`
	Queue   sim.Duration
	Buckets []int64 `json:"queue_buckets"`
	QueueS  float64 `json:"queue_seconds"`
}

type unitStats struct {
	Unit   int `json:"unit"`
	Faults int `json:"faults"`
}

type phaseStats struct {
	Phase  int     `json:"phase"`
	Msgs   int64   `json:"messages"`
	Bytes  int64   `json:"bytes"`
	QueueS float64 `json:"queue_seconds"`
	Faults int     `json:"faults"`
	EndS   float64 `json:"end_seconds"`
	end    sim.Duration
	queue  sim.Duration
}

type runSummaryJSON struct {
	Run       int64         `json:"run"`
	App       string        `json:"app,omitempty"`
	Dataset   string        `json:"dataset,omitempty"`
	Protocol  string        `json:"protocol"`
	Network   string        `json:"network"`
	Placement string        `json:"placement"`
	Procs     int           `json:"procs"`
	TimeS     float64       `json:"time_seconds"`
	Msgs      int64         `json:"messages"`
	Bytes     int64         `json:"bytes"`
	QueueS    float64       `json:"queue_seconds"`
	Switches  int           `json:"protocol_switches"`
	Rehomes   int           `json:"rehomes"`
	ProcTimes []*procStats  `json:"proc_timeline"`
	Kinds     []*kindStats  `json:"kinds"`
	TopUnits  []unitStats   `json:"top_units"`
	Phases    []*phaseStats `json:"phases"`
}

// runAcc accumulates one run's summary while streaming its events.
type runAcc struct {
	out        *runSummaryJSON
	procs      map[int]*procStats
	kinds      map[string]*kindStats
	unitFaults map[int]int
	// message/fault events buffered for phase binning: barriers release
	// in episode order, so the phase boundaries (max barrier_leave time
	// per episode) are only known at run end.
	msgAt   []sim.Duration
	msgB    []int64
	msgQ    []sim.Duration
	faultAt []sim.Duration
	phases  map[int]*phaseStats
}

func newRunAcc(ev *trace.Event) *runAcc {
	return &runAcc{
		out: &runSummaryJSON{
			Run: ev.R, App: ev.App, Dataset: ev.Dataset,
			Protocol: ev.Protocol, Network: ev.Network, Placement: ev.Placement,
			Procs: ev.Procs,
		},
		procs:      make(map[int]*procStats),
		kinds:      make(map[string]*kindStats),
		unitFaults: make(map[int]int),
		phases:     make(map[int]*phaseStats),
	}
}

func (a *runAcc) proc(p int) *procStats {
	ps := a.procs[p]
	if ps == nil {
		ps = &procStats{Proc: p}
		a.procs[p] = ps
	}
	return ps
}

func (a *runAcc) kind(k string) *kindStats {
	ks := a.kinds[k]
	if ks == nil {
		ks = &kindStats{Kind: k, Buckets: make([]int64, len(queueBuckets)+1)}
		a.kinds[k] = ks
	}
	return ks
}

func (a *runAcc) seen(p int, at sim.Duration) {
	ps := a.proc(p)
	if at > ps.last {
		ps.last = at
	}
}

func (a *runAcc) message(kind string, src int, bytes int64, at, q sim.Duration) {
	ks := a.kind(kind)
	ks.Msgs++
	ks.Bytes += bytes
	ks.Queue += q
	ks.Buckets[bucketOf(q)]++
	a.proc(src).Sent++
	a.seen(src, at)
	a.msgAt = append(a.msgAt, at)
	a.msgB = append(a.msgB, bytes)
	a.msgQ = append(a.msgQ, q)
}

func (a *runAcc) event(ev *trace.Event) {
	switch ev.E {
	case trace.EvLeg, trace.EvControl:
		a.message(ev.K, ev.S, int64(ev.B), ev.At, ev.Q)
	case trace.EvExchange:
		a.message(ev.K, ev.S, int64(ev.B), ev.At, ev.Q)
		a.message(ev.RK, ev.D, int64(ev.RB), ev.At, ev.RQ)
	case trace.EvBarrierEnter:
		a.seen(ev.P, ev.At)
	case trace.EvBarrierLeave:
		a.proc(ev.P).Barriers++
		a.seen(ev.P, ev.At)
		ph := a.phases[ev.N]
		if ph == nil {
			ph = &phaseStats{Phase: ev.N}
			a.phases[ev.N] = ph
		}
		if ev.At > ph.end {
			ph.end = ev.At
		}
	case trace.EvLockAcquire:
		a.proc(ev.P).Locks++
		a.seen(ev.P, ev.At)
	case trace.EvLockRelease:
		a.seen(ev.P, ev.At)
	case trace.EvFaultBegin:
		a.proc(ev.P).Faults++
		a.unitFaults[ev.U]++
		a.seen(ev.P, ev.At)
		a.faultAt = append(a.faultAt, ev.At)
	case trace.EvFaultEnd:
		a.seen(ev.P, ev.At)
	case trace.EvSwitch:
		a.out.Switches++
	case trace.EvRehome:
		a.out.Rehomes++
	case trace.EvRunEnd:
		a.out.TimeS = ev.Time.Seconds()
		a.out.Msgs = ev.Msgs
		a.out.Bytes = ev.Bytes
		a.out.QueueS = ev.Queue.Seconds()
	}
}

// finalize sorts the accumulated maps into the report and bins the
// buffered message/fault events into barrier phases. Phase k spans
// (end of episode k-1, end of episode k]; traffic after the last
// barrier (or in a barrier-free run) lands in a trailing phase 0 row
// reported as "after".
func (a *runAcc) finalize(topN int) {
	for _, ps := range a.procs {
		ps.LastSec = ps.last.Seconds()
		a.out.ProcTimes = append(a.out.ProcTimes, ps)
	}
	sort.Slice(a.out.ProcTimes, func(i, j int) bool { return a.out.ProcTimes[i].Proc < a.out.ProcTimes[j].Proc })

	for _, ks := range a.kinds {
		ks.QueueS = ks.Queue.Seconds()
		a.out.Kinds = append(a.out.Kinds, ks)
	}
	sort.Slice(a.out.Kinds, func(i, j int) bool { return a.out.Kinds[i].Msgs > a.out.Kinds[j].Msgs })

	for u, n := range a.unitFaults {
		a.out.TopUnits = append(a.out.TopUnits, unitStats{Unit: u, Faults: n})
	}
	sort.Slice(a.out.TopUnits, func(i, j int) bool {
		if a.out.TopUnits[i].Faults != a.out.TopUnits[j].Faults {
			return a.out.TopUnits[i].Faults > a.out.TopUnits[j].Faults
		}
		return a.out.TopUnits[i].Unit < a.out.TopUnits[j].Unit
	})
	if len(a.out.TopUnits) > topN {
		a.out.TopUnits = a.out.TopUnits[:topN]
	}

	var phases []*phaseStats
	for _, ph := range a.phases {
		phases = append(phases, ph)
	}
	sort.Slice(phases, func(i, j int) bool { return phases[i].Phase < phases[j].Phase })
	tail := &phaseStats{}
	phaseFor := func(at sim.Duration) *phaseStats {
		for _, ph := range phases {
			if at <= ph.end {
				return ph
			}
		}
		return tail
	}
	for i, at := range a.msgAt {
		ph := phaseFor(at)
		ph.Msgs++
		ph.Bytes += a.msgB[i]
		ph.queue += a.msgQ[i]
	}
	for _, at := range a.faultAt {
		phaseFor(at).Faults++
	}
	if tail.Msgs > 0 || tail.Faults > 0 {
		phases = append(phases, tail)
	}
	for _, ph := range phases {
		ph.QueueS = ph.queue.Seconds()
		ph.EndS = ph.end.Seconds()
	}
	a.out.Phases = phases
}

func runSummary(in io.Reader, topN int, jsonOut bool) {
	r, err := trace.NewReader(in)
	if err != nil {
		fail(err)
	}
	var order []*runAcc
	runs := make(map[int64]*runAcc)
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fail(err)
		}
		if ev.E == trace.EvRunStart {
			acc := newRunAcc(ev)
			runs[ev.R] = acc
			order = append(order, acc)
			continue
		}
		if acc := runs[ev.R]; acc != nil {
			acc.event(ev)
		}
	}
	var docs []*runSummaryJSON
	for _, acc := range order {
		acc.finalize(topN)
		docs = append(docs, acc.out)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(docs); err != nil {
			fail(err)
		}
		return
	}
	for _, doc := range docs {
		render(doc)
	}
}

func render(d *runSummaryJSON) {
	name := d.App
	if d.Dataset != "" {
		name += "/" + d.Dataset
	}
	if name == "" {
		name = "(unlabeled)"
	}
	fmt.Printf("=== run %d: %s  [%s, %s net, %s homes, %d procs] ===\n",
		d.Run, name, d.Protocol, d.Network, d.Placement, d.Procs)
	fmt.Printf("  simulated time %.6f s   messages %d   bytes %d   queue delay %.6f s",
		d.TimeS, d.Msgs, d.Bytes, d.QueueS)
	if d.Switches > 0 || d.Rehomes > 0 {
		fmt.Printf("   switches %d   rehomes %d", d.Switches, d.Rehomes)
	}
	fmt.Println()

	renderTimeline(d)

	fmt.Println("\n  queue delay by message kind:")
	header := make([]string, 0, len(queueBuckets)+1)
	for i := 0; i <= len(queueBuckets); i++ {
		header = append(header, fmt.Sprintf("%8s", bucketLabel(i)))
	}
	fmt.Printf("    %-15s %8s %12s %12s  %s\n", "kind", "msgs", "bytes", "queue(s)", strings.Join(header, ""))
	for _, ks := range d.Kinds {
		cells := make([]string, 0, len(ks.Buckets))
		for _, n := range ks.Buckets {
			cells = append(cells, fmt.Sprintf("%8d", n))
		}
		fmt.Printf("    %-15s %8d %12d %12.6f  %s\n", ks.Kind, ks.Msgs, ks.Bytes, ks.QueueS, strings.Join(cells, ""))
	}

	if len(d.TopUnits) > 0 {
		fmt.Println("\n  hottest units by faults:")
		fmt.Printf("    %-6s %8s\n", "unit", "faults")
		for _, u := range d.TopUnits {
			fmt.Printf("    %-6d %8d\n", u.Unit, u.Faults)
		}
	}

	if len(d.Phases) > 0 {
		fmt.Println("\n  per-barrier-phase breakdown:")
		fmt.Printf("    %-6s %10s %12s %12s %8s %12s\n", "phase", "msgs", "bytes", "queue(s)", "faults", "end(s)")
		for _, ph := range d.Phases {
			label := fmt.Sprintf("%d", ph.Phase)
			end := fmt.Sprintf("%.6f", ph.EndS)
			if ph.Phase == 0 {
				label, end = "after", "-"
			}
			fmt.Printf("    %-6s %10d %12d %12.6f %8d %12s\n",
				label, ph.Msgs, ph.Bytes, ph.QueueS, ph.Faults, end)
		}
	}
	fmt.Println()
}

// maxTimelineLanes caps the per-processor timeline's rendered rows. A
// 1024-processor capture would otherwise print a thousand lines of
// timeline before anything else; above the cap, consecutive processors
// are aggregated into at most this many lanes (sums per lane, latest
// event time across the lane). The -json output always keeps full
// per-processor detail — aggregation is purely a text-rendering
// concern.
const maxTimelineLanes = 32

func renderTimeline(d *runSummaryJSON) {
	fmt.Println("\n  per-processor timeline:")
	if len(d.ProcTimes) <= maxTimelineLanes {
		fmt.Printf("    %-5s %10s %8s %9s %7s %14s\n", "proc", "sent", "faults", "barriers", "locks", "last event(s)")
		for _, ps := range d.ProcTimes {
			fmt.Printf("    %-5d %10d %8d %9d %7d %14.6f\n",
				ps.Proc, ps.Sent, ps.Faults, ps.Barriers, ps.Locks, ps.LastSec)
		}
		return
	}
	// Lane width from the run's processor count, so lanes cover the id
	// space evenly even when some processors recorded no events.
	n := d.Procs
	if last := d.ProcTimes[len(d.ProcTimes)-1].Proc + 1; last > n {
		n = last
	}
	width := (n + maxTimelineLanes - 1) / maxTimelineLanes
	type lane struct {
		lo, hi, procs              int
		sent, faults, barrs, locks int
		last                       float64
	}
	lanes := make(map[int]*lane)
	var order []int
	for _, ps := range d.ProcTimes {
		i := ps.Proc / width
		ln := lanes[i]
		if ln == nil {
			hi := (i+1)*width - 1
			if hi > n-1 {
				hi = n - 1
			}
			ln = &lane{lo: i * width, hi: hi}
			lanes[i] = ln
			order = append(order, i)
		}
		ln.procs++
		ln.sent += ps.Sent
		ln.faults += ps.Faults
		ln.barrs += ps.Barriers
		ln.locks += ps.Locks
		if ps.LastSec > ln.last {
			ln.last = ps.LastSec
		}
	}
	sort.Ints(order)
	fmt.Printf("    (%d processors aggregated into %d lanes of %d; -json keeps per-proc detail)\n",
		len(d.ProcTimes), len(order), width)
	fmt.Printf("    %-11s %6s %10s %8s %9s %7s %14s\n",
		"procs", "active", "sent", "faults", "barriers", "locks", "last event(s)")
	for _, i := range order {
		ln := lanes[i]
		fmt.Printf("    %-11s %6d %10d %8d %9d %7d %14.6f\n",
			fmt.Sprintf("%d-%d", ln.lo, ln.hi), ln.procs, ln.sent, ln.faults, ln.barrs, ln.locks, ln.last)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dsmtrace:", err)
	os.Exit(1)
}
