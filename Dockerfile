# dsmd — the DSM experiment service (see README "Serving").
#
#   docker build -t dsmd .
#   docker run -p 8080:8080 dsmd

FROM golang:1.24 AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags="-s -w" -o /out/dsmd ./cmd/dsmd

FROM scratch
COPY --from=build /out/dsmd /dsmd
ENV DSMD_ADDR=:8080
EXPOSE 8080
ENTRYPOINT ["/dsmd"]
