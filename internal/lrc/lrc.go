// Package lrc implements the lazy-release-consistency bookkeeping of the
// DSM: intervals, write notices, the global interval registry, and the
// causal ordering used to apply concurrent diffs.
//
// In LRC a processor's execution is divided into intervals by its
// synchronization operations. Closing an interval publishes (a) a write
// notice per page modified in the interval and (b) — in this engine,
// eagerly — the word-granularity diff of each such page. On an acquire,
// the acquirer learns of every interval covered by the releaser's vector
// time that it has not yet seen, and invalidates the noticed pages; the
// diffs themselves travel only on demand, at the next access fault.
package lrc

import (
	"sort"
	"sync"

	"repro/internal/mem"
	"repro/internal/vc"
)

// PageDiff is the word-granularity diff of one 4 KB page.
type PageDiff struct {
	Page int
	D    mem.Diff
}

// Interval is one closed interval of one processor.
//
// Write detection and invalidation happen at *consistency-unit*
// granularity (1, 2, or 4 pages, per the experiment), while diffs stay
// word-granular within 4 KB pages — exactly the combination the paper
// studies: enlarging the unit enlarges what gets twinned, noticed,
// invalidated, and fetched, but a diff still carries only the words that
// actually changed.
type Interval struct {
	// ID names the interval (processor + per-processor sequence).
	ID vc.IntervalID
	// TS is the processor's vector time at the close of the interval
	// (including the interval's own tick) — a vc.Stamp, so a sparse-mode
	// engine stores an epoch base plus a few deviations instead of one
	// dense vector per interval. Its wire size (Len entries) and causal
	// key (Sum) are layout-independent.
	TS vc.Stamp
	// Units lists the consistency units written during the interval
	// (each unit appears once). The interval's write notices name
	// exactly these units.
	Units []int
	// Diffs holds the non-empty page diffs of the interval, ordered by
	// page number — the sorted order is the index: page lookups binary
	// search it and per-unit views are contiguous subslices, so the
	// engine's fetch path needs no per-interval map.
	Diffs []PageDiff
}

// pageIndex returns the position of page in the sorted Diffs, or
// (insertion point, false) if the page has no diff. A hand-rolled
// binary search: no closure, no allocation on the fault path.
func (iv *Interval) pageIndex(page int) (int, bool) {
	lo, hi := 0, len(iv.Diffs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if iv.Diffs[mid].Page < page {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(iv.Diffs) && iv.Diffs[lo].Page == page
}

// Diff returns the interval's diff for the given 4 KB page; ok is false
// if the page has no modifications in this interval.
func (iv *Interval) Diff(page int) (mem.Diff, bool) {
	if i, ok := iv.pageIndex(page); ok {
		return iv.Diffs[i].D, true
	}
	return mem.Diff{}, false
}

// DiffsInUnit returns the interval's page diffs that fall inside
// consistency unit u, where each unit spans unitPages pages. The result
// is a view into the interval's sorted diff list (callers must not
// modify it): unit pages are contiguous, so the matching diffs are one
// subslice and no per-call allocation happens.
func (iv *Interval) DiffsInUnit(u, unitPages int) []PageDiff {
	lo, _ := iv.pageIndex(u * unitPages)
	hi, _ := iv.pageIndex((u + 1) * unitPages)
	return iv.Diffs[lo:hi]
}

// NoticeBytes returns the wire size of the interval's write notices: the
// interval header (proc, seq, vector time) plus one unit id per notice.
func (iv *Interval) NoticeBytes() int {
	return 8 + 4*iv.TS.Len() + 4*len(iv.Units)
}

// CausalKey is a monotone linearization of the happens-before partial
// order: if a happens before b then a's vector-entry sum is strictly less
// than b's, so sorting by (sum, proc, seq) is a valid causal application
// order that is also deterministic for concurrent intervals (whose diffs
// touch disjoint words in race-free programs).
func (iv *Interval) CausalKey() (sum int64, proc int, seq int32) {
	return iv.TS.Sum(), iv.ID.Proc, iv.ID.Seq
}

// causallyBefore reports whether a orders before b under CausalKey.
func causallyBefore(a, b *Interval) bool {
	if as, bs := a.TS.Sum(), b.TS.Sum(); as != bs {
		return as < bs
	}
	if a.ID.Proc != b.ID.Proc {
		return a.ID.Proc < b.ID.Proc
	}
	return a.ID.Seq < b.ID.Seq
}

// SortCausally orders intervals by CausalKey, a linear extension of
// happens-before. Binary-insertion sort over the precomputed keys: the
// inputs the engine builds are concatenations of per-processor runs
// that are each already causally ascending, so the scan is near-linear
// in practice and performs no allocation (no sort.Slice closure).
func SortCausally(ivs []*Interval) {
	for i := 1; i < len(ivs); i++ {
		iv := ivs[i]
		if !causallyBefore(iv, ivs[i-1]) {
			continue
		}
		// Binary search for iv's position in the sorted prefix.
		lo, hi := 0, i
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if causallyBefore(iv, ivs[mid]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		copy(ivs[lo+1:i+1], ivs[lo:i])
		ivs[lo] = iv
	}
}

// Store is the global registry of closed intervals. It models the
// per-node interval and diff storage TreadMarks keeps: a processor can
// only look up intervals it has provably heard about (covered by a vector
// time handed to it at a synchronization), so reading through the store
// never leaks information ahead of the protocol.
//
// Garbage collection of old intervals is deliberately omitted (runs are
// short; TreadMarks GC is orthogonal to the paper's study).
type Store struct {
	mu    sync.RWMutex
	byPid [][]*Interval // byPid[p][seq-1] = interval (p, seq)
	// byUnit[u] lists the published intervals that wrote unit u, in
	// publish order. Because a processor publishes before the
	// synchronization that announces the interval proceeds, and
	// barriers join every processor, the list is episode-monotone and
	// per-writer sequence-ordered. The sparse engine reconstructs
	// missing-write sets from this one global index at fault time
	// instead of appending every notice into every processor's
	// per-unit lists at acquire time (see tmk's missingFor).
	byUnit map[int][]*Interval
}

// NewStore returns an empty registry for n processors.
func NewStore(n int) *Store {
	return &Store{byPid: make([][]*Interval, n), byUnit: make(map[int][]*Interval)}
}

// Publish registers a closed interval. The interval's sequence number
// must be the next one for its processor.
func (s *Store) Publish(iv *Interval) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := iv.ID.Proc
	if int(iv.ID.Seq) != len(s.byPid[p])+1 {
		panic("lrc: out-of-order interval publish")
	}
	s.byPid[p] = append(s.byPid[p], iv)
	for _, u := range iv.Units {
		s.byUnit[u] = append(s.byUnit[u], iv)
	}
}

// UnitLog returns the published intervals that wrote unit u, in publish
// order. The returned slice is a stable snapshot: entries are immutable
// once published and appends never alias it backwards, so callers may
// iterate without holding the store's lock.
func (s *Store) UnitLog(u int) []*Interval {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byUnit[u]
}

// Get returns interval (p, seq).
func (s *Store) Get(p int, seq int32) *Interval {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byPid[p][seq-1]
}

// Delta returns every interval covered by 'to' but not by 'from', i.e.
// the write notices an acquirer moving from vector time 'from' to 'to'
// must consume, in causal order.
func (s *Store) Delta(from, to vc.Time) []*Interval {
	return s.DeltaInto(from, to, nil)
}

// DeltaInto is Delta reusing the caller's buffer: out is truncated,
// refilled, and returned (grown only when the delta outsizes its
// capacity). The per-processor sequence runs in the store are each
// causally ascending, so one SortCausally pass over the concatenation
// is near-linear. Hot acquire paths keep a per-processor scratch buffer
// and pay zero steady-state allocation here.
func (s *Store) DeltaInto(from, to vc.Time, out []*Interval) []*Interval {
	out = out[:0]
	s.mu.RLock()
	for p := range s.byPid {
		lo, hi := from[p], to[p]
		for seq := lo + 1; seq <= hi; seq++ {
			out = append(out, s.byPid[p][seq-1])
		}
	}
	s.mu.RUnlock()
	SortCausally(out)
	return out
}

// DeltaDevsInto is the sparse-mode delta: it appends the intervals of
// the given deviating processors between from[p] (exclusive) and seqs[i]
// (inclusive), in causal order, reusing out like DeltaInto. The caller
// guarantees the deviations are exhaustive — every processor whose entry
// in the target time exceeds from's is listed — which holds whenever the
// target is a sparse Stamp whose epoch base is covered by from (epoch
// bases only ever advance, and from is at least the acquirer's own
// epoch). Cost is O(deviations + delta), independent of the processor
// count.
func (s *Store) DeltaDevsInto(from vc.Time, procs, seqs []int32, out []*Interval) []*Interval {
	out = out[:0]
	s.mu.RLock()
	for i, p := range procs {
		lo, hi := from[p], seqs[i]
		for seq := lo + 1; seq <= hi; seq++ {
			out = append(out, s.byPid[p][seq-1])
		}
	}
	s.mu.RUnlock()
	SortCausally(out)
	return out
}

// MakeInterval builds an interval from the written units and the
// non-empty page diffs produced at its close, copying both (callers
// reuse their scratch buffers across intervals).
func MakeInterval(id vc.IntervalID, ts vc.Stamp, units []int, diffs []PageDiff) *Interval {
	iv := &Interval{
		ID:    id,
		TS:    ts,
		Units: append([]int(nil), units...),
		Diffs: append([]PageDiff(nil), diffs...),
	}
	// Keep Diffs sorted by page — the lookup index. closeInterval emits
	// diffs in first-write unit order, which is already ascending for
	// the common sweep patterns, so the insertion pass is usually one
	// comparison per element; duplicates are a protocol bug.
	for i := 1; i < len(iv.Diffs); i++ {
		pd := iv.Diffs[i]
		if iv.Diffs[i-1].Page < pd.Page {
			continue
		}
		lo, hi := 0, i
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if pd.Page < iv.Diffs[mid].Page {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		copy(iv.Diffs[lo+1:i+1], iv.Diffs[lo:i])
		iv.Diffs[lo] = pd
	}
	for i := 1; i < len(iv.Diffs); i++ {
		if iv.Diffs[i].Page == iv.Diffs[i-1].Page {
			panic("lrc: duplicate page diff in interval")
		}
	}
	return iv
}

// MissingWrite records, at some processor, one unseen remote interval
// that wrote a given page; the page stays invalid until the diffs of all
// its missing writes have been fetched and applied.
type MissingWrite struct {
	Interval *Interval
}

// WritersOf returns the distinct writer processors of a missing-write
// list, in ascending processor order — the "concurrent writers" whose
// cardinality drives the paper's false-sharing signature.
func WritersOf(miss []MissingWrite) []int {
	seen := make(map[int]bool)
	var out []int
	for _, m := range miss {
		p := m.Interval.ID.Proc
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}
