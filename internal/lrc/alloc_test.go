package lrc

import (
	"testing"

	"repro/internal/vc"
)

// TestAllocBudgetDeltaPath pins the interval-store read path at zero
// steady-state allocations: an acquire's delta computation refills a
// caller-owned slice (DeltaInto), the causal sort is in-place
// insertion over precomputed keys, and per-unit diff lookups are
// subslice views into the interval's page-sorted diff table.
func TestAllocBudgetDeltaPath(t *testing.T) {
	const nprocs = 4
	s := NewStore(nprocs)
	ts := vc.New(nprocs)
	for p := 0; p < nprocs; p++ {
		for i := int32(1); i <= 8; i++ {
			ts.Tick(p)
			s.Publish(MakeInterval(
				vc.IntervalID{Proc: p, Seq: i}, vc.DenseStamp(ts.Clone()),
				[]int{int(i) % 4},
				[]PageDiff{{Page: int(i) % 4}, {Page: 4 + int(i)%4}},
			))
		}
	}
	from, to := vc.New(nprocs), ts.Clone()

	var buf []*Interval
	buf = s.DeltaInto(from, to, buf) // size the buffer once
	if len(buf) != nprocs*8 {
		t.Fatalf("delta covers %d intervals, want %d", len(buf), nprocs*8)
	}
	if n := testing.AllocsPerRun(100, func() {
		buf = s.DeltaInto(from, to, buf)
	}); n != 0 {
		t.Errorf("DeltaInto (reused buffer): %v allocs/op, want 0", n)
	}

	iv := buf[0]
	if n := testing.AllocsPerRun(100, func() {
		_, _ = iv.Diff(iv.Diffs[0].Page)
		_ = iv.DiffsInUnit(iv.Units[0], 1)
		_, _, _ = iv.CausalKey()
	}); n != 0 {
		t.Errorf("interval lookups: %v allocs/op, want 0", n)
	}

	if n := testing.AllocsPerRun(100, func() {
		SortCausally(buf)
	}); n != 0 {
		t.Errorf("SortCausally: %v allocs/op, want 0", n)
	}
}
