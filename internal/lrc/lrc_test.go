package lrc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/vc"
)

// mkInterval builds an interval with unitPages=1 (unit == page) and one
// modified word per page.
func mkInterval(proc int, seq int32, ts vc.Time, pages ...int) *Interval {
	diffs := make([]PageDiff, len(pages))
	for i, p := range pages {
		page := make([]byte, mem.PageSize)
		tw := mem.MakeTwin(page)
		page[0] = byte(proc + 1) // one modified word
		diffs[i] = PageDiff{Page: p, D: mem.EncodeDiff(tw, page)}
	}
	return MakeInterval(vc.IntervalID{Proc: proc, Seq: seq}, vc.DenseStamp(ts), pages, diffs)
}

func TestIntervalDiffLookup(t *testing.T) {
	iv := mkInterval(0, 1, vc.Time{1, 0}, 3, 7)
	if _, ok := iv.Diff(3); !ok {
		t.Fatal("diff for written page missing")
	}
	if _, ok := iv.Diff(5); ok {
		t.Fatal("diff for unwritten page present")
	}
}

func TestDiffsInUnit(t *testing.T) {
	// Unit of 2 pages: unit 1 covers pages 2,3; unit 3 covers 6,7.
	iv := mkInterval(0, 1, vc.Time{1, 0}, 2, 3, 7)
	in1 := iv.DiffsInUnit(1, 2)
	if len(in1) != 2 || in1[0].Page != 2 || in1[1].Page != 3 {
		t.Fatalf("DiffsInUnit(1,2) = %v", in1)
	}
	in3 := iv.DiffsInUnit(3, 2)
	if len(in3) != 1 || in3[0].Page != 7 {
		t.Fatalf("DiffsInUnit(3,2) = %v", in3)
	}
	if got := iv.DiffsInUnit(0, 2); len(got) != 0 {
		t.Fatalf("DiffsInUnit(0,2) = %v, want empty", got)
	}
}

func TestMakeIntervalPanicsOnDuplicateDiff(t *testing.T) {
	page := make([]byte, mem.PageSize)
	tw := mem.MakeTwin(page)
	page[0] = 1
	d := mem.EncodeDiff(tw, page)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MakeInterval(vc.IntervalID{Proc: 0, Seq: 1}, vc.DenseStamp(vc.Time{1}),
		[]int{0}, []PageDiff{{Page: 0, D: d}, {Page: 0, D: d}})
}

func TestNoticeBytes(t *testing.T) {
	iv := mkInterval(0, 1, vc.Time{1, 0}, 3, 7)
	// 8 header + 2 procs * 4 + 2 pages * 4
	if got := iv.NoticeBytes(); got != 8+8+8 {
		t.Fatalf("NoticeBytes = %d", got)
	}
}

func TestStorePublishAndGet(t *testing.T) {
	s := NewStore(2)
	iv := mkInterval(1, 1, vc.Time{0, 1}, 4)
	s.Publish(iv)
	if got := s.Get(1, 1); got != iv {
		t.Fatal("Get returned wrong interval")
	}
}

func TestStorePublishOutOfOrderPanics(t *testing.T) {
	s := NewStore(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Publish(mkInterval(0, 2, vc.Time{2, 0}, 1))
}

func TestDeltaReturnsExactlyUnseen(t *testing.T) {
	s := NewStore(2)
	s.Publish(mkInterval(0, 1, vc.Time{1, 0}, 1))
	s.Publish(mkInterval(0, 2, vc.Time{2, 0}, 2))
	s.Publish(mkInterval(1, 1, vc.Time{0, 1}, 3))

	from := vc.Time{1, 0}
	to := vc.Time{2, 1}
	delta := s.Delta(from, to)
	if len(delta) != 2 {
		t.Fatalf("delta = %d intervals, want 2", len(delta))
	}
	ids := map[vc.IntervalID]bool{}
	for _, iv := range delta {
		ids[iv.ID] = true
	}
	if !ids[vc.IntervalID{Proc: 0, Seq: 2}] || !ids[vc.IntervalID{Proc: 1, Seq: 1}] {
		t.Fatalf("delta ids = %v", ids)
	}
}

func TestDeltaEmptyWhenCaughtUp(t *testing.T) {
	s := NewStore(2)
	s.Publish(mkInterval(0, 1, vc.Time{1, 0}, 1))
	if d := s.Delta(vc.Time{1, 0}, vc.Time{1, 0}); len(d) != 0 {
		t.Fatalf("delta = %v, want empty", d)
	}
}

func TestSortCausallyRespectsHappensBefore(t *testing.T) {
	// p0 closes i1 at <1,0>; p1 acquires from p0 then closes i1 at <1,1>;
	// p0 closes i2 at <2,0> concurrent with p1's i1? <2,0> vs <1,1> are
	// concurrent. The sort must place <1,0> first.
	a := mkInterval(0, 1, vc.Time{1, 0}, 1)
	b := mkInterval(1, 1, vc.Time{1, 1}, 2)
	c := mkInterval(0, 2, vc.Time{2, 0}, 3)
	ivs := []*Interval{c, b, a}
	SortCausally(ivs)
	if ivs[0] != a {
		t.Fatalf("first interval = %v, want %v", ivs[0].ID, a.ID)
	}
	// b and c are concurrent; order must be deterministic (sum equal ⇒
	// proc order): c (proc 0) before b (proc 1).
	if ivs[1] != c || ivs[2] != b {
		t.Fatalf("tie order = %v, %v", ivs[1].ID, ivs[2].ID)
	}
}

func TestWritersOf(t *testing.T) {
	miss := []MissingWrite{
		{Interval: mkInterval(2, 1, vc.Time{0, 0, 1}, 5)},
		{Interval: mkInterval(0, 1, vc.Time{1, 0, 0}, 5)},
		{Interval: mkInterval(2, 2, vc.Time{0, 0, 2}, 5)},
	}
	got := WritersOf(miss)
	if !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("WritersOf = %v", got)
	}
	if WritersOf(nil) != nil {
		t.Fatal("WritersOf(nil) must be nil")
	}
}

// Property: for random interval DAGs built from merges, SortCausally is a
// linear extension of happens-before (TS(a) < TS(b) ⇒ a before b).
func TestPropSortCausallyLinearExtension(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(args []reflect.Value, r *rand.Rand) {
			const procs = 4
			vts := make([]vc.Time, procs)
			for p := range vts {
				vts[p] = vc.New(procs)
			}
			var ivs []*Interval
			seqs := [procs]int32{}
			// Random schedule: each step one proc ticks (closing an
			// interval), occasionally merging another proc's time first
			// (modelling an acquire).
			for step := 0; step < 20; step++ {
				p := r.Intn(procs)
				if r.Intn(2) == 0 {
					vts[p].Merge(vts[r.Intn(procs)])
				}
				seqs[p]++
				vts[p][p] = seqs[p]
				ivs = append(ivs, mkInterval(p, seqs[p], vts[p].Clone(), step%8))
			}
			args[0] = reflect.ValueOf(ivs)
		},
	}
	f := func(ivs []*Interval) bool {
		SortCausally(ivs)
		for i := 0; i < len(ivs); i++ {
			for j := i + 1; j < len(ivs); j++ {
				if ivs[j].TS.Dense(nil).Before(ivs[i].TS.Dense(nil)) {
					return false // a later element happens before an earlier one
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Delta(from, to) returns exactly the intervals whose (proc,
// seq) lies in the half-open vector range.
func TestPropDeltaMembership(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(args []reflect.Value, r *rand.Rand) {
			const procs = 3
			s := NewStore(procs)
			counts := vc.New(procs)
			for p := 0; p < procs; p++ {
				n := int32(r.Intn(5))
				counts[p] = n
				for seq := int32(1); seq <= n; seq++ {
					ts := vc.New(procs)
					ts[p] = seq
					s.Publish(mkInterval(p, seq, ts, int(seq)))
				}
			}
			from := vc.New(procs)
			to := vc.New(procs)
			for p := 0; p < procs; p++ {
				from[p] = int32(r.Intn(int(counts[p]) + 1))
				to[p] = from[p] + int32(r.Intn(int(counts[p]-from[p])+1))
			}
			args[0] = reflect.ValueOf(s)
			args[1] = reflect.ValueOf(from)
			args[2] = reflect.ValueOf(to)
		},
	}
	f := func(s *Store, from, to vc.Time) bool {
		delta := s.Delta(from, to)
		want := 0
		for p := range from {
			want += int(to[p] - from[p])
		}
		if len(delta) != want {
			return false
		}
		for _, iv := range delta {
			p := iv.ID.Proc
			if iv.ID.Seq <= from[p] || iv.ID.Seq > to[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
