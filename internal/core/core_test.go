package core

import (
	"math"
	"testing"

	"repro/internal/instrument"
)

func TestExchanges(t *testing.T) {
	if (PageAccess{}).Exchanges() != 0 {
		t.Fatal("unaccessed page exchanges != 0")
	}
	a := PageAccess{Accessed: true, Writers: Writers(1, 2)}
	if a.Exchanges() != 2 {
		t.Fatalf("Exchanges = %d", a.Exchanges())
	}
	notAccessed := PageAccess{Writers: Writers(1, 2, 3)}
	if notAccessed.Exchanges() != 0 {
		t.Fatal("writers without access must cost nothing")
	}
}

// The paper's §3 first example: p1 writes two contiguous pages, p2 reads
// both. Aggregation halves the exchanges (delta +1).
func TestAggregationDeltaSavesMessages(t *testing.T) {
	pa := PageAccess{Accessed: true, Writers: Writers(1)}
	pb := PageAccess{Accessed: true, Writers: Writers(1)}
	if d := AggregationDelta(pa, pb); d != 1 {
		t.Fatalf("delta = %d, want +1", d)
	}
}

// §3 second example, modified: p1 writes Pa, p2 writes Pb, p3 reads only
// Pa. Aggregation adds a useless exchange (delta −1).
func TestAggregationDeltaAddsMessages(t *testing.T) {
	pa := PageAccess{Accessed: true, Writers: Writers(1)}
	pb := PageAccess{Accessed: false, Writers: Writers(2)}
	if d := AggregationDelta(pa, pb); d != -1 {
		t.Fatalf("delta = %d, want -1", d)
	}
}

// §3 second example, unmodified: p1 writes Pa, p2 writes Pb, p3 reads
// both. Message count unchanged (but parallel fetch still helps).
func TestAggregationDeltaNeutral(t *testing.T) {
	pa := PageAccess{Accessed: true, Writers: Writers(1)}
	pb := PageAccess{Accessed: true, Writers: Writers(2)}
	if d := AggregationDelta(pa, pb); d != 0 {
		t.Fatalf("delta = %d, want 0", d)
	}
}

func TestMergeUnionsWriters(t *testing.T) {
	m := Merge(
		PageAccess{Accessed: true, Writers: Writers(1, 2)},
		PageAccess{Accessed: false, Writers: Writers(2, 3)},
	)
	if !m.Accessed || len(m.Writers) != 3 {
		t.Fatalf("merge = %+v", m)
	}
}

func statsWithSignature(buckets map[int]int) *instrument.Stats {
	st := &instrument.Stats{Signature: make(map[int]*instrument.SigBucket)}
	for k, n := range buckets {
		st.Signature[k] = &instrument.SigBucket{Writers: k, Faults: n}
	}
	return st
}

func TestSignatureOfNormalizes(t *testing.T) {
	sig := SignatureOf(statsWithSignature(map[int]int{1: 30, 2: 10}))
	if math.Abs(sig[1]-0.75) > 1e-12 || math.Abs(sig[2]-0.25) > 1e-12 {
		t.Fatalf("sig = %v", sig)
	}
	if got := sig.Mean(); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
	empty := SignatureOf(statsWithSignature(nil))
	if len(empty) != 0 || empty.Mean() != 0 {
		t.Fatal("empty signature")
	}
}

func TestShiftAndClassify(t *testing.T) {
	a := Signature{1: 1.0}
	b := Signature{1: 0.5, 2: 0.5} // mean 1.5
	c := Signature{2: 0.2, 7: 0.8} // mean 6
	if s := Shift(a, a); Classify(s) != Invariant {
		t.Fatalf("self shift = %v", Classify(s))
	}
	if s := Shift(a, b); Classify(s) != SlightShift {
		t.Fatalf("a→b = %v (shift %v)", Classify(s), s)
	}
	if s := Shift(a, c); Classify(s) != SizableShift {
		t.Fatalf("a→c = %v", Classify(s))
	}
}

func TestShiftVerdictString(t *testing.T) {
	if Invariant.String() != "invariant" || SlightShift.String() != "slight-shift" ||
		SizableShift.String() != "sizable-shift" {
		t.Fatal("verdict names")
	}
	if ShiftVerdict(9).String() != "ShiftVerdict(9)" {
		t.Fatal("unknown verdict")
	}
}

func TestBuckets(t *testing.T) {
	s := Signature{7: 0.1, 1: 0.9}
	b := s.Buckets()
	if len(b) != 2 || b[0] != 1 || b[1] != 7 {
		t.Fatalf("buckets = %v", b)
	}
}

func TestBestUnit(t *testing.T) {
	label, tt := BestUnit(map[string]float64{"4K": 10, "8K": 8, "16K": 9, "Dyn": 8.2})
	if label != "8K" || tt != 8 {
		t.Fatalf("best = %s %v", label, tt)
	}
	// Deterministic tie-break by label order.
	label, _ = BestUnit(map[string]float64{"b": 1, "a": 1})
	if label != "a" {
		t.Fatalf("tie-break = %s", label)
	}
}
