// Package core implements the paper's analytical contribution: the §3
// model of how aggregation changes message counts, and the
// false-sharing-signature analysis used to predict whether a larger
// consistency unit helps or hurts.
//
// The paper's central formula: the number of message exchanges at a page
// fault equals the number of concurrent writers seen at the previous
// synchronization,
//
//	messages = access(P) × card(CW(P))
//
// and aggregating pages Pa and Pb changes the count by
//
//	access(Pa)·card(CW(Pa)) + access(Pb)·card(CW(Pb))
//	    − access(Pa,Pb)·card(CW(Pa) ∪ CW(Pb))
//
// A positive delta means aggregation saves messages; a negative delta
// means false sharing dominates. The signature analysis generalizes this:
// a rightward shift of the concurrent-writer histogram predicts a loss.
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/instrument"
)

// PageAccess describes, for one page and one faulting processor at one
// synchronization epoch, whether the page is accessed and by how many
// concurrent writers it was written.
type PageAccess struct {
	Accessed bool
	Writers  map[int]bool
}

// Exchanges returns access(P) × card(CW(P)), the §3 message-exchange
// count for one page.
func (a PageAccess) Exchanges() int {
	if !a.Accessed {
		return 0
	}
	return len(a.Writers)
}

// Merge returns the access behaviour of the aggregated unit (Pa, Pb, …):
// accessed if any member is accessed, written by the union of writers.
func Merge(pages ...PageAccess) PageAccess {
	out := PageAccess{Writers: make(map[int]bool)}
	for _, p := range pages {
		out.Accessed = out.Accessed || p.Accessed
		for w := range p.Writers {
			out.Writers[w] = true
		}
	}
	return out
}

// AggregationDelta returns the §3 message-count change from fusing the
// given pages into one consistency unit: positive = messages saved by
// aggregation, negative = messages added by false sharing.
func AggregationDelta(pages ...PageAccess) int {
	sep := 0
	for _, p := range pages {
		sep += p.Exchanges()
	}
	return sep - Merge(pages...).Exchanges()
}

// Writers builds a writer set from processor ids.
func Writers(ids ...int) map[int]bool {
	m := make(map[int]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// Signature is a false-sharing signature: for each concurrent-writer
// cardinality, the fraction of faults observing it.
type Signature map[int]float64

// SignatureOf normalizes the instrumentation's signature buckets into
// fault frequencies.
func SignatureOf(st *instrument.Stats) Signature {
	total := 0
	for _, b := range st.Signature {
		total += b.Faults
	}
	sig := make(Signature, len(st.Signature))
	if total == 0 {
		return sig
	}
	for k, b := range st.Signature {
		sig[k] = float64(b.Faults) / float64(total)
	}
	return sig
}

// Mean returns the expected concurrent-writer cardinality.
func (s Signature) Mean() float64 {
	var m float64
	for k, f := range s {
		m += float64(k) * f
	}
	return m
}

// Shift quantifies how far signature b has moved right of signature a:
// the difference of their means. The paper's rule: "a sizable shift in
// false sharing signature towards larger numbers when going to larger
// consistency units predicts a loss in performance".
func Shift(a, b Signature) float64 { return b.Mean() - a.Mean() }

// ShiftVerdict classifies a shift per the paper's qualitative rule.
type ShiftVerdict int

const (
	// Invariant: the signature barely moved; aggregation should win.
	Invariant ShiftVerdict = iota
	// SlightShift: a small move right; aggregation usually still wins.
	SlightShift
	// SizableShift: false sharing dominates; expect a loss.
	SizableShift
)

func (v ShiftVerdict) String() string {
	switch v {
	case Invariant:
		return "invariant"
	case SlightShift:
		return "slight-shift"
	case SizableShift:
		return "sizable-shift"
	default:
		return fmt.Sprintf("ShiftVerdict(%d)", int(v))
	}
}

// Classify applies thresholds to a shift: < 0.15 writers invariant,
// < 1 writer slight, otherwise sizable.
func Classify(shift float64) ShiftVerdict {
	switch {
	case math.Abs(shift) < 0.15:
		return Invariant
	case shift < 1.0:
		return SlightShift
	default:
		return SizableShift
	}
}

// Buckets returns the signature's cardinalities in ascending order.
func (s Signature) Buckets() []int {
	out := make([]int, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// BestUnit picks, from measured execution times per configuration label,
// the fastest one — used to check the paper's claim that dynamic
// aggregation is within a few percent of the best static unit.
func BestUnit(times map[string]float64) (label string, t float64) {
	t = math.Inf(1)
	labels := make([]string, 0, len(times))
	for l := range times {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		if times[l] < t {
			label, t = l, times[l]
		}
	}
	return label, t
}
