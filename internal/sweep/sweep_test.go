package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunOrderAndValues(t *testing.T) {
	p := New(4)
	tasks := make([]Task, 20)
	for i := range tasks {
		tasks[i] = Task{Do: func(context.Context) (any, error) { return i * i, nil }}
	}
	got, err := p.Run(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v.(int) != i*i {
			t.Fatalf("result[%d] = %v, want %d", i, v, i*i)
		}
	}
}

func TestRunDedupByKey(t *testing.T) {
	p := New(4)
	var execs atomic.Int64
	tasks := make([]Task, 12)
	for i := range tasks {
		key := fmt.Sprintf("cell-%d", i%3) // 3 distinct keys, 4 aliases each
		tasks[i] = Task{Key: key, Do: func(context.Context) (any, error) {
			execs.Add(1)
			return key, nil
		}}
	}
	got, err := p.Run(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if n := execs.Load(); n != 3 {
		t.Fatalf("executions = %d, want 3 (dedup by key)", n)
	}
	for i, v := range got {
		if want := fmt.Sprintf("cell-%d", i%3); v.(string) != want {
			t.Fatalf("result[%d] = %v, want %s", i, v, want)
		}
	}
}

func TestRunEmptyKeyNeverShared(t *testing.T) {
	p := New(2)
	var execs atomic.Int64
	tasks := make([]Task, 5)
	for i := range tasks {
		tasks[i] = Task{Do: func(context.Context) (any, error) {
			execs.Add(1)
			return nil, nil
		}}
	}
	if _, err := p.Run(context.Background(), tasks); err != nil {
		t.Fatal(err)
	}
	if n := execs.Load(); n != 5 {
		t.Fatalf("executions = %d, want 5", n)
	}
}

// TestRunFirstErrorCancelsBatch uses a width-1 pool so the failing
// task deterministically precedes the queued ones: a wider pool's
// other workers may legitimately drain their blocks before the
// failure lands (cancellation is advisory for in-flight work).
func TestRunFirstErrorCancelsBatch(t *testing.T) {
	p := New(1)
	boom := errors.New("boom")
	var after atomic.Int64
	tasks := []Task{
		{Do: func(context.Context) (any, error) { return nil, boom }},
	}
	for i := 0; i < 50; i++ {
		tasks = append(tasks, Task{Do: func(context.Context) (any, error) {
			after.Add(1)
			return nil, nil
		}})
	}
	if _, err := p.Run(context.Background(), tasks); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := after.Load(); n != 0 {
		t.Fatalf("%d queued tasks ran despite batch failure", n)
	}
}

func TestRunContextCancel(t *testing.T) {
	p := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.Run(ctx, []Task{
		{Do: func(context.Context) (any, error) { return 1, nil }},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestStealing pins that an idle worker takes work from a loaded
// victim's block: with 2 workers and a first block that parks on a
// channel, the second worker must execute its own block and then
// steal the parked worker's remaining jobs, or the batch (released
// only after the fast jobs finish) never completes.
func TestStealing(t *testing.T) {
	p := New(2)
	release := make(chan struct{})
	var fast atomic.Int64
	const fastJobs = 9
	tasks := []Task{
		// Job 0: first in worker 0's block; parks until the fast jobs
		// are done. Worker 0 contributes nothing else to the batch.
		{Do: func(context.Context) (any, error) {
			<-release
			return "slow", nil
		}},
	}
	for i := 0; i < fastJobs; i++ {
		tasks = append(tasks, Task{Do: func(context.Context) (any, error) {
			if fast.Add(1) == fastJobs {
				close(release)
			}
			return "fast", nil
		}})
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := p.Run(context.Background(), tasks); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("batch deadlocked: fast jobs behind the parked worker were never stolen")
	}
}

// TestDoSharesBudget pins that Do callers and batch workers draw from
// one slot pool: a pool of width 1 never runs two executions at once.
func TestDoSharesBudget(t *testing.T) {
	p := New(1)
	var inFlight, maxFlight atomic.Int64
	body := func(context.Context) (any, error) {
		if f := inFlight.Add(1); f > maxFlight.Load() {
			maxFlight.Store(f)
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return nil, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Do(context.Background(), body); err != nil {
				t.Error(err)
			}
		}()
	}
	tasks := make([]Task, 4)
	for i := range tasks {
		tasks[i] = Task{Do: body}
	}
	if _, err := p.Run(context.Background(), tasks); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if m := maxFlight.Load(); m > 1 {
		t.Fatalf("max concurrent executions = %d on a width-1 pool", m)
	}
}

func TestDoCanceledWhileWaiting(t *testing.T) {
	p := New(1)
	hold := make(chan struct{})
	go p.Do(context.Background(), func(context.Context) (any, error) {
		<-hold
		return nil, nil
	})
	// Wait until the slot is taken.
	for len(p.slots) == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Do(ctx, func(context.Context) (any, error) { return nil, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(hold)
}
