// Package sweep is the experiment-grid scheduler: a work-stealing
// pool that runs the independent cells of a sweep (experiments ×
// networks × protocols × placements) across the machine's cores.
//
// The shape is the classic per-worker deque design: a batch is
// sharded into contiguous blocks, one deque per worker, and each
// worker drains its own deque from the bottom (LIFO — the block it
// was given, in order) while idle workers steal from the *top* of a
// victim's deque (FIFO — the work its owner will reach last). Blocks
// keep neighbouring grid cells (same experiment, same app state in
// cache) on one worker; stealing keeps every core busy when cell
// costs are wildly uneven, which they are — a TSP cell costs ~100× a
// Barnes cell, so static sharding alone would leave most cores idle
// behind one unlucky worker.
//
// Tasks carry an optional dedup key: two tasks with the same
// non-empty key share one execution and both receive its result. The
// harness keys cells by the experiment service's canonical spec hash
// (see expsvc), so aliased configurations — an empty network and
// "ideal", an empty placement and the registered default — never run
// twice in one batch.
//
// A Pool is also the machine's run budget: the experiment service's
// cache-miss path executes through Do on the same pool semantics the
// batch path uses, so HTTP-driven runs and grid sweeps share one
// bounded concurrency story.
package sweep

import (
	"context"
	"runtime"
	"sync"
)

// Task is one independent unit of a sweep batch.
type Task struct {
	// Key dedups: tasks with the same non-empty Key share one
	// execution (and its result). An empty Key is never shared.
	Key string
	// Do computes the task's value. It must be safe to run
	// concurrently with other tasks' Do.
	Do func(ctx context.Context) (any, error)
}

// Pool runs tasks on a bounded number of workers.
type Pool struct {
	workers int
	// slots is the shared run budget: batch workers and Do callers
	// each hold one slot while executing.
	slots chan struct{}
}

// New builds a pool of the given width; workers <= 0 selects
// GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, slots: make(chan struct{}, workers)}
}

// Workers returns the pool's width.
func (p *Pool) Workers() int { return p.workers }

// Do runs one task under the pool's budget, waiting for a free slot
// first — the experiment service's miss path. Waiting respects ctx.
func (p *Pool) Do(ctx context.Context, fn func(context.Context) (any, error)) (any, error) {
	select {
	case p.slots <- struct{}{}:
		defer func() { <-p.slots }()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return fn(ctx)
}

// job is one deduplicated execution and the task indices it serves.
type job struct {
	do      func(ctx context.Context) (any, error)
	indices []int
}

// deque is one worker's job queue. The owner pops from the bottom
// (its block in order); thieves steal from the top. A mutex suffices:
// steals only happen once a thief's own deque is empty, so the lock
// is all but uncontended in the steady state.
type deque struct {
	mu   sync.Mutex
	jobs []*job
}

func (d *deque) popBottom() *job {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n := len(d.jobs); n > 0 {
		j := d.jobs[n-1]
		d.jobs = d.jobs[:n-1]
		return j
	}
	return nil
}

func (d *deque) stealTop() *job {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.jobs) > 0 {
		j := d.jobs[0]
		d.jobs = d.jobs[1:]
		return j
	}
	return nil
}

// Run executes a batch and returns one value per task, in task order.
// Tasks sharing a non-empty Key execute once. The first task error
// cancels the rest of the batch (in-flight tasks finish; queued ones
// are dropped) and is returned; ctx cancellation does the same.
func (p *Pool) Run(ctx context.Context, tasks []Task) ([]any, error) {
	if len(tasks) == 0 {
		return nil, nil
	}

	// Dedup into jobs, preserving first-appearance order so block
	// sharding keeps grid neighbours together.
	jobs := make([]*job, 0, len(tasks))
	byKey := make(map[string]*job, len(tasks))
	for i, t := range tasks {
		if t.Key != "" {
			if j, ok := byKey[t.Key]; ok {
				j.indices = append(j.indices, i)
				continue
			}
		}
		j := &job{do: t.Do, indices: []int{i}}
		if t.Key != "" {
			byKey[t.Key] = j
		}
		jobs = append(jobs, j)
	}

	nw := p.workers
	if nw > len(jobs) {
		nw = len(jobs)
	}

	// Shard contiguous blocks across the workers' deques. The owner
	// pops from the bottom, so each block is pushed in reverse to
	// execute in order.
	deques := make([]deque, nw)
	for w := 0; w < nw; w++ {
		lo, hi := len(jobs)*w/nw, len(jobs)*(w+1)/nw
		block := deques[w].jobs[:0]
		for i := hi - 1; i >= lo; i-- {
			block = append(block, jobs[i])
		}
		deques[w].jobs = block
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]any, len(tasks))
	var (
		errOnce sync.Once
		firstEr error
		wg      sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() { firstEr = err; cancel() })
	}

	wg.Add(nw)
	for w := 0; w < nw; w++ {
		go func(self int) {
			defer wg.Done()
			// A worker holds one pool slot for its whole tenure, so
			// concurrent batches and Do callers share the budget.
			select {
			case p.slots <- struct{}{}:
				defer func() { <-p.slots }()
			case <-ctx.Done():
				fail(ctx.Err())
				return
			}
			for {
				if ctx.Err() != nil {
					fail(ctx.Err())
					return
				}
				j := deques[self].popBottom()
				if j == nil {
					// Own block drained: steal the oldest queued job
					// from the first non-empty victim, scanning from
					// the next worker around the ring.
					for k := 1; k < nw && j == nil; k++ {
						j = deques[(self+k)%nw].stealTop()
					}
				}
				if j == nil {
					return
				}
				v, err := j.do(ctx)
				if err != nil {
					fail(err)
					return
				}
				for _, i := range j.indices {
					results[i] = v
				}
			}
		}(w)
	}
	wg.Wait()

	if firstEr != nil {
		return nil, firstEr
	}
	return results, nil
}
