package expsvc

import (
	"repro/internal/apps"
	"repro/internal/netmodel"
	"repro/internal/tmk"
)

// RegistryJSON is the machine-readable dump of every experiment axis:
// the workloads and the protocol, network, and placement registries
// with their defaults. It is the single source both discovery surfaces
// share — the service's GET /v1/registry handler and dsmrun -list -json
// — so the two can never drift.
type RegistryJSON struct {
	Workloads        []RegistryWorkload `json:"workloads"`
	Protocols        []string           `json:"protocols"`
	DefaultProtocol  string             `json:"default_protocol"`
	Networks         []string           `json:"networks"`
	DefaultNetwork   string             `json:"default_network"`
	Placements       []string           `json:"placements"`
	DefaultPlacement string             `json:"default_placement"`
	Barriers         []string           `json:"barriers"`
	DefaultBarrier   string             `json:"default_barrier"`
	Scales           []string           `json:"scales"`
	DefaultScale     string             `json:"default_scale"`
}

// RegistryWorkload is one application with its registered datasets, in
// registration order (the first dataset is the app's default).
type RegistryWorkload struct {
	App      string            `json:"app"`
	Datasets []RegistryDataset `json:"datasets"`
}

// RegistryDataset is one registered input size.
type RegistryDataset struct {
	Dataset string `json:"dataset"`
	// Paper is the paper dataset this one stands in for; empty for
	// sweep sizes with no paper counterpart.
	Paper string `json:"paper,omitempty"`
}

// Registry builds the dump from the live registries.
func Registry() RegistryJSON {
	out := RegistryJSON{
		Protocols:        tmk.ProtocolNames(),
		DefaultProtocol:  tmk.DefaultProtocol,
		Networks:         netmodel.Names(),
		DefaultNetwork:   netmodel.Default,
		Placements:       tmk.PlacementNames(),
		DefaultPlacement: tmk.DefaultPlacement,
		Barriers:         tmk.BarrierNames(),
		DefaultBarrier:   tmk.DefaultBarrier,
		Scales:           []string{tmk.ScaleSparse, tmk.ScaleDense},
		DefaultScale:     tmk.DefaultScale,
	}
	for _, e := range apps.Entries() {
		n := len(out.Workloads)
		if n == 0 || out.Workloads[n-1].App != e.App {
			out.Workloads = append(out.Workloads, RegistryWorkload{App: e.App})
			n++
		}
		out.Workloads[n-1].Datasets = append(out.Workloads[n-1].Datasets,
			RegistryDataset{Dataset: e.Dataset, Paper: e.Paper})
	}
	return out
}
