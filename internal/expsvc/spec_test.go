package expsvc

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/harness"
	"repro/internal/tmk"
)

func mustResolve(t *testing.T, s Spec) *Resolved {
	t.Helper()
	r, err := Resolve(s)
	if err != nil {
		t.Fatalf("Resolve(%+v): %v", s, err)
	}
	return r
}

// A spec that spells out every default must address the same cell as
// the minimal spec that omits them — the property that lets repeat
// traffic hit the cache regardless of client verbosity.
func TestHashDefaultedVsExplicit(t *testing.T) {
	minimal := mustResolve(t, Spec{App: "jacobi"})
	explicit := mustResolve(t, Spec{
		App:       "Jacobi",
		Dataset:   "128x512 (row=1pg)", // the app's default dataset
		UnitPages: 1,
		Protocol:  "homeless",
		Network:   "ideal",
		Placement: "rr",
		Procs:     harness.Procs,
		Trials:    1,
	})
	if got, want := explicit.Hash(), minimal.Hash(); got != want {
		t.Fatalf("explicit-defaults hash %s != minimal hash %s\ncanonical: %+v vs %+v",
			got, want, explicit.Canonical(), minimal.Canonical())
	}
}

func TestHashDatasetSubstringAndCase(t *testing.T) {
	full := mustResolve(t, Spec{App: "Jacobi", Dataset: "64x1024 (row=2pg)"})
	sub := mustResolve(t, Spec{App: "JACOBI", Dataset: "1024"})
	if full.Hash() != sub.Hash() {
		t.Fatalf("substring dataset resolves to different cell: %q vs %q",
			full.Canonical().Dataset, sub.Canonical().Dataset)
	}
	if full.Canonical().Dataset != "64x1024 (row=2pg)" {
		t.Fatalf("canonical dataset = %q", full.Canonical().Dataset)
	}
}

// The adaptive knobs are inert under static protocols; spelling them
// must not split the cache.
func TestHashAdaptiveKnobCanonicalization(t *testing.T) {
	plain := mustResolve(t, Spec{App: "water", Protocol: "home"})
	noisy := mustResolve(t, Spec{App: "water", Protocol: "HOME", AdaptHysteresis: 7, AdaptQueueGateUS: 55})
	if plain.Hash() != noisy.Hash() {
		t.Fatalf("inert adaptive knobs changed the hash")
	}

	// Under adaptive they are load-bearing: the default hysteresis
	// written out loud is the same cell, a different value is not, and
	// every negative gate (all mean "disabled") is one cell.
	a := mustResolve(t, Spec{App: "water", Protocol: "adaptive"})
	aDefault := mustResolve(t, Spec{App: "water", Protocol: "adaptive", AdaptHysteresis: tmk.DefaultAdaptHysteresis})
	aOther := mustResolve(t, Spec{App: "water", Protocol: "adaptive", AdaptHysteresis: tmk.DefaultAdaptHysteresis + 1})
	if a.Hash() != aDefault.Hash() {
		t.Fatalf("explicit default hysteresis changed the hash")
	}
	if a.Hash() == aOther.Hash() {
		t.Fatalf("different hysteresis hashed to the same cell")
	}
	g1 := mustResolve(t, Spec{App: "water", Protocol: "adaptive", AdaptQueueGateUS: -1})
	g2 := mustResolve(t, Spec{App: "water", Protocol: "adaptive", AdaptQueueGateUS: -250})
	if g1.Hash() != g2.Hash() {
		t.Fatalf("two disabled gates hashed to different cells")
	}
}

func TestHashDistinguishesCells(t *testing.T) {
	base := mustResolve(t, Spec{App: "jacobi"}).Hash()
	for name, s := range map[string]Spec{
		"unit":    {App: "jacobi", UnitPages: 2},
		"dynamic": {App: "jacobi", Dynamic: true},
		"proto":   {App: "jacobi", Protocol: "home"},
		"net":     {App: "jacobi", Network: "bus"},
		"place":   {App: "jacobi", Protocol: "home", Placement: "firsttouch"},
		"procs":   {App: "jacobi", Procs: 4},
		"trials":  {App: "jacobi", Trials: 2},
		"collect": {App: "jacobi", Collect: true},
		"dataset": {App: "jacobi", Dataset: "small"},
	} {
		if mustResolve(t, s).Hash() == base {
			t.Errorf("%s: spec %+v collided with the base cell", name, s)
		}
	}
}

func TestResolveFieldErrors(t *testing.T) {
	for _, tc := range []struct {
		name  string
		spec  Spec
		field string
	}{
		{"missing app", Spec{}, "app"},
		{"unknown app", Spec{App: "nosuch"}, "app"},
		{"unknown dataset", Spec{App: "jacobi", Dataset: "zzz"}, "dataset"},
		{"bad protocol", Spec{App: "jacobi", Protocol: "zzz"}, "protocol"},
		{"bad network", Spec{App: "jacobi", Network: "zzz"}, "network"},
		{"bad placement", Spec{App: "jacobi", Placement: "zzz"}, "placement"},
		{"dynamic multi-page", Spec{App: "jacobi", Dynamic: true, UnitPages: 2}, "unit_pages"},
		{"negative unit", Spec{App: "jacobi", UnitPages: -1}, "unit_pages"},
		{"huge unit", Spec{App: "jacobi", UnitPages: MaxUnitPages + 1}, "unit_pages"},
		{"negative procs", Spec{App: "jacobi", Procs: -1}, "procs"},
		{"huge procs", Spec{App: "jacobi", Procs: MaxProcs + 1}, "procs"},
		{"negative trials", Spec{App: "jacobi", Trials: -1}, "trials"},
		{"huge trials", Spec{App: "jacobi", Trials: MaxTrials + 1}, "trials"},
		{"negative hysteresis", Spec{App: "jacobi", AdaptHysteresis: -1}, "adapt_hysteresis"},
	} {
		_, err := Resolve(tc.spec)
		if err == nil {
			t.Errorf("%s: Resolve accepted %+v", tc.name, tc.spec)
			continue
		}
		var fe *FieldError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v is not a FieldError", tc.name, err)
			continue
		}
		if fe.Field != tc.field {
			t.Errorf("%s: error names field %q, want %q (%v)", tc.name, fe.Field, tc.field, err)
		}
	}
}

func TestEngineConfigRoundTrip(t *testing.T) {
	r := mustResolve(t, Spec{App: "tsp", Protocol: "adaptive", Network: "bus", Trials: 3, Collect: true})
	cfg := r.EngineConfig()
	if cfg.Procs != harness.Procs || cfg.Protocol != "adaptive" || cfg.Network != "bus" ||
		cfg.Placement != tmk.DefaultPlacement || !cfg.Collect {
		t.Fatalf("EngineConfig = %+v", cfg)
	}
	if r.Trials() != 3 {
		t.Fatalf("Trials = %d", r.Trials())
	}
	// The engine must accept every resolved config verbatim.
	if _, err := tmk.NewSystem(cfg); err != nil {
		t.Fatalf("engine rejected resolved config: %v", err)
	}
}

func TestRegistryMatchesLookups(t *testing.T) {
	reg := Registry()
	if len(reg.Workloads) == 0 || len(reg.Protocols) == 0 || len(reg.Networks) == 0 || len(reg.Placements) == 0 {
		t.Fatalf("registry dump incomplete: %+v", reg)
	}
	// Every advertised workload must resolve.
	for _, wl := range reg.Workloads {
		for _, ds := range wl.Datasets {
			if _, err := Resolve(Spec{App: wl.App, Dataset: ds.Dataset}); err != nil {
				t.Errorf("advertised workload %s/%s does not resolve: %v", wl.App, ds.Dataset, err)
			}
		}
	}
	if reg.DefaultProtocol != tmk.DefaultProtocol || reg.DefaultPlacement != tmk.DefaultPlacement {
		t.Fatalf("defaults drifted: %+v", reg)
	}
	if !strings.Contains(strings.Join(reg.Protocols, ","), "adaptive") {
		t.Fatalf("protocols missing adaptive: %v", reg.Protocols)
	}
}
