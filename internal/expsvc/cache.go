package expsvc

import (
	"container/list"
	"sync"
)

// DefaultCacheEntries is the result cache's default LRU bound.
const DefaultCacheEntries = 1024

// Cache is the content-addressed result cache: canonical spec hash →
// marshaled report. The engine is deterministic, so an entry can never
// go stale — there is no TTL, only an LRU entry bound to keep a
// long-running service from holding every cell of an unbounded
// experiment grid.
type Cache struct {
	mu        sync.Mutex
	max       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	evictions uint64
}

type cacheEntry struct {
	hash string
	body []byte
}

// NewCache builds a cache bounded to max entries (max <= 0 selects
// DefaultCacheEntries).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheEntries
	}
	return &Cache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached body for a hash, refreshing its recency. The
// returned slice is shared — callers must not mutate it.
func (c *Cache) Get(hash string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[hash]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Add inserts (or refreshes) an entry and evicts from the LRU tail past
// the bound.
func (c *Cache) Add(hash string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[hash]; ok {
		// Determinism means a re-run produced the same body; keep the
		// newer slice anyway and refresh recency.
		el.Value.(*cacheEntry).body = body
		c.ll.MoveToFront(el)
		return
	}
	c.items[hash] = c.ll.PushFront(&cacheEntry{hash: hash, body: body})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).hash)
		c.evictions++
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Capacity returns the LRU bound.
func (c *Cache) Capacity() int { return c.max }

// Evictions returns the number of entries dropped over the bound.
func (c *Cache) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
