package expsvc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheLRUBound(t *testing.T) {
	c := NewCache(3)
	for i := 0; i < 5; i++ {
		c.Add(fmt.Sprintf("h%d", i), []byte{byte(i)})
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if c.Evictions() != 2 {
		t.Fatalf("Evictions = %d, want 2", c.Evictions())
	}
	for _, gone := range []string{"h0", "h1"} {
		if _, ok := c.Get(gone); ok {
			t.Errorf("%s survived eviction", gone)
		}
	}
	for _, kept := range []string{"h2", "h3", "h4"} {
		if _, ok := c.Get(kept); !ok {
			t.Errorf("%s was evicted out of LRU order", kept)
		}
	}
}

func TestCacheGetRefreshesRecency(t *testing.T) {
	c := NewCache(2)
	c.Add("a", []byte("a"))
	c.Add("b", []byte("b"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Add("c", []byte("c")) // must evict b, not the just-touched a
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived; Get did not refresh recency of a")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite being most recently used")
	}
}

func TestCacheAddExistingUpdates(t *testing.T) {
	c := NewCache(2)
	c.Add("a", []byte("old"))
	c.Add("a", []byte("new"))
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if got, _ := c.Get("a"); string(got) != "new" {
		t.Fatalf("Get = %q, want new", got)
	}
}

func TestCacheDefaultCapacity(t *testing.T) {
	if got := NewCache(0).Capacity(); got != DefaultCacheEntries {
		t.Fatalf("Capacity = %d, want %d", got, DefaultCacheEntries)
	}
}

// N concurrent Do calls under one key must execute fn exactly once and
// all observe its result.
func TestCoalesceSingleExecution(t *testing.T) {
	var g group
	var execs atomic.Int32
	release := make(chan struct{})
	const callers = 8

	var wg sync.WaitGroup
	var joins atomic.Int32
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, err, joined := g.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
				execs.Add(1)
				<-release
				return []byte("result"), nil
			}, nil)
			if err != nil || string(body) != "result" {
				t.Errorf("Do = %q, %v", body, err)
			}
			if joined {
				joins.Add(1)
			}
		}()
	}
	// Wait until every caller is either the executor or a waiter, then
	// release the single execution.
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		var waiters int
		if f := g.flights["k"]; f != nil {
			waiters = f.waiters
		}
		g.mu.Unlock()
		if waiters == callers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("callers never converged on one flight (waiters=%d)", waiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if execs.Load() != 1 {
		t.Fatalf("fn executed %d times, want 1", execs.Load())
	}
	if joins.Load() != callers-1 {
		t.Fatalf("joined = %d, want %d", joins.Load(), callers-1)
	}
}

func TestCoalesceDistinctKeysRunIndependently(t *testing.T) {
	var g group
	var execs atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err, _ := g.Do(context.Background(), fmt.Sprintf("k%d", i), func(context.Context) ([]byte, error) {
				execs.Add(1)
				return nil, nil
			}, nil)
			if err != nil {
				t.Errorf("Do: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if execs.Load() != 3 {
		t.Fatalf("execs = %d, want 3", execs.Load())
	}
}

// A canceled caller stops waiting immediately; when the last waiter
// leaves, the flight's context is canceled so the run can abort.
func TestCoalesceLastWaiterCancelsFlight(t *testing.T) {
	var g group
	fnCtxDone := make(chan struct{})
	started := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err, _ := g.Do(ctx, "k", func(fctx context.Context) ([]byte, error) {
			close(started)
			<-fctx.Done()
			close(fnCtxDone)
			return nil, fctx.Err()
		}, nil)
		errCh <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("caller error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled caller kept waiting")
	}
	select {
	case <-fnCtxDone:
	case <-time.After(5 * time.Second):
		t.Fatal("flight context was not canceled after the last waiter left")
	}
}

// A canceled caller must NOT cancel a flight other callers still wait on.
func TestCoalesceSurvivingWaiterKeepsFlight(t *testing.T) {
	var g group
	release := make(chan struct{})
	started := make(chan struct{})

	// Patient caller starts the flight.
	patientDone := make(chan error, 1)
	go func() {
		body, err, _ := g.Do(context.Background(), "k", func(fctx context.Context) ([]byte, error) {
			close(started)
			select {
			case <-release:
				return []byte("ok"), nil
			case <-fctx.Done():
				return nil, fctx.Err()
			}
		}, nil)
		if string(body) != "ok" {
			patientDone <- fmt.Errorf("body %q err %v", body, err)
			return
		}
		patientDone <- err
	}()
	<-started

	// Impatient caller joins, then aborts.
	ctx, cancel := context.WithCancel(context.Background())
	impatient := make(chan error, 1)
	go func() {
		_, err, joined := g.Do(ctx, "k", func(context.Context) ([]byte, error) {
			return nil, errors.New("second execution must not happen")
		}, nil)
		if !joined {
			err = errors.New("impatient caller did not join the flight")
		}
		impatient <- err
	}()
	// The impatient caller has joined once the flight has two waiters.
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		f := g.flights["k"]
		waiters := 0
		if f != nil {
			waiters = f.waiters
		}
		g.mu.Unlock()
		if waiters == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second caller never joined")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-impatient; !errors.Is(err, context.Canceled) {
		t.Fatalf("impatient caller error = %v", err)
	}
	close(release)
	if err := <-patientDone; err != nil {
		t.Fatalf("patient caller: %v", err)
	}
}
