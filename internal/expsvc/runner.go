package expsvc

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/apps"
	"repro/internal/harness"
	"repro/internal/trace"
)

// Runner executes one resolved spec and returns the marshaled report
// body (a harness.TrialsJSON — byte-for-byte what dsmrun -json emits).
// The server's default is EngineRunner; tests substitute counting or
// blocking runners to pin the coalescing and caching invariants.
type Runner func(ctx context.Context, r *Resolved) ([]byte, error)

// EngineRunner runs the spec through the real simulation engine: build
// the workload from its registry factory, run the configured trials
// (verifying each against the sequential reference), and marshal the
// trial report. Cancellation of ctx stops remaining trials.
func EngineRunner(ctx context.Context, r *Resolved) ([]byte, error) {
	return engineRun(ctx, r, nil)
}

// TracedRunner is EngineRunner with the flight recorder on: every
// engine execution is additionally captured into tw. The writer is
// safe to share across the server's concurrent runs — each run gets
// its own run id in the stream. The server installs this automatically
// when Config.Flight is set.
func TracedRunner(tw *trace.Writer) Runner {
	return func(ctx context.Context, r *Resolved) ([]byte, error) {
		return engineRun(ctx, r, tw)
	}
}

func engineRun(ctx context.Context, r *Resolved, tw *trace.Writer) ([]byte, error) {
	body, _, err := engineRunCapture(ctx, r, tw, false)
	return body, err
}

// engineRunCapture is engineRun optionally attaching a compact
// in-memory capture to the (single-trial) execution, so the server can
// store the run's stream beside its result and later answer
// same-spec-other-network misses by replay.
func engineRunCapture(ctx context.Context, r *Resolved, tw *trace.Writer, capture bool) ([]byte, *trace.MemSink, error) {
	w := r.Entry.Make(r.Procs())
	cfg := r.EngineConfig()
	cfg.Trace = tw
	var ms *trace.MemSink
	if capture {
		ms = trace.NewMemSink()
		cfg.Sink = ms
	}
	ts, err := apps.RunTrialsContext(ctx, w, cfg, r.Trials())
	if err != nil {
		return nil, nil, fmt.Errorf("%s/%s: %w", r.Entry.App, r.Entry.Dataset, err)
	}
	rep := harness.TrialsReport(r.Entry.App, r.Entry.Dataset, r.Entry.Paper, cfg, ts)
	body, err := json.Marshal(rep)
	if err != nil {
		return nil, nil, err
	}
	return body, ms, nil
}
