package expsvc

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// histogram is a fixed-bucket Prometheus-style histogram: per-bucket
// atomic counters plus an atomically accumulated sum. Stdlib-only —
// the service deliberately takes no metrics dependency — and cheap
// enough to observe on every engine run (one Add + one CAS loop).
type histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf bucket is implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// write renders the histogram in Prometheus text exposition format:
// cumulative le-labeled buckets, sum, and count.
func (h *histogram) write(b *strings.Builder, name, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, formatBound(ub), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", name, formatFloat(math.Float64frombits(h.sum.Load())))
	fmt.Fprintf(b, "%s_count %d\n", name, cum)
}

func formatBound(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Bucket layouts. Engine runs span ~1 ms (tiny cached-size cells) to
// tens of seconds (large multi-trial cells); per-run mean queue delay
// spans sub-microsecond (fast presets) to seconds (bus at scale).
var (
	runDurationBounds = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30}
	queueDelayBounds  = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}
)

// handleMetrics serves GET /metrics in Prometheus text exposition
// format (version 0.0.4). Every counter and gauge is read from the
// same atomics as /v1/stats, so the two surfaces cannot disagree.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	var b strings.Builder

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatFloat(v))
	}

	counter("dsmd_cache_hits_total", "Run requests served straight from the result cache.", st.Hits)
	counter("dsmd_cache_misses_total", "Run requests that executed the engine or joined a flight.", st.Misses)
	counter("dsmd_runs_coalesced_total", "Run requests that joined another caller's in-flight execution.", st.Coalesced)
	counter("dsmd_cache_derived_total", "Run requests answered by re-pricing a stored capture (no engine execution).", st.Derived)
	counter("dsmd_runs_total", "Engine executions completed.", st.Runs)
	counter("dsmd_run_errors_total", "Engine executions that failed (including canceled).", st.RunErrors)
	counter("dsmd_cache_evictions_total", "Result-cache LRU evictions.", st.CacheEvictions)

	gauge("dsmd_cache_entries", "Result-cache entries currently held.", float64(st.CacheEntries))
	gauge("dsmd_cache_capacity", "Result-cache capacity.", float64(st.CacheCapacity))
	gauge("dsmd_trace_entries", "Stored captures currently held for derived serving.", float64(st.TraceEntries))
	gauge("dsmd_trace_capacity", "Stored-capture capacity.", float64(st.TraceCapacity))
	gauge("dsmd_in_flight_runs", "Engine executions currently holding a run slot.", float64(st.InFlightRuns))
	gauge("dsmd_max_concurrent_runs", "Engine execution concurrency bound.", float64(st.MaxConcurrentRuns))
	gauge("dsmd_uptime_seconds", "Seconds since the service started.", st.UptimeSeconds)

	if s.flight != nil {
		gauge("dsmd_flight_events", "Events currently retained by the engine flight recorder.", float64(s.flight.Len()))
		counter("dsmd_flight_dropped_total", "Flight-recorder events evicted to make room.", uint64(s.flight.Dropped()))
	}

	s.runDur.write(&b, "dsmd_run_duration_seconds", "Engine execution wall time per run.")
	s.queueDur.write(&b, "dsmd_run_queue_delay_seconds", "Mean simulated network queue delay per run (from the run report).")

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
