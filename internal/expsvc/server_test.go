package expsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/harness"
)

// countingRunner is a Runner double that counts engine executions and
// can block until released, so tests can pin the coalescing and caching
// invariants exactly.
type countingRunner struct {
	execs   atomic.Int32
	block   chan struct{} // non-nil: execution waits here (or for ctx)
	started chan struct{} // receives one value per execution start
}

func (c *countingRunner) run(ctx context.Context, r *Resolved) ([]byte, error) {
	c.execs.Add(1)
	if c.started != nil {
		c.started <- struct{}{}
	}
	if c.block != nil {
		select {
		case <-c.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return []byte(fmt.Sprintf(`{"app":%q,"dataset":%q}`, r.Entry.App, r.Entry.Dataset)), nil
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

func postSpec(t *testing.T, ts *httptest.Server, spec string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return string(b)
}

// The tentpole invariant: N identical concurrent POSTs observe exactly
// one engine execution, and the stats counters corroborate it.
func TestRunCoalescingInvariant(t *testing.T) {
	runner := &countingRunner{block: make(chan struct{})}
	s, ts := newTestServer(t, Config{Runner: runner.run})

	const callers = 4
	var wg sync.WaitGroup
	dispositions := make(chan string, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postSpec(t, ts, `{"app":"jacobi","network":"bus"}`)
			body := readBody(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			dispositions <- resp.Header.Get(HeaderCache)
		}()
	}

	// Wait until every request has either started the flight or joined
	// it, then release the single execution.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Stats()
		if st.Misses == callers && st.Coalesced == callers-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("requests never coalesced: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(runner.block)
	wg.Wait()
	close(dispositions)

	if got := runner.execs.Load(); got != 1 {
		t.Fatalf("engine executed %d times for %d identical concurrent requests, want 1", got, callers)
	}
	var miss, coalesced int
	for d := range dispositions {
		switch d {
		case "miss":
			miss++
		case "coalesced":
			coalesced++
		default:
			t.Errorf("unexpected disposition %q", d)
		}
	}
	if miss != 1 || coalesced != callers-1 {
		t.Fatalf("dispositions: %d miss, %d coalesced; want 1 and %d", miss, coalesced, callers-1)
	}
	st := s.Stats()
	if st.Runs != 1 || st.Hits != 0 || st.Misses != callers || st.Coalesced != callers-1 {
		t.Fatalf("stats do not corroborate coalescing: %+v", st)
	}
}

// A repeated spec is served from cache with zero additional engine
// executions — and a differently spelled but canonically equal spec
// hits the same cell.
func TestRunCacheHitAndCanonicalEquivalence(t *testing.T) {
	runner := &countingRunner{}
	s, ts := newTestServer(t, Config{Runner: runner.run})

	first := postSpec(t, ts, `{"app":"jacobi"}`)
	readBody(t, first)
	if first.Header.Get(HeaderCache) != "miss" {
		t.Fatalf("first request disposition %q", first.Header.Get(HeaderCache))
	}
	hash := first.Header.Get(HeaderCell)
	if len(hash) != 64 {
		t.Fatalf("cell hash %q", hash)
	}

	second := postSpec(t, ts, `{"app":"jacobi"}`)
	readBody(t, second)
	if second.Header.Get(HeaderCache) != "hit" {
		t.Fatalf("repeat disposition %q, want hit", second.Header.Get(HeaderCache))
	}

	// Explicitly spelled defaults (different JSON, same canonical spec)
	// must hit the same cell.
	explicit := postSpec(t, ts, `{"app":"Jacobi","dataset":"128x512 (row=1pg)","unit_pages":1,`+
		`"protocol":"homeless","network":"ideal","placement":"rr","procs":8,"trials":1}`)
	readBody(t, explicit)
	if explicit.Header.Get(HeaderCache) != "hit" {
		t.Fatalf("explicit-defaults disposition %q, want hit", explicit.Header.Get(HeaderCache))
	}
	if got := explicit.Header.Get(HeaderCell); got != hash {
		t.Fatalf("explicit-defaults cell %s != %s", got, hash)
	}

	if got := runner.execs.Load(); got != 1 {
		t.Fatalf("engine executed %d times, want 1 (repeats must be cache hits)", got)
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Runs != 1 || st.CacheEntries != 1 {
		t.Fatalf("stats do not corroborate caching: %+v", st)
	}
}

func TestCellLookup(t *testing.T) {
	runner := &countingRunner{}
	_, ts := newTestServer(t, Config{Runner: runner.run})

	resp := postSpec(t, ts, `{"app":"water"}`)
	want := readBody(t, resp)
	hash := resp.Header.Get(HeaderCell)

	got, err := http.Get(ts.URL + "/v1/cells/" + hash)
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/cells/%s: %d", hash, got.StatusCode)
	}
	if body := readBody(t, got); body != want {
		t.Fatalf("cell body differs from run body:\n%s\nvs\n%s", body, want)
	}

	missing, err := http.Get(ts.URL + "/v1/cells/" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatal(err)
	}
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("missing cell status %d, want 404", missing.StatusCode)
	}
	readBody(t, missing)
}

func TestRunValidationErrors(t *testing.T) {
	runner := &countingRunner{}
	_, ts := newTestServer(t, Config{Runner: runner.run})

	for _, tc := range []struct {
		name, spec, field string
	}{
		{"unknown app", `{"app":"nosuch"}`, "app"},
		{"unknown dataset", `{"app":"jacobi","dataset":"zzz"}`, "dataset"},
		{"unknown protocol", `{"app":"jacobi","protocol":"zzz"}`, "protocol"},
		{"unknown network", `{"app":"jacobi","network":"zzz"}`, "network"},
		{"dynamic multi-page", `{"app":"jacobi","dynamic":true,"unit_pages":4}`, "unit_pages"},
		{"excess trials", fmt.Sprintf(`{"app":"jacobi","trials":%d}`, MaxTrials+1), "trials"},
	} {
		resp := postSpec(t, ts, tc.spec)
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
			continue
		}
		var e errorJSON
		if err := json.Unmarshal([]byte(body), &e); err != nil {
			t.Errorf("%s: non-JSON error body %q", tc.name, body)
			continue
		}
		if e.Field != tc.field {
			t.Errorf("%s: error names field %q, want %q (%s)", tc.name, e.Field, tc.field, body)
		}
	}

	// Unknown JSON fields and malformed bodies are 400s, not silent drops.
	for _, bad := range []string{`{"app":"jacobi","bogus":1}`, `{app:}`, ``} {
		resp := postSpec(t, ts, bad)
		readBody(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// Wrong method on /v1/run.
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: %d, want 405", resp.StatusCode)
	}

	if runner.execs.Load() != 0 {
		t.Fatalf("invalid specs reached the engine %d times", runner.execs.Load())
	}
}

func TestRegistryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Runner: (&countingRunner{}).run})
	resp, err := http.Get(ts.URL + "/v1/registry")
	if err != nil {
		t.Fatal(err)
	}
	var got RegistryJSON
	if err := json.Unmarshal([]byte(readBody(t, resp)), &got); err != nil {
		t.Fatalf("registry decode: %v", err)
	}
	// The endpoint serves exactly the shared helper's document — the
	// same one dsmrun -list -json prints.
	want := Registry()
	gw, _ := json.Marshal(got)
	ww, _ := json.Marshal(want)
	if !bytes.Equal(gw, ww) {
		t.Fatalf("registry endpoint drifted from expsvc.Registry():\n%s\nvs\n%s", gw, ww)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Runner: (&countingRunner{}).run})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readBody(t, resp); resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
}

// An aborted request cancels the (sole-waiter) engine run: the flight
// context ends, the runner returns, and the run slot frees.
func TestRunClientCancellation(t *testing.T) {
	runner := &countingRunner{block: make(chan struct{}), started: make(chan struct{}, 1)}
	s, ts := newTestServer(t, Config{Runner: runner.run})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/run",
		strings.NewReader(`{"app":"jacobi"}`))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	<-runner.started
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("client error = %v, want context.Canceled", err)
	}

	// The abandoned run aborts (ctx path in the runner) and the slot
	// frees; the error is counted, nothing is cached.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := s.Stats()
		if st.RunErrors == 1 && st.InFlightRuns == 0 {
			if st.Runs != 0 || st.CacheEntries != 0 {
				t.Fatalf("abandoned run was cached: %+v", st)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned run never aborted: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// The run pool bounds simultaneous engine executions.
func TestRunPoolBound(t *testing.T) {
	runner := &countingRunner{block: make(chan struct{}), started: make(chan struct{}, 8)}
	s, ts := newTestServer(t, Config{Runner: runner.run, MaxConcurrentRuns: 1})

	var wg sync.WaitGroup
	for _, spec := range []string{`{"app":"jacobi"}`, `{"app":"water"}`} {
		wg.Add(1)
		go func(spec string) {
			defer wg.Done()
			readBody(t, postSpec(t, ts, spec))
		}(spec)
	}
	<-runner.started // one run holds the only slot
	// The second distinct spec must queue, not run.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if n := s.Stats().InFlightRuns; n > 1 {
			t.Fatalf("in-flight runs %d exceed pool of 1", n)
		}
		if runner.execs.Load() == 2 {
			t.Fatal("second run started while the first held the only slot")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(runner.block)
	wg.Wait()
	if runner.execs.Load() != 2 {
		t.Fatalf("execs = %d, want 2", runner.execs.Load())
	}
}

// Graceful drain: Shutdown stops the listener but lets the in-flight
// run finish and its response reach the client.
func TestGracefulShutdownDrain(t *testing.T) {
	runner := &countingRunner{block: make(chan struct{}), started: make(chan struct{}, 1)}
	svc := New(Config{Runner: runner.run, Logger: quietLogger()})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: svc}
	serveDone := make(chan struct{})
	go func() { _ = srv.Serve(ln); close(serveDone) }()
	base := "http://" + ln.Addr().String()

	type result struct {
		status int
		body   string
		err    error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/run", "application/json",
			strings.NewReader(`{"app":"jacobi"}`))
		if err != nil {
			resCh <- result{err: err}
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		resCh <- result{status: resp.StatusCode, body: string(b)}
	}()
	<-runner.started

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(context.Background()) }()

	// The listener must refuse new work while the old request drains.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := http.Get(base + "/healthz")
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting after Shutdown")
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) before the in-flight run finished", err)
	default:
	}

	close(runner.block)
	r := <-resCh
	if r.err != nil || r.status != http.StatusOK {
		t.Fatalf("drained request: status %d err %v", r.status, r.err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	<-serveDone
}

// End to end through the real engine: the response body is exactly the
// CLI's report type, and determinism makes the repeat a byte-identical
// cache hit.
func TestEngineEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{}) // default Runner = EngineRunner

	spec := `{"app":"jacobi","dataset":"small","procs":4,"trials":2}`
	resp := postSpec(t, ts, spec)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rep harness.TrialsJSON
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("report decode: %v\n%s", err, body)
	}
	if rep.App != "Jacobi" || rep.Dataset != "small" || rep.Procs != 4 || len(rep.Trials) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Protocol != "homeless" || rep.Network != "ideal" || rep.Placement != "rr" {
		t.Fatalf("defaults not resolved: %+v", rep)
	}
	if rep.MinTimeSeconds <= 0 || rep.MinTimeSeconds != rep.MaxTimeSeconds {
		t.Fatalf("trial times not deterministic-positive: min %v max %v",
			rep.MinTimeSeconds, rep.MaxTimeSeconds)
	}

	again := postSpec(t, ts, spec)
	againBody := readBody(t, again)
	if again.Header.Get(HeaderCache) != "hit" {
		t.Fatalf("repeat disposition %q, want hit", again.Header.Get(HeaderCache))
	}
	if againBody != body {
		t.Fatal("cached body differs from the original run")
	}
}
