package expsvc

// Derived serving: the result cache's unit is the full canonical spec,
// but for replay-safe applications under a static protocol the engine's
// message stream is invariant across interconnects — a cache miss that
// differs from an already-executed spec only in its network field does
// not need the engine. The server keeps the compact capture of each
// eligible execution content-addressed beside its result (keyed by the
// canonical spec with the network erased) and answers such misses by
// re-pricing the stored stream (trace.MemSink.Derive), marking the
// response `Dsm-Cache: derived`. Derivation failures of any kind fall
// back silently to a real engine execution — derived serving is an
// optimization, never a correctness dependency.

import (
	"container/list"
	"encoding/json"
	"sync"

	"repro/internal/apps"
	"repro/internal/harness"
	"repro/internal/trace"
)

// DefaultTraceEntries bounds the stored-capture LRU. Captures are the
// expensive kind of cache entry (a struct-of-arrays event buffer per
// run, not a small JSON body), so the default is far smaller than the
// result cache's.
const DefaultTraceEntries = 64

// Derivable reports whether the resolved spec's result may be derived
// from (and its capture stored for) another network's execution:
// replay-safe application (schedule-sensitive lock contenders never
// derive), static protocol (the adaptive policy consults the network,
// so its stream is only conditionally invariant — the harness's
// twin-run analysis does not fit a one-spec-at-a-time service), a
// single trial, and no instrumentation (Stats cannot be re-priced).
func (r *Resolved) Derivable() bool {
	return apps.ReplaySafe(r.c.App) &&
		r.c.Protocol != "adaptive" &&
		r.c.Trials == 1 &&
		!r.c.Collect
}

// TraceKey is the content address of the spec's capture family: the
// canonical hash with the network field erased, so every spec differing
// only in interconnect shares one stored capture.
func (r *Resolved) TraceKey() string {
	c := r.c
	c.Network = "*"
	return hashCanonical(c)
}

// traceStore is the bounded LRU of compact captures, keyed by
// TraceKey. Each entry pairs the capture with the marshaled report of
// the run that produced it — the template a derived response rewrites.
type traceStore struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element
}

type traceEntry struct {
	key  string
	sink *trace.MemSink
	body []byte
}

func newTraceStore(max int) *traceStore {
	if max <= 0 {
		max = DefaultTraceEntries
	}
	return &traceStore{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

func (t *traceStore) Get(key string) (*traceEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.items[key]
	if !ok {
		return nil, false
	}
	t.ll.MoveToFront(el)
	return el.Value.(*traceEntry), true
}

func (t *traceStore) Add(key string, sink *trace.MemSink, body []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.items[key]; ok {
		ent := el.Value.(*traceEntry)
		ent.sink, ent.body = sink, body
		t.ll.MoveToFront(el)
		return
	}
	t.items[key] = t.ll.PushFront(&traceEntry{key: key, sink: sink, body: body})
	for t.ll.Len() > t.max {
		oldest := t.ll.Back()
		t.ll.Remove(oldest)
		delete(t.items, oldest.Value.(*traceEntry).key)
	}
}

func (t *traceStore) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ll.Len()
}

func (t *traceStore) Capacity() int { return t.max }

// deriveBody answers an eligible cache miss from a stored capture, if
// one exists and re-prices cleanly: parse the stored run's report,
// re-price the capture through the requested network, and rewrite the
// report's priced fields. Message and byte totals are exact; time and
// queue re-create the recorded pricing order. Returns ok=false (engine
// fallback) when there is no capture, the derivation's base-model
// integrity check refuses, or the stored body does not look like the
// single-trial report it must be.
func (s *Server) deriveBody(res *Resolved) ([]byte, bool) {
	ent, ok := s.traces.Get(res.TraceKey())
	if !ok {
		return nil, false
	}
	d, err := ent.sink.Derive(res.c.Network)
	if err != nil {
		return nil, false
	}
	var rep harness.TrialsJSON
	if err := json.Unmarshal(ent.body, &rep); err != nil || len(rep.Trials) != 1 {
		return nil, false
	}
	rep.Network = res.c.Network
	rep.Derived = true
	tr := &rep.Trials[0]
	tr.Network = res.c.Network
	tr.TimeSeconds = d.Time.Seconds()
	tr.Messages = int(d.Msgs)
	tr.Bytes = int(d.Bytes)
	tr.QueueSeconds = d.Queue.Seconds()
	rep.MinTimeSeconds = tr.TimeSeconds
	rep.MeanTimeSeconds = tr.TimeSeconds
	rep.MaxTimeSeconds = tr.TimeSeconds
	rep.MeanMessages = float64(d.Msgs)
	rep.MeanBytes = float64(d.Bytes)
	rep.MeanQueueSeconds = tr.QueueSeconds
	body, err := json.Marshal(rep)
	if err != nil {
		return nil, false
	}
	return body, true
}
