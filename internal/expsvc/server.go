package expsvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/sweep"
	"repro/internal/trace"
)

// Config configures a Server.
type Config struct {
	// CacheEntries bounds the result cache (<= 0 selects
	// DefaultCacheEntries).
	CacheEntries int
	// TraceEntries bounds the stored-capture LRU behind derived serving
	// (<= 0 selects DefaultTraceEntries). Captures are only stored when
	// the engine-backed runner is in use (Runner unset).
	TraceEntries int
	// MaxConcurrentRuns bounds simultaneous engine executions (<= 0
	// selects GOMAXPROCS). Each execution already runs one goroutine
	// per simulated processor, so admitting every request at once would
	// oversubscribe the machine under sweep traffic; excess runs queue
	// on the pool (a sweep.Pool — the same scheduler the harness's
	// comparison grids run on).
	MaxConcurrentRuns int
	// Runner substitutes the engine execution (nil selects
	// EngineRunner; tests inject counting/blocking runners).
	Runner Runner
	// Logger receives request and run logs (nil selects slog.Default).
	Logger *slog.Logger
	// Flight, when non-nil, turns on the engine flight recorder: every
	// engine execution by the default runner is traced into this ring,
	// keeping a bounded window of the most recent simnet and lifecycle
	// events for post-hoc inspection (dsmd serves it at /debug/trace).
	// Ignored when Runner is set — a substitute runner decides its own
	// tracing. Flight runs are unlabeled (the engine does not know the
	// workload name); their run metadata still carries protocol,
	// network, placement, and processor count.
	Flight *trace.Ring
}

// Server is the experiment service's HTTP surface. It is an
// http.Handler; cmd/dsmd mounts it in an http.Server with env
// configuration and graceful shutdown.
//
//	POST /v1/run          run (or serve from cache) an experiment spec
//	GET  /v1/cells/{hash} look up a completed cell by canonical hash
//	GET  /v1/registry     discover apps/datasets/protocols/networks/placements
//	GET  /v1/stats        cache, coalescing, and run counters
//	GET  /metrics         the same counters in Prometheus text format
//	GET  /healthz         liveness
type Server struct {
	mux      *http.ServeMux
	cache    *Cache
	coalesce group
	run      Runner
	pool     *sweep.Pool
	log      *slog.Logger
	started  time.Time
	flight   *trace.Ring
	flightTW *trace.Writer // shared flight-recorder writer (nil when off)
	runDur   *histogram    // engine wall time per execution, seconds
	queueDur *histogram    // mean simulated queue delay per run, seconds

	// traces is the stored-capture LRU behind derived serving; nil when
	// a substitute Runner is installed (the server then has no engine
	// stream to capture or replay).
	traces *traceStore

	hits      atomic.Uint64 // /v1/run requests served straight from cache
	misses    atomic.Uint64 // /v1/run requests that had to execute or join a flight
	coalesced atomic.Uint64 // subset of misses that joined another caller's flight
	derived   atomic.Uint64 // subset of misses answered by replaying a stored capture
	runs      atomic.Uint64 // engine executions completed
	runErrors atomic.Uint64 // engine executions that failed (incl. canceled)
	inFlight  atomic.Int64  // engine executions currently holding a run slot
	runNanos  atomic.Int64  // cumulative engine wall time
}

// New builds the service.
func New(cfg Config) *Server {
	var flight *trace.Ring
	var flightTW *trace.Writer
	var traces *traceStore
	if cfg.Runner == nil {
		cfg.Runner = EngineRunner
		if cfg.Flight != nil {
			flight = cfg.Flight
			flightTW = trace.NewWriter(flight)
			cfg.Runner = TracedRunner(flightTW)
		}
		// Only the engine-backed server stores captures: a substitute
		// runner's bodies describe no stream the service could replay.
		traces = newTraceStore(cfg.TraceEntries)
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	s := &Server{
		mux:      http.NewServeMux(),
		cache:    NewCache(cfg.CacheEntries),
		run:      cfg.Runner,
		pool:     sweep.New(cfg.MaxConcurrentRuns),
		log:      cfg.Logger,
		started:  time.Now(),
		flight:   flight,
		flightTW: flightTW,
		traces:   traces,
		runDur:   newHistogram(runDurationBounds),
		queueDur: newHistogram(queueDelayBounds),
	}
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("GET /v1/cells/{hash}", s.handleCell)
	s.mux.HandleFunc("GET /v1/registry", s.handleRegistry)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Flight returns the engine flight-recorder ring, or nil when the
// recorder is off. cmd/dsmd dumps it at GET /debug/trace.
func (s *Server) Flight() *trace.Ring { return s.flight }

// ServeHTTP implements http.Handler. Every request is wrapped in the
// structured access log: method, path, status, duration, and — for
// answered cells — the cell hash and cache disposition from the
// response headers. Health probes log at Debug so a poller does not
// drown the Info stream.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w}
	s.mux.ServeHTTP(sw, r)

	attrs := []any{
		"method", r.Method,
		"path", r.URL.Path,
		"status", sw.status(),
		"dur_ms", float64(time.Since(start).Microseconds()) / 1e3,
	}
	if cell := sw.Header().Get(HeaderCell); cell != "" {
		attrs = append(attrs, "cell", short(cell), "disposition", sw.Header().Get(HeaderCache))
	}
	level := slog.LevelInfo
	if r.URL.Path == "/healthz" {
		level = slog.LevelDebug
	}
	s.log.Log(r.Context(), level, "request", attrs...)
}

// statusWriter captures the status code written by a handler so the
// access log can report it after the fact.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// short abbreviates a cell hash for log lines the way handleRun does.
func short(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}

// Response headers carrying the cache identity and disposition of a
// /v1/run answer (the body stays exactly the CLI report type).
const (
	// HeaderCell carries the canonical spec hash — the /v1/cells address
	// of the answered cell.
	HeaderCell = "Dsm-Cell"
	// HeaderCache reports how the request was satisfied: "hit" (served
	// from cache), "miss" (this request executed the engine),
	// "coalesced" (shared a concurrent identical request's execution),
	// or "derived" (re-priced from a stored capture of the same spec on
	// another network, without executing the engine).
	HeaderCache = "Dsm-Cache"
)

// maxSpecBytes bounds a /v1/run request body; a spec is a handful of
// short fields.
const maxSpecBytes = 1 << 16

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.writeError(w, http.StatusBadRequest, "", fmt.Sprintf("malformed spec: %v", err))
		return
	}
	res, err := Resolve(spec)
	if err != nil {
		var fe *FieldError
		if errors.As(err, &fe) {
			s.writeError(w, http.StatusBadRequest, fe.Field, fe.Msg)
		} else {
			s.writeError(w, http.StatusBadRequest, "", err.Error())
		}
		return
	}
	hash := res.Hash()
	log := s.log.With("app", res.Entry.App, "dataset", res.Entry.Dataset, "cell", short(hash))

	if body, ok := s.cache.Get(hash); ok {
		s.hits.Add(1)
		log.Debug("cell served from cache")
		s.writeCell(w, hash, "hit", body)
		return
	}
	s.misses.Add(1)

	// wasDerived is written by the flight leader's closure before the
	// flight's done channel closes, so reading it after Do returns is
	// ordered; joiners never run the closure and report "coalesced".
	wasDerived := false
	body, err, joined := s.coalesce.Do(r.Context(), hash, func(ctx context.Context) ([]byte, error) {
		// A flight for this hash may have completed between the cache
		// check and Do; re-check so the engine never re-runs a cell that
		// was cached in the gap.
		if body, ok := s.cache.Get(hash); ok {
			return body, nil
		}
		// An eligible miss may be answerable from a stored capture of
		// the same spec on another network — no engine, no run slot.
		if s.traces != nil && res.Derivable() {
			if body, ok := s.deriveBody(res); ok {
				s.derived.Add(1)
				s.cache.Add(hash, body)
				log.Info("cell derived from stored capture", "network", res.Canonical().Network)
				wasDerived = true
				return body, nil
			}
		}
		return s.execute(ctx, res, hash, log)
	}, func() { s.coalesced.Add(1) })
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The client is gone; nothing useful can be written.
			log.Info("run abandoned", "err", err)
			s.writeError(w, statusClientClosedRequest, "", err.Error())
			return
		}
		log.Error("run failed", "err", err)
		s.writeError(w, http.StatusInternalServerError, "", err.Error())
		return
	}
	disposition := "miss"
	if wasDerived {
		disposition = "derived"
	}
	if joined {
		disposition = "coalesced"
	}
	s.writeCell(w, hash, disposition, body)
}

// statusClientClosedRequest mirrors nginx's non-standard 499 for
// requests abandoned by the client mid-run.
const statusClientClosedRequest = 499

// execute runs one engine execution under the bounded run pool (the
// miss path rides the sweep scheduler's budget, so service traffic
// and any in-process comparison grids share one machine's worth of
// concurrency).
func (s *Server) execute(ctx context.Context, res *Resolved, hash string, log *slog.Logger) ([]byte, error) {
	v, err := s.pool.Do(ctx, func(ctx context.Context) (any, error) {
		s.inFlight.Add(1)
		defer s.inFlight.Add(-1)

		start := time.Now()
		var body []byte
		var err error
		if s.traces != nil && res.Derivable() {
			// Capture the eligible execution's stream so later misses
			// for the same spec on other networks can be derived.
			var ms *trace.MemSink
			body, ms, err = engineRunCapture(ctx, res, s.flightTW, true)
			if err == nil && ms != nil {
				s.traces.Add(res.TraceKey(), ms, body)
			}
		} else {
			body, err = s.run(ctx, res)
		}
		elapsed := time.Since(start)
		if err != nil {
			s.runErrors.Add(1)
			return nil, err
		}
		s.runs.Add(1)
		s.runNanos.Add(int64(elapsed))
		s.runDur.Observe(elapsed.Seconds())
		// The run body is a harness.TrialsJSON; its mean simulated queue
		// delay feeds the second histogram. A body that does not parse
		// (substitute runners in tests return arbitrary bytes) simply
		// records nothing.
		var rep struct {
			MeanQueueSeconds float64 `json:"mean_queue_seconds"`
		}
		if json.Unmarshal(body, &rep) == nil {
			s.queueDur.Observe(rep.MeanQueueSeconds)
		}
		s.cache.Add(hash, body)
		log.Info("cell executed", "wall_ms", elapsed.Milliseconds(), "bytes", len(body))
		return body, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]byte), nil
}

func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	body, ok := s.cache.Get(hash)
	if !ok {
		s.writeError(w, http.StatusNotFound, "", fmt.Sprintf("no cached cell %s", hash))
		return
	}
	s.writeCell(w, hash, "hit", body)
}

func (s *Server) handleRegistry(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, Registry())
}

// StatsJSON is the /v1/stats document.
type StatsJSON struct {
	UptimeSeconds     float64 `json:"uptime_seconds"`
	CacheEntries      int     `json:"cache_entries"`
	CacheCapacity     int     `json:"cache_capacity"`
	CacheEvictions    uint64  `json:"cache_evictions"`
	Hits              uint64  `json:"hits"`
	Misses            uint64  `json:"misses"`
	Coalesced         uint64  `json:"coalesced"`
	Derived           uint64  `json:"derived"`
	TraceEntries      int     `json:"trace_entries"`
	TraceCapacity     int     `json:"trace_capacity"`
	Runs              uint64  `json:"runs"`
	RunErrors         uint64  `json:"run_errors"`
	InFlightRuns      int64   `json:"in_flight_runs"`
	MaxConcurrentRuns int     `json:"max_concurrent_runs"`
	TotalRunSeconds   float64 `json:"total_run_seconds"`
	MeanRunSeconds    float64 `json:"mean_run_seconds"`
}

// Stats snapshots the service counters.
func (s *Server) Stats() StatsJSON {
	st := StatsJSON{
		UptimeSeconds:     time.Since(s.started).Seconds(),
		CacheEntries:      s.cache.Len(),
		CacheCapacity:     s.cache.Capacity(),
		CacheEvictions:    s.cache.Evictions(),
		Hits:              s.hits.Load(),
		Misses:            s.misses.Load(),
		Coalesced:         s.coalesced.Load(),
		Derived:           s.derived.Load(),
		Runs:              s.runs.Load(),
		RunErrors:         s.runErrors.Load(),
		InFlightRuns:      s.inFlight.Load(),
		MaxConcurrentRuns: s.pool.Workers(),
		TotalRunSeconds:   time.Duration(s.runNanos.Load()).Seconds(),
	}
	if s.traces != nil {
		st.TraceEntries = s.traces.Len()
		st.TraceCapacity = s.traces.Capacity()
	}
	if st.Runs > 0 {
		st.MeanRunSeconds = st.TotalRunSeconds / float64(st.Runs)
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) writeCell(w http.ResponseWriter, hash, disposition string, body []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set(HeaderCell, hash)
	h.Set(HeaderCache, disposition)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

type errorJSON struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, field, msg string) {
	s.writeJSON(w, status, errorJSON{Error: msg, Field: field})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.log.Error("response encode failed", "err", err)
	}
}
