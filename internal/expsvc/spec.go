// Package expsvc is the DSM experiment service: a long-running HTTP
// control plane over the workload registry and the simulation engine.
// A client POSTs an experiment spec (application × dataset × protocol ×
// network × placement × unit size × trials) to /v1/run and receives the
// same JSON report the CLIs emit (harness.TrialsJSON). Between the
// handlers and the engine sit the two mechanisms that make the service
// cheaper than one-shot CLI runs under repeat and concurrent traffic:
//
//   - a content-addressed result cache keyed by a canonical spec hash
//     (registry-resolved defaults and stable field ordering, so
//     "network":"ideal" and an omitted network address the same cell).
//     Runs are deterministic, so entries never go stale — the cache is
//     TTL-free and bounded only by an LRU entry count; and
//
//   - a singleflight coalescer: N identical concurrent specs execute
//     the engine exactly once, and every caller shares the one result.
//
// cmd/dsmd wraps the service in env-var configuration and graceful
// shutdown; see DESIGN.md §10.
package expsvc

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/apps"
	_ "repro/internal/apps/all" // populate the workload registry
	"repro/internal/harness"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/tmk"
)

// Service-side bounds on a spec. The engine itself accepts anything
// positive; a shared server does not hand one request an unbounded
// slice of the machine.
const (
	// MaxProcs bounds the simulated processor count of one request.
	// Raised from 128 with the sparse-clock/tree-barrier work: the
	// engine's scaling representation makes 1024-processor cells
	// routine (see DESIGN.md §13).
	MaxProcs = 1024
	// MaxTrials bounds the independent trials of one request.
	MaxTrials = 64
	// MaxUnitPages bounds the static consistency unit of one request.
	MaxUnitPages = 64
)

// Spec is the wire form of one experiment request: which registry cell
// to run and under which engine configuration. Every field except App
// is optional; omitted fields take the same defaults the CLIs use, and
// the canonical hash is computed after defaulting, so a spec that spells
// a default out loud addresses the same cached cell as one that omits
// it.
type Spec struct {
	// App is the application name, case-insensitive ("jacobi", "MGS").
	App string `json:"app"`
	// Dataset selects the input size exactly as dsmrun -dataset does:
	// exact name, substring ("1024"), or small/medium/large; empty is
	// the app's default (primary paper) dataset.
	Dataset string `json:"dataset,omitempty"`
	// UnitPages is the static consistency unit in 4 KB pages (default 1).
	UnitPages int `json:"unit_pages,omitempty"`
	// Dynamic enables §4 dynamic aggregation (requires unit_pages ≤ 1).
	Dynamic bool `json:"dynamic,omitempty"`
	// Protocol, Network, and Placement name the coherence protocol,
	// interconnect model, and home-placement policy (case-insensitive;
	// empty = registry defaults: homeless, ideal, rr).
	Protocol  string `json:"protocol,omitempty"`
	Network   string `json:"network,omitempty"`
	Placement string `json:"placement,omitempty"`
	// Scale names the engine representation ("sparse" or "dense";
	// case-insensitive; empty = the sparse default). Barrier names the
	// barrier fabric ("central" or "tree"; empty = central), and
	// BarrierRadix sets the tree fabric's fan-in (0 = the engine
	// default; canonicalized away under central, where it is inert).
	Scale        string `json:"scale,omitempty"`
	Barrier      string `json:"barrier,omitempty"`
	BarrierRadix int    `json:"barrier_radix,omitempty"`
	// Procs is the simulated processor count (default 8, the paper's).
	Procs int `json:"procs,omitempty"`
	// Trials is the number of independent trials (default 1).
	Trials int `json:"trials,omitempty"`
	// AdaptHysteresis and AdaptQueueGateUS tune the adaptive protocol
	// (ignored — and canonicalized away — under static protocols).
	// A zero hysteresis selects the engine default; a negative gate
	// disables the contention gate, zero selects the calibrated default.
	AdaptHysteresis  int     `json:"adapt_hysteresis,omitempty"`
	AdaptQueueGateUS float64 `json:"adapt_queue_gate_us,omitempty"`
	// Collect enables the §5.3 instrumentation; the full Stats breakdown
	// rides along in every trial of the report. Off (the default) runs
	// are faster and responses smaller.
	Collect bool `json:"collect,omitempty"`
}

// FieldError is a spec validation failure tied to the offending field,
// so a 400 response can name exactly what to fix.
type FieldError struct {
	Field string `json:"field"`
	Msg   string `json:"error"`
}

func (e *FieldError) Error() string { return "spec." + e.Field + ": " + e.Msg }

func fieldErrf(field, format string, args ...any) *FieldError {
	return &FieldError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// canonical is the resolved spec in hashing form: every field explicit,
// registry-canonical names, defaults filled. Two Specs that resolve to
// the same canonical struct are the same experiment cell — json.Marshal
// over a struct emits fields in declaration order, so the serialization
// (and therefore the hash) is stable by construction.
type canonical struct {
	App              string  `json:"app"`
	Dataset          string  `json:"dataset"`
	UnitPages        int     `json:"unit_pages"`
	Dynamic          bool    `json:"dynamic"`
	Protocol         string  `json:"protocol"`
	Network          string  `json:"network"`
	Placement        string  `json:"placement"`
	Scale            string  `json:"scale"`
	Barrier          string  `json:"barrier"`
	BarrierRadix     int     `json:"barrier_radix"`
	Procs            int     `json:"procs"`
	Trials           int     `json:"trials"`
	AdaptHysteresis  int     `json:"adapt_hysteresis"`
	AdaptQueueGateUS float64 `json:"adapt_queue_gate_us"`
	Collect          bool    `json:"collect"`
}

// Resolved is a validated spec bound to its registry entry, ready to
// hash and to run.
type Resolved struct {
	// Entry is the workload factory the spec named.
	Entry apps.Entry
	c     canonical
}

// Resolve validates a spec against the workload, protocol, network, and
// placement registries and fills every default, returning the resolved
// form or a *FieldError naming the offending field. Resolution is the
// canonicalization step: after it, equivalent specs (defaulted vs.
// explicit, substring vs. full dataset name, any name casing) are
// byte-identical.
func Resolve(s Spec) (*Resolved, error) {
	if strings.TrimSpace(s.App) == "" {
		return nil, fieldErrf("app", "application name is required (see /v1/registry)")
	}
	entry, ok := apps.Lookup(s.App, s.Dataset)
	if !ok {
		field, msg := "app", fmt.Sprintf("unknown application %q (known: %s)",
			s.App, strings.Join(apps.Apps(), ", "))
		for _, name := range apps.Apps() {
			if strings.EqualFold(name, s.App) {
				field = "dataset"
				msg = fmt.Sprintf("application %s has no dataset matching %q (see /v1/registry)",
					name, s.Dataset)
				break
			}
		}
		return nil, fieldErrf(field, "%s", msg)
	}

	c := canonical{App: entry.App, Dataset: entry.Dataset}

	switch {
	case s.UnitPages < 0:
		return nil, fieldErrf("unit_pages", "must be positive (got %d)", s.UnitPages)
	case s.UnitPages > MaxUnitPages:
		return nil, fieldErrf("unit_pages", "at most %d pages (got %d)", MaxUnitPages, s.UnitPages)
	case s.UnitPages == 0:
		c.UnitPages = 1
	default:
		c.UnitPages = s.UnitPages
	}
	c.Dynamic = s.Dynamic
	if c.Dynamic && c.UnitPages != 1 {
		return nil, fieldErrf("unit_pages", "dynamic aggregation requires unit_pages == 1 (got %d)", c.UnitPages)
	}

	c.Protocol = strings.ToLower(strings.TrimSpace(s.Protocol))
	if c.Protocol == "" {
		c.Protocol = tmk.DefaultProtocol
	}
	if !tmk.KnownProtocol(c.Protocol) {
		return nil, fieldErrf("protocol", "unknown protocol %q (known: %s)",
			s.Protocol, strings.Join(tmk.ProtocolNames(), ", "))
	}
	c.Network = strings.ToLower(strings.TrimSpace(s.Network))
	if c.Network == "" {
		c.Network = netmodel.Default
	}
	if !netmodel.Known(c.Network) {
		return nil, fieldErrf("network", "unknown network model %q (known: %s)",
			s.Network, strings.Join(netmodel.Names(), ", "))
	}
	c.Placement = strings.ToLower(strings.TrimSpace(s.Placement))
	if c.Placement == "" {
		c.Placement = tmk.DefaultPlacement
	}
	if !tmk.KnownPlacement(c.Placement) {
		return nil, fieldErrf("placement", "unknown placement %q (known: %s)",
			s.Placement, strings.Join(tmk.PlacementNames(), ", "))
	}
	c.Scale = strings.ToLower(strings.TrimSpace(s.Scale))
	if c.Scale == "" {
		c.Scale = tmk.DefaultScale
	}
	if c.Scale != tmk.ScaleSparse && c.Scale != tmk.ScaleDense {
		return nil, fieldErrf("scale", "unknown scale mode %q (known: %s, %s)",
			s.Scale, tmk.ScaleSparse, tmk.ScaleDense)
	}
	c.Barrier = strings.ToLower(strings.TrimSpace(s.Barrier))
	if c.Barrier == "" {
		c.Barrier = tmk.DefaultBarrier
	}
	if !tmk.KnownBarrier(c.Barrier) {
		return nil, fieldErrf("barrier", "unknown barrier %q (known: %s)",
			s.Barrier, strings.Join(tmk.BarrierNames(), ", "))
	}
	switch {
	case s.BarrierRadix < 0:
		return nil, fieldErrf("barrier_radix", "cannot be negative (got %d)", s.BarrierRadix)
	case c.Barrier == "central":
		// The centralized fabric has no radix: canonicalize it to zero so
		// spelling one changes neither behaviour nor hash.
		c.BarrierRadix = 0
	case s.BarrierRadix == 0:
		c.BarrierRadix = tmk.DefaultBarrierRadix
	default:
		c.BarrierRadix = s.BarrierRadix
	}

	switch {
	case s.Procs < 0:
		return nil, fieldErrf("procs", "must be positive (got %d)", s.Procs)
	case s.Procs > MaxProcs:
		return nil, fieldErrf("procs", "at most %d (got %d)", MaxProcs, s.Procs)
	case s.Procs == 0:
		c.Procs = harness.Procs
	default:
		c.Procs = s.Procs
	}
	switch {
	case s.Trials < 0:
		return nil, fieldErrf("trials", "must be positive (got %d)", s.Trials)
	case s.Trials > MaxTrials:
		return nil, fieldErrf("trials", "at most %d (got %d)", MaxTrials, s.Trials)
	case s.Trials == 0:
		c.Trials = 1
	default:
		c.Trials = s.Trials
	}

	if s.AdaptHysteresis < 0 {
		return nil, fieldErrf("adapt_hysteresis", "cannot be negative (got %d)", s.AdaptHysteresis)
	}
	if c.Protocol == "adaptive" {
		c.AdaptHysteresis = s.AdaptHysteresis
		if c.AdaptHysteresis == 0 {
			c.AdaptHysteresis = tmk.DefaultAdaptHysteresis
		}
		c.AdaptQueueGateUS = s.AdaptQueueGateUS
		if c.AdaptQueueGateUS < 0 {
			// Every negative value means "gate disabled"; collapse them
			// to one representative so they share a cache cell.
			c.AdaptQueueGateUS = -1
		}
	}
	// Under a static protocol the adaptive knobs are inert: canonicalize
	// them to zero so spelling them changes neither behaviour nor hash.

	c.Collect = s.Collect
	return &Resolved{Entry: entry, c: c}, nil
}

// Hash is the spec's content address: the hex SHA-256 of the canonical
// serialization. Equal hash ⇔ equal resolved spec ⇔ (determinism) equal
// result — the property that lets the result cache skip TTLs entirely.
func (r *Resolved) Hash() string { return hashCanonical(r.c) }

func hashCanonical(c canonical) string {
	b, err := json.Marshal(c)
	if err != nil {
		// canonical is a flat struct of marshalable fields; this cannot
		// fail at run time.
		panic(fmt.Sprintf("expsvc: canonical spec marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Canonical returns the resolved spec in wire form — what the service
// actually ran after defaulting, echoed back to clients.
func (r *Resolved) Canonical() Spec {
	return Spec{
		App:              r.c.App,
		Dataset:          r.c.Dataset,
		UnitPages:        r.c.UnitPages,
		Dynamic:          r.c.Dynamic,
		Protocol:         r.c.Protocol,
		Network:          r.c.Network,
		Placement:        r.c.Placement,
		Scale:            r.c.Scale,
		Barrier:          r.c.Barrier,
		BarrierRadix:     r.c.BarrierRadix,
		Procs:            r.c.Procs,
		Trials:           r.c.Trials,
		AdaptHysteresis:  r.c.AdaptHysteresis,
		AdaptQueueGateUS: r.c.AdaptQueueGateUS,
		Collect:          r.c.Collect,
	}
}

// Procs returns the resolved processor count.
func (r *Resolved) Procs() int { return r.c.Procs }

// Trials returns the resolved trial count.
func (r *Resolved) Trials() int { return r.c.Trials }

// EngineConfig maps the resolved spec onto the engine configuration.
// Segment size and lock count are workload properties that
// apps.NewSystem fills in.
func (r *Resolved) EngineConfig() tmk.Config {
	return tmk.Config{
		Procs:           r.c.Procs,
		UnitPages:       r.c.UnitPages,
		Dynamic:         r.c.Dynamic,
		Protocol:        r.c.Protocol,
		Network:         r.c.Network,
		Placement:       r.c.Placement,
		Scale:           r.c.Scale,
		Barrier:         r.c.Barrier,
		BarrierRadix:    r.c.BarrierRadix,
		AdaptHysteresis: r.c.AdaptHysteresis,
		AdaptQueueGate:  sim.Duration(r.c.AdaptQueueGateUS * float64(sim.Microsecond)),
		Collect:         r.c.Collect,
	}
}
