package expsvc

import (
	"encoding/json"
	"math"
	"net/http"
	"testing"

	"repro/internal/harness"
)

// TestDerivedServing is the service half of the replay-derivation
// tentpole: an engine-backed server stores the compact capture of an
// eligible execution, and a later miss for the same spec on another
// network is answered by re-pricing that capture — Dsm-Cache: derived,
// no second engine run — with message and byte totals bit-identical to
// a real execution on the requested network.
func TestDerivedServing(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	base := `{"app":"jacobi","dataset":"small","procs":4,"network":"ideal"}`
	resp := postSpec(t, ts, base)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("base run status %d: %s", resp.StatusCode, body)
	}
	if d := resp.Header.Get(HeaderCache); d != "miss" {
		t.Fatalf("base disposition %q, want miss", d)
	}
	if st := s.Stats(); st.TraceEntries != 1 {
		t.Fatalf("capture not stored after eligible run: %+v", st)
	}

	bus := `{"app":"jacobi","dataset":"small","procs":4,"network":"bus"}`
	dresp := postSpec(t, ts, bus)
	dbody := readBody(t, dresp)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("derived run status %d: %s", dresp.StatusCode, dbody)
	}
	if d := dresp.Header.Get(HeaderCache); d != "derived" {
		t.Fatalf("second-network disposition %q, want derived", d)
	}
	var drep harness.TrialsJSON
	if err := json.Unmarshal([]byte(dbody), &drep); err != nil {
		t.Fatalf("derived body decode: %v\n%s", err, dbody)
	}
	if !drep.Derived || drep.Network != "bus" || len(drep.Trials) != 1 {
		t.Fatalf("derived report = %+v", drep)
	}
	if drep.Trials[0].Network != "bus" {
		t.Fatalf("derived trial network %q", drep.Trials[0].Network)
	}

	// Ground truth: a fresh server with no stored capture executes the
	// bus cell for real. Messages and bytes must match bit-for-bit (the
	// stream is network-invariant for a replay-safe static-protocol
	// app); time carries the real run's goroutine-order wobble.
	_, ts2 := newTestServer(t, Config{})
	rresp := postSpec(t, ts2, bus)
	rbody := readBody(t, rresp)
	if d := rresp.Header.Get(HeaderCache); d != "miss" {
		t.Fatalf("fresh-server disposition %q, want miss", d)
	}
	var rrep harness.TrialsJSON
	if err := json.Unmarshal([]byte(rbody), &rrep); err != nil {
		t.Fatalf("real body decode: %v", err)
	}
	dt, rt := drep.Trials[0], rrep.Trials[0]
	if dt.Messages != rt.Messages || dt.Bytes != rt.Bytes {
		t.Fatalf("derived msgs/bytes %d/%d != real %d/%d",
			dt.Messages, dt.Bytes, rt.Messages, rt.Bytes)
	}
	if frac := math.Abs(dt.TimeSeconds-rt.TimeSeconds) / rt.TimeSeconds; frac > 0.05 {
		t.Fatalf("derived time %v vs real %v off by %.1f%%",
			dt.TimeSeconds, rt.TimeSeconds, 100*frac)
	}

	// The derived body entered the result cache; a repeat is a plain hit.
	again := postSpec(t, ts, bus)
	readBody(t, again)
	if d := again.Header.Get(HeaderCache); d != "hit" {
		t.Fatalf("repeat disposition %q, want hit", d)
	}

	st := s.Stats()
	if st.Derived != 1 || st.Runs != 1 {
		t.Fatalf("counters: derived %d runs %d, want 1 and 1: %+v", st.Derived, st.Runs, st)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := readBody(t, mresp)
	if got := metricValue(t, metrics, "dsmd_cache_derived_total"); got != 1 {
		t.Errorf("dsmd_cache_derived_total = %v, want 1", got)
	}
	if got := metricValue(t, metrics, "dsmd_trace_entries"); got != 1 {
		t.Errorf("dsmd_trace_entries = %v, want 1", got)
	}
}

// TestDerivedServingIneligible pins the fallback rule: a spec outside
// the derivable envelope (here trials > 1 — multi-trial statistics
// cannot be re-priced from one stream) always executes the engine,
// even when a same-family capture sits in the store.
func TestDerivedServingIneligible(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	readBody(t, postSpec(t, ts, `{"app":"jacobi","dataset":"small","procs":4,"network":"ideal"}`))
	resp := postSpec(t, ts, `{"app":"jacobi","dataset":"small","procs":4,"network":"bus","trials":2}`)
	readBody(t, resp)
	if d := resp.Header.Get(HeaderCache); d != "miss" {
		t.Fatalf("multi-trial disposition %q, want miss", d)
	}
	if st := s.Stats(); st.Derived != 0 || st.Runs != 2 {
		t.Fatalf("counters: %+v, want derived 0 runs 2", st)
	}
}

// TestDerivableAndTraceKey pins the eligibility predicate and the
// content address's network erasure.
func TestDerivableAndTraceKey(t *testing.T) {
	resolve := func(spec Spec) *Resolved {
		t.Helper()
		r, err := Resolve(spec)
		if err != nil {
			t.Fatalf("Resolve(%+v): %v", spec, err)
		}
		return r
	}

	ideal := resolve(Spec{App: "jacobi", Dataset: "small", Network: "ideal"})
	busR := resolve(Spec{App: "jacobi", Dataset: "small", Network: "bus"})
	if !ideal.Derivable() || !busR.Derivable() {
		t.Fatal("replay-safe static single-trial specs must be derivable")
	}
	if ideal.TraceKey() != busR.TraceKey() {
		t.Fatal("TraceKey must erase the network field")
	}
	if ideal.Hash() == busR.Hash() {
		t.Fatal("result hashes must still distinguish networks")
	}
	other := resolve(Spec{App: "jacobi", Dataset: "small", Network: "ideal", Procs: 16})
	if other.TraceKey() == ideal.TraceKey() {
		t.Fatal("TraceKey must distinguish everything but the network")
	}

	for name, spec := range map[string]Spec{
		"schedule-sensitive app": {App: "tsp", Dataset: "small"},
		"adaptive protocol":      {App: "jacobi", Dataset: "small", Protocol: "adaptive"},
		"multi-trial":            {App: "jacobi", Dataset: "small", Trials: 2},
		"instrumented":           {App: "jacobi", Dataset: "small", Collect: true},
	} {
		if resolve(spec).Derivable() {
			t.Errorf("%s must not be derivable", name)
		}
	}
}
