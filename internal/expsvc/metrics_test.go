package expsvc

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestHistogramBucketsAndSum pins the histogram's Prometheus rendering:
// cumulative le-labeled buckets, an exact +Inf total, and a float sum.
func TestHistogramBucketsAndSum(t *testing.T) {
	h := newHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var b strings.Builder
	h.write(&b, "x_seconds", "test histogram")
	out := b.String()
	for _, want := range []string{
		`x_seconds_bucket{le="0.1"} 1`,
		`x_seconds_bucket{le="1"} 3`,
		`x_seconds_bucket{le="10"} 4`,
		`x_seconds_bucket{le="+Inf"} 5`,
		`x_seconds_sum 56.05`,
		`x_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

// metricValue extracts a sample value from a Prometheus text body.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

// TestMetricsMatchesStats pins the acceptance check: after a miss, a
// hit, and a coalesced pair, /metrics must report exactly the counters
// /v1/stats reports, plus populated run-duration and queue-delay
// histograms.
func TestMetricsMatchesStats(t *testing.T) {
	runner := &countingRunner{}
	s, ts := newTestServer(t, Config{Runner: runner.run})

	spec := `{"app":"jacobi","dataset":"small"}`
	readBody(t, postSpec(t, ts, spec)) // miss
	readBody(t, postSpec(t, ts, spec)) // hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain exposition format", ct)
	}
	body := readBody(t, resp)

	st := s.Stats()
	for name, want := range map[string]float64{
		"dsmd_cache_hits_total":      float64(st.Hits),
		"dsmd_cache_misses_total":    float64(st.Misses),
		"dsmd_runs_coalesced_total":  float64(st.Coalesced),
		"dsmd_cache_derived_total":   float64(st.Derived),
		"dsmd_trace_entries":         float64(st.TraceEntries),
		"dsmd_trace_capacity":        float64(st.TraceCapacity),
		"dsmd_runs_total":            float64(st.Runs),
		"dsmd_run_errors_total":      float64(st.RunErrors),
		"dsmd_cache_evictions_total": float64(st.CacheEvictions),
		"dsmd_cache_entries":         float64(st.CacheEntries),
		"dsmd_in_flight_runs":        float64(st.InFlightRuns),
		"dsmd_max_concurrent_runs":   float64(st.MaxConcurrentRuns),
	} {
		if got := metricValue(t, body, name); got != want {
			t.Errorf("%s = %v, /v1/stats says %v", name, got, want)
		}
	}
	if st.Hits != 1 || st.Misses != 1 || st.Runs != 1 {
		t.Fatalf("traffic did not land as miss+hit: %+v", st)
	}
	if got := metricValue(t, body, `dsmd_run_duration_seconds_count`); got != 1 {
		t.Errorf("run duration histogram count = %v, want 1", got)
	}
	if got := metricValue(t, body, `dsmd_run_queue_delay_seconds_count`); got != 1 {
		t.Errorf("queue delay histogram count = %v, want 1", got)
	}
}

// TestAccessLog pins the structured per-request log: every request
// logs method, path, status, and duration; answered cells add the cell
// hash and cache disposition; health probes stay at Debug.
func TestAccessLog(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	runner := &countingRunner{}
	_, ts := newTestServer(t, Config{Runner: runner.run, Logger: logger})

	readBody(t, postSpec(t, ts, `{"app":"jacobi","dataset":"small"}`))
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	logs := logBuf.String()
	var accessLine string
	for _, line := range strings.Split(logs, "\n") {
		if strings.Contains(line, "msg=request") && strings.Contains(line, "path=/v1/run") {
			accessLine = line
		}
	}
	if accessLine == "" {
		t.Fatalf("no access log line for POST /v1/run:\n%s", logs)
	}
	for _, want := range []string{"method=POST", "status=200", "dur_ms=", "cell=", "disposition=miss"} {
		if !strings.Contains(accessLine, want) {
			t.Errorf("access line missing %s: %s", want, accessLine)
		}
	}
	if strings.Contains(logs, "path=/healthz") {
		t.Errorf("healthz probe logged at Info; it must stay at Debug:\n%s", logs)
	}
}

// TestFlightRecorder drives a real engine run through the traced
// default runner and checks the ring holds a dsmtrace-readable window.
func TestFlightRecorder(t *testing.T) {
	ring := trace.NewRing(1 << 16)
	s, ts := newTestServer(t, Config{Flight: ring})
	if s.Flight() != ring {
		t.Fatal("Flight() should expose the configured ring")
	}

	resp := postSpec(t, ts, `{"app":"jacobi","dataset":"small","trials":1}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run failed: %d: %s", resp.StatusCode, body)
	}
	if ring.Len() == 0 {
		t.Fatal("flight recorder retained nothing after an engine run")
	}

	var dump bytes.Buffer
	if err := ring.Dump(&dump); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(dump.Bytes()))
	if err != nil {
		t.Fatalf("flight dump must be a readable trace: %v", err)
	}
	var legs, ends int
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch ev.E {
		case trace.EvLeg, trace.EvControl, trace.EvExchange:
			legs++
		case trace.EvRunEnd:
			ends++
		}
	}
	if legs == 0 || ends != 1 {
		t.Fatalf("dump has %d message events and %d run_end lines; want >0 and 1", legs, ends)
	}

	// The recorder also surfaces on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody := readBody(t, mresp)
	if got := metricValue(t, mbody, "dsmd_flight_events"); got != float64(ring.Len()) {
		t.Errorf("dsmd_flight_events = %v, ring holds %d", got, ring.Len())
	}
}
