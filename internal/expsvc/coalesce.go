package expsvc

import (
	"context"
	"sync"
)

// group coalesces concurrent executions by key, singleflight-style: the
// first caller of a key starts fn, every concurrent caller of the same
// key waits for that one execution and shares its result. Unlike the
// classic singleflight, callers carry contexts: a caller whose context
// ends stops waiting immediately, and when the *last* waiter of a
// flight walks away the flight's own context is canceled, so an engine
// run nobody is waiting for anymore stops instead of running its grid
// cell to completion.
type group struct {
	mu      sync.Mutex
	flights map[string]*flight
}

type flight struct {
	done    chan struct{} // closed when fn has returned
	body    []byte
	err     error
	waiters int
	cancel  context.CancelFunc
}

// Do executes fn under key, coalescing with any in-flight execution of
// the same key. It returns fn's result, and joined=true when this
// caller shared another caller's execution rather than starting its
// own. onJoin (optional) fires as soon as this caller joins an existing
// flight — before any waiting — so live gauges can observe coalescing
// while the shared execution is still running. On ctx expiry Do returns
// ctx.Err() without waiting for fn.
//
// fn runs on a context detached from any single caller (canceled only
// when every waiter has left), because its result is shared.
func (g *group) Do(ctx context.Context, key string, fn func(context.Context) ([]byte, error), onJoin func()) (body []byte, err error, joined bool) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	f, ok := g.flights[key]
	if ok {
		f.waiters++
		g.mu.Unlock()
		if onJoin != nil {
			onJoin()
		}
	} else {
		fctx, cancel := context.WithCancel(context.Background())
		f = &flight{done: make(chan struct{}), cancel: cancel, waiters: 1}
		g.flights[key] = f
		g.mu.Unlock()
		go func() {
			body, err := fn(fctx)
			g.mu.Lock()
			f.body, f.err = body, err
			delete(g.flights, key)
			g.mu.Unlock()
			cancel()
			close(f.done)
		}()
	}

	select {
	case <-f.done:
		return f.body, f.err, ok
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		abandoned := f.waiters == 0
		g.mu.Unlock()
		if abandoned {
			f.cancel()
		}
		return nil, ctx.Err(), ok
	}
}
