package expsvc

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// BenchmarkServerMixed is the service's load test (`make loadtest`): it
// fires concurrent mixed hit/miss spec traffic at an httptest-mounted
// server backed by the real engine and reports requests/sec. The spec
// pool cycles a handful of small real cells, so the first pass through
// the pool is all engine executions (misses, possibly coalesced) and
// steady state is cache hits — the capacity-planning question a serving
// cache answers: what does repeat sweep traffic cost once the grid's
// hot cells are resident?
func BenchmarkServerMixed(b *testing.B) {
	s := New(Config{Logger: quietLogger()})
	ts := httptest.NewServer(s)
	defer ts.Close()

	specs := []string{
		`{"app":"jacobi","dataset":"small"}`,
		`{"app":"jacobi","dataset":"small","network":"bus"}`,
		`{"app":"water","dataset":"small"}`,
		`{"app":"water","dataset":"small","protocol":"home"}`,
		`{"app":"tsp","dataset":"small"}`,
		`{"app":"mgs","dataset":"small","network":"myrinet"}`,
		`{"app":"jacobi","dataset":"small","protocol":"adaptive","network":"bus"}`,
		`{"app":"shallow","dataset":"small","unit_pages":2}`,
	}

	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := &http.Client{}
		for pb.Next() {
			spec := specs[int(next.Add(1))%len(specs)]
			resp, err := client.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(spec))
			if err != nil {
				b.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
			}
			_ = resp.Body.Close()
		}
	})
	b.StopTimer()

	st := s.Stats()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	b.ReportMetric(float64(st.Runs), "engine-runs")
	b.ReportMetric(100*float64(st.Hits)/float64(max64(st.Hits+st.Misses, 1)), "hit%")
	if b.N >= 2*len(specs) && st.Runs > uint64(len(specs)) {
		// Determinism + content addressing: each distinct cell executes
		// at most once (coalescing may even make it fewer than N cells
		// under concurrency).
		b.Fatalf("engine ran %d times for %d distinct cells", st.Runs, len(specs))
	}
	if testing.Verbose() {
		fmt.Printf("stats: %+v\n", st)
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
