package expsvc

import "repro/internal/harness"

// The harness's sweep batches dedup cells by a key function; install
// the service's canonical spec hash as that function, so any binary
// linking the service (dsmrun, dsmd, dsmbench) dedups grid cells by
// the same content address the result cache uses. Aliased spellings —
// an empty network and "ideal", an empty placement and the registered
// default — then share one engine execution per batch.
func init() {
	harness.RegisterCellKey(func(app, dataset string, c harness.Config, procs int, collect bool) string {
		r, err := Resolve(Spec{
			App: app, Dataset: dataset,
			UnitPages: c.Unit, Dynamic: c.Dynamic,
			Protocol: c.Protocol, Network: c.Network, Placement: c.Placement,
			Scale: c.Scale, Barrier: c.Barrier, BarrierRadix: c.BarrierRadix,
			Procs: procs, Collect: collect,
		})
		if err != nil {
			// Outside the service's spec bounds (e.g. a huge ad-hoc
			// procs count): unkeyed, the cell just runs unshared.
			return ""
		}
		return r.Hash()
	})
}
