package mem

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func pageWithWords(words map[int]uint64) []byte {
	p := make([]byte, PageSize)
	for w, v := range words {
		putWordAt(p, w, v)
	}
	return p
}

func TestEncodeDiffEmpty(t *testing.T) {
	p := make([]byte, PageSize)
	d := EncodeDiff(MakeTwin(p), p)
	if !d.Empty() || d.WordCount() != 0 {
		t.Fatal("diff of unmodified page must be empty")
	}
	if d.WireBytes() != diffHeaderBytes {
		t.Fatalf("empty diff wire bytes = %d", d.WireBytes())
	}
}

func TestEncodeDiffSingleRun(t *testing.T) {
	p := make([]byte, PageSize)
	tw := MakeTwin(p)
	putWordAt(p, 10, 1)
	putWordAt(p, 11, 2)
	putWordAt(p, 12, 3)
	d := EncodeDiff(tw, p)
	runs := d.Runs()
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	if runs[0].Off != 10 || len(runs[0].Words) != 3 {
		t.Fatalf("run = %+v", runs[0])
	}
	if d.WordCount() != 3 {
		t.Fatalf("WordCount = %d", d.WordCount())
	}
	if want := diffHeaderBytes + runHeaderBytes + 3*WordSize; d.WireBytes() != want {
		t.Fatalf("WireBytes = %d, want %d", d.WireBytes(), want)
	}
}

func TestEncodeDiffMultipleRuns(t *testing.T) {
	p := make([]byte, PageSize)
	tw := MakeTwin(p)
	putWordAt(p, 0, 7)
	putWordAt(p, 5, 8)
	putWordAt(p, 511, 9)
	d := EncodeDiff(tw, p)
	if len(d.Runs()) != 3 {
		t.Fatalf("runs = %d, want 3", len(d.Runs()))
	}
	var offs []int
	d.ForEachWord(func(w int) { offs = append(offs, w) })
	if !reflect.DeepEqual(offs, []int{0, 5, 511}) {
		t.Fatalf("ForEachWord offsets = %v", offs)
	}
}

func TestDiffZeroValueChange(t *testing.T) {
	// A word changed to a different value and a word whose write stored
	// the same value: only genuine changes are diffed (TreadMarks
	// compares content, so silent stores vanish — fine for correctness).
	p := pageWithWords(map[int]uint64{3: 42})
	tw := MakeTwin(p)
	putWordAt(p, 3, 42) // silent store
	putWordAt(p, 4, 1)  // real change
	d := EncodeDiff(tw, p)
	if d.WordCount() != 1 || d.Runs()[0].Off != 4 {
		t.Fatalf("diff = %+v", d.Runs())
	}
}

func TestApplyPatchesOnlyDiffedWords(t *testing.T) {
	// Writer's view
	w := make([]byte, PageSize)
	tw := MakeTwin(w)
	putWordAt(w, 100, 11)
	putWordAt(w, 101, 22)
	d := EncodeDiff(tw, w)

	// Reader's replica has independent prior content elsewhere.
	r := pageWithWords(map[int]uint64{200: 99})
	d.Apply(r)
	if wordAt(r, 100) != 11 || wordAt(r, 101) != 22 {
		t.Fatal("diffed words not applied")
	}
	if wordAt(r, 200) != 99 {
		t.Fatal("Apply touched un-diffed word")
	}
}

func TestDiffImmutableAfterEncode(t *testing.T) {
	p := make([]byte, PageSize)
	tw := MakeTwin(p)
	putWordAt(p, 1, 5)
	d := EncodeDiff(tw, p)
	putWordAt(p, 1, 77) // next-interval write
	dst := make([]byte, PageSize)
	d.Apply(dst)
	if wordAt(dst, 1) != 5 {
		t.Fatalf("diff must capture values at encode time, got %d", wordAt(dst, 1))
	}
}

func TestTwinIndependentOfPage(t *testing.T) {
	p := pageWithWords(map[int]uint64{0: 1})
	tw := MakeTwin(p)
	putWordAt(p, 0, 2)
	if wordAt(tw, 0) != 1 {
		t.Fatal("twin must be a copy, not an alias")
	}
}

func TestMakeTwinPanicsOnWrongSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MakeTwin(make([]byte, 100))
}

func TestOverlapWords(t *testing.T) {
	base := make([]byte, PageSize)
	a := make([]byte, PageSize)
	copy(a, base)
	putWordAt(a, 10, 1)
	putWordAt(a, 11, 1)
	b := make([]byte, PageSize)
	copy(b, base)
	putWordAt(b, 11, 2)
	putWordAt(b, 12, 2)
	da := EncodeDiff(MakeTwin(base), a)
	db := EncodeDiff(MakeTwin(base), b)
	if got := da.OverlapWords(db); got != 1 {
		t.Fatalf("OverlapWords = %d, want 1", got)
	}
}

// --- property-based tests ------------------------------------------------

func randomPagePair(r *rand.Rand) (twin Twin, page []byte) {
	page = make([]byte, PageSize)
	// Sparse-ish base content.
	for i := 0; i < 64; i++ {
		putWordAt(page, r.Intn(WordsPerPage), r.Uint64())
	}
	twin = MakeTwin(page)
	// Random modifications, including runs.
	for i := 0; i < 16; i++ {
		start := r.Intn(WordsPerPage)
		n := 1 + r.Intn(8)
		for w := start; w < start+n && w < WordsPerPage; w++ {
			putWordAt(page, w, r.Uint64())
		}
	}
	return twin, page
}

// Property: applying EncodeDiff(twin, page) to a copy of the twin
// reconstructs the page exactly.
func TestPropDiffRoundTrip(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, r *rand.Rand) {
			tw, p := randomPagePair(r)
			args[0] = reflect.ValueOf(tw)
			args[1] = reflect.ValueOf(p)
		},
	}
	f := func(tw Twin, page []byte) bool {
		d := EncodeDiff(tw, page)
		dst := make([]byte, PageSize)
		copy(dst, tw)
		d.Apply(dst)
		return bytes.Equal(dst, page)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: WordCount equals the number of words that differ between twin
// and page, and WireBytes >= header + words*WordSize.
func TestPropDiffAccounting(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, r *rand.Rand) {
			tw, p := randomPagePair(r)
			args[0] = reflect.ValueOf(tw)
			args[1] = reflect.ValueOf(p)
		},
	}
	f := func(tw Twin, page []byte) bool {
		d := EncodeDiff(tw, page)
		want := 0
		for w := 0; w < WordsPerPage; w++ {
			if wordAt(tw, w) != wordAt(page, w) {
				want++
			}
		}
		if d.WordCount() != want {
			return false
		}
		return d.WireBytes() >= diffHeaderBytes+want*WordSize
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: diffs from disjoint writers against a common twin commute.
func TestPropDisjointDiffsCommute(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(args []reflect.Value, r *rand.Rand) {
			base := make([]byte, PageSize)
			for i := 0; i < 32; i++ {
				putWordAt(base, r.Intn(WordsPerPage), r.Uint64())
			}
			a := make([]byte, PageSize)
			copy(a, base)
			b := make([]byte, PageSize)
			copy(b, base)
			// Writer A modifies the bottom half, writer B the top half
			// (write-write false sharing, disjoint words).
			for i := 0; i < 20; i++ {
				putWordAt(a, r.Intn(WordsPerPage/2), r.Uint64())
				putWordAt(b, WordsPerPage/2+r.Intn(WordsPerPage/2), r.Uint64())
			}
			args[0] = reflect.ValueOf([]byte(base))
			args[1] = reflect.ValueOf(a)
			args[2] = reflect.ValueOf(b)
		},
	}
	f := func(base, a, b []byte) bool {
		da := EncodeDiff(Twin(base), a)
		db := EncodeDiff(Twin(base), b)
		x := make([]byte, PageSize)
		copy(x, base)
		da.Apply(x)
		db.Apply(x)
		y := make([]byte, PageSize)
		copy(y, base)
		db.Apply(y)
		da.Apply(y)
		return bytes.Equal(x, y)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
