package mem

import "fmt"

// Twin is the pristine copy of a page taken on the first write in an
// interval, used later to encode the diff (the record of modifications).
type Twin []byte

// MakeTwin copies the current contents of a page.
func MakeTwin(page []byte) Twin {
	if len(page) != PageSize {
		panic(fmt.Sprintf("mem: twin of %d-byte page", len(page)))
	}
	t := make(Twin, PageSize)
	copy(t, page)
	return t
}

// Run is one maximal contiguous range of modified words in a diff.
type Run struct {
	// Off is the word offset of the first modified word within the page.
	Off uint16
	// Words holds the new values of the modified words.
	Words []uint64
}

// Diff records the word-granularity modifications of one page in one
// interval, as produced by comparing the page against its twin. A Diff is
// immutable after encoding; it is published into the owner's diff store
// and served to remote faulting processors.
type Diff struct {
	runs []Run
}

// Wire-format accounting: TreadMarks sends diffs as (page id, run list);
// each run carries a 2-byte offset and 2-byte length header.
const (
	diffHeaderBytes = 8 // page id + run count + interval stamp
	runHeaderBytes  = 4 // offset + length
)

// EncodeDiff compares a page against its twin and returns the diff. Word
// values are captured at encode time, so the diff remains valid if the
// page is modified afterwards (next interval).
func EncodeDiff(twin Twin, page []byte) Diff {
	if len(twin) != PageSize || len(page) != PageSize {
		panic("mem: EncodeDiff on non-page-sized input")
	}
	var d Diff
	w := 0
	for w < WordsPerPage {
		if wordAt(twin, w) == wordAt(page, w) {
			w++
			continue
		}
		start := w
		for w < WordsPerPage && wordAt(twin, w) != wordAt(page, w) {
			w++
		}
		run := Run{Off: uint16(start), Words: make([]uint64, w-start)}
		for i := start; i < w; i++ {
			run.Words[i-start] = wordAt(page, i)
		}
		d.runs = append(d.runs, run)
	}
	return d
}

func wordAt(b []byte, w int) uint64 {
	off := w << WordShift
	return uint64(b[off]) | uint64(b[off+1])<<8 | uint64(b[off+2])<<16 |
		uint64(b[off+3])<<24 | uint64(b[off+4])<<32 | uint64(b[off+5])<<40 |
		uint64(b[off+6])<<48 | uint64(b[off+7])<<56
}

func putWordAt(b []byte, w int, v uint64) {
	off := w << WordShift
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v >> 16)
	b[off+3] = byte(v >> 24)
	b[off+4] = byte(v >> 32)
	b[off+5] = byte(v >> 40)
	b[off+6] = byte(v >> 48)
	b[off+7] = byte(v >> 56)
}

// Empty reports whether the diff records no modifications.
func (d Diff) Empty() bool { return len(d.runs) == 0 }

// Runs returns the diff's run list (callers must not modify it).
func (d Diff) Runs() []Run { return d.runs }

// WordCount returns the number of modified words the diff carries.
func (d Diff) WordCount() int {
	n := 0
	for _, r := range d.runs {
		n += len(r.Words)
	}
	return n
}

// WireBytes returns the payload size of the diff on the simulated
// network, including run headers.
func (d Diff) WireBytes() int {
	n := diffHeaderBytes
	for _, r := range d.runs {
		n += runHeaderBytes + len(r.Words)*WordSize
	}
	return n
}

// Apply patches the diffed words into dst, which must be a full page.
// Later-applied diffs overwrite earlier ones; the engine applies diffs in
// causal (vector-timestamp) order, which for concurrent diffs of a
// correctly synchronized program touch disjoint words.
func (d Diff) Apply(dst []byte) {
	if len(dst) != PageSize {
		panic("mem: Apply on non-page-sized destination")
	}
	for _, r := range d.runs {
		for i, v := range r.Words {
			putWordAt(dst, int(r.Off)+i, v)
		}
	}
}

// ForEachWord invokes fn with the page-relative word offset of every word
// the diff carries, in ascending order. The instrumentation layer uses
// this to tag applied words with the carrying message.
func (d Diff) ForEachWord(fn func(wordOff int)) {
	for _, r := range d.runs {
		for i := range r.Words {
			fn(int(r.Off) + i)
		}
	}
}

// FullPageDiff captures the entire current contents of a page as a
// single-run diff. Home-based protocols use it as the wire image of a
// whole-page fetch from the home copy: applying it overwrites every
// word of the destination, and its WireBytes price the full-page
// transfer the paper contrasts with diff traffic.
func FullPageDiff(page []byte) Diff {
	if len(page) != PageSize {
		panic("mem: FullPageDiff on non-page-sized input")
	}
	run := Run{Off: 0, Words: make([]uint64, WordsPerPage)}
	for i := range run.Words {
		run.Words[i] = wordAt(page, i)
	}
	return Diff{runs: []Run{run}}
}

// CoalesceDiffs merges an ordered sequence of diffs of the same page
// into one equivalent diff: for each word, the value of the last diff
// that wrote it. The caller must pass diffs in application order; this is
// only meaningful for diffs that are totally ordered (e.g. successive
// intervals of a single writer), where it reproduces TreadMarks' remedy
// for diff accumulation — a reader that missed many intervals of a
// one-writer page receives at most one page's worth of data.
func CoalesceDiffs(ds []Diff) Diff {
	if len(ds) == 1 {
		return ds[0]
	}
	var vals [WordsPerPage]uint64
	var set [WordsPerPage]bool
	for _, d := range ds {
		for _, r := range d.runs {
			for i, v := range r.Words {
				vals[int(r.Off)+i] = v
				set[int(r.Off)+i] = true
			}
		}
	}
	var out Diff
	w := 0
	for w < WordsPerPage {
		if !set[w] {
			w++
			continue
		}
		start := w
		for w < WordsPerPage && set[w] {
			w++
		}
		run := Run{Off: uint16(start), Words: make([]uint64, w-start)}
		copy(run.Words, vals[start:w])
		out.runs = append(out.runs, run)
	}
	return out
}

// OverlapWords returns the number of words modified by both diffs —
// nonzero only under write-write races within a page region, which a
// correctly synchronized program avoids for concurrent intervals.
func (d Diff) OverlapWords(o Diff) int {
	var mine [WordsPerPage]bool
	d.ForEachWord(func(w int) { mine[w] = true })
	n := 0
	o.ForEachWord(func(w int) {
		if mine[w] {
			n++
		}
	})
	return n
}
