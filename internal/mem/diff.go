package mem

import (
	"encoding/binary"
	"fmt"
)

// Twin is the pristine copy of a page taken on the first write in an
// interval, used later to encode the diff (the record of modifications).
type Twin []byte

// MakeTwin copies the current contents of a page.
func MakeTwin(page []byte) Twin {
	return MakeTwinInto(nil, page)
}

// MakeTwinInto is MakeTwin reusing t's storage when it is page-sized —
// the engine keeps discarded twins on a per-processor free list, so
// steady-state twinning allocates nothing.
func MakeTwinInto(t Twin, page []byte) Twin {
	if len(page) != PageSize {
		panic(fmt.Sprintf("mem: twin of %d-byte page", len(page)))
	}
	if cap(t) < PageSize {
		t = make(Twin, PageSize)
	}
	t = t[:PageSize]
	copy(t, page)
	return t
}

// Run is one maximal contiguous range of modified words in a diff.
type Run struct {
	// Off is the word offset of the first modified word within the page.
	Off uint16
	// Words holds the new values of the modified words.
	Words []uint64
}

// Diff records the word-granularity modifications of one page in one
// interval, as produced by comparing the page against its twin. A Diff is
// immutable after encoding; it is published into the owner's diff store
// and served to remote faulting processors.
type Diff struct {
	runs []Run
}

// Wire-format accounting: TreadMarks sends diffs as (page id, run list);
// each run carries a 2-byte offset and 2-byte length header.
const (
	diffHeaderBytes = 8 // page id + run count + interval stamp
	runHeaderBytes  = 4 // offset + length
)

// EncodeDiff compares a page against its twin and returns the diff. Word
// values are captured at encode time, so the diff remains valid if the
// page is modified afterwards (next interval).
func EncodeDiff(twin Twin, page []byte) Diff {
	var s DiffScratch
	return EncodeDiffInto(&s, twin, page)
}

// DiffScratch is reusable working storage for EncodeDiffInto. The zero
// value is ready to use; it grows to at most one page's worth of words
// and is typically kept per processor.
type DiffScratch struct {
	offs  []uint16 // word offset of each run
	lens  []int    // word count of each run
	words []uint64 // concatenated modified-word values
}

// EncodeDiffInto is EncodeDiff using caller-owned scratch storage for
// the comparison pass. The returned Diff's run list and word arena are
// freshly allocated at exact size (diffs are retained by published
// intervals, so their storage cannot be reused), but an empty diff
// allocates nothing, and the scan itself never does.
func EncodeDiffInto(s *DiffScratch, twin Twin, page []byte) Diff {
	if len(twin) != PageSize || len(page) != PageSize {
		panic("mem: EncodeDiff on non-page-sized input")
	}
	s.offs = s.offs[:0]
	s.lens = s.lens[:0]
	s.words = s.words[:0]
	w := 0
	for w < WordsPerPage {
		if wordAt(twin, w) == wordAt(page, w) {
			w++
			continue
		}
		start := w
		for w < WordsPerPage && wordAt(twin, w) != wordAt(page, w) {
			w++
		}
		// Record the run's extent in scratch; word values are captured
		// now so the page may keep changing afterwards.
		s.offs = append(s.offs, uint16(start))
		s.lens = append(s.lens, w-start)
		for i := start; i < w; i++ {
			s.words = append(s.words, wordAt(page, i))
		}
	}
	if len(s.offs) == 0 {
		return Diff{}
	}
	// Copy out at exact size: one arena for all words, one run list.
	arena := make([]uint64, len(s.words))
	copy(arena, s.words)
	runs := make([]Run, len(s.offs))
	off := 0
	for i := range runs {
		n := s.lens[i]
		runs[i] = Run{Off: s.offs[i], Words: arena[off : off+n : off+n]}
		off += n
	}
	return Diff{runs: runs}
}

func wordAt(b []byte, w int) uint64 {
	return binary.LittleEndian.Uint64(b[w<<WordShift:])
}

func putWordAt(b []byte, w int, v uint64) {
	binary.LittleEndian.PutUint64(b[w<<WordShift:], v)
}

// Empty reports whether the diff records no modifications.
func (d Diff) Empty() bool { return len(d.runs) == 0 }

// Runs returns the diff's run list (callers must not modify it).
func (d Diff) Runs() []Run { return d.runs }

// WordCount returns the number of modified words the diff carries.
func (d Diff) WordCount() int {
	n := 0
	for _, r := range d.runs {
		n += len(r.Words)
	}
	return n
}

// WireBytes returns the payload size of the diff on the simulated
// network, including run headers.
func (d Diff) WireBytes() int {
	n := diffHeaderBytes
	for _, r := range d.runs {
		n += runHeaderBytes + len(r.Words)*WordSize
	}
	return n
}

// Apply patches the diffed words into dst, which must be a full page.
// Later-applied diffs overwrite earlier ones; the engine applies diffs in
// causal (vector-timestamp) order, which for concurrent diffs of a
// correctly synchronized program touch disjoint words.
func (d Diff) Apply(dst []byte) {
	if len(dst) != PageSize {
		panic("mem: Apply on non-page-sized destination")
	}
	for _, r := range d.runs {
		for i, v := range r.Words {
			putWordAt(dst, int(r.Off)+i, v)
		}
	}
}

// ForEachWord invokes fn with the page-relative word offset of every word
// the diff carries, in ascending order. The instrumentation layer uses
// this to tag applied words with the carrying message.
func (d Diff) ForEachWord(fn func(wordOff int)) {
	for _, r := range d.runs {
		for i := range r.Words {
			fn(int(r.Off) + i)
		}
	}
}

// FullPageDiff captures the entire current contents of a page as a
// single-run diff. Home-based protocols use it as the wire image of a
// whole-page fetch from the home copy: applying it overwrites every
// word of the destination, and its WireBytes price the full-page
// transfer the paper contrasts with diff traffic.
func FullPageDiff(page []byte) Diff {
	if len(page) != PageSize {
		panic("mem: FullPageDiff on non-page-sized input")
	}
	run := Run{Off: 0, Words: make([]uint64, WordsPerPage)}
	for i := range run.Words {
		run.Words[i] = wordAt(page, i)
	}
	return Diff{runs: []Run{run}}
}

// FullPageDiffInto is FullPageDiff carving the image's storage from
// caller-owned buffers: words (length WordsPerPage) receives the page's
// word values and runs backs the one-run list (capacity >= 1 avoids
// allocating it). The returned Diff aliases both, so the caller must
// not reuse them while the diff is live — the engine's fetch path
// carves per-page regions out of a pre-sized arena.
func FullPageDiffInto(words []uint64, runs []Run, page []byte) Diff {
	if len(page) != PageSize || len(words) != WordsPerPage {
		panic("mem: FullPageDiffInto on mis-sized input")
	}
	for i := range words {
		words[i] = wordAt(page, i)
	}
	runs = append(runs[:0], Run{Off: 0, Words: words})
	return Diff{runs: runs}
}

// CoalesceDiffs merges an ordered sequence of diffs of the same page
// into one equivalent diff: for each word, the value of the last diff
// that wrote it. The caller must pass diffs in application order; this is
// only meaningful for diffs that are totally ordered (e.g. successive
// intervals of a single writer), where it reproduces TreadMarks' remedy
// for diff accumulation — a reader that missed many intervals of a
// one-writer page receives at most one page's worth of data.
func CoalesceDiffs(ds []Diff) Diff {
	if len(ds) == 1 {
		return ds[0]
	}
	var vals [WordsPerPage]uint64
	var set [WordsPerPage]bool
	for _, d := range ds {
		for _, r := range d.runs {
			for i, v := range r.Words {
				vals[int(r.Off)+i] = v
				set[int(r.Off)+i] = true
			}
		}
	}
	var out Diff
	w := 0
	for w < WordsPerPage {
		if !set[w] {
			w++
			continue
		}
		start := w
		for w < WordsPerPage && set[w] {
			w++
		}
		run := Run{Off: uint16(start), Words: make([]uint64, w-start)}
		copy(run.Words, vals[start:w])
		out.runs = append(out.runs, run)
	}
	return out
}

// OverlapWords returns the number of words modified by both diffs —
// nonzero only under write-write races within a page region, which a
// correctly synchronized program avoids for concurrent intervals.
func (d Diff) OverlapWords(o Diff) int {
	var mine [WordsPerPage]bool
	d.ForEachWord(func(w int) { mine[w] = true })
	n := 0
	o.ForEachWord(func(w int) {
		if mine[w] {
			n++
		}
	})
	return n
}
