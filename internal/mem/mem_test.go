package mem

import (
	"math"
	"testing"
)

func TestGeometry(t *testing.T) {
	if PageSize != 4096 {
		t.Fatalf("PageSize = %d, want 4096 (paper's hardware page)", PageSize)
	}
	if WordsPerPage != 512 {
		t.Fatalf("WordsPerPage = %d, want 512", WordsPerPage)
	}
}

func TestPageOfAndBase(t *testing.T) {
	cases := []struct {
		addr Addr
		page int
	}{
		{0, 0}, {4095, 0}, {4096, 1}, {8191, 1}, {8192, 2},
	}
	for _, c := range cases {
		if got := PageOf(c.addr); got != c.page {
			t.Errorf("PageOf(%d) = %d, want %d", c.addr, got, c.page)
		}
	}
	if PageBase(3) != 3*4096 {
		t.Errorf("PageBase(3) = %d", PageBase(3))
	}
}

func TestWordIndex(t *testing.T) {
	if WordIndex(0) != 0 {
		t.Error("WordIndex(0)")
	}
	if WordIndex(8) != 1 {
		t.Error("WordIndex(8)")
	}
	if WordIndex(4096+16) != 2 {
		t.Error("WordIndex in second page")
	}
	if WordIndex(4088) != 511 {
		t.Error("WordIndex last word")
	}
}

func TestRoundUpPages(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 0}, {1, 4096}, {4096, 4096}, {4097, 8192},
	}
	for _, c := range cases {
		if got := RoundUpPages(c.in); got != c.want {
			t.Errorf("RoundUpPages(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestReplicaWordRoundTrip(t *testing.T) {
	r := NewReplica(2 * PageSize)
	if r.Size() != 2*PageSize || r.NumPages() != 2 {
		t.Fatalf("size/pages = %d/%d", r.Size(), r.NumPages())
	}
	r.WriteWord(16, 0xdeadbeefcafef00d)
	if got := r.ReadWord(16); got != 0xdeadbeefcafef00d {
		t.Fatalf("ReadWord = %#x", got)
	}
	r.WriteF64(PageSize+8, 3.25)
	if got := r.ReadF64(PageSize + 8); got != 3.25 {
		t.Fatalf("ReadF64 = %v", got)
	}
	if got := r.ReadF64(0); got != 0 {
		t.Fatalf("zero word as float = %v", got)
	}
	// NaN round-trips bit-exactly.
	nan := math.Float64frombits(0x7ff8000000000001)
	r.WriteF64(0, nan)
	if bits := r.ReadWord(0); bits != 0x7ff8000000000001 {
		t.Fatalf("NaN bits = %#x", bits)
	}
}

func TestReplicaPageAliases(t *testing.T) {
	r := NewReplica(2 * PageSize)
	p := r.Page(1)
	if len(p) != PageSize {
		t.Fatalf("page len = %d", len(p))
	}
	p[0] = 0xff
	if r.Bytes()[PageSize] != 0xff {
		t.Fatal("Page must alias the replica")
	}
}

func TestPageTableTransitions(t *testing.T) {
	pt := NewPageTable(4)
	if pt.NumPages() != 4 {
		t.Fatalf("NumPages = %d", pt.NumPages())
	}
	if pt.State(0) != Invalid {
		t.Fatal("pages must start Invalid")
	}
	if pt.CanRead(0) || pt.CanWrite(0) {
		t.Fatal("Invalid page must fault on both access kinds")
	}
	pt.Set(0, ReadOnly)
	if !pt.CanRead(0) || pt.CanWrite(0) {
		t.Fatal("ReadOnly must allow reads, fault writes")
	}
	pt.Set(0, ReadWrite)
	if !pt.CanRead(0) || !pt.CanWrite(0) {
		t.Fatal("ReadWrite must allow both")
	}
}

func TestPageStateString(t *testing.T) {
	if Invalid.String() != "Invalid" || ReadOnly.String() != "ReadOnly" ||
		ReadWrite.String() != "ReadWrite" {
		t.Fatal("PageState.String basic values")
	}
	if PageState(9).String() != "PageState(9)" {
		t.Fatal("PageState.String unknown value")
	}
}

func TestLazyReplicaMatchesEager(t *testing.T) {
	const pages = 8
	eager := NewReplica(pages * PageSize)
	lazy := NewLazyReplica(pages * PageSize)
	if !lazy.Lazy() || eager.Lazy() {
		t.Fatal("Lazy() must distinguish the layouts")
	}
	if lazy.Size() != eager.Size() || lazy.NumPages() != pages {
		t.Fatalf("lazy size/pages = %d/%d", lazy.Size(), lazy.NumPages())
	}
	// Untouched pages read as zero without materializing.
	if got := lazy.ReadWord(3 * PageSize); got != 0 {
		t.Fatalf("untouched word = %#x", got)
	}
	if got := lazy.ReadF64(5*PageSize + 8); got != 0 {
		t.Fatalf("untouched float = %v", got)
	}
	// Writes land identically in both layouts.
	addrs := []Addr{0, 16, PageSize + 8, 6*PageSize + 504*WordSize}
	for i, a := range addrs {
		v := uint64(0x1111111111111111 * uint64(i+1))
		eager.WriteWord(a, v)
		lazy.WriteWord(a, v)
	}
	for _, a := range addrs {
		if lazy.ReadWord(a) != eager.ReadWord(a) {
			t.Fatalf("mismatch at %d: lazy %#x eager %#x", a, lazy.ReadWord(a), eager.ReadWord(a))
		}
	}
	// Page materializes zeroed storage and aliases the replica.
	p := lazy.Page(2)
	if len(p) != PageSize {
		t.Fatalf("page len = %d", len(p))
	}
	for i, b := range p {
		if b != 0 {
			t.Fatalf("materialized page byte %d = %#x", i, b)
		}
	}
	p[0] = 0xff
	if got := lazy.ReadWord(2 * PageSize); got&0xff != 0xff {
		t.Fatal("Page must alias the replica")
	}
}

func TestLazyReplicaZeroRecyclesFrames(t *testing.T) {
	r := NewLazyReplica(4 * PageSize)
	for p := 0; p < 4; p++ {
		r.WriteWord(p*PageSize, uint64(p+1))
	}
	r.Zero()
	for p := 0; p < 4; p++ {
		if got := r.ReadWord(p * PageSize); got != 0 {
			t.Fatalf("page %d word after Zero = %#x", p, got)
		}
	}
	// Reused frames (from the free list) must come back cleared.
	r.WriteWord(2*PageSize+8, 7)
	pg := r.Page(2)
	for i := 0; i < 8; i++ {
		if pg[i] != 0 {
			t.Fatalf("recycled frame byte %d = %#x", i, pg[i])
		}
	}
	if r.ReadWord(2*PageSize+8) != 7 {
		t.Fatal("write after Zero lost")
	}
}
