// Package mem implements the simulated virtual-memory substrate of the
// DSM: a paged shared segment, per-processor replicas, software page
// tables with protection states, twins, and word-granularity diffs.
//
// This package substitutes for the mprotect/SIGSEGV machinery TreadMarks
// uses on real hardware (see DESIGN.md §2): every shared access is routed
// through a page-table check, and protection violations invoke the same
// fault paths a signal handler would.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Page and word geometry. The paper's hardware page is 4 KB; TreadMarks
// diffs at word granularity. We use a 64-bit word so one word holds one
// float64 application element.
const (
	PageShift    = 12
	PageSize     = 1 << PageShift // 4096 bytes
	WordSize     = 8
	WordShift    = 3
	WordsPerPage = PageSize / WordSize // 512
)

// Addr is a byte offset into the shared segment.
type Addr = int

// PageOf returns the page number containing address a.
func PageOf(a Addr) int { return a >> PageShift }

// PageBase returns the first byte address of page p.
func PageBase(p int) Addr { return p << PageShift }

// WordIndex returns the word offset of address a within its page.
// The address must be word-aligned.
func WordIndex(a Addr) int { return (a & (PageSize - 1)) >> WordShift }

// RoundUpPages returns size rounded up to a whole number of pages.
func RoundUpPages(size int) int {
	return (size + PageSize - 1) &^ (PageSize - 1)
}

// Replica is one processor's private copy of the shared segment. In real
// TreadMarks this is the node's physical memory backing the shared
// mapping; here it is per simulated processor, in one of two layouts:
//
//   - eager: one flat byte slice covering the whole segment, zeroed at
//     construction — the historical layout, O(segment) memory per
//     processor regardless of what the processor touches;
//   - lazy: a frame table with one entry per page, materialized on
//     first write (or first diff application). An unmaterialized page
//     reads as zeroes without allocating, so a processor's memory is
//     O(pages touched) — what makes 256–1024-processor systems over
//     large segments affordable.
//
// Both layouts are observationally identical: the segment starts zeroed
// everywhere, and every access goes through ReadWord/WriteWord/Page.
type Replica struct {
	data   []byte   // eager backing; nil in lazy mode
	frames [][]byte // lazy frame table; nil in eager mode
	npages int

	// Frame storage: fresh frames are carved from chunk arenas; frames
	// released by Zero (trial reset) are recycled through a free list.
	arena []byte
	free  [][]byte
}

// frameChunk is the number of page frames allocated per arena chunk.
const frameChunk = 64

// NewReplica allocates a zeroed eager replica of at least size bytes,
// rounded up to a page multiple.
func NewReplica(size int) *Replica {
	return &Replica{data: make([]byte, RoundUpPages(size)), npages: RoundUpPages(size) >> PageShift}
}

// NewLazyReplica returns a lazy replica of at least size bytes, rounded
// up to a page multiple. No page storage is allocated until written.
func NewLazyReplica(size int) *Replica {
	n := RoundUpPages(size) >> PageShift
	return &Replica{frames: make([][]byte, n), npages: n}
}

// Lazy reports whether the replica materializes frames on demand.
func (r *Replica) Lazy() bool { return r.data == nil }

// Size returns the replica size in bytes (a page multiple).
func (r *Replica) Size() int { return r.npages << PageShift }

// Zero resets the replica to all-zeroes in place. The eager layout
// clears its storage; the lazy layout releases every materialized frame
// to the free list (cleared on reuse), so a multi-trial benchmark
// rebuilds no frame memory between trials.
func (r *Replica) Zero() {
	if r.data != nil {
		clear(r.data)
		return
	}
	for p, f := range r.frames {
		if f != nil {
			r.free = append(r.free, f)
			r.frames[p] = nil
		}
	}
}

// NumPages returns the number of pages in the replica.
func (r *Replica) NumPages() int { return r.npages }

// materialize installs and returns a zeroed frame for page p.
func (r *Replica) materialize(p int) []byte {
	var f []byte
	if n := len(r.free); n > 0 {
		f, r.free = r.free[n-1], r.free[:n-1]
		clear(f)
	} else {
		if len(r.arena) < PageSize {
			r.arena = make([]byte, frameChunk*PageSize)
		}
		f, r.arena = r.arena[:PageSize:PageSize], r.arena[PageSize:]
	}
	r.frames[p] = f
	return f
}

// Page returns the byte slice backing page p (aliases the replica). In
// lazy mode the frame is materialized: callers take Page to write into
// it (twinning, diff application), so handing out zeroed storage is the
// contract either way.
func (r *Replica) Page(p int) []byte {
	if r.data != nil {
		base := PageBase(p)
		return r.data[base : base+PageSize : base+PageSize]
	}
	if f := r.frames[p]; f != nil {
		return f
	}
	return r.materialize(p)
}

// Bytes returns the whole backing store (aliases the replica). Only the
// eager layout has one; lazy replicas return nil.
func (r *Replica) Bytes() []byte { return r.data }

// ReadWord loads the 64-bit word at word-aligned address a.
func (r *Replica) ReadWord(a Addr) uint64 {
	if r.data != nil {
		return binary.LittleEndian.Uint64(r.data[a:])
	}
	f := r.frames[a>>PageShift]
	if f == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(f[a&(PageSize-1):])
}

// WriteWord stores the 64-bit word at word-aligned address a.
func (r *Replica) WriteWord(a Addr, v uint64) {
	if r.data != nil {
		binary.LittleEndian.PutUint64(r.data[a:], v)
		return
	}
	f := r.frames[a>>PageShift]
	if f == nil {
		f = r.materialize(a >> PageShift)
	}
	binary.LittleEndian.PutUint64(f[a&(PageSize-1):], v)
}

// ReadF64 loads the float64 at word-aligned address a.
func (r *Replica) ReadF64(a Addr) float64 {
	return math.Float64frombits(r.ReadWord(a))
}

// WriteF64 stores the float64 at word-aligned address a.
func (r *Replica) WriteF64(a Addr, v float64) {
	r.WriteWord(a, math.Float64bits(v))
}

// PageState is the software protection state of one page in one
// processor's page table, mirroring the mprotect states TreadMarks uses.
type PageState uint8

const (
	// Invalid pages hold stale data; any access faults.
	Invalid PageState = iota
	// ReadOnly pages are up to date for reading; a write faults
	// (triggering twin creation, the multiple-writer entry point).
	ReadOnly
	// ReadWrite pages have been twinned this interval; both access
	// kinds proceed without faulting.
	ReadWrite
)

func (s PageState) String() string {
	switch s {
	case Invalid:
		return "Invalid"
	case ReadOnly:
		return "ReadOnly"
	case ReadWrite:
		return "ReadWrite"
	default:
		return fmt.Sprintf("PageState(%d)", uint8(s))
	}
}

// PageTable is one processor's software page table.
type PageTable struct {
	states []PageState
}

// NewPageTable returns a table of n pages, all Invalid except as set by
// the caller. TreadMarks starts pages Invalid everywhere except at the
// initializing processor.
func NewPageTable(n int) *PageTable {
	return &PageTable{states: make([]PageState, n)}
}

// NumPages returns the number of pages covered.
func (t *PageTable) NumPages() int { return len(t.states) }

// State returns the protection state of page p.
func (t *PageTable) State(p int) PageState { return t.states[p] }

// Set changes the protection state of page p. Each transition models one
// mprotect call; the caller charges sim.CostModel.ProtOp.
func (t *PageTable) Set(p int, s PageState) { t.states[p] = s }

// CanRead reports whether a read of page p proceeds without a fault.
func (t *PageTable) CanRead(p int) bool { return t.states[p] != Invalid }

// CanWrite reports whether a write to page p proceeds without a fault.
func (t *PageTable) CanWrite(p int) bool { return t.states[p] == ReadWrite }
