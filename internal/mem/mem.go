// Package mem implements the simulated virtual-memory substrate of the
// DSM: a paged shared segment, per-processor replicas, software page
// tables with protection states, twins, and word-granularity diffs.
//
// This package substitutes for the mprotect/SIGSEGV machinery TreadMarks
// uses on real hardware (see DESIGN.md §2): every shared access is routed
// through a page-table check, and protection violations invoke the same
// fault paths a signal handler would.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Page and word geometry. The paper's hardware page is 4 KB; TreadMarks
// diffs at word granularity. We use a 64-bit word so one word holds one
// float64 application element.
const (
	PageShift    = 12
	PageSize     = 1 << PageShift // 4096 bytes
	WordSize     = 8
	WordShift    = 3
	WordsPerPage = PageSize / WordSize // 512
)

// Addr is a byte offset into the shared segment.
type Addr = int

// PageOf returns the page number containing address a.
func PageOf(a Addr) int { return a >> PageShift }

// PageBase returns the first byte address of page p.
func PageBase(p int) Addr { return p << PageShift }

// WordIndex returns the word offset of address a within its page.
// The address must be word-aligned.
func WordIndex(a Addr) int { return (a & (PageSize - 1)) >> WordShift }

// RoundUpPages returns size rounded up to a whole number of pages.
func RoundUpPages(size int) int {
	return (size + PageSize - 1) &^ (PageSize - 1)
}

// Replica is one processor's private copy of the shared segment. In real
// TreadMarks this is the node's physical memory backing the shared
// mapping; here it is an explicit byte slice per simulated processor.
type Replica struct {
	data []byte
}

// NewReplica allocates a zeroed replica of at least size bytes, rounded
// up to a page multiple.
func NewReplica(size int) *Replica {
	return &Replica{data: make([]byte, RoundUpPages(size))}
}

// Size returns the replica size in bytes (a page multiple).
func (r *Replica) Size() int { return len(r.data) }

// Zero resets every byte of the replica in place, reusing its storage —
// the allocation-free equivalent of NewReplica when a system is reset
// between trials of the same configuration.
func (r *Replica) Zero() {
	clear(r.data)
}

// NumPages returns the number of pages in the replica.
func (r *Replica) NumPages() int { return len(r.data) >> PageShift }

// Page returns the byte slice backing page p (aliases the replica).
func (r *Replica) Page(p int) []byte {
	base := PageBase(p)
	return r.data[base : base+PageSize : base+PageSize]
}

// Bytes returns the whole backing store (aliases the replica).
func (r *Replica) Bytes() []byte { return r.data }

// ReadWord loads the 64-bit word at word-aligned address a.
func (r *Replica) ReadWord(a Addr) uint64 {
	return binary.LittleEndian.Uint64(r.data[a:])
}

// WriteWord stores the 64-bit word at word-aligned address a.
func (r *Replica) WriteWord(a Addr, v uint64) {
	binary.LittleEndian.PutUint64(r.data[a:], v)
}

// ReadF64 loads the float64 at word-aligned address a.
func (r *Replica) ReadF64(a Addr) float64 {
	return math.Float64frombits(r.ReadWord(a))
}

// WriteF64 stores the float64 at word-aligned address a.
func (r *Replica) WriteF64(a Addr, v float64) {
	r.WriteWord(a, math.Float64bits(v))
}

// PageState is the software protection state of one page in one
// processor's page table, mirroring the mprotect states TreadMarks uses.
type PageState uint8

const (
	// Invalid pages hold stale data; any access faults.
	Invalid PageState = iota
	// ReadOnly pages are up to date for reading; a write faults
	// (triggering twin creation, the multiple-writer entry point).
	ReadOnly
	// ReadWrite pages have been twinned this interval; both access
	// kinds proceed without faulting.
	ReadWrite
)

func (s PageState) String() string {
	switch s {
	case Invalid:
		return "Invalid"
	case ReadOnly:
		return "ReadOnly"
	case ReadWrite:
		return "ReadWrite"
	default:
		return fmt.Sprintf("PageState(%d)", uint8(s))
	}
}

// PageTable is one processor's software page table.
type PageTable struct {
	states []PageState
}

// NewPageTable returns a table of n pages, all Invalid except as set by
// the caller. TreadMarks starts pages Invalid everywhere except at the
// initializing processor.
func NewPageTable(n int) *PageTable {
	return &PageTable{states: make([]PageState, n)}
}

// NumPages returns the number of pages covered.
func (t *PageTable) NumPages() int { return len(t.states) }

// State returns the protection state of page p.
func (t *PageTable) State(p int) PageState { return t.states[p] }

// Set changes the protection state of page p. Each transition models one
// mprotect call; the caller charges sim.CostModel.ProtOp.
func (t *PageTable) Set(p int, s PageState) { t.states[p] = s }

// CanRead reports whether a read of page p proceeds without a fault.
func (t *PageTable) CanRead(p int) bool { return t.states[p] != Invalid }

// CanWrite reports whether a write to page p proceeds without a fault.
func (t *PageTable) CanWrite(p int) bool { return t.states[p] == ReadWrite }
