package mem

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCoalesceDiffsLastWriteWins(t *testing.T) {
	base := make([]byte, PageSize)
	a := make([]byte, PageSize)
	putWordAt(a, 5, 1)
	putWordAt(a, 6, 1)
	d1 := EncodeDiff(MakeTwin(base), a)
	b := make([]byte, PageSize)
	copy(b, a)
	putWordAt(b, 6, 2)
	putWordAt(b, 7, 2)
	d2 := EncodeDiff(MakeTwin(a), b)

	c := CoalesceDiffs([]Diff{d1, d2})
	dst := make([]byte, PageSize)
	c.Apply(dst)
	if wordAt(dst, 5) != 1 || wordAt(dst, 6) != 2 || wordAt(dst, 7) != 2 {
		t.Fatalf("coalesced = %d %d %d", wordAt(dst, 5), wordAt(dst, 6), wordAt(dst, 7))
	}
	if c.WordCount() != 3 {
		t.Fatalf("WordCount = %d", c.WordCount())
	}
}

func TestCoalesceSingleDiffIsIdentity(t *testing.T) {
	base := make([]byte, PageSize)
	a := make([]byte, PageSize)
	putWordAt(a, 0, 9)
	d := EncodeDiff(MakeTwin(base), a)
	if !reflect.DeepEqual(CoalesceDiffs([]Diff{d}), d) {
		t.Fatal("single-diff coalesce must be the diff itself")
	}
}

// Property: applying a chain of diffs in order equals applying the
// coalesced diff, and the coalesced diff is never larger on the wire.
func TestPropCoalesceEquivalentToChain(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(args []reflect.Value, r *rand.Rand) {
			cur := make([]byte, PageSize)
			var chain []Diff
			for k := 0; k < 1+r.Intn(5); k++ {
				next := make([]byte, PageSize)
				copy(next, cur)
				for i := 0; i < 1+r.Intn(30); i++ {
					putWordAt(next, r.Intn(WordsPerPage), r.Uint64())
				}
				chain = append(chain, EncodeDiff(MakeTwin(cur), next))
				cur = next
			}
			args[0] = reflect.ValueOf(chain)
		},
	}
	f := func(chain []Diff) bool {
		x := make([]byte, PageSize)
		for _, d := range chain {
			d.Apply(x)
		}
		y := make([]byte, PageSize)
		c := CoalesceDiffs(chain)
		c.Apply(y)
		if !bytes.Equal(x, y) {
			return false
		}
		sum := 0
		for _, d := range chain {
			sum += d.WireBytes()
		}
		return c.WireBytes() <= sum
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
