package mem

import "testing"

// TestAllocBudgetDiffPath pins the twin/diff hot path's steady-state
// allocation budget:
//
//   - re-twinning into a recycled buffer: 0 allocs
//   - encoding an unchanged page: 0 allocs (the common barrier case —
//     a twin taken, nothing written)
//   - encoding a dirty page: exactly 2 (the retained word arena and
//     run list; published diffs outlive the interval, so these cannot
//     come from scratch)
//   - applying a diff: 0 allocs
//   - reconstructing a full-page image into caller arenas: 0 allocs
func TestAllocBudgetDiffPath(t *testing.T) {
	page := make([]byte, PageSize)
	var scr DiffScratch
	twin := MakeTwin(page)

	if n := testing.AllocsPerRun(100, func() {
		twin = MakeTwinInto(twin, page)
	}); n != 0 {
		t.Errorf("MakeTwinInto (recycled): %v allocs/op, want 0", n)
	}

	if n := testing.AllocsPerRun(100, func() {
		if d := EncodeDiffInto(&scr, twin, page); !d.Empty() {
			t.Fatal("clean page produced a non-empty diff")
		}
	}); n != 0 {
		t.Errorf("EncodeDiffInto (clean page): %v allocs/op, want 0", n)
	}

	// Dirty the page: two runs' worth of modified words.
	for _, w := range []int{0, 1, 2, 100, 101} {
		putWordAt(page, w, 0xdeadbeef)
	}
	var d Diff
	if n := testing.AllocsPerRun(100, func() {
		d = EncodeDiffInto(&scr, twin, page)
	}); n != 2 {
		t.Errorf("EncodeDiffInto (dirty page): %v allocs/op, want 2 (arena + runs)", n)
	}

	dst := make([]byte, PageSize)
	if n := testing.AllocsPerRun(100, func() {
		d.Apply(dst)
	}); n != 0 {
		t.Errorf("Diff.Apply: %v allocs/op, want 0", n)
	}

	words := make([]uint64, WordsPerPage)
	runs := make([]Run, 0, 1)
	if n := testing.AllocsPerRun(100, func() {
		_ = FullPageDiffInto(words, runs, page)
	}); n != 0 {
		t.Errorf("FullPageDiffInto (caller arenas): %v allocs/op, want 0", n)
	}
}
