package netmodel

import (
	"sort"
	"sync"

	"repro/internal/sim"
)

func init() {
	Register("bus", func(c sim.CostModel) Model {
		return &bus{name: "bus", p: ParamsFromCost(c)}
	})
	Register("switch", func(c sim.CostModel) Model {
		return newSwitched("switch", ParamsFromCost(c))
	})
	Register("atm", Preset("atm", Scale{Bandwidth: 1.55, Overhead: 1, Latency: 1}))
	Register("myrinet", Preset("myrinet", Scale{Bandwidth: 12.8, Overhead: 10, Latency: 5}))
	Register("10gbe", Preset("10gbe", Scale{Bandwidth: 100, Overhead: 20, Latency: 10}))
}

// Params decomposes a leg's fixed cost into the parts that matter under
// contention: per-leg software overhead at each end (CPU time, never
// shared), the wire/fabric propagation latency, and the transmission
// time (fixed frame cost + per-byte), which is what occupies a shared
// resource. The decomposition is calibrated so an *uncontended* leg
// costs exactly what the ideal model charges:
//
//	SendOverhead + FrameTime + Propagation + RecvOverhead = MessageLeg
type Params struct {
	SendOverhead sim.Duration // sender-side software overhead per leg
	RecvOverhead sim.Duration // receiver-side software overhead per leg
	Propagation  sim.Duration // uncontended wire/fabric latency
	FrameTime    sim.Duration // fixed transmission time per frame
	PerByte      sim.Duration // transmission time per payload byte
	Service      sim.Duration // remote service between request and reply
}

// ParamsFromCost splits the calibrated cost model into occupancy
// parameters. The paper's platform is dominated by per-message software
// overhead (§5.1), so the overheads take 4/5 of the fixed leg cost and
// the wire (frame + propagation) the remaining 1/5.
func ParamsFromCost(c sim.CostModel) Params {
	send := 2 * c.MessageLeg / 5
	recv := 2 * c.MessageLeg / 5
	frame := c.MessageLeg / 10
	return Params{
		SendOverhead: send,
		RecvOverhead: recv,
		FrameTime:    frame,
		Propagation:  c.MessageLeg - send - recv - frame,
		PerByte:      c.PerByte,
		Service:      c.RequestService,
	}
}

// txTime is the transmission time of one frame carrying bytes of
// payload — the duration it occupies a shared resource.
func (p Params) txTime(bytes int) sim.Duration {
	return p.FrameTime + sim.Duration(bytes)*p.PerByte
}

// exchange composes a request/reply from two legs priced by m.Leg,
// spacing the reply by the request's arrival plus remote service.
func exchange(m Model, p Params, src, dst, reqBytes, replyBytes int, at sim.Duration) ExchangeTiming {
	req := m.Leg(src, dst, reqBytes, at)
	rep := m.Leg(dst, src, replyBytes, at+req.Total+p.Service)
	return ExchangeTiming{Request: req, Service: p.Service, Reply: rep}
}

// interval is one booked busy period [start, end) of a serial resource.
type interval struct {
	start, end sim.Duration
}

// timeline tracks when a serial resource (the bus, one NIC port) is
// busy, in virtual time. Reservations arrive out of virtual-time order
// — processor clocks are skewed, and the message log serializes them
// in delivery order — so the earliest idle gap at or after the
// requested time is searched, rather than ratcheting a single
// high-water mark: a frame departing logically earlier than one
// already booked slots into the idle time before it instead of
// spuriously queuing behind the future. Queuing delay therefore
// reflects genuine overlap of transmissions in virtual time.
//
// The interval list is capped: when it overflows, the earliest busy
// period is forgotten (a frame sent at a long-past virtual time may
// then see slightly *less* contention than it should — the safe
// direction for a model whose floor is the uncontended ideal cost).
type timeline struct {
	iv []interval
}

const maxIntervals = 4096

// reserve books a slot of length tx at the earliest idle time at or
// after ready and returns the slot's start.
func (t *timeline) reserve(ready, tx sim.Duration) sim.Duration {
	if tx <= 0 {
		return ready
	}
	// Skip busy periods that end at or before ready; they cannot
	// constrain the slot.
	i := sort.Search(len(t.iv), func(i int) bool { return t.iv[i].end > ready })
	start := ready
	for i < len(t.iv) {
		if start+tx <= t.iv[i].start {
			break // fits in the gap before busy period i
		}
		if e := t.iv[i].end; e > start {
			start = e
		}
		i++
	}
	// Insert [start, start+tx) before index i, coalescing with
	// neighbors it touches exactly (queued frames pack back-to-back,
	// so bursts collapse into single busy periods).
	lo, hi := i, i
	merged := interval{start: start, end: start + tx}
	if lo > 0 && t.iv[lo-1].end == merged.start {
		lo--
		merged.start = t.iv[lo].start
	}
	if hi < len(t.iv) && t.iv[hi].start == merged.end {
		merged.end = t.iv[hi].end
		hi++
	}
	switch {
	case hi == lo: // pure insert
		t.iv = append(t.iv, interval{})
		copy(t.iv[lo+1:], t.iv[lo:])
		t.iv[lo] = merged
	case hi == lo+1: // replace one
		t.iv[lo] = merged
	default: // replace several
		t.iv[lo] = merged
		t.iv = append(t.iv[:lo+1], t.iv[hi:]...)
	}
	if len(t.iv) > maxIntervals {
		t.iv = t.iv[1:]
	}
	return start
}

func (t *timeline) reset() { t.iv = t.iv[:0] }

// bus models a shared-medium Ethernet: one global serialization
// resource. A frame may start transmitting only when the medium is
// idle, so simultaneous legs queue behind each other no matter which
// processors they connect.
type bus struct {
	name string
	p    Params

	mu   sync.Mutex
	wire timeline
}

func (b *bus) Name() string { return b.name }

func (b *bus) Leg(src, dst, bytes int, at sim.Duration) Timing {
	ready := at + b.p.SendOverhead
	tx := b.p.txTime(bytes)
	b.mu.Lock()
	start := b.wire.reserve(ready, tx)
	b.mu.Unlock()
	queue := start - ready
	return Timing{
		Total: b.p.SendOverhead + queue + tx + b.p.Propagation + b.p.RecvOverhead,
		Queue: queue,
	}
}

func (b *bus) Exchange(src, dst, reqBytes, replyBytes int, at sim.Duration) ExchangeTiming {
	return exchange(b, b.p, src, dst, reqBytes, replyBytes, at)
}

func (b *bus) Reset() {
	b.mu.Lock()
	b.wire.reset()
	b.mu.Unlock()
}

// switched models a full-bisection switch (the paper's actual
// platform): contention exists only at the endpoints' NIC ports. A leg
// occupies its sender's egress port for the transmission time; the
// frame's head reaches the destination after the propagation latency
// (cut-through, so an uncontended leg costs exactly the ideal leg) and
// then occupies the receiver's ingress port for the transmission time.
// Disjoint src/dst pairs never interfere.
type switched struct {
	name string
	p    Params

	mu      sync.Mutex
	egress  map[int]*timeline // NIC send port busy periods
	ingress map[int]*timeline // NIC receive port busy periods
}

func newSwitched(name string, p Params) *switched {
	return &switched{
		name:    name,
		p:       p,
		egress:  make(map[int]*timeline),
		ingress: make(map[int]*timeline),
	}
}

func port(m map[int]*timeline, id int) *timeline {
	t := m[id]
	if t == nil {
		t = &timeline{}
		m[id] = t
	}
	return t
}

func (s *switched) Name() string { return s.name }

func (s *switched) Leg(src, dst, bytes int, at sim.Duration) Timing {
	ready := at + s.p.SendOverhead
	tx := s.p.txTime(bytes)
	s.mu.Lock()
	eStart := port(s.egress, src).reserve(ready, tx)
	arrive := eStart + s.p.Propagation // head of frame, cut-through
	iStart := port(s.ingress, dst).reserve(arrive, tx)
	s.mu.Unlock()
	queue := (eStart - ready) + (iStart - arrive)
	return Timing{
		Total: s.p.SendOverhead + queue + tx + s.p.Propagation + s.p.RecvOverhead,
		Queue: queue,
	}
}

func (s *switched) Exchange(src, dst, reqBytes, replyBytes int, at sim.Duration) ExchangeTiming {
	return exchange(s, s.p, src, dst, reqBytes, replyBytes, at)
}

func (s *switched) Reset() {
	s.mu.Lock()
	for _, t := range s.egress {
		t.reset()
	}
	for _, t := range s.ingress {
		t.reset()
	}
	s.mu.Unlock()
}

// Scale parameterizes a preset interconnect relative to the calibrated
// base platform: Bandwidth multiplies the wire rate (dividing the
// per-byte time), Overhead divides the per-leg software overheads and
// the remote service cost, and Latency divides the fabric latency and
// frame cost. Every factor below 1 is treated as 1 (presets never
// model a slower network than the calibration).
type Scale struct {
	Bandwidth float64
	Overhead  float64
	Latency   float64
}

func (s Scale) norm() Scale {
	if s.Bandwidth < 1 {
		s.Bandwidth = 1
	}
	if s.Overhead < 1 {
		s.Overhead = 1
	}
	if s.Latency < 1 {
		s.Latency = 1
	}
	return s
}

// Preset returns a factory for a switch-topology model whose parameters
// scale the calibrated base platform — the "what if the cluster ran on
// X" family (atm: 155 Mbps, same software stack; myrinet: 1.28 Gbps
// with user-level messaging; 10gbe: 10 Gbps with a modern kernel path).
func Preset(name string, scale Scale) func(sim.CostModel) Model {
	scale = scale.norm()
	return func(c sim.CostModel) Model {
		p := ParamsFromCost(c)
		p.PerByte = sim.Duration(float64(p.PerByte) / scale.Bandwidth)
		p.SendOverhead = sim.Duration(float64(p.SendOverhead) / scale.Overhead)
		p.RecvOverhead = sim.Duration(float64(p.RecvOverhead) / scale.Overhead)
		p.Service = sim.Duration(float64(p.Service) / scale.Overhead)
		p.Propagation = sim.Duration(float64(p.Propagation) / scale.Latency)
		p.FrameTime = sim.Duration(float64(p.FrameTime) / scale.Latency)
		return newSwitched(name, p)
	}
}
