package netmodel

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func mustNew(t *testing.T, name string) Model {
	t.Helper()
	m, err := New(name, sim.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRegistryRoundTrip(t *testing.T) {
	names := Names()
	for _, want := range []string{"ideal", "bus", "switch", "atm", "myrinet", "10gbe"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Names() = %v, missing %q", names, want)
		}
	}
	for _, n := range names {
		if !Known(n) || !Known(strings.ToUpper(n)) {
			t.Fatalf("Known(%q) must be true (case-insensitive)", n)
		}
		m := mustNew(t, n)
		if m.Name() != n {
			t.Fatalf("New(%q).Name() = %q", n, m.Name())
		}
	}
	if Known("token-ring") {
		t.Fatal("unregistered name reported known")
	}
	if _, err := New("token-ring", sim.DefaultCostModel()); err == nil {
		t.Fatal("New of unknown model must error")
	}
	if m := mustNew(t, ""); m.Name() != Default {
		t.Fatalf("empty name must select %q, got %q", Default, m.Name())
	}
}

// TestIdealParity pins the ideal model to the sim.CostModel arithmetic
// the engine used before this subsystem existed — the golden-count
// tests at the repository root depend on this being bit-identical.
func TestIdealParity(t *testing.T) {
	cost := sim.DefaultCostModel()
	m := mustNew(t, "ideal")
	for _, bytes := range []int{0, 1, 16, 512, 4096, 3 * 4096} {
		lt := m.Leg(0, 1, bytes, 42*sim.Microsecond)
		want := cost.MessageLeg + sim.Duration(bytes)*cost.PerByte
		if lt.Total != want || lt.Queue != 0 {
			t.Fatalf("Leg(%d bytes) = %+v, want Total %v, Queue 0", bytes, lt, want)
		}
		xt := m.Exchange(0, 1, 24, bytes, 42*sim.Microsecond)
		wantX := cost.RoundTrip(24, bytes) + cost.RequestService
		if xt.Total() != wantX || xt.Queue() != 0 {
			t.Fatalf("Exchange(24, %d) total %v queue %v, want %v, 0",
				bytes, xt.Total(), xt.Queue(), wantX)
		}
	}
}

// TestUncontendedParity checks the occupancy decomposition: a single
// leg on an otherwise idle bus or switch costs exactly the ideal leg.
func TestUncontendedParity(t *testing.T) {
	cost := sim.DefaultCostModel()
	for _, name := range []string{"bus", "switch"} {
		m := mustNew(t, name)
		lt := m.Leg(0, 1, 4096, sim.Millisecond)
		want := cost.MessageLeg + 4096*cost.PerByte
		if lt.Total != want || lt.Queue != 0 {
			t.Fatalf("%s uncontended Leg = %+v, want Total %v, Queue 0", name, lt, want)
		}
	}
}

// TestBusSerialization checks the shared medium: two legs departing at
// the same virtual time must not overlap — the second waits out the
// first's full transmission, even between disjoint processor pairs.
func TestBusSerialization(t *testing.T) {
	cost := sim.DefaultCostModel()
	p := ParamsFromCost(cost)
	m := mustNew(t, "bus")
	at := sim.Millisecond
	first := m.Leg(0, 1, 4096, at)
	second := m.Leg(2, 3, 4096, at) // disjoint pair, same departure
	if first.Queue != 0 {
		t.Fatalf("first leg queued %v on an idle bus", first.Queue)
	}
	if want := p.txTime(4096); second.Queue != want {
		t.Fatalf("second leg queue = %v, want the first frame's transmission time %v",
			second.Queue, want)
	}
	if second.Total != first.Total+second.Queue {
		t.Fatalf("second leg total %v != first total %v + queue %v",
			second.Total, first.Total, second.Queue)
	}
}

// TestSwitchFullBisection checks the switch: disjoint pairs never
// interfere, while legs sharing a NIC port queue on it.
func TestSwitchFullBisection(t *testing.T) {
	m := mustNew(t, "switch")
	at := sim.Millisecond
	a := m.Leg(0, 1, 4096, at)
	b := m.Leg(2, 3, 4096, at) // disjoint: no shared port
	if a.Queue != 0 || b.Queue != 0 {
		t.Fatalf("disjoint pairs queued: %v, %v", a.Queue, b.Queue)
	}
	c := m.Leg(0, 4, 4096, at) // shares proc 0's egress with a
	if c.Queue == 0 {
		t.Fatal("legs sharing an egress port must queue")
	}
	d := m.Leg(5, 1, 4096, at) // shares proc 1's ingress with a
	if d.Queue == 0 {
		t.Fatal("legs sharing an ingress port must queue")
	}
}

// TestOutOfOrderSendsDoNotRatchet checks the timeline property the
// engine depends on: a leg whose virtual send time precedes an
// already-booked future frame slots into the idle gap before it
// instead of queuing behind it (processor clocks are skewed, so the
// message log is not sorted by virtual time).
func TestOutOfOrderSendsDoNotRatchet(t *testing.T) {
	for _, name := range []string{"bus", "switch"} {
		m := mustNew(t, name)
		if q := m.Leg(0, 1, 4096, 100*sim.Millisecond).Queue; q != 0 {
			t.Fatalf("%s: future frame queued %v", name, q)
		}
		if q := m.Leg(0, 1, 64, sim.Millisecond).Queue; q != 0 {
			t.Fatalf("%s: logically earlier frame queued %v behind the future", name, q)
		}
	}
}

// TestMonotonicity checks that on every registered model more bytes
// never cost less, for legs and for exchanges.
func TestMonotonicity(t *testing.T) {
	sizes := []int{0, 1, 64, 512, 4096, 4 * 4096}
	for _, name := range Names() {
		var prevLeg, prevX sim.Duration = -1, -1
		for _, bytes := range sizes {
			m := mustNew(t, name) // fresh occupancy state per size
			if got := m.Leg(0, 1, bytes, sim.Millisecond).Total; got < prevLeg {
				t.Fatalf("%s: Leg(%d bytes) = %v < previous %v", name, bytes, got, prevLeg)
			} else {
				prevLeg = got
			}
			m = mustNew(t, name)
			if got := m.Exchange(0, 1, 24, bytes, sim.Millisecond).Total(); got < prevX {
				t.Fatalf("%s: Exchange(%d bytes) = %v < previous %v", name, bytes, got, prevX)
			} else {
				prevX = got
			}
		}
	}
}

// TestResetClearsOccupancy checks that Reset returns a contended model
// to its freshly built pricing.
func TestResetClearsOccupancy(t *testing.T) {
	for _, name := range []string{"bus", "switch"} {
		m := mustNew(t, name)
		fresh := m.Leg(0, 1, 4096, sim.Millisecond)
		contended := m.Leg(0, 1, 4096, sim.Millisecond)
		if contended.Queue == 0 {
			t.Fatalf("%s: second identical leg must queue", name)
		}
		m.Reset()
		if again := m.Leg(0, 1, 4096, sim.Millisecond); again != fresh {
			t.Fatalf("%s: post-Reset leg %+v != fresh leg %+v", name, again, fresh)
		}
	}
}

// TestPresetsAreFaster checks the preset family's point: on a
// payload-heavy exchange every preset beats the calibrated platform.
func TestPresetsAreFaster(t *testing.T) {
	base := mustNew(t, "switch").Exchange(0, 1, 24, 4*4096, 0).Total()
	for _, name := range []string{"atm", "myrinet", "10gbe"} {
		got := mustNew(t, name).Exchange(0, 1, 24, 4*4096, 0).Total()
		if got >= base {
			t.Fatalf("%s exchange %v not faster than base platform %v", name, got, base)
		}
	}
}

// TestTimelineGapFilling exercises the reservation structure directly:
// bookings coalesce, gaps fill, and overflow forgets the oldest busy
// period first.
func TestTimelineGapFilling(t *testing.T) {
	var tl timeline
	// Book [10,20) then [30,40); a 10-long slot at 0 fits before both.
	if got := tl.reserve(10, 10); got != 10 {
		t.Fatalf("first booking at %v", got)
	}
	if got := tl.reserve(30, 10); got != 30 {
		t.Fatalf("second booking at %v", got)
	}
	if got := tl.reserve(0, 10); got != 0 {
		t.Fatalf("gap before all bookings: start %v, want 0", got)
	}
	// [0,20) now busy; a 10-long slot requested at 5 must wait for 20,
	// then [20,40) coalesces into one period.
	if got := tl.reserve(5, 10); got != 20 {
		t.Fatalf("overlapping request started at %v, want 20", got)
	}
	if len(tl.iv) != 1 {
		t.Fatalf("timeline has %d busy periods, want 1 coalesced: %v", len(tl.iv), tl.iv)
	}
	if tl.iv[0] != (interval{start: 0, end: 40}) {
		t.Fatalf("coalesced period = %v, want [0,40)", tl.iv[0])
	}
	// A request inside a gap too small for it skips to the next gap.
	if got := tl.reserve(50, 5); got != 50 {
		t.Fatalf("booking at %v", got)
	}
	if got := tl.reserve(41, 20); got != 55 {
		t.Fatalf("slot too large for the [40,50) gap started at %v, want 55", got)
	}
}
