package netmodel

import "repro/internal/sim"

func init() {
	Register("ideal", func(c sim.CostModel) Model { return ideal{cost: c} })
}

// ideal is the contention-free model: the flat sim.CostModel arithmetic
// the engine used before the netmodel subsystem existed. Its timings
// are bit-identical to that arithmetic — a leg costs
// MessageLeg + bytes×PerByte and an exchange costs
// RoundTrip + RequestService — so golden-count tests pin it exactly.
type ideal struct {
	cost sim.CostModel
}

func (ideal) Name() string { return "ideal" }

// StatelessPricing marks the model's pricing as pure: it keeps no
// occupancy state, so concurrent callers need no serialization.
func (ideal) StatelessPricing() {}

func (m ideal) Leg(src, dst, bytes int, at sim.Duration) Timing {
	return Timing{Total: m.cost.MessageLeg + sim.Duration(bytes)*m.cost.PerByte}
}

func (m ideal) Exchange(src, dst, reqBytes, replyBytes int, at sim.Duration) ExchangeTiming {
	return ExchangeTiming{
		Request: m.Leg(src, dst, reqBytes, at),
		Service: m.cost.RequestService,
		Reply:   m.Leg(dst, src, replyBytes, at),
	}
}

func (ideal) Reset() {}
