// Package netmodel is the pluggable network-timing subsystem: a family
// of interconnect models that price the DSM's protocol messages, from
// the paper's flat per-message cost arithmetic ("ideal") to
// contention-aware occupancy models of a shared-medium Ethernet
// ("bus"), the paper's switched Ethernet with per-NIC ports ("switch"),
// and a preset family of faster interconnects ("atm", "myrinet",
// "10gbe").
//
// A Model prices a one-way leg or a request/reply exchange given the
// endpoints, the payload size, and the sender's *virtual* send time.
// Contended models keep occupancy state (when the bus or a NIC port is
// next free) in virtual time: a leg departing at t starts transmitting
// at max(t, resourceFree), and the difference is its queue delay. No
// separate event loop exists — queuing delay emerges from the engine's
// existing per-processor time accounting (see DESIGN.md §6 for why
// this is sound given the engine's synchronous hand-offs).
//
// Models are registered by name; internal/simnet resolves the
// configured name and delegates all pricing here.
package netmodel

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Timing is the outcome of pricing one message leg.
type Timing struct {
	// Total is the elapsed virtual time from the send until delivery:
	// software overhead + queue delay + transmission + propagation.
	Total sim.Duration
	// Queue is the contention component of Total — time the leg spent
	// waiting for a shared resource (bus, NIC port). Zero on the ideal
	// model.
	Queue sim.Duration
}

// ExchangeTiming is the outcome of pricing one request/reply exchange.
type ExchangeTiming struct {
	// Request and Reply are the two legs' timings.
	Request Timing
	Reply   Timing
	// Service is the remote-side cost of servicing the request between
	// the legs.
	Service sim.Duration
}

// Total is the elapsed virtual time of the whole exchange.
func (e ExchangeTiming) Total() sim.Duration {
	return e.Request.Total + e.Service + e.Reply.Total
}

// Queue is the exchange's total contention delay.
func (e ExchangeTiming) Queue() sim.Duration {
	return e.Request.Queue + e.Reply.Queue
}

// Model prices protocol messages on one interconnect. Implementations
// must be safe for concurrent use by all processor goroutines, and
// contended models must advance their occupancy state on the virtual
// send times they are given.
type Model interface {
	// Name returns the registry name.
	Name() string

	// Leg prices one one-way message of payloadBytes from src to dst,
	// departing at the sender's virtual time at.
	Leg(src, dst, bytes int, at sim.Duration) Timing

	// Exchange prices a request/reply pair: the request leg departs
	// src at the virtual time at, is serviced at dst, and the reply
	// leg returns to src.
	Exchange(src, dst, reqBytes, replyBytes int, at sim.Duration) ExchangeTiming

	// Reset clears all occupancy state, returning the model to its
	// freshly built condition (called between independent trials).
	Reset()
}

// Stateless marks models whose pricing is a pure function of its
// arguments: Leg and Exchange read no mutable occupancy state, so
// callers may invoke them concurrently without serialization. The
// ideal model qualifies; contention-aware occupancy models do not.
// internal/simnet uses this capability to drop its recording lock in
// counts-only mode.
type Stateless interface {
	Model
	// StatelessPricing is a marker; implementations do nothing.
	StatelessPricing()
}

// IsStateless reports whether m's pricing is pure (see Stateless).
func IsStateless(m Model) bool {
	_, ok := m.(Stateless)
	return ok
}

// Default is the model of the paper's cost calibration: the flat
// arithmetic the engine used before this subsystem existed.
const Default = "ideal"

var factories = map[string]func(sim.CostModel) Model{}

// Register adds a model factory under a (case-insensitive) name.
// Called from init; a duplicate or empty registration is a programming
// error.
func Register(name string, factory func(sim.CostModel) Model) {
	key := strings.ToLower(name)
	if key == "" || factory == nil {
		panic("netmodel: incomplete model registration")
	}
	if _, dup := factories[key]; dup {
		panic(fmt.Sprintf("netmodel: duplicate model registration %q", key))
	}
	factories[key] = factory
}

// New builds the named model over the given cost calibration. An
// unknown name is an error listing the registered models.
func New(name string, cost sim.CostModel) (Model, error) {
	if name == "" {
		name = Default
	}
	factory, ok := factories[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("netmodel: unknown network model %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
	return factory(cost), nil
}

// Names returns the registered model names, sorted.
func Names() []string {
	out := make([]string, 0, len(factories))
	for name := range factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Known reports whether name (case-insensitive) is registered.
func Known(name string) bool {
	_, ok := factories[strings.ToLower(name)]
	return ok
}
