package tmk

import (
	"repro/internal/lrc"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vc"
)

// DefaultAdaptHysteresis is the number of consecutive barrier phases
// with contrary writer evidence required before the adaptive protocol
// switches a unit (Config.AdaptHysteresis overrides).
const DefaultAdaptHysteresis = 2

// defaultQueueGate derives the adaptive protocol's contention gate from
// the cost calibration: homeless→home migration is allowed only while
// the measured mean queue delay per message reaches MessageLeg/16
// (9.25 µs on the paper's platform). Measured means per message on the
// built-in models span 83 µs (bus), 26 µs (switch), and 19 µs (atm)
// versus 3 µs (myrinet), 0.8 µs (10gbe), and 0 (ideal), so the gate
// opens exactly on the interconnects where saving messages pays.
func defaultQueueGate(cost sim.CostModel) sim.Duration { return cost.MessageLeg / 16 }

func init() {
	RegisterProtocol("adaptive", func(s *System) {
		hb := newHomeProtocol(s)
		hb.retain = true
		s.install(&homelessProtocol{}, hb)
		s.policy = newAdaptivePolicy(s, hb)
	})
}

// Dispatch-table indices of the adaptive configuration's two engines
// (the install order above).
const (
	homelessIdx = 0
	homeIdx     = 1
)

// adaptivePolicy is the hybrid protocol the per-unit dispatch exists
// for: every unit starts under the paper's homeless protocol, and at
// each barrier the unit's writer signature for the phase that just
// ended — the per-unit concurrent-writer statistic behind the §3
// false-sharing signature (see concurrentWriters) — decides its
// protocol for the next phase. Heavily false-shared units (concurrent
// writers numbering at least half the processors, without lock churn —
// see the evidence filters in atBarrier) migrate to home-based LRC,
// whose one-exchange-per-miss beats one-exchange-per-writer there;
// other units migrate back to homeless, whose small on-demand diffs
// beat whole-unit images and per-release flushes there. A unit only
// switches after AdaptHysteresis consecutive phases of contrary
// evidence, so oscillating signatures don't thrash, and phases with no
// writers carry no evidence at all.
//
// atBarrier runs in the last arriver's goroutine while every other
// processor is blocked awaiting its barrier grant, so mutating the
// dispatch table is race-free: the grant channel send publishes the new
// table to every processor (see DESIGN.md §8).
type adaptivePolicy struct {
	sys        *System
	home       *homeProtocol
	hysteresis int
	// queueGate is the measured mean queue delay per message required
	// before units may migrate homeless→home (§8's network-aware
	// evidence): on an interconnect showing no contention, homeless's
	// extra messages are cheap and units are held homeless. Negative
	// disables the gate (signature-only rule).
	queueGate sim.Duration

	// streak[u] counts consecutive evidence phases contradicting unit
	// u's current protocol; switches[u] counts u's switch events.
	// churned[u] pins a unit homeless for the rest of the run once any
	// phase closed more intervals on it than one per processor: under
	// home every closed interval is a flush, so a unit that mixes
	// lock-churn phases with quiet concurrent phases loses more during
	// the churn than home-based misses save during the quiet.
	// justSwitched[u] marks units re-pointed at the current barrier so
	// the placement rehomer leaves their fresh homes alone.
	streak       []int
	switches     []int
	churned      []bool
	justSwitched []bool
	total        int
	phase        int // 1-based count of evaluated barrier phases
	// pending[proc] holds the ownership handoffs proc must pay for
	// after the current barrier releases (proc is the new home): the
	// home pulls the unit's image from its causally latest writer.
	pending [][]rehomeMove
}

func newAdaptivePolicy(s *System, home *homeProtocol) *adaptivePolicy {
	gate := s.cfg.AdaptQueueGate
	if gate == 0 {
		gate = defaultQueueGate(s.cost)
	}
	return &adaptivePolicy{
		sys:        s,
		home:       home,
		hysteresis: s.cfg.AdaptHysteresis, // fill() normalized the default
		queueGate:  gate,

		streak:       make([]int, s.numUnits),
		switches:     make([]int, s.numUnits),
		churned:      make([]bool, s.numUnits),
		justSwitched: make([]bool, s.numUnits),
		pending:      make([][]rehomeMove, s.cfg.Procs),
	}
}

// contended reports the network-aware half of the §8 switch rule: the
// interconnect's measured mean queue delay per message so far has
// reached the gate. O(1) — both totals are simnet running counters.
func (a *adaptivePolicy) contended() bool {
	if a.queueGate < 0 {
		return true // gate disabled: signature-only rule
	}
	msgs, _ := a.sys.net.Counts()
	if msgs == 0 {
		return false
	}
	return a.sys.net.QueueTotal() >= a.queueGate*sim.Duration(msgs)
}

// atBarrier evaluates every unit's writer signature over the phase that
// just ended (delta: the causally sorted intervals between the previous
// and the current merged barrier time) and re-points units whose
// evidence streak reached the hysteresis threshold. Called with the
// barrier mutex held, after all arrivals merged into merged and before
// any grant is sent (and before the placement rehomer runs).
func (a *adaptivePolicy) atBarrier(merged vc.Time, delta []*lrc.Interval) {
	s := a.sys
	a.phase++
	for u := range a.justSwitched {
		a.justSwitched[u] = false
	}
	if len(delta) == 0 {
		return
	}
	// The network-aware evidence (§8): homeless→home migration saves
	// messages at a byte premium, which only pays while the
	// interconnect is measurably contended. On a quiet network the gate
	// holds every unit homeless — and sends home-owned units back.
	contended := a.contended()

	// The phase's intervals per unit, and the causally latest writer
	// (delta is causally sorted, so the last occurrence wins) — the
	// processor a new home pulls the image from.
	byUnit := make(map[int][]*lrc.Interval)
	lastWriter := make(map[int]int)
	for _, iv := range delta {
		for _, u := range iv.Units {
			byUnit[u] = append(byUnit[u], iv)
			lastWriter[u] = iv.ID.Proc
		}
	}

	var sum int64
	for _, v := range merged {
		sum += int64(v)
	}
	// Every interval covered by the merged time, fetched lazily on the
	// first homeless→home switch of this barrier: reconstructing a
	// switching unit's image needs the unit's full diff history, which
	// adaptive-mode releases always leave in the store.
	var history []*lrc.Interval

	// Ascending unit order keeps the handoff schedule — and with it the
	// message log — deterministic.
	for u := 0; u < s.numUnits; u++ {
		ivs := byUnit[u]
		if len(ivs) == 0 {
			continue // no writes, no evidence
		}
		// Home-based ownership pays off for steady barrier-phase false
		// sharing: many concurrent writers, each closing about one
		// interval per phase (≤ one per processor). Two filters keep
		// the evidence honest. Units churned by fine-grain lock
		// synchronization close many more intervals per phase, and
		// under home every closed interval is a flush to the home —
		// traffic homeless never pays — so one churn phase pins the
		// unit homeless for good, even when its writers overlap. And
		// the concurrent-writer count (the unit's §3 signature bar)
		// must reach half the processors: a home miss replaces k diff
		// exchanges with one whole-image exchange, saving k-1 message
		// overheads against a roughly fixed byte penalty, so small k
		// loses even on contended interconnects.
		if len(ivs) > s.cfg.Procs {
			a.churned[u] = true
		}
		favorsHome := contended && !a.churned[u] && 2*concurrentWriters(ivs) >= s.cfg.Procs
		curHome := s.unitProto[u] == homeIdx
		if favorsHome == curHome {
			a.streak[u] = 0
			continue
		}
		a.streak[u]++
		if a.streak[u] < a.hysteresis {
			continue
		}
		a.streak[u] = 0
		a.switches[u]++
		a.total++
		a.justSwitched[u] = true
		if curHome {
			// home → homeless: writers retained their diffs in the
			// interval store (homeProtocol.retain), so future homeless
			// fetches are already served; relinquishing is free.
			s.unitProto[u] = homelessIdx
			if s.trc != nil {
				s.trc.ProtocolSwitch(u, "home", "homeless", a.phase)
			}
			continue
		}
		if s.trc != nil {
			s.trc.ProtocolSwitch(u, "homeless", "home", a.phase)
		}
		// homeless → home: seed the home's versioned log with the
		// unit's image at the barrier's merged time (visible to every
		// post-barrier fetcher). Under a mobile placement the home
		// itself migrates to the unit's last writer — the image already
		// lives there, so nothing travels; under a static placement the
		// fixed home must pull the image from the last writer, priced
		// after the release (settle).
		if history == nil {
			history = s.store.Delta(vc.New(len(merged)), merged)
		}
		var unitHist []*lrc.Interval
		for _, iv := range history {
			for _, uu := range iv.Units {
				if uu == u {
					unitHist = append(unitHist, iv)
					break
				}
			}
		}
		bytes := 0
		for pg := u * s.cfg.UnitPages; pg < (u+1)*s.cfg.UnitPages; pg++ {
			buf := make([]byte, mem.PageSize)
			for _, iv := range unitHist {
				if d, ok := iv.Diff(pg); ok {
					d.Apply(buf)
				}
			}
			img := mem.FullPageDiff(buf)
			a.home.seed(pg, sum, img)
			bytes += img.WireBytes()
		}
		if s.placement.Mobile() {
			if s.homeOf(u) != lastWriter[u] {
				if s.trc != nil {
					s.trc.Rehome(u, s.homeOf(u), lastWriter[u], 0, false)
				}
				s.homeTable[u] = int32(lastWriter[u])
				s.nRehomes++
			}
		} else {
			h := s.homeOf(u)
			a.pending[h] = append(a.pending[h], rehomeMove{unit: u, from: lastWriter[u], bytes: bytes})
		}
		s.unitProto[u] = homeIdx
	}
}

// concurrentWriters returns the number of distinct processors whose
// intervals among ivs are causally concurrent with another processor's
// interval — the unit's bar in the paper's §3 false-sharing signature
// for the phase. Zero or one means the unit was not falsely shared:
// distinct writers whose intervals are totally ordered (migratory data
// handed around under a lock) do not count, because for those homeless
// diffs stay cheaper than whole-unit home images.
func concurrentWriters(ivs []*lrc.Interval) int {
	procs := make(map[int]bool)
	for i, a := range ivs {
		for _, b := range ivs[i+1:] {
			if a.ID.Proc != b.ID.Proc && a.TS.Concurrent(b.TS) {
				procs[a.ID.Proc] = true
				procs[b.ID.Proc] = true
			}
		}
	}
	return len(procs)
}

// settle pays for the ownership handoffs assigned to p at the barrier
// that just released: one HomeHandoff exchange per switched unit, from
// the new home to the unit's last writer (settleMoves). The image
// itself was installed in the home log at the barrier.
func (a *adaptivePolicy) settle(p *Proc) {
	hs := a.pending[p.id]
	if len(hs) == 0 {
		return
	}
	a.pending[p.id] = nil
	settleMoves(p, simnet.HomeHandoff, hs)
}

// report fills a Result's adaptive accounting after the run.
func (a *adaptivePolicy) report(res *Result) {
	res.ProtocolSwitches = a.total
	if a.total > 0 {
		res.UnitSwitches = make(map[int]int)
		for u, n := range a.switches {
			if n > 0 {
				res.UnitSwitches[u] = n
				res.SwitchedUnits++
			}
		}
	}
	for _, ix := range a.sys.unitProto {
		if ix == homeIdx {
			res.HomeUnits++
		}
	}
}
