package tmk

import (
	"sync"

	"repro/internal/lrc"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vc"
)

// closeInterval ends the processor's current interval if it wrote
// anything: every twinned unit is diffed page-by-page against its twin
// (eager diffing — see DESIGN.md §3), the diffs are released through
// each written unit's owning protocol (homeless keeps them attached to
// the interval, home-based flushes them to the units' homes), the
// interval is published with one write notice per unit plus the kept
// diffs, twins are dropped, and the units revert to ReadOnly so the
// next write re-twins.
func (p *Proc) closeInterval() {
	if len(p.writeOrder) == 0 {
		return
	}
	cost := p.sys.cost
	up := p.sys.cfg.UnitPages
	seq := p.vt.Tick(p.id)

	units := p.unitsBuf[:0]
	diffs := p.diffsBuf[:0]
	for _, u := range p.writeOrder {
		tw := p.twins[u]
		for s := 0; s < up; s++ {
			page := u*up + s
			d := mem.EncodeDiffInto(&p.diffScr, tw[s], p.rep.Page(page))
			p.clock.Advance(cost.DiffPerPage)
			p.nDiffs++
			if !d.Empty() {
				diffs = append(diffs, lrc.PageDiff{Page: page, D: d})
			}
		}
		// Recycle the unit's twins: pages to the page free list, the
		// slice header to the list free list.
		p.twinFree = append(p.twinFree, tw...)
		p.twinLists = append(p.twinLists, tw[:0])
		delete(p.twins, u)
		p.pt.Set(u, mem.ReadOnly)
		p.clock.Advance(cost.ProtOp)
		units = append(units, u)
	}
	p.unitsBuf, p.diffsBuf = units, diffs
	id := vc.IntervalID{Proc: p.id, Seq: seq}
	ts := p.vt.Clone()
	keep := p.sys.releaseInterval(p, id, ts, units, diffs)
	p.sys.store.Publish(lrc.MakeInterval(id, ts, units, keep))
	p.nIntervals++
	p.writeOrder = p.writeOrder[:0]
}

// applyAcquire consumes the write notices between the processor's vector
// time and sourceVT: every noticed unit is routed to its owning
// protocol's notice policy (invalidated unless the notice is the
// processor's own, and recorded as missing). It returns the wire size
// of the consumed notices, which the caller charges as piggybacked
// consistency information on the grant/release message.
func (p *Proc) applyAcquire(sourceVT vc.Time) int {
	if sourceVT == nil {
		return 0
	}
	p.deltaBuf = p.sys.store.DeltaInto(p.vt, sourceVT, p.deltaBuf)
	delta := p.deltaBuf
	bytes := 0
	for _, iv := range delta {
		bytes += iv.NoticeBytes()
		if iv.ID.Proc == p.id {
			continue
		}
		for _, u := range iv.Units {
			p.sys.protoOf(u).AcquireUnit(p, iv, u)
		}
	}
	p.vt.Merge(sourceVT)
	return bytes
}

// rebuildGroups recomputes the processor's page groups from the faults
// of the interval that just ended (§4: "page groups are computed at each
// synchronization"). An interval with no faults carries no information
// about the access pattern, so the existing groups are kept; an interval
// whose faults touch a different page set replaces them (the paper's
// split/revert behaviour, with one interval of hysteresis).
func (p *Proc) rebuildGroups() {
	if p.groups != nil && p.tracker.Len() > 0 {
		p.groups.Rebuild(p.tracker.Take())
	}
}

// --- barrier --------------------------------------------------------------

type barrierGrant struct {
	vt      vc.Time
	release sim.Duration
	episode int
}

// barrier is the centralized TreadMarks barrier: arrivals carry each
// processor's new write notices to the manager (processor 0), which
// merges vector times and broadcasts the union at release.
type barrier struct {
	n       int
	manager int

	mu       sync.Mutex
	arrived  int
	episode  int // 1-based count of completed barrier episodes
	vt       vc.Time
	maxClock sim.Duration
	waiters  []chan barrierGrant
}

func newBarrier(n int) *barrier {
	return &barrier{n: n, vt: vc.New(n)}
}

// Barrier synchronizes all processors. On departure every processor has
// invalidated all units written before the barrier by any other
// processor.
func (p *Proc) Barrier() {
	p.closeInterval()
	b := p.sys.barrier
	cost := p.sys.cost
	if trc := p.sys.trc; trc != nil {
		trc.BarrierEnter(p.id, p.clock.Now())
	}

	// Arrival message to the manager with this processor's notices
	// (already published to the store; we charge their size).
	arriveBytes := 16
	_, t := p.sys.net.SendLeg(simnet.BarrierArrive, p.id, b.manager, arriveBytes, p.clock.Now())
	p.clock.Advance(t.Total)

	ch := p.barrierCh
	b.mu.Lock()
	b.vt.Merge(p.vt)
	if p.clock.Now() > b.maxClock {
		b.maxClock = p.clock.Now()
	}
	b.waiters = append(b.waiters, ch)
	b.arrived++
	if b.arrived == b.n {
		// Every processor is blocked in this barrier: the adaptive
		// policy (if any) may now re-point units between protocols,
		// and the placement rehomer (if a home-based engine is
		// installed) may move unit homes. Both consume the same
		// causally sorted phase delta; their evaluation is folded into
		// the manager cost below, and the ownership handoffs and
		// home-state transfers they schedule are priced per-processor
		// after the release (see adaptivePolicy.settle and
		// rehomer.settle).
		if sys := p.sys; sys.policy != nil || sys.rehomer != nil {
			delta := sys.store.Delta(sys.lastBarrierVT, b.vt)
			if sys.policy != nil {
				sys.policy.atBarrier(b.vt, delta)
			}
			if sys.rehomer != nil {
				sys.rehomer.atBarrier(b.vt, delta)
			}
			sys.lastBarrierVT = b.vt.Clone()
		}
		// Manager cost: per-arrival servicing plus the merge/broadcast.
		release := b.maxClock + cost.BarrierManager +
			sim.Duration(b.n)*cost.RequestService
		// The merged time is handed off to the grant (read-only from
		// here on); the next episode starts on a fresh vector.
		b.episode++
		g := barrierGrant{vt: b.vt, release: release, episode: b.episode}
		for _, w := range b.waiters {
			w <- g
		}
		// Reset for the next barrier episode.
		b.arrived = 0
		b.waiters = b.waiters[:0]
		b.vt = vc.New(b.n)
		b.maxClock = 0
	}
	b.mu.Unlock()

	g := <-ch
	p.clock.AdvanceTo(g.release)
	noticeBytes := p.applyAcquire(g.vt)
	_, rt := p.sys.net.SendLeg(simnet.BarrierRelease, b.manager, p.id, 8+noticeBytes, g.release)
	p.clock.Advance(rt.Total)
	if p.sys.policy != nil {
		p.sys.policy.settle(p)
	}
	if p.sys.rehomer != nil {
		p.sys.rehomer.settle(p)
	}
	p.rebuildGroups()
	if trc := p.sys.trc; trc != nil {
		trc.BarrierLeave(p.id, g.episode, p.clock.Now())
	}
}

// --- locks -----------------------------------------------------------------

type lockGrant struct {
	vt   vc.Time // releaser's vector time (nil on first acquisition)
	at   sim.Duration
	from int // processor the grant message travels from
}

type lockWaiter struct {
	ch         chan lockGrant
	proc       int
	reqArrival sim.Duration
}

// lock implements TreadMarks' distributed lock: requests go to a static
// manager, which forwards to the last holder; the grant carries the
// releaser's consistency information. Releases are lazy (no message).
type lock struct {
	id      int
	manager int

	mu           sync.Mutex
	held         bool
	holder       int
	lastVT       vc.Time
	releaseClock sim.Duration
	queue        []lockWaiter
}

func newLock(id, manager int) *lock {
	return &lock{id: id, manager: manager, holder: manager}
}

// Lock acquires global lock l, blocking until granted, and applies the
// releaser's write notices (lazy release consistency's acquire step).
func (p *Proc) Lock(l int) {
	p.closeInterval()
	lk := p.sys.locks[l]
	cost := p.sys.cost
	net := p.sys.net

	lk.mu.Lock()
	// Lock caching: if this processor was the last holder and nobody
	// took the lock since, TreadMarks grants locally — no messages, no
	// consistency information to apply.
	if !lk.held && lk.holder == p.id {
		lk.held = true
		lk.mu.Unlock()
		p.clock.Advance(cost.LockService / 4)
		if trc := p.sys.trc; trc != nil {
			trc.LockAcquire(p.id, lk.id, p.clock.Now())
		}
		return
	}
	// Request to the manager (+ forward to last holder if different).
	// Control legs are priced payload-free: the 16 header bytes fold
	// into the fixed leg cost (SendControl), as in the pre-netmodel
	// engine's arithmetic.
	_, t := net.SendControl(simnet.LockRequest, p.id, lk.manager, 16, p.clock.Now())
	reqArrival := p.clock.Now() + t.Total
	if lk.holder != lk.manager || lk.held {
		_, ft := net.SendControl(simnet.LockForward, lk.manager, lk.holder, 16, reqArrival)
		reqArrival += ft.Total
	}

	if !lk.held {
		lk.held = true
		prevHolder := lk.holder
		lk.holder = p.id
		vt := lk.lastVT
		grantAt := sim.Meet(reqArrival, lk.releaseClock) + cost.LockService
		lk.mu.Unlock()
		p.finishAcquire(lk, lockGrant{vt: vt, at: grantAt, from: prevHolder})
		return
	}
	ch := p.lockCh
	lk.queue = append(lk.queue, lockWaiter{ch: ch, proc: p.id, reqArrival: reqArrival})
	lk.mu.Unlock()
	g := <-ch
	p.finishAcquire(lk, g)
}

// finishAcquire consumes a lock grant: charges the grant message and its
// piggybacked notices, then invalidates.
func (p *Proc) finishAcquire(lk *lock, g lockGrant) {
	p.clock.AdvanceTo(g.at)
	noticeBytes := p.applyAcquire(g.vt)
	_, t := p.sys.net.SendLeg(simnet.LockGrant, g.from, p.id, 16+noticeBytes, g.at)
	p.clock.Advance(t.Total)
	if trc := p.sys.trc; trc != nil {
		trc.LockAcquire(p.id, lk.id, p.clock.Now())
	}
	p.rebuildGroups()
}

// Unlock releases global lock l. The release itself is lazy: consistency
// information moves only when the next acquirer's grant is produced.
func (p *Proc) Unlock(l int) {
	p.closeInterval()
	lk := p.sys.locks[l]
	cost := p.sys.cost

	lk.mu.Lock()
	if !lk.held || lk.holder != p.id {
		lk.mu.Unlock()
		panic("tmk: Unlock by non-holder")
	}
	// Reuse the release-time snapshot's storage: only the current grant
	// holder ever reads lastVT, and the next overwrite (by that holder's
	// own Unlock) happens after its acquire consumed the snapshot.
	if lk.lastVT == nil {
		lk.lastVT = p.vt.Clone()
	} else {
		lk.lastVT.CopyFrom(p.vt)
	}
	lk.releaseClock = p.clock.Now()
	if trc := p.sys.trc; trc != nil {
		trc.LockRelease(p.id, lk.id, p.clock.Now())
	}
	if len(lk.queue) > 0 {
		w := lk.queue[0]
		lk.queue = lk.queue[1:]
		lk.holder = w.proc
		grantAt := sim.Meet(lk.releaseClock, w.reqArrival) + cost.LockService
		vt := lk.lastVT
		lk.mu.Unlock()
		w.ch <- lockGrant{vt: vt, at: grantAt, from: p.id}
		return
	}
	lk.held = false
	lk.mu.Unlock()
}
