package tmk

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/lrc"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vc"
)

// closeInterval ends the processor's current interval if it wrote
// anything: every twinned unit is diffed page-by-page against its twin
// (eager diffing — see DESIGN.md §3), the diffs are released through
// each written unit's owning protocol (homeless keeps them attached to
// the interval, home-based flushes them to the units' homes), the
// interval is published with one write notice per unit plus the kept
// diffs, twins are dropped, and the units revert to ReadOnly so the
// next write re-twins.
func (p *Proc) closeInterval() {
	if len(p.writeOrder) == 0 {
		return
	}
	cost := p.sys.cost
	up := p.sys.cfg.UnitPages
	seq := p.tk.Tick(p.id)

	units := p.unitsBuf[:0]
	diffs := p.diffsBuf[:0]
	for _, u := range p.writeOrder {
		tw := p.twins[u]
		for s := 0; s < up; s++ {
			page := u*up + s
			d := mem.EncodeDiffInto(&p.diffScr, tw[s], p.rep.Page(page))
			p.clock.Advance(cost.DiffPerPage)
			p.nDiffs++
			if !d.Empty() {
				diffs = append(diffs, lrc.PageDiff{Page: page, D: d})
			}
		}
		// Recycle the unit's twins: pages to the page free list, the
		// slice header to the list free list.
		p.twinFree = append(p.twinFree, tw...)
		p.twinLists = append(p.twinLists, tw[:0])
		delete(p.twins, u)
		p.pt.Set(u, mem.ReadOnly)
		p.clock.Advance(cost.ProtOp)
		units = append(units, u)
	}
	p.unitsBuf, p.diffsBuf = units, diffs
	id := vc.IntervalID{Proc: p.id, Seq: seq}
	// The close-time stamp: sparse mode snapshots the epoch-relative
	// deviations (O(deviations) storage per interval); dense mode clones
	// the full vector — the reference cost.
	var ts vc.Stamp
	if p.sys.sparseMode() {
		ts = p.tk.Snapshot(&p.arena)
	} else {
		ts = vc.DenseStamp(p.vt.Clone())
	}
	keep := p.sys.releaseInterval(p, id, ts, units, diffs)
	p.sys.store.Publish(lrc.MakeInterval(id, ts, units, keep))
	p.nIntervals++
	p.writeOrder = p.writeOrder[:0]
}

// consumeDelta applies the write notices in p.deltaBuf: every noticed
// unit is routed to its owning protocol's notice policy (invalidated
// unless the notice is the processor's own, and recorded as missing).
// It returns the wire size of the consumed notices.
func (p *Proc) consumeDelta() int {
	bytes := 0
	s := p.sys
	// Static configurations install one engine owning every unit; hoist
	// the dispatch out of the per-notice loop (the engine's most
	// frequent call at large processor counts).
	if len(s.protos) == 1 {
		proto := s.protos[0]
		for _, iv := range p.deltaBuf {
			bytes += iv.NoticeBytes()
			if iv.ID.Proc == p.id {
				continue
			}
			for _, u := range iv.Units {
				proto.AcquireUnit(p, iv, u)
			}
		}
		return bytes
	}
	for _, iv := range p.deltaBuf {
		bytes += iv.NoticeBytes()
		if iv.ID.Proc == p.id {
			continue
		}
		for _, u := range iv.Units {
			s.protoOf(u).AcquireUnit(p, iv, u)
		}
	}
	return bytes
}

// applyAcquire consumes the write notices between the processor's vector
// time and sourceVT (a dense time — the reference-mode path and the
// sparse mode's fallback). It returns the wire size of the consumed
// notices, which the caller charges as piggybacked consistency
// information on the grant/release message.
func (p *Proc) applyAcquire(sourceVT vc.Time) int {
	if sourceVT == nil {
		return 0
	}
	p.deltaBuf = p.sys.store.DeltaInto(p.vt, sourceVT, p.deltaBuf)
	bytes := p.consumeDelta()
	p.tk.MergeTime(sourceVT)
	return bytes
}

// applyAcquireStamp is applyAcquire for a stamped release time (lock
// grants). When the stamp is sparse and its epoch base is not newer than
// the processor's — always, between barriers — only the stamp's
// deviations can exceed the processor's time, so the store delta and the
// merge are O(deviations + delta) instead of O(nprocs).
func (p *Proc) applyAcquireStamp(s vc.Stamp) int {
	if s.Len() == 0 {
		return 0 // zero stamp: first acquisition, nothing to learn
	}
	if b := s.Base(); b != nil && b.Seq <= p.tk.Base().Seq {
		procs, seqs := s.Deviations()
		p.deltaBuf = p.sys.store.DeltaDevsInto(p.vt, procs, seqs, p.deltaBuf)
		bytes := p.consumeDelta()
		p.tk.MergeStamp(s)
		return bytes
	}
	p.vtScratch = s.Dense(p.vtScratch)
	return p.applyAcquire(p.vtScratch)
}

// rebuildGroups recomputes the processor's page groups from the faults
// of the interval that just ended (§4: "page groups are computed at each
// synchronization"). An interval with no faults carries no information
// about the access pattern, so the existing groups are kept; an interval
// whose faults touch a different page set replaces them (the paper's
// split/revert behaviour, with one interval of hysteresis).
func (p *Proc) rebuildGroups() {
	if p.groups != nil && p.tracker.Len() > 0 {
		p.groups.Rebuild(p.tracker.Take())
	}
}

// --- barrier --------------------------------------------------------------

// barrierGrant is one processor's release from one barrier episode: the
// episode's epoch (the merged vector time, immutable and shared), the
// processors that published intervals during the episode (shared,
// read-only — the acquirer's invalidation scan visits only these), the
// release time, and the episode number.
type barrierGrant struct {
	epoch   *vc.Epoch
	touched []int32
	release sim.Duration
	episode int
}

// barrierSync is one barrier message fabric: it prices the arrival path
// on the arriving processor's clock, runs the episode duties (epoch
// minting, adaptive/rehoming policy) on the completing processor, and
// blocks until the episode's grant. The returned bool reports whether
// the fabric already priced p's release leg: the tree fabric prices
// per-hop release waves itself, while the centralized fabric leaves the
// per-departer manager→processor leg (whose payload depends on the
// departer's own notice delta) to the caller.
type barrierSync interface {
	sync(p *Proc) (barrierGrant, bool)
}

// DefaultBarrier is the paper's barrier: flat and centralized.
const DefaultBarrier = "central"

// DefaultBarrierRadix is the tree barrier's default fan-in.
const DefaultBarrierRadix = 4

// A barrier factory builds a fabric instance for one System build.
var barrierFactories = map[string]func(s *System) barrierSync{}

// RegisterBarrier adds a barrier fabric under a (case-insensitive)
// name. Called from init; a duplicate name is a programming error.
func RegisterBarrier(name string, factory func(s *System) barrierSync) {
	key := strings.ToLower(name)
	if key == "" || factory == nil {
		panic("tmk: incomplete barrier registration")
	}
	if _, dup := barrierFactories[key]; dup {
		panic(fmt.Sprintf("tmk: duplicate barrier registration %q", key))
	}
	barrierFactories[key] = factory
}

// BarrierNames returns the registered barrier fabric names, sorted.
func BarrierNames() []string {
	out := make([]string, 0, len(barrierFactories))
	for name := range barrierFactories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// KnownBarrier reports whether name (case-insensitive) is registered.
func KnownBarrier(name string) bool {
	_, ok := barrierFactories[strings.ToLower(name)]
	return ok
}

func init() {
	RegisterBarrier("central", func(s *System) barrierSync { return newBarrier(s) })
}

// finishEpisode runs the completing processor's episode duties, called
// with the fabric's mutex held after every arrival merged into tk: mint
// the episode's epoch from the merged time, evaluate the adaptive policy
// and the placement rehomer over the phase delta, record the episode log
// (under Collect), and rebase the fabric's register for the next
// episode. The returned touched list (the register's deviation set — the
// processors that published since the previous epoch) is shared
// read-only by every grant.
func (s *System) finishEpisode(tk *vc.Tracked, episode int) (*vc.Epoch, []int32) {
	merged := tk.T.Clone()
	epoch := vc.NewEpoch(episode, merged)
	touched := append([]int32(nil), tk.Devs()...)
	if s.policy != nil || s.rehomer != nil {
		var delta []*lrc.Interval
		if s.sparseMode() {
			s.seqScratch = s.seqScratch[:0]
			for _, q := range touched {
				s.seqScratch = append(s.seqScratch, merged[q])
			}
			s.epDelta = s.store.DeltaDevsInto(s.lastBarrierVT, touched, s.seqScratch, s.epDelta)
			delta = s.epDelta
		} else {
			delta = s.store.Delta(s.lastBarrierVT, merged)
		}
		if s.policy != nil {
			s.policy.atBarrier(merged, delta)
		}
		if s.rehomer != nil {
			s.rehomer.atBarrier(merged, delta)
		}
		s.lastBarrierVT = merged
	}
	if s.cfg.Collect {
		s.barrierLog = append(s.barrierLog, merged)
	}
	tk.Rebase(epoch)
	return epoch, touched
}

// barrier is the centralized TreadMarks barrier: arrivals carry each
// processor's new write notices to the manager (processor 0), which
// merges vector times and broadcasts the union at release. The 8-proc
// golden reference — its wire counts are pinned bit-for-bit.
type barrier struct {
	sys     *System
	n       int
	manager int

	mu       sync.Mutex
	arrived  int
	episode  int // 1-based count of completed barrier episodes
	tk       *vc.Tracked
	maxClock sim.Duration
	waiters  []chan barrierGrant
}

func newBarrier(s *System) *barrier {
	return &barrier{sys: s, n: s.cfg.Procs, tk: vc.NewTracked(s.cfg.Procs)}
}

func (b *barrier) sync(p *Proc) (barrierGrant, bool) {
	// Arrival message to the manager with this processor's notices
	// (already published to the store; we charge their size).
	arriveBytes := 16
	_, t := p.sys.net.SendLeg(simnet.BarrierArrive, p.id, b.manager, arriveBytes, p.clock.Now())
	p.clock.Advance(t.Total)

	ch := p.barrierCh
	b.mu.Lock()
	// Merge this processor's time into the episode register: O(own
	// deviations) in sparse mode, entrywise in dense mode.
	if p.sys.sparseMode() {
		b.tk.MergeStamp(p.tk.Snapshot(&p.arena))
	} else {
		b.tk.MergeTime(p.vt)
	}
	if p.clock.Now() > b.maxClock {
		b.maxClock = p.clock.Now()
	}
	b.waiters = append(b.waiters, ch)
	b.arrived++
	if b.arrived == b.n {
		// Every processor is blocked in this barrier: the adaptive
		// policy (if any) may now re-point units between protocols,
		// and the placement rehomer (if a home-based engine is
		// installed) may move unit homes — see finishEpisode. The
		// ownership handoffs and home-state transfers they schedule
		// are priced per-processor after the release (settle).
		b.episode++
		epoch, touched := p.sys.finishEpisode(b.tk, b.episode)
		// Manager cost: per-arrival servicing plus the merge/broadcast.
		release := b.maxClock + p.sys.cost.BarrierManager +
			sim.Duration(b.n)*p.sys.cost.RequestService
		g := barrierGrant{epoch: epoch, touched: touched, release: release, episode: b.episode}
		for _, w := range b.waiters {
			w <- g
		}
		// Reset for the next barrier episode (finishEpisode rebased tk).
		b.arrived = 0
		b.waiters = b.waiters[:0]
		b.maxClock = 0
	}
	b.mu.Unlock()
	return <-ch, false
}

// applyBarrierGrant consumes a barrier grant: the episode's write
// notices are applied (visiting only the touched processors' interval
// runs in sparse mode) and the processor's register rebases onto the
// new epoch. Returns the consumed notices' wire size.
func (p *Proc) applyBarrierGrant(g barrierGrant) int {
	var bytes int
	if p.sys.sparseMode() {
		p.seqScratch = p.seqScratch[:0]
		for _, q := range g.touched {
			p.seqScratch = append(p.seqScratch, g.epoch.VT[q])
		}
		p.deltaBuf = p.sys.store.DeltaDevsInto(p.vt, g.touched, p.seqScratch, p.deltaBuf)
		bytes = p.consumeDelta()
	} else {
		p.deltaBuf = p.sys.store.DeltaInto(p.vt, g.epoch.VT, p.deltaBuf)
		bytes = p.consumeDelta()
	}
	p.tk.Rebase(g.epoch)
	return bytes
}

// Barrier synchronizes all processors. On departure every processor has
// invalidated all units written before the barrier by any other
// processor.
func (p *Proc) Barrier() {
	p.closeInterval()
	if trc := p.sys.trc; trc != nil {
		trc.BarrierEnter(p.id, p.clock.Now())
	}

	g, legPriced := p.sys.barrier.sync(p)
	p.clock.AdvanceTo(g.release)
	noticeBytes := p.applyBarrierGrant(g)
	if !legPriced {
		_, rt := p.sys.net.SendLeg(simnet.BarrierRelease, barrierManager, p.id, 8+noticeBytes, g.release)
		p.clock.Advance(rt.Total)
	}
	if p.sys.policy != nil {
		p.sys.policy.settle(p)
	}
	if p.sys.rehomer != nil {
		p.sys.rehomer.settle(p)
	}
	p.rebuildGroups()
	if trc := p.sys.trc; trc != nil {
		trc.BarrierLeave(p.id, g.episode, p.clock.Now())
	}
}

// barrierManager is the barrier manager processor (the root of every
// fabric's topology).
const barrierManager = 0

// --- locks -----------------------------------------------------------------

type lockGrant struct {
	ts   vc.Stamp // releaser's stamped vector time (zero on first acquisition)
	at   sim.Duration
	from int // processor the grant message travels from
}

type lockWaiter struct {
	ch         chan lockGrant
	proc       int
	reqArrival sim.Duration
}

// lock implements TreadMarks' distributed lock: requests go to a static
// manager, which forwards to the last holder; the grant carries the
// releaser's consistency information. Releases are lazy (no message).
type lock struct {
	id      int
	manager int

	mu     sync.Mutex
	held   bool
	holder int
	// lastTS is the release-time stamp the next grant carries: a sparse
	// snapshot in sparse mode, a dense clone (into the reused lastVT
	// buffer) in dense mode. Only the current grant holder ever reads
	// it, and the next overwrite (by that holder's own Unlock) happens
	// after its acquire consumed the snapshot.
	lastTS       vc.Stamp
	lastVT       vc.Time
	releaseClock sim.Duration
	queue        []lockWaiter
}

func newLock(id, manager int) *lock {
	return &lock{id: id, manager: manager, holder: manager}
}

// Lock acquires global lock l, blocking until granted, and applies the
// releaser's write notices (lazy release consistency's acquire step).
func (p *Proc) Lock(l int) {
	p.closeInterval()
	lk := p.sys.locks[l]
	cost := p.sys.cost
	net := p.sys.net

	lk.mu.Lock()
	// Lock caching: if this processor was the last holder and nobody
	// took the lock since, TreadMarks grants locally — no messages, no
	// consistency information to apply.
	if !lk.held && lk.holder == p.id {
		lk.held = true
		lk.mu.Unlock()
		p.clock.Advance(cost.LockService / 4)
		if trc := p.sys.trc; trc != nil {
			trc.LockAcquire(p.id, lk.id, p.clock.Now())
		}
		return
	}
	// Request to the manager (+ forward to last holder if different).
	// Control legs are priced payload-free: the 16 header bytes fold
	// into the fixed leg cost (SendControl), as in the pre-netmodel
	// engine's arithmetic.
	if trc := p.sys.trc; trc != nil {
		trc.LockRequest(p.id, lk.id, p.clock.Now())
	}
	_, t := net.SendControl(simnet.LockRequest, p.id, lk.manager, 16, p.clock.Now())
	reqArrival := p.clock.Now() + t.Total
	if lk.holder != lk.manager || lk.held {
		_, ft := net.SendControl(simnet.LockForward, lk.manager, lk.holder, 16, reqArrival)
		reqArrival += ft.Total
	}

	if !lk.held {
		lk.held = true
		prevHolder := lk.holder
		lk.holder = p.id
		ts := lk.lastTS
		grantAt := sim.Meet(reqArrival, lk.releaseClock) + cost.LockService
		lk.mu.Unlock()
		p.finishAcquire(lk, lockGrant{ts: ts, at: grantAt, from: prevHolder})
		return
	}
	ch := p.lockCh
	lk.queue = append(lk.queue, lockWaiter{ch: ch, proc: p.id, reqArrival: reqArrival})
	lk.mu.Unlock()
	g := <-ch
	p.finishAcquire(lk, g)
}

// finishAcquire consumes a lock grant: charges the grant message and its
// piggybacked notices, then invalidates.
func (p *Proc) finishAcquire(lk *lock, g lockGrant) {
	p.clock.AdvanceTo(g.at)
	noticeBytes := p.applyAcquireStamp(g.ts)
	_, t := p.sys.net.SendLeg(simnet.LockGrant, g.from, p.id, 16+noticeBytes, g.at)
	p.clock.Advance(t.Total)
	if trc := p.sys.trc; trc != nil {
		trc.LockAcquire(p.id, lk.id, p.clock.Now())
	}
	p.rebuildGroups()
}

// Unlock releases global lock l. The release itself is lazy: consistency
// information moves only when the next acquirer's grant is produced.
func (p *Proc) Unlock(l int) {
	p.closeInterval()
	lk := p.sys.locks[l]
	cost := p.sys.cost

	lk.mu.Lock()
	if !lk.held || lk.holder != p.id {
		lk.mu.Unlock()
		panic("tmk: Unlock by non-holder")
	}
	if p.sys.sparseMode() {
		// O(deviations) snapshot from the holder's arena: only the next
		// grant holder reads it, before the holder's next Unlock.
		lk.lastTS = p.tk.Snapshot(&p.arena)
	} else {
		// Reuse the release-time snapshot's storage (the dense
		// reference cost: one full-vector copy per release).
		if lk.lastVT == nil {
			lk.lastVT = p.vt.Clone()
		} else {
			lk.lastVT.CopyFrom(p.vt)
		}
		lk.lastTS = vc.DenseStamp(lk.lastVT)
	}
	lk.releaseClock = p.clock.Now()
	if trc := p.sys.trc; trc != nil {
		trc.LockRelease(p.id, lk.id, p.clock.Now())
	}
	if len(lk.queue) > 0 {
		w := lk.queue[0]
		lk.queue = lk.queue[1:]
		lk.holder = w.proc
		grantAt := sim.Meet(lk.releaseClock, w.reqArrival) + cost.LockService
		ts := lk.lastTS
		lk.mu.Unlock()
		w.ch <- lockGrant{ts: ts, at: grantAt, from: p.id}
		return
	}
	lk.held = false
	lk.mu.Unlock()
}
