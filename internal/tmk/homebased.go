package tmk

import (
	"sync"

	"repro/internal/instrument"
	"repro/internal/lrc"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vc"
)

func init() {
	RegisterProtocol("home", func(s *System) { s.install(newHomeProtocol(s)) })
}

// homeProtocol is home-based lazy release consistency (HLRC, in the
// style of Princeton's home-based protocols and JIAJIA): every
// consistency unit has a statically assigned home processor that keeps
// the authoritative copy. At release, a writer flushes its diffs to
// each written unit's home (one one-way message per remote home) and
// discards them; write notices still travel lazily with synchronization.
// An access miss is served by the home alone — one exchange returning
// the unit's entire contents — instead of one diff exchange per
// concurrent writer. The trade the paper's framework exposes: fewer
// messages under write-write false sharing, more bytes per fetch.
//
// The home copies are versioned, as in real HLRC: the home keeps each
// page's flushed diffs stamped with their interval's vector time, and a
// fetch returns the page reconstructed at the *fetcher's* vector time —
// exactly the writes the fetcher is entitled to see under LRC, no more.
// Without this, a processor still traversing pre-step data could
// observe post-step writes that a faster processor already flushed at
// the next barrier (TreadMarks programs rely on concurrent writes
// staying invisible until the reader's next acquire). Flushes reach the
// home before the release's synchronization hands off (they run inside
// the closing interval), so every interval covered by an acquirer's
// vector time is in the log by the time the acquirer can fault on it.
//
// Home application cost is charged to the writer's flush (the one-way
// send); the home's handler time is folded into the fetch exchange's
// service cost, as for homeless diff requests (DESIGN.md §5).
type homeProtocol struct {
	invalidator
	sys *System
	up  int // unit size in pages
	// retain keeps released diffs attached to the published interval in
	// addition to flushing them home. Off for the static configuration
	// (the writer discards after flushing, as in real HLRC); on under
	// adaptive, where writers retain their diffs so a later
	// home→homeless switch finds them in the interval store (this
	// engine omits interval GC anyway — see lrc.Store) at zero wire
	// cost.
	retain bool

	mu  sync.Mutex
	log map[int][]flushEntry // page -> flushed diffs, in arrival order
}

// flushEntry is one flushed page diff with its interval's causal key
// (sum, proc, seq) — see lrc.Interval.CausalKey. A seed entry is the
// unit image installed at an adaptive homeless→home handoff: it is
// visible to every fetcher (only post-switch fetchers can reach the
// home, and all of them cover the switch barrier's vector time) and
// carries proc -1 so it sorts before the same-sum entries its image
// already contains.
type flushEntry struct {
	proc int
	seq  int32
	sum  int64
	seed bool
	d    mem.Diff
}

func newHomeProtocol(s *System) *homeProtocol {
	return &homeProtocol{
		sys: s,
		up:  s.cfg.UnitPages,
		log: make(map[int][]flushEntry),
	}
}

func (*homeProtocol) Name() string { return "home" }

// homeOf returns unit u's current home processor from the System-owned
// home table — the placement policy's assignment ("rr" reproduces the
// paper-era u % nprocs exactly), possibly moved at barriers by the
// rehoming layer (see placement.go).
func (h *homeProtocol) homeOf(u int) int { return h.sys.homeOf(u) }

// Release flushes the diffs to each written unit's home — one one-way
// HomeFlush message per remote home, appended to the home's versioned
// log — and surrenders them (the home now owns the data, so the
// published interval carries the write notices diff-free), unless
// retain is set. Flushing to the processor's own home units is local
// and free of messages.
func (h *homeProtocol) Release(p *Proc, id vc.IntervalID, ts vc.Stamp, units []int, diffs []lrc.PageDiff) []lrc.PageDiff {
	var keep []lrc.PageDiff
	if h.retain {
		keep = diffs
	}
	if len(diffs) == 0 {
		return keep
	}
	sum := ts.Sum()

	// Tally this interval's flush payload by the home of each diff's
	// unit — a per-processor scratch array plus a touched-home list, not
	// a map: releases close every writing interval and must not allocate,
	// and neither the reset nor the flush loop may scan all nprocs
	// entries (an interval touches a handful of homes).
	nprocs := p.sys.cfg.Procs
	fs := &p.fs
	if len(fs.homeBytes) < nprocs {
		fs.homeBytes = make([]int, nprocs)
	}
	hb := fs.homeBytes[:nprocs]
	for _, hm := range fs.relHomes {
		hb[hm] = 0
	}
	fs.relHomes = fs.relHomes[:0]
	for _, pd := range diffs {
		home := h.homeOf(pd.Page / h.up)
		// Non-empty diffs have positive wire size, so zero means
		// first touch this release.
		if hb[home] == 0 {
			fs.relHomes = append(fs.relHomes, int32(home))
		}
		hb[home] += pd.D.WireBytes()
	}

	h.mu.Lock()
	for _, pd := range diffs {
		h.log[pd.Page] = append(h.log[pd.Page], flushEntry{
			proc: id.Proc, seq: id.Seq, sum: sum, d: pd.D,
		})
	}
	h.mu.Unlock()

	// One flush message per remote home, in ascending home order for a
	// deterministic message log; the writer's own home units are local.
	sortTouched(fs.relHomes)
	for _, hm := range fs.relHomes {
		home := int(hm)
		if home == p.id {
			continue
		}
		bytes := 8 + hb[home] // flush header: interval id
		_, t := p.sys.net.SendLeg(simnet.HomeFlush, p.id, home, bytes, p.clock.Now())
		p.clock.Advance(t.Total)
	}
	return keep
}

// seed installs a full-page image into the home's versioned log at an
// adaptive homeless→home handoff. sum must be the vector-entry sum of
// the switch barrier's merged time: every pre-switch interval the image
// contains has a smaller-or-equal sum (ties are idempotent re-applies),
// and every post-switch flush a strictly larger one, so causal sorting
// places the seed correctly. Called while every processor is blocked in
// the switch barrier.
func (h *homeProtocol) seed(page int, sum int64, img mem.Diff) {
	h.mu.Lock()
	h.log[page] = append(h.log[page], flushEntry{proc: -1, sum: sum, seed: true, d: img})
	h.mu.Unlock()
}

// sortFlushEntries stably orders covered log entries by their causal
// key (sum, proc, seq) via binary-insertion sort — no closure, no
// allocation, near-linear on the arrival-ordered runs a home log holds.
func sortFlushEntries(es []flushEntry) {
	less := func(a, b *flushEntry) bool {
		if a.sum != b.sum {
			return a.sum < b.sum
		}
		if a.proc != b.proc {
			return a.proc < b.proc
		}
		return a.seq < b.seq
	}
	for i := 1; i < len(es); i++ {
		e := es[i]
		if !less(&e, &es[i-1]) {
			continue
		}
		lo, hi := 0, i
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if less(&e, &es[mid]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		copy(es[lo+1:i+1], es[lo:i])
		es[lo] = e
	}
}

// pageImage reconstructs the page's contents at vector time vt: the
// flushed diffs of intervals covered by vt, applied in causal order
// over the zeroed initial page. Used by the occasional barrier-time
// paths (rehoming cost pricing); the fetch path calls pageImageInto
// with per-processor scratch instead.
func (h *homeProtocol) pageImage(page int, vt vc.Time) mem.Diff {
	var fs fetchScratch
	return h.pageImageInto(&fs, page, vt)
}

// pageImageInto is pageImage using fs for every intermediate: the
// covered-entry list, the reconstruction buffer, and — when the image
// arenas have room (Fetch pre-sizes them) — the returned diff's word
// and run storage. Only the log snapshot runs under h.mu; the sort and
// the diff applications do not. The log is append-only for the length
// of a run (like lrc.Store, garbage collection is omitted: runs are
// short and home GC is orthogonal to the study), so a hot page's
// reconstruction cost grows with its flush history.
func (h *homeProtocol) pageImageInto(fs *fetchScratch, page int, vt vc.Time) mem.Diff {
	h.mu.Lock()
	entries := h.log[page]
	h.mu.Unlock()
	fs.covered = fs.covered[:0]
	for _, e := range entries {
		if e.seed || vt.KnowsInterval(e.proc, e.seq) {
			fs.covered = append(fs.covered, e)
		}
	}
	sortFlushEntries(fs.covered)
	if len(fs.imgBuf) < mem.PageSize {
		fs.imgBuf = make([]byte, mem.PageSize)
	}
	buf := fs.imgBuf[:mem.PageSize]
	clear(buf)
	for _, e := range fs.covered {
		e.d.Apply(buf)
	}
	var words []uint64
	if n := len(fs.imgWords); cap(fs.imgWords)-n >= mem.WordsPerPage {
		fs.imgWords = fs.imgWords[:n+mem.WordsPerPage]
		words = fs.imgWords[n : n+mem.WordsPerPage : n+mem.WordsPerPage]
	} else {
		words = make([]uint64, mem.WordsPerPage)
	}
	var runs []mem.Run
	if fs.nImgRuns < len(fs.imgRuns) {
		runs = fs.imgRuns[fs.nImgRuns : fs.nImgRuns : fs.nImgRuns+1]
		fs.nImgRuns++
	}
	return mem.FullPageDiffInto(words, runs, buf)
}

// Fetch implements the home-based miss policy: each stale unit is
// refreshed from its home in one exchange carrying the unit's whole
// contents at the fetcher's vector time — one request/reply per
// distinct home, issued in parallel. Units homed at the faulting
// processor are copied locally, without messages.
func (h *homeProtocol) Fetch(p *Proc, units []int) []*instrument.DataMsg {
	cost := p.sys.cost
	fs := &p.fs
	fs.init(p.sys)

	fetch := fs.fetchUnits[:0]
	sparse := p.sys.sparseMode()
	for _, u := range units {
		stale := false
		if sparse {
			// The home serves the unit's whole contents at p's vector
			// time, so only the staleness bit matters here; the
			// reconstruction (see notices.go) also consumes the
			// entries, like the dense path's post-fetch clear.
			fs.missScratch = p.missingInto(u, fs.missScratch)
			stale = len(fs.missScratch) > 0
		} else {
			stale = len(p.missing[u]) > 0
		}
		if stale {
			fetch = append(fetch, u)
		}
	}
	fs.fetchUnits = fetch
	if len(fetch) == 0 {
		return nil
	}

	for _, hm := range fs.homes {
		fs.homeUnits[hm] = fs.homeUnits[hm][:0]
	}
	fs.homes = fs.homes[:0]
	for _, u := range fetch {
		home := h.homeOf(u)
		if len(fs.homeUnits[home]) == 0 {
			fs.homes = append(fs.homes, int32(home))
		}
		fs.homeUnits[home] = append(fs.homeUnits[home], u)
	}

	// Reconstruct the fetched units' pages at p's vector time — the
	// reply payloads. Per-page reconstruction needs no cross-page
	// atomicity: every interval covered by p's vector time was flushed
	// before the synchronization that extended the vector time handed
	// off, so it is already in the log, and concurrent flushes are
	// never covered. The images' word and run storage is carved from
	// arenas sized for the whole fetch up front, so no reallocation
	// invalidates an earlier image.
	needPages := len(fetch) * h.up
	if cap(fs.imgWords) < needPages*mem.WordsPerPage {
		fs.imgWords = make([]uint64, 0, needPages*mem.WordsPerPage)
	}
	fs.imgWords = fs.imgWords[:0]
	if len(fs.imgRuns) < needPages {
		fs.imgRuns = make([]mem.Run, needPages)
	}
	fs.nImgRuns = 0
	fs.gen++
	fs.snapDiffs = fs.snapDiffs[:0]
	for _, u := range fetch {
		for s := 0; s < h.up; s++ {
			page := u*h.up + s
			fs.pageMark[page] = fs.gen
			fs.pageSlot[page] = int32(len(fs.snapDiffs))
			fs.snapDiffs = append(fs.snapDiffs, h.pageImageInto(fs, page, p.vt))
		}
	}

	// One exchange per distinct home, in ascending home order for a
	// deterministic message log; units homed locally are a free copy.
	sortTouched(fs.homes)
	fs.items = fs.items[:0]
	var msgs []*instrument.DataMsg
	var maxCost sim.Duration
	for _, hm := range fs.homes {
		home := int(hm)
		us := fs.homeUnits[home]
		if home == p.id {
			// Local home: the processor is reading its own
			// authoritative storage — a copy, no messages.
			for _, u := range us {
				for s := 0; s < h.up; s++ {
					page := u*h.up + s
					fs.items = append(fs.items, fetchItem{
						page: page, d: fs.snapDiffs[fs.pageSlot[page]]})
				}
			}
			continue
		}
		reqBytes := 16 + 8*len(us)
		replyBytes := 0
		hStart := len(fs.items)
		for _, u := range us {
			for s := 0; s < h.up; s++ {
				page := u*h.up + s
				d := fs.snapDiffs[fs.pageSlot[page]]
				replyBytes += d.WireBytes()
				fs.items = append(fs.items, fetchItem{page: page, d: d})
			}
		}
		reqID, repID, xt := p.sys.net.SendExchange(
			simnet.DiffRequest, simnet.DiffReply, p.id, home, reqBytes, replyBytes, p.clock.Now())
		if p.sys.col != nil {
			dm := p.sys.col.NewDataMsg(reqID, repID, home, p.id)
			msgs = append(msgs, dm)
			for i := hStart; i < len(fs.items); i++ {
				fs.items[i].msg = dm
			}
		}
		if c := xt.Total(); c > maxCost {
			maxCost = c
		}
	}
	p.clock.Advance(maxCost)

	// Apply the page images. Each page arrives whole from one
	// reconstruction, so page order suffices for determinism.
	for _, it := range fs.items {
		it.d.Apply(p.rep.Page(it.page))
		p.clock.Advance(sim.Duration(it.d.WordCount()) * cost.ApplyPerWord)
		if p.sys.col != nil && it.msg != nil {
			p.sys.col.TagDiff(p.id, it.page, it.d, it.msg)
		}
	}

	if !sparse {
		for _, u := range fetch {
			// Keep the map entry (and its slice capacity) for the next
			// acquire's notices; only the consumed contents are dropped.
			p.missing[u] = p.missing[u][:0]
		}
	}
	return msgs
}
