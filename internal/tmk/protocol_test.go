package tmk

import (
	"strings"
	"testing"
)

// All built-in protocols are registered and listed sorted.
func TestProtocolRegistry(t *testing.T) {
	names := ProtocolNames()
	want := []string{"adaptive", "home", "homeless"}
	if len(names) != len(want) {
		t.Fatalf("ProtocolNames() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("ProtocolNames() = %v, want %v", names, want)
		}
	}
	for _, n := range []string{"home", "HOME", "Homeless"} {
		if !KnownProtocol(n) {
			t.Errorf("KnownProtocol(%q) = false", n)
		}
	}
	if KnownProtocol("bogus") {
		t.Error("KnownProtocol(bogus) = true")
	}
}

// An unknown protocol is an error from NewSystem, never a panic, and
// the error names the registered protocols.
func TestUnknownProtocolError(t *testing.T) {
	_, err := NewSystem(Config{Protocol: "bogus"})
	if err == nil {
		t.Fatal("NewSystem accepted unknown protocol")
	}
	if !strings.Contains(err.Error(), "bogus") || !strings.Contains(err.Error(), "homeless") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// The default and case-insensitive selection resolve correctly, and
// Reset keeps the selected protocol.
func TestProtocolSelection(t *testing.T) {
	def, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if def.Protocol() != DefaultProtocol {
		t.Fatalf("default protocol = %q, want %q", def.Protocol(), DefaultProtocol)
	}
	h, err := NewSystem(Config{Protocol: "Home"})
	if err != nil {
		t.Fatal(err)
	}
	if h.Protocol() != "home" {
		t.Fatalf("protocol = %q, want home", h.Protocol())
	}
	h.Reset()
	if h.Protocol() != "home" {
		t.Fatalf("protocol after Reset = %q, want home", h.Protocol())
	}
	if got := (Config{}).ProtocolName(); got != DefaultProtocol {
		t.Fatalf("ProtocolName() = %q, want %q", got, DefaultProtocol)
	}
}

// A minimal producer/consumer program must observe identical values
// under every protocol, and the home protocol must move fewer or equal
// data exchanges than concurrent writers would cost under homeless.
func TestProtocolsObserveSameValues(t *testing.T) {
	for _, protocol := range ProtocolNames() {
		protocol := protocol
		t.Run(protocol, func(t *testing.T) {
			sys, err := NewSystem(Config{
				Procs:        4,
				SegmentBytes: 4 * 4096,
				Protocol:     protocol,
			})
			if err != nil {
				t.Fatal(err)
			}
			base := sys.Alloc(4 * 512 * 8)
			var got [4]int64
			sys.Run(func(p *Proc) {
				// Each processor writes one word of every page
				// (write-write false sharing), then all read back.
				for pg := 0; pg < 4; pg++ {
					p.WriteI64(base+pg*4096+p.ID()*8, int64(100*pg+p.ID()))
				}
				p.Barrier()
				var sum int64
				for pg := 0; pg < 4; pg++ {
					for w := 0; w < 4; w++ {
						sum += p.ReadI64(base + pg*4096 + w*8)
					}
				}
				got[p.ID()] = sum
			})
			const want = 4*(0+100+200+300) + 4*(0+1+2+3)
			for id, s := range got {
				if s != want {
					t.Errorf("proc %d read sum %d, want %d", id, s, want)
				}
			}
		})
	}
}
