package tmk

import (
	"sync"

	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vc"
)

func init() {
	RegisterBarrier("tree", func(s *System) barrierSync { return newTreeBarrier(s) })
}

// treeBarrier is a combining-tree barrier: the processors form an
// implicit radix-r tree (parent(i) = (i-1)/r, rooted at processor 0 —
// the barrier manager), arrivals combine upward one priced message per
// tree edge, and releases fan downward the same way. Against the
// centralized fabric's n simultaneous manager arrivals this trades
// per-episode messages 2n → 2(n-1) and, far more importantly on the
// contended network models, turns the manager's n-message pile-up into
// log_r(n)-depth waves of at most r messages per receiver.
//
// The consistency contents are identical to the centralized barrier —
// same merged epoch, same write-notice delta — but the release payload
// differs by construction: the centralized manager sends each departer
// exactly the notices that departer is missing, while a tree release
// wave carries the episode's full notice union down every edge (an
// interior node cannot know its subtree's individual gaps). Timing and
// byte totals therefore differ from "central" by design; the
// post-barrier state (vector times, invalidation sets) does not, which
// is what the equivalence tests pin.
type treeBarrier struct {
	sys   *System
	n     int
	radix int

	mu      sync.Mutex
	episode int
	tk      *vc.Tracked
	prevVT  vc.Time // previous epoch's merged time (episode payload lower bound)

	pending []int32        // outstanding arrivals at node i: self + children
	nkids   []int32        // child count of node i
	cmpl    []sim.Duration // latest arrival seen by node i's subtree
	grantAt []sim.Duration // release-wave delivery time per node
	waiters []chan barrierGrant
}

func newTreeBarrier(s *System) *treeBarrier {
	n := s.cfg.Procs
	r := s.cfg.BarrierRadix
	if r < 2 {
		r = DefaultBarrierRadix
	}
	tb := &treeBarrier{
		sys:     s,
		n:       n,
		radix:   r,
		tk:      vc.NewTracked(n),
		prevVT:  vc.New(n),
		pending: make([]int32, n),
		nkids:   make([]int32, n),
		cmpl:    make([]sim.Duration, n),
		grantAt: make([]sim.Duration, n),
		waiters: make([]chan barrierGrant, n),
	}
	for i := 0; i < n; i++ {
		lo := r*i + 1
		hi := lo + r
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		tb.nkids[i] = int32(hi - lo)
		tb.pending[i] = 1 + tb.nkids[i]
	}
	return tb
}

func (tb *treeBarrier) sync(p *Proc) (barrierGrant, bool) {
	ch := p.barrierCh
	tb.mu.Lock()
	tb.waiters[p.id] = ch
	if p.sys.sparseMode() {
		tb.tk.MergeStamp(p.tk.Snapshot(&p.arena))
	} else {
		tb.tk.MergeTime(p.vt)
	}
	// Walk the combining path: this processor's arrival is a local event
	// at its own node; each node whose subtree just completed forwards
	// one combined arrival message to its parent, priced on the wire and
	// carried by this goroutine (the last arriver does the forwarding,
	// as in software combining trees).
	node := p.id
	at := p.clock.Now()
	for {
		if at > tb.cmpl[node] {
			tb.cmpl[node] = at
		}
		tb.pending[node]--
		if tb.pending[node] > 0 {
			break
		}
		// Node's subtree is complete: service its children's arrivals,
		// then combine upward (or finish the episode at the root).
		done := tb.cmpl[node] + sim.Duration(tb.nkids[node])*tb.sys.cost.RequestService
		if node == 0 {
			tb.finish(done)
			break
		}
		parent := (node - 1) / tb.radix
		_, t := tb.sys.net.SendLeg(simnet.BarrierArrive, node, parent, 16, done)
		at = done + t.Total
		node = parent
	}
	tb.mu.Unlock()
	return <-ch, true
}

// finish completes an episode at the root: mint the epoch (shared
// episode duties — adaptive policy, rehoming, episode log), size the
// release payload, price the downward release wave hop by hop, and
// deliver every grant. Runs under tb.mu on the goroutine whose arrival
// completed the root's subtree.
func (tb *treeBarrier) finish(done sim.Duration) {
	s := tb.sys
	tb.episode++
	epoch, touched := s.finishEpisode(tb.tk, tb.episode)

	// Every release hop carries the episode's whole notice union: the
	// intervals published between the previous epoch and this one.
	noticeBytes := 0
	s.seqScratch = s.seqScratch[:0]
	for _, q := range touched {
		s.seqScratch = append(s.seqScratch, epoch.VT[q])
	}
	s.epDelta = s.store.DeltaDevsInto(tb.prevVT, touched, s.seqScratch, s.epDelta)
	for _, iv := range s.epDelta {
		noticeBytes += iv.NoticeBytes()
	}
	tb.prevVT = epoch.VT

	// Downward wave: parents release before children (node indices are
	// topologically ordered), one priced message per tree edge.
	tb.grantAt[0] = done + s.cost.BarrierManager
	for node := 0; node < tb.n; node++ {
		lo := tb.radix*node + 1
		if lo >= tb.n {
			continue
		}
		hi := lo + tb.radix
		if hi > tb.n {
			hi = tb.n
		}
		for c := lo; c < hi; c++ {
			_, t := s.net.SendLeg(simnet.BarrierRelease, node, c, 8+noticeBytes, tb.grantAt[node])
			tb.grantAt[c] = tb.grantAt[node] + t.Total
		}
	}
	for i := 0; i < tb.n; i++ {
		tb.waiters[i] <- barrierGrant{
			epoch: epoch, touched: touched, release: tb.grantAt[i], episode: tb.episode,
		}
	}
	// Reset the combining state for the next episode (finishEpisode
	// already rebased tk onto the new epoch).
	for i := 0; i < tb.n; i++ {
		tb.pending[i] = 1 + tb.nkids[i]
		tb.cmpl[i] = 0
	}
}
