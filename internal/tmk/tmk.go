// Package tmk implements the TreadMarks-style software DSM engine the
// paper evaluates: lazy release consistency with vector timestamps, an
// invalidate protocol driven by write notices, a multiple-writer protocol
// based on twinning and word-granularity diffing, locks and barriers with
// piggybacked consistency information, static consistency units of 1–n
// VM pages, and the paper's §4 dynamic page-group aggregation.
//
// Processors are goroutines with private replicas and virtual clocks; the
// protocol messages they exchange are recorded and priced by
// internal/simnet. See DESIGN.md for the substitution argument.
package tmk

import (
	"fmt"
	"sync"

	"repro/internal/aggregate"
	"repro/internal/instrument"
	"repro/internal/lrc"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Config describes one DSM instance.
type Config struct {
	// Procs is the number of simulated processors (the paper uses 8).
	Procs int
	// SegmentBytes is the shared-segment size; rounded up to a page
	// multiple and, further, to a unit multiple.
	SegmentBytes int
	// UnitPages is the static consistency unit in 4 KB pages: 1, 2, or
	// 4 in the paper's experiments. Write detection, twinning, write
	// notices, and invalidation all operate at this granularity.
	UnitPages int
	// Dynamic enables the §4 dynamic aggregation algorithm. Requires
	// UnitPages == 1 (the algorithm aggregates VM pages).
	Dynamic bool
	// MaxGroupPages bounds a dynamic page group (default 4 = 16 KB).
	MaxGroupPages int
	// Locks is the number of global locks to provision.
	Locks int
	// Cost overrides the communication cost model; zero value selects
	// sim.DefaultCostModel.
	Cost *sim.CostModel
	// Collect enables the §5.3 instrumentation (word-level usefulness,
	// false-sharing signature). Off, the run is faster and Stats only
	// carries raw message/byte counts.
	Collect bool
}

func (c *Config) fill() {
	if c.Procs <= 0 {
		c.Procs = 8
	}
	if c.UnitPages <= 0 {
		c.UnitPages = 1
	}
	if c.MaxGroupPages <= 0 {
		c.MaxGroupPages = aggregate.DefaultMaxPages
	}
	if c.Dynamic && c.UnitPages != 1 {
		panic("tmk: dynamic aggregation requires UnitPages == 1")
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = mem.PageSize
	}
}

// UnitBytes returns the consistency-unit size in bytes.
func (c Config) UnitBytes() int { return c.UnitPages * mem.PageSize }

// System is one DSM instance: the shared segment, the processors, the
// synchronization objects, and the run-wide accounting.
type System struct {
	cfg   Config
	cost  sim.CostModel
	net   *simnet.Network
	store *lrc.Store
	col   *instrument.Collector

	segBytes int
	numPages int
	numUnits int
	allocOff int
	running  bool

	procs   []*Proc
	barrier *barrier
	locks   []*lock
}

// NewSystem builds a DSM instance. The shared segment starts zeroed and
// valid (ReadOnly) on every processor, as after TreadMarks startup.
func NewSystem(cfg Config) *System {
	cfg.fill()
	cost := sim.DefaultCostModel()
	if cfg.Cost != nil {
		cost = *cfg.Cost
	}
	segBytes := mem.RoundUpPages(cfg.SegmentBytes)
	// Round up to a whole number of units so every unit is full.
	ub := cfg.UnitPages * mem.PageSize
	segBytes = (segBytes + ub - 1) / ub * ub

	s := &System{
		cfg:      cfg,
		cost:     cost,
		net:      simnet.New(cost),
		store:    lrc.NewStore(cfg.Procs),
		segBytes: segBytes,
		numPages: segBytes / mem.PageSize,
	}
	s.numUnits = s.numPages / cfg.UnitPages
	if cfg.Collect {
		s.col = instrument.NewCollector(cfg.Procs, segBytes)
	}
	s.barrier = newBarrier(cfg.Procs)
	s.locks = make([]*lock, cfg.Locks)
	for i := range s.locks {
		s.locks[i] = newLock(i, i%cfg.Procs)
	}
	s.procs = make([]*Proc, cfg.Procs)
	for p := range s.procs {
		s.procs[p] = newProc(s, p)
	}
	return s
}

// Config returns the (filled-in) configuration.
func (s *System) Config() Config { return s.cfg }

// SegmentBytes returns the rounded shared-segment size.
func (s *System) SegmentBytes() int { return s.segBytes }

// NumPages returns the number of 4 KB pages in the segment.
func (s *System) NumPages() int { return s.numPages }

// NumUnits returns the number of consistency units in the segment.
func (s *System) NumUnits() int { return s.numUnits }

// Alloc reserves n bytes of shared memory (8-byte aligned) and returns
// the base address. Allocation is a pre-run, single-threaded operation,
// mirroring TreadMarks' Tmk_malloc performed before the parallel phase.
func (s *System) Alloc(n int) mem.Addr {
	if s.running {
		panic("tmk: Alloc during Run")
	}
	base := (s.allocOff + mem.WordSize - 1) &^ (mem.WordSize - 1)
	if base+n > s.segBytes {
		panic(fmt.Sprintf("tmk: out of shared memory (%d + %d > %d)", base, n, s.segBytes))
	}
	s.allocOff = base + n
	return base
}

// AllocPages reserves n whole pages aligned to a unit boundary and
// returns the base address. Applications use this to control the layout
// effects the paper studies.
func (s *System) AllocPages(n int) mem.Addr {
	if s.running {
		panic("tmk: AllocPages during Run")
	}
	ub := s.cfg.UnitBytes()
	base := (s.allocOff + ub - 1) / ub * ub
	if base+n*mem.PageSize > s.segBytes {
		panic(fmt.Sprintf("tmk: out of shared memory (%d pages)", n))
	}
	s.allocOff = base + n*mem.PageSize
	return base
}

// Proc returns processor p's handle (valid only inside Run's body on
// that processor's goroutine).
func (s *System) Proc(p int) *Proc { return s.procs[p] }

// Result is the outcome of one Run.
type Result struct {
	// Time is the simulated execution time: the maximum processor
	// clock at the end of the run.
	Time sim.Duration
	// ProcTimes are the per-processor final clocks.
	ProcTimes []sim.Duration
	// Messages and Bytes are raw network totals.
	Messages int
	Bytes    int
	// Stats carries the §5.3 classification; nil unless Config.Collect.
	Stats *instrument.Stats
	// Faults, Twins, DiffsEncoded, Intervals aggregate engine events.
	Faults       int
	Twins        int
	DiffsEncoded int
	Intervals    int
}

// Run executes body once per processor, concurrently, and returns the
// run's accounting. It may be called once per System.
func (s *System) Run(body func(p *Proc)) *Result {
	if s.running {
		panic("tmk: Run reentered")
	}
	s.running = true
	var wg sync.WaitGroup
	for _, p := range s.procs {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			body(p)
			// Close any open interval so final writes are published
			// (no one fetches them, but accounting stays honest).
			p.closeInterval()
		}(p)
	}
	wg.Wait()

	res := &Result{ProcTimes: make([]sim.Duration, len(s.procs))}
	for i, p := range s.procs {
		res.ProcTimes[i] = p.clock.Now()
		res.Faults += p.nFaults
		res.Twins += p.nTwins
		res.DiffsEncoded += p.nDiffs
		res.Intervals += p.nIntervals
	}
	res.Time = sim.MaxClock(res.ProcTimes...)
	res.Messages, res.Bytes = s.net.Counts()
	if s.col != nil {
		res.Stats = s.col.Finalize(s.net.Snapshot())
	}
	return res
}
