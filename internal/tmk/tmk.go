// Package tmk implements the TreadMarks-style software DSM engine the
// paper evaluates: lazy release consistency with vector timestamps, an
// invalidate protocol driven by write notices, a multiple-writer protocol
// based on twinning and word-granularity diffing, locks and barriers with
// piggybacked consistency information, static consistency units of 1–n
// VM pages, and the paper's §4 dynamic page-group aggregation.
//
// Processors are goroutines with private replicas and virtual clocks; the
// protocol messages they exchange are recorded and priced by
// internal/simnet. See DESIGN.md for the substitution argument.
package tmk

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/aggregate"
	"repro/internal/instrument"
	"repro/internal/lrc"
	"repro/internal/mem"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
	"repro/internal/vc"
)

// Config describes one DSM instance.
type Config struct {
	// Procs is the number of simulated processors (the paper uses 8).
	Procs int
	// SegmentBytes is the shared-segment size; rounded up to a page
	// multiple and, further, to a unit multiple.
	SegmentBytes int
	// UnitPages is the static consistency unit in 4 KB pages: 1, 2, or
	// 4 in the paper's experiments. Write detection, twinning, write
	// notices, and invalidation all operate at this granularity.
	UnitPages int
	// Dynamic enables the §4 dynamic aggregation algorithm. Requires
	// UnitPages == 1 (the algorithm aggregates VM pages).
	Dynamic bool
	// MaxGroupPages bounds a dynamic page group (default 4 = 16 KB).
	MaxGroupPages int
	// Locks is the number of global locks to provision.
	Locks int
	// Protocol selects the coherence protocol by registry name
	// (case-insensitive). Empty selects DefaultProtocol ("homeless",
	// the paper's TreadMarks protocol); "home" selects home-based LRC;
	// "adaptive" starts every unit homeless and switches units between
	// the two engines at barriers, driven by each unit's writer-count
	// signature. See ProtocolNames for the full set.
	Protocol string
	// AdaptHysteresis is the adaptive protocol's hysteresis: the number
	// of consecutive barrier phases with writer evidence contradicting
	// a unit's current protocol required before the unit switches.
	// Zero selects DefaultAdaptHysteresis; ignored by static protocols.
	AdaptHysteresis int
	// AdaptQueueGate is the adaptive protocol's contention gate: a unit
	// migrates homeless→home only while the network's measured mean
	// queue delay per message is at least this duration — on an
	// uncontended interconnect the homeless protocol's extra messages
	// cost little, so units are held homeless. Zero selects the default
	// (MessageLeg/16 of the active cost model, which separates the
	// contended models from ideal and the fast presets); a negative
	// value disables the gate, making the switch rule signature-only.
	// Ignored by static protocols.
	AdaptQueueGate sim.Duration
	// Placement selects the home-placement policy by registry name
	// (case-insensitive): "rr" (round-robin, the paper-era default),
	// "block" (contiguous unit ranges), "firsttouch" (home = the
	// unit's causally first writer, bound at the first barrier after
	// the first write), or "migrate" (JIAJIA-style: the home chases
	// the dominant writer at each barrier, with the state transfer
	// priced on the wire). Only home-based engines ("home",
	// "adaptive") consult homes; under "homeless" the policy is inert.
	// See PlacementNames for the full set.
	Placement string
	// Scale selects the engine's scaling representation
	// (case-insensitive). "sparse" (the default) stores interval
	// timestamps as epoch-relative sparse stamps, drives acquire/barrier
	// deltas from deviation lists instead of O(nprocs) scans, and backs
	// replicas with lazily materialized page frames — observationally
	// identical to "dense" (wire counts are bit-identical; the golden
	// tests pin this) but asymptotically faster and smaller at 64–1024
	// processors. "dense" is the reference implementation: eager
	// replicas, one dense vector clone per interval, entrywise scans.
	Scale string
	// Barrier selects the barrier fabric by registry name
	// (case-insensitive; see BarrierNames). "central" (the default) is
	// the paper's flat TreadMarks barrier — n simultaneous arrivals at a
	// manager — and the 8-proc golden reference. "tree" combines
	// arrivals up (and fans releases down) a BarrierRadix-ary tree of
	// processors, every hop priced as a real message: on the contended
	// network models this turns n simultaneous bus arrivals into
	// log-depth waves.
	Barrier string
	// BarrierRadix is the tree barrier's fan-in (children per node).
	// Zero selects DefaultBarrierRadix; ignored by "central".
	BarrierRadix int
	// Network selects the interconnect timing model by registry name
	// (case-insensitive; see netmodel.Names). Empty selects "ideal",
	// the paper's flat contention-free cost arithmetic; "bus" and
	// "switch" add occupancy-based queuing, and the presets ("atm",
	// "myrinet", "10gbe") scale the platform's latency, bandwidth, and
	// software overhead.
	Network string
	// Cost overrides the communication cost model; zero value selects
	// sim.DefaultCostModel.
	Cost *sim.CostModel
	// Collect enables the §5.3 instrumentation (word-level usefulness,
	// false-sharing signature). Off, the run is faster and Stats only
	// carries raw message/byte counts.
	Collect bool
	// Trace, when non-nil, captures every Run on this System into the
	// given trace stream: one run_start/run_end frame per Run, every
	// priced message in pricing order, and the engine lifecycle events
	// (barriers, locks, faults, protocol switches, home moves). One
	// Writer may be shared by many Systems — runs demultiplex by id.
	// Tracing forces the network's send paths through the pricing lock,
	// so leave it nil on performance-measurement runs.
	Trace *trace.Writer
	// Sink, when non-nil, captures every Run into an in-memory event
	// buffer (or any other trace.Sink) instead of a JSONL stream — the
	// cheap capture path behind replay-derived sweep cells. The sink's
	// Begin/RunEnd bracket each Run. May be combined with Trace: both
	// then observe the same stream (the run is teed).
	Sink trace.Sink
}

func (c *Config) fill() error {
	if c.Procs <= 0 {
		c.Procs = 8
	}
	if c.UnitPages <= 0 {
		c.UnitPages = 1
	}
	if c.MaxGroupPages <= 0 {
		c.MaxGroupPages = aggregate.DefaultMaxPages
	}
	if c.Dynamic && c.UnitPages != 1 {
		return fmt.Errorf("tmk: dynamic aggregation requires UnitPages == 1 (got %d)", c.UnitPages)
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = mem.PageSize
	}
	c.Protocol = strings.ToLower(c.Protocol)
	if c.Protocol == "" {
		c.Protocol = DefaultProtocol
	}
	if !KnownProtocol(c.Protocol) {
		return fmt.Errorf("tmk: unknown protocol %q (known: %s)",
			c.Protocol, strings.Join(ProtocolNames(), ", "))
	}
	if c.AdaptHysteresis < 0 {
		return fmt.Errorf("tmk: adaptive hysteresis cannot be negative (got %d)", c.AdaptHysteresis)
	}
	if c.AdaptHysteresis == 0 {
		c.AdaptHysteresis = DefaultAdaptHysteresis
	}
	c.Placement = strings.ToLower(c.Placement)
	if c.Placement == "" {
		c.Placement = DefaultPlacement
	}
	if !KnownPlacement(c.Placement) {
		return fmt.Errorf("tmk: unknown placement %q (known: %s)",
			c.Placement, strings.Join(PlacementNames(), ", "))
	}
	c.Network = strings.ToLower(c.Network)
	if c.Network == "" {
		c.Network = netmodel.Default
	}
	if !netmodel.Known(c.Network) {
		return fmt.Errorf("tmk: unknown network model %q (known: %s)",
			c.Network, strings.Join(netmodel.Names(), ", "))
	}
	c.Scale = strings.ToLower(c.Scale)
	if c.Scale == "" {
		c.Scale = DefaultScale
	}
	if c.Scale != ScaleSparse && c.Scale != ScaleDense {
		return fmt.Errorf("tmk: unknown scale mode %q (known: %s, %s)",
			c.Scale, ScaleSparse, ScaleDense)
	}
	c.Barrier = strings.ToLower(c.Barrier)
	if c.Barrier == "" {
		c.Barrier = DefaultBarrier
	}
	if !KnownBarrier(c.Barrier) {
		return fmt.Errorf("tmk: unknown barrier %q (known: %s)",
			c.Barrier, strings.Join(BarrierNames(), ", "))
	}
	if c.BarrierRadix < 0 {
		return fmt.Errorf("tmk: barrier radix cannot be negative (got %d)", c.BarrierRadix)
	}
	if c.BarrierRadix == 0 {
		c.BarrierRadix = DefaultBarrierRadix
	}
	return nil
}

// Scale mode names (Config.Scale).
const (
	ScaleSparse = "sparse"
	ScaleDense  = "dense"
)

// DefaultScale is the default engine representation.
const DefaultScale = ScaleSparse

// ScaleName returns the configured scale mode with the default filled
// in, without mutating the config.
func (c Config) ScaleName() string {
	if c.Scale == "" {
		return DefaultScale
	}
	return strings.ToLower(c.Scale)
}

// BarrierName returns the configured barrier fabric name with the
// default filled in, without mutating the config.
func (c Config) BarrierName() string {
	if c.Barrier == "" {
		return DefaultBarrier
	}
	return strings.ToLower(c.Barrier)
}

// NetworkName returns the configured network model name with the
// default filled in, without mutating the config.
func (c Config) NetworkName() string {
	if c.Network == "" {
		return netmodel.Default
	}
	return strings.ToLower(c.Network)
}

// ProtocolName returns the configured protocol name with the default
// filled in, without mutating the config.
func (c Config) ProtocolName() string {
	if c.Protocol == "" {
		return DefaultProtocol
	}
	return strings.ToLower(c.Protocol)
}

// PlacementName returns the configured home-placement policy name with
// the default filled in, without mutating the config.
func (c Config) PlacementName() string {
	if c.Placement == "" {
		return DefaultPlacement
	}
	return strings.ToLower(c.Placement)
}

// UnitBytes returns the consistency-unit size in bytes.
func (c Config) UnitBytes() int { return c.UnitPages * mem.PageSize }

// System is one DSM instance: the shared segment, the processors, the
// synchronization objects, and the run-wide accounting.
type System struct {
	cfg   Config
	cost  sim.CostModel
	net   *simnet.Network
	store *lrc.Store
	col   *instrument.Collector

	// The coherence engines of this configuration and the per-unit
	// dispatch table: unitProto[u] indexes protos with unit u's current
	// owner. Static protocols install one engine owning every unit;
	// "adaptive" installs homeless and home and re-points units at
	// barriers through policy.
	protos    []Protocol
	unitProto []uint8
	policy    *adaptivePolicy

	// The home-placement layer: homeTable[u] is unit u's current home
	// processor (consulted only by home-based engines), placement the
	// policy that assigned it, and rehomer the barrier-time driver that
	// lets the policy move homes mid-run (nil when no home-based engine
	// is installed). lastBarrierVT is the previous barrier's merged
	// vector time — the lower bound of the phase delta both the
	// placement layer and the adaptive policy evaluate.
	placement     Placement
	homeTable     []int32
	rehomer       *rehomer
	lastBarrierVT vc.Time
	nRehomes      int
	nRehomeBytes  int

	// finishEpisode scratch (touched by at most one processor at a time —
	// the barrier fabric's completing arrival, under the fabric's mutex).
	seqScratch []int32
	epDelta    []*lrc.Interval

	segBytes int
	numPages int
	numUnits int
	allocOff int
	running  bool
	ran      bool
	// sparse caches cfg.Scale != ScaleDense: the acquire path consults
	// the mode once per write notice, and a string comparison there is
	// measurable at 256+ processors.
	sparse bool

	procs   []*Proc
	barrier barrierSync
	locks   []*lock

	// barrierLog records each barrier episode's merged vector time, in
	// episode order, when Collect is set — the observable the
	// barrier-equivalence tests compare across fabrics. Appended by the
	// episode-completing processor while every other processor is
	// blocked, so reads after Run are race-free.
	barrierLog []vc.Time

	// trc is the active Run's trace sink (nil when not tracing): a
	// Writer-backed *trace.Run or the Config's in-memory Sink. Set
	// before the processor goroutines start and cleared after they join,
	// so processor-side reads are race-free; hot paths pay one nil check.
	trc trace.Sink
}

// NewSystem builds a DSM instance. The shared segment starts zeroed and
// valid (ReadOnly) on every processor, as after TreadMarks startup.
// An invalid configuration (dynamic aggregation with multi-page units)
// is reported as an error, never a panic.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	cost := sim.DefaultCostModel()
	if cfg.Cost != nil {
		cost = *cfg.Cost
	}
	model, err := netmodel.New(cfg.Network, cost)
	if err != nil {
		return nil, fmt.Errorf("tmk: %w", err)
	}
	segBytes := mem.RoundUpPages(cfg.SegmentBytes)
	// Round up to a whole number of units so every unit is full.
	ub := cfg.UnitPages * mem.PageSize
	segBytes = (segBytes + ub - 1) / ub * ub

	s := &System{
		cfg:      cfg,
		cost:     cost,
		net:      simnet.NewWithModel(cost, model, netOptions(cfg)...),
		store:    lrc.NewStore(cfg.Procs),
		segBytes: segBytes,
		numPages: segBytes / mem.PageSize,
	}
	s.numUnits = s.numPages / cfg.UnitPages
	s.sparse = cfg.Scale != ScaleDense
	s.setupPlacement()
	protocolSetups[cfg.Protocol](s)
	s.setupRehomer()
	if cfg.Collect {
		s.col = instrument.NewCollector(cfg.Procs, segBytes)
	}
	s.barrier = barrierFactories[cfg.Barrier](s)
	s.locks = make([]*lock, cfg.Locks)
	for i := range s.locks {
		s.locks[i] = newLock(i, i%cfg.Procs)
	}
	s.procs = make([]*Proc, cfg.Procs)
	for p := range s.procs {
		s.procs[p] = newProc(s, p)
	}
	return s, nil
}

// Reset returns the system to its post-NewSystem state — zeroed
// replicas, ReadOnly page tables, fresh vector clocks, empty interval
// store, zeroed network counters, and a fresh instrument collector —
// while keeping the shared-memory layout (allocations survive). It is
// the foundation of multi-trial benchmarking: Prepare once, then Run
// independent trials on one instance.
func (s *System) Reset() {
	if s.running {
		panic("tmk: Reset during Run")
	}
	model := s.net.Model()
	model.Reset()
	s.net = simnet.NewWithModel(s.cost, model, netOptions(s.cfg)...)
	s.store = lrc.NewStore(s.cfg.Procs)
	s.setupPlacement()
	protocolSetups[s.cfg.Protocol](s)
	s.setupRehomer()
	if s.cfg.Collect {
		s.col = instrument.NewCollector(s.cfg.Procs, s.segBytes)
	}
	s.barrier = barrierFactories[s.cfg.Barrier](s)
	s.barrierLog = s.barrierLog[:0]
	for i := range s.locks {
		s.locks[i] = newLock(i, i%s.cfg.Procs)
	}
	for _, p := range s.procs {
		p.reset()
	}
	s.ran = false
}

// netOptions maps the engine configuration onto the message log's
// retention policy: without §5.3 collection nothing ever replays the
// log, so the engine keeps only the O(1) running totals and a
// million-message run no longer retains every Record.
func netOptions(cfg Config) []simnet.Option {
	if cfg.Collect {
		return nil
	}
	return []simnet.Option{simnet.WithCountsOnly()}
}

// Config returns the (filled-in) configuration.
func (s *System) Config() Config { return s.cfg }

// Protocol returns the configured coherence protocol's registry name
// ("homeless", "home", "adaptive").
func (s *System) Protocol() string { return s.cfg.Protocol }

// Placement returns the configured home-placement policy's registry
// name ("rr", "block", "firsttouch", "migrate").
func (s *System) Placement() string { return s.cfg.Placement }

// setupPlacement builds a fresh placement policy and initial home
// table for this System build. Called before the protocol setup
// (engines read homes only at run time) in NewSystem and Reset.
func (s *System) setupPlacement() {
	s.placement = placementFactories[s.cfg.Placement](s.cfg.Procs, s.numUnits)
	s.homeTable = make([]int32, s.numUnits)
	for u := range s.homeTable {
		s.homeTable[u] = int32(s.placement.InitialHome(u))
	}
	s.lastBarrierVT = vc.New(s.cfg.Procs)
	s.nRehomes = 0
	s.nRehomeBytes = 0
	s.rehomer = nil
}

// setupRehomer installs the barrier-time rehoming driver when the
// installed configuration includes a home-based engine and the
// placement policy can actually move homes — under "rr"/"block" no
// driver exists and barriers pay nothing for the placement layer.
// Called after the protocol setup in NewSystem and Reset.
func (s *System) setupRehomer() {
	if !s.placement.MayRehome() {
		return
	}
	for _, pr := range s.protos {
		if hp, ok := pr.(*homeProtocol); ok {
			s.rehomer = newRehomer(s, hp)
			return
		}
	}
}

// homeOf returns the processor currently homing unit u. The home table
// is only mutated while every processor is blocked in a barrier (see
// rehomer and adaptivePolicy), so reads on processor goroutines are
// race-free.
func (s *System) homeOf(u int) int { return int(s.homeTable[u]) }

// unitIsHome reports whether unit u is currently owned by a home-based
// engine — i.e. whether live home state exists for it.
func (s *System) unitIsHome(u int) bool {
	_, ok := s.protoOf(u).(*homeProtocol)
	return ok
}

// Network returns the active interconnect timing model's name.
func (s *System) Network() string { return s.net.Model().Name() }

// sparseMode reports whether the engine runs the sparse representation
// (epoch-relative stamps, deviation-driven deltas, lazy replicas).
func (s *System) sparseMode() bool { return s.sparse }

// BarrierLog returns the merged vector time of every completed barrier
// episode, in order. Recorded only when Config.Collect is set; valid
// after Run returns. The log is identical across barrier fabrics — the
// equivalence the tree-barrier tests pin.
func (s *System) BarrierLog() []vc.Time { return s.barrierLog }

// SegmentBytes returns the rounded shared-segment size.
func (s *System) SegmentBytes() int { return s.segBytes }

// NumPages returns the number of 4 KB pages in the segment.
func (s *System) NumPages() int { return s.numPages }

// NumUnits returns the number of consistency units in the segment.
func (s *System) NumUnits() int { return s.numUnits }

// TryAlloc reserves n bytes of shared memory (8-byte aligned) and
// returns the base address. Allocation is a pre-run, single-threaded
// operation, mirroring TreadMarks' Tmk_malloc performed before the
// parallel phase. Exhausting the segment is reported as an error.
func (s *System) TryAlloc(n int) (mem.Addr, error) {
	if s.running {
		return 0, fmt.Errorf("tmk: Alloc during Run")
	}
	if n < 0 {
		return 0, fmt.Errorf("tmk: Alloc of negative size %d", n)
	}
	base := (s.allocOff + mem.WordSize - 1) &^ (mem.WordSize - 1)
	if base+n > s.segBytes {
		return 0, fmt.Errorf("tmk: out of shared memory (%d + %d > segment %d)", base, n, s.segBytes)
	}
	s.allocOff = base + n
	return base, nil
}

// Alloc is TryAlloc for pre-validated callers; it panics on exhaustion.
func (s *System) Alloc(n int) mem.Addr {
	a, err := s.TryAlloc(n)
	if err != nil {
		panic(err)
	}
	return a
}

// TryAllocPages reserves n whole pages aligned to a unit boundary and
// returns the base address. Applications use this to control the layout
// effects the paper studies.
func (s *System) TryAllocPages(n int) (mem.Addr, error) {
	if s.running {
		return 0, fmt.Errorf("tmk: AllocPages during Run")
	}
	if n < 0 {
		return 0, fmt.Errorf("tmk: AllocPages of negative count %d", n)
	}
	ub := s.cfg.UnitBytes()
	base := (s.allocOff + ub - 1) / ub * ub
	if base+n*mem.PageSize > s.segBytes {
		return 0, fmt.Errorf("tmk: out of shared memory (%d pages over segment %d)", n, s.segBytes)
	}
	s.allocOff = base + n*mem.PageSize
	return base, nil
}

// AllocPages is TryAllocPages for pre-validated callers; it panics on
// exhaustion.
func (s *System) AllocPages(n int) mem.Addr {
	a, err := s.TryAllocPages(n)
	if err != nil {
		panic(err)
	}
	return a
}

// Proc returns processor p's handle (valid only inside Run's body on
// that processor's goroutine).
func (s *System) Proc(p int) *Proc { return s.procs[p] }

// Result is the outcome of one Run.
type Result struct {
	// Time is the simulated execution time: the maximum processor
	// clock at the end of the run.
	Time sim.Duration
	// ProcTimes are the per-processor final clocks.
	ProcTimes []sim.Duration
	// Messages and Bytes are raw network totals.
	Messages int
	Bytes    int
	// Network names the interconnect timing model the run was priced
	// on, and QueueDelay is the cumulative contention delay its
	// messages experienced (always zero on "ideal").
	Network    string
	QueueDelay sim.Duration
	// Stats carries the §5.3 classification; nil unless Config.Collect.
	Stats *instrument.Stats
	// Faults, Twins, DiffsEncoded, Intervals aggregate engine events.
	Faults       int
	Twins        int
	DiffsEncoded int
	Intervals    int
	// Adaptive-protocol accounting (zero under static protocols):
	// SwitchedUnits counts the units that changed protocol at least
	// once, ProtocolSwitches the total switch events, UnitSwitches the
	// per-unit switch counts (switched units only), and HomeUnits the
	// units owned by the home-based engine at the end of the run.
	SwitchedUnits    int
	ProtocolSwitches int
	UnitSwitches     map[int]int
	HomeUnits        int
	// Placement names the home-placement policy of the run; Rehomes
	// counts the home moves it made after construction (first-touch
	// bindings, migrations, and adaptive home seedings under a mobile
	// policy), and RehomeBytes the wire bytes of the priced home-state
	// transfers among them. HandoffBytes is the wire total of the
	// adaptive protocol's homeless→home image pulls (zero under a
	// mobile placement, whose switches migrate the home instead).
	Placement    string
	Rehomes      int
	RehomeBytes  int
	HandoffBytes int
}

// Run executes body once per processor, concurrently, and returns the
// run's accounting. A System is reusable: calling Run again first
// Resets it, so every call is an independent trial over the same
// shared-memory layout.
func (s *System) Run(body func(p *Proc)) *Result {
	if s.running {
		panic("tmk: Run reentered")
	}
	if s.ran {
		s.Reset()
	}
	if s.cfg.Trace != nil || s.cfg.Sink != nil {
		cost := s.cost
		meta := trace.RunMeta{
			Protocol:     s.cfg.Protocol,
			Network:      s.net.Model().Name(),
			Placement:    s.cfg.Placement,
			Procs:        s.cfg.Procs,
			UnitPages:    s.cfg.UnitPages,
			Dynamic:      s.cfg.Dynamic,
			Barrier:      s.cfg.Barrier,
			BarrierRadix: s.cfg.BarrierRadix,
			Cost:         &cost,
		}
		switch {
		case s.cfg.Trace != nil && s.cfg.Sink != nil:
			run := s.cfg.Trace.BeginRun(meta)
			s.cfg.Sink.Begin(meta)
			s.trc = trace.Tee(run, s.cfg.Sink)
		case s.cfg.Trace != nil:
			s.trc = s.cfg.Trace.BeginRun(meta)
		default:
			s.cfg.Sink.Begin(meta)
			s.trc = s.cfg.Sink
		}
		s.net.SetTraceSink(s.trc)
	}
	s.running = true
	var wg sync.WaitGroup
	for _, p := range s.procs {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			body(p)
			// Close any open interval so final writes are published
			// (no one fetches them, but accounting stays honest).
			p.closeInterval()
		}(p)
	}
	wg.Wait()

	res := &Result{ProcTimes: make([]sim.Duration, len(s.procs))}
	for i, p := range s.procs {
		res.ProcTimes[i] = p.clock.Now()
		res.Faults += p.nFaults
		res.Twins += p.nTwins
		res.DiffsEncoded += p.nDiffs
		res.Intervals += p.nIntervals
	}
	res.Time = sim.MaxClock(res.ProcTimes...)
	res.Messages, res.Bytes = s.net.Counts()
	res.Network = s.net.Model().Name()
	res.QueueDelay = s.net.QueueTotal()
	res.Placement = s.cfg.Placement
	res.Rehomes = s.nRehomes
	res.RehomeBytes = s.nRehomeBytes
	res.HandoffBytes = s.net.CountsByKind()[simnet.HomeHandoff].Bytes
	if s.policy != nil {
		s.policy.report(res)
	}
	if s.col != nil {
		res.Stats = s.col.Finalize(s.net.Snapshot())
	}
	if s.trc != nil {
		s.trc.RunEnd(res.Time, int64(res.Messages), int64(res.Bytes), res.QueueDelay, res.ProcTimes)
		s.net.SetTraceSink(nil)
		s.trc = nil
	}
	s.running = false
	s.ran = true
	return res
}

// TrialSummary aggregates the Results of repeated independent Runs of
// one body on one System.
type TrialSummary struct {
	// Trials holds each trial's full Result, in execution order.
	Trials []*Result
	// MinTime, MeanTime, MaxTime aggregate the trials' simulated times.
	// The simulation is deterministic for barrier-synchronized programs,
	// so Min == Mean == Max there; lock-based programs may vary with
	// goroutine scheduling.
	MinTime  sim.Duration
	MeanTime sim.Duration
	MaxTime  sim.Duration
	// MeanMessages and MeanBytes aggregate the trials' network totals.
	MeanMessages float64
	MeanBytes    float64
	// MeanQueueDelay aggregates the trials' network contention delay
	// (zero on the ideal model).
	MeanQueueDelay sim.Duration
}

// Summarize computes the aggregate view of a non-empty trial list.
func Summarize(trials []*Result) *TrialSummary {
	ts := &TrialSummary{Trials: trials}
	var sumTime, sumQueue sim.Duration
	for i, r := range trials {
		if i == 0 || r.Time < ts.MinTime {
			ts.MinTime = r.Time
		}
		if r.Time > ts.MaxTime {
			ts.MaxTime = r.Time
		}
		sumTime += r.Time
		sumQueue += r.QueueDelay
		ts.MeanMessages += float64(r.Messages)
		ts.MeanBytes += float64(r.Bytes)
	}
	if n := len(trials); n > 0 {
		ts.MeanTime = sumTime / sim.Duration(n)
		ts.MeanQueueDelay = sumQueue / sim.Duration(n)
		ts.MeanMessages /= float64(n)
		ts.MeanBytes /= float64(n)
	}
	return ts
}

// RunTrials executes body as n independent trials on this System,
// resetting between trials, and returns the per-trial Results plus the
// min/mean/max aggregate.
func (s *System) RunTrials(n int, body func(p *Proc)) (*TrialSummary, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tmk: RunTrials needs a positive trial count (got %d)", n)
	}
	trials := make([]*Result, 0, n)
	for i := 0; i < n; i++ {
		trials = append(trials, s.Run(body))
	}
	return Summarize(trials), nil
}
