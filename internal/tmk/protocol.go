package tmk

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/instrument"
	"repro/internal/lrc"
	"repro/internal/mem"
	"repro/internal/vc"
)

// Protocol is the engine's coherence layer: the policy for who owns a
// closed interval's diffs, what an access miss fetches and from whom,
// and how write notices are applied at an acquire. Everything else in
// the engine — twinning and write detection, interval/vector-clock
// bookkeeping, locks, barriers, dynamic page grouping, the network and
// cost accounting — is protocol-independent and shared, so a new
// protocol is only these four policies (see DESIGN.md §5).
//
// One Protocol instance serves one System build (Reset constructs a
// fresh one); per-processor protocol state lives on Proc (twins,
// missing-write lists) and is reset with the processors. All methods
// except construction are called on processor goroutines; a Protocol
// must synchronize any state shared between processors itself.
type Protocol interface {
	// Name returns the registry name ("homeless", "home").
	Name() string

	// Acquire applies the write notices of delta — the intervals
	// covered by the releaser's vector time that p has not yet seen,
	// in causal order — to p: the invalidation policy and the
	// missing-write bookkeeping that later drives Fetch. It returns
	// the wire size of the consumed notices, which the caller charges
	// as consistency information piggybacked on the grant/release
	// message (the sync-time piggybacking hook).
	Acquire(p *Proc, delta []*lrc.Interval) int

	// Release publishes interval (id, ts, units, diffs), closed by p,
	// per the diff-ownership policy: homeless keeps the diffs with the
	// writer (in the interval store, served on demand); home-based
	// flushes them to each written unit's home. Called on p's
	// goroutine before the synchronization operation proceeds.
	Release(p *Proc, id vc.IntervalID, ts vc.Time, units []int, diffs []lrc.PageDiff)

	// Fetch brings the stale units among units up to date in p's
	// replica: it decides whom to contact, sends and prices the
	// exchanges, applies the data, charges p's clock, and clears the
	// consumed missing-write state. It returns one instrument data
	// message per exchange (nil/empty when nothing was fetched or
	// collection is off) for the caller's fault record.
	Fetch(p *Proc, units []int) []*instrument.DataMsg
}

// DefaultProtocol is the protocol of the paper's evaluation.
const DefaultProtocol = "homeless"

var protocolFactories = map[string]func(s *System) Protocol{}

// RegisterProtocol adds a protocol factory under a (case-insensitive)
// name. Called from init; a duplicate name is a programming error.
func RegisterProtocol(name string, factory func(s *System) Protocol) {
	key := strings.ToLower(name)
	if key == "" || factory == nil {
		panic("tmk: incomplete protocol registration")
	}
	if _, dup := protocolFactories[key]; dup {
		panic(fmt.Sprintf("tmk: duplicate protocol registration %q", key))
	}
	protocolFactories[key] = factory
}

// ProtocolNames returns the registered protocol names, sorted.
func ProtocolNames() []string {
	out := make([]string, 0, len(protocolFactories))
	for name := range protocolFactories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// KnownProtocol reports whether name (case-insensitive) is registered.
func KnownProtocol(name string) bool {
	_, ok := protocolFactories[strings.ToLower(name)]
	return ok
}

// invalidator is the write-notice policy shared by both protocols: an
// acquire invalidates every noticed unit (unless the notice is the
// acquirer's own) and records the interval as a missing write, so the
// unit stays invalid until the next access fault fetches it.
type invalidator struct{}

func (invalidator) Acquire(p *Proc, delta []*lrc.Interval) int {
	cost := p.sys.cost
	bytes := 0
	for _, iv := range delta {
		bytes += iv.NoticeBytes()
		if iv.ID.Proc == p.id {
			continue
		}
		for _, u := range iv.Units {
			p.missing[u] = append(p.missing[u], lrc.MissingWrite{Interval: iv})
			if p.pt.State(u) != mem.Invalid {
				p.pt.Set(u, mem.Invalid)
				p.clock.Advance(cost.ProtOp)
			}
		}
	}
	return bytes
}
