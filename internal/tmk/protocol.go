package tmk

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/instrument"
	"repro/internal/lrc"
	"repro/internal/mem"
	"repro/internal/vc"
)

// Protocol is one coherence engine: the policy for who owns a closed
// interval's diffs, what an access miss fetches and from whom, and how
// a write notice is applied at an acquire. Everything else — twinning
// and write detection, interval/vector-clock bookkeeping, locks,
// barriers, dynamic page grouping, the network and cost accounting —
// is protocol-independent and shared, so a new protocol is only these
// policies (see DESIGN.md §5).
//
// Dispatch is per *consistency unit*, not per engine: the System owns a
// dispatch table (protoOf) mapping every unit to its current owning
// protocol, and routes each operation to the owner — a release splits
// an interval's diffs by the owning protocol of each written unit, an
// acquire applies each notice through the noticed unit's owner, and a
// fault hands each stale unit to its owner's fetch policy. A static
// configuration ("homeless", "home") installs one engine owning every
// unit; the "adaptive" configuration installs both and re-points units
// at barriers (see DESIGN.md §8).
//
// Protocol instances serve one System build (Reset constructs fresh
// ones); per-processor protocol state lives on Proc (twins,
// missing-write lists) and is reset with the processors. All methods
// except construction are called on processor goroutines; a Protocol
// must synchronize any state shared between processors itself.
type Protocol interface {
	// Name returns the engine name ("homeless", "home").
	Name() string

	// AcquireUnit applies one write notice to p: remote interval iv
	// (never p's own) wrote unit u, which this protocol owns. It
	// performs the invalidation policy and the missing-write
	// bookkeeping that later drives Fetch. The caller iterates the
	// acquire's delta in causal order and its units in notice order,
	// and charges the notices' wire size itself.
	AcquireUnit(p *Proc, iv *lrc.Interval, u int)

	// Release takes ownership of the diffs of interval (id, ts) that
	// fall in units this protocol owns: homeless keeps them with the
	// writer (attached to the published interval, served on demand);
	// home-based flushes them to each written unit's home. It returns
	// the page diffs to keep attached to the interval the caller
	// publishes. Called on p's goroutine, before the synchronization
	// operation proceeds and before the interval is published.
	Release(p *Proc, id vc.IntervalID, ts vc.Stamp, units []int, diffs []lrc.PageDiff) []lrc.PageDiff

	// Fetch brings the stale units among units — all owned by this
	// protocol — up to date in p's replica: it decides whom to contact,
	// sends and prices the exchanges, applies the data, charges p's
	// clock, and clears the consumed missing-write state. It returns
	// one instrument data message per exchange (nil/empty when nothing
	// was fetched or collection is off) for the caller's fault record.
	Fetch(p *Proc, units []int) []*instrument.DataMsg
}

// DefaultProtocol is the protocol of the paper's evaluation.
const DefaultProtocol = "homeless"

// A protocol registration installs the named configuration on a System
// under construction: the engine(s) to instantiate, the initial
// per-unit dispatch, and — for adaptive configurations — the policy
// that re-points units at barriers.
var protocolSetups = map[string]func(s *System){}

// RegisterProtocol adds a protocol setup under a (case-insensitive)
// name. Called from init; a duplicate name is a programming error.
func RegisterProtocol(name string, setup func(s *System)) {
	key := strings.ToLower(name)
	if key == "" || setup == nil {
		panic("tmk: incomplete protocol registration")
	}
	if _, dup := protocolSetups[key]; dup {
		panic(fmt.Sprintf("tmk: duplicate protocol registration %q", key))
	}
	protocolSetups[key] = setup
}

// ProtocolNames returns the registered protocol names, sorted.
func ProtocolNames() []string {
	out := make([]string, 0, len(protocolSetups))
	for name := range protocolSetups {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// KnownProtocol reports whether name (case-insensitive) is registered.
func KnownProtocol(name string) bool {
	_, ok := protocolSetups[strings.ToLower(name)]
	return ok
}

// install wires the given engines into the System: protos[0] initially
// owns every unit (adaptive policies re-point units later). Called from
// a protocol setup during NewSystem/Reset.
func (s *System) install(protos ...Protocol) {
	s.protos = protos
	s.unitProto = make([]uint8, s.numUnits)
	s.policy = nil
}

// protoOf returns the protocol currently owning unit u. The dispatch
// table is only mutated while every processor is blocked in a barrier
// (see adaptivePolicy), so reads on processor goroutines are race-free.
func (s *System) protoOf(u int) Protocol { return s.protos[s.unitProto[u]] }

// ownedUnits returns the subset of units currently owned by the
// protocol at dispatch index i, preserving order (nil when none) — the
// partition step shared by the release and fetch routers.
func (s *System) ownedUnits(units []int, i int) []int {
	var sub []int
	for _, u := range units {
		if s.unitProto[u] == uint8(i) {
			sub = append(sub, u)
		}
	}
	return sub
}

// releaseInterval routes a closing interval through the diff-ownership
// policies: the written units and their diffs are split by each unit's
// owning protocol, each owner takes its share, and the diffs the owners
// keep (homeless ownership) are returned for the caller to attach to
// the published interval.
func (s *System) releaseInterval(p *Proc, id vc.IntervalID, ts vc.Stamp, units []int, diffs []lrc.PageDiff) []lrc.PageDiff {
	if len(s.protos) == 1 {
		return s.protos[0].Release(p, id, ts, units, diffs)
	}
	var keep []lrc.PageDiff
	for i, proto := range s.protos {
		su := s.ownedUnits(units, i)
		if len(su) == 0 {
			continue
		}
		var sd []lrc.PageDiff
		for _, pd := range diffs {
			if s.unitProto[pd.Page/s.cfg.UnitPages] == uint8(i) {
				sd = append(sd, pd)
			}
		}
		keep = append(keep, proto.Release(p, id, ts, su, sd)...)
	}
	return keep
}

// invalidator is the write-notice policy shared by all protocols: an
// acquire invalidates every noticed unit and records the interval as a
// missing write, so the unit stays invalid until the next access fault
// fetches it. The sparse engine skips only the host-side list append —
// fault-time reconstruction from the store's publish log recovers the
// identical list (see notices.go) — while the invalidation and its
// ProtOp charge stay, keeping virtual time and wire traffic unchanged.
type invalidator struct{}

func (invalidator) AcquireUnit(p *Proc, iv *lrc.Interval, u int) {
	if !p.sys.sparseMode() {
		p.missing[u] = append(p.missing[u], lrc.MissingWrite{Interval: iv})
	}
	if p.pt.State(u) != mem.Invalid {
		p.pt.Set(u, mem.Invalid)
		p.clock.Advance(p.sys.cost.ProtOp)
	}
}
