package tmk

import (
	"strings"
	"testing"

	"repro/internal/simnet"
)

// All built-in placements are registered and listed sorted, lookups are
// case-insensitive, and an unknown placement is an error from
// NewSystem that names the registered policies.
func TestPlacementRegistry(t *testing.T) {
	names := PlacementNames()
	want := []string{"block", "firsttouch", "migrate", "rr"}
	if len(names) != len(want) {
		t.Fatalf("PlacementNames() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("PlacementNames() = %v, want %v", names, want)
		}
	}
	for _, n := range []string{"rr", "RR", "FirstTouch", "Migrate", "block"} {
		if !KnownPlacement(n) {
			t.Errorf("KnownPlacement(%q) = false", n)
		}
	}
	if KnownPlacement("bogus") {
		t.Error("KnownPlacement(bogus) = true")
	}
	_, err := NewSystem(Config{Placement: "bogus"})
	if err == nil {
		t.Fatal("NewSystem accepted unknown placement")
	}
	if !strings.Contains(err.Error(), "bogus") || !strings.Contains(err.Error(), "firsttouch") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if got := (Config{}).PlacementName(); got != DefaultPlacement {
		t.Fatalf("PlacementName() = %q, want %q", got, DefaultPlacement)
	}
}

// The default and case-insensitive selection resolve correctly, Reset
// keeps the selected placement, and the initial home tables match the
// policies' assignments (rr: round-robin; block: contiguous bands).
func TestPlacementSelectionAndInitialHomes(t *testing.T) {
	def, err := NewSystem(Config{SegmentBytes: 8 * 4096, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if def.Placement() != "rr" {
		t.Fatalf("default placement = %q, want rr", def.Placement())
	}
	for u := 0; u < def.NumUnits(); u++ {
		if def.homeOf(u) != u%4 {
			t.Fatalf("rr home of unit %d = %d, want %d", u, def.homeOf(u), u%4)
		}
	}

	blk, err := NewSystem(Config{SegmentBytes: 8 * 4096, Procs: 4, Placement: "Block", Protocol: "home"})
	if err != nil {
		t.Fatal(err)
	}
	if blk.Placement() != "block" {
		t.Fatalf("placement = %q, want block", blk.Placement())
	}
	// 8 units over 4 processors: units 2u and 2u+1 on processor u.
	for u := 0; u < blk.NumUnits(); u++ {
		if blk.homeOf(u) != u/2 {
			t.Fatalf("block home of unit %d = %d, want %d", u, blk.homeOf(u), u/2)
		}
	}
	blk.Reset()
	if blk.Placement() != "block" || blk.homeOf(2) != 1 {
		t.Fatalf("placement after Reset = %q, home(2) = %d", blk.Placement(), blk.homeOf(2))
	}
}

// bandedRun runs a home-protocol program where processor p exclusively
// writes unit p and everyone reads all units each phase — the NUMA-ish
// pattern first-touch and migration exist for.
func bandedRun(t *testing.T, placement string, phases int) (*System, *Result) {
	t.Helper()
	const procs = 4
	sys, err := NewSystem(Config{
		Procs:        procs,
		SegmentBytes: procs * 4096,
		Protocol:     "home",
		Placement:    placement,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := sys.Alloc(procs * 4096)
	res := sys.Run(func(p *Proc) {
		for ph := 0; ph < phases; ph++ {
			p.WriteI64(base+p.ID()*4096, int64(100*ph+p.ID()))
			p.Barrier()
			var sum int64
			for u := 0; u < procs; u++ {
				sum += p.ReadI64(base + u*4096)
			}
			p.Barrier()
			_ = sum
		}
	})
	return sys, res
}

// First-touch binds every unit to its sole writer at the first barrier
// after the first write: each unit's flushes become local (no HomeFlush
// traffic at all in the banded program), the bindings are counted as
// unpriced rehomes, and repeated trials on one System reproduce the
// first bit-for-bit — the resolution is deterministic across Reset.
func TestFirstTouchBindsAndIsDeterministic(t *testing.T) {
	sys, r1 := bandedRun(t, "firsttouch", 4)
	for u := 0; u < sys.NumUnits(); u++ {
		if sys.homeOf(u) != u {
			t.Fatalf("unit %d homed at %d, want its writer %d", u, sys.homeOf(u), u)
		}
	}
	// Units 1, 2, 3 moved off their round-robin homes... but in this
	// layout rr already homes unit u at processor u, so re-binding is a
	// no-move. Use the counts of a shifted check below; here assert no
	// remote flushes remain once bound (phase 0 flushed to provisional
	// rr homes, which coincide).
	if got := sys.net.CountsByKind()[simnet.HomeFlush].Messages; got != 0 {
		t.Fatalf("banded first-touch run still flushed %d times over the wire", got)
	}
	if r1.Rehomes != 0 {
		t.Fatalf("coinciding first-touch binding counted %d rehomes", r1.Rehomes)
	}
	if r1.RehomeBytes != 0 {
		t.Fatalf("first-touch binding priced %d bytes", r1.RehomeBytes)
	}

	// Trial 2 on the same System must reproduce trial 1 exactly.
	r2 := sys.Run(func(p *Proc) {})
	_ = r2
	sys2, r3 := bandedRun(t, "firsttouch", 4)
	r4 := sys2.Run(func(p *Proc) {
		for ph := 0; ph < 4; ph++ {
			p.WriteI64(p.ID()*4096, int64(100*ph+p.ID()))
			p.Barrier()
			var sum int64
			for u := 0; u < 4; u++ {
				sum += p.ReadI64(u * 4096)
			}
			p.Barrier()
			_ = sum
		}
	})
	if r3.Time != r4.Time || r3.Messages != r4.Messages || r3.Bytes != r4.Bytes {
		t.Fatalf("first-touch run not reproducible across Reset:\n  r3 = %+v\n  r4 = %+v", r3, r4)
	}
}

// A shifted banded program (processor p writes unit (p+1)%n, reads one
// other unit) forces first-touch to move every unit off its
// round-robin home: the bindings are counted, unpriced, and kill the
// steady-state remote flush traffic rr pays forever.
func TestFirstTouchMovesShiftedBands(t *testing.T) {
	const procs = 4
	run := func(placement string) (*System, *Result) {
		sys, err := NewSystem(Config{
			Procs:        procs,
			SegmentBytes: procs * 4096,
			Protocol:     "home",
			Placement:    placement,
		})
		if err != nil {
			t.Fatal(err)
		}
		base := sys.Alloc(procs * 4096)
		res := sys.Run(func(p *Proc) {
			u := (p.ID() + 1) % procs
			r := (p.ID() + 2) % procs
			for ph := 0; ph < 4; ph++ {
				p.WriteI64(base+u*4096, int64(100*ph+p.ID()))
				p.Barrier()
				_ = p.ReadI64(base + r*4096)
				p.Barrier()
			}
		})
		return sys, res
	}
	ft, ftRes := run("firsttouch")
	for u := 0; u < procs; u++ {
		want := (u + procs - 1) % procs // the writer of unit u
		if ft.homeOf(u) != want {
			t.Fatalf("unit %d homed at %d, want first writer %d", u, ft.homeOf(u), want)
		}
	}
	if ftRes.Rehomes != procs {
		t.Fatalf("Rehomes = %d, want %d bindings", ftRes.Rehomes, procs)
	}
	if ftRes.RehomeBytes != 0 {
		t.Fatalf("first-touch bindings priced %d bytes on the wire", ftRes.RehomeBytes)
	}
	rr, rrRes := run("rr")
	if rrRes.Rehomes != 0 {
		t.Fatalf("rr rehomed %d times", rrRes.Rehomes)
	}
	// After the binding barrier every flush is local; rr keeps flushing
	// remotely each phase.
	ftFlush := ft.net.CountsByKind()[simnet.HomeFlush].Messages
	rrFlush := rr.net.CountsByKind()[simnet.HomeFlush].Messages
	if ftFlush >= rrFlush {
		t.Fatalf("first-touch flushes (%d) not below rr's (%d)", ftFlush, rrFlush)
	}
	if rrRes.Messages <= ftRes.Messages {
		t.Fatalf("first-touch (%d msgs) did not beat rr (%d msgs) on shifted bands",
			ftRes.Messages, rrRes.Messages)
	}
	if rrRes.Time <= ftRes.Time {
		t.Fatalf("first-touch (%v) did not beat rr (%v) on shifted bands", ftRes.Time, rrRes.Time)
	}
}

// Migration chases a moved writer: after the write pattern rotates,
// the dominant-writer rule rehomes each unit to its new writer, the
// moves are priced as HomeMigrate exchanges carrying the page state,
// and the accounting ties out (Rehomes = priced moves; RehomeBytes =
// the exchanges' reply payloads).
func TestMigrateChasesWritersAndPricesMoves(t *testing.T) {
	const procs = 4
	sys, err := NewSystem(Config{
		Procs:        procs,
		SegmentBytes: procs * 4096,
		Protocol:     "home",
		Placement:    "migrate",
	})
	if err != nil {
		t.Fatal(err)
	}
	base := sys.Alloc(procs * 4096)
	res := sys.Run(func(p *Proc) {
		// Phases 0-3: processor p writes unit (p+1)%procs — homes must
		// migrate off the round-robin assignment to the writers.
		u := (p.ID() + 1) % procs
		for ph := 0; ph < 4; ph++ {
			p.WriteI64(base+u*4096, int64(100*ph+p.ID()))
			p.Barrier()
			var sum int64
			for w := 0; w < procs; w++ {
				sum += p.ReadI64(base + w*4096)
			}
			p.Barrier()
			_ = sum
		}
	})
	for u := 0; u < procs; u++ {
		want := (u + procs - 1) % procs
		if sys.homeOf(u) != want {
			t.Fatalf("unit %d homed at %d, want dominant writer %d", u, sys.homeOf(u), want)
		}
	}
	if res.Rehomes != procs {
		t.Fatalf("Rehomes = %d, want %d (one move per unit, then stable)", res.Rehomes, procs)
	}
	if res.RehomeBytes == 0 {
		t.Fatal("migration moved homes for free")
	}
	hm := sys.net.CountsByKind()[simnet.HomeMigrate]
	if hm.Messages != 2*procs {
		t.Fatalf("HomeMigrate messages = %d, want %d (one exchange per move)", hm.Messages, 2*procs)
	}
	if want := res.RehomeBytes + 16*procs; hm.Bytes != want {
		t.Fatalf("HomeMigrate bytes = %d, want reply payloads + request headers = %d", hm.Bytes, want)
	}

	// Stability: a second identical run on the reset System reproduces
	// the first exactly — no oscillation, same moves, same pricing.
	res2 := sys.Run(func(p *Proc) {
		u := (p.ID() + 1) % procs
		for ph := 0; ph < 4; ph++ {
			p.WriteI64(base+u*4096, int64(100*ph+p.ID()))
			p.Barrier()
			var sum int64
			for w := 0; w < procs; w++ {
				sum += p.ReadI64(base + w*4096)
			}
			p.Barrier()
			_ = sum
		}
	})
	if res2.Time != res.Time || res2.Messages != res.Messages || res2.Rehomes != res.Rehomes ||
		res2.RehomeBytes != res.RehomeBytes {
		t.Fatalf("migrate run not reproducible after Reset:\n  r1 = %+v\n  r2 = %+v", res, res2)
	}
}

// A stable single-writer pattern whose writer already matches the home
// never rehomes: migration only moves when the dominant writer is
// elsewhere.
func TestMigrateStableWhenWriterIsHome(t *testing.T) {
	sys, res := bandedRun(t, "migrate", 4)
	for u := 0; u < sys.NumUnits(); u++ {
		if sys.homeOf(u) != u {
			t.Fatalf("unit %d moved to %d", u, sys.homeOf(u))
		}
	}
	if res.Rehomes != 0 || res.RehomeBytes != 0 {
		t.Fatalf("stable pattern rehomed: %+v", res)
	}
}

// First-touch must bind to the unit's true first writer even when the
// adaptive policy switches the unit homeless→home at the very same
// barrier the binding evidence arrives (hysteresis 1): bindings are
// never deferred past their evidence, or the unit would bind to a
// *later* phase's first writer.
func TestFirstTouchBindsAtSwitchBarrier(t *testing.T) {
	sys, err := NewSystem(Config{
		Procs:           4,
		SegmentBytes:    2 * 4096,
		Protocol:        "adaptive",
		AdaptHysteresis: 1,
		AdaptQueueGate:  -1,
		Placement:       "firsttouch",
	})
	if err != nil {
		t.Fatal(err)
	}
	base := sys.Alloc(2 * 4096)
	res := sys.Run(func(p *Proc) {
		// Phase 0: only processors 2 and 3 write unit 1 — enough
		// concurrent writers to switch it at hysteresis 1, and the
		// causally first writer is processor 2.
		if p.ID() >= 2 {
			p.WriteI64(base+4096+p.ID()*8, int64(p.ID()))
		}
		p.Barrier()
		// Later phases: everyone writes, so a deferred binding would
		// resolve to processor 0 instead.
		for ph := 0; ph < 3; ph++ {
			p.WriteI64(base+4096+p.ID()*8, int64(10*ph+p.ID()))
			p.Barrier()
			_ = p.ReadI64(base + 4096)
			p.Barrier()
		}
	})
	if res.ProtocolSwitches == 0 {
		t.Fatalf("precondition: unit 1 must switch at hysteresis 1: %+v", res)
	}
	if got := sys.homeOf(1); got != 2 {
		t.Fatalf("unit 1 bound to %d, want its first writer 2", got)
	}
}

// Under a mobile placement the adaptive protocol's homeless→home
// switch migrates the home to the unit's last writer instead of
// pulling the unit image over the wire: same switches, zero
// HomeHandoff traffic, and the unit ends up homed at a writer.
func TestAdaptiveMobilePlacementCheapHandoff(t *testing.T) {
	run := func(placement string) (*System, *Result) {
		sys, err := NewSystem(Config{
			Procs:           4,
			SegmentBytes:    2 * 4096,
			Protocol:        "adaptive",
			AdaptHysteresis: 2,
			AdaptQueueGate:  -1,
			Placement:       placement,
		})
		if err != nil {
			t.Fatal(err)
		}
		base := sys.Alloc(2 * 4096)
		res := sys.Run(func(p *Proc) {
			for ph := 0; ph < 6; ph++ {
				p.WriteI64(base+p.ID()*8, int64(100*ph+p.ID()))
				p.Barrier()
				var sum int64
				for w := 0; w < 4; w++ {
					sum += p.ReadI64(base + w*8)
				}
				p.Barrier()
				_ = sum
			}
		})
		return sys, res
	}

	rrSys, rrRes := run("rr")
	if rrRes.SwitchedUnits == 0 || rrRes.HandoffBytes == 0 {
		t.Fatalf("precondition: rr run must switch and pay an image pull: %+v", rrRes)
	}
	if n := rrSys.net.CountsByKind()[simnet.HomeHandoff].Messages; n == 0 {
		t.Fatal("precondition: rr run must put HomeHandoff on the wire")
	}

	mgSys, mgRes := run("migrate")
	if mgRes.SwitchedUnits == 0 {
		t.Fatalf("migrate run did not switch: %+v", mgRes)
	}
	if mgRes.HandoffBytes != 0 {
		t.Fatalf("mobile placement still paid an image pull: %d handoff bytes", mgRes.HandoffBytes)
	}
	if n := mgSys.net.CountsByKind()[simnet.HomeHandoff].Messages; n != 0 {
		t.Fatalf("mobile placement sent %d HomeHandoff messages", n)
	}
	if mgRes.Rehomes == 0 {
		t.Fatal("home migration at the switch was not counted as a rehome")
	}
	if mgRes.HomeUnits == 0 {
		t.Fatalf("no unit ended home-owned: %+v", mgRes)
	}
	// The handoff cost itself is what drops; in this toy program the
	// rest of the traffic is identical up to where the home landed, so
	// the migrate run must not exceed the rr run's wire totals plus the
	// image pull it avoided.
	if mgRes.Bytes > rrRes.Bytes {
		t.Fatalf("mobile placement increased wire bytes: %d > %d", mgRes.Bytes, rrRes.Bytes)
	}
}
