package tmk

import "repro/internal/lrc"

// Sparse-mode write-notice bookkeeping.
//
// The dense reference engine applies every acquire's write notices
// eagerly: each learned interval is appended into the acquirer's
// per-unit missing-write lists (invalidator.AcquireUnit), so a barrier
// on n processors performs O(written units × n) map appends even for
// units most processors will never read. At 256+ processors that
// fan-out is the engine's hottest path by a wide margin.
//
// The sparse engine drops the per-processor lists entirely and keeps
// one global index instead: lrc.Store records, per unit, the published
// intervals that wrote it (Store.UnitLog). A processor reconstructs a
// unit's missing-write list lazily, at fault time, from the log — an
// acquire touches no per-unit state beyond the page-table invalidation
// and ProtOp charge the dense path also performs, so virtual time and
// wire traffic are unchanged while host time stops scaling with the
// processor count.
//
// Reconstruction is exact because "learned" has a per-entry test: the
// store hands intervals to acquirers in per-processor sequence ranges
// (DeltaInto), so interval (w, seq) has been delivered to p — and was
// appended to p's dense missing lists — if and only if p.vt[w] >= seq.
// Consumption ("a previous fetch on this unit already applied it") is
// tracked by a per-(processor, unit) cursor into the log: because
// publication happens before the synchronization that announces an
// interval proceeds, the log is real-time ordered, and everything a
// processor has learned is almost always a contiguous prefix. The rare
// exception — an interval learned through a lock chain while an
// earlier-published concurrent interval is still unknown — lands in a
// small spill list until the prefix catches up.

// fetchCursor is one processor's consumption state for one unit's
// publish log: entries below idx are consumed (or the processor's
// own), spill holds the consumed indices at or beyond idx, sorted
// ascending. Allocated lazily, only for units the processor faults on.
type fetchCursor struct {
	idx   int32
	spill []int32
}

// missingInto reconstructs unit u's unconsumed missing-write list — in
// publish order, which agrees with the dense lists' per-writer
// sequence order — into out, and marks every currently-learned log
// entry consumed. Callers treat a non-empty result exactly like a
// dense p.missing[u] snapshot; both fetch policies consume the whole
// list in the same call, so reconstruction and consumption fuse into
// one pass over the log's unconsumed suffix.
func (p *Proc) missingInto(u int, out []lrc.MissingWrite) []lrc.MissingWrite {
	out = out[:0]
	log := p.sys.store.UnitLog(u)
	c := p.fcur[u]
	start := 0
	if c != nil {
		start = int(c.idx)
	}
	if start >= len(log) {
		return out
	}
	if c == nil {
		c = &fetchCursor{}
		p.fcur[u] = c
	}
	fs := &p.fs
	newSpill := fs.spillScratch[:0]
	si := 0
	prefix := true
	idx := c.idx
	for j := start; j < len(log); j++ {
		iv := log[j]
		wasConsumed := false
		if si < len(c.spill) && c.spill[si] == int32(j) {
			si++
			wasConsumed = true
		}
		own := iv.ID.Proc == p.id
		if !own && !p.vt.KnowsInterval(iv.ID.Proc, iv.ID.Seq) {
			// Published but not yet learned (a concurrent
			// episode-mate): stays unconsumed for a later fetch.
			prefix = false
			continue
		}
		if !own && !wasConsumed {
			out = append(out, lrc.MissingWrite{Interval: iv})
		}
		if prefix {
			idx = int32(j + 1)
		} else {
			newSpill = append(newSpill, int32(j))
		}
	}
	c.idx = idx
	c.spill = append(c.spill[:0], newSpill...)
	fs.spillScratch = newSpill[:0]
	return out
}
