package tmk

import (
	"sort"

	"repro/internal/aggregate"
	"repro/internal/instrument"
	"repro/internal/lrc"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vc"
)

// Proc is one simulated processor: a goroutine-private replica of the
// shared segment, a software page table at consistency-unit granularity,
// LRC metadata, and a virtual clock. All methods must be called from the
// processor's own goroutine (inside Run's body).
type Proc struct {
	id  int
	sys *System

	clock sim.Clock
	rep   *mem.Replica
	pt    *mem.PageTable // indexed by unit, not page
	vt    vc.Time

	// Multiple-writer state for the current interval.
	twins      map[int][]mem.Twin // unit -> one twin per page of the unit
	writeOrder []int              // units twinned this interval, in order

	// missing[unit] lists unseen remote intervals that wrote the unit;
	// the unit stays invalid until they are fetched and applied.
	missing map[int][]lrc.MissingWrite

	// Dynamic aggregation state.
	tracker *aggregate.Tracker
	groups  *aggregate.Groups

	// Engine event counters.
	nFaults    int
	nTwins     int
	nDiffs     int
	nIntervals int
}

func newProc(s *System, id int) *Proc {
	p := &Proc{
		id:      id,
		sys:     s,
		rep:     mem.NewReplica(s.segBytes),
		pt:      mem.NewPageTable(s.numUnits),
		vt:      vc.New(s.cfg.Procs),
		twins:   make(map[int][]mem.Twin),
		missing: make(map[int][]lrc.MissingWrite),
	}
	// The segment starts zeroed and identical everywhere: readable.
	for u := 0; u < s.numUnits; u++ {
		p.pt.Set(u, mem.ReadOnly)
	}
	if s.cfg.Dynamic {
		p.tracker = aggregate.NewTracker()
		p.groups = aggregate.New(s.cfg.MaxGroupPages)
	}
	return p
}

// ID returns the processor number (0-based).
func (p *Proc) ID() int { return p.id }

// NProcs returns the number of processors in the system.
func (p *Proc) NProcs() int { return p.sys.cfg.Procs }

// Clock returns the processor's current virtual time.
func (p *Proc) Clock() sim.Duration { return p.clock.Now() }

// Compute charges n abstract compute operations to the processor's
// clock, standing in for non-memory application work.
func (p *Proc) Compute(n int) {
	p.clock.Advance(sim.Duration(n) * p.sys.cost.MemAccess)
}

func (p *Proc) unitOf(page int) int { return page / p.sys.cfg.UnitPages }

// --- access paths --------------------------------------------------------

// ReadF64 loads the float64 at word-aligned shared address a.
func (p *Proc) ReadF64(a mem.Addr) float64 {
	p.clock.Advance(p.sys.cost.MemAccess)
	if !p.pt.CanRead(p.unitOf(mem.PageOf(a))) {
		p.readFault(mem.PageOf(a))
	}
	if c := p.sys.col; c != nil {
		c.OnRead(p.id, a)
	}
	return p.rep.ReadF64(a)
}

// WriteF64 stores the float64 at word-aligned shared address a.
func (p *Proc) WriteF64(a mem.Addr, v float64) {
	p.clock.Advance(p.sys.cost.MemAccess)
	if u := p.unitOf(mem.PageOf(a)); !p.pt.CanWrite(u) {
		p.writeFault(u, mem.PageOf(a))
	}
	if c := p.sys.col; c != nil {
		c.OnWrite(p.id, a)
	}
	p.rep.WriteF64(a, v)
}

// ReadI64 loads the int64 at word-aligned shared address a.
func (p *Proc) ReadI64(a mem.Addr) int64 {
	p.clock.Advance(p.sys.cost.MemAccess)
	if !p.pt.CanRead(p.unitOf(mem.PageOf(a))) {
		p.readFault(mem.PageOf(a))
	}
	if c := p.sys.col; c != nil {
		c.OnRead(p.id, a)
	}
	return int64(p.rep.ReadWord(a))
}

// WriteI64 stores the int64 at word-aligned shared address a.
func (p *Proc) WriteI64(a mem.Addr, v int64) {
	p.clock.Advance(p.sys.cost.MemAccess)
	if u := p.unitOf(mem.PageOf(a)); !p.pt.CanWrite(u) {
		p.writeFault(u, mem.PageOf(a))
	}
	if c := p.sys.col; c != nil {
		c.OnWrite(p.id, a)
	}
	p.rep.WriteWord(a, uint64(v))
}

// --- fault handling ------------------------------------------------------

// writeFault models the protection trap on a write to a unit that is not
// ReadWrite: fetch current contents if invalid, then twin every page of
// the unit (the multiple-writer protocol's write detection).
func (p *Proc) writeFault(u, page int) {
	cost := p.sys.cost
	if p.pt.CanRead(u) {
		// Fresh trap; a write to an invalid unit is one trap that both
		// fetches (readFault below charges it) and twins.
		p.clock.Advance(cost.PageFault)
	} else {
		p.readFault(page)
	}
	up := p.sys.cfg.UnitPages
	tw := make([]mem.Twin, 0, up)
	for s := 0; s < up; s++ {
		tw = append(tw, mem.MakeTwin(p.rep.Page(u*up+s)))
		p.clock.Advance(cost.TwinPerPage)
		p.nTwins++
	}
	p.twins[u] = tw
	p.writeOrder = append(p.writeOrder, u)
	p.pt.Set(u, mem.ReadWrite)
	p.clock.Advance(cost.ProtOp)
}

// fetchItem is one page diff scheduled for application, keyed for causal
// ordering by its (latest contributing) source interval and attributed to
// the carrying exchange.
type fetchItem struct {
	page int
	d    mem.Diff
	msg  *instrument.DataMsg
	sum  int64
	prc  int
	sq   int32
}

// readFault models the protection trap on an access to an invalid unit.
// It determines the consistency unit (static) or page group (dynamic) to
// bring up to date, fetches the missing diffs — one exchange per
// concurrent writer, issued in parallel — applies them in causal order,
// and validates.
func (p *Proc) readFault(page int) {
	cost := p.sys.cost
	p.clock.Advance(cost.PageFault)
	p.nFaults++

	cfg := p.sys.cfg
	faultUnit := p.unitOf(page)

	// The set of units to fetch together.
	var units []int
	if cfg.Dynamic {
		// Units are single pages; fetch the page's group.
		p.tracker.Touch(page)
		if g := p.groups.GroupOf(page); g != nil {
			units = g
		} else {
			units = []int{page}
		}
	} else {
		units = []int{faultUnit}
	}

	// Gather missing (interval, unit) pairs per writer across all
	// fetched units. Each unit's missing list holds a given interval at
	// most once (in causal order), so pairs are distinct and no diff is
	// fetched twice. Also count distinct writers per unit: a unit whose
	// missing intervals all come from one writer is served coalesced
	// (TreadMarks' single-writer remedy for diff accumulation).
	type need struct {
		iv   *lrc.Interval
		unit int
	}
	needs := make(map[int][]need)
	unitWriters := make(map[int]int)
	var fetchUnits []int
	for _, u := range units {
		miss := p.missing[u]
		if len(miss) == 0 {
			continue
		}
		fetchUnits = append(fetchUnits, u)
		seen := make(map[int]bool)
		for _, mw := range miss {
			w := mw.Interval.ID.Proc
			needs[w] = append(needs[w], need{iv: mw.Interval, unit: u})
			seen[w] = true
		}
		unitWriters[u] = len(seen)
	}

	// One request/reply exchange per concurrent writer, in ascending
	// writer order for determinism; charged as the max (parallel fetch).
	writers := make([]int, 0, len(needs))
	for w := range needs {
		writers = append(writers, w)
	}
	sort.Ints(writers)

	var items []fetchItem
	var msgs []*instrument.DataMsg
	var maxCost sim.Duration
	for _, w := range writers {
		reqBytes := 16 + 8*len(needs[w])
		replyBytes := 0
		var wItems []fetchItem
		// Per page, the writer's diffs in interval order (needs[w]
		// preserves causal order, so same-writer diffs are seq-ordered),
		// each carrying its own interval's causal key.
		type pageAcc struct {
			items        []fetchItem
			coalesceable bool
		}
		perPage := make(map[int]*pageAcc)
		var pageOrder []int
		for _, n := range needs[w] {
			for _, pd := range n.iv.DiffsInUnit(n.unit, cfg.UnitPages) {
				acc := perPage[pd.Page]
				if acc == nil {
					acc = &pageAcc{coalesceable: unitWriters[n.unit] == 1}
					perPage[pd.Page] = acc
					pageOrder = append(pageOrder, pd.Page)
				}
				sum, prc, sq := n.iv.CausalKey()
				acc.items = append(acc.items, fetchItem{
					page: pd.Page, d: pd.D, sum: sum, prc: prc, sq: sq,
				})
			}
		}
		for _, page := range pageOrder {
			acc := perPage[page]
			if acc.coalesceable && len(acc.items) > 1 {
				ds := make([]mem.Diff, len(acc.items))
				for i, it := range acc.items {
					ds[i] = it.d
				}
				last := acc.items[len(acc.items)-1]
				last.d = mem.CoalesceDiffs(ds)
				replyBytes += last.d.WireBytes()
				wItems = append(wItems, last)
				continue
			}
			for _, it := range acc.items {
				replyBytes += it.d.WireBytes()
				wItems = append(wItems, it)
			}
		}
		reqID := p.sys.net.Send(simnet.DiffRequest, p.id, w, reqBytes)
		repID := p.sys.net.Send(simnet.DiffReply, w, p.id, replyBytes)
		var dm *instrument.DataMsg
		if p.sys.col != nil {
			dm = p.sys.col.NewDataMsg(reqID, repID, w, p.id)
			msgs = append(msgs, dm)
		}
		for i := range wItems {
			wItems[i].msg = dm
		}
		items = append(items, wItems...)
		if c := p.sys.net.ExchangeCost(reqBytes, replyBytes); c > maxCost {
			maxCost = c
		}
	}
	p.clock.Advance(maxCost)

	// Apply in causal order (monotone linearization of happens-before).
	// The sort must be stable: a coalesced item keeps only its writer's
	// latest key, and same-key items must retain per-writer list order.
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].sum != items[j].sum {
			return items[i].sum < items[j].sum
		}
		if items[i].prc != items[j].prc {
			return items[i].prc < items[j].prc
		}
		if items[i].sq != items[j].sq {
			return items[i].sq < items[j].sq
		}
		return items[i].page < items[j].page
	})
	for _, it := range items {
		it.d.Apply(p.rep.Page(it.page))
		p.clock.Advance(sim.Duration(it.d.WordCount()) * cost.ApplyPerWord)
		if p.sys.col != nil && it.msg != nil {
			p.sys.col.TagDiff(p.id, it.page, it.d, it.msg)
		}
	}

	// Validate. Static: the whole unit becomes readable. Dynamic: only
	// the faulted page is validated; prefetched group members keep
	// their updates but stay Invalid so the access pattern remains
	// observable (§4).
	for _, u := range fetchUnits {
		delete(p.missing, u)
	}
	if cfg.Dynamic {
		p.pt.Set(page, mem.ReadOnly)
		p.clock.Advance(cost.ProtOp)
	} else {
		p.pt.Set(faultUnit, mem.ReadOnly)
		p.clock.Advance(cost.ProtOp)
	}

	if p.sys.col != nil {
		p.sys.col.OnFault(p.id, page, msgs)
	}
}
