package tmk

import (
	"repro/internal/aggregate"
	"repro/internal/instrument"
	"repro/internal/lrc"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vc"
)

// Proc is one simulated processor: a goroutine-private replica of the
// shared segment, a software page table at consistency-unit granularity,
// LRC metadata, and a virtual clock. All methods must be called from the
// processor's own goroutine (inside Run's body).
type Proc struct {
	id  int
	sys *System

	clock sim.Clock
	rep   *mem.Replica
	pt    *mem.PageTable // indexed by unit, not page

	// tk is the processor's vector-time register: the dense working time
	// plus the deviation set relative to the current barrier epoch. vt
	// aliases tk.T — every dense read (store deltas, KnowsInterval
	// filtering) goes through vt, every mutation through tk so the
	// deviation bookkeeping stays exact.
	tk *vc.Tracked
	vt vc.Time

	// Multiple-writer state for the current interval.
	twins      map[int][]mem.Twin // unit -> one twin per page of the unit
	writeOrder []int              // units twinned this interval, in order

	// missing[unit] lists unseen remote intervals that wrote the unit;
	// the unit stays invalid until they are fetched and applied. Dense
	// reference mode only: the sparse engine reconstructs the same sets
	// at fault time from the store's per-unit publish log (missingFor),
	// so an acquire never touches per-unit bookkeeping for units the
	// processor will never read.
	missing map[int][]lrc.MissingWrite

	// fcur[unit] is the sparse engine's consumption cursor into the
	// store's per-unit publish log: entries below idx are consumed (or
	// the processor's own), spill holds consumed indices beyond idx —
	// intervals learned through a lock chain and fetched while
	// concurrent episode-mates were still unknown. Entries exist only
	// for units the processor has actually faulted on.
	fcur map[int]*fetchCursor

	// Dynamic aggregation state.
	tracker *aggregate.Tracker
	groups  *aggregate.Groups

	// Engine event counters.
	nFaults    int
	nTwins     int
	nDiffs     int
	nIntervals int

	// Reusable hot-path storage. Every buffer below is scratch that the
	// steady state recycles instead of reallocating: the engine's inner
	// loops (fault → fetch → apply, close → diff → publish, acquire →
	// delta) run allocation-free once these have grown to the workload's
	// high-water mark (see the AllocBudget tests).
	diffScr    mem.DiffScratch // closeInterval: diff encoding scratch
	twinFree   []mem.Twin      // free list of discarded twin pages
	twinLists  [][]mem.Twin    // free list of per-unit twin slices
	unitsBuf   []int           // closeInterval: units written
	diffsBuf   []lrc.PageDiff  // closeInterval: non-empty diffs
	deltaBuf   []*lrc.Interval // applyAcquire: store delta
	faultUnit  [1]int          // readFault: single-unit fetch list
	barrierCh  chan barrierGrant
	lockCh     chan lockGrant
	fs         fetchScratch  // homeless/home fetch scratch
	arena      vc.StampArena // sparse-stamp deviation storage (reset per trial)
	vtScratch  vc.Time       // applyAcquireStamp: dense materialization
	seqScratch []int32       // applyBarrierGrant: touched-entry targets
}

func newProc(s *System, id int) *Proc {
	// Sparse mode materializes replica page frames on first touch: a
	// 1024-processor build no longer pays nprocs × segment bytes up
	// front, only what each processor actually accesses. Dense reference
	// mode keeps the eager contiguous replica.
	var rep *mem.Replica
	if s.sparseMode() {
		rep = mem.NewLazyReplica(s.segBytes)
	} else {
		rep = mem.NewReplica(s.segBytes)
	}
	tk := vc.NewTracked(s.cfg.Procs)
	p := &Proc{
		id:      id,
		sys:     s,
		rep:     rep,
		pt:      mem.NewPageTable(s.numUnits),
		tk:      tk,
		vt:      tk.T,
		twins:   make(map[int][]mem.Twin),
		missing: make(map[int][]lrc.MissingWrite),
		fcur:    make(map[int]*fetchCursor),
	}
	// The segment starts zeroed and identical everywhere: readable.
	for u := 0; u < s.numUnits; u++ {
		p.pt.Set(u, mem.ReadOnly)
	}
	if s.cfg.Dynamic {
		p.tracker = aggregate.NewTracker()
		p.groups = aggregate.New(s.cfg.MaxGroupPages)
	}
	p.barrierCh = make(chan barrierGrant, 1)
	p.lockCh = make(chan lockGrant, 1)
	return p
}

// reset returns the processor to its post-newProc state while keeping
// every allocation — replica storage, page table, scratch buffers, twin
// free lists — so a multi-trial benchmark rebuilds no per-processor
// memory between trials.
func (p *Proc) reset() {
	p.clock = sim.Clock{}
	p.rep.Zero()
	p.tk.Rebase(&vc.Epoch{}) // zero time, empty deviation set, run-start epoch
	p.arena.Reset()
	for u, tw := range p.twins {
		p.twinFree = append(p.twinFree, tw...)
		p.twinLists = append(p.twinLists, tw[:0])
		delete(p.twins, u)
	}
	p.writeOrder = p.writeOrder[:0]
	for u := range p.missing {
		p.missing[u] = p.missing[u][:0]
	}
	for _, c := range p.fcur {
		c.idx = 0
		c.spill = c.spill[:0]
	}
	for u := 0; u < p.sys.numUnits; u++ {
		p.pt.Set(u, mem.ReadOnly)
	}
	if p.sys.cfg.Dynamic {
		p.tracker = aggregate.NewTracker()
		p.groups = aggregate.New(p.sys.cfg.MaxGroupPages)
	}
	p.nFaults, p.nTwins, p.nDiffs, p.nIntervals = 0, 0, 0, 0
}

// ID returns the processor number (0-based).
func (p *Proc) ID() int { return p.id }

// NProcs returns the number of processors in the system.
func (p *Proc) NProcs() int { return p.sys.cfg.Procs }

// Clock returns the processor's current virtual time.
func (p *Proc) Clock() sim.Duration { return p.clock.Now() }

// Compute charges n abstract compute operations to the processor's
// clock, standing in for non-memory application work.
func (p *Proc) Compute(n int) {
	p.clock.Advance(sim.Duration(n) * p.sys.cost.MemAccess)
}

func (p *Proc) unitOf(page int) int { return page / p.sys.cfg.UnitPages }

// --- access paths --------------------------------------------------------

// ReadF64 loads the float64 at word-aligned shared address a.
func (p *Proc) ReadF64(a mem.Addr) float64 {
	p.clock.Advance(p.sys.cost.MemAccess)
	if !p.pt.CanRead(p.unitOf(mem.PageOf(a))) {
		p.readFault(mem.PageOf(a))
	}
	if c := p.sys.col; c != nil {
		c.OnRead(p.id, a)
	}
	return p.rep.ReadF64(a)
}

// WriteF64 stores the float64 at word-aligned shared address a.
func (p *Proc) WriteF64(a mem.Addr, v float64) {
	p.clock.Advance(p.sys.cost.MemAccess)
	if u := p.unitOf(mem.PageOf(a)); !p.pt.CanWrite(u) {
		p.writeFault(u, mem.PageOf(a))
	}
	if c := p.sys.col; c != nil {
		c.OnWrite(p.id, a)
	}
	p.rep.WriteF64(a, v)
}

// ReadI64 loads the int64 at word-aligned shared address a.
func (p *Proc) ReadI64(a mem.Addr) int64 {
	p.clock.Advance(p.sys.cost.MemAccess)
	if !p.pt.CanRead(p.unitOf(mem.PageOf(a))) {
		p.readFault(mem.PageOf(a))
	}
	if c := p.sys.col; c != nil {
		c.OnRead(p.id, a)
	}
	return int64(p.rep.ReadWord(a))
}

// WriteI64 stores the int64 at word-aligned shared address a.
func (p *Proc) WriteI64(a mem.Addr, v int64) {
	p.clock.Advance(p.sys.cost.MemAccess)
	if u := p.unitOf(mem.PageOf(a)); !p.pt.CanWrite(u) {
		p.writeFault(u, mem.PageOf(a))
	}
	if c := p.sys.col; c != nil {
		c.OnWrite(p.id, a)
	}
	p.rep.WriteWord(a, uint64(v))
}

// --- fault handling ------------------------------------------------------

// writeFault models the protection trap on a write to a unit that is not
// ReadWrite: fetch current contents if invalid, then twin every page of
// the unit (the multiple-writer protocol's write detection).
func (p *Proc) writeFault(u, page int) {
	cost := p.sys.cost
	if p.pt.CanRead(u) {
		// Fresh trap; a write to an invalid unit is one trap that both
		// fetches (readFault below charges it) and twins.
		p.clock.Advance(cost.PageFault)
	} else {
		p.readFault(page)
	}
	up := p.sys.cfg.UnitPages
	var tw []mem.Twin
	if n := len(p.twinLists); n > 0 {
		tw, p.twinLists = p.twinLists[n-1][:0], p.twinLists[:n-1]
	} else {
		tw = make([]mem.Twin, 0, up)
	}
	for s := 0; s < up; s++ {
		var buf mem.Twin
		if n := len(p.twinFree); n > 0 {
			buf, p.twinFree = p.twinFree[n-1], p.twinFree[:n-1]
		}
		tw = append(tw, mem.MakeTwinInto(buf, p.rep.Page(u*up+s)))
		p.clock.Advance(cost.TwinPerPage)
		p.nTwins++
	}
	p.twins[u] = tw
	p.writeOrder = append(p.writeOrder, u)
	p.pt.Set(u, mem.ReadWrite)
	p.clock.Advance(cost.ProtOp)
}

// readFault models the protection trap on an access to an invalid unit.
// It determines the consistency unit (static) or page group (dynamic) to
// bring up to date, hands the stale units to the protocol's fetch
// policy, and validates.
func (p *Proc) readFault(page int) {
	cost := p.sys.cost
	if trc := p.sys.trc; trc != nil {
		trc.FaultBegin(p.id, page, p.unitOf(page), p.clock.Now())
	}
	p.clock.Advance(cost.PageFault)
	p.nFaults++

	cfg := p.sys.cfg
	faultUnit := p.unitOf(page)

	// The set of units to fetch together. The single-unit case reuses a
	// fixed one-element buffer on the Proc: read faults are the hottest
	// engine path and must not allocate.
	var units []int
	if cfg.Dynamic {
		// Units are single pages; fetch the page's group.
		p.tracker.Touch(page)
		if g := p.groups.GroupOf(page); g != nil {
			units = g
		} else {
			p.faultUnit[0] = page
			units = p.faultUnit[:]
		}
	} else {
		p.faultUnit[0] = faultUnit
		units = p.faultUnit[:]
	}

	// Each stale unit's owning protocol fetches its data (messages,
	// clock charges, replica updates) and clears its missing-write
	// state.
	msgs := p.fetch(units)

	// Validate. Static: the whole unit becomes readable. Dynamic: only
	// the faulted page is validated; prefetched group members keep
	// their updates but stay Invalid so the access pattern remains
	// observable (§4).
	if cfg.Dynamic {
		p.pt.Set(page, mem.ReadOnly)
		p.clock.Advance(cost.ProtOp)
	} else {
		p.pt.Set(faultUnit, mem.ReadOnly)
		p.clock.Advance(cost.ProtOp)
	}

	if trc := p.sys.trc; trc != nil {
		trc.FaultEnd(p.id, page, p.clock.Now())
	}
	if p.sys.col != nil {
		p.sys.col.OnFault(p.id, page, msgs)
	}
}

// fetch routes the stale units to each unit's owning protocol, in
// dispatch-table order. With one installed protocol (static
// configurations) this is a single call; under adaptive, a dynamic
// page group spanning both protocols is served in two passes, one per
// owner (the cross-owner fetches serialize on p's clock).
func (p *Proc) fetch(units []int) []*instrument.DataMsg {
	s := p.sys
	if len(s.protos) == 1 {
		return s.protos[0].Fetch(p, units)
	}
	var msgs []*instrument.DataMsg
	for i, proto := range s.protos {
		if sub := s.ownedUnits(units, i); len(sub) > 0 {
			msgs = append(msgs, proto.Fetch(p, sub)...)
		}
	}
	return msgs
}
