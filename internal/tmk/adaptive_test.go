package tmk

import (
	"testing"

	"repro/internal/simnet"
)

// adaptiveMixRun executes phases barrier phases on a 2-unit segment:
// every processor writes its own word of page 0 each phase (a
// multi-writer, false-shared unit), while processor 1 alone writes
// page 1 (a single-writer unit) and everyone reads both afterwards.
// The contention gate is disabled: these tests exercise the signature
// rule in isolation on the deterministic ideal network (the gate has
// its own ideal-vs-bus coverage below).
func adaptiveMixRun(t *testing.T, hysteresis, phases int) (*System, *Result) {
	t.Helper()
	sys, err := NewSystem(Config{
		Procs:           4,
		SegmentBytes:    2 * 4096,
		Protocol:        "adaptive",
		AdaptHysteresis: hysteresis,
		AdaptQueueGate:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := sys.Alloc(2 * 4096)
	res := sys.Run(func(p *Proc) {
		for ph := 0; ph < phases; ph++ {
			p.WriteI64(base+p.ID()*8, int64(100*ph+p.ID()))
			if p.ID() == 1 {
				p.WriteI64(base+4096, int64(ph))
			}
			p.Barrier()
			var sum int64
			for w := 0; w < 4; w++ {
				sum += p.ReadI64(base + w*8)
			}
			sum += p.ReadI64(base + 4096)
			p.Barrier()
			_ = sum
		}
	})
	return sys, res
}

// A sustained single-writer/multi-writer mix must migrate the
// multi-writer unit to the home engine and leave the single-writer
// unit homeless, with the handoff visible in the Result accounting and
// priced on the wire.
func TestAdaptiveSwitchesMultiWriterUnit(t *testing.T) {
	sys, res := adaptiveMixRun(t, 2, 6)

	if res.UnitSwitches[0] == 0 {
		t.Fatalf("multi-writer unit 0 never switched: %+v", res)
	}
	if res.UnitSwitches[1] != 0 {
		t.Fatalf("single-writer unit 1 switched %d times", res.UnitSwitches[1])
	}
	if res.SwitchedUnits != 1 || res.ProtocolSwitches != res.UnitSwitches[0] {
		t.Fatalf("switch accounting inconsistent: %+v", res)
	}
	if sys.unitProto[0] != homeIdx {
		t.Fatalf("unit 0 ended under %s, want home", sys.protoOf(0).Name())
	}
	if sys.unitProto[1] != homelessIdx {
		t.Fatalf("unit 1 ended under %s, want homeless", sys.protoOf(1).Name())
	}
	if res.HomeUnits != 1 {
		t.Fatalf("HomeUnits = %d, want 1", res.HomeUnits)
	}

	// The homeless→home handoff is a priced exchange: unit 0's home is
	// processor 0 and its last writer is not (all four wrote it), so
	// two HomeHandoff messages (request + reply) must be on the wire.
	hh := sys.net.CountsByKind()[simnet.HomeHandoff]
	if hh.Messages != 2 || hh.Bytes <= 4096 {
		t.Fatalf("HomeHandoff traffic = %+v, want one exchange carrying a page image", hh)
	}
}

// With hysteresis 1 the same program switches at the first multi-writer
// barrier — the threshold is a real knob.
func TestAdaptiveHysteresisOne(t *testing.T) {
	_, res := adaptiveMixRun(t, 1, 2)
	if res.UnitSwitches[0] == 0 {
		t.Fatalf("hysteresis 1 did not switch the multi-writer unit: %+v", res)
	}
}

// An oscillating signature — multi-writer on even phases, single-writer
// on odd — never produces two consecutive phases of contrary evidence,
// so the default hysteresis of 2 must never switch anything.
func TestAdaptiveHysteresisNoThrash(t *testing.T) {
	run := func(hysteresis int) *Result {
		sys, err := NewSystem(Config{
			Procs:           4,
			SegmentBytes:    4096,
			Protocol:        "adaptive",
			AdaptHysteresis: hysteresis,
			AdaptQueueGate:  -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		base := sys.Alloc(4096)
		return sys.Run(func(p *Proc) {
			for ph := 0; ph < 8; ph++ {
				if ph%2 == 0 {
					p.WriteI64(base+p.ID()*8, int64(ph)) // all four write
				} else if p.ID() == 0 {
					p.WriteI64(base, int64(ph)) // single writer
				}
				p.Barrier()
				_ = p.ReadI64(base + 8)
				p.Barrier()
			}
		})
	}
	if res := run(2); res.ProtocolSwitches != 0 {
		t.Fatalf("hysteresis 2 thrashed on an oscillating signature: %d switches", res.ProtocolSwitches)
	}
	// The same oscillation under hysteresis 1 does switch — the
	// stability above comes from the threshold, not from the signature
	// being invisible.
	if res := run(1); res.ProtocolSwitches == 0 {
		t.Fatal("hysteresis 1 saw no evidence at all; the no-thrash run proves nothing")
	}
}

// A negative hysteresis is a configuration error, and the adaptive
// protocol resolves through Config and dsm-style defaults.
func TestAdaptiveConfigValidation(t *testing.T) {
	if _, err := NewSystem(Config{Protocol: "adaptive", AdaptHysteresis: -1}); err == nil {
		t.Fatal("negative hysteresis accepted")
	}
	sys, err := NewSystem(Config{Protocol: "Adaptive"})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Protocol() != "adaptive" {
		t.Fatalf("Protocol() = %q", sys.Protocol())
	}
	if sys.policy.hysteresis != DefaultAdaptHysteresis {
		t.Fatalf("default hysteresis = %d, want %d", sys.policy.hysteresis, DefaultAdaptHysteresis)
	}
	// Reset rebuilds the policy and dispatch from scratch.
	_, res := adaptiveMixRun(t, 1, 2)
	if res.ProtocolSwitches == 0 {
		t.Fatal("precondition: run must switch")
	}
}

// Values written around switches stay correct: the mix run's reads are
// verified in-body (any staleness would surface as a wrong sum in a
// longer phase pattern); here we assert the run is repeatable on one
// System — Reset must clear the dispatch table, the home log, and the
// policy streaks, so trial 2 reproduces trial 1 exactly.
func TestAdaptiveResetDeterminism(t *testing.T) {
	sys, err := NewSystem(Config{
		Procs:           4,
		SegmentBytes:    2 * 4096,
		Protocol:        "adaptive",
		AdaptHysteresis: 2,
		AdaptQueueGate:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := sys.Alloc(2 * 4096)
	body := func(p *Proc) {
		for ph := 0; ph < 5; ph++ {
			p.WriteI64(base+p.ID()*8, int64(ph+p.ID()))
			p.Barrier()
			_ = p.ReadI64(base + ((p.ID()+1)%4)*8)
			p.Barrier()
		}
	}
	r1 := sys.Run(body)
	r2 := sys.Run(body)
	if r1.Time != r2.Time || r1.Messages != r2.Messages || r1.Bytes != r2.Bytes {
		t.Fatalf("adaptive run not reproducible after Reset:\n  r1 = %+v\n  r2 = %+v", r1, r2)
	}
	if r1.ProtocolSwitches != r2.ProtocolSwitches {
		t.Fatalf("switch counts differ across Reset: %d vs %d", r1.ProtocolSwitches, r2.ProtocolSwitches)
	}
	if r1.ProtocolSwitches == 0 {
		t.Fatal("precondition: the all-writers page must switch to home")
	}
}
