package tmk_test

import (
	"runtime"
	"testing"

	"repro/internal/apps"
	_ "repro/internal/apps/all"
	"repro/internal/tmk"
	"repro/internal/trace"
)

// trialMallocs runs one trial on an already-warm system and returns
// the number of heap allocations it performed.
func trialMallocs(sys *tmk.System, body func(*tmk.Proc)) uint64 {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	sys.Run(body)
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestAllocBudgetSteadyStateRun pins the whole-engine steady-state
// allocation budget: after a cold trial has sized every per-processor
// scratch structure (twin free lists, diff scratch, fetch index
// tables, delta buffers), a further homeless jacobi trial on the
// reused System must stay under 700 heap allocations.
//
// The pre-scratch engine measured 7226 mallocs (5.9 MB) for the same
// trial; the rebuilt inner loops measure ~383 (0.75 MB). The 700
// ceiling pins the >10× reduction with headroom for scheduler noise —
// what remains is goroutine startup, interval records retained by the
// published store (they must outlive the trial), and the trial's
// Result.
func TestAllocBudgetSteadyStateRun(t *testing.T) {
	e, ok := apps.Lookup("jacobi", "small")
	if !ok {
		t.Fatal("jacobi/small is not registered")
	}
	w := e.Make(8)
	sys, err := apps.NewSystem(w, tmk.Config{Procs: 8, UnitPages: 1, Protocol: "homeless"})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(w.Body) // cold: sizes the scratch
	sys.Run(w.Body) // settle free lists at their steady population

	// Take the minimum of a few trials: a GC mid-run or an unlucky
	// scheduling can only add allocations, never hide any.
	best := trialMallocs(sys, w.Body)
	for i := 0; i < 2; i++ {
		if m := trialMallocs(sys, w.Body); m < best {
			best = m
		}
	}
	if err := w.Check(); err != nil {
		t.Fatal(err)
	}
	const budget = 700
	if best > budget {
		t.Errorf("steady-state homeless jacobi trial: %d mallocs, budget %d", best, budget)
	}
}

// TestAllocBudgetCaptureRun pins the same steady-state budget with
// MemSink capture on — the configuration every derived-sweep base cell
// runs under. A reused sink's Reset keeps its column capacity, so
// capture must add locking, not allocation: the budget is the plain
// run's 700 plus slack for the forced pricing-lock path, nowhere near
// the ~100k events a trial captures.
func TestAllocBudgetCaptureRun(t *testing.T) {
	e, ok := apps.Lookup("jacobi", "small")
	if !ok {
		t.Fatal("jacobi/small is not registered")
	}
	w := e.Make(8)
	ms := trace.NewMemSink()
	sys, err := apps.NewSystem(w, tmk.Config{Procs: 8, UnitPages: 1, Protocol: "homeless", Sink: ms})
	if err != nil {
		t.Fatal(err)
	}
	trial := func() uint64 {
		ms.Reset()
		return trialMallocs(sys, w.Body)
	}
	trial() // cold: sizes engine scratch and sink columns
	trial() // settle free lists

	best := trial()
	for i := 0; i < 2; i++ {
		if m := trial(); m < best {
			best = m
		}
	}
	if err := w.Check(); err != nil {
		t.Fatal(err)
	}
	if !ms.Ended() || ms.Len() == 0 {
		t.Fatalf("capture incomplete: ended %v, %d events", ms.Ended(), ms.Len())
	}
	const budget = 800
	if best > budget {
		t.Errorf("steady-state captured jacobi trial: %d mallocs, budget %d", best, budget)
	}
}
