package tmk

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lrc"
	"repro/internal/simnet"
	"repro/internal/vc"
)

// Placement decides the home processor of every consistency unit for
// the home-based engines: the initial assignment at construction, and
// an optional rehoming decision at each barrier. The home table itself
// is System-owned per-unit state (homeTable, like the protocol
// dispatch table), so the static home protocol and the adaptive hybrid
// share one rehoming path; a Placement only supplies the policy.
//
// Placement instances serve one System build (Reset constructs fresh
// ones) and are consulted only while every processor is blocked in a
// barrier, so they need no internal synchronization.
type Placement interface {
	// Name returns the registry name ("rr", "block", "firsttouch",
	// "migrate").
	Name() string

	// InitialHome returns unit u's home at construction.
	InitialHome(u int) int

	// Rehome is consulted at a barrier for every unit written during
	// the phase that just ended: given the unit, its current home, and
	// the phase's writer evidence, it returns the unit's home for the
	// next phase and whether the move transfers home state over the
	// wire (a priced exchange from the old home) or is a free binding
	// (first-touch resolution, which assigns a home that never held
	// state worth moving). Returning home == cur means no move.
	Rehome(u, cur int, ev PhaseWriters) (home int, transfer bool)

	// MayRehome reports whether Rehome can ever move a home. A policy
	// returning false ("rr", "block") costs nothing at barriers: no
	// rehoming driver is installed and no phase evidence is distilled
	// for it — the pre-placement-layer engine's exact behavior.
	MayRehome() bool

	// Mobile reports whether the policy may move homes after
	// construction. The adaptive protocol uses it to cheapen its
	// homeless→home handoff: under a mobile placement the home migrates
	// to the unit's last writer — where the image already lives — so no
	// image travels; under a static placement the (fixed) home must
	// pull the image from the last writer (DESIGN.md §8, §9).
	Mobile() bool
}

// PhaseWriters is one unit's writer evidence for the barrier phase
// that just ended, extracted from the interval store's causally sorted
// delta — deterministic regardless of goroutine scheduling.
type PhaseWriters struct {
	// Phase is the 1-based barrier episode that just ended.
	Phase int
	// First and Last are the causally first and last processors to
	// write the unit this phase.
	First int
	Last  int
	// Dominant is the processor that closed the most intervals on the
	// unit this phase (ties resolved toward the lowest processor id).
	Dominant int
	// Writers is the number of distinct writing processors, and
	// Intervals the number of intervals closed on the unit.
	Writers   int
	Intervals int
}

// DefaultPlacement is the paper-era static assignment: round-robin.
const DefaultPlacement = "rr"

// A placement factory builds a policy instance for one System build.
var placementFactories = map[string]func(nprocs, nunits int) Placement{}

// RegisterPlacement adds a placement factory under a (case-insensitive)
// name. Called from init; a duplicate name is a programming error.
func RegisterPlacement(name string, factory func(nprocs, nunits int) Placement) {
	key := strings.ToLower(name)
	if key == "" || factory == nil {
		panic("tmk: incomplete placement registration")
	}
	if _, dup := placementFactories[key]; dup {
		panic(fmt.Sprintf("tmk: duplicate placement registration %q", key))
	}
	placementFactories[key] = factory
}

// PlacementNames returns the registered placement names, sorted.
func PlacementNames() []string {
	out := make([]string, 0, len(placementFactories))
	for name := range placementFactories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// KnownPlacement reports whether name (case-insensitive) is registered.
func KnownPlacement(name string) bool {
	_, ok := placementFactories[strings.ToLower(name)]
	return ok
}

func init() {
	RegisterPlacement("rr", func(nprocs, nunits int) Placement {
		return rrPlacement{nprocs: nprocs}
	})
	RegisterPlacement("block", func(nprocs, nunits int) Placement {
		return blockPlacement{nprocs: nprocs, nunits: nunits}
	})
	RegisterPlacement("firsttouch", func(nprocs, nunits int) Placement {
		return &firstTouchPlacement{nprocs: nprocs, resolved: make([]bool, nunits)}
	})
	RegisterPlacement("migrate", func(nprocs, nunits int) Placement {
		return &migratePlacement{
			nprocs:  nprocs,
			lastDom: make([]int32, nunits),
			streak:  make([]uint8, nunits),
		}
	})
}

// rrPlacement is the paper-era default: unit u lives on processor
// u % nprocs, forever. Bit-identical to the pre-placement engine.
type rrPlacement struct{ nprocs int }

func (rrPlacement) Name() string            { return "rr" }
func (p rrPlacement) InitialHome(u int) int { return u % p.nprocs }
func (rrPlacement) Rehome(u, cur int, ev PhaseWriters) (int, bool) {
	return cur, false
}
func (rrPlacement) MayRehome() bool { return false }
func (rrPlacement) Mobile() bool    { return false }

// blockPlacement assigns contiguous unit ranges to processors —
// nprocs nearly equal bands, matching the banded data decompositions
// most of the paper's applications use.
type blockPlacement struct{ nprocs, nunits int }

func (blockPlacement) Name() string { return "block" }
func (p blockPlacement) InitialHome(u int) int {
	return u * p.nprocs / p.nunits
}
func (blockPlacement) Rehome(u, cur int, ev PhaseWriters) (int, bool) {
	return cur, false
}
func (blockPlacement) MayRehome() bool { return false }
func (blockPlacement) Mobile() bool    { return false }

// firstTouchPlacement starts from the round-robin assignment and binds
// each unit, once, to the causally first processor that wrote it —
// resolved deterministically at the first barrier after the unit's
// first write (reads do not publish intervals, so "first toucher"
// means first writer; the §5.4 applications write what they own). The
// binding is free: it is an assignment, not a migration — the real
// systems it models bind the home at the first fault, before any home
// state exists (the provisional home's flushes of the resolving phase
// are the one-phase distortion DESIGN.md §9 accounts for).
type firstTouchPlacement struct {
	nprocs   int
	resolved []bool
}

func (*firstTouchPlacement) Name() string            { return "firsttouch" }
func (p *firstTouchPlacement) InitialHome(u int) int { return u % p.nprocs }
func (p *firstTouchPlacement) Rehome(u, cur int, ev PhaseWriters) (int, bool) {
	if p.resolved[u] {
		return cur, false
	}
	p.resolved[u] = true
	return ev.First, false
}
func (*firstTouchPlacement) MayRehome() bool { return true }
func (*firstTouchPlacement) Mobile() bool    { return false }

// migrateHysteresis is the number of consecutive evidence phases the
// same non-home processor must dominate a unit's writes before the
// unit's home migrates there. One-phase dominance is noise — an
// initialization sweep, a boundary exchange — and each move costs a
// home-state transfer on the wire, so migration demands the same
// stability of evidence the adaptive protocol's switch rule does
// (DefaultAdaptHysteresis).
const migrateHysteresis = 2

// migratePlacement is JIAJIA-style home migration: homes start
// round-robin (the paper-era assignment), and a unit whose phase
// writes were dominated by the same processor — not its current home —
// for migrateHysteresis consecutive evidence phases moves there, the
// move priced as a wire transfer of the unit's home state (the new
// home pulls the versioned image from the old home). Homes chase the
// writers, so sustained single-writer phases make that writer's
// flushes local, while alternating-writer units (stencil boundaries)
// never show stable dominance and stay put.
type migratePlacement struct {
	nprocs  int
	lastDom []int32
	streak  []uint8
}

func (*migratePlacement) Name() string            { return "migrate" }
func (p *migratePlacement) InitialHome(u int) int { return u % p.nprocs }
func (p *migratePlacement) Rehome(u, cur int, ev PhaseWriters) (int, bool) {
	if ev.Dominant == cur {
		p.streak[u] = 0
		return cur, false
	}
	if int(p.lastDom[u]) != ev.Dominant {
		p.lastDom[u] = int32(ev.Dominant)
		p.streak[u] = 1
	} else if p.streak[u] < migrateHysteresis {
		p.streak[u]++
	}
	if p.streak[u] < migrateHysteresis {
		return cur, false
	}
	p.streak[u] = 0
	return ev.Dominant, true
}
func (*migratePlacement) MayRehome() bool { return true }
func (*migratePlacement) Mobile() bool    { return true }

// --- the System-side rehoming driver ---------------------------------------

// rehomeMove is one scheduled home-state transfer: the new home pulls
// unit's versioned image (bytes on the wire) from the old home — or,
// for an adaptive ownership handoff, from the unit's last writer.
type rehomeMove struct {
	unit  int
	from  int // the processor holding the state
	bytes int // the state's wire size
}

// settleMoves pays for scheduled home-state moves on p's post-barrier
// clock: one request/reply exchange of the given kind per move, from p
// (the new home) to the holder. The state itself stays in the shared
// versioned log (data moves through shared structures, timing through
// clock charges — DESIGN.md §2); a move whose holder is p itself is a
// local copy, free of messages.
func settleMoves(p *Proc, kind simnet.MsgKind, moves []rehomeMove) {
	for _, m := range moves {
		if m.from == p.id {
			continue
		}
		_, _, xt := p.sys.net.SendExchange(kind, kind, p.id, m.from, 16, m.bytes, p.clock.Now())
		p.clock.Advance(xt.Total())
	}
}

// rehomer drives barrier-time home moves for the installed home-based
// engine: it distills the phase's writer evidence per unit, consults
// the placement policy, mutates the System home table (race-free: every
// processor is blocked in the barrier), and schedules the priced
// transfers the moved-to processors pay after the release. It is
// installed whenever a home-based engine is (protocols "home" and
// "adaptive"); under "rr" it is a no-op by policy.
type rehomer struct {
	sys   *System
	home  *homeProtocol
	phase int
	// pending[proc] holds the home-state transfers proc must pay for
	// after the current barrier releases (proc is the new home).
	pending [][]rehomeMove
}

func newRehomer(s *System, home *homeProtocol) *rehomer {
	return &rehomer{sys: s, home: home, pending: make([][]rehomeMove, s.cfg.Procs)}
}

// atBarrier applies the placement policy to every unit written during
// the phase that just ended. delta is the store's causally sorted
// interval delta for the phase. Called with the barrier mutex held,
// after the adaptive policy (if any) re-pointed units, and before any
// grant is sent.
func (r *rehomer) atBarrier(merged vc.Time, delta []*lrc.Interval) {
	r.phase++
	if len(delta) == 0 {
		return
	}
	s := r.sys

	// Distill each written unit's evidence from the causally sorted
	// delta: first/last occurrence and per-processor interval counts.
	type acc struct {
		ev     PhaseWriters
		counts map[int]int
	}
	byUnit := make(map[int]*acc)
	for _, iv := range delta {
		for _, u := range iv.Units {
			a := byUnit[u]
			if a == nil {
				a = &acc{ev: PhaseWriters{Phase: r.phase, First: iv.ID.Proc}, counts: make(map[int]int)}
				byUnit[u] = a
			}
			a.ev.Last = iv.ID.Proc
			a.ev.Intervals++
			a.counts[iv.ID.Proc]++
		}
	}

	// Ascending unit order keeps the rehome schedule — and with it the
	// message log — deterministic.
	mobile := s.placement.Mobile()
	for u := 0; u < s.numUnits; u++ {
		a := byUnit[u]
		if a == nil {
			continue
		}
		// A mobile policy chases live home state, so it is consulted
		// only for units the home engine currently owns and the
		// adaptive policy did not just re-point: a freshly claimed unit
		// was placed at its last writer by the switch itself, a freshly
		// relinquished (or still-homeless) one has no home state worth
		// chasing — and skipping the consult keeps the policy's
		// dominance streaks from being consumed on decisions that could
		// not apply. Binding policies (first-touch) are always
		// consulted: a binding is free, valid for homeless-owned units
		// (it decides where a later switch homes them), and must see
		// the unit's true first-write evidence even when the adaptive
		// policy switched the unit at this same barrier.
		if mobile && (!s.unitIsHome(u) || (s.policy != nil && s.policy.justSwitched[u])) {
			continue
		}
		a.ev.Writers = len(a.counts)
		best, bestN := -1, 0
		for pr := 0; pr < s.cfg.Procs; pr++ {
			if n := a.counts[pr]; n > bestN {
				best, bestN = pr, n
			}
		}
		a.ev.Dominant = best

		cur := s.homeOf(u)
		nh, transfer := s.placement.Rehome(u, cur, a.ev)
		if nh == cur || nh < 0 || nh >= s.cfg.Procs {
			continue
		}
		if transfer && !s.unitIsHome(u) {
			// No live home state to move (a non-mobile policy asked for
			// a transfer on a homeless-owned unit): nothing to price,
			// nothing to decide.
			continue
		}
		s.homeTable[u] = int32(nh)
		s.nRehomes++
		bytes := 0
		if transfer {
			// The new home pulls the unit's versioned state from the
			// old one: priced as one exchange after the release,
			// carrying the unit's pages reconstructed at the barrier's
			// merged time (every flush in the log is covered by it).
			for pg := u * s.cfg.UnitPages; pg < (u+1)*s.cfg.UnitPages; pg++ {
				bytes += r.home.pageImage(pg, merged).WireBytes()
			}
			s.nRehomeBytes += bytes
			r.pending[nh] = append(r.pending[nh], rehomeMove{unit: u, from: cur, bytes: bytes})
		}
		if s.trc != nil {
			s.trc.Rehome(u, cur, nh, bytes, transfer)
		}
	}
}

// settle pays for the home-state transfers assigned to p at the
// barrier that just released: one HomeMigrate exchange per moved unit,
// from the new home to the old one (settleMoves).
func (r *rehomer) settle(p *Proc) {
	moves := r.pending[p.id]
	if len(moves) == 0 {
		return
	}
	r.pending[p.id] = nil
	settleMoves(p, simnet.HomeMigrate, moves)
}
