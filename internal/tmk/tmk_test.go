package tmk

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/simnet"
)

// mustSystem builds a system from a config that must be valid.
func mustSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem(%+v): %v", cfg, err)
	}
	return s
}

// run builds a system and executes body on every processor.
func run(t *testing.T, cfg Config, body func(p *Proc)) *Result {
	t.Helper()
	cfg.Collect = true
	return mustSystem(t, cfg).Run(body)
}

func wordAddr(page, word int) mem.Addr {
	return mem.PageBase(page) + word*mem.WordSize
}

func TestConfigDefaults(t *testing.T) {
	s := mustSystem(t, Config{SegmentBytes: 100})
	cfg := s.Config()
	if cfg.Procs != 8 || cfg.UnitPages != 1 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if s.SegmentBytes() != mem.PageSize {
		t.Fatalf("segment = %d", s.SegmentBytes())
	}
}

func TestDynamicRequiresUnitOne(t *testing.T) {
	if _, err := NewSystem(Config{Dynamic: true, UnitPages: 2}); err == nil {
		t.Fatal("expected error for dynamic aggregation with UnitPages > 1")
	}
}

func TestUnknownNetworkIsError(t *testing.T) {
	if _, err := NewSystem(Config{Network: "token-ring"}); err == nil {
		t.Fatal("expected error for unknown network model")
	}
	s := mustSystem(t, Config{Network: "BUS"}) // case-insensitive
	if s.Network() != "bus" || s.Config().Network != "bus" {
		t.Fatalf("network = %q / %q, want bus", s.Network(), s.Config().Network)
	}
	if def := mustSystem(t, Config{}); def.Network() != "ideal" {
		t.Fatalf("default network = %q, want ideal", def.Network())
	}
}

func TestSegmentRoundsToUnitMultiple(t *testing.T) {
	s := mustSystem(t, Config{SegmentBytes: 3 * mem.PageSize, UnitPages: 2})
	if s.NumPages() != 4 || s.NumUnits() != 2 {
		t.Fatalf("pages=%d units=%d", s.NumPages(), s.NumUnits())
	}
}

func TestAlloc(t *testing.T) {
	s := mustSystem(t, Config{SegmentBytes: 4 * mem.PageSize})
	a := s.Alloc(10)
	b := s.Alloc(8)
	if a != 0 || b != 16 {
		t.Fatalf("a=%d b=%d (want word alignment)", a, b)
	}
	c := s.AllocPages(2)
	if c != mem.PageSize {
		t.Fatalf("AllocPages = %d, want page aligned %d", c, mem.PageSize)
	}
}

func TestAllocOverflowPanics(t *testing.T) {
	s := mustSystem(t, Config{SegmentBytes: mem.PageSize})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Alloc(2 * mem.PageSize)
}

func TestTryAllocErrors(t *testing.T) {
	s := mustSystem(t, Config{SegmentBytes: mem.PageSize})
	if _, err := s.TryAlloc(2 * mem.PageSize); err == nil {
		t.Fatal("expected out-of-memory error")
	}
	if _, err := s.TryAlloc(-1); err == nil {
		t.Fatal("expected negative-size error")
	}
	if _, err := s.TryAllocPages(2); err == nil {
		t.Fatal("expected out-of-memory error from TryAllocPages")
	}
	// A failed allocation must not consume segment space.
	if a, err := s.TryAlloc(mem.PageSize); err != nil || a != 0 {
		t.Fatalf("TryAlloc after failures = %d, %v", a, err)
	}
}

// --- LRC litmus tests -----------------------------------------------------

// Message passing through a barrier: p0's write is visible to p1 after
// the barrier, with exactly one diff exchange.
func TestBarrierMessagePassing(t *testing.T) {
	var got float64
	res := run(t, Config{Procs: 2, SegmentBytes: mem.PageSize}, func(p *Proc) {
		if p.ID() == 0 {
			p.WriteF64(0, 42.5)
		}
		p.Barrier()
		if p.ID() == 1 {
			got = p.ReadF64(0)
		}
		p.Barrier()
	})
	if got != 42.5 {
		t.Fatalf("p1 read %v, want 42.5", got)
	}
	if res.Stats.Exchanges != 1 {
		t.Fatalf("exchanges = %d, want 1", res.Stats.Exchanges)
	}
	if res.Stats.Messages.Useless != 0 {
		t.Fatalf("useless msgs = %d, want 0", res.Stats.Messages.Useless)
	}
	// 2 barriers × 2 procs × (arrive+release) + req + reply = 10.
	if res.Messages != 10 {
		t.Fatalf("total messages = %d, want 10", res.Messages)
	}
	if res.Faults != 1 {
		t.Fatalf("faults = %d, want 1", res.Faults)
	}
}

// Message passing through a lock.
func TestLockMessagePassing(t *testing.T) {
	var got float64
	run(t, Config{Procs: 2, SegmentBytes: mem.PageSize, Locks: 1}, func(p *Proc) {
		if p.ID() == 0 {
			p.Lock(0)
			p.WriteF64(8, 7.25)
			p.Unlock(0)
		}
		p.Barrier() // order the lock acquisitions
		if p.ID() == 1 {
			p.Lock(0)
			got = p.ReadF64(8)
			p.Unlock(0)
		}
	})
	if got != 7.25 {
		t.Fatalf("p1 read %v, want 7.25", got)
	}
}

// Lock-based mutual exclusion: concurrent increments never lose updates.
func TestLockCounterIncrements(t *testing.T) {
	const procs, per = 4, 25
	var got int64
	run(t, Config{Procs: procs, SegmentBytes: mem.PageSize, Locks: 1}, func(p *Proc) {
		for i := 0; i < per; i++ {
			p.Lock(0)
			v := p.ReadI64(0)
			p.WriteI64(0, v+1)
			p.Unlock(0)
		}
		p.Barrier()
		if p.ID() == 0 {
			got = p.ReadI64(0)
		}
	})
	if got != procs*per {
		t.Fatalf("counter = %d, want %d", got, procs*per)
	}
}

// Multiple-writer protocol: two concurrent writers to disjoint halves of
// one page; a third processor sees both after the barrier.
func TestMultipleWritersMerge(t *testing.T) {
	var top, bottom float64
	res := run(t, Config{Procs: 3, SegmentBytes: mem.PageSize}, func(p *Proc) {
		switch p.ID() {
		case 0:
			p.WriteF64(wordAddr(0, 0), 1.5)
		case 1:
			p.WriteF64(wordAddr(0, 256), 2.5)
		}
		p.Barrier()
		if p.ID() == 2 {
			top = p.ReadF64(wordAddr(0, 0))
			bottom = p.ReadF64(wordAddr(0, 256))
		}
		p.Barrier()
	})
	if top != 1.5 || bottom != 2.5 {
		t.Fatalf("merge failed: top=%v bottom=%v", top, bottom)
	}
	// One fault, two concurrent writers: signature bucket 2.
	b := res.Stats.Signature[2]
	if b == nil || b.Faults != 1 {
		t.Fatalf("signature = %+v", res.Stats.Signature)
	}
	if b.UsefulMsgs != 4 || b.UselessMsgs != 0 {
		t.Fatalf("bucket 2 = %+v (both exchanges were read)", b)
	}
}

// The paper's §2 useless-message example: p0 and p1 exhibit write-write
// false sharing; p2 reads only p0's half, so the exchange with p1 is
// useless (2 useless messages).
func TestUselessMessagesFromWriteWriteFalseSharing(t *testing.T) {
	res := run(t, Config{Procs: 3, SegmentBytes: mem.PageSize}, func(p *Proc) {
		switch p.ID() {
		case 0:
			for w := 0; w < 256; w++ {
				p.WriteF64(wordAddr(0, w), 1.0)
			}
		case 1:
			for w := 256; w < 512; w++ {
				p.WriteF64(wordAddr(0, w), 2.0)
			}
		}
		p.Barrier()
		if p.ID() == 2 {
			for w := 0; w < 256; w++ {
				p.ReadF64(wordAddr(0, w))
			}
		}
		p.Barrier()
	})
	if res.Stats.Messages.Useless != 2 {
		t.Fatalf("useless msgs = %d, want 2 (request+reply with p1)", res.Stats.Messages.Useless)
	}
	if res.Stats.UselessBytes != 256*mem.WordSize {
		t.Fatalf("useless bytes = %d, want %d", res.Stats.UselessBytes, 256*mem.WordSize)
	}
	if res.Stats.PiggybackedBytes != 0 {
		t.Fatalf("piggybacked = %d, want 0", res.Stats.PiggybackedBytes)
	}
	b := res.Stats.Signature[2]
	if b == nil || b.UsefulMsgs != 2 || b.UselessMsgs != 2 {
		t.Fatalf("signature bucket 2 = %+v", b)
	}
}

// The paper's §2 useless-data example: p0 writes a whole page, p1 reads
// only the top half; the bottom half is piggybacked useless data.
func TestPiggybackedUselessData(t *testing.T) {
	res := run(t, Config{Procs: 2, SegmentBytes: mem.PageSize}, func(p *Proc) {
		if p.ID() == 0 {
			for w := 0; w < 512; w++ {
				p.WriteF64(wordAddr(0, w), 3.0)
			}
		}
		p.Barrier()
		if p.ID() == 1 {
			for w := 0; w < 256; w++ {
				p.ReadF64(wordAddr(0, w))
			}
		}
		p.Barrier()
	})
	if res.Stats.Messages.Useless != 0 {
		t.Fatalf("useless msgs = %d, want 0", res.Stats.Messages.Useless)
	}
	if res.Stats.UsefulBytes != 256*mem.WordSize {
		t.Fatalf("useful bytes = %d", res.Stats.UsefulBytes)
	}
	if res.Stats.PiggybackedBytes != 256*mem.WordSize {
		t.Fatalf("piggybacked bytes = %d, want %d", res.Stats.PiggybackedBytes, 256*mem.WordSize)
	}
}

// --- static aggregation (§3 worked examples) -------------------------------

// Example 1: p0 writes two contiguous pages, p1 reads both. Doubling the
// unit halves the exchanges without changing the data.
func TestStaticAggregationReducesMessages(t *testing.T) {
	body := func(p *Proc) {
		if p.ID() == 0 {
			for w := 0; w < 512; w++ {
				p.WriteF64(wordAddr(0, w), 1.0)
				p.WriteF64(wordAddr(1, w), 2.0)
			}
		}
		p.Barrier()
		if p.ID() == 1 {
			for w := 0; w < 512; w++ {
				p.ReadF64(wordAddr(0, w))
				p.ReadF64(wordAddr(1, w))
			}
		}
		p.Barrier()
	}
	r1 := run(t, Config{Procs: 2, SegmentBytes: 2 * mem.PageSize, UnitPages: 1}, body)
	r2 := run(t, Config{Procs: 2, SegmentBytes: 2 * mem.PageSize, UnitPages: 2}, body)

	if r1.Stats.Exchanges != 2 || r2.Stats.Exchanges != 1 {
		t.Fatalf("exchanges = %d (4K) vs %d (8K), want 2 vs 1",
			r1.Stats.Exchanges, r2.Stats.Exchanges)
	}
	d1 := r1.Stats.TotalDataBytes()
	d2 := r2.Stats.TotalDataBytes()
	if d1 != d2 {
		t.Fatalf("data bytes changed: %d vs %d", d1, d2)
	}
	if r2.Time >= r1.Time {
		t.Fatalf("aggregation must be faster: %v vs %v", r2.Time, r1.Time)
	}
}

// Example 2 (modified): p0 writes page 0, p1 writes page 1, p2 reads only
// page 0. At 4 KB there is one useful exchange; at 8 KB false sharing
// adds a useless exchange with p1.
func TestStaticAggregationAddsUselessMessages(t *testing.T) {
	body := func(p *Proc) {
		switch p.ID() {
		case 0:
			for w := 0; w < 512; w++ {
				p.WriteF64(wordAddr(0, w), 1.0)
			}
		case 1:
			for w := 0; w < 512; w++ {
				p.WriteF64(wordAddr(1, w), 2.0)
			}
		}
		p.Barrier()
		if p.ID() == 2 {
			for w := 0; w < 512; w++ {
				p.ReadF64(wordAddr(0, w))
			}
		}
		p.Barrier()
	}
	r1 := run(t, Config{Procs: 3, SegmentBytes: 2 * mem.PageSize, UnitPages: 1}, body)
	r2 := run(t, Config{Procs: 3, SegmentBytes: 2 * mem.PageSize, UnitPages: 2}, body)

	if r1.Stats.Messages.Useless != 0 {
		t.Fatalf("4K useless msgs = %d, want 0", r1.Stats.Messages.Useless)
	}
	if r2.Stats.Messages.Useless != 2 {
		t.Fatalf("8K useless msgs = %d, want 2", r2.Stats.Messages.Useless)
	}
	if r2.Stats.UselessBytes != 512*mem.WordSize {
		t.Fatalf("8K useless bytes = %d, want one whole page", r2.Stats.UselessBytes)
	}
	// Signature shifts from bucket 1 to bucket 2.
	if r1.Stats.Signature[1] == nil || r1.Stats.Signature[2] != nil {
		t.Fatalf("4K signature = %v", r1.Stats.Signature)
	}
	if r2.Stats.Signature[2] == nil {
		t.Fatalf("8K signature = %v", r2.Stats.Signature)
	}
}

// Writes to an invalid unit must first bring it up to date (write fault
// implies fetch), preserving remote words.
func TestWriteFaultOnInvalidUnitFetchesFirst(t *testing.T) {
	var a, b float64
	run(t, Config{Procs: 2, SegmentBytes: mem.PageSize}, func(p *Proc) {
		if p.ID() == 0 {
			p.WriteF64(wordAddr(0, 0), 5.0)
		}
		p.Barrier()
		if p.ID() == 1 {
			// Write a different word without reading first.
			p.WriteF64(wordAddr(0, 1), 6.0)
		}
		p.Barrier()
		if p.ID() == 0 {
			a = p.ReadF64(wordAddr(0, 0))
			b = p.ReadF64(wordAddr(0, 1))
		}
		p.Barrier()
	})
	if a != 5.0 || b != 6.0 {
		t.Fatalf("a=%v b=%v, want 5 and 6 (p1's write fault must fetch p0's diff)", a, b)
	}
}

// Three chained intervals through barriers must apply causally.
func TestCausalChainAcrossBarriers(t *testing.T) {
	var got float64
	run(t, Config{Procs: 3, SegmentBytes: mem.PageSize}, func(p *Proc) {
		if p.ID() == 0 {
			p.WriteF64(0, 1.0)
		}
		p.Barrier()
		if p.ID() == 1 {
			v := p.ReadF64(0)
			p.WriteF64(0, v+1)
		}
		p.Barrier()
		if p.ID() == 2 {
			got = p.ReadF64(0)
		}
		p.Barrier()
	})
	if got != 2.0 {
		t.Fatalf("got %v, want 2 (causal order violated)", got)
	}
}

// --- dynamic aggregation ----------------------------------------------------

// A repeated producer/consumer pattern over 4 pages: after one interval
// of observation, the consumer fetches the whole group in one exchange.
func TestDynamicAggregationLearnsGroups(t *testing.T) {
	const pages = 4
	exchangesPerRound := make([]int, 0, 3)
	var prev int
	cfg := Config{Procs: 2, SegmentBytes: pages * mem.PageSize, Dynamic: true, Collect: true}
	s := mustSystem(t, cfg)
	res := s.Run(func(p *Proc) {
		for round := 0; round < 3; round++ {
			if p.ID() == 0 {
				for pg := 0; pg < pages; pg++ {
					for w := 0; w < 512; w++ {
						p.WriteF64(wordAddr(pg, w), float64(round*1000+pg+1))
					}
				}
			}
			p.Barrier()
			if p.ID() == 1 {
				for pg := 0; pg < pages; pg++ {
					for w := 0; w < 512; w++ {
						if got := p.ReadF64(wordAddr(pg, w)); got != float64(round*1000+pg+1) {
							t.Errorf("round %d page %d: got %v", round, pg, got)
							return
						}
					}
				}
			}
			p.Barrier()
			if p.ID() == 1 {
				m, _ := s.net.Counts()
				_ = m
			}
		}
	})
	_ = prev
	_ = exchangesPerRound
	// Round 1: 4 single-page fetches (4 exchanges). Rounds 2 and 3: one
	// group fetch each (1 exchange) + 3 zero-fetch faults each.
	if res.Stats.Exchanges != 4+1+1 {
		t.Fatalf("exchanges = %d, want 6", res.Stats.Exchanges)
	}
	if res.Stats.ZeroFetchFaults != 6 {
		t.Fatalf("zero-fetch faults = %d, want 6", res.Stats.ZeroFetchFaults)
	}
	if res.Stats.Messages.Useless != 0 {
		t.Fatalf("useless msgs = %d", res.Stats.Messages.Useless)
	}
}

// When the access pattern changes, the dynamic scheme reverts to
// per-page fetches instead of dragging stale groups along.
func TestDynamicAggregationAdaptsToPatternChange(t *testing.T) {
	const pages = 4
	cfg := Config{Procs: 2, SegmentBytes: pages * mem.PageSize, Dynamic: true, Collect: true}
	s := mustSystem(t, cfg)
	res := s.Run(func(p *Proc) {
		// Phase 1: consumer reads all 4 pages (twice, to form groups).
		for round := 0; round < 2; round++ {
			if p.ID() == 0 {
				for pg := 0; pg < pages; pg++ {
					p.WriteF64(wordAddr(pg, 0), float64(round+1))
				}
			}
			p.Barrier()
			if p.ID() == 1 {
				for pg := 0; pg < pages; pg++ {
					p.ReadF64(wordAddr(pg, 0))
				}
			}
			p.Barrier()
		}
		// Phase 2: consumer now reads only page 0.
		if p.ID() == 0 {
			for pg := 0; pg < pages; pg++ {
				p.WriteF64(wordAddr(pg, 0), 9.0)
			}
		}
		p.Barrier()
		if p.ID() == 1 {
			p.ReadF64(wordAddr(0, 0))
		}
		p.Barrier()
		// Phase 3: same; group should now be just page 0, so the fetch
		// carries only page 0's diff.
		if p.ID() == 0 {
			for pg := 0; pg < pages; pg++ {
				p.WriteF64(wordAddr(pg, 0), 11.0)
			}
		}
		p.Barrier()
		if p.ID() == 1 {
			if got := p.ReadF64(wordAddr(0, 0)); got != 11.0 {
				t.Errorf("phase 3 read = %v", got)
			}
		}
		p.Barrier()
	})
	// Phase 2's group fetch drags pages 1-3 (hysteresis: useless data),
	// phase 3's fetch must not.
	if res.Stats.PiggybackedBytes != 3*mem.WordSize {
		t.Fatalf("piggybacked = %d, want %d (phase-2 hysteresis only)",
			res.Stats.PiggybackedBytes, 3*mem.WordSize)
	}
}

// --- determinism ------------------------------------------------------------

func TestBarrierProgramDeterministic(t *testing.T) {
	body := func(p *Proc) {
		for r := 0; r < 3; r++ {
			if p.ID() == r%4 {
				for w := 0; w < 64; w++ {
					p.WriteF64(wordAddr(p.ID(), w), float64(r))
				}
			}
			p.Barrier()
			for w := 0; w < 64; w++ {
				p.ReadF64(wordAddr(r%4, w))
			}
			p.Barrier()
		}
	}
	cfg := Config{Procs: 4, SegmentBytes: 4 * mem.PageSize}
	a := run(t, cfg, body)
	b := run(t, cfg, body)
	if a.Time != b.Time {
		t.Fatalf("times differ: %v vs %v", a.Time, b.Time)
	}
	if a.Messages != b.Messages || a.Bytes != b.Bytes {
		t.Fatalf("traffic differs: %d/%d vs %d/%d", a.Messages, a.Bytes, b.Messages, b.Bytes)
	}
	if a.Stats.Messages != b.Stats.Messages {
		t.Fatalf("classification differs")
	}
	if a.Faults != b.Faults {
		t.Fatalf("faults differ: %d vs %d", a.Faults, b.Faults)
	}
}

// --- misc -------------------------------------------------------------------

func TestUnlockByNonHolderPanics(t *testing.T) {
	s := mustSystem(t, Config{Procs: 2, SegmentBytes: mem.PageSize, Locks: 1})
	panicked := make(chan bool, 2)
	s.Run(func(p *Proc) {
		if p.ID() == 1 {
			defer func() { panicked <- recover() != nil }()
			p.Unlock(0)
		}
	})
	if !<-panicked {
		t.Fatal("expected panic from Unlock by non-holder")
	}
}

func TestResultCounters(t *testing.T) {
	res := run(t, Config{Procs: 2, SegmentBytes: mem.PageSize}, func(p *Proc) {
		if p.ID() == 0 {
			p.WriteF64(0, 1)
		}
		p.Barrier()
		if p.ID() == 1 {
			p.ReadF64(0)
		}
	})
	if res.Twins != 1 || res.Intervals != 1 || res.DiffsEncoded != 1 {
		t.Fatalf("twins=%d intervals=%d diffs=%d", res.Twins, res.Intervals, res.DiffsEncoded)
	}
	if len(res.ProcTimes) != 2 || res.Time <= 0 {
		t.Fatalf("times = %v", res.ProcTimes)
	}
	kinds := map[simnet.MsgKind]bool{}
	for _, r := range mustSystem(t, Config{Procs: 1}).net.Snapshot() {
		kinds[r.Kind] = true
	}
	_ = kinds
}

// --- reuse and trials --------------------------------------------------------

// barrierBody is a deterministic producer/consumer program used by the
// reuse tests.
func barrierBody(p *Proc) {
	if p.ID() == 0 {
		for w := 0; w < 128; w++ {
			p.WriteF64(wordAddr(0, w), float64(w))
		}
	}
	p.Barrier()
	if p.ID() == 1 {
		for w := 0; w < 128; w++ {
			p.ReadF64(wordAddr(0, w))
		}
	}
	p.Barrier()
}

func TestSystemReusableAcrossRuns(t *testing.T) {
	s := mustSystem(t, Config{Procs: 2, SegmentBytes: mem.PageSize, Collect: true})
	a := s.Run(barrierBody)
	b := s.Run(barrierBody)
	if a.Time != b.Time || a.Messages != b.Messages || a.Bytes != b.Bytes {
		t.Fatalf("trials differ: %v/%d/%d vs %v/%d/%d",
			a.Time, a.Messages, a.Bytes, b.Time, b.Messages, b.Bytes)
	}
	if a.Stats.Messages != b.Stats.Messages {
		t.Fatal("stats differ across reused runs")
	}
}

func TestResetKeepsAllocations(t *testing.T) {
	s := mustSystem(t, Config{Procs: 2, SegmentBytes: 2 * mem.PageSize})
	x := s.Alloc(8)
	s.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.WriteF64(x, 7)
		}
		p.Barrier()
	})
	s.Reset()
	// The allocation cursor must survive Reset: the next Alloc may not
	// overlap x.
	if y := s.Alloc(8); y == x {
		t.Fatalf("Reset leaked the allocator: got %d twice", y)
	}
	// Memory content must not survive Reset.
	res := s.Run(func(p *Proc) {
		if p.ID() == 1 {
			if got := p.ReadF64(x); got != 0 {
				t.Errorf("replica not zeroed after Reset: %v", got)
			}
		}
		p.Barrier()
	})
	if res.Messages != 4 {
		t.Fatalf("fresh run messages = %d, want 4 (one barrier, no diffs)", res.Messages)
	}
}

func TestRunTrialsDeterministic(t *testing.T) {
	s := mustSystem(t, Config{Procs: 2, SegmentBytes: mem.PageSize, Collect: true})
	ts, err := s.RunTrials(3, barrierBody)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Trials) != 3 {
		t.Fatalf("trials = %d", len(ts.Trials))
	}
	for i, r := range ts.Trials {
		if r.Time != ts.Trials[0].Time {
			t.Fatalf("trial %d time %v != trial 0 time %v", i, r.Time, ts.Trials[0].Time)
		}
	}
	if ts.MinTime != ts.MeanTime || ts.MeanTime != ts.MaxTime {
		t.Fatalf("aggregate mismatch: min=%v mean=%v max=%v", ts.MinTime, ts.MeanTime, ts.MaxTime)
	}
	if ts.MeanMessages != float64(ts.Trials[0].Messages) {
		t.Fatalf("mean messages = %v, want %d", ts.MeanMessages, ts.Trials[0].Messages)
	}
	if _, err := s.RunTrials(0, barrierBody); err == nil {
		t.Fatal("RunTrials(0) must error")
	}
}
