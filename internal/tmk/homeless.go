package tmk

import (
	"sort"

	"repro/internal/instrument"
	"repro/internal/lrc"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vc"
)

func init() {
	RegisterProtocol("homeless", func(s *System) { s.install(&homelessProtocol{}) })
}

// homelessProtocol is TreadMarks' protocol, the one the paper
// evaluates: diffs stay with their writer, published into the interval
// store at release, and an access miss fetches the missing diffs from
// each concurrent writer — one exchange per writer, issued in parallel
// — then applies them in causal order (many messages, few bytes).
type homelessProtocol struct{ invalidator }

func (*homelessProtocol) Name() string { return "homeless" }

// Release keeps the diffs with the writer: every diff stays attached to
// the published interval, to be served on demand at remote faults. No
// messages move — lazy release consistency at its laziest.
func (*homelessProtocol) Release(p *Proc, id vc.IntervalID, ts vc.Time, units []int, diffs []lrc.PageDiff) []lrc.PageDiff {
	return diffs
}

// fetchItem is one page diff scheduled for application, keyed for causal
// ordering by its (latest contributing) source interval and attributed to
// the carrying exchange.
type fetchItem struct {
	page int
	d    mem.Diff
	msg  *instrument.DataMsg
	sum  int64
	prc  int
	sq   int32
}

// Fetch implements the homeless miss policy: gather the unseen remote
// intervals that wrote the stale units, fetch their diffs — one
// exchange per concurrent writer, issued in parallel — and apply them
// in causal order.
func (*homelessProtocol) Fetch(p *Proc, units []int) []*instrument.DataMsg {
	cost := p.sys.cost
	cfg := p.sys.cfg

	// Gather missing (interval, unit) pairs per writer across all
	// fetched units. Each unit's missing list holds a given interval at
	// most once (in causal order), so pairs are distinct and no diff is
	// fetched twice. Also count distinct writers per unit: a unit whose
	// missing intervals all come from one writer is served coalesced
	// (TreadMarks' single-writer remedy for diff accumulation).
	type need struct {
		iv   *lrc.Interval
		unit int
	}
	needs := make(map[int][]need)
	unitWriters := make(map[int]int)
	var fetchUnits []int
	for _, u := range units {
		miss := p.missing[u]
		if len(miss) == 0 {
			continue
		}
		fetchUnits = append(fetchUnits, u)
		seen := make(map[int]bool)
		for _, mw := range miss {
			w := mw.Interval.ID.Proc
			needs[w] = append(needs[w], need{iv: mw.Interval, unit: u})
			seen[w] = true
		}
		unitWriters[u] = len(seen)
	}

	// One request/reply exchange per concurrent writer, in ascending
	// writer order for determinism; charged as the max (parallel fetch).
	writers := make([]int, 0, len(needs))
	for w := range needs {
		writers = append(writers, w)
	}
	sort.Ints(writers)

	var items []fetchItem
	var msgs []*instrument.DataMsg
	var maxCost sim.Duration
	for _, w := range writers {
		reqBytes := 16 + 8*len(needs[w])
		replyBytes := 0
		var wItems []fetchItem
		// Per page, the writer's diffs in interval order (needs[w]
		// preserves causal order, so same-writer diffs are seq-ordered),
		// each carrying its own interval's causal key.
		type pageAcc struct {
			items        []fetchItem
			coalesceable bool
		}
		perPage := make(map[int]*pageAcc)
		var pageOrder []int
		for _, n := range needs[w] {
			for _, pd := range n.iv.DiffsInUnit(n.unit, cfg.UnitPages) {
				acc := perPage[pd.Page]
				if acc == nil {
					acc = &pageAcc{coalesceable: unitWriters[n.unit] == 1}
					perPage[pd.Page] = acc
					pageOrder = append(pageOrder, pd.Page)
				}
				sum, prc, sq := n.iv.CausalKey()
				acc.items = append(acc.items, fetchItem{
					page: pd.Page, d: pd.D, sum: sum, prc: prc, sq: sq,
				})
			}
		}
		for _, page := range pageOrder {
			acc := perPage[page]
			if acc.coalesceable && len(acc.items) > 1 {
				ds := make([]mem.Diff, len(acc.items))
				for i, it := range acc.items {
					ds[i] = it.d
				}
				last := acc.items[len(acc.items)-1]
				last.d = mem.CoalesceDiffs(ds)
				replyBytes += last.d.WireBytes()
				wItems = append(wItems, last)
				continue
			}
			for _, it := range acc.items {
				replyBytes += it.d.WireBytes()
				wItems = append(wItems, it)
			}
		}
		reqID, repID, xt := p.sys.net.SendExchange(
			simnet.DiffRequest, simnet.DiffReply, p.id, w, reqBytes, replyBytes, p.clock.Now())
		var dm *instrument.DataMsg
		if p.sys.col != nil {
			dm = p.sys.col.NewDataMsg(reqID, repID, w, p.id)
			msgs = append(msgs, dm)
		}
		for i := range wItems {
			wItems[i].msg = dm
		}
		items = append(items, wItems...)
		if c := xt.Total(); c > maxCost {
			maxCost = c
		}
	}
	p.clock.Advance(maxCost)

	// Apply in causal order (monotone linearization of happens-before).
	// The sort must be stable: a coalesced item keeps only its writer's
	// latest key, and same-key items must retain per-writer list order.
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].sum != items[j].sum {
			return items[i].sum < items[j].sum
		}
		if items[i].prc != items[j].prc {
			return items[i].prc < items[j].prc
		}
		if items[i].sq != items[j].sq {
			return items[i].sq < items[j].sq
		}
		return items[i].page < items[j].page
	})
	for _, it := range items {
		it.d.Apply(p.rep.Page(it.page))
		p.clock.Advance(sim.Duration(it.d.WordCount()) * cost.ApplyPerWord)
		if p.sys.col != nil && it.msg != nil {
			p.sys.col.TagDiff(p.id, it.page, it.d, it.msg)
		}
	}

	for _, u := range fetchUnits {
		delete(p.missing, u)
	}
	return msgs
}
