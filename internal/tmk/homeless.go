package tmk

import (
	"repro/internal/instrument"
	"repro/internal/lrc"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/vc"
)

func init() {
	RegisterProtocol("homeless", func(s *System) { s.install(&homelessProtocol{}) })
}

// homelessProtocol is TreadMarks' protocol, the one the paper
// evaluates: diffs stay with their writer, published into the interval
// store at release, and an access miss fetches the missing diffs from
// each concurrent writer — one exchange per writer, issued in parallel
// — then applies them in causal order (many messages, few bytes).
type homelessProtocol struct{ invalidator }

func (*homelessProtocol) Name() string { return "homeless" }

// Release keeps the diffs with the writer: every diff stays attached to
// the published interval, to be served on demand at remote faults. No
// messages move — lazy release consistency at its laziest.
func (*homelessProtocol) Release(p *Proc, id vc.IntervalID, ts vc.Stamp, units []int, diffs []lrc.PageDiff) []lrc.PageDiff {
	return diffs
}

// fetchItem is one page diff scheduled for application, keyed for causal
// ordering by its (latest contributing) source interval and attributed to
// the carrying exchange.
type fetchItem struct {
	page int
	d    mem.Diff
	msg  *instrument.DataMsg
	sum  int64
	prc  int
	sq   int32
}

// writerNeed is one missing (interval, unit) pair owed by one writer.
type writerNeed struct {
	iv   *lrc.Interval
	unit int
}

// pageAcc accumulates, per page within one writer's reply, the diffs to
// apply and whether coalescing is legal (single-writer unit).
type pageAcc struct {
	page         int
	coalesceable bool
	items        []fetchItem
}

// fetchScratch is the per-processor working storage of the fetch paths.
// Every slice and index table below is reused across faults: the maps
// the original implementation allocated per fault (per-writer needs,
// per-unit writer counts, per-page accumulators) are replaced by arrays
// indexed by writer/unit/page with generation marks, so the steady-state
// miss path allocates nothing.
type fetchScratch struct {
	needs      [][]writerNeed // indexed by writer processor
	writers    []int32        // writers with non-empty needs (this call only)
	fetchUnits []int
	unitWr     []int32 // distinct writers per unit (this call only)

	writerMark []int64 // per-writer generation mark (distinct count)
	pageMark   []int64 // per-page generation mark
	pageSlot   []int32 // per-page index into accs, valid when marked
	gen        int64

	accs  []pageAcc
	nAccs int
	items []fetchItem
	ds    []mem.Diff

	// Sparse-mode notice reconstruction scratch (see notices.go).
	missScratch  []lrc.MissingWrite // missingInto: one unit's rebuilt list
	spillScratch []int32            // missingInto: next spill under construction

	// Home-based fetch scratch (see homebased.go).
	homeUnits [][]int      // indexed by home processor
	homes     []int32      // Fetch: homes with non-empty homeUnits (this call only)
	homeBytes []int        // Release: flush payload bytes per home
	relHomes  []int32      // Release: homes with non-zero homeBytes (this call only)
	snapDiffs []mem.Diff   // page images, indexed via pageSlot
	covered   []flushEntry // pageImage: covered log entries
	imgWords  []uint64     // arena backing the page images' words
	imgRuns   []mem.Run    // arena backing the page images' run lists
	nImgRuns  int
	imgBuf    []byte // pageImage: reconstruction buffer
}

// init sizes the scratch for the system's geometry (idempotent).
func (fs *fetchScratch) init(s *System) {
	if len(fs.writerMark) >= s.cfg.Procs && len(fs.pageMark) >= s.numPages &&
		len(fs.unitWr) >= s.numUnits {
		return
	}
	fs.needs = make([][]writerNeed, s.cfg.Procs)
	fs.writerMark = make([]int64, s.cfg.Procs)
	fs.unitWr = make([]int32, s.numUnits)
	fs.pageMark = make([]int64, s.numPages)
	fs.pageSlot = make([]int32, s.numPages)
	fs.homeUnits = make([][]int, s.cfg.Procs)
	fs.gen = 0
}

// accFor returns the accumulator slot for page, creating (or recycling)
// one on first touch in the current generation.
func (fs *fetchScratch) accFor(page int, coalesceable bool) *pageAcc {
	if fs.pageMark[page] == fs.gen {
		return &fs.accs[fs.pageSlot[page]]
	}
	fs.pageMark[page] = fs.gen
	fs.pageSlot[page] = int32(fs.nAccs)
	if fs.nAccs < len(fs.accs) {
		a := &fs.accs[fs.nAccs]
		a.page, a.coalesceable, a.items = page, coalesceable, a.items[:0]
	} else {
		fs.accs = append(fs.accs, pageAcc{page: page, coalesceable: coalesceable})
	}
	fs.nAccs++
	return &fs.accs[fs.nAccs-1]
}

// sortTouched insertion-sorts a short touched-processor list ascending —
// the exchange loops must visit writers/homes in processor order to keep
// wire traffic bit-identical to the full-scan formulation.
func sortTouched(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i
		for j > 0 && a[j-1] > v {
			a[j] = a[j-1]
			j--
		}
		a[j] = v
	}
}

// sortFetchItems stably orders items by (sum, proc, seq, page) — the
// causal application order — via binary-insertion sort: no closure, no
// allocation, near-linear on the per-writer runs the fetch path builds
// (each writer's items are already seq-ascending).
func sortFetchItems(items []fetchItem) {
	less := func(a, b *fetchItem) bool {
		if a.sum != b.sum {
			return a.sum < b.sum
		}
		if a.prc != b.prc {
			return a.prc < b.prc
		}
		if a.sq != b.sq {
			return a.sq < b.sq
		}
		return a.page < b.page
	}
	for i := 1; i < len(items); i++ {
		it := items[i]
		if !less(&it, &items[i-1]) {
			continue
		}
		// Upper bound: first position whose element orders after it, so
		// equal elements keep their relative order (stability).
		lo, hi := 0, i
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if less(&it, &items[mid]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		copy(items[lo+1:i+1], items[lo:i])
		items[lo] = it
	}
}

// Fetch implements the homeless miss policy: gather the unseen remote
// intervals that wrote the stale units, fetch their diffs — one
// exchange per concurrent writer, issued in parallel — and apply them
// in causal order.
func (*homelessProtocol) Fetch(p *Proc, units []int) []*instrument.DataMsg {
	cost := p.sys.cost
	cfg := p.sys.cfg
	fs := &p.fs
	fs.init(p.sys)

	// Gather missing (interval, unit) pairs per writer across all
	// fetched units. Each unit's missing list holds a given interval at
	// most once (in causal order), so pairs are distinct and no diff is
	// fetched twice. Also count distinct writers per unit: a unit whose
	// missing intervals all come from one writer is served coalesced
	// (TreadMarks' single-writer remedy for diff accumulation). Writers
	// with work are tracked in a touched list so neither the reset nor
	// the exchange loop scans all nprocs entries (a fault touches a
	// handful of writers even in a 1024-processor build).
	for _, w := range fs.writers {
		fs.needs[w] = fs.needs[w][:0]
	}
	fs.writers = fs.writers[:0]
	fs.fetchUnits = fs.fetchUnits[:0]
	sparse := p.sys.sparseMode()
	for _, u := range units {
		var miss []lrc.MissingWrite
		if sparse {
			// Rebuild (and consume) the unit's list from the store's
			// publish log — identical contents and per-writer order to
			// the dense list (see notices.go).
			fs.missScratch = p.missingInto(u, fs.missScratch)
			miss = fs.missScratch
		} else {
			miss = p.missing[u]
		}
		if len(miss) == 0 {
			continue
		}
		fs.fetchUnits = append(fs.fetchUnits, u)
		fs.gen++
		distinct := int32(0)
		for _, mw := range miss {
			w := mw.Interval.ID.Proc
			if len(fs.needs[w]) == 0 {
				fs.writers = append(fs.writers, int32(w))
			}
			fs.needs[w] = append(fs.needs[w], writerNeed{iv: mw.Interval, unit: u})
			if fs.writerMark[w] != fs.gen {
				fs.writerMark[w] = fs.gen
				distinct++
			}
		}
		fs.unitWr[u] = distinct
	}

	// One request/reply exchange per concurrent writer, in ascending
	// writer order for determinism; charged as the max (parallel fetch).
	sortTouched(fs.writers)
	fs.items = fs.items[:0]
	var msgs []*instrument.DataMsg
	var maxCost sim.Duration
	for _, w32 := range fs.writers {
		w := int(w32)
		wNeeds := fs.needs[w]
		reqBytes := 16 + 8*len(wNeeds)
		replyBytes := 0
		wStart := len(fs.items)
		// Per page, the writer's diffs in interval order (wNeeds
		// preserves causal order, so same-writer diffs are seq-ordered),
		// each carrying its own interval's causal key.
		fs.gen++
		fs.nAccs = 0
		for _, n := range wNeeds {
			for _, pd := range n.iv.DiffsInUnit(n.unit, cfg.UnitPages) {
				acc := fs.accFor(pd.Page, fs.unitWr[n.unit] == 1)
				sum, prc, sq := n.iv.CausalKey()
				acc.items = append(acc.items, fetchItem{
					page: pd.Page, d: pd.D, sum: sum, prc: prc, sq: sq,
				})
			}
		}
		for ai := 0; ai < fs.nAccs; ai++ {
			acc := &fs.accs[ai]
			if acc.coalesceable && len(acc.items) > 1 {
				fs.ds = fs.ds[:0]
				for _, it := range acc.items {
					fs.ds = append(fs.ds, it.d)
				}
				last := acc.items[len(acc.items)-1]
				last.d = mem.CoalesceDiffs(fs.ds)
				replyBytes += last.d.WireBytes()
				fs.items = append(fs.items, last)
				continue
			}
			for _, it := range acc.items {
				replyBytes += it.d.WireBytes()
				fs.items = append(fs.items, it)
			}
		}
		reqID, repID, xt := p.sys.net.SendExchange(
			simnet.DiffRequest, simnet.DiffReply, p.id, w, reqBytes, replyBytes, p.clock.Now())
		if p.sys.col != nil {
			dm := p.sys.col.NewDataMsg(reqID, repID, w, p.id)
			msgs = append(msgs, dm)
			for i := wStart; i < len(fs.items); i++ {
				fs.items[i].msg = dm
			}
		}
		if c := xt.Total(); c > maxCost {
			maxCost = c
		}
	}
	p.clock.Advance(maxCost)

	// Apply in causal order (monotone linearization of happens-before).
	// The sort must be stable: a coalesced item keeps only its writer's
	// latest key, and same-key items must retain per-writer list order.
	sortFetchItems(fs.items)
	for _, it := range fs.items {
		it.d.Apply(p.rep.Page(it.page))
		p.clock.Advance(sim.Duration(it.d.WordCount()) * cost.ApplyPerWord)
		if p.sys.col != nil && it.msg != nil {
			p.sys.col.TagDiff(p.id, it.page, it.d, it.msg)
		}
	}

	if !sparse {
		for _, u := range fs.fetchUnits {
			// Keep the map entry (and its slice capacity) for the next
			// acquire's notices; only the consumed contents are dropped.
			p.missing[u] = p.missing[u][:0]
		}
	}
	return msgs
}
