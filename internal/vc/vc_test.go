package vc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewIsZero(t *testing.T) {
	v := New(4)
	if len(v) != 4 {
		t.Fatalf("len = %d, want 4", len(v))
	}
	for i, x := range v {
		if x != 0 {
			t.Fatalf("entry %d = %d, want 0", i, x)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	v := Time{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestCoversAndBefore(t *testing.T) {
	a := Time{1, 2, 3}
	b := Time{1, 2, 3}
	c := Time{2, 2, 3}
	d := Time{0, 5, 0}

	if !a.Covers(b) || !b.Covers(a) {
		t.Fatal("equal vectors must cover each other")
	}
	if !c.Covers(a) {
		t.Fatal("c >= a entrywise, Covers must hold")
	}
	if a.Covers(c) {
		t.Fatal("a does not cover c")
	}
	if !a.Before(c) {
		t.Fatal("a < c must be Before")
	}
	if a.Before(b) {
		t.Fatal("equal vectors are not strictly before")
	}
	if !a.Concurrent(d) {
		t.Fatal("a and d are incomparable, must be Concurrent")
	}
	if a.Concurrent(c) {
		t.Fatal("a < c, must not be Concurrent")
	}
}

func TestCoversPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Time{1}.Covers(Time{1, 2})
}

func TestMergeIsLUB(t *testing.T) {
	a := Time{1, 5, 0}
	b := Time{3, 2, 0}
	m := a.Merged(b)
	want := Time{3, 5, 0}
	if !m.Equal(want) {
		t.Fatalf("Merged = %v, want %v", m, want)
	}
	if !m.Covers(a) || !m.Covers(b) {
		t.Fatal("merge must cover both inputs")
	}
	// a unchanged by Merged
	if !a.Equal(Time{1, 5, 0}) {
		t.Fatal("Merged mutated receiver")
	}
}

func TestTickAndKnowsInterval(t *testing.T) {
	v := New(3)
	if v.KnowsInterval(1, 1) {
		t.Fatal("zero vector knows no intervals")
	}
	n := v.Tick(1)
	if n != 1 || v[1] != 1 {
		t.Fatalf("Tick = %d, v[1] = %d, want 1,1", n, v[1])
	}
	if !v.KnowsInterval(1, 1) || v.KnowsInterval(1, 2) {
		t.Fatal("KnowsInterval wrong after Tick")
	}
}

func TestIntervalIDOrderingAndString(t *testing.T) {
	a := IntervalID{Proc: 0, Seq: 5}
	b := IntervalID{Proc: 1, Seq: 1}
	c := IntervalID{Proc: 0, Seq: 6}
	if !a.Less(b) || !a.Less(c) || b.Less(a) {
		t.Fatal("IntervalID.Less ordering wrong")
	}
	if a.String() != "p0:i5" {
		t.Fatalf("String = %q", a.String())
	}
}

// --- property-based tests (testing/quick) -------------------------------

func genVec(r *rand.Rand, n int) Time {
	v := New(n)
	for i := range v {
		v[i] = int32(r.Intn(6))
	}
	return v
}

func quickCfg() *quick.Config {
	return &quick.Config{
		MaxCount: 300,
		Values: func(args []reflect.Value, r *rand.Rand) {
			for i := range args {
				args[i] = reflect.ValueOf(genVec(r, 4))
			}
		},
	}
}

func TestPropCoversReflexive(t *testing.T) {
	f := func(a Time) bool { return a.Covers(a) }
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropCoversAntisymmetric(t *testing.T) {
	f := func(a, b Time) bool {
		if a.Covers(b) && b.Covers(a) {
			return a.Equal(b)
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropCoversTransitive(t *testing.T) {
	f := func(a, b, c Time) bool {
		if a.Covers(b) && b.Covers(c) {
			return a.Covers(c)
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropMergeLeastUpperBound(t *testing.T) {
	f := func(a, b, c Time) bool {
		m := a.Merged(b)
		if !m.Covers(a) || !m.Covers(b) {
			return false
		}
		// Least: any common upper bound covers the merge.
		if c.Covers(a) && c.Covers(b) && !c.Covers(m) {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}

func TestPropMergeCommutativeIdempotent(t *testing.T) {
	f := func(a, b Time) bool {
		return a.Merged(b).Equal(b.Merged(a)) && a.Merged(a).Equal(a)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Fatal(err)
	}
}
