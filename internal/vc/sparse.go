// Sparse interval clocks.
//
// Between global synchronizations, a processor's vector time touches very
// few entries: its own (interval ticks) and those of the processors it
// acquired from. Everything else is pinned to the last barrier's merged
// time. The representations below exploit exactly that shape:
//
//   - an Epoch is the immutable merged time of one barrier episode,
//     shared by every processor that left the barrier;
//   - a Stamp is a vector timestamp stored either dense (a plain Time)
//     or sparse — an Epoch base plus a short sorted deviation list of
//     the entries that advanced past it;
//   - a Tracked is a processor's dense working register plus the live
//     deviation set, from which sparse Stamps are snapshotted in
//     O(deviations) instead of O(nprocs).
//
// Epochs are totally ordered (Seq), and VT(e) <= VT(e') entrywise when
// e.Seq <= e'.Seq, so a holder of a later epoch covers any earlier
// epoch's base by construction — the property every fast path below
// rests on. When a deviation list grows past its usefulness the Stamp
// constructors fall back to the dense layout, so no operation is ever
// worse than its dense counterpart.
package vc

// Epoch is an immutable snapshot of a globally synchronized vector time
// — in the DSM engine, the merged time of one barrier episode. VT is
// read-only after construction; nil means the zero vector (the state
// before the first synchronization).
type Epoch struct {
	// Seq is the episode number: 0 for the run-start zero vector, then
	// 1, 2, ... per completed barrier. Entrywise, VT is monotone in Seq.
	Seq int
	// VT is the merged vector time (read-only; nil = zero vector).
	VT  Time
	sum int64
}

// NewEpoch wraps a merged vector time as an immutable epoch. The caller
// must not mutate vt afterwards.
func NewEpoch(seq int, vt Time) *Epoch {
	e := &Epoch{Seq: seq, VT: vt}
	for _, v := range vt {
		e.sum += int64(v)
	}
	return e
}

// Sum returns the entry sum of the epoch's vector time.
func (e *Epoch) Sum() int64 { return e.sum }

// Entry returns the epoch's entry for processor p.
func (e *Epoch) Entry(p int) int32 {
	if e.VT == nil {
		return 0
	}
	return e.VT[p]
}

// Stamp is a vector timestamp in one of two layouts:
//
//   - dense: a plain Time (the fallback, and the only layout the
//     reference "dense" engine mode ever builds);
//   - sparse: an Epoch base plus sorted deviations (procs[i], seqs[i])
//     with seqs[i] > base.Entry(procs[i]) — entries that advanced past
//     the shared base. Every other entry equals the base's.
//
// A Stamp is immutable once built; the deviation slices are retained,
// not copied, so callers carve them from storage that outlives the
// stamp (see StampArena). The entry sum is cached at construction —
// O(n) dense, O(deviations) sparse — making causal keys O(1).
type Stamp struct {
	n     int
	base  *Epoch // sparse layout; nil when dense
	dense Time   // dense layout; nil when sparse
	procs []int32
	seqs  []int32
	sum   int64
}

// DenseStamp wraps a dense vector time (retained, not copied: the
// caller must not mutate t afterwards).
func DenseStamp(t Time) Stamp {
	s := Stamp{n: len(t), dense: t}
	for _, v := range t {
		s.sum += int64(v)
	}
	return s
}

// SparseStamp builds a sparse stamp of length n over base with the
// given sorted deviations (retained, not copied). Deviations must
// satisfy seqs[i] > base.Entry(procs[i]).
func SparseStamp(base *Epoch, n int, procs, seqs []int32) Stamp {
	s := Stamp{n: n, base: base, procs: procs, seqs: seqs, sum: base.Sum()}
	for i, p := range procs {
		s.sum += int64(seqs[i] - base.Entry(int(p)))
	}
	return s
}

// Len returns the vector length (the processor count).
func (s Stamp) Len() int { return s.n }

// Sum returns the cached entry sum — the first component of the causal
// key used to linearize happens-before.
func (s Stamp) Sum() int64 { return s.sum }

// IsSparse reports whether the stamp uses the sparse layout.
func (s Stamp) IsSparse() bool { return s.base != nil }

// Base returns the sparse layout's epoch base (nil for dense stamps).
func (s Stamp) Base() *Epoch { return s.base }

// Deviations returns the sparse layout's deviation lists (read-only;
// nil for dense stamps). A holder whose vector time covers the stamp's
// base can consume the stamp by visiting only these entries.
func (s Stamp) Deviations() (procs, seqs []int32) { return s.procs, s.seqs }

// Entry returns the stamp's entry for processor p.
func (s Stamp) Entry(p int) int32 {
	if s.base == nil {
		return s.dense[p]
	}
	// Deviation lists are short; a linear scan beats binary search at
	// the sizes the engine builds (own tick + a few lock chains).
	for i, dp := range s.procs {
		if int(dp) == p {
			return s.seqs[i]
		}
		if int(dp) > p {
			break
		}
	}
	return s.base.Entry(p)
}

// Knows reports whether interval seq of processor p is covered.
func (s Stamp) Knows(p int, seq int32) bool { return s.Entry(p) >= seq }

// Dense materializes the stamp into dst (grown if needed) and returns
// it. The result is independent of the stamp's storage.
func (s Stamp) Dense(dst Time) Time {
	if cap(dst) < s.n {
		dst = make(Time, s.n)
	}
	dst = dst[:s.n]
	if s.base == nil {
		copy(dst, s.dense)
		return dst
	}
	if s.base.VT == nil {
		for i := range dst {
			dst[i] = 0
		}
	} else {
		copy(dst, s.base.VT)
	}
	for i, p := range s.procs {
		dst[p] = s.seqs[i]
	}
	return dst
}

// Covers reports whether s dominates u entrywise (s >= u).
//
// When both stamps are sparse and s's base epoch is at least u's,
// s covers u's base by epoch monotonicity, deviations only advance past
// their base, and so only u's deviating entries can violate dominance —
// an O(deviations) check. All other combinations fall back to the
// entrywise scan.
func (s Stamp) Covers(u Stamp) bool {
	if s.base != nil && u.base != nil && s.base.Seq >= u.base.Seq {
		for i, p := range u.procs {
			if s.Entry(int(p)) < u.seqs[i] {
				return false
			}
		}
		return true
	}
	for p := 0; p < s.n; p++ {
		if s.Entry(p) < u.Entry(p) {
			return false
		}
	}
	return true
}

// Concurrent reports that neither stamp dominates the other.
func (s Stamp) Concurrent(u Stamp) bool {
	return !s.Covers(u) && !u.Covers(s)
}

// StampArena carves the deviation slices of sparse stamps from chunked
// blocks. Blocks are never reallocated, so earlier stamps stay valid as
// the arena grows; Reset recycles the blocks once no live stamp
// references them (the engine resets between trials, after the interval
// store is dropped). Steady state carves allocate nothing.
type StampArena struct {
	blocks [][]int32
	cur    int // index of the block being carved
}

// stampArenaBlock is the capacity of one arena block in int32s.
const stampArenaBlock = 4096

// Carve returns a zero-length slice with capacity n whose backing store
// is stable for the arena's lifetime (until Reset).
func (a *StampArena) Carve(n int) []int32 {
	if n > stampArenaBlock {
		// Oversized request (a deviation list approaching nprocs —
		// the caller should have fallen back to dense): own allocation.
		return make([]int32, 0, n)
	}
	for {
		if a.cur == len(a.blocks) {
			a.blocks = append(a.blocks, make([]int32, 0, stampArenaBlock))
		}
		b := a.blocks[a.cur]
		if cap(b)-len(b) >= n {
			carved := b[len(b) : len(b) : len(b)+n]
			a.blocks[a.cur] = b[:len(b)+n]
			return carved
		}
		a.cur++
	}
}

// Reset recycles every block. Only call when no live Stamp references
// the arena's storage.
func (a *StampArena) Reset() {
	for i := range a.blocks {
		a.blocks[i] = a.blocks[i][:0]
	}
	a.cur = 0
}

// Tracked is a processor's working vector time: the dense register T
// plus the set of entries that have advanced past the current epoch
// base. The deviation set is exactly what a sparse Stamp snapshot needs,
// so closing an interval is O(deviations); it is also what a barrier
// manager needs to know which processors published intervals this
// episode.
type Tracked struct {
	T    Time
	base *Epoch
	devs []int32 // sorted procs where T advanced past base
	mark []bool  // mark[p] <=> p in devs
}

// NewTracked returns a tracked register of length n at the zero epoch.
func NewTracked(n int) *Tracked {
	return &Tracked{T: New(n), base: &Epoch{}, mark: make([]bool, n)}
}

// Base returns the current epoch base.
func (tr *Tracked) Base() *Epoch { return tr.base }

// Devs returns the sorted deviating processors (read-only).
func (tr *Tracked) Devs() []int32 { return tr.devs }

// Rebase resets the register to epoch e: T becomes a copy of e.VT and
// the deviation set empties. Called when a barrier grant installs the
// merged episode time (which covers everything the processor knew).
func (tr *Tracked) Rebase(e *Epoch) {
	if e.VT == nil {
		tr.T.Zero()
	} else {
		tr.T.CopyFrom(e.VT)
	}
	for _, p := range tr.devs {
		tr.mark[p] = false
	}
	tr.devs = tr.devs[:0]
	tr.base = e
}

// note records that entry p advanced past the base.
func (tr *Tracked) note(p int) {
	if tr.mark[p] {
		return
	}
	tr.mark[p] = true
	// Sorted insert; deviation sets are short between barriers.
	i := len(tr.devs)
	tr.devs = append(tr.devs, int32(p))
	for i > 0 && tr.devs[i-1] > int32(p) {
		tr.devs[i] = tr.devs[i-1]
		i--
	}
	tr.devs[i] = int32(p)
}

// Tick advances the register's own entry p and returns the new interval
// number.
func (tr *Tracked) Tick(p int) int32 {
	v := tr.T.Tick(p)
	tr.note(p)
	return v
}

// MergeStamp merges stamp s into the register. When s is sparse and its
// base epoch is not newer than the register's, only s's deviations can
// raise entries — O(deviations). Otherwise every entry is compared.
func (tr *Tracked) MergeStamp(s Stamp) {
	if s.base != nil && s.base.Seq <= tr.base.Seq {
		for i, p := range s.procs {
			if v := s.seqs[i]; v > tr.T[p] {
				tr.T[p] = v
				tr.note(int(p))
			}
		}
		return
	}
	for p := 0; p < len(tr.T); p++ {
		if v := s.Entry(p); v > tr.T[p] {
			tr.T[p] = v
			tr.note(p)
		}
	}
}

// MergeTime merges a dense vector time into the register entrywise —
// the dense-reference-mode merge, with deviation bookkeeping.
func (tr *Tracked) MergeTime(t Time) {
	for p, v := range t {
		if v > tr.T[p] {
			tr.T[p] = v
			tr.note(p)
		}
	}
}

// Snapshot builds a Stamp of the register's current value, with storage
// carved from a. Compact deviation sets produce a sparse stamp in
// O(deviations); a set that has fragmented toward the vector length
// (heavy lock chains) falls back to a dense copy, so consumers never
// pay sparse bookkeeping past its break-even.
func (tr *Tracked) Snapshot(a *StampArena) Stamp {
	nd, n := len(tr.devs), len(tr.T)
	if nd*4 > n && n > 8 {
		buf := a.Carve(n)[:n]
		copy(buf, tr.T)
		return DenseStamp(Time(buf))
	}
	buf := a.Carve(2 * nd)[:2*nd]
	procs, seqs := buf[:nd:nd], buf[nd:]
	for i, p := range tr.devs {
		procs[i] = p
		seqs[i] = tr.T[p]
	}
	return SparseStamp(tr.base, n, procs, seqs)
}
