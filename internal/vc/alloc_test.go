package vc

import "testing"

// TestAllocBudgetOps pins the engine-hot vector operations at zero
// steady-state allocations: the inner loops clone timestamps into
// reusable scratch (CopyFrom/Zero) instead of allocating (Clone), and
// every comparison walks the vectors in place.
func TestAllocBudgetOps(t *testing.T) {
	a, b, dst := New(8), New(8), New(8)
	for i := range a {
		a[i] = int32(i)
		b[i] = int32(8 - i)
	}
	cases := []struct {
		name string
		op   func()
	}{
		{"CopyFrom", func() { dst.CopyFrom(a) }},
		{"Zero", func() { dst.Zero() }},
		{"Merge", func() { dst.Merge(b) }},
		{"Covers", func() { _ = a.Covers(b) }},
		{"Equal", func() { _ = a.Equal(b) }},
		{"Tick", func() { dst.Tick(3) }},
	}
	for _, c := range cases {
		if n := testing.AllocsPerRun(100, c.op); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, n)
		}
	}
}
