// Package vc implements the vector timestamps that order intervals in
// lazy release consistency. Each processor numbers its own intervals with
// a monotonically increasing counter; a vector timestamp records, per
// processor, the highest interval of that processor known (seen) locally.
//
// Interval (p, i) "happens before" a vector time v iff v[p] >= i: the
// holder of v has (transitively) synchronized with p after p closed
// interval i, and must therefore see p's writes from that interval.
package vc

import "fmt"

// Time is a vector timestamp over a fixed number of processors. The zero
// value of an entry means "no interval of that processor seen yet";
// interval numbering starts at 1.
type Time []int32

// New returns a zero vector time for n processors.
func New(n int) Time { return make(Time, n) }

// Clone returns an independent copy of t.
func (t Time) Clone() Time {
	c := make(Time, len(t))
	copy(c, t)
	return c
}

// CopyFrom sets t to an entrywise copy of u. Both timestamps must have
// the same length: this is the allocation-free alternative to Clone for
// hot paths that own a reusable destination.
func (t Time) CopyFrom(u Time) {
	if len(t) != len(u) {
		panic(fmt.Sprintf("vc: length mismatch %d vs %d", len(t), len(u)))
	}
	copy(t, u)
}

// Zero resets every entry of t, reusing the storage (the allocation-free
// alternative to New for reinitialization, e.g. a barrier epoch reset).
func (t Time) Zero() {
	for i := range t {
		t[i] = 0
	}
}

// Covers reports whether t dominates u entrywise (t >= u): every interval
// known to u is known to t. Both timestamps must have the same length.
func (t Time) Covers(u Time) bool {
	if len(t) != len(u) {
		panic(fmt.Sprintf("vc: length mismatch %d vs %d", len(t), len(u)))
	}
	for i := range t {
		if t[i] < u[i] {
			return false
		}
	}
	return true
}

// Equal reports entrywise equality.
func (t Time) Equal(u Time) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Before reports strict happened-before: t <= u and t != u.
func (t Time) Before(u Time) bool {
	return u.Covers(t) && !t.Equal(u)
}

// Concurrent reports that neither timestamp dominates the other.
func (t Time) Concurrent(u Time) bool {
	return !t.Covers(u) && !u.Covers(t)
}

// Merge sets t to the entrywise maximum of t and u (the least upper
// bound), the operation performed when consistency information arrives at
// an acquire.
func (t Time) Merge(u Time) {
	if len(t) != len(u) {
		panic(fmt.Sprintf("vc: length mismatch %d vs %d", len(t), len(u)))
	}
	for i := range t {
		if u[i] > t[i] {
			t[i] = u[i]
		}
	}
}

// Merged returns a fresh least upper bound without modifying t.
func (t Time) Merged(u Time) Time {
	c := t.Clone()
	c.Merge(u)
	return c
}

// KnowsInterval reports whether interval number iv of processor p is
// covered by t.
func (t Time) KnowsInterval(p int, iv int32) bool { return t[p] >= iv }

// Tick advances processor p's own entry to mark the close of its next
// interval and returns the new interval number.
func (t Time) Tick(p int) int32 {
	t[p]++
	return t[p]
}

// String renders the vector as "<1 0 3 ...>".
func (t Time) String() string {
	s := "<"
	for i, v := range t {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprint(v)
	}
	return s + ">"
}

// IntervalID names one closed interval of one processor.
type IntervalID struct {
	Proc int
	Seq  int32
}

// Less orders interval IDs for deterministic iteration (not causality).
func (a IntervalID) Less(b IntervalID) bool {
	if a.Proc != b.Proc {
		return a.Proc < b.Proc
	}
	return a.Seq < b.Seq
}

func (a IntervalID) String() string {
	return fmt.Sprintf("p%d:i%d", a.Proc, a.Seq)
}
