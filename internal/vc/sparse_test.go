package vc

import (
	"math/rand"
	"testing"
)

// stampScenario drives a Tracked register and a plain dense Time shadow
// through the same random schedule of ticks, merges, and rebases,
// checking that every observable of the sparse layer matches the dense
// model at each step.
func TestTrackedMatchesDenseModel(t *testing.T) {
	const n = 16
	rng := rand.New(rand.NewSource(9))

	for trial := 0; trial < 50; trial++ {
		var arena StampArena
		tr := NewTracked(n)
		shadow := New(n)
		epochSeq := 0

		// Remember a few snapshots to cross-check Covers/Concurrent.
		type snap struct {
			s Stamp
			d Time
		}
		var snaps []snap

		for step := 0; step < 200; step++ {
			switch rng.Intn(4) {
			case 0: // tick a random proc
				p := rng.Intn(n)
				tr.Tick(p)
				shadow.Tick(p)
			case 1: // merge a random sparse stamp at the current epoch
				nd := rng.Intn(4)
				procs := make([]int32, 0, nd)
				seqs := make([]int32, 0, nd)
				for p := 0; p < n && len(procs) < nd; p++ {
					if rng.Intn(n) < nd {
						procs = append(procs, int32(p))
						seqs = append(seqs, tr.Base().Entry(p)+int32(1+rng.Intn(3)))
					}
				}
				s := SparseStamp(tr.Base(), n, procs, seqs)
				tr.MergeStamp(s)
				shadow.Merge(s.Dense(nil))
			case 2: // merge a dense stamp
				d := New(n)
				for p := range d {
					d[p] = shadow[p] + int32(rng.Intn(2))
				}
				tr.MergeStamp(DenseStamp(d))
				shadow.Merge(d)
			case 3: // barrier: rebase both onto the merged time
				epochSeq++
				merged := shadow.Clone()
				tr.Rebase(NewEpoch(epochSeq, merged))
				shadow.CopyFrom(merged)
			}

			if !tr.T.Equal(shadow) {
				t.Fatalf("trial %d step %d: register %v != shadow %v", trial, step, tr.T, shadow)
			}
			s := tr.Snapshot(&arena)
			var sum int64
			for p := 0; p < n; p++ {
				if got, want := s.Entry(p), shadow[p]; got != want {
					t.Fatalf("trial %d step %d: Entry(%d) = %d, want %d", trial, step, p, got, want)
				}
				sum += int64(shadow[p])
			}
			if s.Sum() != sum {
				t.Fatalf("trial %d step %d: Sum = %d, want %d", trial, step, s.Sum(), sum)
			}
			if d := s.Dense(nil); !d.Equal(shadow) {
				t.Fatalf("trial %d step %d: Dense %v != shadow %v", trial, step, d, shadow)
			}
			// Deviations must advance past the base (the invariant every
			// fast path relies on).
			if s.IsSparse() {
				procs, seqs := s.Deviations()
				for i, p := range procs {
					if seqs[i] <= s.Base().Entry(int(p)) {
						t.Fatalf("trial %d step %d: deviation %d not past base", trial, step, p)
					}
				}
			}

			// Cross-check ordering against earlier snapshots.
			d := shadow.Clone()
			for _, old := range snaps {
				if got, want := s.Covers(old.s), d.Covers(old.d); got != want {
					t.Fatalf("trial %d step %d: Covers = %v, dense says %v\n s=%v\n u=%v",
						trial, step, got, want, d, old.d)
				}
				if got, want := old.s.Covers(s), old.d.Covers(d); got != want {
					t.Fatalf("trial %d step %d: reverse Covers = %v, dense says %v", trial, step, got, want)
				}
				if got, want := s.Concurrent(old.s), d.Concurrent(old.d); got != want {
					t.Fatalf("trial %d step %d: Concurrent = %v, dense says %v", trial, step, got, want)
				}
			}
			if len(snaps) < 8 && rng.Intn(10) == 0 {
				snaps = append(snaps, snap{s: s, d: d})
			}
		}
	}
}

func TestStampKnowsAndEntryOffList(t *testing.T) {
	base := NewEpoch(1, Time{3, 1, 4, 1})
	s := SparseStamp(base, 4, []int32{0, 2}, []int32{5, 6})
	wants := []int32{5, 1, 6, 1}
	for p, w := range wants {
		if got := s.Entry(p); got != w {
			t.Fatalf("Entry(%d) = %d, want %d", p, got, w)
		}
		if !s.Knows(p, w) || s.Knows(p, w+1) {
			t.Fatalf("Knows(%d) wrong around %d", p, w)
		}
	}
	if s.Sum() != 5+1+6+1 {
		t.Fatalf("Sum = %d, want 13", s.Sum())
	}
}

// Snapshots taken before later carves and a Tracked mutation must keep
// their values: the arena never reallocates a block, and Snapshot copies
// the register's entries out.
func TestStampArenaStability(t *testing.T) {
	var arena StampArena
	tr := NewTracked(8)
	tr.Rebase(NewEpoch(1, Time{1, 1, 1, 1, 1, 1, 1, 1}))

	var stamps []Stamp
	var wants []Time
	for i := 0; i < 3000; i++ {
		tr.Tick(i % 8)
		stamps = append(stamps, tr.Snapshot(&arena))
		wants = append(wants, tr.T.Clone())
	}
	for i, s := range stamps {
		if d := s.Dense(nil); !d.Equal(wants[i]) {
			t.Fatalf("stamp %d corrupted: %v, want %v", i, d, wants[i])
		}
	}

	arena.Reset()
	if got := arena.Carve(4); cap(got) < 4 || len(got) != 0 {
		t.Fatalf("post-Reset carve: len=%d cap=%d", len(got), cap(got))
	}
}

// A deviation set that fragments toward the vector length must flip the
// snapshot to the dense layout (and still read identically).
func TestSnapshotDenseFallback(t *testing.T) {
	var arena StampArena
	const n = 64
	tr := NewTracked(n)
	for p := 0; p < n/2; p++ {
		tr.Tick(p)
	}
	s := tr.Snapshot(&arena)
	if s.IsSparse() {
		t.Fatalf("snapshot with %d/%d deviations should be dense", n/2, n)
	}
	if !s.Dense(nil).Equal(tr.T) {
		t.Fatal("dense-fallback snapshot does not match register")
	}
}

// TestAllocBudgetSparseOps pins the sparse-clock hot paths at zero
// steady-state allocations at n=1024, mirroring the n=8 dense budget in
// alloc_test.go: epoch-local merges and covers touch only deviations,
// and snapshots carve from a pre-grown arena.
func TestAllocBudgetSparseOps(t *testing.T) {
	const n = 1024
	base := NewEpoch(3, func() Time {
		v := New(n)
		for i := range v {
			v[i] = 5
		}
		return v
	}())
	tr := NewTracked(n)
	tr.Rebase(base)
	tr.Tick(7)
	s := SparseStamp(base, n, []int32{7, 100, 900}, []int32{9, 8, 7})
	u := SparseStamp(base, n, []int32{100}, []int32{6})
	var arena StampArena
	// Warm the arena and the deviation set so the measured loop carves
	// and notes without growing anything.
	tr.MergeStamp(s)
	for i := 0; i < 4; i++ {
		_ = tr.Snapshot(&arena)
	}
	arena.Reset()

	cases := []struct {
		name string
		op   func()
	}{
		{"MergeStamp", func() { tr.MergeStamp(s) }},
		{"StampCovers", func() { _ = s.Covers(u) }},
		{"StampEntry", func() { _ = s.Entry(500) }},
		{"Snapshot", func() { arena.Reset(); _ = tr.Snapshot(&arena) }},
		{"Tick", func() { tr.Tick(7) }},
	}
	for _, c := range cases {
		if got := testing.AllocsPerRun(100, c.op); got != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, got)
		}
	}
}

// Benchmarks at n=1024, dense and sparse side by side: the dense ops are
// the reference engine mode's cost, the sparse ops what the default mode
// pays between barriers.
func benchTimes(n int) (a, b Time) {
	a, b = New(n), New(n)
	for i := range a {
		a[i] = int32(i % 7)
		b[i] = int32((i + 3) % 7)
	}
	return a, b
}

func BenchmarkMergeDense1024(b *testing.B) {
	x, y := benchTimes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Merge(y)
	}
}

func BenchmarkMergeStampSparse1024(b *testing.B) {
	base := NewEpoch(1, New(1024))
	tr := NewTracked(1024)
	tr.Rebase(base)
	s := SparseStamp(base, 1024, []int32{3, 500, 900}, []int32{2, 2, 2})
	tr.MergeStamp(s)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.MergeStamp(s)
	}
}

func BenchmarkCoversDense1024(b *testing.B) {
	x, y := benchTimes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Covers(y)
	}
}

func BenchmarkCoversSparse1024(b *testing.B) {
	base := NewEpoch(2, New(1024))
	s := SparseStamp(base, 1024, []int32{3, 500}, []int32{4, 4})
	u := SparseStamp(base, 1024, []int32{500}, []int32{3})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Covers(u)
	}
}

func BenchmarkCopyFromDense1024(b *testing.B) {
	x, y := benchTimes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.CopyFrom(y)
	}
}

func BenchmarkSnapshotSparse1024(b *testing.B) {
	tr := NewTracked(1024)
	tr.Rebase(NewEpoch(1, New(1024)))
	tr.Tick(7)
	tr.Tick(400)
	var arena StampArena
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		arena.Reset()
		_ = tr.Snapshot(&arena)
	}
}
