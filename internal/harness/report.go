package harness

import (
	"repro/internal/instrument"
	"repro/internal/tmk"
)

// The JSON report types are the machine-readable counterpart of the
// render functions: cmd/dsmbench and cmd/dsmrun emit them under -json
// so benchmark trajectories can be recorded without scraping tables.

// ResultJSON is one run's accounting.
type ResultJSON struct {
	TimeSeconds  float64 `json:"time_seconds"`
	Messages     int     `json:"messages"`
	Bytes        int     `json:"bytes"`
	Network      string  `json:"network,omitempty"`
	QueueSeconds float64 `json:"queue_seconds"`
	Faults       int     `json:"faults"`
	// SwitchedUnits, ProtocolSwitches, and HomeUnits carry the adaptive
	// protocol's accounting (omitted under static protocols).
	SwitchedUnits    int `json:"switched_units,omitempty"`
	ProtocolSwitches int `json:"protocol_switches,omitempty"`
	HomeUnits        int `json:"home_units,omitempty"`
	// Placement names the run's home-placement policy; Rehomes,
	// RehomeBytes, and HandoffBytes carry the placement layer's
	// accounting (omitted when zero).
	Placement    string            `json:"placement,omitempty"`
	Rehomes      int               `json:"rehomes,omitempty"`
	RehomeBytes  int               `json:"rehome_bytes,omitempty"`
	HandoffBytes int               `json:"handoff_bytes,omitempty"`
	Stats        *instrument.Stats `json:"stats,omitempty"`
}

// ResultReport converts an engine Result.
func ResultReport(r *tmk.Result) ResultJSON {
	return ResultJSON{
		TimeSeconds:      r.Time.Seconds(),
		Messages:         r.Messages,
		Bytes:            r.Bytes,
		Network:          r.Network,
		QueueSeconds:     r.QueueDelay.Seconds(),
		Faults:           r.Faults,
		SwitchedUnits:    r.SwitchedUnits,
		ProtocolSwitches: r.ProtocolSwitches,
		HomeUnits:        r.HomeUnits,
		Placement:        r.Placement,
		Rehomes:          r.Rehomes,
		RehomeBytes:      r.RehomeBytes,
		HandoffBytes:     r.HandoffBytes,
		Stats:            r.Stats,
	}
}

// CellJSON is one experiment × configuration cell.
type CellJSON struct {
	App          string  `json:"app"`
	Dataset      string  `json:"dataset"`
	Paper        string  `json:"paper,omitempty"`
	Config       string  `json:"config"`
	Protocol     string  `json:"protocol"`
	Network      string  `json:"network"`
	Placement    string  `json:"placement"`
	Procs        int     `json:"procs"`
	TimeSeconds  float64 `json:"time_seconds"`
	QueueSeconds float64 `json:"queue_seconds"`
	Messages     int     `json:"messages"`
	Bytes        int     `json:"bytes"`
	// SwitchedUnits counts the units the adaptive protocol switched
	// engine for (omitted under static protocols); Rehomes,
	// RehomeBytes, and HandoffBytes carry the placement layer's
	// accounting (omitted when zero).
	SwitchedUnits int               `json:"switched_units,omitempty"`
	Rehomes       int               `json:"rehomes,omitempty"`
	RehomeBytes   int               `json:"rehome_bytes,omitempty"`
	HandoffBytes  int               `json:"handoff_bytes,omitempty"`
	Stats         *instrument.Stats `json:"stats,omitempty"`
}

// CellReport converts one harness cell run under cfg.
func CellReport(e Experiment, cfg Config, procs int, c Cell) CellJSON {
	return CellJSON{
		App:           e.App,
		Dataset:       e.Dataset,
		Paper:         e.Paper,
		Config:        cfg.Label,
		Protocol:      protocolName(cfg.Protocol),
		Network:       networkName(cfg.Network),
		Placement:     placementName(cfg.Placement),
		Procs:         procs,
		TimeSeconds:   c.Time.Seconds(),
		QueueSeconds:  c.Queue.Seconds(),
		Messages:      c.Msgs,
		Bytes:         c.Bytes,
		SwitchedUnits: c.SwitchedUnits,
		Rehomes:       c.Rehomes,
		RehomeBytes:   c.RehomeBytes,
		HandoffBytes:  c.HandoffBytes,
		Stats:         c.Stats,
	}
}

// protocolName canonicalizes a protocol name for display (default
// filled in, lowercased), matching what the engine reports.
func protocolName(p string) string {
	return tmk.Config{Protocol: p}.ProtocolName()
}

// networkName canonicalizes a network-model name the same way.
func networkName(n string) string {
	return tmk.Config{Network: n}.NetworkName()
}

// placementName canonicalizes a placement-policy name the same way.
func placementName(p string) string {
	return tmk.Config{Placement: p}.PlacementName()
}

// ProtocolRowJSON is one protocol's row of a comparison.
type ProtocolRowJSON struct {
	Protocol    string  `json:"protocol"`
	TimeSeconds float64 `json:"time_seconds"`
	Messages    int     `json:"messages"`
	Bytes       int     `json:"bytes"`
	WireBytes   int     `json:"wire_bytes"`
	// SwitchedUnits counts the units the adaptive protocol switched
	// engine for (omitted under static protocols).
	SwitchedUnits int               `json:"switched_units,omitempty"`
	Stats         *instrument.Stats `json:"stats,omitempty"`
}

// ProtocolComparisonJSON is one experiment's protocol comparison.
type ProtocolComparisonJSON struct {
	App     string            `json:"app"`
	Dataset string            `json:"dataset"`
	Config  string            `json:"config"`
	Rows    []ProtocolRowJSON `json:"rows"`
}

// ProtocolComparisonReport converts a protocol comparison.
func ProtocolComparisonReport(pc ProtocolComparison) ProtocolComparisonJSON {
	out := ProtocolComparisonJSON{App: pc.App, Dataset: pc.Dataset, Config: pc.Config}
	for _, r := range pc.Rows {
		out.Rows = append(out.Rows, ProtocolRowJSON{
			Protocol:      r.Protocol,
			TimeSeconds:   r.Cell.Time.Seconds(),
			Messages:      r.Cell.Msgs,
			Bytes:         r.Cell.Bytes,
			WireBytes:     r.Cell.Stats.TotalWireBytes,
			SwitchedUnits: r.Cell.SwitchedUnits,
			Stats:         r.Cell.Stats,
		})
	}
	return out
}

// NetworkCellJSON is one (protocol, configuration) outcome on one
// network model.
type NetworkCellJSON struct {
	Protocol     string  `json:"protocol"`
	Config       string  `json:"config"`
	TimeSeconds  float64 `json:"time_seconds"`
	QueueSeconds float64 `json:"queue_seconds"`
	Messages     int     `json:"messages"`
	Bytes        int     `json:"bytes"`
	// SwitchedUnits counts the units the adaptive protocol switched
	// engine for (omitted under static protocols).
	SwitchedUnits int `json:"switched_units,omitempty"`
	// Derived marks a cell priced by trace replay instead of an engine
	// run (see Cell.Derived).
	Derived bool `json:"derived,omitempty"`
}

// NetworkRowJSON is one network model's cells of a comparison.
type NetworkRowJSON struct {
	Network string            `json:"network"`
	Cells   []NetworkCellJSON `json:"cells"`
}

// NetworkComparisonJSON is one experiment's network-sensitivity sweep.
type NetworkComparisonJSON struct {
	App     string           `json:"app"`
	Dataset string           `json:"dataset"`
	Rows    []NetworkRowJSON `json:"rows"`
}

// PlacementCellJSON is one (protocol, network) outcome under one
// placement policy.
type PlacementCellJSON struct {
	Placement    string  `json:"placement"`
	Protocol     string  `json:"protocol"`
	Network      string  `json:"network"`
	TimeSeconds  float64 `json:"time_seconds"`
	QueueSeconds float64 `json:"queue_seconds"`
	Messages     int     `json:"messages"`
	Bytes        int     `json:"bytes"`
	// SwitchedUnits, Rehomes, RehomeBytes, and HandoffBytes carry the
	// adaptive and placement accounting (omitted when zero).
	SwitchedUnits int `json:"switched_units,omitempty"`
	Rehomes       int `json:"rehomes,omitempty"`
	RehomeBytes   int `json:"rehome_bytes,omitempty"`
	HandoffBytes  int `json:"handoff_bytes,omitempty"`
}

// PlacementComparisonJSON is one experiment's home-placement sweep.
type PlacementComparisonJSON struct {
	App     string              `json:"app"`
	Dataset string              `json:"dataset"`
	Cells   []PlacementCellJSON `json:"cells"`
}

// PlacementComparisonReport converts a placement comparison.
func PlacementComparisonReport(pc PlacementComparison) PlacementComparisonJSON {
	out := PlacementComparisonJSON{App: pc.App, Dataset: pc.Dataset}
	for _, c := range pc.Cells {
		out.Cells = append(out.Cells, PlacementCellJSON{
			Placement:     c.Placement,
			Protocol:      c.Protocol,
			Network:       c.Network,
			TimeSeconds:   c.Cell.Time.Seconds(),
			QueueSeconds:  c.Cell.Queue.Seconds(),
			Messages:      c.Cell.Msgs,
			Bytes:         c.Cell.Bytes,
			SwitchedUnits: c.Cell.SwitchedUnits,
			Rehomes:       c.Cell.Rehomes,
			RehomeBytes:   c.Cell.RehomeBytes,
			HandoffBytes:  c.Cell.HandoffBytes,
		})
	}
	return out
}

// NetworkComparisonReport converts a network comparison.
func NetworkComparisonReport(nc NetworkComparison) NetworkComparisonJSON {
	out := NetworkComparisonJSON{App: nc.App, Dataset: nc.Dataset}
	for _, row := range nc.Rows {
		rj := NetworkRowJSON{Network: row.Network}
		for _, c := range row.Cells {
			rj.Cells = append(rj.Cells, NetworkCellJSON{
				Protocol:      c.Protocol,
				Config:        c.Config,
				TimeSeconds:   c.Cell.Time.Seconds(),
				QueueSeconds:  c.Cell.Queue.Seconds(),
				Messages:      c.Cell.Msgs,
				Bytes:         c.Cell.Bytes,
				SwitchedUnits: c.Cell.SwitchedUnits,
				Derived:       c.Cell.Derived,
			})
		}
		out.Rows = append(out.Rows, rj)
	}
	return out
}

// ExperimentJSON is one experiment with its cells across configurations.
type ExperimentJSON struct {
	App     string     `json:"app"`
	Dataset string     `json:"dataset"`
	Paper   string     `json:"paper,omitempty"`
	Cells   []CellJSON `json:"cells"`
}

// Table1RowJSON is one line of Table 1.
type Table1RowJSON struct {
	App        string  `json:"app"`
	Dataset    string  `json:"dataset"`
	SeqSeconds float64 `json:"seq_seconds"`
	ParSeconds float64 `json:"par_seconds"`
	Speedup    float64 `json:"speedup"`
}

// TrialsJSON is a multi-trial run of one workload under one
// configuration: per-trial results plus the min/mean/max aggregate.
type TrialsJSON struct {
	App       string `json:"app"`
	Dataset   string `json:"dataset"`
	Paper     string `json:"paper,omitempty"`
	Config    string `json:"config"`
	Protocol  string `json:"protocol"`
	Network   string `json:"network"`
	Placement string `json:"placement"`
	Procs     int    `json:"procs"`
	UnitPages int    `json:"unit_pages"`
	Dynamic   bool   `json:"dynamic"`
	// Derived marks a report whose totals were re-priced from another
	// network's stored capture by trace replay (expsvc derived serving)
	// instead of an engine execution. Message and byte totals are exact;
	// time and queue re-create the recorded pricing order.
	Derived          bool         `json:"derived,omitempty"`
	Trials           []ResultJSON `json:"trials"`
	MinTimeSeconds   float64      `json:"min_time_seconds"`
	MeanTimeSeconds  float64      `json:"mean_time_seconds"`
	MaxTimeSeconds   float64      `json:"max_time_seconds"`
	MeanMessages     float64      `json:"mean_messages"`
	MeanBytes        float64      `json:"mean_bytes"`
	MeanQueueSeconds float64      `json:"mean_queue_seconds"`
}

// TrialsReport converts a trial summary of workload e under the given
// configuration.
func TrialsReport(app, dataset, paper string, cfg tmk.Config, ts *tmk.TrialSummary) TrialsJSON {
	out := TrialsJSON{
		App:              app,
		Dataset:          dataset,
		Paper:            paper,
		Config:           LabelFor(cfg.UnitPages, cfg.Dynamic),
		Protocol:         cfg.ProtocolName(),
		Network:          cfg.NetworkName(),
		Placement:        cfg.PlacementName(),
		Procs:            cfg.Procs,
		UnitPages:        cfg.UnitPages,
		Dynamic:          cfg.Dynamic,
		MinTimeSeconds:   ts.MinTime.Seconds(),
		MeanTimeSeconds:  ts.MeanTime.Seconds(),
		MaxTimeSeconds:   ts.MaxTime.Seconds(),
		MeanMessages:     ts.MeanMessages,
		MeanBytes:        ts.MeanBytes,
		MeanQueueSeconds: ts.MeanQueueDelay.Seconds(),
	}
	for _, r := range ts.Trials {
		out.Trials = append(out.Trials, ResultReport(r))
	}
	return out
}

// ScalingPointJSON is one processor count on one scaling curve.
type ScalingPointJSON struct {
	Procs        int     `json:"procs"`
	WallSeconds  float64 `json:"wall_seconds"`
	TimeSeconds  float64 `json:"time_seconds"`
	QueueSeconds float64 `json:"queue_seconds"`
	Messages     int     `json:"messages"`
	Bytes        int     `json:"bytes"`
}

// ScalingCurveJSON is one protocol × network × mode curve of the
// -scaling sweep. WallSeconds is host wall clock (how long the engine
// took to simulate the cell), the sweep's headline metric.
type ScalingCurveJSON struct {
	App          string             `json:"app"`
	Dataset      string             `json:"dataset"`
	Protocol     string             `json:"protocol"`
	Network      string             `json:"network"`
	Mode         string             `json:"mode"`
	Scale        string             `json:"scale"`
	Barrier      string             `json:"barrier"`
	BarrierRadix int                `json:"barrier_radix,omitempty"`
	Points       []ScalingPointJSON `json:"points"`
}

// ScalingReport converts one scaling curve.
func ScalingReport(c ScalingCurve) ScalingCurveJSON {
	out := ScalingCurveJSON{
		App:          c.App,
		Dataset:      c.Dataset,
		Protocol:     protocolName(c.Protocol),
		Network:      networkName(c.Network),
		Mode:         c.Mode.Name,
		Scale:        tmk.Config{Scale: c.Mode.Scale}.ScaleName(),
		Barrier:      tmk.Config{Barrier: c.Mode.Barrier}.BarrierName(),
		BarrierRadix: c.Mode.Radix,
	}
	for _, pt := range c.Points {
		out.Points = append(out.Points, ScalingPointJSON{
			Procs:        pt.Procs,
			WallSeconds:  pt.Wall.Seconds(),
			TimeSeconds:  pt.Cell.Time.Seconds(),
			QueueSeconds: pt.Cell.Queue.Seconds(),
			Messages:     pt.Cell.Msgs,
			Bytes:        pt.Cell.Bytes,
		})
	}
	return out
}
