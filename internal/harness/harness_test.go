package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestConfigsMatchPaper(t *testing.T) {
	cfgs := Configs()
	if len(cfgs) != 4 {
		t.Fatalf("configs = %d", len(cfgs))
	}
	if cfgs[0].Label != "4K" || cfgs[0].Unit != 1 || cfgs[0].Dynamic {
		t.Fatalf("cfg0 = %+v", cfgs[0])
	}
	if cfgs[2].Label != "16K" || cfgs[2].Unit != 4 {
		t.Fatalf("cfg2 = %+v", cfgs[2])
	}
	if !cfgs[3].Dynamic || cfgs[3].Unit != 1 {
		t.Fatalf("cfg3 = %+v", cfgs[3])
	}
}

func TestConfigByLabelAndLabelFor(t *testing.T) {
	for _, c := range Configs() {
		got, ok := ConfigByLabel(c.Label)
		if !ok || got != c {
			t.Fatalf("ConfigByLabel(%q) = %+v, %v", c.Label, got, ok)
		}
		if LabelFor(c.Unit, c.Dynamic) != c.Label {
			t.Fatalf("LabelFor(%d, %v) = %q, want %q",
				c.Unit, c.Dynamic, LabelFor(c.Unit, c.Dynamic), c.Label)
		}
	}
	if got, ok := ConfigByLabel("dyn"); !ok || !got.Dynamic {
		t.Fatalf("ConfigByLabel is not case-insensitive: %+v, %v", got, ok)
	}
	if _, ok := ConfigByLabel("32K"); ok {
		t.Fatal("unknown label must not resolve")
	}
}

func TestExperimentInventory(t *testing.T) {
	if got := len(Figure1()); got != 4 {
		t.Fatalf("figure 1 experiments = %d, want 4", got)
	}
	if got := len(Figure2()); got != 11 {
		t.Fatalf("figure 2 experiments = %d, want 11 (2 Jacobi + 3 FFT + 3 MGS + 3 Shallow)", got)
	}
	if got := len(Table1()); got != 8 {
		t.Fatalf("table 1 rows = %d, want 8 applications", got)
	}
	if got := len(Figure3()); got != 4 {
		t.Fatalf("figure 3 experiments = %d, want 4", got)
	}
	for _, e := range Figure2() {
		if e.Paper == "" {
			t.Fatalf("%s %s missing paper dataset mapping", e.App, e.Dataset)
		}
	}
}

// One full experiment through all four configurations, rendered.
func TestRunAndRenderFigureSmoke(t *testing.T) {
	var buf bytes.Buffer
	e := Figure2()[0] // Jacobi row=1pg: fast
	cells, err := RunAndRenderFigure(&buf, e)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Jacobi", "time", "messages", "piggybacked", "4K", "Dyn"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if cells["4K"].Time <= 0 || cells["Dyn"].Stats == nil {
		t.Fatal("cells incomplete")
	}
}

func TestRunTable1Subset(t *testing.T) {
	rows, err := RunTable1(Table1()[5:6], "", "", "") // Jacobi only: fast
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].App != "Jacobi" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Speedup <= 1 {
		t.Fatalf("speedup = %v, want > 1 on 8 processors", rows[0].Speedup)
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	if !strings.Contains(buf.String(), "Speedup") {
		t.Fatal("table header missing")
	}
}

func TestRenderSignature(t *testing.T) {
	e := Figure2()[5] // MGS vec=1pg
	cells := map[string]Cell{}
	for _, label := range []string{"4K", "16K"} {
		unit := 1
		if label == "16K" {
			unit = 4
		}
		c, err := Run(e, Config{Label: label, Unit: unit}, Procs)
		if err != nil {
			t.Fatal(err)
		}
		cells[label] = c
	}
	var buf bytes.Buffer
	RenderSignature(&buf, e, cells)
	out := buf.String()
	if !strings.Contains(out, "4K") || !strings.Contains(out, "16K") {
		t.Fatalf("signature render:\n%s", out)
	}
	// MGS at 16K must show multi-writer buckets.
	if !strings.Contains(out, "[2:") && !strings.Contains(out, "[3:") && !strings.Contains(out, "[4:") {
		t.Fatalf("16K MGS signature has no multi-writer bucket:\n%s", out)
	}
}

// TestRunNetworkComparison sweeps one small experiment across the
// contention-free baseline and one contended model: the ideal rows
// carry zero queue delay, the contended rows carry some and never beat
// the uncontended time, and both text and JSON reports expose the
// queue-delay column.
func TestRunNetworkComparison(t *testing.T) {
	e := exp("Jacobi", "small")
	ncs, err := RunNetworkComparison([]Experiment{e}, Procs, []string{"ideal", "bus"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ncs) != 1 || len(ncs[0].Rows) != 2 {
		t.Fatalf("comparison shape: %+v", ncs)
	}
	var idealBase, busBase *Cell
	for i := range ncs[0].Rows {
		row := &ncs[0].Rows[i]
		if len(row.Cells) != len(networkCellConfigs()) {
			t.Fatalf("row %s has %d cells", row.Network, len(row.Cells))
		}
		base := &row.Cells[0].Cell // homeless, 4K
		switch row.Network {
		case "ideal":
			idealBase = base
			for _, c := range row.Cells {
				if c.Cell.Queue != 0 {
					t.Fatalf("ideal cell %s/%s has queue %v", c.Protocol, c.Config, c.Cell.Queue)
				}
			}
		case "bus":
			busBase = base
			if base.Queue <= 0 {
				t.Fatal("bus base cell reports no queue delay")
			}
		}
	}
	if idealBase == nil || busBase == nil {
		t.Fatalf("missing rows: %+v", ncs[0].Rows)
	}
	if busBase.Time < idealBase.Time {
		t.Fatalf("bus time %v beat ideal %v — queuing can only add delay",
			busBase.Time, idealBase.Time)
	}

	var buf bytes.Buffer
	RenderNetworkComparison(&buf, ncs)
	out := buf.String()
	for _, want := range []string{"Network", "Queue(s)", "home×", "dyn×", "ideal", "bus"} {
		if !strings.Contains(out, want) {
			t.Fatalf("network table missing %q:\n%s", want, out)
		}
	}

	j := NetworkComparisonReport(ncs[0])
	if j.App != "Jacobi" || len(j.Rows) != 2 {
		t.Fatalf("json report shape: %+v", j)
	}
	for _, row := range j.Rows {
		for _, c := range row.Cells {
			if row.Network == "bus" && c.Protocol == "homeless" && c.Config == "4K" && c.QueueSeconds <= 0 {
				t.Fatalf("bus json cell missing queue seconds: %+v", c)
			}
		}
	}

	if _, err := RunNetworkComparison([]Experiment{e}, Procs, []string{"token-ring"}); err == nil {
		t.Fatal("unknown network must error")
	}
}

func TestRunPlacementComparison(t *testing.T) {
	e := exp("Jacobi", "small")
	pcs, err := RunPlacementComparison([]Experiment{e}, Procs, []string{"rr", "firsttouch"}, []string{"ideal"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pcs) != 1 {
		t.Fatalf("comparison shape: %+v", pcs)
	}
	// One homeless baseline + 2 placements × 2 protocols on one network.
	if len(pcs[0].Cells) != 1+2*len(placementProtocols) {
		t.Fatalf("cell count = %d: %+v", len(pcs[0].Cells), pcs[0].Cells)
	}
	var base, rrHome, ftHome *Cell
	for i := range pcs[0].Cells {
		c := &pcs[0].Cells[i]
		switch {
		case c.Protocol == "homeless":
			base = &c.Cell
		case c.Protocol == "home" && c.Placement == "rr":
			rrHome = &c.Cell
		case c.Protocol == "home" && c.Placement == "firsttouch":
			ftHome = &c.Cell
		}
	}
	if base == nil || rrHome == nil || ftHome == nil {
		t.Fatalf("missing cells: %+v", pcs[0].Cells)
	}
	if rrHome.Rehomes != 0 {
		t.Fatalf("rr rehomed %d times", rrHome.Rehomes)
	}
	if ftHome.Rehomes == 0 {
		t.Fatal("first-touch bound nothing on jacobi (proc 0 initializes every page)")
	}
	if ftHome.RehomeBytes != 0 {
		t.Fatalf("first-touch priced its bindings: %d bytes", ftHome.RehomeBytes)
	}
	if ftHome.Msgs >= rrHome.Msgs {
		t.Fatalf("first-touch (%d msgs) did not cut home traffic vs rr (%d)", ftHome.Msgs, rrHome.Msgs)
	}

	var buf bytes.Buffer
	RenderPlacementComparison(&buf, pcs)
	out := buf.String()
	for _, want := range []string{"Placement", "hless(s)", "home×", "reh", "adapt×", "handKB", "firsttouch", "rr"} {
		if !strings.Contains(out, want) {
			t.Fatalf("placement table missing %q:\n%s", want, out)
		}
	}

	j := PlacementComparisonReport(pcs[0])
	if j.App != "Jacobi" || len(j.Cells) != len(pcs[0].Cells) {
		t.Fatalf("json report shape: %+v", j)
	}
	for _, c := range j.Cells {
		if c.Placement == "" || c.Protocol == "" || c.Network == "" {
			t.Fatalf("json cell missing config echo: %+v", c)
		}
	}

	if _, err := RunPlacementComparison([]Experiment{e}, Procs, []string{"nearest"}, nil); err == nil {
		t.Fatal("unknown placement must error")
	}
	if _, err := RunPlacementComparison([]Experiment{e}, Procs, nil, []string{"token-ring"}); err == nil {
		t.Fatal("unknown network must error")
	}
}

func TestRenderMicroCalibration(t *testing.T) {
	var buf bytes.Buffer
	RenderMicro(&buf)
	out := buf.String()
	for _, want := range []string{"296", "861", "round trip", "barrier", "diff fetch"} {
		if !strings.Contains(out, want) {
			t.Fatalf("micro table missing %q:\n%s", want, out)
		}
	}
}
