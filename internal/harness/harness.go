// Package harness defines the paper's experiments — Table 1 and Figures
// 1–3 plus the §5.1 platform microbenchmarks — and renders their results
// as text tables. Each experiment is an application × dataset; each is
// run under the four configurations the paper compares: 4 KB, 8 KB, and
// 16 KB static consistency units, and dynamic aggregation.
//
// Dataset sizes are scaled from the paper's full-size inputs but
// preserve the granularity-to-page ratios (EXPERIMENTS.md has the
// mapping), so the figures' *shapes* — who wins, by what factor, where
// the 8 K→16 K crossovers fall — are the reproduction target, not
// absolute seconds.
package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"repro/internal/apps"
	_ "repro/internal/apps/all" // populate the workload registry
	"repro/internal/instrument"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/tmk"
)

// Procs is the paper's processor count.
const Procs = 8

// Experiment is one application × dataset.
type Experiment struct {
	App     string
	Dataset string // our scaled dataset
	Paper   string // the paper's dataset it stands in for
	Make    func(procs int) apps.Workload
}

// Config is one engine configuration column.
type Config struct {
	Label   string
	Unit    int // consistency unit in pages
	Dynamic bool
	// Protocol names the coherence protocol (tmk.ProtocolNames);
	// empty selects the paper's homeless protocol.
	Protocol string
	// Network names the interconnect timing model (netmodel.Names);
	// empty selects the paper's contention-free "ideal" arithmetic.
	Network string
	// Placement names the home-placement policy (tmk.PlacementNames);
	// empty selects the paper-era round-robin homes ("rr").
	Placement string
	// Scale names the engine representation (tmk.ScaleSparse or
	// tmk.ScaleDense); empty selects the sparse default. Barrier names
	// the barrier fabric (tmk.BarrierNames); empty selects the
	// centralized golden reference. BarrierRadix is the tree fabric's
	// fan-in (zero = tmk.DefaultBarrierRadix; ignored by "central").
	Scale        string
	Barrier      string
	BarrierRadix int
}

// Configs are the paper's four configurations, in figure order.
func Configs() []Config {
	return []Config{
		{Label: "4K", Unit: 1},
		{Label: "8K", Unit: 2},
		{Label: "16K", Unit: 4},
		{Label: "Dyn", Unit: 1, Dynamic: true},
	}
}

// ConfigByLabel resolves one of the paper's configuration labels
// ("4K", "8K", "16K", "Dyn"; case-insensitive).
func ConfigByLabel(label string) (Config, bool) {
	for _, c := range Configs() {
		if strings.EqualFold(c.Label, label) {
			return c, true
		}
	}
	return Config{}, false
}

// LabelFor names the configuration with the given unit size and
// aggregation mode in the paper's nomenclature.
func LabelFor(unit int, dynamic bool) string {
	if dynamic {
		return "Dyn"
	}
	return fmt.Sprintf("%dK", 4*unit)
}

// Cell is the outcome of one experiment under one configuration.
type Cell struct {
	Time  sim.Duration
	Queue sim.Duration // cumulative network contention delay
	Msgs  int
	Bytes int
	// SwitchedUnits carries the adaptive protocol's per-run accounting
	// (zero under the static protocols): how many units changed engine
	// at least once.
	SwitchedUnits int
	// Rehomes and RehomeBytes carry the placement layer's accounting
	// (zero under "rr"): home moves after construction, and the wire
	// bytes of the priced home-state transfers among them. HandoffBytes
	// is the wire total of adaptive homeless→home image pulls.
	Rehomes      int
	RehomeBytes  int
	HandoffBytes int
	Stats        *instrument.Stats
	// Derived marks a cell whose totals were priced by replaying
	// another cell's captured trace through this cell's network model
	// instead of executing the engine (see derive.go). Message and byte
	// totals are exact; Time and Queue re-create the recorded pricing
	// order, which on contended models can differ from a fresh run by
	// the same sub-percent wobble two real runs show.
	Derived bool
}

// Run executes one experiment under one configuration with verification.
func Run(e Experiment, c Config, procs int) (Cell, error) {
	return runCell(e, c, procs, true)
}

// runCell is Run with the §5.3 instrumentation switchable: the
// network- and placement-sensitivity sweeps render and serialize only
// timing and protocol accounting (no Stats), so they run with
// collection off — the engine then skips the word-usefulness collector
// and keeps only O(1) network totals, identical output for a fraction
// of the work. Anything that reads Cell.Stats must pass collect=true.
func runCell(e Experiment, c Config, procs int, collect bool) (Cell, error) {
	w := e.Make(procs)
	res, err := apps.Run(w, tmk.Config{
		Procs:        procs,
		UnitPages:    c.Unit,
		Dynamic:      c.Dynamic,
		Protocol:     c.Protocol,
		Network:      c.Network,
		Placement:    c.Placement,
		Scale:        c.Scale,
		Barrier:      c.Barrier,
		BarrierRadix: c.BarrierRadix,
		Collect:      collect,
	})
	if err != nil {
		return Cell{}, fmt.Errorf("%s %s [%s]: %w", e.App, e.Dataset, c.Label, err)
	}
	return Cell{
		Time: res.Time, Queue: res.QueueDelay,
		Msgs: res.Messages, Bytes: res.Bytes,
		SwitchedUnits: res.SwitchedUnits,
		Rehomes:       res.Rehomes,
		RehomeBytes:   res.RehomeBytes,
		HandoffBytes:  res.HandoffBytes,
		Stats:         res.Stats,
	}, nil
}

// --- sweep scheduling --------------------------------------------------------

// sweepPool is the shared work-stealing scheduler the comparison
// grids run on: one pool of GOMAXPROCS workers for the process, so
// concurrent comparisons share the machine's run budget instead of
// multiplying it.
var sweepPool = sweep.New(0)

// cellKey computes the dedup key of one cell in a sweep batch: two
// grid entries with the same key run the engine once and share the
// result. The default key is the raw configuration tuple; the
// experiment service upgrades it to its canonical spec hash (see
// RegisterCellKey), which also collapses aliased names — an empty
// network and "ideal", an empty placement and the registered default.
var cellKey = func(app, dataset string, c Config, procs int, collect bool) string {
	return fmt.Sprintf("%s|%s|p%d|u%d|dyn%t|%s|%s|%s|%s|%s|r%d|col%t",
		app, dataset, procs, c.Unit, c.Dynamic, c.Protocol, c.Network, c.Placement,
		c.Scale, c.Barrier, c.BarrierRadix, collect)
}

// RegisterCellKey replaces the sweep dedup key function, typically
// with the experiment service's canonical spec hash (expsvc installs
// it from init, so any binary linking the service gets content-
// addressed keys). The function must map equal cells to equal keys;
// returning "" marks a cell unshareable (it always runs).
func RegisterCellKey(fn func(app, dataset string, c Config, procs int, collect bool) string) {
	if fn != nil {
		cellKey = fn
	}
}

// cellTask wraps one (experiment, config) cell as a sweep task.
func cellTask(e Experiment, c Config, procs int, collect bool, wrap func(error) error) sweep.Task {
	return sweep.Task{
		Key: cellKey(e.App, e.Dataset, c, procs, collect),
		Do: func(context.Context) (any, error) {
			cell, err := runCell(e, c, procs, collect)
			if err != nil {
				return nil, wrap(err)
			}
			return cell, nil
		},
	}
}

// --- experiment definitions -------------------------------------------------

// exp is a view over one registry entry. Every figure/table experiment
// is defined in its app package's registration; the harness only
// selects and orders them. A missing entry is a programming error
// (figures name only registered datasets), so it panics when the
// figure is requested — the harness tests exercise every figure, so
// a renamed registration fails the suite immediately.
func exp(app, dataset string) Experiment {
	e, ok := apps.Lookup(app, dataset)
	if !ok {
		panic(fmt.Sprintf("harness: workload %s/%s is not registered", app, dataset))
	}
	return Experiment{App: e.App, Dataset: e.Dataset, Paper: e.Paper, Make: e.Make}
}

// Figure1 returns the applications whose false-sharing behaviour is
// input-size independent: Barnes, Ilink, TSP, Water.
func Figure1() []Experiment {
	return []Experiment{
		exp("Barnes", "512"),
		exp("Ilink", "8x8192"),
		exp("TSP", "12-city"),
		exp("Water", "96"),
	}
}

// Figure2 returns the size-sensitive applications, one experiment per
// dataset, ordered as in the paper's Figure 2.
func Figure2() []Experiment {
	return []Experiment{
		exp("Jacobi", "128x512 (row=1pg)"),
		exp("Jacobi", "64x1024 (row=2pg)"),
		exp("3D-FFT", "8x8x128 (chunk=1pg)"),
		exp("3D-FFT", "8x8x256 (chunk=2pg)"),
		exp("3D-FFT", "8x8x512 (chunk=4pg)"),
		exp("MGS", "512x32 (vec=1pg)"),
		exp("MGS", "1024x24 (vec=2pg)"),
		exp("MGS", "2048x16 (vec=4pg)"),
		exp("Shallow", "512x16 (col=1pg)"),
		exp("Shallow", "1024x16 (col=2pg)"),
		exp("Shallow", "2048x16 (col=4pg)"),
	}
}

// Table1 returns one primary experiment per application.
func Table1() []Experiment {
	f1 := Figure1()
	return []Experiment{
		f1[0],        // Barnes
		f1[1],        // Ilink
		Figure2()[3], // 3D-FFT medium
		Figure2()[5], // MGS vec=1pg
		Figure2()[8], // Shallow col=1pg
		Figure2()[0], // Jacobi row=1pg
		f1[2],        // TSP
		f1[3],        // Water
	}
}

// Figure3 returns the signature experiments (Barnes, Ilink, Water, MGS).
func Figure3() []Experiment {
	f1 := Figure1()
	return []Experiment{f1[0], f1[1], f1[3], Figure2()[5]}
}

// --- rendering ---------------------------------------------------------------

func norm(v, base float64) string {
	if base == 0 {
		return "   -  "
	}
	return fmt.Sprintf("%6.3f", v/base)
}

// RenderFigure prints one experiment's normalized breakdown rows (the
// paper's three bar groups: execution time, messages, data) for each
// configuration, all normalized to the 4 KB column.
func RenderFigure(w io.Writer, e Experiment, cells map[string]Cell) {
	cfgs := Configs()
	base := cells["4K"]
	fmt.Fprintf(w, "%s %s  (paper: %s)\n", e.App, e.Dataset, e.Paper)
	fmt.Fprintf(w, "  %-26s", "")
	for _, c := range cfgs {
		fmt.Fprintf(w, "%8s", c.Label)
	}
	fmt.Fprintln(w)

	row := func(label string, f func(Cell) float64, baseV float64) {
		fmt.Fprintf(w, "  %-26s", label)
		for _, c := range cfgs {
			fmt.Fprintf(w, "%8s", norm(f(cells[c.Label]), baseV))
		}
		fmt.Fprintln(w)
	}
	row("time", func(c Cell) float64 { return c.Time.Seconds() }, base.Time.Seconds())
	row("messages", func(c Cell) float64 { return float64(c.Stats.Messages.Total()) },
		float64(base.Stats.Messages.Total()))
	row("  useless messages", func(c Cell) float64 { return float64(c.Stats.Messages.Useless) },
		float64(base.Stats.Messages.Total()))
	row("data", func(c Cell) float64 { return float64(c.Stats.TotalDataBytes()) },
		float64(base.Stats.TotalDataBytes()))
	row("  useless data", func(c Cell) float64 { return float64(c.Stats.UselessBytes) },
		float64(base.Stats.TotalDataBytes()))
	row("  piggybacked useless", func(c Cell) float64 { return float64(c.Stats.PiggybackedBytes) },
		float64(base.Stats.TotalDataBytes()))
	fmt.Fprintln(w)
}

// RunAndRenderFigure runs all configurations of an experiment and
// renders it. Returns the cells for further analysis.
func RunAndRenderFigure(w io.Writer, e Experiment) (map[string]Cell, error) {
	cells := make(map[string]Cell)
	for _, c := range Configs() {
		cell, err := Run(e, c, Procs)
		if err != nil {
			return nil, err
		}
		cells[c.Label] = cell
	}
	RenderFigure(w, e, cells)
	return cells, nil
}

// Table1Row is one line of Table 1.
type Table1Row struct {
	App     string
	Dataset string
	SeqTime sim.Duration // simulated 1-processor time
	ParTime sim.Duration // simulated 8-processor time at 4 KB units
	Speedup float64
}

// RunTable1 computes Table 1 (sequential simulated time and 8-processor
// speedup at the 4 KB unit) under the given coherence protocol (empty =
// homeless), network model (empty = ideal), and home placement (empty =
// round-robin).
func RunTable1(es []Experiment, protocol, network, placement string) ([]Table1Row, error) {
	var rows []Table1Row
	for _, e := range es {
		seq, err := Run(e, Config{Label: "seq", Unit: 1, Protocol: protocol, Network: network, Placement: placement}, 1)
		if err != nil {
			return nil, err
		}
		par, err := Run(e, Config{Label: "4K", Unit: 1, Protocol: protocol, Network: network, Placement: placement}, Procs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			App:     e.App,
			Dataset: e.Dataset,
			SeqTime: seq.Time,
			ParTime: par.Time,
			Speedup: seq.Time.Seconds() / par.Time.Seconds(),
		})
	}
	return rows, nil
}

// RenderTable1 prints Table 1.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-8s  %-22s  %12s  %12s  %8s\n",
		"Program", "Input Size", "Seq. Time(s)", "8-proc (s)", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s  %-22s  %12s  %12s  %8.2f\n",
			r.App, r.Dataset, sim.FormatSeconds(r.SeqTime),
			sim.FormatSeconds(r.ParTime), r.Speedup)
	}
}

// RenderSignature prints the false-sharing signature of one experiment
// at 4 KB and 16 KB units (the paper's Figure 3): per concurrent-writer
// count, the fraction of faults, split into useful and useless messages.
func RenderSignature(w io.Writer, e Experiment, cells map[string]Cell) {
	fmt.Fprintf(w, "%s %s — false sharing signature\n", e.App, e.Dataset)
	for _, label := range []string{"4K", "16K"} {
		st := cells[label].Stats
		total := 0
		for _, b := range st.Signature {
			total += b.Faults
		}
		fmt.Fprintf(w, "  %-4s", label)
		if total == 0 {
			fmt.Fprintln(w, "  (no remote faults)")
			continue
		}
		var ks []int
		for k := range st.Signature {
			ks = append(ks, k)
		}
		sort.Ints(ks)
		for _, k := range ks {
			b := st.Signature[k]
			fmt.Fprintf(w, "  [%d: %4.1f%% of faults, msgs %d useful/%d useless]",
				k, 100*float64(b.Faults)/float64(total), b.UsefulMsgs, b.UselessMsgs)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// RenderMicro prints the §5.1 platform-calibration table: the simulated
// operation costs next to the paper's measured values.
func RenderMicro(w io.Writer) {
	cost := sim.DefaultCostModel()
	rtt := cost.RoundTrip(1, 0)
	lock := 3*cost.MessageLeg + cost.LockService + 32*cost.PerByte
	barrier := 2*cost.MessageLeg + cost.BarrierManager + Procs*cost.RequestService
	diffLo := cost.PageFault + cost.RoundTrip(24, 512) + cost.RequestService
	diffHi := cost.PageFault + cost.RoundTrip(24, 3*4096) + cost.RequestService + 3*cost.DiffPerPage

	fmt.Fprintf(w, "%-28s  %14s  %14s\n", "Operation", "Simulated", "Paper (§5.1)")
	fmt.Fprintf(w, "%-28s  %11.0f µs  %14s\n", "1-byte round trip", us(rtt), "296 µs")
	fmt.Fprintf(w, "%-28s  %11.0f µs  %14s\n", "lock acquisition", us(lock), "374–574 µs")
	fmt.Fprintf(w, "%-28s  %11.0f µs  %14s\n", "8-processor barrier", us(barrier), "861 µs")
	fmt.Fprintf(w, "%-28s  %4.0f–%4.0f µs  %14s\n", "diff fetch", us(diffLo), us(diffHi), "579–1746 µs")
}

func us(d sim.Duration) float64 { return float64(d) / float64(sim.Microsecond) }

// --- protocol comparison -----------------------------------------------------

// ProtocolRow is one experiment's outcome under one coherence protocol.
type ProtocolRow struct {
	Protocol string
	Cell     Cell
}

// ProtocolComparison is one experiment run under every registered
// protocol at one configuration — the homeless-vs-home-based view the
// protocol layer exists to produce.
type ProtocolComparison struct {
	App     string
	Dataset string
	Config  string
	Rows    []ProtocolRow
}

// RunProtocolComparison runs each experiment under every registered
// coherence protocol at the paper's base configuration (4 KB units)
// and returns one comparison per experiment, protocols in sorted name
// order. Every cell is verified against the sequential reference.
// Cells run in parallel on the sweep pool.
func RunProtocolComparison(es []Experiment, procs int) ([]ProtocolComparison, error) {
	protos := tmk.ProtocolNames()
	var tasks []sweep.Task
	for _, e := range es {
		for _, proto := range protos {
			c := Config{Label: "4K", Unit: 1, Protocol: proto}
			tasks = append(tasks, cellTask(e, c, procs, true, func(err error) error {
				return fmt.Errorf("protocol %s: %w", proto, err)
			}))
		}
	}
	cells, err := sweepPool.Run(context.Background(), tasks)
	if err != nil {
		return nil, err
	}
	var out []ProtocolComparison
	for i, e := range es {
		pc := ProtocolComparison{App: e.App, Dataset: e.Dataset, Config: "4K"}
		for j, proto := range protos {
			pc.Rows = append(pc.Rows, ProtocolRow{
				Protocol: proto, Cell: cells[i*len(protos)+j].(Cell),
			})
		}
		out = append(out, pc)
	}
	return out, nil
}

// --- network sensitivity -----------------------------------------------------

// NetworkCell is one (protocol, configuration) outcome on one network.
type NetworkCell struct {
	Protocol string
	Config   string
	Cell     Cell
}

// NetworkRow is one interconnect's view of an experiment: the same
// cells re-priced on one network model.
type NetworkRow struct {
	Network string
	Cells   []NetworkCell
}

// NetworkComparison is one experiment across the interconnect family —
// the sensitivity sweep asking how the paper's conclusions move on
// faster or more contended networks.
type NetworkComparison struct {
	App     string
	Dataset string
	Rows    []NetworkRow
}

// networkCellConfigs are the (protocol, configuration) pairs each
// network is evaluated at: the paper's base (homeless, 4 KB), the
// home-based engine (home, 4 KB), the adaptive hybrid (adaptive,
// 4 KB), and dynamic aggregation (homeless, Dyn) — enough to watch the
// trades (homeless vs home vs per-unit hybrid, small units vs
// aggregation) move with the interconnect.
func networkCellConfigs() []Config {
	return []Config{
		{Label: "4K", Unit: 1, Protocol: "homeless"},
		{Label: "4K", Unit: 1, Protocol: "home"},
		{Label: "4K", Unit: 1, Protocol: "adaptive"},
		{Label: "Dyn", Unit: 1, Dynamic: true, Protocol: "homeless"},
	}
}

// RunNetworkComparison runs each experiment under every named network
// model (nil/empty = all registered models, sorted) at the cells of
// networkCellConfigs. For replay-safe applications only the base cells
// execute the engine — the other interconnects' cells are derived by
// re-pricing the captured streams (see derive.go); schedule-sensitive
// applications run every cell for real. SetNetworkDerivation(false)
// forces every cell through the engine.
func RunNetworkComparison(es []Experiment, procs int, networks []string) ([]NetworkComparison, error) {
	if len(networks) == 0 {
		networks = netmodel.Names()
	}
	// Validate every name before the first (potentially long) run.
	for _, network := range networks {
		if !netmodel.Known(network) {
			return nil, fmt.Errorf("unknown network model %q (known: %s)",
				network, strings.Join(netmodel.Names(), ", "))
		}
	}
	// Flatten the grid onto the sweep pool — one derivation task per
	// replay-safe experiment (it yields the whole networks × configs
	// block), per-cell tasks for the rest — then reassemble rows in
	// grid order.
	configs := networkCellConfigs()
	derive := make([]bool, len(es))
	var tasks []sweep.Task
	for ei, e := range es {
		if netDerivation.Load() && apps.ReplaySafe(e.App) {
			derive[ei] = true
			e := e
			tasks = append(tasks, sweep.Task{
				Key: fmt.Sprintf("derived|%s|%s|p%d|%s",
					e.App, e.Dataset, procs, strings.Join(networks, ",")),
				Do: func(context.Context) (any, error) {
					return deriveNetworkCells(e, procs, networks, configs)
				},
			})
			continue
		}
		for _, network := range networks {
			for _, c := range configs {
				c.Network = network
				tasks = append(tasks, cellTask(e, c, procs, false, func(err error) error {
					return fmt.Errorf("network %s: %w", network, err)
				}))
			}
		}
	}
	results, err := sweepPool.Run(context.Background(), tasks)
	if err != nil {
		return nil, err
	}
	var out []NetworkComparison
	next := 0
	for ei, e := range es {
		var cells []Cell
		if derive[ei] {
			cells = results[next].([]Cell)
			next++
		} else {
			cells = make([]Cell, 0, len(networks)*len(configs))
			for range networks {
				for range configs {
					cells = append(cells, results[next].(Cell))
					next++
				}
			}
		}
		nc := NetworkComparison{App: e.App, Dataset: e.Dataset}
		idx := 0
		for _, network := range networks {
			row := NetworkRow{Network: network}
			for _, c := range configs {
				row.Cells = append(row.Cells, NetworkCell{
					Protocol: c.Protocol, Config: c.Label, Cell: cells[idx],
				})
				idx++
			}
			nc.Rows = append(nc.Rows, row)
		}
		out = append(out, nc)
	}
	return out, nil
}

// RenderNetworkComparison prints the network-sensitivity table: per
// experiment and interconnect, the homeless/4 KB baseline's absolute
// time and cumulative queue delay, and the time ratios home÷homeless
// (the protocol trade), adapt÷homeless (the per-unit hybrid; its "sw"
// column counts the units it switched), and Dyn÷4K (the aggregation
// trade). Ratios above 1 mean the alternative loses on that
// interconnect.
func RenderNetworkComparison(w io.Writer, ncs []NetworkComparison) {
	fmt.Fprintf(w, "%-8s  %-22s  %-8s  %9s  %9s  %7s  %7s  %4s  %7s\n",
		"Program", "Input Size", "Network", "Time(s)", "Queue(s)", "home×", "adapt×", "sw", "dyn×")
	for _, nc := range ncs {
		for _, row := range nc.Rows {
			var base, home, adapt, dyn *Cell
			for i := range row.Cells {
				c := &row.Cells[i]
				switch {
				case c.Protocol == "homeless" && c.Config == "4K":
					base = &c.Cell
				case c.Protocol == "home" && c.Config == "4K":
					home = &c.Cell
				case c.Protocol == "adaptive" && c.Config == "4K":
					adapt = &c.Cell
				case c.Config == "Dyn":
					dyn = &c.Cell
				}
			}
			if base == nil {
				continue
			}
			ratio := func(c *Cell) string {
				if c == nil || base.Time == 0 {
					return "-"
				}
				return fmt.Sprintf("%.2f", c.Time.Seconds()/base.Time.Seconds())
			}
			sw := "-"
			if adapt != nil {
				sw = fmt.Sprintf("%d", adapt.SwitchedUnits)
			}
			fmt.Fprintf(w, "%-8s  %-22s  %-8s  %9.3f  %9.3f  %7s  %7s  %4s  %7s\n",
				nc.App, nc.Dataset, row.Network,
				base.Time.Seconds(), base.Queue.Seconds(), ratio(home), ratio(adapt), sw, ratio(dyn))
		}
	}
}

// --- home placement ----------------------------------------------------------

// PlacementCell is one (protocol, network) outcome under one placement
// policy.
type PlacementCell struct {
	Placement string
	Protocol  string
	Network   string
	Cell      Cell
}

// PlacementComparison is one experiment across the home-placement
// policies — the view asking where first-touch and JIAJIA-style
// migration close the home-vs-homeless gap, and what the adaptive
// hybrid's handoff costs under each.
type PlacementComparison struct {
	App     string
	Dataset string
	Cells   []PlacementCell
}

// placementProtocols are the protocols the placement axis matters for:
// the home-based engine and the adaptive hybrid (homeless ignores
// homes; its cells are run once per network as the comparison
// baseline).
var placementProtocols = []string{"home", "adaptive"}

// PlacementNetworks are the interconnects the placement comparison is
// evaluated on: the paper's contention-free arithmetic and the
// contended shared medium, the two ends of the range over which home
// placement moves the protocol trade.
func PlacementNetworks() []string { return []string{"ideal", "bus"} }

// RunPlacementComparison runs each experiment under every named
// placement policy (nil/empty = all registered, sorted) for the
// home-based and adaptive protocols on every named network (nil/empty
// = PlacementNetworks), plus one homeless baseline cell per network.
// All at the paper's base configuration (4 KB units); every cell is
// verified against the sequential reference.
func RunPlacementComparison(es []Experiment, procs int, placements, networks []string) ([]PlacementComparison, error) {
	if len(placements) == 0 {
		placements = tmk.PlacementNames()
	}
	for _, placement := range placements {
		if !tmk.KnownPlacement(placement) {
			return nil, fmt.Errorf("unknown placement %q (known: %s)",
				placement, strings.Join(tmk.PlacementNames(), ", "))
		}
	}
	if len(networks) == 0 {
		networks = PlacementNetworks()
	}
	for _, network := range networks {
		if !netmodel.Known(network) {
			return nil, fmt.Errorf("unknown network model %q (known: %s)",
				network, strings.Join(netmodel.Names(), ", "))
		}
	}
	// Flatten the grid — per network, one homeless baseline then the
	// placements × protocols cells — onto the sweep pool, recording
	// each task's PlacementCell identity for reassembly.
	type slot struct{ placement, protocol, network string }
	var (
		tasks []sweep.Task
		slots []slot
	)
	for _, e := range es {
		for _, network := range networks {
			c := Config{Label: "4K", Unit: 1, Protocol: "homeless", Network: network}
			tasks = append(tasks, cellTask(e, c, procs, false, func(err error) error {
				return fmt.Errorf("network %s: %w", network, err)
			}))
			slots = append(slots, slot{tmk.DefaultPlacement, "homeless", network})
			for _, placement := range placements {
				for _, protocol := range placementProtocols {
					c := Config{
						Label: "4K", Unit: 1,
						Protocol: protocol, Network: network, Placement: placement,
					}
					tasks = append(tasks, cellTask(e, c, procs, false, func(err error) error {
						return fmt.Errorf("placement %s/%s: %w", placement, protocol, err)
					}))
					slots = append(slots, slot{placement, protocol, network})
				}
			}
		}
	}
	if len(es) == 0 {
		return nil, nil
	}
	cells, err := sweepPool.Run(context.Background(), tasks)
	if err != nil {
		return nil, err
	}
	perExp := len(slots) / len(es)
	var out []PlacementComparison
	for i, e := range es {
		pc := PlacementComparison{App: e.App, Dataset: e.Dataset}
		for j := i * perExp; j < (i+1)*perExp; j++ {
			pc.Cells = append(pc.Cells, PlacementCell{
				Placement: slots[j].placement, Protocol: slots[j].protocol,
				Network: slots[j].network, Cell: cells[j].(Cell),
			})
		}
		out = append(out, pc)
	}
	return out, nil
}

// RenderPlacementComparison prints the placement comparison: per
// experiment, network, and placement policy, the homeless baseline's
// absolute time, the home-based and adaptive times as ratios to it
// (below 1 beats homeless on that interconnect), the placement layer's
// rehome count and transferred kilobytes, and the adaptive hybrid's
// switched-unit count and homeless→home handoff kilobytes (which a
// mobile placement drives to zero by migrating the home instead).
func RenderPlacementComparison(w io.Writer, pcs []PlacementComparison) {
	fmt.Fprintf(w, "%-8s  %-22s  %-6s  %-10s  %9s  %6s  %4s  %7s  %6s  %4s  %7s\n",
		"Program", "Input Size", "Net", "Placement", "hless(s)", "home×", "reh", "rehKB", "adapt×", "sw", "handKB")
	for _, pc := range pcs {
		type key struct{ network, placement, protocol string }
		cells := make(map[key]*Cell)
		var networks, placements []string
		seenNet := map[string]bool{}
		seenPl := map[string]bool{}
		for i := range pc.Cells {
			c := &pc.Cells[i]
			cells[key{c.Network, c.Placement, c.Protocol}] = &c.Cell
			if !seenNet[c.Network] {
				seenNet[c.Network] = true
				networks = append(networks, c.Network)
			}
			if c.Protocol != "homeless" && !seenPl[c.Placement] {
				seenPl[c.Placement] = true
				placements = append(placements, c.Placement)
			}
		}
		for _, network := range networks {
			base := cells[key{network, tmk.DefaultPlacement, "homeless"}]
			if base == nil || base.Time == 0 {
				continue
			}
			for _, placement := range placements {
				home := cells[key{network, placement, "home"}]
				adapt := cells[key{network, placement, "adaptive"}]
				ratio := func(c *Cell) string {
					if c == nil {
						return "-"
					}
					return fmt.Sprintf("%.2f", c.Time.Seconds()/base.Time.Seconds())
				}
				reh, rehKB := "-", "-"
				if home != nil {
					reh = fmt.Sprintf("%d", home.Rehomes)
					rehKB = fmt.Sprintf("%.1f", float64(home.RehomeBytes)/1024)
				}
				sw, handKB := "-", "-"
				if adapt != nil {
					sw = fmt.Sprintf("%d", adapt.SwitchedUnits)
					handKB = fmt.Sprintf("%.1f", float64(adapt.HandoffBytes)/1024)
				}
				fmt.Fprintf(w, "%-8s  %-22s  %-6s  %-10s  %9.3f  %6s  %4s  %7s  %6s  %4s  %7s\n",
					pc.App, pc.Dataset, network, placement,
					base.Time.Seconds(), ratio(home), reh, rehKB, ratio(adapt), sw, handKB)
			}
		}
	}
}

// RenderProtocolComparison prints the protocol comparison: absolute
// time, messages, and wire bytes per protocol, plus each row's ratio to
// the homeless baseline — the fewer-messages/more-bytes trade in one
// table. The "sw" column counts the units the adaptive protocol
// switched ("-" for the static protocols).
func RenderProtocolComparison(w io.Writer, pcs []ProtocolComparison) {
	fmt.Fprintf(w, "%-8s  %-22s  %-9s  %9s  %6s  %10s  %6s  %11s  %6s  %4s\n",
		"Program", "Input Size", "Protocol", "Time(s)", "×", "Msgs", "×", "Wire KB", "×", "sw")
	for _, pc := range pcs {
		var base *Cell
		for i := range pc.Rows {
			if pc.Rows[i].Protocol == "homeless" {
				base = &pc.Rows[i].Cell
			}
		}
		for _, r := range pc.Rows {
			ratio := func(v, b float64) string {
				if base == nil || b == 0 {
					return "-"
				}
				return fmt.Sprintf("%.2f", v/b)
			}
			var bt, bm, bb float64
			if base != nil {
				bt = base.Time.Seconds()
				bm = float64(base.Msgs)
				bb = float64(base.Stats.TotalWireBytes)
			}
			sw := "-"
			if r.Protocol == "adaptive" {
				sw = fmt.Sprintf("%d", r.Cell.SwitchedUnits)
			}
			fmt.Fprintf(w, "%-8s  %-22s  %-9s  %9.3f  %6s  %10d  %6s  %11.1f  %6s  %4s\n",
				pc.App, pc.Dataset, r.Protocol,
				r.Cell.Time.Seconds(), ratio(r.Cell.Time.Seconds(), bt),
				r.Cell.Msgs, ratio(float64(r.Cell.Msgs), bm),
				float64(r.Cell.Stats.TotalWireBytes)/1024,
				ratio(float64(r.Cell.Stats.TotalWireBytes), bb), sw)
		}
	}
}

// --- scaling sweep -----------------------------------------------------------

// ScalingMode is one engine-representation arm of the scaling sweep:
// a (scale, barrier) pairing the curves are produced under.
type ScalingMode struct {
	Name    string // display label, e.g. "sparse/tree"
	Scale   string // tmk.ScaleSparse or tmk.ScaleDense
	Barrier string // barrier fabric registry name
	Radix   int    // tree fan-in (0 = engine default; ignored by central)
}

// ScalingModes returns the sweep's two arms: the dense representation
// with the centralized barrier (the paper-faithful reference the 8-proc
// golden tests pin) and the sparse representation with the radix-4
// combining tree (the configuration built to scale past it).
func ScalingModes() []ScalingMode {
	return []ScalingMode{
		{Name: "dense/central", Scale: tmk.ScaleDense, Barrier: "central"},
		{Name: "sparse/tree", Scale: tmk.ScaleSparse, Barrier: "tree", Radix: tmk.DefaultBarrierRadix},
	}
}

// ScalingSizes returns the sweep's processor counts: the paper's 8,
// then 64/256/1024 — past anything the original evaluation ran.
func ScalingSizes() []int { return []int{8, 64, 256, 1024} }

// ScalingProtocols returns the static protocols the curves cover.
func ScalingProtocols() []string { return []string{"homeless", "home"} }

// ScalingNetworks returns the interconnects the curves cover: the
// contention-free arithmetic and the contended shared medium, the two
// ends of the range over which barrier fan-in matters.
func ScalingNetworks() []string { return []string{"ideal", "bus"} }

// ScalingPoint is one processor count on one curve: the engine run's
// accounting plus the host wall clock it took to simulate — the sweep's
// headline metric, since the modes are bit-identical at 8 procs and the
// whole point of the sparse arm is simulating large n cheaply.
type ScalingPoint struct {
	Procs int
	Wall  time.Duration
	Cell  Cell
}

// ScalingCurve is one protocol × network × mode curve over the sweep's
// processor counts.
type ScalingCurve struct {
	App      string
	Dataset  string
	Protocol string
	Network  string
	Mode     ScalingMode
	Points   []ScalingPoint
}

// RunScaling runs the experiment across protocols × networks × modes ×
// sizes on the sweep pool and returns one curve per protocol × network
// × mode, sizes ascending. Nil/empty axes take the Scaling* defaults.
// Every cell is verified against the sequential reference; wall clock
// is measured around the single cell run (on a multi-core host,
// concurrent cells share the machine, so treat wall times as
// comparative, not absolute — the committed sweep records GOMAXPROCS
// alongside).
func RunScaling(e Experiment, protocols, networks []string, sizes []int, modes []ScalingMode) ([]ScalingCurve, error) {
	if len(protocols) == 0 {
		protocols = ScalingProtocols()
	}
	for _, p := range protocols {
		if !tmk.KnownProtocol(p) {
			return nil, fmt.Errorf("unknown protocol %q (known: %s)",
				p, strings.Join(tmk.ProtocolNames(), ", "))
		}
	}
	if len(networks) == 0 {
		networks = ScalingNetworks()
	}
	for _, n := range networks {
		if !netmodel.Known(n) {
			return nil, fmt.Errorf("unknown network model %q (known: %s)",
				n, strings.Join(netmodel.Names(), ", "))
		}
	}
	if len(sizes) == 0 {
		sizes = ScalingSizes()
	}
	if len(modes) == 0 {
		modes = ScalingModes()
	}

	type timed struct {
		cell Cell
		wall time.Duration
	}
	// taskRef locates one (proto, network, mode, size) point in the
	// task results: derived rows bundle a whole network axis into one
	// task (inner selects the network), real cells stand alone.
	type taskRef struct{ task, inner int }
	refs := make([]taskRef, len(protocols)*len(networks)*len(modes)*len(sizes))
	idx := func(pi, ni, mi, si int) int {
		return ((pi*len(networks)+ni)*len(modes)+mi)*len(sizes) + si
	}
	deriving := ScalingDerivation() && apps.ReplaySafe(e.App)
	var tasks []sweep.Task
	for pi, proto := range protocols {
		for mi, mode := range modes {
			for si, procs := range sizes {
				c := Config{
					Label: "4K", Unit: 1,
					Protocol: proto,
					Scale:    mode.Scale, Barrier: mode.Barrier, BarrierRadix: mode.Radix,
				}
				if deriving && proto != "adaptive" {
					// One traced engine run covers this row's whole
					// network axis; replay prices the rest.
					proto, mode, procs, c := proto, mode, procs, c
					ti := len(tasks)
					tasks = append(tasks, sweep.Task{
						Key: fmt.Sprintf("scaling-derived|%s|%s|p%d|%s|%s|%s",
							e.App, e.Dataset, procs, proto, mode.Name, strings.Join(networks, ",")),
						Do: func(context.Context) (any, error) {
							cells, walls, err := deriveScalingGroup(e, c, networks, procs)
							if err != nil {
								return nil, fmt.Errorf("scaling %s/%s n=%d: %w",
									proto, mode.Name, procs, err)
							}
							row := make([]timed, len(cells))
							for i := range cells {
								row[i] = timed{cell: cells[i], wall: walls[i]}
							}
							return row, nil
						},
					})
					for ni := range networks {
						refs[idx(pi, ni, mi, si)] = taskRef{task: ti, inner: ni}
					}
					continue
				}
				for ni, network := range networks {
					c := c
					c.Network = network
					proto, network, mode, procs := proto, network, mode, procs
					ti := len(tasks)
					tasks = append(tasks, sweep.Task{
						Key: cellKey(e.App, e.Dataset, c, procs, false),
						Do: func(context.Context) (any, error) {
							// The sweep's datum is the per-cell wall clock, and
							// cells run back-to-back in one process: without a
							// collection point between them, heap and scheduler
							// state accumulated by earlier (large, dense) cells
							// inflates later cells' timings by integer factors.
							// Start every timed cell from a settled runtime.
							runtime.GC()
							debug.FreeOSMemory()
							start := time.Now()
							cell, err := runCell(e, c, procs, false)
							if err != nil {
								return nil, fmt.Errorf("scaling %s/%s/%s n=%d: %w",
									proto, network, mode.Name, procs, err)
							}
							return timed{cell: cell, wall: time.Since(start)}, nil
						},
					})
					refs[idx(pi, ni, mi, si)] = taskRef{task: ti, inner: -1}
				}
			}
		}
	}
	results, err := sweepPool.Run(context.Background(), tasks)
	if err != nil {
		return nil, err
	}
	var out []ScalingCurve
	for pi, proto := range protocols {
		for ni, network := range networks {
			for mi, mode := range modes {
				curve := ScalingCurve{
					App: e.App, Dataset: e.Dataset,
					Protocol: proto, Network: network, Mode: mode,
				}
				for si, procs := range sizes {
					ref := refs[idx(pi, ni, mi, si)]
					var r timed
					if ref.inner >= 0 {
						r = results[ref.task].([]timed)[ref.inner]
					} else {
						r = results[ref.task].(timed)
					}
					curve.Points = append(curve.Points, ScalingPoint{
						Procs: procs, Wall: r.wall, Cell: r.cell,
					})
				}
				out = append(out, curve)
			}
		}
	}
	return out, nil
}

// ScalingSpeedup returns the wall-clock ratio reference÷candidate at
// the given processor count for the protocol × network cell shared by
// the two curves, or 0 when either point is missing. Above 1 the
// candidate mode simulates that cell faster.
func ScalingSpeedup(reference, candidate ScalingCurve, procs int) float64 {
	var ref, cand time.Duration
	for _, pt := range reference.Points {
		if pt.Procs == procs {
			ref = pt.Wall
		}
	}
	for _, pt := range candidate.Points {
		if pt.Procs == procs {
			cand = pt.Wall
		}
	}
	if ref <= 0 || cand <= 0 {
		return 0
	}
	return float64(ref) / float64(cand)
}

// RenderScaling prints the sweep: per protocol × network and processor
// count, each mode's host wall clock and simulated time, plus the
// wall-clock speedup of the last mode over the first (the sweep's
// reference mode by convention).
func RenderScaling(w io.Writer, curves []ScalingCurve) {
	if len(curves) == 0 {
		return
	}
	// Group curves by protocol × network in arrival order.
	type cellID struct{ proto, network string }
	groups := make(map[cellID][]ScalingCurve)
	var order []cellID
	for _, c := range curves {
		id := cellID{c.Protocol, c.Network}
		if _, ok := groups[id]; !ok {
			order = append(order, id)
		}
		groups[id] = append(groups[id], c)
	}
	fmt.Fprintf(w, "%s %s — host wall clock (ms) and simulated time (s) per engine mode\n",
		curves[0].App, curves[0].Dataset)
	for _, id := range order {
		cs := groups[id]
		fmt.Fprintf(w, "  %s × %s\n", id.proto, id.network)
		fmt.Fprintf(w, "    %-6s", "procs")
		for _, c := range cs {
			fmt.Fprintf(w, "  %24s", c.Mode.Name)
		}
		if len(cs) > 1 {
			fmt.Fprintf(w, "  %8s", "speedup")
		}
		fmt.Fprintln(w)
		for i, pt := range cs[0].Points {
			fmt.Fprintf(w, "    %-6d", pt.Procs)
			for _, c := range cs {
				p := c.Points[i]
				fmt.Fprintf(w, "  %12.0f / %9.3f", float64(p.Wall.Microseconds())/1000, p.Cell.Time.Seconds())
			}
			if len(cs) > 1 {
				fmt.Fprintf(w, "  %7.1f×", ScalingSpeedup(cs[0], cs[len(cs)-1], pt.Procs))
			}
			fmt.Fprintln(w)
		}
	}
}
