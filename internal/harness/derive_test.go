package harness

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/sim"
)

// withinFrac fails unless a and b agree to the given relative
// tolerance (zero-vs-zero passes).
func withinFrac(t *testing.T, what string, a, b sim.Duration, frac float64) {
	t.Helper()
	hi := a
	if b > hi {
		hi = b
	}
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > frac*float64(hi) {
		t.Errorf("%s: derived %v vs real %v exceeds %.1f%% tolerance",
			what, a, b, 100*frac)
	}
}

// TestDerivedNetworkGridMatchesReal is the replay-safety equivalence
// matrix: every registered application (the paper's eight plus the
// storm stressor) across the contention-free baseline and both
// contended fabrics, derived grid against the same grid forced through
// the engine. For replay-safe apps the derived message and byte totals
// must be bit-identical and times must sit within the pricing-order
// tolerance; schedule-sensitive apps must never report a derived cell
// (the fallback path ran them for real).
func TestDerivedNetworkGridMatchesReal(t *testing.T) {
	networks := []string{"ideal", "bus", "switch"}
	var es []Experiment
	for _, app := range apps.Apps() {
		es = append(es, exp(app, "small"))
	}

	if !NetworkDerivation() {
		t.Fatal("network derivation must default on")
	}
	derived, err := RunNetworkComparison(es, Procs, networks)
	if err != nil {
		t.Fatal(err)
	}
	prev := SetNetworkDerivation(false)
	defer SetNetworkDerivation(prev)
	real, err := RunNetworkComparison(es, Procs, networks)
	if err != nil {
		t.Fatal(err)
	}

	for i, e := range es {
		safe := apps.ReplaySafe(e.App)
		nDerived := 0
		for ri, row := range derived[i].Rows {
			for ci, dc := range row.Cells {
				rc := real[i].Rows[ri].Cells[ci]
				name := e.App + "/" + row.Network + "/" + dc.Protocol + "/" + dc.Config
				if rc.Cell.Derived {
					t.Fatalf("%s: forced-real grid reports a derived cell", name)
				}
				if dc.Cell.Derived {
					nDerived++
				}
				if !safe {
					if dc.Cell.Derived {
						t.Errorf("%s: schedule-sensitive app must not derive", name)
					}
					// Totals wobble between real runs of these apps —
					// that is exactly why they are not derivable — so
					// there is nothing further to compare.
					continue
				}
				if dc.Cell.Msgs != rc.Cell.Msgs || dc.Cell.Bytes != rc.Cell.Bytes {
					t.Errorf("%s: derived msgs/bytes %d/%d != real %d/%d",
						name, dc.Cell.Msgs, dc.Cell.Bytes, rc.Cell.Msgs, rc.Cell.Bytes)
				}
				if dc.Cell.SwitchedUnits != rc.Cell.SwitchedUnits {
					t.Errorf("%s: derived switched units %d != real %d",
						name, dc.Cell.SwitchedUnits, rc.Cell.SwitchedUnits)
				}
				// Time and queue re-create the recorded pricing order.
				// On contended models a fresh engine run wobbles by a
				// few percent against ANOTHER fresh run (within-episode
				// arrival order follows goroutine scheduling), so these
				// bounds cover real-vs-real spread too: observed worst
				// ~2.3% time (MGS home/bus) and ~8% queue (Shallow/bus),
				// with the race detector's much coarser goroutine
				// interleaving pushing wobble to ~8% time
				// (Jacobi home/switch) and ~16% queue.
				withinFrac(t, name+" time", dc.Cell.Time, rc.Cell.Time, 0.10)
				withinFrac(t, name+" queue", dc.Cell.Queue, rc.Cell.Queue, 0.25)
			}
		}
		if safe && nDerived == 0 {
			t.Errorf("%s: replay-safe app derived no cells", e.App)
		}
	}
}

// TestDerivedScalingMatchesReal pins the scaling sweep's opt-in
// network-axis derivation: one traced run per (protocol, mode, size)
// row, with the derived points' message and byte totals bit-identical
// to engine runs of the same cells.
func TestDerivedScalingMatchesReal(t *testing.T) {
	if ScalingDerivation() {
		t.Fatal("scaling derivation must default off")
	}
	e := exp("Jacobi", "small")
	protocols := []string{"homeless", "home"}
	networks := []string{"ideal", "bus"}
	sizes := []int{8}
	modes := ScalingModes()[:1] // dense/central

	prev := SetScalingDerivation(true)
	derived, err := RunScaling(e, protocols, networks, sizes, modes)
	SetScalingDerivation(prev)
	if err != nil {
		t.Fatal(err)
	}
	real, err := RunScaling(e, protocols, networks, sizes, modes)
	if err != nil {
		t.Fatal(err)
	}
	if len(derived) != len(real) {
		t.Fatalf("curve count %d != %d", len(derived), len(real))
	}
	nDerived := 0
	for i := range derived {
		for j, dp := range derived[i].Points {
			rp := real[i].Points[j]
			name := derived[i].Protocol + "/" + derived[i].Network
			if rp.Cell.Derived {
				t.Fatalf("%s: real scaling run reports a derived cell", name)
			}
			if dp.Cell.Derived {
				nDerived++
			}
			if dp.Cell.Msgs != rp.Cell.Msgs || dp.Cell.Bytes != rp.Cell.Bytes {
				t.Errorf("%s: derived msgs/bytes %d/%d != real %d/%d",
					name, dp.Cell.Msgs, dp.Cell.Bytes, rp.Cell.Msgs, rp.Cell.Bytes)
			}
			// Same contended-model wobble bound as the grid matrix above.
			withinFrac(t, name+" time", dp.Cell.Time, rp.Cell.Time, 0.10)
			if dp.Wall <= 0 {
				t.Errorf("%s: derived point carries no wall clock", name)
			}
		}
	}
	if nDerived == 0 {
		t.Error("derived scaling sweep produced no derived cells")
	}
}
