package harness

// Replay-derived sweep cells: the network-sensitivity grid re-prices
// one application under every interconnect model, but for replay-safe
// applications (apps.ReplaySafe) the message stream itself is network-
// invariant — only the pricing changes. So the harness executes ONE
// traced engine run per (protocol, configuration) base cell on the
// canonical network and derives every other interconnect's cell by
// re-pricing the captured stream (trace.MemSink.Derive), falling back
// to real execution per cell whenever a soundness check refuses.
//
// Soundness:
//   - Static protocols (homeless, home): the stream is invariant, and
//     Derive self-verifies — its base-model half must reproduce the
//     recorded totals and every reconstructed synchronization join
//     time bit-identically, or it errors and the cell runs for real.
//   - Adaptive: the per-unit policy consults the network (mean queue
//     delay per message) at each barrier episode, so the stream is
//     only conditionally invariant. A target cell is derived from the
//     homeless twin's capture when the contention gate stays closed at
//     every episode under target pricing (the policy never leaves its
//     initial homeless mode), or from a real adaptive capture on the
//     canonical contended base when the per-episode gate verdicts
//     under target pricing match the base run's (the policy would have
//     made identical switch decisions). Anything else runs for real.
//   - Schedule-sensitive applications (lock contenders: TSP, Water)
//     never derive — their stream describes one schedule, not the app.

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/apps"
	"repro/internal/tmk"
	"repro/internal/trace"
)

// deriveBaseNetwork is the canonical network the traced base cells run
// on: the contention-free model is the cheapest to execute and its
// capture derives every other model equally well.
const deriveBaseNetwork = "ideal"

// deriveContendedBase is the network the adaptive protocol's real
// traced base runs on when some target opens the contention gate.
const deriveContendedBase = "bus"

var netDerivation atomic.Bool

func init() { netDerivation.Store(true) }

// SetNetworkDerivation toggles replay-derivation of network-sweep
// cells and returns the previous setting. Derivation is on by default;
// equivalence tests and the CLI's escape hatch turn it off to force
// every cell through the engine.
func SetNetworkDerivation(on bool) (prev bool) { return netDerivation.Swap(on) }

// NetworkDerivation reports whether network sweeps derive cells by
// replay (see SetNetworkDerivation).
func NetworkDerivation() bool { return netDerivation.Load() }

// scalingDerivation gates replay-derivation of RunScaling's network
// axis. Off by default: the scaling sweep's headline datum is the host
// wall clock of simulating each cell, and a derived cell's wall
// measures the replay, not the engine — the mode-versus-mode wall
// comparisons the scaling gate pins only mean something when every
// point pays the engine's price.
var scalingDerivation atomic.Bool

// SetScalingDerivation toggles replay-derivation of the scaling
// sweep's network axis and returns the previous setting.
func SetScalingDerivation(on bool) (prev bool) { return scalingDerivation.Swap(on) }

// ScalingDerivation reports whether RunScaling derives network-axis
// cells by replay (see SetScalingDerivation).
func ScalingDerivation() bool { return scalingDerivation.Load() }

// runCellSink runs one cell with compact trace capture attached and
// collection off, returning the cell and its capture. The capture is
// the derivation base for the cell's siblings on other networks.
func runCellSink(e Experiment, c Config, procs int) (Cell, *trace.MemSink, error) {
	ms := trace.NewMemSink()
	w := e.Make(procs)
	res, err := apps.Run(w, tmk.Config{
		Procs:        procs,
		UnitPages:    c.Unit,
		Dynamic:      c.Dynamic,
		Protocol:     c.Protocol,
		Network:      c.Network,
		Placement:    c.Placement,
		Scale:        c.Scale,
		Barrier:      c.Barrier,
		BarrierRadix: c.BarrierRadix,
		Sink:         ms,
	})
	if err != nil {
		return Cell{}, nil, fmt.Errorf("%s %s [%s]: %w", e.App, e.Dataset, c.Label, err)
	}
	return Cell{
		Time: res.Time, Queue: res.QueueDelay,
		Msgs: res.Messages, Bytes: res.Bytes,
		SwitchedUnits: res.SwitchedUnits,
		Rehomes:       res.Rehomes,
		RehomeBytes:   res.RehomeBytes,
		HandoffBytes:  res.HandoffBytes,
	}, ms, nil
}

// derivedFrom assembles a derived cell: re-priced time and totals from
// the derivation, protocol/placement accounting copied from the base
// run (those are stream facts — unit switches, home moves — identical
// by the same invariance that makes the derivation sound).
func derivedFrom(base Cell, d *trace.Derived) Cell {
	return Cell{
		Time: d.Time, Queue: d.Queue,
		Msgs: int(d.Msgs), Bytes: int(d.Bytes),
		SwitchedUnits: base.SwitchedUnits,
		Rehomes:       base.Rehomes,
		RehomeBytes:   base.RehomeBytes,
		HandoffBytes:  base.HandoffBytes,
		Derived:       true,
	}
}

// capture pairs one traced base run with a per-network derivation
// memo: the homeless column and the adaptive quiet check ask for the
// same (capture, network) derivations, and each walk over a large
// capture is worth not repeating.
type capture struct {
	ms    *trace.MemSink
	cell  Cell
	memo  map[string]*trace.Derived
	fails map[string]bool
}

func newCapture(ms *trace.MemSink, cell Cell) *capture {
	return &capture{ms: ms, cell: cell,
		memo: map[string]*trace.Derived{}, fails: map[string]bool{}}
}

func (c *capture) derive(network string) (*trace.Derived, bool) {
	if d, ok := c.memo[network]; ok {
		return d, true
	}
	if c.fails[network] {
		return nil, false
	}
	d, err := c.ms.Derive(network)
	if err != nil {
		c.fails[network] = true
		return nil, false
	}
	c.memo[network] = d
	return d, true
}

// deriveStatic prices one target network from a static-protocol base
// capture. ok=false means the derivation refused (Derive's base-half
// integrity check failed) and the caller must run the cell for real.
func deriveStatic(cp *capture, network string) (Cell, bool) {
	if network == cp.ms.Meta().Network {
		return cp.cell, true // the capture itself is this cell
	}
	d, ok := cp.derive(network)
	if !ok {
		return Cell{}, false
	}
	return derivedFrom(cp.cell, d), true
}

// adaptiveQuiet derives an adaptive cell from its homeless twin's
// capture: with the contention gate closed at every barrier episode
// under target pricing, the adaptive protocol never leaves its initial
// homeless mode and the two protocols run the same stream.
func adaptiveQuiet(cp *capture, network string) (Cell, bool) {
	d, ok := cp.derive(network)
	if !ok {
		return Cell{}, false
	}
	for _, open := range d.Gate {
		if open {
			return Cell{}, false
		}
	}
	return derivedFrom(cp.cell, d), true
}

// adaptiveContended derives an adaptive cell from a real adaptive
// capture on the contended base network: if the gate verdict sequence
// under target pricing matches the base run's, the policy would have
// made the same per-episode switch decisions, so the recorded stream
// is the target's stream too.
func adaptiveContended(cp *capture, network string) (Cell, bool) {
	if network == cp.ms.Meta().Network {
		return cp.cell, true
	}
	d, ok := cp.derive(network)
	if !ok || len(d.Gate) != len(d.BaseGate) {
		return Cell{}, false
	}
	for i := range d.Gate {
		if d.Gate[i] != d.BaseGate[i] {
			return Cell{}, false
		}
	}
	return derivedFrom(cp.cell, d), true
}

// deriveScalingGroup produces one scaling-sweep (protocol, mode,
// procs) row across the network axis from a single traced engine run:
// the base cell executes on the canonical network and every requested
// network is derived from its capture, with per-network fallback to a
// real run. The returned walls record the host cost actually paid per
// point — the traced engine run's wall on the base network's point
// (or, when the base network was not requested, folded into the first
// point), the replay's wall on derived points.
func deriveScalingGroup(e Experiment, c Config, networks []string, procs int) ([]Cell, []time.Duration, error) {
	// Same settled-runtime discipline as the real scaling cells: the
	// sweep's datum is wall clock, so don't bill earlier cells' garbage.
	runtime.GC()
	debug.FreeOSMemory()

	b := c
	b.Network = deriveBaseNetwork
	start := time.Now()
	baseCell, ms, err := runCellSink(e, b, procs)
	if err != nil {
		return nil, nil, err
	}
	baseWall := time.Since(start)
	cp := newCapture(ms, baseCell)

	cells := make([]Cell, len(networks))
	walls := make([]time.Duration, len(networks))
	baseCharged := false
	for ni, network := range networks {
		start := time.Now()
		cell, ok := deriveStatic(cp, network)
		if !ok {
			rc := c
			rc.Network = network
			if cell, err = runCell(e, rc, procs, false); err != nil {
				return nil, nil, fmt.Errorf("scaling network %s: %w", network, err)
			}
		}
		cells[ni], walls[ni] = cell, time.Since(start)
		if network == deriveBaseNetwork {
			walls[ni] += baseWall
			baseCharged = true
		}
	}
	if !baseCharged && len(walls) > 0 {
		walls[0] += baseWall
	}
	return cells, walls, nil
}

// deriveNetworkCells computes one experiment's full networks ×
// configs grid — the body of a replay-safe app's single sweep task —
// returning cells in the same (network-major) order the per-cell path
// produces. Base runs execute the engine; every other cell is derived,
// with per-cell fallback to real execution.
func deriveNetworkCells(e Experiment, procs int, networks []string, configs []Config) ([]Cell, error) {
	m := len(configs)
	out := make([]Cell, len(networks)*m)
	real := func(c Config, network string) (Cell, error) {
		c.Network = network
		cell, err := runCell(e, c, procs, false)
		if err != nil {
			return Cell{}, fmt.Errorf("network %s: %w", network, err)
		}
		return cell, nil
	}

	// Static columns: one traced base on the canonical network each.
	caps := make([]*capture, m)
	for ci, c := range configs {
		if c.Protocol == "adaptive" {
			continue
		}
		b := c
		b.Network = deriveBaseNetwork
		cell, ms, err := runCellSink(e, b, procs)
		if err != nil {
			return nil, err
		}
		caps[ci] = newCapture(ms, cell)
		for ni, network := range networks {
			cell, ok := deriveStatic(caps[ci], network)
			if !ok {
				if cell, err = real(c, network); err != nil {
					return nil, err
				}
			}
			out[ni*m+ci] = cell
		}
	}

	// Adaptive columns: quiet targets from the homeless twin's capture
	// (sharing the twin column's memoized derivations when the grid has
	// one), contended targets from one real adaptive run on the
	// contended base. The gate verdicts come from central-barrier
	// episodes only, so tree-fabric adaptive columns run for real.
	for ci, c := range configs {
		if c.Protocol != "adaptive" {
			continue
		}
		var twin *capture
		if c.Barrier != "tree" {
			for tj, t := range configs {
				if t.Protocol == "homeless" && caps[tj] != nil &&
					t.Unit == c.Unit && t.Dynamic == c.Dynamic &&
					t.Placement == c.Placement && t.Scale == c.Scale &&
					t.Barrier == c.Barrier && t.BarrierRadix == c.BarrierRadix {
					twin = caps[tj]
					break
				}
			}
			if twin == nil {
				b := c
				b.Protocol, b.Network = "homeless", deriveBaseNetwork
				cell, ms, err := runCellSink(e, b, procs)
				if err != nil {
					return nil, err
				}
				twin = newCapture(ms, cell)
			}
		}
		var bus *capture
		for ni, network := range networks {
			var cell Cell
			ok := false
			if twin != nil {
				cell, ok = adaptiveQuiet(twin, network)
			}
			if !ok && twin != nil {
				if bus == nil {
					b := c
					b.Network = deriveContendedBase
					bc, ms, err := runCellSink(e, b, procs)
					if err != nil {
						return nil, err
					}
					bus = newCapture(ms, bc)
				}
				cell, ok = adaptiveContended(bus, network)
			}
			if !ok {
				var err error
				if cell, err = real(c, network); err != nil {
					return nil, err
				}
			}
			out[ni*m+ci] = cell
		}
	}
	return out, nil
}
