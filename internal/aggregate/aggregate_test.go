package aggregate

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTrackerOrderAndDedup(t *testing.T) {
	tr := NewTracker()
	for _, p := range []int{5, 3, 5, 9, 3, 1} {
		tr.Touch(p)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := tr.Take()
	if !reflect.DeepEqual(got, []int{5, 3, 9, 1}) {
		t.Fatalf("Take = %v", got)
	}
	if tr.Len() != 0 {
		t.Fatal("Take must reset")
	}
	tr.Touch(5)
	if got := tr.Take(); !reflect.DeepEqual(got, []int{5}) {
		t.Fatalf("post-reset Take = %v", got)
	}
}

func TestNewDefaults(t *testing.T) {
	if New(0).MaxPages() != DefaultMaxPages {
		t.Fatal("default max pages")
	}
	if New(2).MaxPages() != 2 {
		t.Fatal("explicit max pages")
	}
}

func TestRebuildChunksInAccessOrder(t *testing.T) {
	g := New(2)
	g.Rebuild([]int{7, 1, 9, 4, 2})
	if g.NumGroups() != 3 || g.Pages() != 5 {
		t.Fatalf("groups=%d pages=%d", g.NumGroups(), g.Pages())
	}
	if !reflect.DeepEqual(g.GroupOf(7), []int{7, 1}) {
		t.Fatalf("GroupOf(7) = %v", g.GroupOf(7))
	}
	if !reflect.DeepEqual(g.GroupOf(1), []int{7, 1}) {
		t.Fatalf("GroupOf(1) = %v", g.GroupOf(1))
	}
	if !reflect.DeepEqual(g.GroupOf(2), []int{2}) {
		t.Fatalf("GroupOf(2) = %v (trailing partial group)", g.GroupOf(2))
	}
	if g.GroupOf(99) != nil {
		t.Fatal("unaccessed page must be ungrouped")
	}
}

func TestRebuildAllowsNonContiguousPages(t *testing.T) {
	g := New(4)
	g.Rebuild([]int{100, 3, 77, 9})
	if !reflect.DeepEqual(g.GroupOf(77), []int{100, 3, 77, 9}) {
		t.Fatalf("GroupOf = %v", g.GroupOf(77))
	}
}

func TestRebuildReplacesOldGroups(t *testing.T) {
	g := New(2)
	g.Rebuild([]int{1, 2})
	g.Rebuild([]int{3})
	if g.GroupOf(1) != nil || g.GroupOf(2) != nil {
		t.Fatal("old groups must dissolve (pattern change)")
	}
	if !reflect.DeepEqual(g.GroupOf(3), []int{3}) {
		t.Fatal("new group missing")
	}
}

func TestRebuildEmptyDissolvesEverything(t *testing.T) {
	g := New(2)
	g.Rebuild([]int{1, 2, 3})
	g.Rebuild(nil)
	if g.NumGroups() != 0 || g.Pages() != 0 || g.GroupOf(1) != nil {
		t.Fatal("empty rebuild must dissolve all groups")
	}
}

func TestRebuildPanicsOnDuplicate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).Rebuild([]int{1, 1})
}

// Property: Rebuild produces a partition — every accessed page is in
// exactly one group, groups are disjoint, sized within [1, MaxPages],
// and the concatenation of groups equals the accessed order.
func TestPropRebuildIsPartition(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, r *rand.Rand) {
			n := r.Intn(30)
			perm := r.Perm(1000)[:n]
			args[0] = reflect.ValueOf(perm)
			args[1] = reflect.ValueOf(1 + r.Intn(6))
		},
	}
	f := func(accessed []int, maxPages int) bool {
		g := New(maxPages)
		g.Rebuild(accessed)
		var concat []int
		for i := 0; i < g.NumGroups(); i++ {
			// reconstruct groups via GroupOf of their first member
		}
		seen := make(map[int]int)
		for _, p := range accessed {
			grp := g.GroupOf(p)
			if grp == nil || len(grp) == 0 || len(grp) > maxPages {
				return false
			}
			found := false
			for _, q := range grp {
				if q == p {
					found = true
				}
			}
			if !found {
				return false
			}
			seen[p]++
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		// concatenation preserves access order
		concat = concat[:0]
		done := make(map[int]bool)
		for _, p := range accessed {
			if done[p] {
				continue
			}
			for _, q := range g.GroupOf(p) {
				concat = append(concat, q)
				done[q] = true
			}
		}
		if len(concat) != len(accessed) {
			return false
		}
		for i := range concat {
			if concat[i] != accessed[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
