// Package aggregate implements the paper's §4 dynamic aggregation
// algorithm: coalescing pages into page groups based on the access
// pattern observed in the previous interval.
//
// Each processor keeps its own Tracker (the pages it faulted on, in
// order) and Groups (the current page-group partition). At each
// synchronization the groups are rebuilt from the tracker: pages faulted
// on since the last synchronization are partitioned, in access order,
// into groups of at most MaxPages. Pages need not be contiguous. A page
// that was not accessed in the last interval belongs to no group and is
// fetched alone — this is how the algorithm "reverts to using pages" when
// the access pattern changes, at the cost of one interval of hysteresis.
package aggregate

// DefaultMaxPages bounds a page group at 4 pages (16 KB), the largest
// static consistency unit the paper evaluates.
const DefaultMaxPages = 4

// Tracker records the pages a processor faulted on during the current
// interval, de-duplicated, in first-access order.
type Tracker struct {
	order []int
	seen  map[int]bool
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{seen: make(map[int]bool)}
}

// Touch records an access fault on page.
func (t *Tracker) Touch(page int) {
	if !t.seen[page] {
		t.seen[page] = true
		t.order = append(t.order, page)
	}
}

// Len returns the number of distinct pages touched.
func (t *Tracker) Len() int { return len(t.order) }

// Take returns the access-ordered page list and resets the tracker.
func (t *Tracker) Take() []int {
	out := t.order
	t.order = nil
	t.seen = make(map[int]bool, len(out))
	return out
}

// Groups is one processor's current page-group partition.
type Groups struct {
	maxPages int
	members  [][]int     // group id -> pages
	groupOf  map[int]int // page -> group id
}

// New returns an empty partition with the given maximum group size.
// maxPages < 1 selects DefaultMaxPages.
func New(maxPages int) *Groups {
	if maxPages < 1 {
		maxPages = DefaultMaxPages
	}
	return &Groups{maxPages: maxPages, groupOf: make(map[int]int)}
}

// MaxPages returns the group size bound.
func (g *Groups) MaxPages() int { return g.maxPages }

// Rebuild replaces the partition: accessed (in access order, duplicates
// not allowed) is chunked into runs of at most MaxPages. An empty
// accessed list dissolves all groups.
func (g *Groups) Rebuild(accessed []int) {
	g.members = g.members[:0]
	clear(g.groupOf)
	for start := 0; start < len(accessed); start += g.maxPages {
		end := start + g.maxPages
		if end > len(accessed) {
			end = len(accessed)
		}
		id := len(g.members)
		grp := make([]int, end-start)
		copy(grp, accessed[start:end])
		g.members = append(g.members, grp)
		for _, p := range grp {
			if _, dup := g.groupOf[p]; dup {
				panic("aggregate: duplicate page in Rebuild input")
			}
			g.groupOf[p] = id
		}
	}
}

// GroupOf returns the pages fetched together with page (including page
// itself), or nil if the page is ungrouped (fetched alone). The returned
// slice must not be modified.
func (g *Groups) GroupOf(page int) []int {
	id, ok := g.groupOf[page]
	if !ok {
		return nil
	}
	return g.members[id]
}

// NumGroups returns the number of groups in the partition.
func (g *Groups) NumGroups() int { return len(g.members) }

// Pages returns the total number of grouped pages.
func (g *Groups) Pages() int { return len(g.groupOf) }
