// Package trace is the observability layer's on-disk format: a
// versioned JSONL event log capturing everything a run put on the
// simulated wire — one event per simnet pricing operation (leg, control
// leg, request/reply exchange) — interleaved with the engine's
// lifecycle events (barrier enter/leave, lock acquire/release, page
// fault begin/end, protocol switches, home moves).
//
// Capture is live: the engine emits events as they happen, under the
// same lock that prices the messages, so the trace records the exact
// operation sequence the network model saw. That makes the format
// load-bearing: Replay streams a captured run back through any
// netmodel.Model without re-executing the application, and replay
// through the *same* model reproduces the run's message, byte, and
// queue-delay totals bit-identically (pinned by test — the totals are
// sums over the identical pricing-call sequence).
//
// One Writer may serve several Systems concurrently (a sweep tracing
// every cell into one file): every event carries its run id, so
// interleaved runs de-multiplex losslessly. Readers tolerate unknown
// fields, so the schema can grow without breaking old analyzers; the
// Version field in the header line gates incompatible changes.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Version is the schema version this package writes. Readers accept
// files of the same or lower version.
const Version = 1

// Event types. Every JSONL line is one Event; E discriminates.
const (
	// EvHeader is the file's first line: schema version only.
	EvHeader = "header"
	// EvRunStart opens one engine run: run id plus the run's identity
	// (app, dataset, protocol, network, placement, procs, unit geometry,
	// cost calibration) — everything Replay needs to rebuild the model.
	EvRunStart = "run_start"
	// EvRunEnd closes a run with its recorded totals: simulated time,
	// messages, payload bytes, cumulative queue delay. Replay parity is
	// checked against these.
	EvRunEnd = "run_end"

	// EvLeg is one one-way message priced with its payload.
	EvLeg = "leg"
	// EvControl is one control message priced payload-free (the bytes
	// field still records the wire size, matching simnet.SendControl).
	EvControl = "ctl"
	// EvExchange is one request/reply pair priced as a single exchange.
	EvExchange = "xchg"

	// EvBarrierEnter marks a processor arriving at a barrier (clock at
	// arrival, before the arrival message); EvBarrierLeave marks its
	// departure (clock after the release message), with N the 1-based
	// barrier episode.
	EvBarrierEnter = "barrier_enter"
	EvBarrierLeave = "barrier_leave"
	// EvLockRequest marks a processor asking for lock L (clock at the
	// request, before the request message); EvLockAcquire marks it being
	// granted the lock; EvLockRelease marks it releasing. The request
	// event is what ties the payload-free LockRequest/LockForward control
	// legs and the LockGrant leg back to a lock id — derivation needs
	// that to rebuild grant times under a different interconnect.
	EvLockRequest = "lock_req"
	EvLockAcquire = "lock_acq"
	EvLockRelease = "lock_rel"
	// EvFaultBegin marks a read/access fault on a page (clock at trap);
	// EvFaultEnd marks the fault serviced (clock after the fetch).
	EvFaultBegin = "fault"
	EvFaultEnd   = "fault_end"
	// EvSwitch marks the adaptive protocol re-pointing a unit between
	// engines at a barrier (N: the policy's evidence phase).
	EvSwitch = "switch"
	// EvRehome marks the placement layer moving a unit's home (Transfer
	// reports whether home state travelled on the wire, B its size).
	EvRehome = "rehome"
)

// Event is one JSONL line. A single struct covers every event type so
// encode→decode round-trips by plain struct equality; fields irrelevant
// to a type stay zero and are omitted from the wire. Decoders ignore
// unknown fields (forward compatibility) and treat absent fields as
// zero.
type Event struct {
	E string `json:"e"`
	V int    `json:"v,omitempty"` // header: schema version
	R int64  `json:"r,omitempty"` // run id (all events except header)

	// Message pricing operations.
	K  string       `json:"k,omitempty"`  // message kind (request kind on xchg)
	RK string       `json:"rk,omitempty"` // reply kind (xchg only)
	S  int          `json:"s,omitempty"`  // source processor
	D  int          `json:"d,omitempty"`  // destination processor
	B  int          `json:"b,omitempty"`  // payload bytes (request bytes on xchg)
	RB int          `json:"rb,omitempty"` // reply payload bytes (xchg only)
	At sim.Duration `json:"at,omitempty"` // sender's virtual clock at send
	Q  sim.Duration `json:"q,omitempty"`  // queue delay (request leg on xchg)
	RQ sim.Duration `json:"rq,omitempty"` // reply leg queue delay (xchg only)

	// Engine lifecycle.
	P        int    `json:"p,omitempty"`      // processor
	N        int    `json:"n,omitempty"`      // barrier episode / evidence phase
	U        int    `json:"u,omitempty"`      // consistency unit
	Pg       int    `json:"pg,omitempty"`     // page
	L        int    `json:"l,omitempty"`      // lock id
	FromName string `json:"fproto,omitempty"` // switch: previous engine
	ToName   string `json:"tproto,omitempty"` // switch: next engine
	FromHome int    `json:"fhome,omitempty"`  // rehome: previous home
	ToHome   int    `json:"thome,omitempty"`  // rehome: next home
	Transfer bool   `json:"tr,omitempty"`     // rehome: state moved on the wire

	// Run identity (run_start).
	App       string         `json:"app,omitempty"`
	Dataset   string         `json:"dataset,omitempty"`
	Protocol  string         `json:"protocol,omitempty"`
	Network   string         `json:"network,omitempty"`
	Placement string         `json:"placement,omitempty"`
	Procs     int            `json:"procs,omitempty"`
	UnitPages int            `json:"unit_pages,omitempty"`
	Dynamic   bool           `json:"dynamic,omitempty"`
	Barrier   string         `json:"barrier,omitempty"`
	BarrRadix int            `json:"barrier_radix,omitempty"`
	Cost      *sim.CostModel `json:"cost,omitempty"`

	// Recorded totals (run_end).
	Time  sim.Duration `json:"time,omitempty"`
	Msgs  int64        `json:"msgs,omitempty"`
	Bytes int64        `json:"bytes,omitempty"`
	Queue sim.Duration `json:"queue,omitempty"`
}

// RunMeta is one run's identity, written on its run_start line.
type RunMeta struct {
	App       string
	Dataset   string
	Protocol  string
	Network   string
	Placement string
	Procs     int
	UnitPages int
	Dynamic   bool
	// Barrier is the run's barrier fabric ("central" or "tree") and
	// BarrierRadix the tree's fan-in; derivation reconstructs barrier
	// release times from them. Empty means central.
	Barrier      string
	BarrierRadix int
	// Cost is the run's communication cost calibration; Replay rebuilds
	// the pricing model from it. Nil means sim.DefaultCostModel.
	Cost *sim.CostModel
}

// Writer emits a trace stream: one header line, then events. It is safe
// for concurrent use — several Systems may share one Writer, each under
// its own run id — and each event is written with a single Write call,
// so line-atomic sinks (Ring, os.File) never see torn lines.
//
// Write errors are sticky: the first one is retained and every later
// emit is dropped. Callers must check Err (or Close) when capture ends —
// a trace that could not be fully written must fail loudly, never pass
// silently as a truncated file that replays to wrong totals.
type Writer struct {
	mu      sync.Mutex
	out     io.Writer
	err     error
	app     string
	dataset string
	nextRun int64
}

// NewWriter starts a trace stream on out, writing the header line.
func NewWriter(out io.Writer) *Writer {
	w := &Writer{out: out}
	w.emit(&Event{E: EvHeader, V: Version})
	return w
}

// SetLabel sets the app/dataset identity stamped on subsequent runs
// whose meta leaves them empty (the engine knows its configuration but
// not which workload drives it). Not safe concurrently with BeginRun.
func (w *Writer) SetLabel(app, dataset string) {
	w.mu.Lock()
	w.app, w.dataset = app, dataset
	w.mu.Unlock()
}

// Err returns the first write error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close flushes nothing (the Writer is unbuffered; wrap a bufio.Writer
// if the sink needs it) but surfaces the sticky write error, so
// `defer`-friendly callers cannot drop a partial trace on the floor.
func (w *Writer) Close() error { return w.Err() }

func (w *Writer) emit(ev *Event) {
	line, err := json.Marshal(ev)
	if err != nil {
		// Event structs always marshal; keep the invariant visible.
		panic(fmt.Sprintf("trace: marshal failed: %v", err))
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return
	}
	if _, err := w.out.Write(line); err != nil {
		w.err = fmt.Errorf("trace: write failed: %w", err)
	}
}

// BeginRun opens a new run on the stream: assigns the next run id,
// fills empty App/Dataset from the Writer's label, writes the run_start
// line, and returns the run's event emitter.
func (w *Writer) BeginRun(meta RunMeta) *Run {
	w.mu.Lock()
	w.nextRun++
	id := w.nextRun
	if meta.App == "" {
		meta.App = w.app
	}
	if meta.Dataset == "" {
		meta.Dataset = w.dataset
	}
	w.mu.Unlock()
	w.emit(&Event{
		E: EvRunStart, R: id,
		App: meta.App, Dataset: meta.Dataset,
		Protocol: meta.Protocol, Network: meta.Network, Placement: meta.Placement,
		Procs: meta.Procs, UnitPages: meta.UnitPages, Dynamic: meta.Dynamic,
		Barrier: meta.Barrier, BarrRadix: meta.BarrierRadix,
		Cost: meta.Cost,
	})
	return &Run{w: w, id: id}
}

// Run emits one engine run's events under its run id. The message
// methods implement simnet.TraceSink (called under the network's
// pricing lock, so message events appear in exact pricing order); the
// lifecycle methods are called from the engine's processor goroutines
// and interleave in wall-clock order, which is fine — analysis bins
// them by their virtual timestamps, and replay reads only the message
// events.
type Run struct {
	w  *Writer
	id int64
}

// ID returns the run's id within its stream.
func (r *Run) ID() int64 { return r.id }

// TraceLeg implements simnet.TraceSink.
func (r *Run) TraceLeg(kind simnet.MsgKind, src, dst, bytes int, at, queue sim.Duration) {
	r.w.emit(&Event{E: EvLeg, R: r.id, K: kind.String(), S: src, D: dst, B: bytes, At: at, Q: queue})
}

// TraceControl implements simnet.TraceSink.
func (r *Run) TraceControl(kind simnet.MsgKind, src, dst, bytes int, at, queue sim.Duration) {
	r.w.emit(&Event{E: EvControl, R: r.id, K: kind.String(), S: src, D: dst, B: bytes, At: at, Q: queue})
}

// TraceExchange implements simnet.TraceSink.
func (r *Run) TraceExchange(reqKind, repKind simnet.MsgKind, src, dst, reqBytes, repBytes int, at sim.Duration, t netmodel.ExchangeTiming) {
	r.w.emit(&Event{
		E: EvExchange, R: r.id, K: reqKind.String(), RK: repKind.String(),
		S: src, D: dst, B: reqBytes, RB: repBytes,
		At: at, Q: t.Request.Queue, RQ: t.Reply.Queue,
	})
}

// BarrierEnter records processor p arriving at a barrier at its current
// virtual clock.
func (r *Run) BarrierEnter(p int, at sim.Duration) {
	r.w.emit(&Event{E: EvBarrierEnter, R: r.id, P: p, At: at})
}

// BarrierLeave records processor p departing barrier episode n at its
// post-release virtual clock.
func (r *Run) BarrierLeave(p, episode int, at sim.Duration) {
	r.w.emit(&Event{E: EvBarrierLeave, R: r.id, P: p, N: episode, At: at})
}

// LockRequest records processor p asking for lock l at its pre-request
// virtual clock (cached re-acquires are message-free and emit nothing).
func (r *Run) LockRequest(p, l int, at sim.Duration) {
	r.w.emit(&Event{E: EvLockRequest, R: r.id, P: p, L: l, At: at})
}

// LockAcquire records processor p being granted lock l.
func (r *Run) LockAcquire(p, l int, at sim.Duration) {
	r.w.emit(&Event{E: EvLockAcquire, R: r.id, P: p, L: l, At: at})
}

// LockRelease records processor p releasing lock l.
func (r *Run) LockRelease(p, l int, at sim.Duration) {
	r.w.emit(&Event{E: EvLockRelease, R: r.id, P: p, L: l, At: at})
}

// FaultBegin records an access fault by processor p on a page of a unit.
func (r *Run) FaultBegin(p, page, unit int, at sim.Duration) {
	r.w.emit(&Event{E: EvFaultBegin, R: r.id, P: p, Pg: page, U: unit, At: at})
}

// FaultEnd records the fault on page serviced, at p's post-fetch clock.
func (r *Run) FaultEnd(p, page int, at sim.Duration) {
	r.w.emit(&Event{E: EvFaultEnd, R: r.id, P: p, Pg: page, At: at})
}

// ProtocolSwitch records the adaptive policy re-pointing unit u from
// one engine to another during evidence phase n.
func (r *Run) ProtocolSwitch(u int, from, to string, phase int) {
	r.w.emit(&Event{E: EvSwitch, R: r.id, U: u, FromName: from, ToName: to, N: phase})
}

// Rehome records the placement layer moving unit u's home; transfer
// reports whether bytes of home state travelled on the wire.
func (r *Run) Rehome(u, from, to, bytes int, transfer bool) {
	r.w.emit(&Event{E: EvRehome, R: r.id, U: u, FromHome: from, ToHome: to, B: bytes, Transfer: transfer})
}

// End closes the run with its recorded totals.
func (r *Run) End(time sim.Duration, msgs, bytes int64, queue sim.Duration) {
	r.w.emit(&Event{E: EvRunEnd, R: r.id, Time: time, Msgs: msgs, Bytes: bytes, Queue: queue})
}

// Begin implements Sink. A Run's identity was already written by
// BeginRun, so this is a no-op — it exists so the engine can drive a
// Writer-backed Run and a MemSink through the same interface.
func (r *Run) Begin(RunMeta) {}

// RunEnd implements Sink: closes the run with its recorded totals. The
// per-processor final clocks are not part of the JSONL schema (the
// run_end time already is their max); only in-memory sinks keep them.
func (r *Run) RunEnd(time sim.Duration, msgs, bytes int64, queue sim.Duration, _ []sim.Duration) {
	r.End(time, msgs, bytes, queue)
}
