package trace_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/trace"
)

// TestEventRoundTrip pins the schema's wire round-trip: a fully
// populated event of every type written through the Writer must decode
// back to an equal struct. The single-struct Event design makes plain
// equality the whole check.
func TestEventRoundTrip(t *testing.T) {
	cost := sim.DefaultCostModel()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	w.SetLabel("Jacobi", "small")
	run := w.BeginRun(trace.RunMeta{
		Protocol: "adaptive", Network: "bus", Placement: "migrate",
		Procs: 8, UnitPages: 2, Dynamic: true, Cost: &cost,
	})
	run.TraceLeg(simnet.DiffRequest, 0, 1, 64, 100, 7)
	run.TraceControl(simnet.BarrierArrive, 1, 0, 16, 200, 3)
	run.TraceExchange(simnet.DiffRequest, simnet.DiffReply, 2, 3, 32, 4096, 300,
		netmodel.ExchangeTiming{
			Request: netmodel.Timing{Total: 50, Queue: 5},
			Reply:   netmodel.Timing{Total: 90, Queue: 9},
			Service: 30,
		})
	run.BarrierEnter(4, 400)
	run.BarrierLeave(4, 2, 500)
	run.LockAcquire(5, 3, 600)
	run.LockRelease(5, 3, 700)
	run.FaultBegin(6, 42, 21, 800)
	run.FaultEnd(6, 42, 900)
	run.ProtocolSwitch(7, "home", "homeless", 3)
	run.Rehome(9, 1, 2, 8192, true)
	run.End(12345, 678, 90123, 456)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != trace.Version {
		t.Fatalf("version = %d, want %d", r.Version(), trace.Version)
	}
	want := []trace.Event{
		{E: trace.EvRunStart, R: 1, App: "Jacobi", Dataset: "small",
			Protocol: "adaptive", Network: "bus", Placement: "migrate",
			Procs: 8, UnitPages: 2, Dynamic: true, Cost: &cost},
		{E: trace.EvLeg, R: 1, K: "DiffRequest", S: 0, D: 1, B: 64, At: 100, Q: 7},
		{E: trace.EvControl, R: 1, K: "BarrierArrive", S: 1, D: 0, B: 16, At: 200, Q: 3},
		{E: trace.EvExchange, R: 1, K: "DiffRequest", RK: "DiffReply", S: 2, D: 3, B: 32, RB: 4096, At: 300, Q: 5, RQ: 9},
		{E: trace.EvBarrierEnter, R: 1, P: 4, At: 400},
		{E: trace.EvBarrierLeave, R: 1, P: 4, N: 2, At: 500},
		{E: trace.EvLockAcquire, R: 1, P: 5, L: 3, At: 600},
		{E: trace.EvLockRelease, R: 1, P: 5, L: 3, At: 700},
		{E: trace.EvFaultBegin, R: 1, P: 6, Pg: 42, U: 21, At: 800},
		{E: trace.EvFaultEnd, R: 1, P: 6, Pg: 42, At: 900},
		{E: trace.EvSwitch, R: 1, U: 7, FromName: "home", ToName: "homeless", N: 3},
		{E: trace.EvRehome, R: 1, U: 9, FromHome: 1, ToHome: 2, B: 8192, Transfer: true},
		{E: trace.EvRunEnd, R: 1, Time: 12345, Msgs: 678, Bytes: 90123, Queue: 456},
	}
	for i, wantEv := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !reflect.DeepEqual(*got, wantEv) {
			t.Fatalf("event %d:\n got %+v\nwant %+v", i, *got, wantEv)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("trailing Next() error = %v, want io.EOF", err)
	}
}

// TestReaderToleratesUnknownFields pins forward compatibility: a trace
// written by a future same-major writer with extra fields must still
// parse, with the known fields intact.
func TestReaderToleratesUnknownFields(t *testing.T) {
	in := `{"e":"header","v":1,"written_by":"future"}
{"e":"run_start","r":1,"network":"ideal","procs":4,"shiny_new_field":[1,2,3]}
{"e":"leg","r":1,"k":"DiffRequest","s":0,"d":1,"b":64,"at":10,"q":0,"hw_timestamp":99}
{"e":"run_end","r":1,"msgs":1,"bytes":64}
`
	r, err := trace.NewReader(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var events []*trace.Event
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	if events[1].B != 64 || events[1].K != "DiffRequest" {
		t.Fatalf("leg fields lost: %+v", events[1])
	}
}

// TestReaderRejectsNewerVersion: an incompatible (higher-version)
// header must refuse loudly, not misparse.
func TestReaderRejectsNewerVersion(t *testing.T) {
	in := fmt.Sprintf(`{"e":"header","v":%d}`+"\n", trace.Version+1)
	if _, err := trace.NewReader(strings.NewReader(in)); err == nil {
		t.Fatal("want error for newer schema version")
	}
}

// failAfter fails every Write after the first n.
type failAfter struct {
	n int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

// TestWriterStickyError pins the partial-trace guard: once a write
// fails, Close (and Err) must report it, so callers cannot ship a
// silently truncated capture.
func TestWriterStickyError(t *testing.T) {
	w := trace.NewWriter(&failAfter{n: 2}) // header + run_start succeed
	run := w.BeginRun(trace.RunMeta{Network: "ideal"})
	run.TraceLeg(simnet.DiffRequest, 0, 1, 64, 0, 0) // fails, sticks
	run.End(0, 1, 64, 0)                             // dropped
	if err := w.Close(); err == nil {
		t.Fatal("Close() = nil after a failed write; partial traces must fail loudly")
	}
}

// TestRingWindow pins the flight recorder: a ring keeps the newest
// capacity lines, counts evictions, and Dump re-synthesizes a header so
// the window is always readable.
func TestRingWindow(t *testing.T) {
	ring := trace.NewRing(4)
	w := trace.NewWriter(ring)
	run := w.BeginRun(trace.RunMeta{Network: "ideal", Procs: 2})
	for i := 0; i < 10; i++ {
		run.TraceLeg(simnet.DiffRequest, 0, 1, 100+i, sim.Duration(i), 0)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if ring.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", ring.Len())
	}
	// 12 lines written (header, run_start, 10 legs) minus 4 retained.
	if ring.Dropped() != 8 {
		t.Fatalf("Dropped() = %d, want 8", ring.Dropped())
	}

	var dump bytes.Buffer
	if err := ring.Dump(&dump); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(bytes.NewReader(dump.Bytes()))
	if err != nil {
		t.Fatalf("dump must start with a readable header: %v", err)
	}
	var got []int
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ev.B)
	}
	want := []int{106, 107, 108, 109} // the newest four legs, oldest first
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("window bytes = %v, want %v", got, want)
	}
}

// TestExportSnapshotReplays: a full (uncapped) log of payload legs
// exported after the fact replays to the network's exact totals.
func TestExportSnapshotReplays(t *testing.T) {
	n := simnet.New(sim.DefaultCostModel())
	n.SendLeg(simnet.DiffRequest, 0, 1, 64, 0)
	n.SendLeg(simnet.DiffReply, 1, 0, 4096, 50)
	n.SendLeg(simnet.BarrierArrive, 2, 0, 16, 100)

	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	if err := trace.ExportSnapshot(w, trace.RunMeta{Network: n.Model().Name(), Procs: 3}, n); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	runs, err := trace.Replay(bytes.NewReader(buf.Bytes()), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	if !runs[0].Matches() {
		t.Fatalf("export replay diverged: recorded %+v, replayed %+v",
			runs[0].Recorded, runs[0].Replayed)
	}
}

// TestExportSnapshotRejectsDroppedRecords pins the silent-partial-trace
// guard: a capped log that has evicted records must refuse to export.
func TestExportSnapshotRejectsDroppedRecords(t *testing.T) {
	n := simnet.New(sim.DefaultCostModel(), simnet.WithRecordCap(1))
	n.SendLeg(simnet.DiffRequest, 0, 1, 64, 0)
	n.SendLeg(simnet.DiffReply, 1, 0, 4096, 50) // evicts the first

	w := trace.NewWriter(io.Discard)
	err := trace.ExportSnapshot(w, trace.RunMeta{Network: "ideal"}, n)
	if err == nil {
		t.Fatal("ExportSnapshot succeeded on a log with dropped records")
	}
	if !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("error should name the dropped records, got: %v", err)
	}
}
