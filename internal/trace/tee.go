package trace

import (
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Tee returns a Sink that forwards every event to a then b. It lets
// two capture paths observe the same run — the expsvc flight recorder
// (a shared JSONL *Run) alongside the compact *MemSink kept for
// replay-derived serving. Both sides see events in pricing order;
// neither may block, per the Sink contract.
func Tee(a, b Sink) Sink { return &tee{a, b} }

type tee struct{ a, b Sink }

var _ Sink = (*tee)(nil)

func (t *tee) Begin(meta RunMeta) { t.a.Begin(meta); t.b.Begin(meta) }

func (t *tee) TraceLeg(kind simnet.MsgKind, src, dst, bytes int, at, queue sim.Duration) {
	t.a.TraceLeg(kind, src, dst, bytes, at, queue)
	t.b.TraceLeg(kind, src, dst, bytes, at, queue)
}

func (t *tee) TraceControl(kind simnet.MsgKind, src, dst, bytes int, at, queue sim.Duration) {
	t.a.TraceControl(kind, src, dst, bytes, at, queue)
	t.b.TraceControl(kind, src, dst, bytes, at, queue)
}

func (t *tee) TraceExchange(reqKind, repKind simnet.MsgKind, src, dst, reqBytes, replyBytes int, at sim.Duration, tm netmodel.ExchangeTiming) {
	t.a.TraceExchange(reqKind, repKind, src, dst, reqBytes, replyBytes, at, tm)
	t.b.TraceExchange(reqKind, repKind, src, dst, reqBytes, replyBytes, at, tm)
}

func (t *tee) BarrierEnter(p int, at sim.Duration) {
	t.a.BarrierEnter(p, at)
	t.b.BarrierEnter(p, at)
}

func (t *tee) BarrierLeave(p, episode int, at sim.Duration) {
	t.a.BarrierLeave(p, episode, at)
	t.b.BarrierLeave(p, episode, at)
}

func (t *tee) LockRequest(p, l int, at sim.Duration) {
	t.a.LockRequest(p, l, at)
	t.b.LockRequest(p, l, at)
}

func (t *tee) LockAcquire(p, l int, at sim.Duration) {
	t.a.LockAcquire(p, l, at)
	t.b.LockAcquire(p, l, at)
}

func (t *tee) LockRelease(p, l int, at sim.Duration) {
	t.a.LockRelease(p, l, at)
	t.b.LockRelease(p, l, at)
}

func (t *tee) FaultBegin(p, page, unit int, at sim.Duration) {
	t.a.FaultBegin(p, page, unit, at)
	t.b.FaultBegin(p, page, unit, at)
}

func (t *tee) FaultEnd(p, page int, at sim.Duration) {
	t.a.FaultEnd(p, page, at)
	t.b.FaultEnd(p, page, at)
}

func (t *tee) ProtocolSwitch(u int, from, to string, phase int) {
	t.a.ProtocolSwitch(u, from, to, phase)
	t.b.ProtocolSwitch(u, from, to, phase)
}

func (t *tee) Rehome(u, from, to, bytes int, transfer bool) {
	t.a.Rehome(u, from, to, bytes, transfer)
	t.b.Rehome(u, from, to, bytes, transfer)
}

func (t *tee) RunEnd(time sim.Duration, msgs, bytes int64, queue sim.Duration, clocks []sim.Duration) {
	t.a.RunEnd(time, msgs, bytes, queue, clocks)
	t.b.RunEnd(time, msgs, bytes, queue, clocks)
}
