package trace

import (
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Sink receives one engine run's full event stream — the simnet pricing
// operations (under the network's pricing lock, in exact pricing order)
// plus the engine lifecycle events. Two implementations exist: *Run
// writes JSONL (the interchange format) and *MemSink keeps a compact
// in-memory buffer for replay-derivation without encode/decode.
//
// Begin opens the run and RunEnd closes it with the recorded totals and
// every processor's final virtual clock (Result.ProcTimes); everything
// between follows the same contract as the corresponding *Run methods.
type Sink interface {
	simnet.TraceSink

	Begin(meta RunMeta)
	BarrierEnter(p int, at sim.Duration)
	BarrierLeave(p, episode int, at sim.Duration)
	LockRequest(p, l int, at sim.Duration)
	LockAcquire(p, l int, at sim.Duration)
	LockRelease(p, l int, at sim.Duration)
	FaultBegin(p, page, unit int, at sim.Duration)
	FaultEnd(p, page int, at sim.Duration)
	ProtocolSwitch(u int, from, to string, phase int)
	Rehome(u, from, to, bytes int, transfer bool)
	RunEnd(time sim.Duration, msgs, bytes int64, queue sim.Duration, clocks []sim.Duration)
}

var (
	_ Sink = (*Run)(nil)
	_ Sink = (*MemSink)(nil)
)
