package trace

import (
	"fmt"

	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Derived is the outcome of re-pricing a captured run's event stream
// through another interconnect: the totals the engine would have
// produced on that network without re-executing the application.
//
// Soundness rests on network invariance of the message sequence: the
// engine's wire behavior is a function of the program's sharing
// pattern, not of message prices, for every app whose control flow does
// not read the virtual clock (branch-and-bound TSP does, via
// lock-order-dependent pruning — see the replay-safety classification
// in internal/apps). For invariant apps the derived message and byte
// totals are exact; Time and Queue re-create one valid pricing order
// (the recorded one), so on contended models they can drift from a real
// target-network run by sub-percent pricing-order effects (the same
// departers-race that makes two real runs differ). Derive additionally
// self-checks: the base-model half of the walk must reproduce the
// recorded totals and every reconstructed barrier release, tree wave
// and lock grant time bit-identically, or it returns an error and the
// caller falls back to a real run.
type Derived struct {
	// Network is the model the derivation priced through.
	Network string
	// Time is the derived simulated completion time: every processor's
	// recorded final clock shifted by its accumulated pricing offset.
	Time sim.Duration
	Totals
	// Gate and BaseGate record, per completed barrier episode, whether
	// the adaptive protocol's contention gate (mean queue delay per
	// message ≥ MessageLeg/16) was open at that episode's completion
	// point under the target and base pricing respectively. The harness
	// uses them to decide when an adaptive cell may be derived: if the
	// verdict sequence matches the base run's, the adaptive policy would
	// have made identical switch decisions on the target network.
	Gate     []bool
	BaseGate []bool
}

// derivation is the walk state for one Derive call.
type derivation struct {
	ms     *MemSink
	n      int
	cost   sim.CostModel
	base   netmodel.Model
	target netmodel.Model
	tree   bool
	radix  int

	// delta[p]: target-minus-base offset of processor p's virtual clock
	// at the current stream position.
	delta []sim.Duration

	// Base/target running totals. Message and byte counts are shared —
	// re-pricing never changes what was sent.
	msgs         int64
	bytes        int64
	baseQ, targQ sim.Duration

	// Pending same-clock exchange fan-out per processor: the engine
	// prices a fault's per-peer exchanges all at one clock and then
	// advances by the slowest, so the offset update is max-target minus
	// max-base over the group, applied lazily at the next event that
	// touches the processor's clock.
	pendOpen           []bool
	pendAt             []sim.Duration
	pendBase, pendTarg []sim.Duration

	// Central-barrier episode reconstruction.
	arriveEp, releaseEp []int
	eps                 map[int]*centralEpisode
	gate, baseGate      []bool

	// Tree-barrier episode reconstruction (episodes are serialized by
	// construction, so plain arrays suffice).
	nkids              []int
	cmplBase, cmplTarg []sim.Duration
	grantBase, grantTg []sim.Duration
	waveLegs           int

	// Lock grant reconstruction.
	pendLock           []int32
	reqBase, reqTarg   []sim.Duration
	lastRelB, lastRelT map[int]sim.Duration
}

type centralEpisode struct {
	arrived, released  int
	basePost, targPost sim.Duration
	baseRel, targRel   sim.Duration
}

// Derive re-prices the captured run through the named interconnect and
// reconstructs its totals there. The capture must be complete (RunEnd
// seen). An error means the stream could not be soundly re-priced —
// base-model reconstruction failed to reproduce the recorded run
// bit-identically — and the caller must fall back to a real engine run.
func (ms *MemSink) Derive(network string) (*Derived, error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if !ms.ended {
		return nil, fmt.Errorf("trace: derive on an unfinished capture")
	}
	meta := ms.meta
	if meta.Procs <= 0 {
		return nil, fmt.Errorf("trace: derive needs procs in run meta (got %d)", meta.Procs)
	}
	cost := sim.DefaultCostModel()
	if meta.Cost != nil {
		cost = *meta.Cost
	}
	base, err := netmodel.New(meta.Network, cost)
	if err != nil {
		return nil, err
	}
	target, err := netmodel.New(network, cost)
	if err != nil {
		return nil, err
	}
	n := meta.Procs
	d := &derivation{
		ms: ms, n: n, cost: cost, base: base, target: target,
		tree:  meta.Barrier == "tree",
		radix: meta.BarrierRadix,

		delta:    make([]sim.Duration, n),
		pendOpen: make([]bool, n),
		pendAt:   make([]sim.Duration, n),
		pendBase: make([]sim.Duration, n),
		pendTarg: make([]sim.Duration, n),

		arriveEp:  make([]int, n),
		releaseEp: make([]int, n),
		eps:       make(map[int]*centralEpisode),

		pendLock: make([]int32, n),
		reqBase:  make([]sim.Duration, n),
		reqTarg:  make([]sim.Duration, n),
		lastRelB: make(map[int]sim.Duration),
		lastRelT: make(map[int]sim.Duration),
	}
	for i := range d.pendLock {
		d.pendLock[i] = -1
	}
	if d.tree {
		if d.radix < 2 {
			return nil, fmt.Errorf("trace: tree-barrier capture without radix in run meta")
		}
		d.nkids = make([]int, n)
		for i := 0; i < n; i++ {
			lo, hi := d.radix*i+1, d.radix*i+1+d.radix
			if lo > n {
				lo = n
			}
			if hi > n {
				hi = n
			}
			d.nkids[i] = hi - lo
		}
		d.cmplBase = make([]sim.Duration, n)
		d.cmplTarg = make([]sim.Duration, n)
		d.grantBase = make([]sim.Duration, n)
		d.grantTg = make([]sim.Duration, n)
	}
	if err := d.walk(); err != nil {
		return nil, err
	}
	for p := 0; p < n; p++ {
		d.flush(p)
	}

	// Base-model integrity: the walk's base half must have rebuilt the
	// recorded run bit-identically, or the stream is not derivable.
	if d.msgs != ms.msgs || d.bytes != ms.bytes || d.baseQ != ms.queue {
		return nil, fmt.Errorf("trace: base replay mismatch (msgs %d/%d bytes %d/%d queue %d/%d)",
			d.msgs, ms.msgs, d.bytes, ms.bytes, d.baseQ, ms.queue)
	}
	if len(ms.clocks) != n {
		return nil, fmt.Errorf("trace: capture has %d final clocks, want %d", len(ms.clocks), n)
	}
	var baseTime, targTime sim.Duration
	for p := 0; p < n; p++ {
		baseTime = sim.MaxClock(baseTime, ms.clocks[p])
		targTime = sim.MaxClock(targTime, ms.clocks[p]+d.delta[p])
	}
	if baseTime != ms.time {
		return nil, fmt.Errorf("trace: final clocks disagree with recorded time (%d vs %d)", baseTime, ms.time)
	}
	return &Derived{
		Network:  target.Name(),
		Time:     targTime,
		Totals:   Totals{Msgs: d.msgs, Bytes: d.bytes, Queue: d.targQ},
		Gate:     d.gate,
		BaseGate: d.baseGate,
	}, nil
}

// flush applies a processor's pending exchange-group offset.
func (d *derivation) flush(p int) {
	if d.pendOpen[p] {
		d.delta[p] += d.pendTarg[p] - d.pendBase[p]
		d.pendOpen[p] = false
	}
}

func (d *derivation) walk() error {
	ms := d.ms
	for i := range ms.op {
		src, dst := int(ms.a[i]), int(ms.b[i])
		nb, rb := int(ms.nb[i]), int(ms.rb[i])
		at := sim.Duration(ms.at[i])
		switch ms.op[i] {
		case opExchange:
			if src < 0 || src >= d.n {
				return fmt.Errorf("trace: exchange src %d out of range", src)
			}
			if !d.pendOpen[src] || d.pendAt[src] != at {
				d.flush(src)
				d.pendOpen[src] = true
				d.pendAt[src] = at
				d.pendBase[src], d.pendTarg[src] = 0, 0
			}
			bt := d.base.Exchange(src, dst, nb, rb, at)
			tt := d.target.Exchange(src, dst, nb, rb, at+d.delta[src])
			if c := bt.Total(); c > d.pendBase[src] {
				d.pendBase[src] = c
			}
			if c := tt.Total(); c > d.pendTarg[src] {
				d.pendTarg[src] = c
			}
			d.msgs += 2
			d.bytes += int64(nb) + int64(rb)
			d.baseQ += bt.Request.Queue + bt.Reply.Queue
			d.targQ += tt.Request.Queue + tt.Reply.Queue

		case opLeg:
			if err := d.leg(simnet.MsgKind(ms.kind[i]), src, dst, nb, at); err != nil {
				return err
			}

		case opControl:
			if err := d.control(simnet.MsgKind(ms.kind[i]), src, dst, nb, at); err != nil {
				return err
			}

		case opBarrierEnter:
			if d.tree {
				p := src
				d.flush(p)
				d.cmplBase[p] = sim.MaxClock(d.cmplBase[p], at)
				d.cmplTarg[p] = sim.MaxClock(d.cmplTarg[p], at+d.delta[p])
			}

		case opLockRequest:
			d.pendLock[src] = ms.b[i]

		case opLockRelease:
			p, l := src, dst
			d.flush(p)
			d.lastRelB[l] = at
			d.lastRelT[l] = at + d.delta[p]
		}
	}
	return nil
}

// priceLeg prices one leg through both models and accumulates totals.
func (d *derivation) priceLeg(src, dst, bytes int, baseAt, targAt sim.Duration, ctl bool) (bt, tt netmodel.Timing) {
	wire := bytes
	if ctl {
		// Control legs are priced payload-free; their wire bytes still
		// count toward the byte totals (simnet.SendControl).
		bytes = 0
	}
	bt = d.base.Leg(src, dst, bytes, baseAt)
	tt = d.target.Leg(src, dst, bytes, targAt)
	d.msgs++
	d.bytes += int64(wire)
	d.baseQ += bt.Queue
	d.targQ += tt.Queue
	return bt, tt
}

func (d *derivation) leg(kind simnet.MsgKind, src, dst, bytes int, at sim.Duration) error {
	switch kind {
	case simnet.BarrierArrive:
		if d.tree {
			return d.treeArrive(src, dst, bytes, at)
		}
		return d.centralArrive(src, dst, bytes, at)
	case simnet.BarrierRelease:
		if d.tree {
			return d.treeWave(src, dst, bytes, at)
		}
		return d.centralRelease(src, dst, bytes, at)
	case simnet.LockGrant:
		return d.lockGrant(src, dst, bytes, at)
	case simnet.HomeFlush:
		// Fire-and-forget release flush: the sender prices at its clock
		// and advances by the leg's cost.
		if src < 0 || src >= d.n {
			return fmt.Errorf("trace: %v leg src %d out of range", kind, src)
		}
		d.flush(src)
		bt, tt := d.priceLeg(src, dst, bytes, at, at+d.delta[src], false)
		d.delta[src] += tt.Total - bt.Total
		return nil
	default:
		return fmt.Errorf("trace: cannot derive leg kind %v", kind)
	}
}

func (d *derivation) control(kind simnet.MsgKind, src, dst, bytes int, at sim.Duration) error {
	switch kind {
	case simnet.LockRequest:
		if src < 0 || src >= d.n {
			return fmt.Errorf("trace: lock request src %d out of range", src)
		}
		d.flush(src)
		bt, tt := d.priceLeg(src, dst, bytes, at, at+d.delta[src], true)
		// The requester blocks: the request's arrival feeds the grant
		// time, the requester's own clock resumes at the grant.
		d.reqBase[src] = at + bt.Total
		d.reqTarg[src] = at + d.delta[src] + tt.Total
		return nil
	case simnet.LockForward:
		// The manager forwards to the holder at the request's arrival;
		// find the requester whose pending arrival matches.
		req := -1
		for p := 0; p < d.n; p++ {
			if d.pendLock[p] >= 0 && d.reqBase[p] == at {
				if req >= 0 {
					return fmt.Errorf("trace: ambiguous lock forward at %d", at)
				}
				req = p
			}
		}
		if req < 0 {
			return fmt.Errorf("trace: lock forward at %d matches no pending request", at)
		}
		bt, tt := d.priceLeg(src, dst, bytes, at, d.reqTarg[req], true)
		d.reqBase[req] += bt.Total
		d.reqTarg[req] += tt.Total
		return nil
	default:
		return fmt.Errorf("trace: cannot derive control kind %v", kind)
	}
}

func (d *derivation) lockGrant(src, dst, bytes int, at sim.Duration) error {
	p := dst
	if p < 0 || p >= d.n {
		return fmt.Errorf("trace: lock grant dst %d out of range", p)
	}
	l := int(d.pendLock[p])
	if l < 0 {
		return fmt.Errorf("trace: lock grant to %d without a pending request", p)
	}
	grantB := sim.Meet(d.reqBase[p], d.lastRelB[l]) + d.cost.LockService
	grantT := sim.Meet(d.reqTarg[p], d.lastRelT[l]) + d.cost.LockService
	if grantB != at {
		return fmt.Errorf("trace: reconstructed lock grant %d != recorded %d", grantB, at)
	}
	bt, tt := d.priceLeg(src, p, bytes, at, grantT, false)
	d.flush(p)
	d.delta[p] = (grantT + tt.Total) - (at + bt.Total)
	d.pendLock[p] = -1
	return nil
}

func (d *derivation) centralArrive(src, dst, bytes int, at sim.Duration) error {
	p := src
	if p < 0 || p >= d.n {
		return fmt.Errorf("trace: barrier arrive src %d out of range", p)
	}
	d.flush(p)
	bt, tt := d.priceLeg(p, dst, bytes, at, at+d.delta[p], false)
	d.arriveEp[p]++
	ep := d.arriveEp[p]
	st := d.eps[ep]
	if st == nil {
		st = &centralEpisode{}
		d.eps[ep] = st
	}
	st.basePost = sim.MaxClock(st.basePost, at+bt.Total)
	st.targPost = sim.MaxClock(st.targPost, at+d.delta[p]+tt.Total)
	st.arrived++
	if st.arrived == d.n {
		fixed := d.cost.BarrierManager + sim.Duration(d.n)*d.cost.RequestService
		st.baseRel = st.basePost + fixed
		st.targRel = st.targPost + fixed
		// The adaptive policy's contention gate is evaluated exactly
		// here: after the last arrival is priced, before any release.
		gate := d.cost.MessageLeg / 16
		d.baseGate = append(d.baseGate, d.msgs > 0 && d.baseQ >= gate*sim.Duration(d.msgs))
		d.gate = append(d.gate, d.msgs > 0 && d.targQ >= gate*sim.Duration(d.msgs))
	}
	return nil
}

func (d *derivation) centralRelease(src, dst, bytes int, at sim.Duration) error {
	p := dst
	if p < 0 || p >= d.n {
		return fmt.Errorf("trace: barrier release dst %d out of range", p)
	}
	d.releaseEp[p]++
	st := d.eps[d.releaseEp[p]]
	if st == nil || st.arrived != d.n {
		return fmt.Errorf("trace: barrier release for incomplete episode %d", d.releaseEp[p])
	}
	if st.baseRel != at {
		return fmt.Errorf("trace: reconstructed barrier release %d != recorded %d", st.baseRel, at)
	}
	bt, tt := d.priceLeg(src, p, bytes, at, st.targRel, false)
	d.flush(p)
	d.delta[p] = (st.targRel + tt.Total) - (at + bt.Total)
	st.released++
	if st.released == d.n {
		delete(d.eps, d.releaseEp[p])
	}
	return nil
}

func (d *derivation) treeArrive(src, dst, bytes int, at sim.Duration) error {
	node := src
	if node <= 0 || node >= d.n {
		return fmt.Errorf("trace: tree arrive src %d out of range", node)
	}
	doneB := d.cmplBase[node] + sim.Duration(d.nkids[node])*d.cost.RequestService
	doneT := d.cmplTarg[node] + sim.Duration(d.nkids[node])*d.cost.RequestService
	if doneB != at {
		return fmt.Errorf("trace: reconstructed tree arrival %d != recorded %d", doneB, at)
	}
	bt, tt := d.priceLeg(node, dst, bytes, at, doneT, false)
	d.cmplBase[dst] = sim.MaxClock(d.cmplBase[dst], doneB+bt.Total)
	d.cmplTarg[dst] = sim.MaxClock(d.cmplTarg[dst], doneT+tt.Total)
	return nil
}

func (d *derivation) treeWave(src, dst, bytes int, at sim.Duration) error {
	node, c := src, dst
	if node < 0 || node >= d.n || c <= 0 || c >= d.n {
		return fmt.Errorf("trace: tree wave edge %d->%d out of range", node, c)
	}
	if d.waveLegs == 0 {
		// First wave edge: the root's subtree just completed; rebuild
		// the episode's release origin.
		rootB := d.cmplBase[0] + sim.Duration(d.nkids[0])*d.cost.RequestService
		rootT := d.cmplTarg[0] + sim.Duration(d.nkids[0])*d.cost.RequestService
		d.grantBase[0] = rootB + d.cost.BarrierManager
		d.grantTg[0] = rootT + d.cost.BarrierManager
		d.flush(0)
		d.delta[0] = d.grantTg[0] - d.grantBase[0]
	}
	if d.grantBase[node] != at {
		return fmt.Errorf("trace: reconstructed tree wave %d != recorded %d", d.grantBase[node], at)
	}
	bt, tt := d.priceLeg(node, c, bytes, at, d.grantTg[node], false)
	d.grantBase[c] = d.grantBase[node] + bt.Total
	d.grantTg[c] = d.grantTg[node] + tt.Total
	d.flush(c)
	d.delta[c] = d.grantTg[c] - d.grantBase[c]
	d.waveLegs++
	if d.waveLegs == d.n-1 {
		d.waveLegs = 0
		for i := 0; i < d.n; i++ {
			d.cmplBase[i], d.cmplTarg[i] = 0, 0
		}
	}
	return nil
}

// ReplayEvents re-prices the buffer's message events through the named
// interconnect and returns the wire totals, without touching clocks —
// the in-memory equivalent of Replay over a JSONL capture. Same-model
// replay (network == the capture's own) reproduces the recorded totals
// bit-identically.
func ReplayEvents(ms *MemSink, network string) (Totals, error) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if !ms.ended {
		return Totals{}, fmt.Errorf("trace: replay on an unfinished capture")
	}
	cost := sim.DefaultCostModel()
	if ms.meta.Cost != nil {
		cost = *ms.meta.Cost
	}
	if network == "" {
		network = ms.meta.Network
	}
	model, err := netmodel.New(network, cost)
	if err != nil {
		return Totals{}, err
	}
	var t Totals
	for i := range ms.op {
		src, dst := int(ms.a[i]), int(ms.b[i])
		nb, rb := int(ms.nb[i]), int(ms.rb[i])
		at := sim.Duration(ms.at[i])
		switch ms.op[i] {
		case opLeg:
			lt := model.Leg(src, dst, nb, at)
			t.Msgs++
			t.Bytes += int64(nb)
			t.Queue += lt.Queue
		case opControl:
			lt := model.Leg(src, dst, 0, at)
			t.Msgs++
			t.Bytes += int64(nb)
			t.Queue += lt.Queue
		case opExchange:
			xt := model.Exchange(src, dst, nb, rb, at)
			t.Msgs += 2
			t.Bytes += int64(nb) + int64(rb)
			t.Queue += xt.Request.Queue + xt.Reply.Queue
		}
	}
	return t, nil
}
