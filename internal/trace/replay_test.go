package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/apps"
	_ "repro/internal/apps/all" // populate the workload registry
	"repro/internal/netmodel"
	"repro/internal/simnet"
	"repro/internal/tmk"
	"repro/internal/trace"
)

// capture runs one real engine trial with live tracing on and returns
// the captured stream.
func capture(t *testing.T, app, dataset string, cfg tmk.Config) *bytes.Buffer {
	t.Helper()
	e, ok := apps.Lookup(app, dataset)
	if !ok {
		t.Fatalf("%s/%s is not registered", app, dataset)
	}
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	tw.SetLabel(e.App, e.Dataset)
	cfg.Trace = tw
	cfg.Collect = true
	if _, err := apps.RunTrials(e.Make(cfg.Procs), cfg, 1); err != nil {
		t.Fatalf("%s/%s: %v", app, dataset, err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestReplayBitIdentical pins the format's load-bearing property: a
// live capture replayed through the same network model reproduces the
// run's message, byte, and queue-delay totals bit-identically — on the
// contention-free model and on both stateful (occupancy-tracking)
// models, for a barrier-structured app and a lock-heavy one, including
// adaptive protocol switching and home migration traffic.
func TestReplayBitIdentical(t *testing.T) {
	cases := []struct {
		app, dataset string
		cfg          tmk.Config
	}{
		{"jacobi", "small", tmk.Config{Procs: 8, UnitPages: 1, Network: "ideal"}},
		{"jacobi", "small", tmk.Config{Procs: 8, UnitPages: 1, Network: "bus"}},
		{"jacobi", "small", tmk.Config{Procs: 8, UnitPages: 1, Network: "switch"}},
		{"tsp", "small", tmk.Config{Procs: 8, UnitPages: 1, Network: "bus"}},
		{"tsp", "small", tmk.Config{Procs: 8, UnitPages: 1, Network: "switch",
			Protocol: "adaptive", Placement: "migrate"}},
	}
	for _, tc := range cases {
		name := tc.app + "/" + tc.cfg.Network
		if tc.cfg.Protocol != "" {
			name += "/" + tc.cfg.Protocol
		}
		t.Run(name, func(t *testing.T) {
			buf := capture(t, tc.app, tc.dataset, tc.cfg)
			runs, err := trace.Replay(bytes.NewReader(buf.Bytes()), "")
			if err != nil {
				t.Fatal(err)
			}
			if len(runs) != 1 {
				t.Fatalf("runs = %d, want 1", len(runs))
			}
			r := runs[0]
			if r.Recorded.Msgs == 0 || r.Recorded.Bytes == 0 {
				t.Fatalf("empty capture: recorded %+v", r.Recorded)
			}
			if !r.Matches() {
				t.Fatalf("same-model replay diverged on %s:\n recorded %+v\n replayed %+v",
					r.Network, r.Recorded, r.Replayed)
			}
		})
	}
}

// TestReplayAcrossNetworks: re-pricing a capture through a different
// model keeps the message and byte totals (the traffic is fixed by the
// capture) while the queue delay changes with the interconnect.
func TestReplayAcrossNetworks(t *testing.T) {
	buf := capture(t, "jacobi", "small", tmk.Config{Procs: 8, UnitPages: 1, Network: "ideal"})
	runs, err := trace.Replay(bytes.NewReader(buf.Bytes()), "bus")
	if err != nil {
		t.Fatal(err)
	}
	r := runs[0]
	if r.Network != "bus" {
		t.Fatalf("replay network = %q, want bus", r.Network)
	}
	if r.Replayed.Msgs != r.Recorded.Msgs || r.Replayed.Bytes != r.Recorded.Bytes {
		t.Fatalf("re-pricing changed the traffic itself:\n recorded %+v\n replayed %+v",
			r.Recorded, r.Replayed)
	}
	if r.Replayed.Queue <= r.Recorded.Queue {
		t.Fatalf("bus re-pricing of an ideal capture should add queue delay; recorded %v, replayed %v",
			r.Recorded.Queue, r.Replayed.Queue)
	}
}

// TestReplayRejectsTruncatedCapture: a run_start with no run_end is a
// partial trace and must fail, not replay to wrong totals.
func TestReplayRejectsTruncatedCapture(t *testing.T) {
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	run := w.BeginRun(trace.RunMeta{Network: "ideal", Procs: 2})
	run.TraceLeg(simnet.DiffRequest, 0, 1, 64, 0, 0)
	// no run.End: simulates a capture cut off mid-run.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := trace.Replay(bytes.NewReader(buf.Bytes()), "")
	if err == nil {
		t.Fatal("Replay accepted a truncated capture")
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("error should call out the truncation, got: %v", err)
	}
}

// TestReplayAllMatchesPerModelReplay: the single-pass multi-model sweep
// must produce, per network, exactly the totals a dedicated Replay pass
// through that model produces — including the bit-identity check on the
// capture's own model.
func TestReplayAllMatchesPerModelReplay(t *testing.T) {
	buf := capture(t, "jacobi", "small", tmk.Config{Procs: 8, UnitPages: 1, Network: "bus"})
	sweeps, err := trace.ReplayAll(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweeps) != 1 {
		t.Fatalf("sweeps = %d, want 1", len(sweeps))
	}
	s := sweeps[0]
	if len(s.Networks) != len(netmodel.Names()) {
		t.Fatalf("sweep covered %d networks, want all %d", len(s.Networks), len(netmodel.Names()))
	}
	if !s.Matches() {
		t.Fatalf("same-model row diverged from recorded totals: %+v", s)
	}
	for i, network := range s.Networks {
		runs, err := trace.Replay(bytes.NewReader(buf.Bytes()), network)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := s.Replayed[i], runs[0].Replayed; got != want {
			t.Errorf("%s: sweep totals %+v != dedicated replay %+v", network, got, want)
		}
	}
}
