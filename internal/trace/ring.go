package trace

import (
	"fmt"
	"io"
	"sync"
)

// Ring is the flight recorder's sink: a fixed-capacity ring of encoded
// trace lines. A Writer pointed at a Ring keeps the newest N events of
// a live process in memory at all times; Dump streams them out (with a
// fresh header line) when someone wants to see what the engine was
// doing just now. Write assumes one call per line, which is exactly the
// Writer's contract.
type Ring struct {
	mu      sync.Mutex
	lines   [][]byte
	head    int // oldest retained line once full
	n       int // retained count
	dropped int64
}

// NewRing returns a flight recorder retaining the newest capacity
// events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{lines: make([][]byte, capacity)}
}

// Write retains p as one line, evicting the oldest when full. The
// buffer is copied; p may be reused by the caller.
func (r *Ring) Write(p []byte) (int, error) {
	line := make([]byte, len(p))
	copy(line, p)
	r.mu.Lock()
	if r.n < len(r.lines) {
		r.lines[(r.head+r.n)%len(r.lines)] = line
		r.n++
	} else {
		r.lines[r.head] = line
		r.head = (r.head + 1) % len(r.lines)
		r.dropped++
	}
	r.mu.Unlock()
	return len(p), nil
}

// Len returns the number of retained events (header lines included).
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns how many lines have been evicted to make room.
func (r *Ring) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Dump writes the retained window to w as a readable trace: a
// synthesized header line first (the original header is usually long
// evicted), then the retained lines oldest-first. Interior header
// lines are legal input to Reader, which skips them. A dump is a
// window, not a complete capture: run_start/run_end pairs may be
// missing, so it is for inspection, not replay.
func (r *Ring) Dump(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "{\"e\":%q,\"v\":%d}\n", EvHeader, Version); err != nil {
		return err
	}
	r.mu.Lock()
	window := make([][]byte, 0, r.n)
	for i := 0; i < r.n; i++ {
		window = append(window, r.lines[(r.head+i)%len(r.lines)])
	}
	r.mu.Unlock()
	for _, line := range window {
		if _, err := w.Write(line); err != nil {
			return err
		}
	}
	return nil
}
