package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Reader streams events from a trace file. It validates the header line
// (schema version at most this package's Version), tolerates unknown
// JSON fields on every line (forward compatibility: newer writers may
// add fields), and skips interior header lines (a flight-recorder dump
// re-synthesizes its header, and concatenated traces are legal input).
type Reader struct {
	sc      *bufio.Scanner
	version int
	line    int
}

// maxLine bounds one JSONL line; events are small, but a generous cap
// beats a silent bufio.ErrTooLong on a future fat event.
const maxLine = 1 << 20

// NewReader opens a trace stream, consuming and validating its header.
func NewReader(r io.Reader) (*Reader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxLine)
	tr := &Reader{sc: sc}
	ev, err := tr.next()
	if err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("trace: empty stream (no header line)")
		}
		return nil, err
	}
	if ev.E != EvHeader {
		return nil, fmt.Errorf("trace: line 1: expected %q event, got %q", EvHeader, ev.E)
	}
	if ev.V > Version {
		return nil, fmt.Errorf("trace: schema version %d is newer than supported %d", ev.V, Version)
	}
	tr.version = ev.V
	return tr, nil
}

// Version returns the stream's schema version.
func (r *Reader) Version() int { return r.version }

// Next returns the next event, or io.EOF at end of stream. Interior
// header lines are skipped; blank lines are tolerated.
func (r *Reader) Next() (*Event, error) {
	for {
		ev, err := r.next()
		if err != nil {
			return nil, err
		}
		if ev.E == EvHeader {
			continue
		}
		return ev, nil
	}
}

func (r *Reader) next() (*Event, error) {
	for r.sc.Scan() {
		r.line++
		line := r.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		ev := new(Event)
		if err := json.Unmarshal(line, ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", r.line, err)
		}
		if ev.E == "" {
			return nil, fmt.Errorf("trace: line %d: missing event type", r.line)
		}
		return ev, nil
	}
	if err := r.sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: line %d: %w", r.line+1, err)
	}
	return nil, io.EOF
}
