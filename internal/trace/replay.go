package trace

import (
	"fmt"
	"io"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

// Totals are the wire totals accumulated over one run's message events:
// message count, payload bytes, cumulative queue delay.
type Totals struct {
	Msgs  int64        `json:"messages"`
	Bytes int64        `json:"bytes"`
	Queue sim.Duration `json:"queue"`
}

// RunReplay is the outcome of re-pricing one captured run through a
// network model, without re-executing the application.
type RunReplay struct {
	ID   int64   `json:"run"`
	Meta RunMeta `json:"meta"`
	// Network is the model the replay priced through (the capture's own
	// model unless the caller overrode it).
	Network string `json:"network"`
	// Time is the run's recorded simulated time — capture context, not
	// recomputed by replay (re-pricing legs cannot re-run the engine's
	// overlap of computation and communication).
	Time sim.Duration `json:"time"`
	// Recorded are the totals the capture's run_end line reported.
	Recorded Totals `json:"recorded"`
	// Replayed are the totals accumulated by re-pricing every message
	// event through Network. When Network is the capture's own model,
	// Replayed must equal Recorded bit-identically: the trace preserves
	// the pricing-operation sequence in pricing order, and a fresh model
	// replayed over that sequence rebuilds the same occupancy timeline.
	Replayed Totals `json:"replayed"`
}

// Matches reports whether the replayed totals reproduce the recorded
// ones exactly.
func (r *RunReplay) Matches() bool { return r.Replayed == r.Recorded }

// replayState re-prices one run's message stream.
type replayState struct {
	out   *RunReplay
	model netmodel.Model
	ended bool
}

// Replay streams a captured trace back through a network model and
// returns one RunReplay per captured run, in run_start order. An empty
// network name replays each run through the model that captured it
// (same-model replay, the bit-identity check); a model name ("ideal",
// "bus", ...) re-prices every run through that interconnect instead —
// the cheap way to sweep one recorded execution across networks.
//
// A run_start without a matching run_end is a truncated capture and is
// an error: partial traces replay to wrong totals and must fail loudly.
func Replay(r io.Reader, network string) ([]*RunReplay, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	var order []*RunReplay
	runs := make(map[int64]*replayState)
	for {
		ev, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if ev.E == EvRunStart {
			if _, dup := runs[ev.R]; dup {
				return nil, fmt.Errorf("trace: duplicate run_start for run %d", ev.R)
			}
			meta := RunMeta{
				App: ev.App, Dataset: ev.Dataset,
				Protocol: ev.Protocol, Network: ev.Network, Placement: ev.Placement,
				Procs: ev.Procs, UnitPages: ev.UnitPages, Dynamic: ev.Dynamic,
				Cost: ev.Cost,
			}
			name := network
			if name == "" {
				name = meta.Network
			}
			cost := sim.DefaultCostModel()
			if meta.Cost != nil {
				cost = *meta.Cost
			}
			model, err := netmodel.New(name, cost)
			if err != nil {
				return nil, err
			}
			st := &replayState{
				out:   &RunReplay{ID: ev.R, Meta: meta, Network: model.Name()},
				model: model,
			}
			runs[ev.R] = st
			order = append(order, st.out)
			continue
		}
		st, ok := runs[ev.R]
		if !ok {
			return nil, fmt.Errorf("trace: event %q for unknown run %d", ev.E, ev.R)
		}
		if st.ended {
			return nil, fmt.Errorf("trace: event %q after run_end of run %d", ev.E, ev.R)
		}
		switch ev.E {
		case EvLeg:
			t := st.model.Leg(ev.S, ev.D, ev.B, ev.At)
			st.add(1, int64(ev.B), t.Queue)
		case EvControl:
			// Control messages are priced payload-free; their wire bytes
			// still count toward the byte totals (simnet.SendControl).
			t := st.model.Leg(ev.S, ev.D, 0, ev.At)
			st.add(1, int64(ev.B), t.Queue)
		case EvExchange:
			t := st.model.Exchange(ev.S, ev.D, ev.B, ev.RB, ev.At)
			st.add(2, int64(ev.B)+int64(ev.RB), t.Request.Queue+t.Reply.Queue)
		case EvRunEnd:
			st.out.Time = ev.Time
			st.out.Recorded = Totals{Msgs: ev.Msgs, Bytes: ev.Bytes, Queue: ev.Queue}
			st.ended = true
		default:
			// Lifecycle events carry no wire traffic; replay skips them.
		}
	}
	for _, out := range order {
		if !runs[out.ID].ended {
			return nil, fmt.Errorf("trace: run %d has no run_end (truncated capture)", out.ID)
		}
	}
	return order, nil
}

func (st *replayState) add(msgs, bytes int64, queue sim.Duration) {
	st.out.Replayed.Msgs += msgs
	st.out.Replayed.Bytes += bytes
	st.out.Replayed.Queue += queue
}

// RunReplaySweep is the outcome of re-pricing one captured run through
// several network models in a single streaming pass: each model prices
// the identical event sequence, so the rows are directly comparable —
// the per-interconnect sensitivity of one recorded execution.
type RunReplaySweep struct {
	ID   int64        `json:"run"`
	Meta RunMeta      `json:"meta"`
	Time sim.Duration `json:"time"`
	// Recorded are the totals the capture's run_end line reported.
	Recorded Totals `json:"recorded"`
	// Networks and Replayed are parallel: Replayed[i] is the totals of
	// re-pricing the run's message events through Networks[i].
	Networks []string `json:"networks"`
	Replayed []Totals `json:"replayed"`
}

// Matches reports whether the replay through the capture's own model
// (if among the sweep's networks) reproduced the recorded totals
// bit-identically. Sweeps that exclude the capture's model trivially
// match.
func (r *RunReplaySweep) Matches() bool {
	for i, n := range r.Networks {
		if n == r.Meta.Network && r.Replayed[i] != r.Recorded {
			return false
		}
	}
	return true
}

// ReplayAll streams a captured trace back through every named network
// model at once — one pass over the events, one fresh model instance
// per run per network — and returns one sweep per captured run, in
// run_start order. A nil or empty network list sweeps every registered
// model. Truncated captures (run_start without run_end) are an error,
// as in Replay.
func ReplayAll(r io.Reader, networks []string) ([]*RunReplaySweep, error) {
	if len(networks) == 0 {
		networks = netmodel.Names()
	}
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	type sweepState struct {
		out    *RunReplaySweep
		models []netmodel.Model
		ended  bool
	}
	var order []*RunReplaySweep
	runs := make(map[int64]*sweepState)
	for {
		ev, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if ev.E == EvRunStart {
			if _, dup := runs[ev.R]; dup {
				return nil, fmt.Errorf("trace: duplicate run_start for run %d", ev.R)
			}
			meta := RunMeta{
				App: ev.App, Dataset: ev.Dataset,
				Protocol: ev.Protocol, Network: ev.Network, Placement: ev.Placement,
				Procs: ev.Procs, UnitPages: ev.UnitPages, Dynamic: ev.Dynamic,
				Cost: ev.Cost,
			}
			cost := sim.DefaultCostModel()
			if meta.Cost != nil {
				cost = *meta.Cost
			}
			st := &sweepState{
				out: &RunReplaySweep{
					ID: ev.R, Meta: meta,
					Networks: append([]string(nil), networks...),
					Replayed: make([]Totals, len(networks)),
				},
			}
			for _, name := range networks {
				model, err := netmodel.New(name, cost)
				if err != nil {
					return nil, err
				}
				st.models = append(st.models, model)
			}
			runs[ev.R] = st
			order = append(order, st.out)
			continue
		}
		st, ok := runs[ev.R]
		if !ok {
			return nil, fmt.Errorf("trace: event %q for unknown run %d", ev.E, ev.R)
		}
		if st.ended {
			return nil, fmt.Errorf("trace: event %q after run_end of run %d", ev.E, ev.R)
		}
		switch ev.E {
		case EvLeg:
			for i, m := range st.models {
				t := m.Leg(ev.S, ev.D, ev.B, ev.At)
				st.out.Replayed[i].Msgs++
				st.out.Replayed[i].Bytes += int64(ev.B)
				st.out.Replayed[i].Queue += t.Queue
			}
		case EvControl:
			for i, m := range st.models {
				t := m.Leg(ev.S, ev.D, 0, ev.At)
				st.out.Replayed[i].Msgs++
				st.out.Replayed[i].Bytes += int64(ev.B)
				st.out.Replayed[i].Queue += t.Queue
			}
		case EvExchange:
			for i, m := range st.models {
				t := m.Exchange(ev.S, ev.D, ev.B, ev.RB, ev.At)
				st.out.Replayed[i].Msgs += 2
				st.out.Replayed[i].Bytes += int64(ev.B) + int64(ev.RB)
				st.out.Replayed[i].Queue += t.Request.Queue + t.Reply.Queue
			}
		case EvRunEnd:
			st.out.Time = ev.Time
			st.out.Recorded = Totals{Msgs: ev.Msgs, Bytes: ev.Bytes, Queue: ev.Queue}
			st.ended = true
		default:
			// Lifecycle events carry no wire traffic; replay skips them.
		}
	}
	for _, out := range order {
		if !runs[out.ID].ended {
			return nil, fmt.Errorf("trace: run %d has no run_end (truncated capture)", out.ID)
		}
	}
	return order, nil
}
