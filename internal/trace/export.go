package trace

import (
	"fmt"

	"repro/internal/simnet"
)

// ExportSnapshot writes an already-finished network's retained message
// log to the trace stream as one run: run_start, one leg event per
// simnet.Record in log order, run_end with the network's exact totals.
// It is the after-the-fact alternative to live capture (Config.Trace)
// for callers that only have a Snapshot.
//
// A capped log (simnet.WithRecordCap / WithCountsOnly) that has dropped
// records cannot be exported: the missing messages would replay to
// wrong totals, so the export fails loudly instead of emitting a
// silently truncated trace. Live capture has no such hazard — the sink
// sees every message regardless of record retention.
//
// Record does not distinguish control legs from payload legs, so an
// exported run re-prices every record as a payload leg; on contended
// models this makes export-replay an approximation, where live capture
// is exact. Use live capture when bit-identity matters.
func ExportSnapshot(w *Writer, meta RunMeta, n *simnet.Network) error {
	if d := n.Dropped(); d > 0 {
		return fmt.Errorf("trace: cannot export: network dropped %d of %d records under its record cap; capture live (Config.Trace) or lift the cap", d, func() int { m, _ := n.Counts(); return m }())
	}
	if meta.Cost == nil {
		cost := n.Cost()
		meta.Cost = &cost
	}
	run := w.BeginRun(meta)
	for _, rec := range n.Snapshot() {
		run.TraceLeg(rec.Kind, rec.Src, rec.Dst, rec.Bytes, rec.SendAt, rec.Queue)
	}
	msgs, bytes := n.Counts()
	run.End(0, int64(msgs), int64(bytes), n.QueueTotal())
	return w.Err()
}
