package trace_test

import (
	"bytes"
	"testing"

	"repro/internal/apps"
	_ "repro/internal/apps/all"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tmk"
	"repro/internal/trace"
)

// TestMemSinkEmitJSONLParity pins the bridge between the two capture
// paths: one engine run observed by a live JSONL writer and a MemSink
// simultaneously (the tee), then the MemSink emitted as JSONL, must
// produce byte-identical streams. MemSink is the fast capture path;
// this is the proof it loses nothing the interchange format carries.
func TestMemSinkEmitJSONLParity(t *testing.T) {
	e, ok := apps.Lookup("jacobi", "small")
	if !ok {
		t.Fatal("jacobi/small is not registered")
	}
	var live bytes.Buffer
	tw := trace.NewWriter(&live)
	ms := trace.NewMemSink()
	cfg := tmk.Config{Procs: 4, Protocol: "homeless", Network: "bus", Trace: tw, Sink: ms}
	if _, err := apps.RunTrials(e.Make(4), cfg, 1); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if !ms.Ended() {
		t.Fatal("MemSink capture not closed by RunEnd")
	}

	var emitted bytes.Buffer
	ew := trace.NewWriter(&emitted)
	if err := ms.EmitJSONL(ew); err != nil {
		t.Fatal(err)
	}
	if err := ew.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(live.Bytes(), emitted.Bytes()) {
		t.Fatalf("EmitJSONL stream differs from the live capture:\nlive    %d bytes\nemitted %d bytes",
			live.Len(), emitted.Len())
	}
}

// TestMemSinkAllocBudget pins the capture path's cost model: once a
// reused MemSink's columns have grown to the run's working size, Reset
// plus a full re-capture of the same event mix performs zero heap
// allocations. This is what makes Sink-captured engine runs cheap
// enough for the derived-sweep base cells.
func TestMemSinkAllocBudget(t *testing.T) {
	ms := trace.NewMemSink()
	fill := func() {
		ms.Reset()
		ms.Begin(trace.RunMeta{Protocol: "homeless", Network: "bus", Procs: 4})
		for i := 0; i < 4096; i++ {
			p := i % 4
			ms.BarrierEnter(p, sim.Duration(i))
			ms.TraceLeg(simnet.DiffRequest, p, (p+1)%4, 128, sim.Duration(i), 3)
			ms.TraceControl(simnet.BarrierArrive, p, 0, 16, sim.Duration(i), 0)
			ms.TraceExchange(simnet.DiffRequest, simnet.DiffReply, p, (p+2)%4, 32, 4096,
				sim.Duration(i), netmodel.ExchangeTiming{})
			ms.FaultBegin(p, i%64, i%16, sim.Duration(i))
			ms.FaultEnd(p, i%64, sim.Duration(i))
			ms.BarrierLeave(p, i, sim.Duration(i))
		}
		ms.RunEnd(sim.Duration(1<<20), 4096, 1<<22, 512, []sim.Duration{1, 2, 3, 4})
	}
	fill() // size the columns
	if allocs := testing.AllocsPerRun(5, fill); allocs > 0 {
		t.Errorf("steady-state MemSink re-capture: %v allocs/run, want 0", allocs)
	}
}
