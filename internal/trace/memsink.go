package trace

import (
	"fmt"
	"sync"

	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// Event opcodes in a MemSink's buffer. One byte discriminates; the
// generic integer columns are interpreted per opcode (see push sites).
const (
	opLeg uint8 = iota
	opControl
	opExchange
	opBarrierEnter
	opBarrierLeave
	opLockRequest
	opLockAcquire
	opLockRelease
	opFaultBegin
	opFaultEnd
	opSwitch
	opRehome
)

// MemSink is the in-memory capture buffer: a struct-of-arrays event log
// that costs one column append per field inside simnet's pricing lock —
// no encoding, no per-event allocation once the arrays have grown to
// the run's working size. Reset keeps the capacity, so a reused sink
// captures subsequent runs allocation-free (pinned by the alloc-budget
// suite). JSONL stays the interchange format: EmitJSONL replays the
// buffer into a Writer bit-identically to a live capture.
//
// The buffer is what replay-derivation consumes: Derive re-prices the
// recorded pricing-operation sequence through another interconnect and
// reconstructs the run's totals there without re-executing the
// application (see derive.go).
type MemSink struct {
	mu sync.Mutex

	meta   RunMeta
	began  bool
	ended  bool
	time   sim.Duration
	msgs   int64
	bytes  int64
	queue  sim.Duration
	clocks []sim.Duration

	// Struct-of-arrays event columns, one entry per event. a/b/c are
	// generic integer operands: src/dst for messages, proc/episode/lock
	// /page/unit for lifecycle events, from/to for rehomes.
	op    []uint8
	kind  []uint8 // simnet.MsgKind (request kind on exchanges)
	rkind []uint8 // reply kind (exchanges only)
	a     []int32
	b     []int32
	c     []int32
	nb    []int32 // payload bytes (request bytes on exchanges)
	rb    []int32 // reply payload bytes (exchanges only)
	at    []int64 // sender's virtual clock at send / lifecycle clock
	q     []int64 // recorded queue delay (request leg on exchanges)
	rq    []int64 // recorded reply-leg queue delay (exchanges only)

	// Interned strings (protocol names on switch events).
	names   []string
	nameIdx map[string]int32
}

// NewMemSink returns an empty capture buffer.
func NewMemSink() *MemSink {
	return &MemSink{nameIdx: make(map[string]int32)}
}

// Reset clears the buffer for the next run, keeping every column's
// capacity so steady-state reuse allocates nothing.
func (ms *MemSink) Reset() {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.meta = RunMeta{}
	ms.began, ms.ended = false, false
	ms.time, ms.msgs, ms.bytes, ms.queue = 0, 0, 0, 0
	ms.clocks = ms.clocks[:0]
	ms.op = ms.op[:0]
	ms.kind, ms.rkind = ms.kind[:0], ms.rkind[:0]
	ms.a, ms.b, ms.c = ms.a[:0], ms.b[:0], ms.c[:0]
	ms.nb, ms.rb = ms.nb[:0], ms.rb[:0]
	ms.at, ms.q, ms.rq = ms.at[:0], ms.q[:0], ms.rq[:0]
	ms.names = ms.names[:0]
	for k := range ms.nameIdx {
		delete(ms.nameIdx, k)
	}
}

// Len returns the number of captured events.
func (ms *MemSink) Len() int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return len(ms.op)
}

// Meta returns the run identity recorded by Begin.
func (ms *MemSink) Meta() RunMeta {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.meta
}

// Ended reports whether RunEnd closed the capture (a complete run).
func (ms *MemSink) Ended() bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.ended
}

// Recorded returns the run's recorded simulated time and wire totals.
func (ms *MemSink) Recorded() (time sim.Duration, t Totals) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.time, Totals{Msgs: ms.msgs, Bytes: ms.bytes, Queue: ms.queue}
}

func (ms *MemSink) intern(s string) int32 {
	if i, ok := ms.nameIdx[s]; ok {
		return i
	}
	i := int32(len(ms.names))
	ms.names = append(ms.names, s)
	ms.nameIdx[s] = i
	return i
}

func (ms *MemSink) push(op, kind, rkind uint8, a, b, c, nb, rb int32, at, q, rq int64) {
	ms.op = append(ms.op, op)
	ms.kind = append(ms.kind, kind)
	ms.rkind = append(ms.rkind, rkind)
	ms.a = append(ms.a, a)
	ms.b = append(ms.b, b)
	ms.c = append(ms.c, c)
	ms.nb = append(ms.nb, nb)
	ms.rb = append(ms.rb, rb)
	ms.at = append(ms.at, at)
	ms.q = append(ms.q, q)
	ms.rq = append(ms.rq, rq)
}

// Begin implements Sink.
func (ms *MemSink) Begin(meta RunMeta) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.meta = meta
	ms.began = true
}

// TraceLeg implements simnet.TraceSink.
func (ms *MemSink) TraceLeg(kind simnet.MsgKind, src, dst, bytes int, at, queue sim.Duration) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.push(opLeg, uint8(kind), 0, int32(src), int32(dst), 0, int32(bytes), 0, int64(at), int64(queue), 0)
}

// TraceControl implements simnet.TraceSink.
func (ms *MemSink) TraceControl(kind simnet.MsgKind, src, dst, bytes int, at, queue sim.Duration) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.push(opControl, uint8(kind), 0, int32(src), int32(dst), 0, int32(bytes), 0, int64(at), int64(queue), 0)
}

// TraceExchange implements simnet.TraceSink.
func (ms *MemSink) TraceExchange(reqKind, repKind simnet.MsgKind, src, dst, reqBytes, repBytes int, at sim.Duration, t netmodel.ExchangeTiming) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.push(opExchange, uint8(reqKind), uint8(repKind), int32(src), int32(dst), 0,
		int32(reqBytes), int32(repBytes), int64(at), int64(t.Request.Queue), int64(t.Reply.Queue))
}

// BarrierEnter implements Sink.
func (ms *MemSink) BarrierEnter(p int, at sim.Duration) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.push(opBarrierEnter, 0, 0, int32(p), 0, 0, 0, 0, int64(at), 0, 0)
}

// BarrierLeave implements Sink.
func (ms *MemSink) BarrierLeave(p, episode int, at sim.Duration) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.push(opBarrierLeave, 0, 0, int32(p), int32(episode), 0, 0, 0, int64(at), 0, 0)
}

// LockRequest implements Sink.
func (ms *MemSink) LockRequest(p, l int, at sim.Duration) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.push(opLockRequest, 0, 0, int32(p), int32(l), 0, 0, 0, int64(at), 0, 0)
}

// LockAcquire implements Sink.
func (ms *MemSink) LockAcquire(p, l int, at sim.Duration) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.push(opLockAcquire, 0, 0, int32(p), int32(l), 0, 0, 0, int64(at), 0, 0)
}

// LockRelease implements Sink.
func (ms *MemSink) LockRelease(p, l int, at sim.Duration) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.push(opLockRelease, 0, 0, int32(p), int32(l), 0, 0, 0, int64(at), 0, 0)
}

// FaultBegin implements Sink.
func (ms *MemSink) FaultBegin(p, page, unit int, at sim.Duration) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.push(opFaultBegin, 0, 0, int32(p), int32(unit), int32(page), 0, 0, int64(at), 0, 0)
}

// FaultEnd implements Sink.
func (ms *MemSink) FaultEnd(p, page int, at sim.Duration) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.push(opFaultEnd, 0, 0, int32(p), 0, int32(page), 0, 0, int64(at), 0, 0)
}

// ProtocolSwitch implements Sink.
func (ms *MemSink) ProtocolSwitch(u int, from, to string, phase int) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	fi, ti := ms.intern(from), ms.intern(to)
	ms.push(opSwitch, 0, 0, int32(u), int32(phase), 0, fi, ti, 0, 0, 0)
}

// Rehome implements Sink.
func (ms *MemSink) Rehome(u, from, to, bytes int, transfer bool) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	var tr int32
	if transfer {
		tr = 1
	}
	ms.push(opRehome, 0, 0, int32(u), int32(from), int32(to), int32(bytes), tr, 0, 0, 0)
}

// RunEnd implements Sink: closes the capture with the recorded totals
// and every processor's final virtual clock.
func (ms *MemSink) RunEnd(time sim.Duration, msgs, bytes int64, queue sim.Duration, clocks []sim.Duration) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.time, ms.msgs, ms.bytes, ms.queue = time, msgs, bytes, queue
	ms.clocks = append(ms.clocks[:0], clocks...)
	ms.ended = true
}

// EmitJSONL replays the buffer into a Writer as one run, reproducing
// exactly the event stream a live *Run capture of the same execution
// would have written — MemSink is the fast capture path, JSONL the
// interchange format, and this is the bridge between them.
func (ms *MemSink) EmitJSONL(w *Writer) error {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if !ms.ended {
		return fmt.Errorf("trace: EmitJSONL on an unfinished capture")
	}
	r := w.BeginRun(ms.meta)
	for i := range ms.op {
		a, b, c := int(ms.a[i]), int(ms.b[i]), int(ms.c[i])
		nb, rb := int(ms.nb[i]), int(ms.rb[i])
		at, q, rq := sim.Duration(ms.at[i]), sim.Duration(ms.q[i]), sim.Duration(ms.rq[i])
		switch ms.op[i] {
		case opLeg:
			r.TraceLeg(simnet.MsgKind(ms.kind[i]), a, b, nb, at, q)
		case opControl:
			r.TraceControl(simnet.MsgKind(ms.kind[i]), a, b, nb, at, q)
		case opExchange:
			r.TraceExchange(simnet.MsgKind(ms.kind[i]), simnet.MsgKind(ms.rkind[i]), a, b, nb, rb, at,
				netmodel.ExchangeTiming{Request: netmodel.Timing{Queue: q}, Reply: netmodel.Timing{Queue: rq}})
		case opBarrierEnter:
			r.BarrierEnter(a, at)
		case opBarrierLeave:
			r.BarrierLeave(a, b, at)
		case opLockRequest:
			r.LockRequest(a, b, at)
		case opLockAcquire:
			r.LockAcquire(a, b, at)
		case opLockRelease:
			r.LockRelease(a, b, at)
		case opFaultBegin:
			r.FaultBegin(a, c, b, at)
		case opFaultEnd:
			r.FaultEnd(a, c, at)
		case opSwitch:
			r.ProtocolSwitch(a, ms.names[nb], ms.names[rb], b)
		case opRehome:
			r.Rehome(a, b, c, nb, rb != 0)
		}
	}
	r.End(ms.time, ms.msgs, ms.bytes, ms.queue)
	return w.Err()
}
