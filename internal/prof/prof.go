// Package prof wires the standard runtime/pprof collectors into the
// CLIs: -cpuprofile starts CPU sampling for the whole process lifetime,
// -memprofile writes an allocation profile at exit. One shared helper so
// dsmbench and dsmrun expose identical, boringly standard flags — the
// before/after numbers behind any performance claim in this repo must be
// reproducible with stock `go tool pprof`.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (empty = off) and returns a
// stop function that ends CPU sampling and writes the allocation profile
// to memPath (empty = off). Callers must invoke stop on every exit path
// that should produce profiles (a plain defer in main covers os.Exit-free
// paths; CLIs that os.Exit early call it explicitly first).
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prof:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live-heap numbers
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "prof: write heap profile:", err)
			}
		}
	}, nil
}
