package instrument

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/simnet"
)

// diffOfWords builds a diff that sets the given word offsets (page
// relative) to arbitrary nonzero values.
func diffOfWords(words ...int) mem.Diff {
	page := make([]byte, mem.PageSize)
	tw := mem.MakeTwin(page)
	for _, w := range words {
		page[w<<mem.WordShift] = 0xab
	}
	return mem.EncodeDiff(tw, page)
}

func addrOf(page, word int) mem.Addr {
	return mem.PageBase(page) + word*mem.WordSize
}

func TestUsefulWordReadBeforeOverwrite(t *testing.T) {
	c := NewCollector(2, 2*mem.PageSize)
	m := c.NewDataMsg(1, 2, 1, 0)
	c.TagDiff(0, 0, diffOfWords(3, 4), m)
	if m.TotalWords() != 2 {
		t.Fatalf("TotalWords = %d", m.TotalWords())
	}
	c.OnRead(0, addrOf(0, 3))
	if m.UsefulWords() != 1 || !m.Useful() {
		t.Fatalf("useful = %d", m.UsefulWords())
	}
	// Re-reading the same word must not double-credit.
	c.OnRead(0, addrOf(0, 3))
	if m.UsefulWords() != 1 {
		t.Fatal("double credit on repeated read")
	}
}

func TestUselessWordOverwrittenBeforeRead(t *testing.T) {
	c := NewCollector(1, mem.PageSize)
	m := c.NewDataMsg(1, 2, 1, 0)
	c.TagDiff(0, 0, diffOfWords(7), m)
	c.OnWrite(0, addrOf(0, 7))
	c.OnRead(0, addrOf(0, 7)) // reads own write, not the diffed value
	if m.Useful() {
		t.Fatal("overwritten-before-read word must not be useful")
	}
}

func TestUntouchedWordsAreUseless(t *testing.T) {
	c := NewCollector(1, mem.PageSize)
	m := c.NewDataMsg(1, 2, 1, 0)
	c.TagDiff(0, 0, diffOfWords(0, 1, 2), m)
	st := c.Finalize(nil)
	if st.UselessBytes != 3*mem.WordSize || st.UsefulBytes != 0 {
		t.Fatalf("useless=%d useful=%d", st.UselessBytes, st.UsefulBytes)
	}
}

func TestPiggybackedUselessData(t *testing.T) {
	c := NewCollector(1, mem.PageSize)
	m := c.NewDataMsg(1, 2, 1, 0)
	c.TagDiff(0, 0, diffOfWords(0, 1, 2, 3), m)
	c.OnRead(0, addrOf(0, 0)) // one useful word ⇒ message useful
	st := c.Finalize(nil)
	if st.UsefulBytes != 1*mem.WordSize {
		t.Fatalf("useful bytes = %d", st.UsefulBytes)
	}
	if st.PiggybackedBytes != 3*mem.WordSize {
		t.Fatalf("piggybacked bytes = %d", st.PiggybackedBytes)
	}
	if st.UselessBytes != 0 {
		t.Fatalf("useless bytes = %d", st.UselessBytes)
	}
}

func TestRetagTransfersCredit(t *testing.T) {
	// A second exchange re-diffs the same word before it is read: the
	// first exchange's copy was overwritten before read ⇒ useless; the
	// read credits only the second exchange.
	c := NewCollector(1, mem.PageSize)
	m1 := c.NewDataMsg(1, 2, 1, 0)
	m2 := c.NewDataMsg(3, 4, 2, 0)
	c.TagDiff(0, 0, diffOfWords(9), m1)
	c.TagDiff(0, 0, diffOfWords(9), m2)
	c.OnRead(0, addrOf(0, 9))
	if m1.Useful() {
		t.Fatal("first exchange must be useless")
	}
	if !m2.Useful() {
		t.Fatal("second exchange must be useful")
	}
}

func TestMessageClassification(t *testing.T) {
	c := NewCollector(1, mem.PageSize)
	mu := c.NewDataMsg(1, 2, 1, 0) // will be useful
	ml := c.NewDataMsg(3, 4, 2, 0) // will be useless
	c.TagDiff(0, 0, diffOfWords(0), mu)
	c.TagDiff(0, 0, diffOfWords(1), ml)
	c.OnRead(0, addrOf(0, 0))

	records := []simnet.Record{
		{ID: 1, Kind: simnet.DiffRequest, Bytes: 16},
		{ID: 2, Kind: simnet.DiffReply, Bytes: 100},
		{ID: 3, Kind: simnet.DiffRequest, Bytes: 16},
		{ID: 4, Kind: simnet.DiffReply, Bytes: 100},
		{ID: 5, Kind: simnet.BarrierArrive, Bytes: 8},
		{ID: 6, Kind: simnet.BarrierRelease, Bytes: 24},
	}
	st := c.Finalize(records)
	if st.Messages.Useful != 4 { // useful req+reply + 2 sync
		t.Fatalf("useful msgs = %d", st.Messages.Useful)
	}
	if st.Messages.Useless != 2 {
		t.Fatalf("useless msgs = %d", st.Messages.Useless)
	}
	if st.Messages.Total() != 6 {
		t.Fatalf("total = %d", st.Messages.Total())
	}
	if st.TotalWireBytes != 16+100+16+100+8+24 {
		t.Fatalf("wire bytes = %d", st.TotalWireBytes)
	}
	if st.Exchanges != 2 {
		t.Fatalf("exchanges = %d", st.Exchanges)
	}
}

func TestSignatureBuckets(t *testing.T) {
	c := NewCollector(1, 4*mem.PageSize)
	// Fault 1: two writers, one useful one useless.
	a := c.NewDataMsg(1, 2, 1, 0)
	b := c.NewDataMsg(3, 4, 2, 0)
	c.TagDiff(0, 0, diffOfWords(0), a)
	c.TagDiff(0, 0, diffOfWords(1), b)
	c.OnFault(0, 0, []*DataMsg{a, b})
	c.OnRead(0, addrOf(0, 0))
	// Fault 2: one writer, useful.
	d := c.NewDataMsg(5, 6, 1, 0)
	c.TagDiff(0, 1, diffOfWords(0), d)
	c.OnFault(0, 1, []*DataMsg{d})
	c.OnRead(0, addrOf(1, 0))
	// Fault 3: prefetched page, no fetch.
	c.OnFault(0, 2, nil)

	st := c.Finalize(nil)
	if st.Faults != 3 || st.ZeroFetchFaults != 1 {
		t.Fatalf("faults = %d, zero-fetch = %d", st.Faults, st.ZeroFetchFaults)
	}
	b2 := st.Signature[2]
	if b2 == nil || b2.Faults != 1 || b2.UsefulMsgs != 2 || b2.UselessMsgs != 2 {
		t.Fatalf("bucket 2 = %+v", b2)
	}
	b1 := st.Signature[1]
	if b1 == nil || b1.Faults != 1 || b1.UsefulMsgs != 2 || b1.UselessMsgs != 0 {
		t.Fatalf("bucket 1 = %+v", b1)
	}
	if st.Signature[3] != nil {
		t.Fatal("unexpected bucket 3")
	}
}

func TestPerProcTagIsolation(t *testing.T) {
	// The same global word tagged for proc 0 must not be visible to
	// proc 1's reads.
	c := NewCollector(2, mem.PageSize)
	m := c.NewDataMsg(1, 2, 1, 0)
	c.TagDiff(0, 0, diffOfWords(5), m)
	c.OnRead(1, addrOf(0, 5))
	if m.Useful() {
		t.Fatal("cross-processor credit")
	}
	c.OnRead(0, addrOf(0, 5))
	if !m.Useful() {
		t.Fatal("owner read must credit")
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{Useful: 3, Useless: 4}
	if b.Total() != 7 {
		t.Fatal("Breakdown.Total")
	}
	s := &Stats{UsefulBytes: 8, UselessBytes: 16, PiggybackedBytes: 24}
	if s.TotalDataBytes() != 48 {
		t.Fatal("TotalDataBytes")
	}
}
