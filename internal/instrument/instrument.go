// Package instrument implements the paper's §5.3 measurement
// methodology. It records every read, write, and diff application at word
// granularity and classifies communication after the run:
//
//   - a diffed word applied to a replica is useful if it is read before
//     being overwritten, useless otherwise (including never touched);
//   - a data message (diff request/reply exchange) is useless if it
//     carries no useful word; synchronization messages are always useful;
//   - useless data carried on useful messages is "piggybacked" useless
//     data;
//   - the false-sharing signature is the histogram, over access faults,
//     of the number of concurrent writers contacted, with each bar split
//     into the useful and useless messages of those faults.
package instrument

import (
	"repro/internal/mem"
	"repro/internal/simnet"
)

// DataMsg tracks one diff request/reply exchange with one writer.
type DataMsg struct {
	Req    simnet.MsgID
	Reply  simnet.MsgID
	Writer int
	Reader int

	index      int32 // position in Collector.data[Reader]
	totalWords int32
	useful     int32 // words read before overwritten (owned by Reader's goroutine)
}

// Useful reports whether the exchange carried at least one useful word.
// Valid only after the run completes.
func (m *DataMsg) Useful() bool { return m.useful > 0 }

// TotalWords returns the number of diffed words the exchange carried.
func (m *DataMsg) TotalWords() int { return int(m.totalWords) }

// UsefulWords returns the number of words read before being overwritten.
func (m *DataMsg) UsefulWords() int { return int(m.useful) }

// Fault records one access miss that reached the fault handler.
type Fault struct {
	Proc    int
	Page    int
	Writers int // concurrent writers contacted (0 = no fetch needed)
	msgs    []int32
}

// Collector gathers per-word usefulness, per-exchange accounting, and
// fault events for one run. Every array is per processor and only
// touched by that processor's goroutine until Finalize — an exchange is
// always created by the faulting *reader*, its diffs are tagged into
// the reader's tag row, and reads consult only that row — so the
// collector needs no locking, on the access hot path or off it.
type Collector struct {
	nprocs int
	npages int
	// tags[proc][page] is the page's word-tag row (DataMsg index+1 per
	// word, 0 = none), materialized on the first diff tagged into that
	// page for that processor. A processor only ever reads tags where a
	// diff was applied, so a nil row means "no tags" and the per-proc
	// footprint is O(pages fetched), not O(segment) — the difference
	// between 8 and 1024 processors over a large segment.
	tags [][][]int32

	data [][]*DataMsg // [proc]: exchanges created by proc's faults

	faults [][]Fault // per proc, appended only by that proc
}

// NewCollector returns a collector for nprocs processors over a segment
// of segBytes bytes.
func NewCollector(nprocs, segBytes int) *Collector {
	npages := mem.RoundUpPages(segBytes) / mem.PageSize
	c := &Collector{
		nprocs: nprocs,
		npages: npages,
		tags:   make([][][]int32, nprocs),
		data:   make([][]*DataMsg, nprocs),
		faults: make([][]Fault, nprocs),
	}
	for p := range c.tags {
		c.tags[p] = make([][]int32, npages)
	}
	return c
}

// OnRead records a read of the word at byte address addr by proc. If the
// word was applied by a diff and not yet overwritten, the carrying
// exchange is credited with a useful word.
func (c *Collector) OnRead(proc int, addr mem.Addr) {
	row := c.tags[proc][addr>>mem.PageShift]
	if row == nil {
		return
	}
	w := mem.WordIndex(addr)
	if tag := row[w]; tag != 0 {
		c.data[proc][tag-1].useful++
		row[w] = 0
	}
}

// OnWrite records a write: an applied-but-unread word overwritten locally
// becomes useless (its tag is dropped without credit).
func (c *Collector) OnWrite(proc int, addr mem.Addr) {
	if row := c.tags[proc][addr>>mem.PageShift]; row != nil {
		row[mem.WordIndex(addr)] = 0
	}
}

// NewDataMsg registers a diff exchange between reader and writer. It
// must be called on the reader's goroutine (exchanges are created by
// the faulting reader).
func (c *Collector) NewDataMsg(req, reply simnet.MsgID, writer, reader int) *DataMsg {
	m := &DataMsg{Req: req, Reply: reply, Writer: writer, Reader: reader}
	m.index = int32(len(c.data[reader]))
	c.data[reader] = append(c.data[reader], m)
	return m
}

// TagDiff marks every word of d (applied to page in proc's replica) as
// carried by exchange m. A word already tagged by an earlier exchange is
// re-tagged; the earlier exchange simply never receives the credit
// (overwritten before read).
func (c *Collector) TagDiff(proc, page int, d mem.Diff, m *DataMsg) {
	tag := m.index + 1
	row := c.tags[proc][page]
	if row == nil {
		row = make([]int32, mem.WordsPerPage)
		c.tags[proc][page] = row
	}
	d.ForEachWord(func(w int) {
		row[w] = tag
	})
	m.totalWords += int32(d.WordCount())
}

// OnFault records one access miss by proc on page, contacting the given
// exchanges (one per concurrent writer).
func (c *Collector) OnFault(proc, page int, msgs []*DataMsg) {
	f := Fault{Proc: proc, Page: page, Writers: len(msgs)}
	for _, m := range msgs {
		f.msgs = append(f.msgs, m.index)
	}
	c.faults[proc] = append(c.faults[proc], f)
}

// SigBucket is one bar of the false-sharing signature: the faults that
// contacted exactly Writers concurrent writers, and the useful/useless
// messages those faults exchanged. The json tags define the -json CLI
// schema (snake_case, like the report layer).
type SigBucket struct {
	Writers     int `json:"writers"`
	Faults      int `json:"faults"`
	UsefulMsgs  int `json:"useful_msgs"`
	UselessMsgs int `json:"useless_msgs"`
}

// Breakdown splits message or byte counts per the paper's figures.
type Breakdown struct {
	Useful  int `json:"useful"`
	Useless int `json:"useless"`
}

// Total returns Useful + Useless.
func (b Breakdown) Total() int { return b.Useful + b.Useless }

// Stats is the per-run communication breakdown of Figures 1–3. The
// json tags define the -json CLI schema.
type Stats struct {
	// Messages counts every protocol message. Useless = both legs of
	// data exchanges that carried no useful word; synchronization
	// messages and useful exchanges are Useful.
	Messages Breakdown `json:"messages"`
	// DataBytes classifies diff payload words (×8 bytes). Piggybacked
	// is useless data carried on useful messages; UselessBytes rides on
	// useless messages.
	UsefulBytes      int `json:"useful_bytes"`
	UselessBytes     int `json:"useless_bytes"`
	PiggybackedBytes int `json:"piggybacked_bytes"`
	// TotalWireBytes is all payload bytes on the network, including
	// write notices and sync traffic.
	TotalWireBytes int `json:"total_wire_bytes"`
	// Faults counts access misses that reached the fault handler;
	// ZeroFetchFaults is the subset that needed no remote data (cold
	// pages, or group members whose updates were prefetched).
	Faults          int `json:"faults"`
	ZeroFetchFaults int `json:"zero_fetch_faults"`
	// Exchanges counts data request/reply pairs.
	Exchanges int `json:"exchanges"`
	// Signature maps concurrent-writer cardinality to its bar.
	Signature map[int]*SigBucket `json:"signature,omitempty"`
}

// TotalDataBytes returns all diff payload bytes.
func (s *Stats) TotalDataBytes() int {
	return s.UsefulBytes + s.UselessBytes + s.PiggybackedBytes
}

// Finalize classifies the run. records must be the network's complete
// message log. Call only after all processor goroutines have finished.
func (c *Collector) Finalize(records []simnet.Record) *Stats {
	s := &Stats{Signature: make(map[int]*SigBucket)}

	// Classify exchanges.
	usefulByReply := make(map[simnet.MsgID]bool)
	for _, procMsgs := range c.data {
		for _, m := range procMsgs {
			u := m.Useful()
			usefulByReply[m.Reply] = u
			usefulByReply[m.Req] = u
			s.Exchanges++
			if u {
				s.UsefulBytes += int(m.useful) * mem.WordSize
				s.PiggybackedBytes += int(m.totalWords-m.useful) * mem.WordSize
			} else {
				s.UselessBytes += int(m.totalWords) * mem.WordSize
			}
		}
	}

	// Classify messages.
	for _, r := range records {
		s.TotalWireBytes += r.Bytes
		if r.Kind.IsData() {
			if usefulByReply[r.ID] {
				s.Messages.Useful++
			} else {
				s.Messages.Useless++
			}
		} else {
			s.Messages.Useful++
		}
	}

	// Signature.
	for p := range c.faults {
		for i := range c.faults[p] {
			f := &c.faults[p][i]
			s.Faults++
			if f.Writers == 0 {
				s.ZeroFetchFaults++
				continue
			}
			b := s.Signature[f.Writers]
			if b == nil {
				b = &SigBucket{Writers: f.Writers}
				s.Signature[f.Writers] = b
			}
			b.Faults++
			for _, idx := range f.msgs {
				if c.data[p][idx].Useful() {
					b.UsefulMsgs += 2 // request + reply
				} else {
					b.UselessMsgs += 2
				}
			}
		}
	}
	return s
}
