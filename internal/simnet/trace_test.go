package simnet

import (
	"testing"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

// recSink is a TraceSink double accumulating what it observes.
type recSink struct {
	legs, ctls, xchgs int
	bytes             int64
	queue             sim.Duration
}

func (s *recSink) TraceLeg(kind MsgKind, src, dst, bytes int, at, queue sim.Duration) {
	s.legs++
	s.bytes += int64(bytes)
	s.queue += queue
}

func (s *recSink) TraceControl(kind MsgKind, src, dst, bytes int, at, queue sim.Duration) {
	s.ctls++
	s.bytes += int64(bytes)
	s.queue += queue
}

func (s *recSink) TraceExchange(reqKind, repKind MsgKind, src, dst, reqBytes, replyBytes int, at sim.Duration, t netmodel.ExchangeTiming) {
	s.xchgs++
	s.bytes += int64(reqBytes) + int64(replyBytes)
	s.queue += t.Request.Queue + t.Reply.Queue
}

// TestTraceSinkObservesEveryPricedMessage pins the capture invariant on
// a stateful model: the sink sees each pricing operation with the exact
// bytes and queue delay the network accounted, so the sink's sums equal
// the network's totals.
func TestTraceSinkObservesEveryPricedMessage(t *testing.T) {
	cost := sim.DefaultCostModel()
	m, err := netmodel.New("bus", cost)
	if err != nil {
		t.Fatal(err)
	}
	n := NewWithModel(cost, m)
	sink := &recSink{}
	n.SetTraceSink(sink)
	n.SendLeg(DiffRequest, 0, 1, 64, 0)
	n.SendControl(BarrierArrive, 1, 0, 16, 10)
	n.SendExchange(DiffRequest, DiffReply, 2, 3, 32, 4096, 20)
	n.SetTraceSink(nil)

	if sink.legs != 1 || sink.ctls != 1 || sink.xchgs != 1 {
		t.Fatalf("sink saw legs=%d ctls=%d xchgs=%d, want 1 each", sink.legs, sink.ctls, sink.xchgs)
	}
	msgs, bytes := n.Counts()
	if msgs != 4 {
		t.Fatalf("messages = %d, want 4 (leg + control + exchange pair)", msgs)
	}
	if sink.bytes != int64(bytes) {
		t.Fatalf("sink bytes = %d, network bytes = %d", sink.bytes, bytes)
	}
	if sink.queue != n.QueueTotal() {
		t.Fatalf("sink queue = %v, network queue = %v", sink.queue, n.QueueTotal())
	}
}

// TestTraceSinkForcesLockedPath: installing a sink must take the
// counts-only fast path off lock-free mode (emission order must match
// pricing order), and removing it must restore the fast path.
func TestTraceSinkForcesLockedPath(t *testing.T) {
	n := New(sim.DefaultCostModel(), WithCountsOnly())
	if !n.lockFree {
		t.Fatal("counts-only ideal network should start lock-free")
	}
	sink := &recSink{}
	n.SetTraceSink(sink)
	if n.lockFree {
		t.Fatal("installed sink must disable the lock-free send path")
	}
	n.SendLeg(DiffRequest, 0, 1, 64, 0)
	if sink.legs != 1 {
		t.Fatalf("sink saw %d legs in counts-only mode, want 1", sink.legs)
	}
	n.SetTraceSink(nil)
	if !n.lockFree {
		t.Fatal("removing the sink must restore the lock-free send path")
	}
}
