package simnet

import (
	"testing"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

// TestAllocBudgetCountsOnly pins the counts-only send paths at zero
// allocations: with no log retained and a stateless pricing model,
// recording a message is a handful of atomic adds — no Record is
// built, no lock is taken, nothing escapes.
func TestAllocBudgetCountsOnly(t *testing.T) {
	n := New(sim.DefaultCostModel(), WithCountsOnly())
	at := sim.Duration(0)
	if nAllocs := testing.AllocsPerRun(100, func() {
		n.SendLeg(HomeFlush, 0, 1, 256, at)
		n.SendControl(LockRequest, 0, 1, 16, at)
		n.SendExchange(DiffRequest, DiffReply, 0, 1, 32, 512, at)
		at += sim.Microsecond
	}); nAllocs != 0 {
		t.Errorf("counts-only sends: %v allocs/op, want 0", nAllocs)
	}
	msgs, bytes := n.Counts()
	if msgs == 0 || bytes == 0 {
		t.Fatalf("counts not maintained: %d msgs, %d bytes", msgs, bytes)
	}
	if len(n.Snapshot()) != 0 {
		t.Fatal("counts-only network retained records")
	}
}

// TestCountsOnlyLockFree pins that the lock-free fast path engages
// exactly when it is sound: counts-only retention over a stateless
// model. A contended model keeps occupancy state, so its pricing must
// stay serialized even without a log.
func TestCountsOnlyLockFree(t *testing.T) {
	if n := New(sim.DefaultCostModel(), WithCountsOnly()); !n.lockFree {
		t.Error("ideal + counts-only: want lock-free sends")
	}
	if n := New(sim.DefaultCostModel()); n.lockFree {
		t.Error("full log: want locked sends")
	}
	m, err := netmodel.New("bus", sim.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if n := NewWithModel(sim.DefaultCostModel(), m, WithCountsOnly()); n.lockFree {
		t.Error("stateful model: want locked sends even counts-only")
	}
}

// BenchmarkSendExchange measures the per-exchange recording cost of
// the three retention modes; counts-only's lock-free path is the one
// the network- and placement-sensitivity sweeps run on.
func BenchmarkSendExchange(b *testing.B) {
	modes := []struct {
		name string
		opts []Option
	}{
		{"full-log", nil},
		{"ring-1024", []Option{WithRecordCap(1024)}},
		{"counts-only", []Option{WithCountsOnly()}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			n := New(sim.DefaultCostModel(), m.opts...)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n.SendExchange(DiffRequest, DiffReply, 0, 1, 32, 512, sim.Duration(i))
			}
		})
	}
}
