// Package simnet is the simulated cluster interconnect carrying the
// DSM's protocol messages between the simulated processors.
//
// Protocol payloads (diffs, write notices, lock grants) travel for real
// between goroutines; this package gives every message an identity,
// records its kind/src/dst/size/timing for the paper's communication
// breakdowns, and delegates the virtual-time *pricing* of legs and
// exchanges to a pluggable internal/netmodel Model — the paper's flat
// §5.1 arithmetic ("ideal", the default) or a contention-aware
// interconnect ("bus", "switch", and the preset family). Delivery
// itself uses the Go memory model (the engine's synchronous hand-offs),
// which is the idiomatic substitution for UDP/IP between address
// spaces: what the paper measures is counts × costs, and both are
// preserved.
package simnet

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

// MsgKind identifies the protocol message types of the TreadMarks-style
// engine.
type MsgKind uint8

const (
	// DiffRequest asks a writer for the diffs of a set of pages.
	DiffRequest MsgKind = iota
	// DiffReply returns the requested diffs.
	DiffReply
	// LockRequest travels from an acquirer to the lock's manager.
	LockRequest
	// LockForward travels from the manager to the current holder.
	LockForward
	// LockGrant hands the lock (plus consistency information) to the
	// acquirer.
	LockGrant
	// BarrierArrive carries a processor's new write notices to the
	// barrier manager.
	BarrierArrive
	// BarrierRelease broadcasts merged write notices from the manager.
	BarrierRelease
	// HomeFlush carries a writer's diffs to a unit's home processor at
	// release time (home-based protocols only). It is a one-way message
	// and, like synchronization traffic, always necessary — the home
	// must be kept up to date regardless of who later reads the unit —
	// so it is not a data message in the §5.3 usefulness sense.
	HomeFlush
	// HomeHandoff carries a unit's current image to its new home when
	// the adaptive protocol switches the unit from homeless to
	// home-based ownership: the home pulls the image from the unit's
	// last writer in one request/reply exchange. Like HomeFlush it is
	// protocol-management traffic, not a data message in the §5.3
	// usefulness sense.
	HomeHandoff
	// HomeMigrate carries a unit's versioned home state to its new home
	// when the placement layer rehomes the unit at a barrier
	// (JIAJIA-style migration): the new home pulls the state from the
	// old home in one request/reply exchange. Protocol-management
	// traffic, like HomeHandoff.
	HomeMigrate

	numKinds
)

var kindNames = [numKinds]string{
	"DiffRequest", "DiffReply", "LockRequest", "LockForward",
	"LockGrant", "BarrierArrive", "BarrierRelease", "HomeFlush",
	"HomeHandoff", "HomeMigrate",
}

func (k MsgKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("MsgKind(%d)", uint8(k))
}

// IsData reports whether the kind carries application data (diffs); only
// data messages can be useless in the paper's sense. Synchronization
// messages are necessary regardless of the data they carry.
func (k MsgKind) IsData() bool { return k == DiffRequest || k == DiffReply }

// MsgID identifies one recorded message. Zero is "no message".
type MsgID int32

// Record is the log entry of one message.
type Record struct {
	ID    MsgID
	Kind  MsgKind
	Src   int
	Dst   int
	Bytes int
	// SendAt is the sender's virtual clock when the message departed.
	SendAt sim.Duration
	// Queue is the contention delay the message's leg experienced on
	// the configured network model (always zero on "ideal").
	Queue sim.Duration
}

// KindCount aggregates the messages of one kind.
type KindCount struct {
	Messages int
	Bytes    int
}

// Network records every protocol message of a run and prices legs and
// exchanges through its network model. It is safe for concurrent use by
// all processor goroutines.
//
// Pricing runs under the same lock as recording, so the model's
// occupancy state advances in message-log order: the queue a message
// sees is the queue left by the messages recorded before it.
//
// By default the full message log is retained for Snapshot consumers
// (the §5.3 instrumentation needs every record). Million-message runs
// that only need the O(1) running totals — Counts, CountsByKind,
// QueueTotal — can cap retention with WithRecordCap (Snapshot then
// returns the newest window) or drop it entirely with WithCountsOnly;
// the totals stay exact either way.
//
// When nothing needs the lock — counts-only retention over a
// stateless pricing model (see netmodel.Stateless) — the send paths
// skip the mutex entirely: no Record is built, and the running totals
// advance with atomics. The totals are order-independent sums, so
// they stay exact; only message-ID adjacency within an exchange is
// lost, which no counts-only consumer observes.
type Network struct {
	cost  sim.CostModel
	model netmodel.Model
	// lockFree is set at construction when the send paths need neither
	// record retention nor occupancy serialization (and cleared while a
	// trace sink is installed).
	lockFree bool
	// sink, when non-nil, observes every priced message under mu.
	sink TraceSink

	mu      sync.Mutex
	records []Record
	// recordCap bounds the retained log: -1 keeps everything (the
	// default), 0 keeps nothing, n > 0 keeps the newest n records in a
	// ring (ringHead is the oldest retained record once full).
	recordCap int
	ringHead  int
	// Running totals, maintained on every send so the per-report Counts
	// calls never rescan a log that can grow to millions of records.
	// Atomics so the lock-free mode shares them with the locked paths.
	totalMsgs  atomic.Int64
	totalBytes atomic.Int64
	kindMsgs   [numKinds]atomic.Int64
	kindBytes  [numKinds]atomic.Int64
	totalQueue atomic.Int64
}

// TraceSink observes every priced message. The callbacks run inside
// the network's pricing lock, so a sink sees the operations in exactly
// the order the model priced them — the property that makes a captured
// trace replayable to bit-identical totals. Implementations must not
// call back into the Network.
//
// The three callbacks mirror the three pricing operations: a payload
// leg, a control leg (priced payload-free; bytes is still the wire
// size), and a request/reply exchange (the reply leg departs at
// at + t.Request.Total + t.Service).
type TraceSink interface {
	TraceLeg(kind MsgKind, src, dst, bytes int, at, queue sim.Duration)
	TraceControl(kind MsgKind, src, dst, bytes int, at, queue sim.Duration)
	TraceExchange(reqKind, repKind MsgKind, src, dst, reqBytes, replyBytes int, at sim.Duration, t netmodel.ExchangeTiming)
}

// SetTraceSink installs (or, with nil, removes) the network's trace
// sink. A non-nil sink forces the send paths through the pricing lock
// even in counts-only mode — emission order must match pricing order.
// Must not be called concurrently with sends: install the sink before
// the processor goroutines start, remove it after they join.
func (n *Network) SetTraceSink(s TraceSink) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sink = s
	n.lockFree = n.recordCap == 0 && netmodel.IsStateless(n.model) && s == nil
}

// Option configures a Network under construction.
type Option func(*Network)

// WithRecordCap bounds the retained message log to the newest cap
// records (a ring buffer). The running totals remain exact; Snapshot
// returns only the retained window, oldest first. A negative cap keeps
// the full log (the default).
func WithRecordCap(cap int) Option {
	return func(n *Network) { n.recordCap = cap }
}

// WithCountsOnly retains no message records at all: Counts,
// CountsByKind, and QueueTotal stay exact and O(1), while Snapshot
// returns an empty log. The memory-pressure setting for million-message
// runs whose consumers never replay the log.
func WithCountsOnly() Option { return WithRecordCap(0) }

// New returns an empty network priced by the ideal (contention-free)
// model over the given cost calibration.
func New(cost sim.CostModel, opts ...Option) *Network {
	m, err := netmodel.New(netmodel.Default, cost)
	if err != nil {
		panic(err) // the default model is always registered
	}
	return NewWithModel(cost, m, opts...)
}

// NewWithModel returns an empty network priced by the given model.
func NewWithModel(cost sim.CostModel, m netmodel.Model, opts ...Option) *Network {
	n := &Network{cost: cost, model: m, recordCap: -1}
	for _, opt := range opts {
		opt(n)
	}
	n.lockFree = n.recordCap == 0 && netmodel.IsStateless(m)
	return n
}

// Cost returns the network's cost model.
func (n *Network) Cost() sim.CostModel { return n.cost }

// Model returns the network's timing model.
func (n *Network) Model() netmodel.Model { return n.model }

// count advances the running totals for one message and returns its
// ID. Atomic, so both the locked and lock-free send paths share it.
func (n *Network) count(kind MsgKind, bytes int, queue sim.Duration) MsgID {
	id := MsgID(n.totalMsgs.Add(1))
	n.totalBytes.Add(int64(bytes))
	n.kindMsgs[kind].Add(1)
	n.kindBytes[kind].Add(int64(bytes))
	if queue != 0 {
		n.totalQueue.Add(int64(queue))
	}
	return id
}

// append records one message under n.mu (caller must hold it).
func (n *Network) append(kind MsgKind, src, dst, bytes int, at, queue sim.Duration) MsgID {
	id := n.count(kind, bytes, queue)
	if n.recordCap == 0 {
		// Counts only: nothing retained, no Record built.
		return id
	}
	rec := Record{
		ID: id, Kind: kind, Src: src, Dst: dst, Bytes: bytes,
		SendAt: at, Queue: queue,
	}
	switch {
	case n.recordCap < 0 || len(n.records) < n.recordCap:
		n.records = append(n.records, rec)
	default:
		n.records[n.ringHead] = rec
		n.ringHead = (n.ringHead + 1) % n.recordCap
	}
	return id
}

// SendLeg records one one-way message departing at the sender's virtual
// time at, priced by the network model, and returns its ID and timing.
func (n *Network) SendLeg(kind MsgKind, src, dst, bytes int, at sim.Duration) (MsgID, netmodel.Timing) {
	if n.lockFree {
		t := n.model.Leg(src, dst, bytes, at)
		return n.count(kind, bytes, t.Queue), t
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	t := n.model.Leg(src, dst, bytes, at)
	if n.sink != nil {
		n.sink.TraceLeg(kind, src, dst, bytes, at, t.Queue)
	}
	return n.append(kind, src, dst, bytes, at, t.Queue), t
}

// SendControl records a control message (lock request/forward) priced
// as a payload-free leg: its few header bytes fold into the fixed leg
// cost, matching the pre-netmodel engine's arithmetic, while the
// recorded size still reflects the bytes on the wire.
func (n *Network) SendControl(kind MsgKind, src, dst, bytes int, at sim.Duration) (MsgID, netmodel.Timing) {
	if n.lockFree {
		t := n.model.Leg(src, dst, 0, at)
		return n.count(kind, bytes, t.Queue), t
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	t := n.model.Leg(src, dst, 0, at)
	if n.sink != nil {
		n.sink.TraceControl(kind, src, dst, bytes, at, t.Queue)
	}
	return n.append(kind, src, dst, bytes, at, t.Queue), t
}

// SendExchange records a request/reply pair departing at the
// requester's virtual time at, priced by the network model as one
// exchange, and returns both IDs and the exchange timing (the caller
// charges ExchangeTiming.Total, which includes the remote service).
func (n *Network) SendExchange(reqKind, repKind MsgKind, src, dst, reqBytes, replyBytes int, at sim.Duration) (reqID, repID MsgID, t netmodel.ExchangeTiming) {
	if n.lockFree {
		t = n.model.Exchange(src, dst, reqBytes, replyBytes, at)
		reqID = n.count(reqKind, reqBytes, t.Request.Queue)
		repID = n.count(repKind, replyBytes, t.Reply.Queue)
		return reqID, repID, t
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	t = n.model.Exchange(src, dst, reqBytes, replyBytes, at)
	if n.sink != nil {
		n.sink.TraceExchange(reqKind, repKind, src, dst, reqBytes, replyBytes, at, t)
	}
	reqID = n.append(reqKind, src, dst, reqBytes, at, t.Request.Queue)
	repID = n.append(repKind, dst, src, replyBytes, at+t.Request.Total+t.Service, t.Reply.Queue)
	return reqID, repID, t
}

// Snapshot returns a copy of the retained message log, oldest first —
// the complete log by default, or the newest window under WithRecordCap
// (empty under WithCountsOnly). Dropped reports what is missing.
func (n *Network) Snapshot() []Record {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Record, 0, len(n.records))
	out = append(out, n.records[n.ringHead:]...)
	out = append(out, n.records[:n.ringHead]...)
	return out
}

// Dropped returns the number of messages no longer retained in the log
// because of a record cap (always zero without one).
func (n *Network) Dropped() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return int(n.totalMsgs.Load()) - len(n.records)
}

// Counts returns the total number of messages and payload bytes.
func (n *Network) Counts() (messages, bytes int) {
	return int(n.totalMsgs.Load()), int(n.totalBytes.Load())
}

// CountsByKind returns per-kind message and byte totals.
func (n *Network) CountsByKind() map[MsgKind]KindCount {
	out := make(map[MsgKind]KindCount, numKinds)
	for k := range n.kindMsgs {
		if m := n.kindMsgs[k].Load(); m > 0 {
			out[MsgKind(k)] = KindCount{
				Messages: int(m), Bytes: int(n.kindBytes[k].Load()),
			}
		}
	}
	return out
}

// QueueTotal returns the cumulative contention delay across all
// recorded messages (zero on the ideal model).
func (n *Network) QueueTotal() sim.Duration {
	return sim.Duration(n.totalQueue.Load())
}

// ExchangeCost prices one request/reply exchange on the ideal
// arithmetic (excluding the fixed fault cost, which the engine charges
// separately). Contention-unaware by construction; engine paths use
// SendExchange instead.
func (n *Network) ExchangeCost(requestBytes, replyBytes int) sim.Duration {
	return n.cost.RoundTrip(requestBytes, replyBytes) + n.cost.RequestService
}

// OneWayCost prices a single message leg with payload on the ideal
// arithmetic.
func (n *Network) OneWayCost(payloadBytes int) sim.Duration {
	return n.cost.MessageLeg + sim.Duration(payloadBytes)*n.cost.PerByte
}
