// Package simnet is the simulated cluster interconnect: a 100 Mbps
// switched Ethernet carrying the DSM's protocol messages between the
// eight simulated processors.
//
// Protocol payloads (diffs, write notices, lock grants) travel for real
// between goroutines; this package gives every message an identity,
// records its kind/src/dst/size for the paper's communication breakdowns,
// and computes the virtual-time cost of exchanges from the calibrated
// sim.CostModel. Delivery itself uses the Go memory model (the engine's
// synchronous hand-offs), which is the idiomatic substitution for UDP/IP
// between address spaces: what the paper measures is counts × costs, and
// both are preserved.
package simnet

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// MsgKind identifies the protocol message types of the TreadMarks-style
// engine.
type MsgKind uint8

const (
	// DiffRequest asks a writer for the diffs of a set of pages.
	DiffRequest MsgKind = iota
	// DiffReply returns the requested diffs.
	DiffReply
	// LockRequest travels from an acquirer to the lock's manager.
	LockRequest
	// LockForward travels from the manager to the current holder.
	LockForward
	// LockGrant hands the lock (plus consistency information) to the
	// acquirer.
	LockGrant
	// BarrierArrive carries a processor's new write notices to the
	// barrier manager.
	BarrierArrive
	// BarrierRelease broadcasts merged write notices from the manager.
	BarrierRelease
	// HomeFlush carries a writer's diffs to a unit's home processor at
	// release time (home-based protocols only). It is a one-way message
	// and, like synchronization traffic, always necessary — the home
	// must be kept up to date regardless of who later reads the unit —
	// so it is not a data message in the §5.3 usefulness sense.
	HomeFlush

	numKinds
)

var kindNames = [numKinds]string{
	"DiffRequest", "DiffReply", "LockRequest", "LockForward",
	"LockGrant", "BarrierArrive", "BarrierRelease", "HomeFlush",
}

func (k MsgKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("MsgKind(%d)", uint8(k))
}

// IsData reports whether the kind carries application data (diffs); only
// data messages can be useless in the paper's sense. Synchronization
// messages are necessary regardless of the data they carry.
func (k MsgKind) IsData() bool { return k == DiffRequest || k == DiffReply }

// MsgID identifies one recorded message. Zero is "no message".
type MsgID int32

// Record is the log entry of one message.
type Record struct {
	ID    MsgID
	Kind  MsgKind
	Src   int
	Dst   int
	Bytes int
}

// KindCount aggregates the messages of one kind.
type KindCount struct {
	Messages int
	Bytes    int
}

// Network records every protocol message of a run and prices exchanges.
// It is safe for concurrent use by all processor goroutines.
type Network struct {
	cost sim.CostModel

	mu      sync.Mutex
	records []Record
}

// New returns an empty network with the given cost model.
func New(cost sim.CostModel) *Network {
	return &Network{cost: cost}
}

// Cost returns the network's cost model.
func (n *Network) Cost() sim.CostModel { return n.cost }

// Send records one message and returns its ID.
func (n *Network) Send(kind MsgKind, src, dst, payloadBytes int) MsgID {
	n.mu.Lock()
	id := MsgID(len(n.records) + 1)
	n.records = append(n.records, Record{
		ID: id, Kind: kind, Src: src, Dst: dst, Bytes: payloadBytes,
	})
	n.mu.Unlock()
	return id
}

// Snapshot returns a copy of the message log.
func (n *Network) Snapshot() []Record {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Record, len(n.records))
	copy(out, n.records)
	return out
}

// Counts returns the total number of messages and payload bytes.
func (n *Network) Counts() (messages, bytes int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, r := range n.records {
		messages++
		bytes += r.Bytes
	}
	return messages, bytes
}

// CountsByKind returns per-kind message and byte totals.
func (n *Network) CountsByKind() map[MsgKind]KindCount {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[MsgKind]KindCount)
	for _, r := range n.records {
		c := out[r.Kind]
		c.Messages++
		c.Bytes += r.Bytes
		out[r.Kind] = c
	}
	return out
}

// ExchangeCost prices one request/reply exchange (excluding the fixed
// fault cost, which the engine charges separately).
func (n *Network) ExchangeCost(requestBytes, replyBytes int) sim.Duration {
	return n.cost.RoundTrip(requestBytes, replyBytes) + n.cost.RequestService
}

// OneWayCost prices a single message leg with payload.
func (n *Network) OneWayCost(payloadBytes int) sim.Duration {
	return n.cost.MessageLeg + sim.Duration(payloadBytes)*n.cost.PerByte
}
