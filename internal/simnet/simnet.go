// Package simnet is the simulated cluster interconnect carrying the
// DSM's protocol messages between the simulated processors.
//
// Protocol payloads (diffs, write notices, lock grants) travel for real
// between goroutines; this package gives every message an identity,
// records its kind/src/dst/size/timing for the paper's communication
// breakdowns, and delegates the virtual-time *pricing* of legs and
// exchanges to a pluggable internal/netmodel Model — the paper's flat
// §5.1 arithmetic ("ideal", the default) or a contention-aware
// interconnect ("bus", "switch", and the preset family). Delivery
// itself uses the Go memory model (the engine's synchronous hand-offs),
// which is the idiomatic substitution for UDP/IP between address
// spaces: what the paper measures is counts × costs, and both are
// preserved.
package simnet

import (
	"fmt"
	"sync"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

// MsgKind identifies the protocol message types of the TreadMarks-style
// engine.
type MsgKind uint8

const (
	// DiffRequest asks a writer for the diffs of a set of pages.
	DiffRequest MsgKind = iota
	// DiffReply returns the requested diffs.
	DiffReply
	// LockRequest travels from an acquirer to the lock's manager.
	LockRequest
	// LockForward travels from the manager to the current holder.
	LockForward
	// LockGrant hands the lock (plus consistency information) to the
	// acquirer.
	LockGrant
	// BarrierArrive carries a processor's new write notices to the
	// barrier manager.
	BarrierArrive
	// BarrierRelease broadcasts merged write notices from the manager.
	BarrierRelease
	// HomeFlush carries a writer's diffs to a unit's home processor at
	// release time (home-based protocols only). It is a one-way message
	// and, like synchronization traffic, always necessary — the home
	// must be kept up to date regardless of who later reads the unit —
	// so it is not a data message in the §5.3 usefulness sense.
	HomeFlush

	numKinds
)

var kindNames = [numKinds]string{
	"DiffRequest", "DiffReply", "LockRequest", "LockForward",
	"LockGrant", "BarrierArrive", "BarrierRelease", "HomeFlush",
}

func (k MsgKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("MsgKind(%d)", uint8(k))
}

// IsData reports whether the kind carries application data (diffs); only
// data messages can be useless in the paper's sense. Synchronization
// messages are necessary regardless of the data they carry.
func (k MsgKind) IsData() bool { return k == DiffRequest || k == DiffReply }

// MsgID identifies one recorded message. Zero is "no message".
type MsgID int32

// Record is the log entry of one message.
type Record struct {
	ID    MsgID
	Kind  MsgKind
	Src   int
	Dst   int
	Bytes int
	// SendAt is the sender's virtual clock when the message departed.
	SendAt sim.Duration
	// Queue is the contention delay the message's leg experienced on
	// the configured network model (always zero on "ideal").
	Queue sim.Duration
}

// KindCount aggregates the messages of one kind.
type KindCount struct {
	Messages int
	Bytes    int
}

// Network records every protocol message of a run and prices legs and
// exchanges through its network model. It is safe for concurrent use by
// all processor goroutines.
//
// Pricing runs under the same lock as recording, so the model's
// occupancy state advances in message-log order: the queue a message
// sees is the queue left by the messages recorded before it.
type Network struct {
	cost  sim.CostModel
	model netmodel.Model

	mu      sync.Mutex
	records []Record
	// Running totals, maintained on append so the per-report Counts
	// calls never rescan a log that can grow to millions of records.
	totalMsgs  int
	totalBytes int
	kindTotals [numKinds]KindCount
	totalQueue sim.Duration
}

// New returns an empty network priced by the ideal (contention-free)
// model over the given cost calibration.
func New(cost sim.CostModel) *Network {
	m, err := netmodel.New(netmodel.Default, cost)
	if err != nil {
		panic(err) // the default model is always registered
	}
	return NewWithModel(cost, m)
}

// NewWithModel returns an empty network priced by the given model.
func NewWithModel(cost sim.CostModel, m netmodel.Model) *Network {
	return &Network{cost: cost, model: m}
}

// Cost returns the network's cost model.
func (n *Network) Cost() sim.CostModel { return n.cost }

// Model returns the network's timing model.
func (n *Network) Model() netmodel.Model { return n.model }

// append records one message under n.mu (caller must hold it).
func (n *Network) append(kind MsgKind, src, dst, bytes int, at, queue sim.Duration) MsgID {
	id := MsgID(len(n.records) + 1)
	n.records = append(n.records, Record{
		ID: id, Kind: kind, Src: src, Dst: dst, Bytes: bytes,
		SendAt: at, Queue: queue,
	})
	n.totalMsgs++
	n.totalBytes += bytes
	n.kindTotals[kind].Messages++
	n.kindTotals[kind].Bytes += bytes
	n.totalQueue += queue
	return id
}

// SendLeg records one one-way message departing at the sender's virtual
// time at, priced by the network model, and returns its ID and timing.
func (n *Network) SendLeg(kind MsgKind, src, dst, bytes int, at sim.Duration) (MsgID, netmodel.Timing) {
	n.mu.Lock()
	defer n.mu.Unlock()
	t := n.model.Leg(src, dst, bytes, at)
	return n.append(kind, src, dst, bytes, at, t.Queue), t
}

// SendControl records a control message (lock request/forward) priced
// as a payload-free leg: its few header bytes fold into the fixed leg
// cost, matching the pre-netmodel engine's arithmetic, while the
// recorded size still reflects the bytes on the wire.
func (n *Network) SendControl(kind MsgKind, src, dst, bytes int, at sim.Duration) (MsgID, netmodel.Timing) {
	n.mu.Lock()
	defer n.mu.Unlock()
	t := n.model.Leg(src, dst, 0, at)
	return n.append(kind, src, dst, bytes, at, t.Queue), t
}

// SendExchange records a request/reply pair departing at the
// requester's virtual time at, priced by the network model as one
// exchange, and returns both IDs and the exchange timing (the caller
// charges ExchangeTiming.Total, which includes the remote service).
func (n *Network) SendExchange(reqKind, repKind MsgKind, src, dst, reqBytes, replyBytes int, at sim.Duration) (reqID, repID MsgID, t netmodel.ExchangeTiming) {
	n.mu.Lock()
	defer n.mu.Unlock()
	t = n.model.Exchange(src, dst, reqBytes, replyBytes, at)
	reqID = n.append(reqKind, src, dst, reqBytes, at, t.Request.Queue)
	repID = n.append(repKind, dst, src, replyBytes, at+t.Request.Total+t.Service, t.Reply.Queue)
	return reqID, repID, t
}

// Snapshot returns a copy of the message log.
func (n *Network) Snapshot() []Record {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Record, len(n.records))
	copy(out, n.records)
	return out
}

// Counts returns the total number of messages and payload bytes.
func (n *Network) Counts() (messages, bytes int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.totalMsgs, n.totalBytes
}

// CountsByKind returns per-kind message and byte totals.
func (n *Network) CountsByKind() map[MsgKind]KindCount {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[MsgKind]KindCount, numKinds)
	for k, c := range n.kindTotals {
		if c.Messages > 0 {
			out[MsgKind(k)] = c
		}
	}
	return out
}

// QueueTotal returns the cumulative contention delay across all
// recorded messages (zero on the ideal model).
func (n *Network) QueueTotal() sim.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.totalQueue
}

// ExchangeCost prices one request/reply exchange on the ideal
// arithmetic (excluding the fixed fault cost, which the engine charges
// separately). Contention-unaware by construction; engine paths use
// SendExchange instead.
func (n *Network) ExchangeCost(requestBytes, replyBytes int) sim.Duration {
	return n.cost.RoundTrip(requestBytes, replyBytes) + n.cost.RequestService
}

// OneWayCost prices a single message leg with payload on the ideal
// arithmetic.
func (n *Network) OneWayCost(payloadBytes int) sim.Duration {
	return n.cost.MessageLeg + sim.Duration(payloadBytes)*n.cost.PerByte
}
