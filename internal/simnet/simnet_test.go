package simnet

import (
	"sync"
	"testing"

	"repro/internal/sim"
)

func TestSendAssignsSequentialIDs(t *testing.T) {
	n := New(sim.DefaultCostModel())
	a := n.Send(DiffRequest, 0, 1, 64)
	b := n.Send(DiffReply, 1, 0, 1024)
	if a != 1 || b != 2 {
		t.Fatalf("ids = %d, %d; want 1, 2", a, b)
	}
	recs := n.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Kind != DiffRequest || recs[0].Src != 0 || recs[0].Dst != 1 || recs[0].Bytes != 64 {
		t.Fatalf("record 0 = %+v", recs[0])
	}
}

func TestCounts(t *testing.T) {
	n := New(sim.DefaultCostModel())
	n.Send(DiffRequest, 0, 1, 10)
	n.Send(DiffReply, 1, 0, 20)
	n.Send(BarrierArrive, 2, 0, 5)
	msgs, bytes := n.Counts()
	if msgs != 3 || bytes != 35 {
		t.Fatalf("Counts = %d msgs, %d bytes", msgs, bytes)
	}
	byKind := n.CountsByKind()
	if byKind[DiffRequest].Messages != 1 || byKind[DiffReply].Bytes != 20 {
		t.Fatalf("CountsByKind = %v", byKind)
	}
}

func TestConcurrentSendsAreAllRecorded(t *testing.T) {
	n := New(sim.DefaultCostModel())
	const procs, per = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				n.Send(DiffRequest, p, (p+1)%procs, 8)
			}
		}(p)
	}
	wg.Wait()
	msgs, bytes := n.Counts()
	if msgs != procs*per || bytes != procs*per*8 {
		t.Fatalf("Counts = %d, %d", msgs, bytes)
	}
	// IDs must be unique and dense 1..N.
	seen := make(map[MsgID]bool)
	for _, r := range n.Snapshot() {
		if seen[r.ID] {
			t.Fatalf("duplicate id %d", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestExchangeCost(t *testing.T) {
	cost := sim.DefaultCostModel()
	n := New(cost)
	got := n.ExchangeCost(64, 4096)
	want := cost.RoundTrip(64, 4096) + cost.RequestService
	if got != want {
		t.Fatalf("ExchangeCost = %v, want %v", got, want)
	}
	if n.OneWayCost(0) != cost.MessageLeg {
		t.Fatal("OneWayCost(0) != MessageLeg")
	}
}

func TestKindStringAndIsData(t *testing.T) {
	if DiffRequest.String() != "DiffRequest" || BarrierRelease.String() != "BarrierRelease" {
		t.Fatal("kind names")
	}
	if MsgKind(99).String() != "MsgKind(99)" {
		t.Fatal("unknown kind name")
	}
	if !DiffRequest.IsData() || !DiffReply.IsData() {
		t.Fatal("diff messages are data")
	}
	for _, k := range []MsgKind{LockRequest, LockForward, LockGrant, BarrierArrive, BarrierRelease} {
		if k.IsData() {
			t.Fatalf("%v must not be data", k)
		}
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	n := New(sim.DefaultCostModel())
	n.Send(DiffRequest, 0, 1, 10)
	s := n.Snapshot()
	s[0].Bytes = 999
	if n.Snapshot()[0].Bytes != 10 {
		t.Fatal("Snapshot must not alias internal log")
	}
}
