package simnet

import (
	"sync"
	"testing"

	"repro/internal/sim"
)

func TestSendAssignsSequentialIDs(t *testing.T) {
	n := New(sim.DefaultCostModel())
	a, _ := n.SendLeg(DiffRequest, 0, 1, 64, 0)
	b, _ := n.SendLeg(DiffReply, 1, 0, 1024, 0)
	if a != 1 || b != 2 {
		t.Fatalf("ids = %d, %d; want 1, 2", a, b)
	}
	recs := n.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].Kind != DiffRequest || recs[0].Src != 0 || recs[0].Dst != 1 || recs[0].Bytes != 64 {
		t.Fatalf("record 0 = %+v", recs[0])
	}
}

func TestCounts(t *testing.T) {
	n := New(sim.DefaultCostModel())
	n.SendLeg(DiffRequest, 0, 1, 10, 0)
	n.SendLeg(DiffReply, 1, 0, 20, 0)
	n.SendLeg(BarrierArrive, 2, 0, 5, 0)
	msgs, bytes := n.Counts()
	if msgs != 3 || bytes != 35 {
		t.Fatalf("Counts = %d msgs, %d bytes", msgs, bytes)
	}
	byKind := n.CountsByKind()
	if byKind[DiffRequest].Messages != 1 || byKind[DiffReply].Bytes != 20 {
		t.Fatalf("CountsByKind = %v", byKind)
	}
}

func TestConcurrentSendsAreAllRecorded(t *testing.T) {
	n := New(sim.DefaultCostModel())
	const procs, per = 8, 200
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				n.SendLeg(DiffRequest, p, (p+1)%procs, 8, sim.Duration(i)*sim.Microsecond)
			}
		}(p)
	}
	wg.Wait()
	msgs, bytes := n.Counts()
	if msgs != procs*per || bytes != procs*per*8 {
		t.Fatalf("Counts = %d, %d", msgs, bytes)
	}
	// IDs must be unique and dense 1..N.
	seen := make(map[MsgID]bool)
	for _, r := range n.Snapshot() {
		if seen[r.ID] {
			t.Fatalf("duplicate id %d", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestExchangeCost(t *testing.T) {
	cost := sim.DefaultCostModel()
	n := New(cost)
	got := n.ExchangeCost(64, 4096)
	want := cost.RoundTrip(64, 4096) + cost.RequestService
	if got != want {
		t.Fatalf("ExchangeCost = %v, want %v", got, want)
	}
	if n.OneWayCost(0) != cost.MessageLeg {
		t.Fatal("OneWayCost(0) != MessageLeg")
	}
}

func TestSendLegRecordsTimingAndTotals(t *testing.T) {
	cost := sim.DefaultCostModel()
	n := New(cost)
	at := 3 * sim.Millisecond
	id, timing := n.SendLeg(BarrierArrive, 2, 0, 16, at)
	if id != 1 {
		t.Fatalf("id = %d", id)
	}
	if want := cost.MessageLeg + 16*cost.PerByte; timing.Total != want || timing.Queue != 0 {
		t.Fatalf("ideal leg timing = %+v, want Total %v, Queue 0", timing, want)
	}
	rec := n.Snapshot()[0]
	if rec.SendAt != at || rec.Queue != 0 || rec.Bytes != 16 {
		t.Fatalf("record = %+v", rec)
	}
	if msgs, bytes := n.Counts(); msgs != 1 || bytes != 16 {
		t.Fatalf("Counts = %d, %d", msgs, bytes)
	}
	if q := n.QueueTotal(); q != 0 {
		t.Fatalf("QueueTotal = %v on ideal", q)
	}
}

func TestSendControlPricesPayloadFree(t *testing.T) {
	cost := sim.DefaultCostModel()
	n := New(cost)
	_, timing := n.SendControl(LockRequest, 1, 0, 16, 0)
	if timing.Total != cost.MessageLeg {
		t.Fatalf("control leg = %v, want bare MessageLeg %v", timing.Total, cost.MessageLeg)
	}
	if rec := n.Snapshot()[0]; rec.Bytes != 16 {
		t.Fatalf("control record bytes = %d, want the wire size 16", rec.Bytes)
	}
}

func TestSendExchangeRecordsBothLegs(t *testing.T) {
	cost := sim.DefaultCostModel()
	n := New(cost)
	at := sim.Millisecond
	reqID, repID, xt := n.SendExchange(DiffRequest, DiffReply, 3, 5, 24, 4096, at)
	if reqID != 1 || repID != 2 {
		t.Fatalf("ids = %d, %d", reqID, repID)
	}
	if want := cost.RoundTrip(24, 4096) + cost.RequestService; xt.Total() != want {
		t.Fatalf("exchange total = %v, want ideal %v", xt.Total(), want)
	}
	recs := n.Snapshot()
	if recs[0].Kind != DiffRequest || recs[0].Src != 3 || recs[0].Dst != 5 || recs[0].SendAt != at {
		t.Fatalf("request record = %+v", recs[0])
	}
	wantReply := at + xt.Request.Total + xt.Service
	if recs[1].Kind != DiffReply || recs[1].Src != 5 || recs[1].Dst != 3 || recs[1].SendAt != wantReply {
		t.Fatalf("reply record = %+v, want SendAt %v", recs[1], wantReply)
	}
	if msgs, bytes := n.Counts(); msgs != 2 || bytes != 24+4096 {
		t.Fatalf("Counts = %d, %d", msgs, bytes)
	}
}

// TestRunningTotalsMatchSnapshot checks the incrementally maintained
// counters against a recount of the full log across all send paths.
func TestRunningTotalsMatchSnapshot(t *testing.T) {
	n := New(sim.DefaultCostModel())
	n.SendLeg(BarrierArrive, 0, 1, 5, 0)
	n.SendLeg(HomeFlush, 1, 2, 100, sim.Millisecond)
	n.SendControl(LockRequest, 2, 0, 16, sim.Millisecond)
	n.SendExchange(DiffRequest, DiffReply, 0, 2, 24, 512, 2*sim.Millisecond)
	var msgs, bytes int
	perKind := make(map[MsgKind]KindCount)
	for _, r := range n.Snapshot() {
		msgs++
		bytes += r.Bytes
		c := perKind[r.Kind]
		c.Messages++
		c.Bytes += r.Bytes
		perKind[r.Kind] = c
	}
	gotMsgs, gotBytes := n.Counts()
	if gotMsgs != msgs || gotBytes != bytes {
		t.Fatalf("Counts = %d, %d; recount = %d, %d", gotMsgs, gotBytes, msgs, bytes)
	}
	byKind := n.CountsByKind()
	if len(byKind) != len(perKind) {
		t.Fatalf("CountsByKind = %v, recount = %v", byKind, perKind)
	}
	for k, want := range perKind {
		if byKind[k] != want {
			t.Fatalf("CountsByKind[%v] = %v, want %v", k, byKind[k], want)
		}
	}
}

func TestKindStringAndIsData(t *testing.T) {
	if DiffRequest.String() != "DiffRequest" || BarrierRelease.String() != "BarrierRelease" {
		t.Fatal("kind names")
	}
	if MsgKind(99).String() != "MsgKind(99)" {
		t.Fatal("unknown kind name")
	}
	if !DiffRequest.IsData() || !DiffReply.IsData() {
		t.Fatal("diff messages are data")
	}
	for _, k := range []MsgKind{LockRequest, LockForward, LockGrant, BarrierArrive, BarrierRelease} {
		if k.IsData() {
			t.Fatalf("%v must not be data", k)
		}
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	n := New(sim.DefaultCostModel())
	n.SendLeg(DiffRequest, 0, 1, 10, 0)
	s := n.Snapshot()
	s[0].Bytes = 999
	if n.Snapshot()[0].Bytes != 10 {
		t.Fatal("Snapshot must not alias internal log")
	}
}

// A record cap keeps the running totals exact while Snapshot returns
// only the newest window, oldest first, and Dropped reports the rest.
func TestRecordCapRing(t *testing.T) {
	n := New(sim.DefaultCostModel(), WithRecordCap(3))
	for i := 0; i < 5; i++ {
		n.SendLeg(DiffRequest, 0, 1, 10+i, 0)
	}
	msgs, bytes := n.Counts()
	if msgs != 5 || bytes != 10+11+12+13+14 {
		t.Fatalf("capped totals drifted: %d msgs, %d bytes", msgs, bytes)
	}
	recs := n.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("retained window = %d records, want 3", len(recs))
	}
	for i, r := range recs {
		if want := MsgID(3 + i); r.ID != want {
			t.Fatalf("window[%d].ID = %d, want %d (newest three, oldest first)", i, r.ID, want)
		}
		if r.Bytes != 12+i {
			t.Fatalf("window[%d].Bytes = %d, want %d", i, r.Bytes, 12+i)
		}
	}
	if n.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", n.Dropped())
	}
	// IDs keep advancing past the cap.
	id, _ := n.SendLeg(DiffReply, 1, 0, 1, 0)
	if id != 6 {
		t.Fatalf("next ID = %d, want 6", id)
	}
}

// WithCountsOnly retains nothing but keeps every O(1) total exact.
func TestCountsOnly(t *testing.T) {
	n := New(sim.DefaultCostModel(), WithCountsOnly())
	n.SendLeg(DiffRequest, 0, 1, 10, 0)
	n.SendExchange(DiffRequest, DiffReply, 0, 1, 16, 100, 0)
	n.SendLeg(HomeFlush, 2, 0, 50, 0)
	msgs, bytes := n.Counts()
	if msgs != 4 || bytes != 10+16+100+50 {
		t.Fatalf("counts-only totals drifted: %d msgs, %d bytes", msgs, bytes)
	}
	if byKind := n.CountsByKind(); byKind[HomeFlush].Bytes != 50 {
		t.Fatalf("CountsByKind = %v", byKind)
	}
	if got := n.Snapshot(); len(got) != 0 {
		t.Fatalf("counts-only Snapshot returned %d records", len(got))
	}
	if n.Dropped() != 4 {
		t.Fatalf("Dropped = %d, want 4", n.Dropped())
	}
}

// An uncapped network drops nothing and snapshots in send order — the
// default behaviour the §5.3 instrumentation depends on.
func TestUncappedSnapshotUnchanged(t *testing.T) {
	n := New(sim.DefaultCostModel())
	for i := 0; i < 4; i++ {
		n.SendLeg(DiffRequest, 0, 1, i, 0)
	}
	recs := n.Snapshot()
	if len(recs) != 4 || n.Dropped() != 0 {
		t.Fatalf("uncapped: %d records, %d dropped", len(recs), n.Dropped())
	}
	for i, r := range recs {
		if r.ID != MsgID(i+1) {
			t.Fatalf("record %d has ID %d", i, r.ID)
		}
	}
}
