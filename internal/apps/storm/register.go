package storm

import "repro/internal/apps"

// The scaling-sweep datasets: per-processor work is constant across
// processor counts (unlike the paper apps, whose bands thin out), so a
// dataset means the same thing at 8 and at 1024 processors.
func init() {
	reg := func(dataset string, cfg Config) {
		apps.Register(apps.Entry{
			App: "Storm", Dataset: dataset,
			Make: func(procs int) apps.Workload {
				c := cfg
				c.Procs = procs
				return New(c)
			},
		})
	}
	reg("small", Config{PagesPerProc: 2, Episodes: 8})
	reg("medium", Config{PagesPerProc: 4, Episodes: 32})
	reg("large", Config{PagesPerProc: 4, Episodes: 64})
}
