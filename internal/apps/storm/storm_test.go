package storm

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/tmk"
)

func small() Config { return Config{PagesPerProc: 2, Episodes: 8, Procs: 8} }

func TestCorrectAtEveryUnitSize(t *testing.T) {
	for _, up := range []int{1, 2, 4} {
		a := New(small())
		if _, err := apps.Run(a, tmk.Config{Procs: 8, UnitPages: up, Collect: true}); err != nil {
			t.Fatalf("unit=%d: %v", up, err)
		}
	}
}

func TestCorrectSingleProc(t *testing.T) {
	a := New(Config{PagesPerProc: 2, Episodes: 4, Procs: 1})
	if _, err := apps.Run(a, tmk.Config{Procs: 1, Collect: true}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrectUnderHomeAndTreeBarrier(t *testing.T) {
	a := New(Config{PagesPerProc: 2, Episodes: 8, Procs: 16})
	cfg := tmk.Config{Procs: 16, Protocol: "home", Barrier: "tree", BarrierRadix: 4}
	if _, err := apps.Run(a, cfg); err != nil {
		t.Fatal(err)
	}
}

// The workload's defining property: per-processor communication stays
// constant as the machine grows, so total faults scale linearly with
// the processor count (one neighbour miss per processor per episode)
// and barrier-time notice work quadratically — the scaling sweep's
// stress term.
func TestFaultsScaleLinearly(t *testing.T) {
	run := func(n int) *tmk.Result {
		a := New(Config{PagesPerProc: 2, Episodes: 8, Procs: n})
		res, err := apps.Run(a, tmk.Config{Procs: n})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r8, r32 := run(8), run(32)
	if want := 4 * r8.Faults; r32.Faults != want {
		t.Fatalf("faults at 32 procs = %d, want %d (4x the 8-proc count %d)",
			r32.Faults, want, r8.Faults)
	}
}

func TestNames(t *testing.T) {
	a := New(small())
	if a.Name() != "Storm" || a.Dataset() != "2pg x 8ep" {
		t.Fatalf("%s %s", a.Name(), a.Dataset())
	}
	if a.Locks() != 0 {
		t.Fatal("locks")
	}
	if a.Check() == nil {
		t.Fatal("Check before run must fail")
	}
}
