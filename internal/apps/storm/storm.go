// Package storm implements the write-notice storm microbenchmark used
// by the 64–1024-processor scaling sweeps. It is not one of the paper's
// eight applications: the paper's datasets keep their meaning at 8
// processors, but their communication per barrier shrinks as bands thin
// out, so they stop exercising the very costs that grow with the
// processor count. Storm holds the per-processor work constant instead:
// every episode, each processor writes one word in each of K privately
// owned pages (producing K write notices that every other processor
// must process at the barrier), then reads one word from its right
// neighbour's first page (one access miss and one data fetch per
// processor per episode).
//
// That makes the notice fan-out the dominant engine cost by design —
// total acquire-side work is episodes × K × n² — which is exactly the
// term the sparse engine's fault-time reconstruction removes and the
// dense reference engine pays in full. Each episode is two barriers
// (write phase, read phase), so the program is properly synchronized:
// a read of episode e's value never runs concurrently with the episode
// e+1 writes.
package storm

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/mem"
	"repro/internal/tmk"
)

// Config selects the dataset.
type Config struct {
	PagesPerProc int // K: pages (= 4 KB units) each processor owns and rewrites
	Episodes     int // E: write-barrier-read-barrier rounds
	Procs        int
}

// App is one storm instance.
type App struct {
	cfg  Config
	data apps.Arr
	sums []int64 // per-processor read checksums, indexed by processor id
}

// New returns a storm workload.
func New(cfg Config) *App {
	if cfg.PagesPerProc <= 0 {
		cfg.PagesPerProc = 4
	}
	if cfg.Episodes <= 0 {
		cfg.Episodes = 8
	}
	return &App{cfg: cfg}
}

// Name implements apps.Workload.
func (a *App) Name() string { return "Storm" }

// Dataset implements apps.Workload.
func (a *App) Dataset() string {
	return fmt.Sprintf("%dpg x %dep", a.cfg.PagesPerProc, a.cfg.Episodes)
}

// SegmentBytes implements apps.Workload.
func (a *App) SegmentBytes() int {
	return a.cfg.Procs * a.cfg.PagesPerProc * mem.PageSize
}

// Locks implements apps.Workload.
func (a *App) Locks() int { return 0 }

// Prepare implements apps.Workload.
func (a *App) Prepare(sys *tmk.System) {
	a.data = apps.Arr{Base: sys.AllocPages(a.cfg.Procs * a.cfg.PagesPerProc)}
	a.sums = make([]int64, a.cfg.Procs)
}

// wordOf returns the word index of processor i's page k marker.
func (a *App) wordOf(i, k int) int {
	return (i*a.cfg.PagesPerProc + k) * mem.WordsPerPage
}

// val is the deterministic marker processor i writes into page k during
// episode e.
func (a *App) val(i, k, e int) int64 {
	return int64(i)*1_000_003 + int64(k)*1_009 + int64(e) + 1
}

// writePhase and readPhase are the algorithmic core, shared by the DSM
// body and the sequential reference: processor i's episode-e writes,
// and — after the write phase — its neighbour read.
func (a *App) writePhase(m apps.Mem, arr apps.Arr, i, e int) {
	for k := 0; k < a.cfg.PagesPerProc; k++ {
		m.WriteI64(arr.At(a.wordOf(i, k)), a.val(i, k, e))
		m.Compute(2)
	}
}

func (a *App) readPhase(m apps.Mem, arr apps.Arr, i, e int) int64 {
	m.Compute(1)
	return m.ReadI64(arr.At(a.wordOf((i+1)%a.cfg.Procs, 0)))
}

// Body implements apps.Workload.
func (a *App) Body(p *tmk.Proc) {
	i := p.ID()
	var sum int64
	for e := 0; e < a.cfg.Episodes; e++ {
		a.writePhase(p, a.data, i, e)
		p.Barrier()
		sum += a.readPhase(p, a.data, i, e)
		p.Barrier()
	}
	a.sums[i] = sum
}

// Check implements apps.Workload: replay the program sequentially —
// all write phases of an episode, then all reads — on a local memory
// and compare every processor's checksum.
func (a *App) Check() error {
	if len(a.sums) != a.cfg.Procs {
		return fmt.Errorf("storm: Check before Run")
	}
	m := apps.NewLocalMem(a.cfg.Procs * a.cfg.PagesPerProc * mem.PageSize)
	arr := apps.Arr{Base: 0}
	want := make([]int64, a.cfg.Procs)
	for e := 0; e < a.cfg.Episodes; e++ {
		for i := 0; i < a.cfg.Procs; i++ {
			a.writePhase(m, arr, i, e)
		}
		for i := 0; i < a.cfg.Procs; i++ {
			want[i] += a.readPhase(m, arr, i, e)
		}
	}
	for i := range want {
		if a.sums[i] != want[i] {
			return fmt.Errorf("storm: proc %d checksum %d, want %d", i, a.sums[i], want[i])
		}
	}
	return nil
}
