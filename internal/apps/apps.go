// Package apps defines the workload interface shared by the paper's
// eight applications, the named workload registry, and small
// addressing helpers. Each application lives in its own subpackage,
// provides both a DSM-parallel implementation (against internal/tmk)
// and a plain-Go sequential reference used to verify correctness, and
// self-registers its datasets (Register) so workloads are runnable by
// name; import repro/internal/apps/all to populate the registry.
//
// Dataset sizes are scaled down from the paper's but preserve the
// granularity-to-page-size ratios that §5.4–5.5 identify as the decisive
// variable; EXPERIMENTS.md maps each of our datasets to the paper's.
package apps

import (
	"context"
	"fmt"

	"repro/internal/mem"
	"repro/internal/tmk"
)

// Workload is one application × dataset instance. The lifecycle is:
// construct, Prepare (allocates shared memory; single-threaded), Run the
// system with Body, then Check.
type Workload interface {
	// Name is the application name ("Jacobi", "MGS", ...).
	Name() string
	// Dataset names the input size, in the paper's nomenclature where
	// one exists.
	Dataset() string
	// SegmentBytes is the shared-segment size the workload needs.
	SegmentBytes() int
	// Locks is the number of global locks the workload needs.
	Locks() int
	// Prepare allocates shared addresses. Called once, before Run.
	Prepare(sys *tmk.System)
	// Body is the per-processor program.
	Body(p *tmk.Proc)
	// Check verifies the parallel result against the sequential
	// reference. Called after Run; must be deterministic.
	Check() error
}

// NewSystem builds a prepared DSM instance for a workload: segment
// size and lock count are taken from the workload, and Prepare has
// allocated its shared addresses.
func NewSystem(w Workload, cfg tmk.Config) (*tmk.System, error) {
	// Slack covers the unit-boundary padding AllocPages may introduce
	// (up to UnitPages-1 pages per allocation).
	cfg.SegmentBytes = w.SegmentBytes() + 64*mem.PageSize
	cfg.Locks = w.Locks()
	sys, err := tmk.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	w.Prepare(sys)
	return sys, nil
}

// Run executes a workload under the given engine configuration and
// verifies the result against the sequential reference.
func Run(w Workload, cfg tmk.Config) (*tmk.Result, error) {
	sys, err := NewSystem(w, cfg)
	if err != nil {
		return nil, err
	}
	res := sys.Run(w.Body)
	return res, w.Check()
}

// RunTrials executes a workload n times on one reused System (reset
// between trials), verifying every trial against the sequential
// reference, and returns the per-trial and aggregate results.
func RunTrials(w Workload, cfg tmk.Config, n int) (*tmk.TrialSummary, error) {
	return RunTrialsContext(context.Background(), w, cfg, n)
}

// RunTrialsContext is RunTrials with cancellation: ctx is consulted
// before each trial, so an aborted caller (a closed HTTP request, a
// Ctrl-C'd CLI) stops the remaining trials instead of running the cell
// to completion. A trial already executing runs to its end — the
// simulated processors synchronize through barriers and locks that
// cannot be torn down mid-phase — so cancellation latency is one trial.
func RunTrialsContext(ctx context.Context, w Workload, cfg tmk.Config, n int) (*tmk.TrialSummary, error) {
	if n <= 0 {
		return nil, fmt.Errorf("apps: trial count must be positive (got %d)", n)
	}
	sys, err := NewSystem(w, cfg)
	if err != nil {
		return nil, err
	}
	trials := make([]*tmk.Result, 0, n)
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("apps: canceled after %d/%d trials: %w", i, n, err)
		}
		trials = append(trials, sys.Run(w.Body))
		if err := w.Check(); err != nil {
			return nil, fmt.Errorf("trial %d/%d: %w", i+1, n, err)
		}
	}
	return tmk.Summarize(trials), nil
}

// Arr addresses a shared array of 64-bit words.
type Arr struct {
	Base mem.Addr
}

// At returns the address of element i.
func (a Arr) At(i int) mem.Addr { return a.Base + i*mem.WordSize }

// Mem is the memory-access interface satisfied both by *tmk.Proc (DSM
// run) and LocalMem (sequential reference run), so an application's
// algorithmic core can be written exactly once and verified bitwise.
type Mem interface {
	ReadF64(a mem.Addr) float64
	WriteF64(a mem.Addr, v float64)
	ReadI64(a mem.Addr) int64
	WriteI64(a mem.Addr, v int64)
	// Compute charges n abstract arithmetic operations to the caller's
	// virtual clock (no-op in the sequential reference, whose wall
	// clock is not simulated).
	Compute(n int)
}

// LocalMem is a plain local memory with the Mem interface, used by
// sequential reference implementations.
type LocalMem struct {
	rep *mem.Replica
}

// NewLocalMem returns a zeroed local memory of at least size bytes.
func NewLocalMem(size int) *LocalMem {
	return &LocalMem{rep: mem.NewReplica(size)}
}

// ReadF64 implements Mem.
func (m *LocalMem) ReadF64(a mem.Addr) float64 { return m.rep.ReadF64(a) }

// WriteF64 implements Mem.
func (m *LocalMem) WriteF64(a mem.Addr, v float64) { m.rep.WriteF64(a, v) }

// ReadI64 implements Mem.
func (m *LocalMem) ReadI64(a mem.Addr) int64 { return int64(m.rep.ReadWord(a)) }

// WriteI64 implements Mem.
func (m *LocalMem) WriteI64(a mem.Addr, v int64) { m.rep.WriteWord(a, uint64(v)) }

// Compute implements Mem (no-op locally).
func (m *LocalMem) Compute(int) {}

// Band splits n items into nearly equal contiguous chunks and returns
// the half-open range of chunk p of procs.
func Band(n, procs, p int) (lo, hi int) {
	per := n / procs
	rem := n % procs
	lo = p*per + min(p, rem)
	hi = lo + per
	if p < rem {
		hi++
	}
	return lo, hi
}

// CheckClose compares two float64s to a relative tolerance.
func CheckClose(what string, got, want, tol float64) error {
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	scale := want
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	if diff > tol*scale {
		return fmt.Errorf("%s: got %v, want %v (tol %v)", what, got, want, tol)
	}
	return nil
}
