// Package barnes implements the paper's Barnes application (SPLASH
// Barnes-Hut): hierarchical N-body simulation under gravity.
//
// Structure and sharing pattern (§5.5): the oct-tree is built
// sequentially by a master processor (one writer; everyone reads it), and
// the force computation is done in parallel by all processors. Bodies are
// assigned cyclically, so every page of the body array holds bodies of
// all processors: fine-grained writes cause heavy write-write false
// sharing, but the extensive true sharing (every processor reads most
// body positions during traversal) keeps useless messages rare, while
// per-body private fields (velocities) travel as piggybacked useless
// data. Each processor touches a large region, so aggregation wins.
//
// The algorithmic core is written once against apps.Mem and runs
// identically in the DSM and the sequential reference, giving bitwise
// verification.
package barnes

import (
	"fmt"
	"math"

	"repro/internal/apps"
	"repro/internal/mem"
	"repro/internal/tmk"
)

// seqMemo shares the sequential reference across workload instances of
// the same configuration (see apps.SeqMemo); Check treats the returned
// slice as read-only.
var seqMemo apps.SeqMemo[[]float64]

// Config selects the dataset.
type Config struct {
	Bodies int
	Steps  int
	Theta  float64 // opening angle (paper-standard 0.7 default)
	Procs  int
}

// Body layout: 8 words per body.
const (
	bX = iota
	bY
	bZ
	bMass
	bVX // velocity: private to the owner, piggybacked useless to others
	bVY
	bVZ
	bPad
	bodyWords
)

// Tree node layout: 16 words per node.
const (
	nCX = iota // cell center
	nCY
	nCZ
	nHalf
	nMass // total mass (0 while unfilled)
	nComX
	nComY
	nComZ
	nChild0   // 8 children: 0 empty, >0 node index+1, <0 -(body index+1)
	nodeWords = nChild0 + 8
)

// App is one Barnes instance.
type App struct {
	cfg    Config
	bodies apps.Arr
	tree   apps.Arr
	nnodes apps.Arr // shared scalar: node count after build
	out    []float64
}

// New returns a Barnes-Hut workload.
func New(cfg Config) *App {
	if cfg.Steps <= 0 {
		cfg.Steps = 2
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.7
	}
	return &App{cfg: cfg}
}

// Name implements apps.Workload.
func (a *App) Name() string { return "Barnes" }

// Dataset implements apps.Workload.
func (a *App) Dataset() string { return fmt.Sprintf("%d", a.cfg.Bodies) }

func (a *App) maxNodes() int { return 4 * a.cfg.Bodies }

// SegmentBytes implements apps.Workload.
func (a *App) SegmentBytes() int {
	return mem.RoundUpPages(a.cfg.Bodies*bodyWords*mem.WordSize) +
		mem.RoundUpPages(a.maxNodes()*nodeWords*mem.WordSize) + 2*mem.PageSize
}

// Locks implements apps.Workload.
func (a *App) Locks() int { return 0 }

// Prepare implements apps.Workload.
func (a *App) Prepare(sys *tmk.System) {
	a.bodies = apps.Arr{Base: sys.AllocPages(
		mem.RoundUpPages(a.cfg.Bodies*bodyWords*mem.WordSize) / mem.PageSize)}
	a.tree = apps.Arr{Base: sys.AllocPages(
		mem.RoundUpPages(a.maxNodes()*nodeWords*mem.WordSize) / mem.PageSize)}
	a.nnodes = apps.Arr{Base: sys.AllocPages(1)}
}

func (a *App) body(i, f int) mem.Addr { return a.bodies.At(i*bodyWords + f) }
func (a *App) node(n, f int) mem.Addr { return a.tree.At(n*nodeWords + f) }

// initBody gives body i a deterministic position/mass in [-1,1]^3. The
// coordinate moduli are distinct primes larger than any supported body
// count, so no two bodies coincide (coincident bodies would split the
// tree forever).
func initBody(i int) (x, y, z, m float64) {
	h := func(mult, mod int) float64 {
		return float64((i*mult+mod/3)%mod)/float64(mod)*2 - 1
	}
	return h(97, 5003), h(131, 5009), h(173, 5011), 0.5 + float64(i%7)/7.0
}

// buildTree inserts all bodies into a fresh oct-tree rooted at node 0
// and fills mass/centre-of-mass bottom-up. Returns the node count.
func (a *App) buildTree(m apps.Mem) int64 {
	n := a.cfg.Bodies
	// Bounding cube.
	bound := 0.0
	for i := 0; i < n; i++ {
		for f := bX; f <= bZ; f++ {
			if v := math.Abs(m.ReadF64(a.body(i, f))); v > bound {
				bound = v
			}
		}
	}
	bound += 1e-9

	next := int64(1)
	// Root node.
	m.WriteF64(a.node(0, nCX), 0)
	m.WriteF64(a.node(0, nCY), 0)
	m.WriteF64(a.node(0, nCZ), 0)
	m.WriteF64(a.node(0, nHalf), bound)
	m.WriteF64(a.node(0, nMass), 0)
	for c := 0; c < 8; c++ {
		m.WriteI64(a.node(0, nChild0+c), 0)
	}

	var insert func(nd int64, b int)
	insert = func(nd int64, b int) {
		bx := m.ReadF64(a.body(b, bX))
		by := m.ReadF64(a.body(b, bY))
		bz := m.ReadF64(a.body(b, bZ))
		cx := m.ReadF64(a.node(int(nd), nCX))
		cy := m.ReadF64(a.node(int(nd), nCY))
		cz := m.ReadF64(a.node(int(nd), nCZ))
		half := m.ReadF64(a.node(int(nd), nHalf))
		oct := 0
		if bx >= cx {
			oct |= 1
		}
		if by >= cy {
			oct |= 2
		}
		if bz >= cz {
			oct |= 4
		}
		ch := m.ReadI64(a.node(int(nd), nChild0+oct))
		switch {
		case ch == 0:
			m.WriteI64(a.node(int(nd), nChild0+oct), -int64(b)-1)
		case ch > 0:
			insert(ch-1, b)
		default:
			// Occupied by a body: split the octant.
			other := int(-ch) - 1
			if next >= int64(a.maxNodes()) {
				panic("barnes: tree overflow")
			}
			nn := next
			next++
			q := half / 2
			ncx, ncy, ncz := cx-q, cy-q, cz-q
			if oct&1 != 0 {
				ncx = cx + q
			}
			if oct&2 != 0 {
				ncy = cy + q
			}
			if oct&4 != 0 {
				ncz = cz + q
			}
			m.WriteF64(a.node(int(nn), nCX), ncx)
			m.WriteF64(a.node(int(nn), nCY), ncy)
			m.WriteF64(a.node(int(nn), nCZ), ncz)
			m.WriteF64(a.node(int(nn), nHalf), q)
			m.WriteF64(a.node(int(nn), nMass), 0)
			for c := 0; c < 8; c++ {
				m.WriteI64(a.node(int(nn), nChild0+c), 0)
			}
			m.WriteI64(a.node(int(nd), nChild0+oct), nn+1)
			insert(nn, other)
			insert(nn, b)
		}
	}
	for i := 0; i < n; i++ {
		insert(0, i)
	}

	// Centre of mass, bottom-up (post-order).
	var fill func(nd int64) (mass, mx, my, mz float64)
	fill = func(nd int64) (mass, mx, my, mz float64) {
		for c := 0; c < 8; c++ {
			ch := m.ReadI64(a.node(int(nd), nChild0+c))
			switch {
			case ch == 0:
			case ch > 0:
				cm, cmx, cmy, cmz := fill(ch - 1)
				mass += cm
				mx += cmx
				my += cmy
				mz += cmz
			default:
				b := int(-ch) - 1
				bm := m.ReadF64(a.body(b, bMass))
				mass += bm
				mx += bm * m.ReadF64(a.body(b, bX))
				my += bm * m.ReadF64(a.body(b, bY))
				mz += bm * m.ReadF64(a.body(b, bZ))
			}
		}
		m.WriteF64(a.node(int(nd), nMass), mass)
		m.WriteF64(a.node(int(nd), nComX), mx/mass)
		m.WriteF64(a.node(int(nd), nComY), my/mass)
		m.WriteF64(a.node(int(nd), nComZ), mz/mass)
		return mass, mx, my, mz
	}
	fill(0)
	return next
}

// accel computes the acceleration on body b by traversing the tree.
func (a *App) accel(m apps.Mem, b int, theta float64) (ax, ay, az float64) {
	const eps2 = 1e-4
	bx := m.ReadF64(a.body(b, bX))
	by := m.ReadF64(a.body(b, bY))
	bz := m.ReadF64(a.body(b, bZ))

	interact := func(px, py, pz, pm float64) {
		dx, dy, dz := px-bx, py-by, pz-bz
		d2 := dx*dx + dy*dy + dz*dz + eps2
		inv := pm / (d2 * math.Sqrt(d2))
		ax += dx * inv
		ay += dy * inv
		az += dz * inv
		m.Compute(25) // the real app's per-interaction arithmetic
	}

	var walk func(nd int64)
	walk = func(nd int64) {
		half := m.ReadF64(a.node(int(nd), nHalf))
		px := m.ReadF64(a.node(int(nd), nComX))
		py := m.ReadF64(a.node(int(nd), nComY))
		pz := m.ReadF64(a.node(int(nd), nComZ))
		dx, dy, dz := px-bx, py-by, pz-bz
		d2 := dx*dx + dy*dy + dz*dz
		if (2*half)*(2*half) < theta*theta*d2 {
			interact(px, py, pz, m.ReadF64(a.node(int(nd), nMass)))
			return
		}
		for c := 0; c < 8; c++ {
			ch := m.ReadI64(a.node(int(nd), nChild0+c))
			switch {
			case ch == 0:
			case ch > 0:
				walk(ch - 1)
			default:
				ob := int(-ch) - 1
				if ob == b {
					continue
				}
				interact(
					m.ReadF64(a.body(ob, bX)),
					m.ReadF64(a.body(ob, bY)),
					m.ReadF64(a.body(ob, bZ)),
					m.ReadF64(a.body(ob, bMass)))
			}
		}
	}
	walk(0)
	return ax, ay, az
}

// advance updates body b from its freshly computed acceleration.
func (a *App) advance(m apps.Mem, b int, ax, ay, az float64) {
	const dt = 0.01
	vx := m.ReadF64(a.body(b, bVX)) + ax*dt
	vy := m.ReadF64(a.body(b, bVY)) + ay*dt
	vz := m.ReadF64(a.body(b, bVZ)) + az*dt
	m.WriteF64(a.body(b, bVX), vx)
	m.WriteF64(a.body(b, bVY), vy)
	m.WriteF64(a.body(b, bVZ), vz)
	m.WriteF64(a.body(b, bX), m.ReadF64(a.body(b, bX))+vx*dt)
	m.WriteF64(a.body(b, bY), m.ReadF64(a.body(b, bY))+vy*dt)
	m.WriteF64(a.body(b, bZ), m.ReadF64(a.body(b, bZ))+vz*dt)
}

// Body implements apps.Workload. Bodies are assigned cyclically; the
// positions written in step t are read by everyone in step t+1.
func (a *App) Body(p *tmk.Proc) {
	n, P := a.cfg.Bodies, p.NProcs()

	// Cyclic initialization: owners write their own bodies.
	for i := p.ID(); i < n; i += P {
		x, y, z, mass := initBody(i)
		p.WriteF64(a.body(i, bX), x)
		p.WriteF64(a.body(i, bY), y)
		p.WriteF64(a.body(i, bZ), z)
		p.WriteF64(a.body(i, bMass), mass)
	}
	p.Barrier()

	for step := 0; step < a.cfg.Steps; step++ {
		// The master builds the tree sequentially.
		if p.ID() == 0 {
			cnt := a.buildTree(p)
			p.WriteI64(a.nnodes.At(0), cnt)
		}
		p.Barrier()

		// Parallel force computation over own bodies. Accelerations go
		// to a processor-private buffer first so every traversal sees
		// the consistent pre-step snapshot (positions written here
		// become visible to others only at the next barrier, and must
		// not feed our own later traversals either).
		acc := make([]float64, 0, 3*(n/P+1))
		for i := p.ID(); i < n; i += P {
			ax, ay, az := a.accel(p, i, a.cfg.Theta)
			acc = append(acc, ax, ay, az)
		}
		k := 0
		for i := p.ID(); i < n; i += P {
			a.advance(p, i, acc[k], acc[k+1], acc[k+2])
			k += 3
		}
		p.Barrier()
	}

	if p.ID() == 0 {
		a.out = make([]float64, 0, 3*n)
		for i := 0; i < n; i++ {
			a.out = append(a.out,
				p.ReadF64(a.body(i, bX)),
				p.ReadF64(a.body(i, bY)),
				p.ReadF64(a.body(i, bZ)))
		}
	}
}

// Sequential runs the identical algorithm on local memory.
func (a *App) Sequential() []float64 {
	m := apps.NewLocalMem(a.SegmentBytes())
	n := a.cfg.Bodies
	for i := 0; i < n; i++ {
		x, y, z, mass := initBody(i)
		m.WriteF64(a.body(i, bX), x)
		m.WriteF64(a.body(i, bY), y)
		m.WriteF64(a.body(i, bZ), z)
		m.WriteF64(a.body(i, bMass), mass)
	}
	for step := 0; step < a.cfg.Steps; step++ {
		a.buildTree(m)
		acc := make([]float64, 3*n)
		for i := 0; i < n; i++ {
			acc[3*i], acc[3*i+1], acc[3*i+2] = a.accel(m, i, a.cfg.Theta)
		}
		for i := 0; i < n; i++ {
			a.advance(m, i, acc[3*i], acc[3*i+1], acc[3*i+2])
		}
	}
	out := make([]float64, 0, 3*n)
	for i := 0; i < n; i++ {
		out = append(out,
			m.ReadF64(a.body(i, bX)),
			m.ReadF64(a.body(i, bY)),
			m.ReadF64(a.body(i, bZ)))
	}
	return out
}

// Check implements apps.Workload (bitwise: same code, same order).
func (a *App) Check() error {
	if a.out == nil {
		return fmt.Errorf("barnes: no output captured")
	}
	want := seqMemo.Get(fmt.Sprintf("%+v", a.cfg), a.Sequential)
	for i := range want {
		if a.out[i] != want[i] {
			return fmt.Errorf("barnes: coord %d = %v, want %v", i, a.out[i], want[i])
		}
	}
	return nil
}
