package barnes

import "repro/internal/apps"

// The paper dataset (input-size independent, Figure 1) and a
// small/medium/large sweep.
func init() {
	reg := func(dataset, paper string, cfg Config) {
		apps.Register(apps.Entry{
			App: "Barnes", Dataset: dataset, Paper: paper,
			Make: func(procs int) apps.Workload {
				c := cfg
				c.Procs = procs
				return New(c)
			},
		})
	}
	reg("512", "16K bodies", Config{Bodies: 512, Steps: 2})
	reg("small", "", Config{Bodies: 128, Steps: 2})
	reg("medium", "", Config{Bodies: 512, Steps: 2})
	reg("large", "", Config{Bodies: 1024, Steps: 2})
}
