package barnes

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/tmk"
)

func small() Config { return Config{Bodies: 256, Steps: 2, Procs: 8} }

func mustRun(t *testing.T, c Config, ec tmk.Config) *tmk.Result {
	t.Helper()
	a := New(c)
	res, err := apps.Run(a, ec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCorrectAtEveryUnitSize(t *testing.T) {
	for _, up := range []int{1, 2, 4} {
		if _, err := apps.Run(New(small()), tmk.Config{Procs: 8, UnitPages: up, Collect: true}); err != nil {
			t.Fatalf("unit=%d: %v", up, err)
		}
	}
}

func TestCorrectWithDynamicAggregation(t *testing.T) {
	if _, err := apps.Run(New(small()), tmk.Config{Procs: 8, Dynamic: true, Collect: true}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrectOtherProcCounts(t *testing.T) {
	for _, procs := range []int{1, 3} {
		c := small()
		c.Procs = procs
		if _, err := apps.Run(New(c), tmk.Config{Procs: procs, Collect: true}); err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
	}
}

// Paper §5.5: cyclic body assignment means heavy write-write false
// sharing mixed with extensive true sharing — few useless messages, a
// large amount of piggybacked useless data (private velocity fields).
func TestFalseSharingMixedWithTrueSharing(t *testing.T) {
	res := mustRun(t, small(), tmk.Config{Procs: 8, UnitPages: 1, Collect: true})
	useless := res.Stats.Messages.Useless
	if float64(useless) > 0.10*float64(res.Stats.Messages.Total()) {
		t.Fatalf("useless msgs = %d of %d, want few", useless, res.Stats.Messages.Total())
	}
	if res.Stats.PiggybackedBytes == 0 {
		t.Fatal("expected piggybacked useless data (private body fields)")
	}
	// Multi-writer faults dominate the body pages: the signature must
	// have mass at cardinality >= 2.
	multi := 0
	total := 0
	for k, b := range res.Stats.Signature {
		total += b.Faults
		if k >= 2 {
			multi += b.Faults
		}
	}
	if multi == 0 {
		t.Fatalf("no multi-writer faults (total %d)", total)
	}
}

// Aggregation is beneficial: every processor reads most of the body
// array and the whole tree.
func TestAggregationBeneficial(t *testing.T) {
	r4 := mustRun(t, small(), tmk.Config{Procs: 8, UnitPages: 1, Collect: true})
	r16 := mustRun(t, small(), tmk.Config{Procs: 8, UnitPages: 4, Collect: true})
	if r16.Stats.Messages.Total() >= r4.Stats.Messages.Total() {
		t.Fatalf("messages: 4K=%d 16K=%d", r4.Stats.Messages.Total(), r16.Stats.Messages.Total())
	}
	if r16.Time >= r4.Time {
		t.Fatalf("time: 4K=%v 16K=%v", r4.Time, r16.Time)
	}
}

func TestDeterministic(t *testing.T) {
	a := mustRun(t, small(), tmk.Config{Procs: 8, Collect: true})
	b := mustRun(t, small(), tmk.Config{Procs: 8, Collect: true})
	if a.Time != b.Time || a.Messages != b.Messages {
		t.Fatal("nondeterministic")
	}
}

func TestNames(t *testing.T) {
	a := New(small())
	if a.Name() != "Barnes" || a.Dataset() != "256" || a.Locks() != 0 {
		t.Fatal("identity")
	}
	if a.Check() == nil {
		t.Fatal("Check before run must fail")
	}
}
