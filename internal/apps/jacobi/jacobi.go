// Package jacobi implements the paper's Jacobi kernel: an iterative
// 5-point stencil solver for a differential equation on a rectangular
// grid. Each processor owns a band of rows; only the boundary rows are
// communicated between neighbours.
//
// Sharing pattern (§5.5): boundary-row pages are entirely written and
// therefore communicated; pages holding private (interior) data next to a
// boundary row turn that data into piggybacked useless data at larger
// consistency units. There are never useless messages — wherever there is
// false sharing at a boundary there is also true sharing.
//
// Dataset naming: "RxC" gives rows×cols of float64; the paper's 1K×1K
// (4 KB rows of float32) corresponds to our rows of 512 float64 = 1 page.
package jacobi

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/mem"
	"repro/internal/tmk"
)

// seqMemo shares the sequential reference across workload instances of
// the same configuration (see apps.SeqMemo); Check treats the returned
// slice as read-only.
var seqMemo apps.SeqMemo[[]float64]

// Config selects the dataset.
type Config struct {
	Rows, Cols int // grid dimensions (Cols float64 per row)
	Iters      int
	Procs      int
}

// App is one Jacobi instance.
type App struct {
	cfg  Config
	a, b apps.Arr // the two grids (read/write roles alternate)
	out  []float64
	want []float64
	err  error
}

// New returns a Jacobi workload. Rows must be divisible by nothing in
// particular; bands are balanced.
func New(cfg Config) *App {
	if cfg.Iters <= 0 {
		cfg.Iters = 4
	}
	return &App{cfg: cfg}
}

// Name implements apps.Workload.
func (a *App) Name() string { return "Jacobi" }

// Dataset implements apps.Workload.
func (a *App) Dataset() string {
	return fmt.Sprintf("%dx%d", a.cfg.Rows, a.cfg.Cols)
}

// RowBytes returns the byte length of one grid row.
func (a *App) RowBytes() int { return a.cfg.Cols * mem.WordSize }

// SegmentBytes implements apps.Workload.
func (a *App) SegmentBytes() int {
	return 2*mem.RoundUpPages(a.cfg.Rows*a.RowBytes()) + mem.PageSize
}

// Locks implements apps.Workload.
func (a *App) Locks() int { return 0 }

// Prepare implements apps.Workload.
func (a *App) Prepare(sys *tmk.System) {
	gridPages := mem.RoundUpPages(a.cfg.Rows*a.RowBytes()) / mem.PageSize
	a.a = apps.Arr{Base: sys.AllocPages(gridPages)}
	a.b = apps.Arr{Base: sys.AllocPages(gridPages)}
}

func (a *App) idx(r, c int) int { return r*a.cfg.Cols + c }

// initial returns the fixed initial/boundary value at (r, c).
func (a *App) initial(r, c int) float64 {
	return float64((r*31+c*17)%97) / 97.0
}

// Body implements apps.Workload: proc 0 initializes, then all processors
// iterate the stencil over their row bands with barriers between sweeps.
func (a *App) Body(p *tmk.Proc) {
	R, C := a.cfg.Rows, a.cfg.Cols
	if p.ID() == 0 {
		for r := 0; r < R; r++ {
			for c := 0; c < C; c++ {
				v := a.initial(r, c)
				p.WriteF64(a.a.At(a.idx(r, c)), v)
				p.WriteF64(a.b.At(a.idx(r, c)), v)
			}
		}
	}
	p.Barrier()

	lo, hi := apps.Band(R, p.NProcs(), p.ID())
	src, dst := a.a, a.b
	for it := 0; it < a.cfg.Iters; it++ {
		for r := lo; r < hi; r++ {
			if r == 0 || r == R-1 {
				continue // fixed boundary
			}
			for c := 1; c < C-1; c++ {
				v := 0.25 * (p.ReadF64(src.At(a.idx(r-1, c))) +
					p.ReadF64(src.At(a.idx(r+1, c))) +
					p.ReadF64(src.At(a.idx(r, c-1))) +
					p.ReadF64(src.At(a.idx(r, c+1))))
				p.WriteF64(dst.At(a.idx(r, c)), v)
				p.Compute(6) // stencil arithmetic
			}
		}
		p.Barrier()
		src, dst = dst, src
	}

	if p.ID() == 0 {
		a.out = make([]float64, R*C)
		for r := 0; r < R; r++ {
			for c := 0; c < C; c++ {
				a.out[a.idx(r, c)] = p.ReadF64(src.At(a.idx(r, c)))
			}
		}
	}
}

// Sequential computes the reference result in plain Go.
func (a *App) Sequential() []float64 {
	R, C := a.cfg.Rows, a.cfg.Cols
	cur := make([]float64, R*C)
	nxt := make([]float64, R*C)
	for r := 0; r < R; r++ {
		for c := 0; c < C; c++ {
			cur[a.idx(r, c)] = a.initial(r, c)
			nxt[a.idx(r, c)] = cur[a.idx(r, c)]
		}
	}
	for it := 0; it < a.cfg.Iters; it++ {
		for r := 1; r < R-1; r++ {
			for c := 1; c < C-1; c++ {
				nxt[a.idx(r, c)] = 0.25 * (cur[a.idx(r-1, c)] +
					cur[a.idx(r+1, c)] + cur[a.idx(r, c-1)] + cur[a.idx(r, c+1)])
			}
		}
		cur, nxt = nxt, cur
	}
	return cur
}

// Check implements apps.Workload: the DSM result must equal the
// sequential reference bitwise (the computation is barrier-deterministic).
func (a *App) Check() error {
	if a.out == nil {
		return fmt.Errorf("jacobi: no output captured (Body not run?)")
	}
	want := seqMemo.Get(fmt.Sprintf("%+v", a.cfg), a.Sequential)
	for i := range want {
		if a.out[i] != want[i] {
			return fmt.Errorf("jacobi: cell %d = %v, want %v", i, a.out[i], want[i])
		}
	}
	return nil
}
