package jacobi

import "repro/internal/apps"

// The paper datasets (Figure 2's granularity ladder) and a
// small/medium/large sweep register at init so the workload is
// runnable by name from the registry.
func init() {
	reg := func(dataset, paper string, cfg Config) {
		apps.Register(apps.Entry{
			App: "Jacobi", Dataset: dataset, Paper: paper,
			Make: func(procs int) apps.Workload {
				c := cfg
				c.Procs = procs
				return New(c)
			},
		})
	}
	reg("128x512 (row=1pg)", "1Kx1K", Config{Rows: 128, Cols: 512, Iters: 4})
	reg("64x1024 (row=2pg)", "2Kx2K", Config{Rows: 64, Cols: 1024, Iters: 4})
	reg("small", "", Config{Rows: 64, Cols: 256, Iters: 2})
	reg("medium", "", Config{Rows: 128, Cols: 512, Iters: 4})
	reg("large", "", Config{Rows: 256, Cols: 1024, Iters: 4})
}
