package jacobi

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/mem"
	"repro/internal/tmk"
)

func cfg(rows, cols int) Config {
	return Config{Rows: rows, Cols: cols, Iters: 3, Procs: 8}
}

func TestCorrectAtEveryUnitSize(t *testing.T) {
	for _, up := range []int{1, 2, 4} {
		a := New(cfg(32, 512))
		res, err := apps.Run(a, tmk.Config{Procs: 8, UnitPages: up, Collect: true})
		if err != nil {
			t.Fatalf("unit=%d: %v", up, err)
		}
		if res.Time <= 0 {
			t.Fatalf("unit=%d: no simulated time", up)
		}
	}
}

func TestCorrectWithDynamicAggregation(t *testing.T) {
	a := New(cfg(32, 512))
	if _, err := apps.Run(a, tmk.Config{Procs: 8, Dynamic: true, Collect: true}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrectAtOtherProcCounts(t *testing.T) {
	for _, procs := range []int{1, 2, 4} {
		a := New(cfg(32, 512))
		if _, err := apps.Run(a, tmk.Config{Procs: procs, Collect: true}); err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
	}
}

// Paper §5.5: with row == 1 page there is no useless data at the 4 KB
// unit, but useless (piggybacked) data appears at 8 KB — and never any
// useless messages.
func TestRowEqualsPageFalseSharingShape(t *testing.T) {
	r4 := mustRun(t, cfg(32, 512), tmk.Config{Procs: 8, UnitPages: 1, Collect: true})
	r8 := mustRun(t, cfg(32, 512), tmk.Config{Procs: 8, UnitPages: 2, Collect: true})

	if r4.Stats.Messages.Useless != 0 || r8.Stats.Messages.Useless != 0 {
		t.Fatalf("useless msgs: 4K=%d 8K=%d, want 0 (boundary pages always truly shared)",
			r4.Stats.Messages.Useless, r8.Stats.Messages.Useless)
	}
	pig4 := r4.Stats.PiggybackedBytes + r4.Stats.UselessBytes
	pig8 := r8.Stats.PiggybackedBytes + r8.Stats.UselessBytes
	if pig8 <= pig4 {
		t.Fatalf("useless data must grow at 8K: 4K=%d 8K=%d", pig4, pig8)
	}
	if r8.Stats.Messages.Total() >= r4.Stats.Messages.Total() {
		t.Fatalf("aggregation must still reduce messages: 4K=%d 8K=%d",
			r4.Stats.Messages.Total(), r8.Stats.Messages.Total())
	}
}

// With rows of 2 pages ("2Kx2K" analogue) the 8 KB unit matches the row
// exactly: no new useless data until 16 KB.
func TestRowEqualsTwoPagesShape(t *testing.T) {
	r8 := mustRun(t, cfg(16, 1024), tmk.Config{Procs: 8, UnitPages: 2, Collect: true})
	r16 := mustRun(t, cfg(16, 1024), tmk.Config{Procs: 8, UnitPages: 4, Collect: true})
	pig8 := r8.Stats.PiggybackedBytes + r8.Stats.UselessBytes
	pig16 := r16.Stats.PiggybackedBytes + r16.Stats.UselessBytes
	if pig16 <= pig8 {
		t.Fatalf("useless data must appear only at 16K: 8K=%d 16K=%d", pig8, pig16)
	}
}

func TestDeterministic(t *testing.T) {
	a := mustRun(t, cfg(16, 512), tmk.Config{Procs: 4, Collect: true})
	b := mustRun(t, cfg(16, 512), tmk.Config{Procs: 4, Collect: true})
	if a.Time != b.Time || a.Messages != b.Messages || a.Bytes != b.Bytes {
		t.Fatalf("nondeterministic: %v/%d/%d vs %v/%d/%d",
			a.Time, a.Messages, a.Bytes, b.Time, b.Messages, b.Bytes)
	}
}

func TestDatasetName(t *testing.T) {
	if New(cfg(32, 512)).Dataset() != "32x512" {
		t.Fatal("dataset name")
	}
	if New(cfg(32, 512)).Name() != "Jacobi" {
		t.Fatal("name")
	}
	if New(cfg(32, 512)).RowBytes() != mem.PageSize {
		t.Fatal("row bytes")
	}
}

func TestCheckWithoutRunFails(t *testing.T) {
	if New(cfg(8, 64)).Check() == nil {
		t.Fatal("Check before Body must fail")
	}
}

func mustRun(t *testing.T, c Config, ec tmk.Config) *tmk.Result {
	t.Helper()
	a := New(c)
	res, err := apps.Run(a, ec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}
