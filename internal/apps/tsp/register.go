package tsp

import "repro/internal/apps"

// The paper dataset (input-size independent, Figure 1) and a
// small/medium/large sweep. City counts stay <= 14 (the branch-bound
// solver's table limit).
func init() {
	reg := func(dataset, paper string, cfg Config) {
		apps.Register(apps.Entry{
			App: "TSP", Dataset: dataset, Paper: paper,
			// The branch-and-bound frontier prunes against a
			// lock-guarded global bound: which subtrees are explored —
			// and therefore the wire traffic itself — depends on lock
			// grant interleaving. Not replay-derivable.
			ScheduleSensitive: true,
			Make: func(procs int) apps.Workload {
				c := cfg
				c.Procs = procs
				return New(c)
			},
		})
	}
	reg("12-city", "19-city", Config{Cities: 12, ForkDepth: 4})
	reg("small", "", Config{Cities: 10, ForkDepth: 3})
	reg("medium", "", Config{Cities: 12, ForkDepth: 4})
	reg("large", "", Config{Cities: 13, ForkDepth: 4})
}
