package tsp

import "repro/internal/tmk"

// Body implements apps.Workload. The master expands the search tree
// breadth-first down to ForkDepth, writing each prefix into the shared
// tour pool and publishing it on the queue (the paper's pool of
// partially evaluated tours). Workers then drain the queue: each takes a
// prefix (migratory pool data — fetching its record drags in colocated
// records the worker may never read), prunes it against the global
// bound, solves it by branch-and-bound DFS, and publishes improvements
// to the shared shortest path under a lock. The queue only drains, so an
// empty queue terminates a worker without idle spinning.
func (a *App) Body(p *tmk.Proc) {
	// Queue cells: [0] head, [1] tail, [2..2+cap) entries.
	const (
		qHead = 0
		qTail = 1
	)
	qEntry := func(i int64) int { return 2 + int(i)%a.cap }

	n := a.cfg.Cities
	if p.ID() == 0 {
		p.WriteI64(a.best.At(0), 1<<40) // +inf
		count := int64(0)
		var path [maxCities]int64
		path[0] = 0
		var gen func(depth int, cost int64)
		gen = func(depth int, cost int64) {
			if depth == a.cfg.ForkDepth || depth == n {
				ci := int(count)
				if ci >= a.cap {
					panic("tsp: pool overflow")
				}
				p.WriteI64(a.tour(ci, tCost), cost)
				p.WriteI64(a.tour(ci, tDepth), int64(depth))
				for d := 0; d < depth; d++ {
					p.WriteI64(a.tour(ci, tPath0+d), path[d])
				}
				p.WriteI64(a.queue.At(qEntry(count)), count)
				count++
				return
			}
			last := int(path[depth-1])
			for c := 1; c < n; c++ {
				visited := false
				for d := 0; d < depth; d++ {
					if int(path[d]) == c {
						visited = true
						break
					}
				}
				if visited {
					continue
				}
				path[depth] = int64(c)
				gen(depth+1, cost+a.dist[last][c])
			}
		}
		gen(1, 0)
		p.WriteI64(a.queue.At(qHead), 0)
		p.WriteI64(a.queue.At(qTail), count)
	}
	p.Barrier()

	var path [maxCities]int64
	for {
		// Take one unit of work.
		p.Lock(lkQueue)
		head := p.ReadI64(a.queue.At(qHead))
		tail := p.ReadI64(a.queue.At(qTail))
		if head == tail {
			p.Unlock(lkQueue)
			break // the queue only drains: search complete
		}
		idx := p.ReadI64(a.queue.At(qEntry(head)))
		p.WriteI64(a.queue.At(qHead), head+1)
		p.Unlock(lkQueue)

		// Read the tour record (migratory data).
		cost := p.ReadI64(a.tour(int(idx), tCost))
		depth := int(p.ReadI64(a.tour(int(idx), tDepth)))
		for d := 0; d < depth; d++ {
			path[d] = p.ReadI64(a.tour(int(idx), tPath0+d))
		}

		// Prune against the (possibly stale) global bound.
		if cost >= p.ReadI64(a.best.At(0)) {
			continue
		}

		// Solve by local DFS against the global bound.
		bound := p.ReadI64(a.best.At(0))
		visited := uint32(0)
		for d := 0; d < depth; d++ {
			visited |= 1 << uint(path[d])
		}
		got := a.dfs(p, visited, int(path[depth-1]), depth, cost, bound)
		if got < bound {
			p.Lock(lkBest)
			if got < p.ReadI64(a.best.At(0)) {
				p.WriteI64(a.best.At(0), got)
			}
			p.Unlock(lkBest)
		}
	}

	p.Barrier()
	if p.ID() == 0 {
		a.out = p.ReadI64(a.best.At(0))
	}
}
