// Package tsp implements the paper's Traveling Salesman Problem: a
// branch-and-bound search for the minimum-cost tour.
//
// Shared data structures, as in §5.5: a pool of partially evaluated
// tours, a work queue of pointers into the pool, and the current
// shortest path — all migratory, protected by locks. Workers take a
// partial tour, extend it one city at a time, push promising extensions
// back, and solve deep prefixes by local depth-first search against the
// global bound. Tours are allocated by one processor and consumed by
// another, so diffs for whole pool pages migrate; records the consumer
// skips (pruned siblings colocated on the fetched pages) become useless
// data. Queue accesses are scattered and irregular; aggregation reduces
// messages.
//
// The minimum cost is independent of the (nondeterministic) work order,
// so verification compares against an exact sequential solver.
package tsp

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/mem"
	"repro/internal/tmk"
)

// seqMemo shares the exact sequential optimum across workload instances
// of the same configuration (see apps.SeqMemo) — the exhaustive solver
// dominated sweep time when recomputed per cell.
var seqMemo apps.SeqMemo[int64]

// Tour record layout: 16 words (cost, depth, cities...).
const (
	tCost = iota
	tDepth
	tPath0
	tourWords = 16
	maxCities = tourWords - tPath0
)

// Locks.
const (
	lkQueue = iota
	lkBest
	numLocks
)

// Config selects the dataset.
type Config struct {
	Cities    int // <= 14
	ForkDepth int // prefixes shorter than this are extended via the queue
	Procs     int
}

// App is one TSP instance.
type App struct {
	cfg   Config
	dist  [][]int64
	distf []int64  // dist flattened row-major (the DFS hot path)
	pool  apps.Arr // tour records
	queue apps.Arr // [0] head, [1] tail, [2..] tour indices (FIFO of work)
	best  apps.Arr // [0] best cost so far
	cap   int
	out   int64
}

// New returns a TSP workload.
func New(cfg Config) *App {
	if cfg.Cities > maxCities {
		panic("tsp: too many cities")
	}
	if cfg.ForkDepth <= 0 {
		cfg.ForkDepth = 3
	}
	a := &App{cfg: cfg}
	a.dist = distances(cfg.Cities)
	a.distf = make([]int64, cfg.Cities*cfg.Cities)
	for i, row := range a.dist {
		copy(a.distf[i*cfg.Cities:], row)
	}
	// Generous pool bound: number of prefixes of depth <= ForkDepth.
	capacity := 1
	count := 1
	for d := 1; d <= cfg.ForkDepth; d++ {
		count *= cfg.Cities - d
		capacity += count
	}
	a.cap = capacity + 8
	return a
}

// distances builds a deterministic asymmetric-free distance matrix.
func distances(n int) [][]int64 {
	d := make([][]int64, n)
	for i := range d {
		d[i] = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := int64((i*73+j*137)%97 + 3)
			d[i][j], d[j][i] = v, v
		}
	}
	return d
}

// Name implements apps.Workload.
func (a *App) Name() string { return "TSP" }

// Dataset implements apps.Workload.
func (a *App) Dataset() string { return fmt.Sprintf("%d-city", a.cfg.Cities) }

// SegmentBytes implements apps.Workload.
func (a *App) SegmentBytes() int {
	return mem.RoundUpPages(a.cap*tourWords*mem.WordSize) +
		mem.RoundUpPages((a.cap+4)*mem.WordSize) + 2*mem.PageSize
}

// Locks implements apps.Workload.
func (a *App) Locks() int { return numLocks }

// Prepare implements apps.Workload.
func (a *App) Prepare(sys *tmk.System) {
	a.pool = apps.Arr{Base: sys.AllocPages(
		mem.RoundUpPages(a.cap*tourWords*mem.WordSize) / mem.PageSize)}
	a.queue = apps.Arr{Base: sys.AllocPages(
		mem.RoundUpPages((a.cap+4)*mem.WordSize) / mem.PageSize)}
	a.best = apps.Arr{Base: sys.AllocPages(1)}
}

func (a *App) tour(i, f int) mem.Addr { return a.pool.At(i*tourWords + f) }

// dfs exhaustively extends the prefix summarized by the visited bitmask
// (length depth, ending at city last, cost so far cost) and returns the
// best complete-tour cost found below the given bound. Candidate order,
// pruning, and the per-node Compute charge are exactly the by-the-book
// path-scan formulation's — the bitmask and flattened distance row only
// make each node cheaper in host time, never change what is visited —
// so simulated results are bit-identical.
func (a *App) dfs(p *tmk.Proc, visited uint32, last, depth int, cost, bound int64) int64 {
	n := a.cfg.Cities
	best := bound
	if depth == n {
		total := cost + a.distf[last*n]
		if total < best {
			return total
		}
		return best
	}
	row := a.distf[last*n : last*n+n]
	for c := 1; c < n; c++ {
		if visited&(1<<uint(c)) != 0 {
			continue
		}
		nc := cost + row[c]
		if nc >= best {
			continue
		}
		if got := a.dfs(p, visited|1<<uint(c), c, depth+1, nc, best); got < best {
			best = got
		}
	}
	p.Compute(40 * n) // per-node bound and distance arithmetic
	return best
}

// Sequential solves the instance exactly in plain Go.
func (a *App) Sequential() int64 {
	n := a.cfg.Cities
	best := int64(1) << 40
	path := make([]int, 1, n)
	path[0] = 0
	var rec func(cost int64)
	rec = func(cost int64) {
		depth := len(path)
		last := path[depth-1]
		if depth == n {
			if t := cost + a.dist[last][0]; t < best {
				best = t
			}
			return
		}
		for c := 1; c < n; c++ {
			seen := false
			for _, v := range path {
				if v == c {
					seen = true
					break
				}
			}
			if seen {
				continue
			}
			nc := cost + a.dist[last][c]
			if nc >= best {
				continue
			}
			path = append(path, c)
			rec(nc)
			path = path[:depth]
		}
	}
	rec(0)
	return best
}

// Check implements apps.Workload: the parallel search must find the
// exact optimum regardless of work order.
func (a *App) Check() error {
	want := seqMemo.Get(fmt.Sprintf("%+v", a.cfg), a.Sequential)
	if a.out != want {
		return fmt.Errorf("tsp: best = %d, want %d", a.out, want)
	}
	return nil
}
