package tsp

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/tmk"
)

func small() Config { return Config{Cities: 10, ForkDepth: 3, Procs: 8} }

func mustRun(t *testing.T, c Config, ec tmk.Config) *tmk.Result {
	t.Helper()
	a := New(c)
	res, err := apps.Run(a, ec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSequentialSolverOnTinyInstance(t *testing.T) {
	// 4 cities: optimum computable by hand from the distance matrix.
	a := New(Config{Cities: 4, ForkDepth: 2, Procs: 2})
	d := a.dist
	best := int64(1) << 40
	perms := [][]int{{1, 2, 3}, {1, 3, 2}, {2, 1, 3}, {2, 3, 1}, {3, 1, 2}, {3, 2, 1}}
	for _, p := range perms {
		c := d[0][p[0]] + d[p[0]][p[1]] + d[p[1]][p[2]] + d[p[2]][0]
		if c < best {
			best = c
		}
	}
	if got := a.Sequential(); got != best {
		t.Fatalf("Sequential = %d, want %d", got, best)
	}
}

func TestFindsOptimumAtEveryUnitSize(t *testing.T) {
	for _, up := range []int{1, 2, 4} {
		if _, err := apps.Run(New(small()), tmk.Config{Procs: 8, UnitPages: up, Collect: true}); err != nil {
			t.Fatalf("unit=%d: %v", up, err)
		}
	}
}

func TestFindsOptimumWithDynamicAggregation(t *testing.T) {
	if _, err := apps.Run(New(small()), tmk.Config{Procs: 8, Dynamic: true, Collect: true}); err != nil {
		t.Fatal(err)
	}
}

func TestFindsOptimumFewProcs(t *testing.T) {
	for _, procs := range []int{1, 2} {
		c := small()
		c.Procs = procs
		if _, err := apps.Run(New(c), tmk.Config{Procs: procs, Collect: true}); err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
	}
}

// Repeat runs: work order varies but the optimum never does.
func TestOptimumStableAcrossRuns(t *testing.T) {
	for i := 0; i < 3; i++ {
		mustRun(t, small(), tmk.Config{Procs: 8, Collect: true})
	}
}

// Migratory tours: consumers fetch pool pages written by other
// processors; colocated records they skip become useless data.
func TestMigratoryDataProducesUselessBytes(t *testing.T) {
	res := mustRun(t, Config{Cities: 11, ForkDepth: 3, Procs: 8},
		tmk.Config{Procs: 8, UnitPages: 1, Collect: true})
	if res.Stats.PiggybackedBytes+res.Stats.UselessBytes == 0 {
		t.Fatal("expected useless data from skipped colocated tour records")
	}
}

func TestNames(t *testing.T) {
	a := New(small())
	if a.Name() != "TSP" || a.Dataset() != "10-city" || a.Locks() != numLocks {
		t.Fatal("identity")
	}
}

func TestTooManyCitiesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Cities: 20})
}
