// Package mgs implements the paper's Modified Gram-Schmidt kernel: an
// orthonormal basis for a set of N-dimensional vectors, with the vectors
// distributed cyclically over the processors.
//
// Sharing pattern (§5.5): in each iteration the owner normalizes the
// pivot vector (write granularity = one vector), then every processor
// orthogonalizes its own following vectors against the pivot (read
// granularity = one vector). When the vector length equals the 4 KB page,
// read/write granularity matches the consistency unit exactly and there
// is no false sharing; at 8 or 16 KB units, two or four cyclically-owned
// vectors share a unit, every unit acquires multiple concurrent writers,
// and useless messages explode — the paper's one dramatic degradation.
//
// Dataset naming: "NxM" is M vectors of N float64. The paper's 1K×1K
// (4 KB float32 vectors) corresponds to our N=512 (one page per vector).
package mgs

import (
	"fmt"
	"math"

	"repro/internal/apps"
	"repro/internal/mem"
	"repro/internal/tmk"
)

// seqMemo shares the sequential reference across workload instances of
// the same configuration (see apps.SeqMemo); Check treats the returned
// slice as read-only.
var seqMemo apps.SeqMemo[[]float64]

// Config selects the dataset.
type Config struct {
	Dim     int // vector dimension (float64 words; 512 = 1 page)
	Vectors int // number of vectors (must be >= Procs)
	Procs   int
}

// App is one MGS instance.
type App struct {
	cfg  Config
	vecs apps.Arr
	out  []float64
	err  error
}

// New returns an MGS workload.
func New(cfg Config) *App { return &App{cfg: cfg} }

// Name implements apps.Workload.
func (a *App) Name() string { return "MGS" }

// Dataset implements apps.Workload.
func (a *App) Dataset() string {
	return fmt.Sprintf("%dx%d", a.cfg.Dim, a.cfg.Vectors)
}

// SegmentBytes implements apps.Workload.
func (a *App) SegmentBytes() int {
	return mem.RoundUpPages(a.cfg.Dim*a.cfg.Vectors*mem.WordSize) + mem.PageSize
}

// Locks implements apps.Workload.
func (a *App) Locks() int { return 0 }

// Prepare implements apps.Workload.
func (a *App) Prepare(sys *tmk.System) {
	pages := mem.RoundUpPages(a.cfg.Dim*a.cfg.Vectors*mem.WordSize) / mem.PageSize
	a.vecs = apps.Arr{Base: sys.AllocPages(pages)}
}

func (a *App) at(v, d int) int { return v*a.cfg.Dim + d }

// initial is the deterministic input matrix (diagonally dominant so the
// basis is well-conditioned).
func (a *App) initial(v, d int) float64 {
	x := float64((v*131+d*29)%113)/113.0 - 0.5
	if v == d {
		x += float64(a.cfg.Dim)
	}
	return x
}

// Body implements apps.Workload. Vector i is owned by processor
// i mod P (cyclic distribution, as in the paper).
func (a *App) Body(p *tmk.Proc) {
	D, M, P := a.cfg.Dim, a.cfg.Vectors, p.NProcs()
	// Owners initialize their own vectors (the usual DSM idiom: avoids
	// every later reader dragging in stale initialization diffs).
	for v := p.ID(); v < M; v += P {
		for d := 0; d < D; d++ {
			p.WriteF64(a.vecs.At(a.at(v, d)), a.initial(v, d))
		}
	}
	p.Barrier()

	for i := 0; i < M; i++ {
		if i%P == p.ID() {
			// Normalize the pivot vector.
			var norm float64
			for d := 0; d < D; d++ {
				x := p.ReadF64(a.vecs.At(a.at(i, d)))
				norm += x * x
			}
			norm = math.Sqrt(norm)
			for d := 0; d < D; d++ {
				p.WriteF64(a.vecs.At(a.at(i, d)),
					p.ReadF64(a.vecs.At(a.at(i, d)))/norm)
			}
		}
		p.Barrier()
		// Orthogonalize own following vectors against the pivot.
		for j := i + 1; j < M; j++ {
			if j%P != p.ID() {
				continue
			}
			var dot float64
			for d := 0; d < D; d++ {
				dot += p.ReadF64(a.vecs.At(a.at(i, d))) *
					p.ReadF64(a.vecs.At(a.at(j, d)))
			}
			p.Compute(4 * D) // multiply-adds of dot and update
			for d := 0; d < D; d++ {
				v := p.ReadF64(a.vecs.At(a.at(j, d))) -
					dot*p.ReadF64(a.vecs.At(a.at(i, d)))
				p.WriteF64(a.vecs.At(a.at(j, d)), v)
			}
		}
		p.Barrier()
	}

	if p.ID() == 0 {
		a.out = make([]float64, M*D)
		for v := 0; v < M; v++ {
			for d := 0; d < D; d++ {
				a.out[a.at(v, d)] = p.ReadF64(a.vecs.At(a.at(v, d)))
			}
		}
	}
}

// Sequential computes the reference basis in plain Go with the same
// operation order as the parallel version.
func (a *App) Sequential() []float64 {
	D, M := a.cfg.Dim, a.cfg.Vectors
	m := make([]float64, M*D)
	for v := 0; v < M; v++ {
		for d := 0; d < D; d++ {
			m[a.at(v, d)] = a.initial(v, d)
		}
	}
	for i := 0; i < M; i++ {
		var norm float64
		for d := 0; d < D; d++ {
			norm += m[a.at(i, d)] * m[a.at(i, d)]
		}
		norm = math.Sqrt(norm)
		for d := 0; d < D; d++ {
			m[a.at(i, d)] /= norm
		}
		for j := i + 1; j < M; j++ {
			var dot float64
			for d := 0; d < D; d++ {
				dot += m[a.at(i, d)] * m[a.at(j, d)]
			}
			for d := 0; d < D; d++ {
				m[a.at(j, d)] -= dot * m[a.at(i, d)]
			}
		}
	}
	return m
}

// Check implements apps.Workload: bitwise equality with the sequential
// reference, plus an orthonormality sanity check.
func (a *App) Check() error {
	if a.out == nil {
		return fmt.Errorf("mgs: no output captured")
	}
	want := seqMemo.Get(fmt.Sprintf("%+v", a.cfg), a.Sequential)
	for i := range want {
		if a.out[i] != want[i] {
			return fmt.Errorf("mgs: element %d = %v, want %v", i, a.out[i], want[i])
		}
	}
	// Orthonormality of the first few vectors.
	D := a.cfg.Dim
	check := min(4, a.cfg.Vectors)
	for u := 0; u < check; u++ {
		for v := u; v < check; v++ {
			var dot float64
			for d := 0; d < D; d++ {
				dot += a.out[a.at(u, d)] * a.out[a.at(v, d)]
			}
			want := 0.0
			if u == v {
				want = 1.0
			}
			if err := apps.CheckClose(
				fmt.Sprintf("mgs: <q%d,q%d>", u, v), dot, want, 1e-9); err != nil {
				return err
			}
		}
	}
	return nil
}
