package mgs

import "repro/internal/apps"

// The paper datasets (Figure 2's vector-size ladder) and a
// small/medium/large sweep. Vectors stays >= 16 so every processor
// count up to 16 is valid.
func init() {
	reg := func(dataset, paper string, cfg Config) {
		apps.Register(apps.Entry{
			App: "MGS", Dataset: dataset, Paper: paper,
			Make: func(procs int) apps.Workload {
				c := cfg
				c.Procs = procs
				return New(c)
			},
		})
	}
	reg("512x32 (vec=1pg)", "1Kx1K", Config{Dim: 512, Vectors: 32})
	reg("1024x24 (vec=2pg)", "2Kx2K", Config{Dim: 1024, Vectors: 24})
	reg("2048x16 (vec=4pg)", "1Kx4K", Config{Dim: 2048, Vectors: 16})
	reg("small", "", Config{Dim: 256, Vectors: 16})
	reg("medium", "", Config{Dim: 512, Vectors: 32})
	reg("large", "", Config{Dim: 2048, Vectors: 16})
}
