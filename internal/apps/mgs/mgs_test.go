package mgs

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/tmk"
)

func small() Config { return Config{Dim: 512, Vectors: 24, Procs: 8} }

func mustRun(t *testing.T, c Config, ec tmk.Config) *tmk.Result {
	t.Helper()
	a := New(c)
	res, err := apps.Run(a, ec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCorrectAtEveryUnitSize(t *testing.T) {
	for _, up := range []int{1, 2, 4} {
		a := New(small())
		if _, err := apps.Run(a, tmk.Config{Procs: 8, UnitPages: up, Collect: true}); err != nil {
			t.Fatalf("unit=%d: %v", up, err)
		}
	}
}

func TestCorrectWithDynamicAggregation(t *testing.T) {
	a := New(small())
	if _, err := apps.Run(a, tmk.Config{Procs: 8, Dynamic: true, Collect: true}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrectSingleProc(t *testing.T) {
	a := New(Config{Dim: 512, Vectors: 8, Procs: 1})
	if _, err := apps.Run(a, tmk.Config{Procs: 1, Collect: true}); err != nil {
		t.Fatal(err)
	}
}

// The paper's dramatic MGS result: with vector == page, larger units
// colocate cyclically-owned vectors, every unit gets multiple concurrent
// writers, and useless messages explode. Performance degrades badly.
func TestUselessMessageExplosionAtLargerUnits(t *testing.T) {
	r4 := mustRun(t, small(), tmk.Config{Procs: 8, UnitPages: 1, Collect: true})
	r8 := mustRun(t, small(), tmk.Config{Procs: 8, UnitPages: 2, Collect: true})

	if r4.Stats.Messages.Useless != 0 {
		t.Fatalf("4K useless msgs = %d, want 0 (granularity matches page)",
			r4.Stats.Messages.Useless)
	}
	if r8.Stats.Messages.Useless == 0 {
		t.Fatal("8K must produce useless messages")
	}
	if r8.Time <= r4.Time {
		t.Fatalf("8K must be slower: 4K=%v 8K=%v", r4.Time, r8.Time)
	}
	// Signature shift: at 4K every fetch contacts one writer; at 8K the
	// histogram moves right.
	if r4.Stats.Signature[2] != nil {
		t.Fatalf("4K signature has bucket 2: %+v", r4.Stats.Signature[2])
	}
	var right8 int
	for k, b := range r8.Stats.Signature {
		if k >= 2 {
			right8 += b.Faults
		}
	}
	if right8 == 0 {
		t.Fatal("8K signature must shift right")
	}
}

// Dynamic aggregation must match the static 4 KB page for MGS ("there is
// no repetition in any processor's data fetch pattern").
func TestDynamicMatchesBestStatic(t *testing.T) {
	r4 := mustRun(t, small(), tmk.Config{Procs: 8, UnitPages: 1, Collect: true})
	rd := mustRun(t, small(), tmk.Config{Procs: 8, Dynamic: true, Collect: true})
	// Within a few percent of the 4 KB static time.
	ratio := float64(rd.Time) / float64(r4.Time)
	if ratio > 1.10 {
		t.Fatalf("dynamic/4K time ratio = %.3f, want <= 1.10", ratio)
	}
	if rd.Stats.Messages.Useless > r4.Stats.Messages.Useless+r4.Stats.Messages.Total()/20 {
		t.Fatalf("dynamic useless msgs = %d vs 4K %d",
			rd.Stats.Messages.Useless, r4.Stats.Messages.Useless)
	}
}

func TestNames(t *testing.T) {
	a := New(small())
	if a.Name() != "MGS" || a.Dataset() != "512x24" {
		t.Fatalf("%s %s", a.Name(), a.Dataset())
	}
	if a.Locks() != 0 {
		t.Fatal("locks")
	}
	if a.Check() == nil {
		t.Fatal("Check before run must fail")
	}
}
