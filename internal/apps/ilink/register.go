package ilink

import "repro/internal/apps"

// The paper dataset (input-size independent, Figure 1) and a
// small/medium/large sweep.
func init() {
	reg := func(dataset, paper string, cfg Config) {
		apps.Register(apps.Entry{
			App: "Ilink", Dataset: dataset, Paper: paper,
			Make: func(procs int) apps.Workload {
				c := cfg
				c.Procs = procs
				return New(c)
			},
		})
	}
	reg("8x8192", "CLP 2x4x4x4", Config{Genarrays: 8, Len: 8192, Iters: 3})
	reg("small", "", Config{Genarrays: 4, Len: 4096, Iters: 2})
	reg("medium", "", Config{Genarrays: 8, Len: 8192, Iters: 3})
	reg("large", "", Config{Genarrays: 16, Len: 8192, Iters: 3})
}
