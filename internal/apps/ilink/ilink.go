// Package ilink implements a synthetic equivalent of the paper's Ilink
// workload (parallel genetic linkage analysis). The paper's real inputs
// (CLP pedigree data) are not available; per DESIGN.md §2 we reproduce
// the *sharing pattern* §5.5 describes, which is all the paper's analysis
// depends on:
//
//   - The main data structure is a pool of sparse "genarrays" in shared
//     memory. Both read and write granularity are very small and all
//     processors write to every page of the pool (round-robin assignment
//     of the non-zero elements) — extensive write-write false sharing.
//   - Each iteration, the slaves update their share of the non-zero
//     elements; the master then reads the whole pool and rescales it.
//     The master's faults see all 7 slaves as concurrent writers, the
//     slaves' faults see one (the master): the false-sharing signature
//     is bimodal at 1 and P-1, with very few useless messages.
//   - Every processor accesses every page, so aggregation is beneficial
//     and larger units add almost no false sharing.
package ilink

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/mem"
	"repro/internal/tmk"
)

// seqMemo shares the sequential reference across workload instances of
// the same configuration (see apps.SeqMemo); Check treats the returned
// slice as read-only.
var seqMemo apps.SeqMemo[[]float64]

// Config selects the dataset.
type Config struct {
	Genarrays int // number of sparse arrays in the pool
	Len       int // words per genarray
	Iters     int
	Procs     int
}

// App is one Ilink instance.
type App struct {
	cfg     Config
	pool    apps.Arr
	summary apps.Arr // master-written page: per-iteration pool statistics
	out     []float64
}

// New returns an Ilink workload.
func New(cfg Config) *App {
	if cfg.Iters <= 0 {
		cfg.Iters = 4
	}
	return &App{cfg: cfg}
}

// Name implements apps.Workload.
func (a *App) Name() string { return "Ilink" }

// Dataset implements apps.Workload.
func (a *App) Dataset() string {
	return fmt.Sprintf("%dx%d", a.cfg.Genarrays, a.cfg.Len)
}

func (a *App) words() int { return a.cfg.Genarrays * a.cfg.Len }

// SegmentBytes implements apps.Workload.
func (a *App) SegmentBytes() int {
	return mem.RoundUpPages(a.words()*mem.WordSize) + 2*mem.PageSize
}

// Locks implements apps.Workload.
func (a *App) Locks() int { return 0 }

// Prepare implements apps.Workload.
func (a *App) Prepare(sys *tmk.System) {
	a.pool = apps.Arr{Base: sys.AllocPages(mem.RoundUpPages(a.words()*mem.WordSize) / mem.PageSize)}
	a.summary = apps.Arr{Base: sys.AllocPages(1)}
}

// nonzero reports whether pool element k is a non-zero entry of its
// sparse genarray (~1/3 density, deterministic and scattered).
func nonzero(k int) bool { return (k*2654435761)>>4&3 == 0 }

func initVal(k int) float64 { return 1.0 + float64(k%17)/17.0 }

// Body implements apps.Workload.
func (a *App) Body(p *tmk.Proc) {
	W, P := a.words(), p.NProcs()

	// The master initializes the pool (it owns the model data).
	if p.ID() == 0 {
		for k := 0; k < W; k++ {
			if nonzero(k) {
				p.WriteF64(a.pool.At(k), initVal(k))
			}
		}
	}
	p.Barrier()

	for it := 0; it < a.cfg.Iters; it++ {
		// Every processor evaluates its likelihood term over the WHOLE
		// pool (fine-grained reads of every page — this is why the
		// write-write false sharing rarely produces useless messages)
		// and updates its round-robin share of the non-zero elements.
		stat := p.ReadF64(a.summary.At(0))
		var local float64
		nz := 0
		for k := 0; k < W; k++ {
			if !nonzero(k) {
				continue
			}
			v := p.ReadF64(a.pool.At(k))
			local += v
			if nz%P == p.ID() {
				p.Compute(800) // per-element genetic-likelihood arithmetic
				p.WriteF64(a.pool.At(k), v+0.5/(v+float64(it+1)+0.1*stat))
			}
			nz++
		}
		_ = local
		p.Barrier()

		// The master reads every contribution (all P writers concurrent
		// on every page) and publishes the pool statistic the slaves
		// read next iteration.
		if p.ID() == 0 {
			var sum float64
			for k := 0; k < W; k++ {
				if nonzero(k) {
					sum += p.ReadF64(a.pool.At(k))
					p.Compute(2)
				}
			}
			p.WriteF64(a.summary.At(0), 1.0/(sum+1.0))
		}
		p.Barrier()
	}

	if p.ID() == 0 {
		a.out = make([]float64, 0, W/3+1)
		for k := 0; k < W; k++ {
			if nonzero(k) {
				a.out = append(a.out, p.ReadF64(a.pool.At(k)))
			}
		}
	}
}

// Sequential computes the reference pool in plain Go, mimicking the
// round-robin update order per processor so FP results match bitwise.
func (a *App) Sequential() []float64 {
	W, P := a.words(), a.cfg.Procs
	pool := make([]float64, W)
	for k := 0; k < W; k++ {
		if nonzero(k) {
			pool[k] = initVal(k)
		}
	}
	_ = P
	stat := 0.0
	for it := 0; it < a.cfg.Iters; it++ {
		// Every non-zero element is updated exactly once per iteration,
		// by a formula depending only on its value and the statistic.
		for k := 0; k < W; k++ {
			if nonzero(k) {
				pool[k] += 0.5 / (pool[k] + float64(it+1) + 0.1*stat)
			}
		}
		var sum float64
		for k := 0; k < W; k++ {
			if nonzero(k) {
				sum += pool[k]
			}
		}
		stat = 1.0 / (sum + 1.0)
	}
	out := make([]float64, 0, W/3+1)
	for k := 0; k < W; k++ {
		if nonzero(k) {
			out = append(out, pool[k])
		}
	}
	return out
}

// Check implements apps.Workload (bitwise; barrier-deterministic).
func (a *App) Check() error {
	if a.out == nil {
		return fmt.Errorf("ilink: no output captured")
	}
	want := seqMemo.Get(fmt.Sprintf("%+v", a.cfg), a.Sequential)
	if len(a.out) != len(want) {
		return fmt.Errorf("ilink: %d values, want %d", len(a.out), len(want))
	}
	for i := range want {
		if a.out[i] != want[i] {
			return fmt.Errorf("ilink: value %d = %v, want %v", i, a.out[i], want[i])
		}
	}
	return nil
}
