package ilink

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/tmk"
)

func small() Config { return Config{Genarrays: 4, Len: 4096, Iters: 3, Procs: 8} }

func mustRun(t *testing.T, c Config, ec tmk.Config) *tmk.Result {
	t.Helper()
	a := New(c)
	res, err := apps.Run(a, ec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCorrectAtEveryUnitSize(t *testing.T) {
	for _, up := range []int{1, 2, 4} {
		if _, err := apps.Run(New(small()), tmk.Config{Procs: 8, UnitPages: up, Collect: true}); err != nil {
			t.Fatalf("unit=%d: %v", up, err)
		}
	}
}

func TestCorrectWithDynamicAggregation(t *testing.T) {
	if _, err := apps.Run(New(small()), tmk.Config{Procs: 8, Dynamic: true, Collect: true}); err != nil {
		t.Fatal(err)
	}
}

// Paper §5.5: Ilink's signature is bimodal — the master's faults see all
// P-1 slaves as concurrent writers, slave faults see one writer (the
// master) — with very few useless messages despite pervasive write-write
// false sharing.
func TestBimodalSignature(t *testing.T) {
	res := mustRun(t, small(), tmk.Config{Procs: 8, UnitPages: 1, Collect: true})
	sig := res.Stats.Signature
	if sig[1] == nil || sig[7] == nil {
		got := make([]int, 0, len(sig))
		for k := range sig {
			got = append(got, k)
		}
		t.Fatalf("signature missing 1 or 7 bucket: have %v", got)
	}
	extremes := sig[1].Faults + sig[7].Faults
	total := 0
	for _, b := range sig {
		total += b.Faults
	}
	if float64(extremes) < 0.8*float64(total) {
		t.Fatalf("bimodal fraction = %d/%d", extremes, total)
	}
	useless := res.Stats.Messages.Useless
	if float64(useless) > 0.05*float64(res.Stats.Messages.Total()) {
		t.Fatalf("useless msgs = %d of %d, want few", useless, res.Stats.Messages.Total())
	}
}

// Aggregation is beneficial for Ilink: every processor accesses every
// page, so larger units cut messages without adding false sharing.
func TestAggregationBeneficial(t *testing.T) {
	r4 := mustRun(t, small(), tmk.Config{Procs: 8, UnitPages: 1, Collect: true})
	r16 := mustRun(t, small(), tmk.Config{Procs: 8, UnitPages: 4, Collect: true})
	if r16.Stats.Messages.Total() >= r4.Stats.Messages.Total() {
		t.Fatalf("messages: 4K=%d 16K=%d", r4.Stats.Messages.Total(), r16.Stats.Messages.Total())
	}
	if r16.Time >= r4.Time {
		t.Fatalf("time: 4K=%v 16K=%v", r4.Time, r16.Time)
	}
	// Signature shape barely moves ("virtually no change" for Ilink).
	if r16.Stats.Messages.Useless > r4.Stats.Messages.Useless+r4.Stats.Messages.Total()/20 {
		t.Fatalf("useless grew: 4K=%d 16K=%d",
			r4.Stats.Messages.Useless, r16.Stats.Messages.Useless)
	}
}

func TestDeterministic(t *testing.T) {
	a := mustRun(t, small(), tmk.Config{Procs: 8, Collect: true})
	b := mustRun(t, small(), tmk.Config{Procs: 8, Collect: true})
	if a.Time != b.Time || a.Messages != b.Messages {
		t.Fatal("nondeterministic")
	}
}

func TestNames(t *testing.T) {
	a := New(small())
	if a.Name() != "Ilink" || a.Dataset() != "4x4096" || a.Locks() != 0 {
		t.Fatal("identity")
	}
	if a.Check() == nil {
		t.Fatal("Check before run must fail")
	}
}
