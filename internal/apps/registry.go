package apps

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Entry is one registered application × dataset workload factory. The
// app subpackages self-register their paper datasets plus a
// small/medium/large sweep from init, so any workload is constructible
// by name — the foundation the CLI tools and the harness build on.
type Entry struct {
	// App is the application's display name ("Jacobi", "3D-FFT", ...).
	App string
	// Dataset names the input size. Paper datasets use the descriptive
	// harness nomenclature ("128x512 (row=1pg)"); every app also
	// registers "small", "medium", and "large".
	Dataset string
	// Paper is the paper dataset this one stands in for; empty for
	// sweep sizes that have no paper counterpart.
	Paper string
	// ScheduleSensitive marks applications whose message stream depends
	// on goroutine scheduling — in this engine, programs that contend
	// for locks: grant order follows wall-clock request arrival, so
	// lock caching and (for TSP) branch-and-bound pruning vary between
	// otherwise identical runs. Their captured traces describe one
	// schedule, not the app, so replay-derivation of sweep cells is
	// unsound for them and the harness falls back to real execution.
	// The barrier-only applications are invariant: barrier streams
	// permute only in release order, which never changes totals.
	ScheduleSensitive bool
	// Make builds the workload for the given processor count.
	Make func(procs int) Workload
}

var (
	regMu      sync.RWMutex
	regEntries []Entry
)

// Register adds a workload factory to the registry. It is called from
// the app subpackages' init functions; an incomplete entry or a
// duplicate app/dataset pair panics (a programming error caught at
// process start, never on a user path).
func Register(e Entry) {
	if e.App == "" || e.Dataset == "" || e.Make == nil {
		panic(fmt.Sprintf("apps: incomplete registration %q/%q", e.App, e.Dataset))
	}
	regMu.Lock()
	defer regMu.Unlock()
	for _, x := range regEntries {
		if strings.EqualFold(x.App, e.App) && strings.EqualFold(x.Dataset, e.Dataset) {
			panic(fmt.Sprintf("apps: duplicate registration %s/%s", e.App, e.Dataset))
		}
	}
	regEntries = append(regEntries, e)
}

// sortedEntries returns a copy of the registry ordered by app name
// (case-insensitive), keeping each app's registration order — the
// first entry of an app is its default (primary paper) dataset.
func sortedEntries() []Entry {
	out := make([]Entry, len(regEntries))
	copy(out, regEntries)
	sort.SliceStable(out, func(i, j int) bool {
		return strings.ToLower(out[i].App) < strings.ToLower(out[j].App)
	})
	return out
}

// Entries returns every registered workload, ordered by app name with
// each app's entries in registration order.
func Entries() []Entry {
	regMu.RLock()
	defer regMu.RUnlock()
	return sortedEntries()
}

// Names returns the "app/dataset" name of every registered workload,
// in Entries order.
func Names() []string {
	es := Entries()
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.App + "/" + e.Dataset
	}
	return out
}

// Apps returns the distinct registered application names, sorted
// case-insensitively.
func Apps() []string {
	var out []string
	seen := map[string]bool{}
	for _, e := range Entries() {
		if k := strings.ToLower(e.App); !seen[k] {
			seen[k] = true
			out = append(out, e.App)
		}
	}
	return out
}

// ReplaySafe reports whether the application's message stream is
// network- and schedule-invariant, making replay-derived sweep cells
// sound for it (see Entry.ScheduleSensitive). Unknown apps report
// false — derivation must never be assumed for an unclassified
// workload.
func ReplaySafe(app string) bool {
	found := false
	for _, e := range Entries() {
		if strings.EqualFold(e.App, app) {
			if e.ScheduleSensitive {
				return false
			}
			found = true
		}
	}
	return found
}

// Lookup resolves an application (case-insensitive) and dataset to a
// registered entry. An empty dataset selects the app's default (its
// first-registered, primary paper dataset). A non-empty dataset
// matches exactly (case-insensitive) first, then as a substring —
// "1024" finds Jacobi's "64x1024 (row=2pg)".
func Lookup(app, dataset string) (Entry, bool) {
	var fallback *Entry
	for _, e := range Entries() {
		if !strings.EqualFold(e.App, app) {
			continue
		}
		if dataset == "" || strings.EqualFold(e.Dataset, dataset) {
			return e, true
		}
		if fallback == nil && strings.Contains(strings.ToLower(e.Dataset), strings.ToLower(dataset)) {
			e := e
			fallback = &e
		}
	}
	if fallback != nil {
		return *fallback, true
	}
	return Entry{}, false
}
