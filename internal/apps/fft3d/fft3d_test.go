package fft3d

import (
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/mem"
	"repro/internal/tmk"
)

func small() Config { return Config{N1: 8, N2: 8, N3: 128, Iters: 2, Procs: 8} }

func mustRun(t *testing.T, c Config, ec tmk.Config) *tmk.Result {
	t.Helper()
	a := New(c)
	res, err := apps.Run(a, ec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// The FFT kernel itself: transform of a delta function is flat; inverse
// known analytically for simple signals.
func TestFFTKernelDelta(t *testing.T) {
	n := 8
	s := make([]float64, 2*n)
	s[0] = 1 // delta at 0
	fft(sliceBuf{s: s, base: 0, stride: 1, n: n})
	for i := 0; i < n; i++ {
		if math.Abs(s[2*i]-1) > 1e-12 || math.Abs(s[2*i+1]) > 1e-12 {
			t.Fatalf("delta transform bin %d = (%v,%v)", i, s[2*i], s[2*i+1])
		}
	}
}

func TestFFTKernelSingleTone(t *testing.T) {
	n := 16
	s := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		s[2*i] = math.Cos(2 * math.Pi * 3 * float64(i) / float64(n))
		s[2*i+1] = math.Sin(2 * math.Pi * 3 * float64(i) / float64(n))
	}
	fft(sliceBuf{s: s, base: 0, stride: 1, n: n})
	for i := 0; i < n; i++ {
		want := 0.0
		if i == 3 {
			want = float64(n)
		}
		if math.Abs(s[2*i]-want) > 1e-9 || math.Abs(s[2*i+1]) > 1e-9 {
			t.Fatalf("bin %d = (%v,%v), want (%v,0)", i, s[2*i], s[2*i+1], want)
		}
	}
}

func TestFFTKernelStrided(t *testing.T) {
	// A strided buffer must transform identically to a packed one.
	n := 8
	packed := make([]float64, 2*n)
	strided := make([]float64, 2*n*3)
	for i := 0; i < n; i++ {
		re := float64(i%3) - 1
		im := float64(i%5) / 5
		packed[2*i], packed[2*i+1] = re, im
		strided[2*i*3], strided[2*i*3+1] = re, im
	}
	fft(sliceBuf{s: packed, base: 0, stride: 1, n: n})
	fft(sliceBuf{s: strided, base: 0, stride: 3, n: n})
	for i := 0; i < n; i++ {
		if packed[2*i] != strided[2*i*3] || packed[2*i+1] != strided[2*i*3+1] {
			t.Fatalf("strided mismatch at %d", i)
		}
	}
}

func TestCorrectAtEveryUnitSize(t *testing.T) {
	for _, up := range []int{1, 2, 4} {
		if _, err := apps.Run(New(small()), tmk.Config{Procs: 8, UnitPages: up, Collect: true}); err != nil {
			t.Fatalf("unit=%d: %v", up, err)
		}
	}
}

func TestCorrectWithDynamicAggregation(t *testing.T) {
	if _, err := apps.Run(New(small()), tmk.Config{Procs: 8, Dynamic: true, Collect: true}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkBytesKnob(t *testing.T) {
	if got := New(Config{N1: 16, N2: 16, N3: 128, Procs: 8}).ChunkBytes(); got != mem.PageSize {
		t.Fatalf("chunk = %d, want one page", got)
	}
	if got := New(Config{N1: 16, N2: 16, N3: 256, Procs: 8}).ChunkBytes(); got != 2*mem.PageSize {
		t.Fatalf("chunk = %d, want two pages", got)
	}
}

// Paper §5.5: when the transpose read chunk equals 2 pages (the 64³
// analogue), 8 KB units aggregate perfectly while 16 KB units transfer
// neighbouring processors' chunks as piggybacked useless data.
func TestTransposeGranularityShape(t *testing.T) {
	c := Config{N1: 8, N2: 8, N3: 256, Iters: 1, Procs: 8} // chunk = 8 KB
	r8 := mustRun(t, c, tmk.Config{Procs: 8, UnitPages: 2, Collect: true})
	r16 := mustRun(t, c, tmk.Config{Procs: 8, UnitPages: 4, Collect: true})
	pig8 := r8.Stats.PiggybackedBytes + r8.Stats.UselessBytes
	pig16 := r16.Stats.PiggybackedBytes + r16.Stats.UselessBytes
	if pig16 <= pig8 {
		t.Fatalf("useless data must appear at 16K: 8K=%d 16K=%d", pig8, pig16)
	}
	if r8.Stats.Messages.Total() <= r16.Stats.Messages.Total()/2 {
		t.Fatalf("messages: 8K=%d 16K=%d", r8.Stats.Messages.Total(), r16.Stats.Messages.Total())
	}
}

func TestDeterministic(t *testing.T) {
	a := mustRun(t, small(), tmk.Config{Procs: 8, Collect: true})
	b := mustRun(t, small(), tmk.Config{Procs: 8, Collect: true})
	if a.Time != b.Time || a.Messages != b.Messages {
		t.Fatal("nondeterministic")
	}
}

func TestNames(t *testing.T) {
	a := New(small())
	if a.Name() != "3D-FFT" || a.Dataset() != "8x8x128" || a.Locks() != 0 {
		t.Fatal("identity")
	}
	if a.Check() == nil {
		t.Fatal("Check before run must fail")
	}
}
