package fft3d

import "repro/internal/apps"

// The paper datasets (the §5.5 4 KB/8 KB/16 KB chunk ladder) and a
// small/medium/large sweep. N1 and N2 stay 8 so every processor count
// dividing 8 is valid.
func init() {
	reg := func(dataset, paper string, cfg Config) {
		apps.Register(apps.Entry{
			App: "3D-FFT", Dataset: dataset, Paper: paper,
			Make: func(procs int) apps.Workload {
				c := cfg
				c.Procs = procs
				return New(c)
			},
		})
	}
	reg("8x8x128 (chunk=1pg)", "64x64x32", Config{N1: 8, N2: 8, N3: 128, Iters: 2})
	reg("8x8x256 (chunk=2pg)", "64x64x64", Config{N1: 8, N2: 8, N3: 256, Iters: 2})
	reg("8x8x512 (chunk=4pg)", "128x128x128", Config{N1: 8, N2: 8, N3: 512, Iters: 2})
	reg("small", "", Config{N1: 8, N2: 8, N3: 64, Iters: 2})
	reg("medium", "", Config{N1: 8, N2: 8, N3: 256, Iters: 2})
	reg("large", "", Config{N1: 8, N2: 8, N3: 512, Iters: 3})
}
