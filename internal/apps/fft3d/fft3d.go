// Package fft3d implements the paper's 3D-FFT benchmark (NAS FT kernel):
// repeated 3-D fast Fourier transforms with a transpose between the
// locally-computable dimensions and the distributed one.
//
// Decomposition and sharing pattern (§5.5): array A is distributed in
// i1-slabs, array B in i2-slabs. Each processor FFTs its A-slab along i3
// and i2 locally, then gathers — producer-consumer — the pencils it needs
// from every other processor's slab to build its B-slab, and FFTs along
// i1. The contiguous region a processor reads from one remote slab is
// (n2/P)·n3 complex values; that read granularity versus the consistency
// unit is the dataset knob (4 KB, 8 KB, 16 KB for the paper's 64×64×32,
// 64³, 128³). A one-page checksum array concurrently written by all
// processors and read by the master reproduces the paper's "few useless
// messages" pattern.
package fft3d

import (
	"fmt"
	"math"

	"repro/internal/apps"
	"repro/internal/mem"
	"repro/internal/tmk"
)

// seqRef bundles Sequential's two results for memoization across
// workload instances of the same configuration (see apps.SeqMemo);
// Check treats the spot slice as read-only.
type seqRef struct {
	spot  []float64
	total float64
}

var seqMemo apps.SeqMemo[seqRef]

// Config selects the dataset.
type Config struct {
	N1, N2, N3 int // grid; N3 must be a power of two; P | N1, P | N2
	Iters      int
	Procs      int
}

// App is one 3D-FFT instance.
type App struct {
	cfg   Config
	a, b  apps.Arr
	sums  apps.Arr // one slot per processor + one total, on one page
	out   []float64
	total float64
}

// New returns a 3D-FFT workload.
func New(cfg Config) *App {
	if cfg.Iters <= 0 {
		cfg.Iters = 2
	}
	return &App{cfg: cfg}
}

// Name implements apps.Workload.
func (a *App) Name() string { return "3D-FFT" }

// Dataset implements apps.Workload.
func (a *App) Dataset() string {
	return fmt.Sprintf("%dx%dx%d", a.cfg.N1, a.cfg.N2, a.cfg.N3)
}

// ChunkBytes returns the contiguous bytes one processor reads from one
// remote slab per i1 plane during the transpose — the granularity knob.
func (a *App) ChunkBytes() int {
	return (a.cfg.N2 / a.cfg.Procs) * a.cfg.N3 * 2 * mem.WordSize
}

func (a *App) elems() int { return a.cfg.N1 * a.cfg.N2 * a.cfg.N3 }

func (a *App) arrPages() int {
	return mem.RoundUpPages(a.elems()*2*mem.WordSize) / mem.PageSize
}

// SegmentBytes implements apps.Workload.
func (a *App) SegmentBytes() int {
	return 2*a.arrPages()*mem.PageSize + 2*mem.PageSize
}

// Locks implements apps.Workload.
func (a *App) Locks() int { return 0 }

// Prepare implements apps.Workload.
func (a *App) Prepare(sys *tmk.System) {
	a.a = apps.Arr{Base: sys.AllocPages(a.arrPages())}
	a.b = apps.Arr{Base: sys.AllocPages(a.arrPages())}
	a.sums = apps.Arr{Base: sys.AllocPages(1)}
}

// Complex element (i1,i2,i3) of A lives at word index 2·((i1·n2+i2)·n3+i3).
func (a *App) atA(i1, i2, i3 int) int {
	return 2 * ((i1*a.cfg.N2+i2)*a.cfg.N3 + i3)
}

// B is the transposed array: (i2,i1,i3), contiguous in i3.
func (a *App) atB(i2, i1, i3 int) int {
	return 2 * ((i2*a.cfg.N1+i1)*a.cfg.N3 + i3)
}

func (a *App) initRe(i int) float64 { return float64((i*37+11)%101)/101.0 - 0.5 }
func (a *App) initIm(i int) float64 { return float64((i*53+29)%97)/97.0 - 0.5 }

// cbuf abstracts a strided complex vector so the identical FFT kernel
// runs over DSM memory and over plain slices.
type cbuf interface {
	Get(i int) (re, im float64)
	Set(i int, re, im float64)
	Len() int
}

type dsmBuf struct {
	p      *tmk.Proc
	arr    apps.Arr
	base   int // word index of element 0
	stride int // in complex elements
	n      int
}

func (b dsmBuf) Get(i int) (float64, float64) {
	w := b.base + 2*i*b.stride
	return b.p.ReadF64(b.arr.At(w)), b.p.ReadF64(b.arr.At(w + 1))
}

func (b dsmBuf) Set(i int, re, im float64) {
	w := b.base + 2*i*b.stride
	b.p.WriteF64(b.arr.At(w), re)
	b.p.WriteF64(b.arr.At(w+1), im)
}

func (b dsmBuf) Len() int { return b.n }

type sliceBuf struct {
	s      []float64
	base   int
	stride int
	n      int
}

func (b sliceBuf) Get(i int) (float64, float64) {
	w := b.base + 2*i*b.stride
	return b.s[w], b.s[w+1]
}

func (b sliceBuf) Set(i int, re, im float64) {
	w := b.base + 2*i*b.stride
	b.s[w], b.s[w+1] = re, im
}

func (b sliceBuf) Len() int { return b.n }

// fft performs an in-place radix-2 Cooley-Tukey FFT (decimation in time)
// over the buffer. Len must be a power of two.
func fft(v cbuf) {
	n := v.Len()
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			ar, ai := v.Get(i)
			br, bi := v.Get(j)
			v.Set(i, br, bi)
			v.Set(j, ar, ai)
		}
		m := n >> 1
		for m >= 1 && j&m != 0 {
			j ^= m
			m >>= 1
		}
		j |= m
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		ang := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				wr, wi := math.Cos(ang*float64(k)), math.Sin(ang*float64(k))
				ar, ai := v.Get(start + k)
				br, bi := v.Get(start + k + half)
				tr := br*wr - bi*wi
				ti := br*wi + bi*wr
				v.Set(start+k, ar+tr, ai+ti)
				v.Set(start+k+half, ar-tr, ai-ti)
			}
		}
	}
}

// fftOps returns the arithmetic operation count of one length-n FFT
// (butterflies × per-butterfly flops), charged to the virtual clock at
// each kernel invocation.
func fftOps(n int) int {
	lg := 0
	for m := n; m > 1; m >>= 1 {
		lg++
	}
	return (n / 2) * lg * 10
}

// Body implements apps.Workload.
func (a *App) Body(p *tmk.Proc) {
	n1, n2, n3, P := a.cfg.N1, a.cfg.N2, a.cfg.N3, p.NProcs()
	lo1, hi1 := apps.Band(n1, P, p.ID())
	lo2, hi2 := apps.Band(n2, P, p.ID())

	// Owners initialize their A slabs.
	for i1 := lo1; i1 < hi1; i1++ {
		for i2 := 0; i2 < n2; i2++ {
			for i3 := 0; i3 < n3; i3++ {
				w := a.atA(i1, i2, i3)
				p.WriteF64(a.a.At(w), a.initRe(w/2))
				p.WriteF64(a.a.At(w+1), a.initIm(w/2))
			}
		}
	}
	p.Barrier()

	for it := 0; it < a.cfg.Iters; it++ {
		// Scale A by a factor derived from the previous checksum (reads
		// the master-written total: true sharing, one writer).
		if it > 0 {
			scale := 1.0 + 1e-3*p.ReadF64(a.sums.At(P))
			for i1 := lo1; i1 < hi1; i1++ {
				for i2 := 0; i2 < n2; i2++ {
					for i3 := 0; i3 < n3; i3++ {
						w := a.atA(i1, i2, i3)
						p.WriteF64(a.a.At(w), p.ReadF64(a.a.At(w))*scale)
						p.WriteF64(a.a.At(w+1), p.ReadF64(a.a.At(w+1))*scale)
					}
				}
			}
		}

		// FFT along i3 then i2, local to the A slab.
		for i1 := lo1; i1 < hi1; i1++ {
			for i2 := 0; i2 < n2; i2++ {
				fft(dsmBuf{p: p, arr: a.a, base: a.atA(i1, i2, 0), stride: 1, n: n3})
				p.Compute(fftOps(n3))
			}
			for i3 := 0; i3 < n3; i3++ {
				fft(dsmBuf{p: p, arr: a.a, base: a.atA(i1, 0, i3), stride: n3, n: n2})
				p.Compute(fftOps(n2))
			}
		}
		p.Barrier()

		// Transpose: gather own i2 range from every i1 (remote slabs),
		// then FFT along i1 within the B slab.
		for i1 := 0; i1 < n1; i1++ {
			for i2 := lo2; i2 < hi2; i2++ {
				for i3 := 0; i3 < n3; i3++ {
					re := p.ReadF64(a.a.At(a.atA(i1, i2, i3)))
					im := p.ReadF64(a.a.At(a.atA(i1, i2, i3) + 1))
					p.WriteF64(a.b.At(a.atB(i2, i1, i3)), re)
					p.WriteF64(a.b.At(a.atB(i2, i1, i3)+1), im)
				}
			}
		}
		for i2 := lo2; i2 < hi2; i2++ {
			for i3 := 0; i3 < n3; i3++ {
				fft(dsmBuf{p: p, arr: a.b, base: a.atB(i2, 0, i3), stride: n3, n: n1})
				p.Compute(fftOps(n1))
			}
		}

		// Checksum: every processor writes its slot on the shared page;
		// after the barrier the master reads them all and publishes the
		// total (the paper's few-useless-messages pattern).
		var sum float64
		for i2 := lo2; i2 < hi2; i2++ {
			sum += p.ReadF64(a.b.At(a.atB(i2, 0, 0)))
		}
		p.WriteF64(a.sums.At(p.ID()), sum)
		p.Barrier()
		if p.ID() == 0 {
			var tot float64
			for q := 0; q < P; q++ {
				tot += p.ReadF64(a.sums.At(q))
			}
			p.WriteF64(a.sums.At(P), tot)
		}
		p.Barrier()
	}

	if p.ID() == 0 {
		a.total = p.ReadF64(a.sums.At(P))
		a.out = make([]float64, 0, 64)
		for i := 0; i < 32; i++ {
			a.out = append(a.out,
				p.ReadF64(a.b.At(2*i*17%(a.elems()*2)&^1)))
		}
	}
}

// Sequential computes the reference in plain Go with identical operation
// order (per-processor slab order preserved so FP results match bitwise).
func (a *App) Sequential() (spot []float64, total float64) {
	n1, n2, n3, P := a.cfg.N1, a.cfg.N2, a.cfg.N3, a.cfg.Procs
	A := make([]float64, a.elems()*2)
	B := make([]float64, a.elems()*2)
	sums := make([]float64, P+1)
	for w := 0; w < len(A); w += 2 {
		A[w] = a.initRe(w / 2)
		A[w+1] = a.initIm(w / 2)
	}
	for it := 0; it < a.cfg.Iters; it++ {
		if it > 0 {
			scale := 1.0 + 1e-3*sums[P]
			for w := 0; w < len(A); w++ {
				A[w] *= scale
			}
		}
		for i1 := 0; i1 < n1; i1++ {
			for i2 := 0; i2 < n2; i2++ {
				fft(sliceBuf{s: A, base: a.atA(i1, i2, 0), stride: 1, n: n3})
			}
			for i3 := 0; i3 < n3; i3++ {
				fft(sliceBuf{s: A, base: a.atA(i1, 0, i3), stride: n3, n: n2})
			}
		}
		for i1 := 0; i1 < n1; i1++ {
			for i2 := 0; i2 < n2; i2++ {
				for i3 := 0; i3 < n3; i3++ {
					B[a.atB(i2, i1, i3)] = A[a.atA(i1, i2, i3)]
					B[a.atB(i2, i1, i3)+1] = A[a.atA(i1, i2, i3)+1]
				}
			}
		}
		for i2 := 0; i2 < n2; i2++ {
			for i3 := 0; i3 < n3; i3++ {
				fft(sliceBuf{s: B, base: a.atB(i2, 0, i3), stride: n3, n: n1})
			}
		}
		for q := 0; q < P; q++ {
			lo2, hi2 := apps.Band(n2, P, q)
			var sum float64
			for i2 := lo2; i2 < hi2; i2++ {
				sum += B[a.atB(i2, 0, 0)]
			}
			sums[q] = sum
		}
		var tot float64
		for q := 0; q < P; q++ {
			tot += sums[q]
		}
		sums[P] = tot
	}
	spot = make([]float64, 0, 32)
	for i := 0; i < 32; i++ {
		spot = append(spot, B[2*i*17%(a.elems()*2)&^1])
	}
	return spot, sums[P]
}

// Check implements apps.Workload.
func (a *App) Check() error {
	if a.out == nil {
		return fmt.Errorf("fft3d: no output captured")
	}
	ref := seqMemo.Get(fmt.Sprintf("%+v", a.cfg), func() seqRef {
		spot, total := a.Sequential()
		return seqRef{spot: spot, total: total}
	})
	spot, total := ref.spot, ref.total
	if a.total != total {
		return fmt.Errorf("fft3d: checksum = %v, want %v", a.total, total)
	}
	for i := range spot {
		if a.out[i] != spot[i] {
			return fmt.Errorf("fft3d: spot %d = %v, want %v", i, a.out[i], spot[i])
		}
	}
	return nil
}
