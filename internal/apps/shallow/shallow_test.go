package shallow

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/tmk"
)

func small() Config { return Config{Rows: 512, Cols: 16, Iters: 2, Procs: 8} }

func mustRun(t *testing.T, c Config, ec tmk.Config) *tmk.Result {
	t.Helper()
	a := New(c)
	res, err := apps.Run(a, ec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCorrectAtEveryUnitSize(t *testing.T) {
	for _, up := range []int{1, 2, 4} {
		c := small()
		c.Procs = 8
		a := New(c)
		if _, err := apps.Run(a, tmk.Config{Procs: 8, UnitPages: up, Collect: true}); err != nil {
			t.Fatalf("unit=%d: %v", up, err)
		}
	}
}

func TestCorrectWithDynamicAggregation(t *testing.T) {
	if _, err := apps.Run(New(small()), tmk.Config{Procs: 8, Dynamic: true, Collect: true}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrectAtOtherProcCounts(t *testing.T) {
	for _, procs := range []int{1, 2, 4} {
		c := small()
		c.Procs = procs
		if _, err := apps.Run(New(c), tmk.Config{Procs: procs, Collect: true}); err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
	}
}

// Paper §5.5: with one column per page, the flux array's write-write
// false sharing is invisible at 4 KB but produces useless messages as
// soon as a unit holds two columns.
func TestFluxFalseSharingAppearsAtLargerUnits(t *testing.T) {
	r4 := mustRun(t, small(), tmk.Config{Procs: 8, UnitPages: 1, Collect: true})
	r8 := mustRun(t, small(), tmk.Config{Procs: 8, UnitPages: 2, Collect: true})
	if r4.Stats.Messages.Useless != 0 {
		t.Fatalf("4K useless msgs = %d, want 0", r4.Stats.Messages.Useless)
	}
	if r8.Stats.Messages.Useless == 0 {
		t.Fatal("8K must show useless messages (flux columns colocated)")
	}
	// State arrays also add piggybacked useless data at 8K.
	if r8.Stats.PiggybackedBytes <= r4.Stats.PiggybackedBytes {
		t.Fatalf("piggybacked: 4K=%d 8K=%d", r4.Stats.PiggybackedBytes, r8.Stats.PiggybackedBytes)
	}
}

// With 2-page columns the same effects move out to 16 KB.
func TestLargerColumnsDelayFalseSharing(t *testing.T) {
	c := Config{Rows: 1024, Cols: 16, Iters: 2, Procs: 8}
	r8 := mustRun(t, c, tmk.Config{Procs: 8, UnitPages: 2, Collect: true})
	r16 := mustRun(t, c, tmk.Config{Procs: 8, UnitPages: 4, Collect: true})
	if r8.Stats.Messages.Useless != 0 {
		t.Fatalf("8K useless msgs = %d, want 0 (column == unit)", r8.Stats.Messages.Useless)
	}
	if r16.Stats.Messages.Useless == 0 {
		t.Fatal("16K must show useless messages")
	}
}

func TestDeterministic(t *testing.T) {
	a := mustRun(t, small(), tmk.Config{Procs: 8, Collect: true})
	b := mustRun(t, small(), tmk.Config{Procs: 8, Collect: true})
	if a.Time != b.Time || a.Messages != b.Messages {
		t.Fatalf("nondeterministic")
	}
}

func TestNames(t *testing.T) {
	a := New(small())
	if a.Name() != "Shallow" || a.Dataset() != "512x16" || a.Locks() != 0 {
		t.Fatal("identity")
	}
	if a.Check() == nil {
		t.Fatal("Check before run must fail")
	}
}
