package shallow

import "repro/internal/apps"

// The paper datasets (Figure 2's column-size ladder) and a
// small/medium/large sweep. Cols stays 16 so every processor count
// dividing 16 is valid.
func init() {
	reg := func(dataset, paper string, cfg Config) {
		apps.Register(apps.Entry{
			App: "Shallow", Dataset: dataset, Paper: paper,
			Make: func(procs int) apps.Workload {
				c := cfg
				c.Procs = procs
				return New(c)
			},
		})
	}
	reg("512x16 (col=1pg)", "1Kx0.5K", Config{Rows: 512, Cols: 16, Iters: 3})
	reg("1024x16 (col=2pg)", "2Kx0.5K", Config{Rows: 1024, Cols: 16, Iters: 3})
	reg("2048x16 (col=4pg)", "4Kx0.5K", Config{Rows: 2048, Cols: 16, Iters: 3})
	reg("small", "", Config{Rows: 256, Cols: 16, Iters: 2})
	reg("medium", "", Config{Rows: 512, Cols: 16, Iters: 3})
	reg("large", "", Config{Rows: 2048, Cols: 16, Iters: 3})
}
