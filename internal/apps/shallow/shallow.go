// Package shallow implements the paper's Shallow benchmark (NCAR): a
// finite-difference solver on a two-dimensional grid, column-partitioned
// across processors.
//
// Sharing patterns (§5.5), all reproduced structurally:
//
//  1. For the state arrays (u, v, pr), each processor writes only its own
//     columns and reads the first column of its right neighbour's chunk
//     — Jacobi-like; larger units add piggybacked useless data.
//  2. For the flux array (psi), each processor writes its own columns
//     *plus the first column of its right neighbour's chunk* but never
//     reads any neighbour column: write-write false sharing that turns
//     into useless messages as soon as a consistency unit holds two
//     columns.
//  3. A wraparound pattern: the master copies the last column of u to
//     column 0 each iteration.
//
// Storage is column-major, so a column is contiguous; the dataset knob is
// the column height (512 float64 = 1 page, matching the paper's
// 1K float32 columns at 4 KB).
package shallow

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/mem"
	"repro/internal/tmk"
)

// seqMemo shares the sequential reference across workload instances of
// the same configuration (see apps.SeqMemo); Check treats the returned
// slice as read-only.
var seqMemo apps.SeqMemo[[]float64]

// Config selects the dataset.
type Config struct {
	Rows  int // column height in float64 (512 = 1 page)
	Cols  int // number of columns; must be divisible by Procs
	Iters int
	Procs int
}

// App is one Shallow instance.
type App struct {
	cfg         Config
	u, v, pr    apps.Arr
	un, vn, prn apps.Arr
	psi         apps.Arr
	out         []float64
	err         error
}

// New returns a Shallow workload.
func New(cfg Config) *App {
	if cfg.Iters <= 0 {
		cfg.Iters = 3
	}
	return &App{cfg: cfg}
}

// Name implements apps.Workload.
func (a *App) Name() string { return "Shallow" }

// Dataset implements apps.Workload.
func (a *App) Dataset() string { return fmt.Sprintf("%dx%d", a.cfg.Rows, a.cfg.Cols) }

func (a *App) colPages() int { return mem.RoundUpPages(a.cfg.Rows*mem.WordSize) / mem.PageSize }

func (a *App) arrPages() int { return a.colPages() * a.cfg.Cols }

// SegmentBytes implements apps.Workload.
func (a *App) SegmentBytes() int { return 7*a.arrPages()*mem.PageSize + mem.PageSize }

// Locks implements apps.Workload.
func (a *App) Locks() int { return 0 }

// Prepare implements apps.Workload.
func (a *App) Prepare(sys *tmk.System) {
	n := a.arrPages()
	a.u = apps.Arr{Base: sys.AllocPages(n)}
	a.v = apps.Arr{Base: sys.AllocPages(n)}
	a.pr = apps.Arr{Base: sys.AllocPages(n)}
	a.un = apps.Arr{Base: sys.AllocPages(n)}
	a.vn = apps.Arr{Base: sys.AllocPages(n)}
	a.prn = apps.Arr{Base: sys.AllocPages(n)}
	a.psi = apps.Arr{Base: sys.AllocPages(n)}
}

// at returns the element index of (row r, column c); columns are padded
// to whole pages so the column-to-page ratio is exact.
func (a *App) at(r, c int) int {
	return c*(a.colPages()*mem.PageSize/mem.WordSize) + r
}

func (a *App) initU(r, c int) float64  { return float64((r*7+c*13)%31) / 31.0 }
func (a *App) initV(r, c int) float64  { return float64((r*11+c*3)%29) / 29.0 }
func (a *App) initPr(r, c int) float64 { return 1.0 + float64((r*5+c*17)%23)/23.0 }

// Body implements apps.Workload.
func (a *App) Body(p *tmk.Proc) {
	R, C, P := a.cfg.Rows, a.cfg.Cols, p.NProcs()
	lo, hi := apps.Band(C, P, p.ID())

	// Owners initialize their own columns.
	for c := lo; c < hi; c++ {
		for r := 0; r < R; r++ {
			p.WriteF64(a.u.At(a.at(r, c)), a.initU(r, c))
			p.WriteF64(a.v.At(a.at(r, c)), a.initV(r, c))
			p.WriteF64(a.pr.At(a.at(r, c)), a.initPr(r, c))
		}
	}
	p.Barrier()

	for it := 0; it < a.cfg.Iters; it++ {
		// Phase A: compute new state from (own cols, right neighbour's
		// first col); write flux into own cols 2..last and the right
		// neighbour's first column.
		for c := lo; c < hi; c++ {
			if c == C-1 {
				continue // fixed right boundary
			}
			for r := 1; r < R-1; r++ {
				uc := p.ReadF64(a.u.At(a.at(r, c)))
				ur := p.ReadF64(a.u.At(a.at(r, c+1)))
				vc := p.ReadF64(a.v.At(a.at(r, c)))
				pc := p.ReadF64(a.pr.At(a.at(r, c)))
				pright := p.ReadF64(a.pr.At(a.at(r, c+1)))
				p.WriteF64(a.un.At(a.at(r, c)), uc+0.1*(ur-uc)-0.05*(pright-pc))
				p.WriteF64(a.vn.At(a.at(r, c)), vc+0.1*(pc-1.0))
				p.WriteF64(a.prn.At(a.at(r, c)), pc+0.05*(uc-vc))
				p.Compute(12) // difference-equation arithmetic
			}
		}
		// Flux: write cols [lo+1, hi] — the last one is the right
		// neighbour's first column, which nobody ever reads.
		for c := lo + 1; c <= hi && c < C; c++ {
			for r := 0; r < R; r++ {
				p.WriteF64(a.psi.At(a.at(r, c)),
					float64(it+1)*a.initU(r, c)-a.initV(r, c))
			}
		}
		p.Barrier()

		// Phase B: commit new state (reading only own columns).
		for c := lo; c < hi; c++ {
			if c == C-1 {
				continue
			}
			for r := 1; r < R-1; r++ {
				p.WriteF64(a.u.At(a.at(r, c)), p.ReadF64(a.un.At(a.at(r, c))))
				p.WriteF64(a.v.At(a.at(r, c)), p.ReadF64(a.vn.At(a.at(r, c))))
				pv := p.ReadF64(a.prn.At(a.at(r, c)))
				// Read own flux columns, never the neighbour-written one.
				if c > lo {
					pv += 0.01 * p.ReadF64(a.psi.At(a.at(r, c)))
				}
				p.WriteF64(a.pr.At(a.at(r, c)), pv)
				p.Compute(4)
			}
		}
		p.Barrier()

		// Wraparound copy by the master: u's last column to column 0.
		if p.ID() == 0 {
			for r := 0; r < R; r++ {
				p.WriteF64(a.u.At(a.at(r, 0)), p.ReadF64(a.u.At(a.at(r, C-1))))
			}
		}
		p.Barrier()
	}

	if p.ID() == 0 {
		a.out = make([]float64, 0, 3*R*C)
		for c := 0; c < C; c++ {
			for r := 0; r < R; r++ {
				a.out = append(a.out,
					p.ReadF64(a.u.At(a.at(r, c))),
					p.ReadF64(a.v.At(a.at(r, c))),
					p.ReadF64(a.pr.At(a.at(r, c))))
			}
		}
	}
}

// Sequential computes the reference state in plain Go.
func (a *App) Sequential() []float64 {
	R, C := a.cfg.Rows, a.cfg.Cols
	idx := func(r, c int) int { return c*R + r }
	u := make([]float64, R*C)
	v := make([]float64, R*C)
	pr := make([]float64, R*C)
	un := make([]float64, R*C)
	vn := make([]float64, R*C)
	prn := make([]float64, R*C)
	psi := make([]float64, R*C)
	for c := 0; c < C; c++ {
		for r := 0; r < R; r++ {
			u[idx(r, c)] = a.initU(r, c)
			v[idx(r, c)] = a.initV(r, c)
			pr[idx(r, c)] = a.initPr(r, c)
		}
	}
	for it := 0; it < a.cfg.Iters; it++ {
		for c := 0; c < C-1; c++ {
			for r := 1; r < R-1; r++ {
				uc, ur := u[idx(r, c)], u[idx(r, c+1)]
				vc := v[idx(r, c)]
				pc, pright := pr[idx(r, c)], pr[idx(r, c+1)]
				un[idx(r, c)] = uc + 0.1*(ur-uc) - 0.05*(pright-pc)
				vn[idx(r, c)] = vc + 0.1*(pc-1.0)
				prn[idx(r, c)] = pc + 0.05*(uc-vc)
			}
		}
		for c := 1; c < C; c++ {
			for r := 0; r < R; r++ {
				psi[idx(r, c)] = float64(it+1)*a.initU(r, c) - a.initV(r, c)
			}
		}
		for c := 0; c < C-1; c++ {
			firstOfChunk := false
			for p := 0; p < a.cfg.Procs; p++ {
				if l, _ := apps.Band(C, a.cfg.Procs, p); l == c {
					firstOfChunk = true
				}
			}
			for r := 1; r < R-1; r++ {
				u[idx(r, c)] = un[idx(r, c)]
				v[idx(r, c)] = vn[idx(r, c)]
				pv := prn[idx(r, c)]
				if !firstOfChunk {
					pv += 0.01 * psi[idx(r, c)]
				}
				pr[idx(r, c)] = pv
			}
		}
		for r := 0; r < R; r++ {
			u[idx(r, 0)] = u[idx(r, C-1)]
		}
	}
	out := make([]float64, 0, 3*R*C)
	for c := 0; c < C; c++ {
		for r := 0; r < R; r++ {
			out = append(out, u[idx(r, c)], v[idx(r, c)], pr[idx(r, c)])
		}
	}
	return out
}

// Check implements apps.Workload (bitwise; barrier-deterministic).
func (a *App) Check() error {
	if a.out == nil {
		return fmt.Errorf("shallow: no output captured")
	}
	want := seqMemo.Get(fmt.Sprintf("%+v", a.cfg), a.Sequential)
	for i := range want {
		if a.out[i] != want[i] {
			return fmt.Errorf("shallow: value %d = %v, want %v", i, a.out[i], want[i])
		}
	}
	return nil
}
