// Package all registers every application of the paper's evaluation in
// the workload registry (apps.Register). Import it for side effects
// wherever the full workload catalog must be available — the harness,
// the CLI tools, and registry tests.
package all

import (
	_ "repro/internal/apps/barnes"
	_ "repro/internal/apps/fft3d"
	_ "repro/internal/apps/ilink"
	_ "repro/internal/apps/jacobi"
	_ "repro/internal/apps/mgs"
	_ "repro/internal/apps/shallow"
	_ "repro/internal/apps/storm"
	_ "repro/internal/apps/tsp"
	_ "repro/internal/apps/water"
)
