package apps_test

import (
	"strings"
	"testing"

	"repro/internal/apps"
	_ "repro/internal/apps/all" // populate the workload registry
	"repro/internal/tmk"
)

// Every application must register its paper dataset(s) plus the
// small/medium/large sweep. Storm is the one deliberate addition beyond
// the paper's 8: a synthetic notice-storm stressor for the scaling
// sweeps, so it carries no paper dataset.
func TestRegistryInventory(t *testing.T) {
	appNames := apps.Apps()
	if len(appNames) != 9 {
		t.Fatalf("apps = %v, want the paper's 8 plus Storm", appNames)
	}
	sawStorm := false
	for _, app := range appNames {
		for _, size := range []string{"small", "medium", "large"} {
			if _, ok := apps.Lookup(app, size); !ok {
				t.Errorf("%s has no %q dataset", app, size)
			}
		}
		e, ok := apps.Lookup(app, "")
		if !ok {
			t.Fatalf("%s has no default dataset", app)
		}
		if app == "Storm" {
			sawStorm = true
			if e.Paper != "" {
				t.Errorf("Storm claims paper dataset %q; it is synthetic", e.Paper)
			}
			continue
		}
		if e.Paper == "" {
			t.Errorf("%s default dataset %q is not a paper dataset", app, e.Dataset)
		}
	}
	if !sawStorm {
		t.Error("Storm missing from registry")
	}
}

// Round-trip: every Names() entry resolves back through Lookup to the
// same entry, and its factory builds a workload whose self-description
// matches the registration.
func TestRegistryRoundTrip(t *testing.T) {
	names := apps.Names()
	if len(names) == 0 {
		t.Fatal("empty registry")
	}
	for _, name := range names {
		app, dataset, ok := strings.Cut(name, "/")
		if !ok {
			t.Fatalf("malformed name %q", name)
		}
		e, ok := apps.Lookup(app, dataset)
		if !ok {
			t.Fatalf("Lookup(%q, %q) failed for listed name", app, dataset)
		}
		if e.App != app || e.Dataset != dataset {
			t.Fatalf("Lookup(%q, %q) returned %s/%s", app, dataset, e.App, e.Dataset)
		}
		w := e.Make(8)
		if w == nil {
			t.Fatalf("%s: nil workload", name)
		}
		if !strings.EqualFold(w.Name(), e.App) {
			t.Errorf("%s: workload names itself %q", name, w.Name())
		}
		if w.SegmentBytes() <= 0 {
			t.Errorf("%s: segment bytes = %d", name, w.SegmentBytes())
		}
	}
}

// Lookup semantics: case-insensitive app, default dataset, substring
// dataset match.
func TestRegistryLookupMatching(t *testing.T) {
	if _, ok := apps.Lookup("jAcObI", ""); !ok {
		t.Fatal("app lookup must be case-insensitive")
	}
	e, ok := apps.Lookup("jacobi", "1024")
	if !ok || !strings.Contains(e.Dataset, "1024") {
		t.Fatalf("substring dataset match failed: %+v ok=%v", e, ok)
	}
	if _, ok := apps.Lookup("nonesuch", ""); ok {
		t.Fatal("unknown app must not resolve")
	}
	if _, ok := apps.Lookup("jacobi", "nonesuch"); ok {
		t.Fatal("unknown dataset must not resolve")
	}
}

// Every app's small dataset runs and checks under the default engine
// configuration — the registry's factories produce working workloads,
// not just names.
func TestRegistrySmallDatasetsRunAndCheck(t *testing.T) {
	for _, app := range apps.Apps() {
		for _, protocol := range tmk.ProtocolNames() {
			app, protocol := app, protocol
			t.Run(app+"/"+protocol, func(t *testing.T) {
				t.Parallel()
				e, ok := apps.Lookup(app, "small")
				if !ok {
					t.Fatalf("%s: no small dataset", app)
				}
				const procs = 4
				res, err := apps.Run(e.Make(procs),
					tmk.Config{Procs: procs, Protocol: protocol, Collect: true})
				if err != nil {
					t.Fatal(err)
				}
				if res.Time <= 0 || res.Stats == nil {
					t.Fatalf("incomplete result: %+v", res)
				}
			})
		}
	}
}

// Multi-trial execution through the registry: one reused system, every
// trial verified, deterministic aggregate for barrier programs.
func TestRegistryRunTrials(t *testing.T) {
	e, ok := apps.Lookup("Jacobi", "small")
	if !ok {
		t.Fatal("jacobi/small not registered")
	}
	ts, err := apps.RunTrials(e.Make(4), tmk.Config{Procs: 4, Collect: true}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Trials) != 3 {
		t.Fatalf("trials = %d", len(ts.Trials))
	}
	for i, r := range ts.Trials {
		if r.Time != ts.Trials[0].Time {
			t.Fatalf("trial %d time %v != trial 0 %v (Jacobi is barrier-deterministic)",
				i, r.Time, ts.Trials[0].Time)
		}
	}
	if ts.MinTime != ts.MaxTime {
		t.Fatalf("min %v != max %v", ts.MinTime, ts.MaxTime)
	}
}
