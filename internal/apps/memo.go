package apps

import "sync"

// SeqMemo caches sequential reference results across workload instances.
// Every Sequential() in this tree is a pure function of the app's Config
// (deterministic initialization, no other inputs), yet the harness
// builds a fresh workload instance per experiment cell — so a sweep
// re-verifying the same app × dataset × procs across 24 network ×
// protocol cells used to recompute the identical reference 24 times
// (TSP's exhaustive search alone was ~20% of a -networks sweep).
// Keyed by the app's rendered Config; compute runs once per key.
//
// Returned values are shared across goroutines: callers must treat them
// as read-only, which every Check in this tree already does (they only
// compare elements).
type SeqMemo[T any] struct {
	mu sync.Mutex
	m  map[string]*memoEntry[T]
}

type memoEntry[T any] struct {
	once sync.Once
	v    T
}

// Get returns the memoized value for key, running compute exactly once
// per key (concurrent callers of the same key share one computation
// without serializing other keys).
func (s *SeqMemo[T]) Get(key string, compute func() T) T {
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[string]*memoEntry[T])
	}
	e, ok := s.m[key]
	if !ok {
		e = &memoEntry[T]{}
		s.m[key] = e
	}
	s.mu.Unlock()
	e.once.Do(func() { e.v = compute() })
	return e.v
}
