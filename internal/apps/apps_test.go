package apps

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/tmk"
)

func TestBandBalanced(t *testing.T) {
	// 10 items over 4 procs: 3,3,2,2.
	want := [][2]int{{0, 3}, {3, 6}, {6, 8}, {8, 10}}
	for p, w := range want {
		lo, hi := Band(10, 4, p)
		if lo != w[0] || hi != w[1] {
			t.Fatalf("Band(10,4,%d) = [%d,%d), want [%d,%d)", p, lo, hi, w[0], w[1])
		}
	}
}

func TestBandCoversExactly(t *testing.T) {
	for _, n := range []int{1, 7, 8, 9, 64, 100} {
		for _, procs := range []int{1, 3, 8} {
			covered := 0
			prev := 0
			for p := 0; p < procs; p++ {
				lo, hi := Band(n, procs, p)
				if lo != prev {
					t.Fatalf("Band(%d,%d,%d): gap at %d", n, procs, p, lo)
				}
				if hi < lo {
					t.Fatalf("Band(%d,%d,%d): negative range", n, procs, p)
				}
				covered += hi - lo
				prev = hi
			}
			if covered != n {
				t.Fatalf("Band(%d,%d): covered %d", n, procs, covered)
			}
		}
	}
}

func TestCheckClose(t *testing.T) {
	if err := CheckClose("x", 1.0, 1.0+1e-12, 1e-9); err != nil {
		t.Fatalf("tight match rejected: %v", err)
	}
	if err := CheckClose("x", 1.0, 1.1, 1e-9); err == nil {
		t.Fatal("gross mismatch accepted")
	}
	// Relative scaling: large values tolerate proportionally more.
	if err := CheckClose("x", 1e12, 1e12+1, 1e-9); err != nil {
		t.Fatalf("relative tolerance wrong: %v", err)
	}
	// Small-magnitude values use an absolute floor of 1.
	if err := CheckClose("x", 0, 1e-10, 1e-9); err != nil {
		t.Fatalf("absolute floor wrong: %v", err)
	}
}

func TestArrAddressing(t *testing.T) {
	a := Arr{Base: 4096}
	if a.At(0) != 4096 || a.At(3) != 4096+24 {
		t.Fatal("Arr.At")
	}
}

func TestLocalMemRoundTrip(t *testing.T) {
	m := NewLocalMem(mem.PageSize)
	m.WriteF64(8, 2.5)
	m.WriteI64(16, -7)
	if m.ReadF64(8) != 2.5 || m.ReadI64(16) != -7 {
		t.Fatal("LocalMem round trip")
	}
	m.Compute(100) // must be a no-op
	if m.ReadF64(8) != 2.5 {
		t.Fatal("Compute must not disturb memory")
	}
}

// A context canceled partway through a cell's trials must stop the
// remaining trials and report how far it got; a pre-canceled context
// runs none.
func TestRunTrialsContextCanceled(t *testing.T) {
	e, ok := Lookup("jacobi", "small")
	if !ok {
		t.Fatal("jacobi/small not registered")
	}
	wl := e.Make(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunTrialsContext(ctx, wl, tmk.Config{Procs: 2}, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunTrialsContext error = %v, want context.Canceled", err)
	}
	if want := "canceled after 0/3 trials"; err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not report trial progress %q", err, want)
	}
	// The plain path still runs the cell.
	sum, err := RunTrials(wl, tmk.Config{Procs: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Trials) != 2 {
		t.Fatalf("trials = %d, want 2", len(sum.Trials))
	}
}
