package water

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/tmk"
)

func small() Config { return Config{Molecules: 96, Steps: 2, Procs: 8} }

func mustRun(t *testing.T, c Config, ec tmk.Config) *tmk.Result {
	t.Helper()
	a := New(c)
	res, err := apps.Run(a, ec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCorrectAtEveryUnitSize(t *testing.T) {
	for _, up := range []int{1, 2, 4} {
		if _, err := apps.Run(New(small()), tmk.Config{Procs: 8, UnitPages: up, Collect: true}); err != nil {
			t.Fatalf("unit=%d: %v", up, err)
		}
	}
}

func TestCorrectWithDynamicAggregation(t *testing.T) {
	if _, err := apps.Run(New(small()), tmk.Config{Procs: 8, Dynamic: true, Collect: true}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrectSingleProc(t *testing.T) {
	c := Config{Molecules: 32, Steps: 2, Procs: 1}
	if _, err := apps.Run(New(c), tmk.Config{Procs: 1, Collect: true}); err != nil {
		t.Fatal(err)
	}
}

// Paper §5.5: Water mixes write-write false sharing with extensive true
// sharing (each processor reads half the array), so piggybacked useless
// data (private molecule fields) is substantial. Our lock-phase force
// accumulation produces a higher useless-message fraction than the
// paper's (see EXPERIMENTS.md), but it must stay below half.
func TestSharingShape(t *testing.T) {
	res := mustRun(t, small(), tmk.Config{Procs: 8, UnitPages: 1, Collect: true})
	if res.Stats.PiggybackedBytes == 0 {
		t.Fatal("expected piggybacked useless data (private molecule fields)")
	}
	if res.Stats.Messages.Useless > res.Stats.Messages.Total()/2 {
		t.Fatalf("useless = %d of %d, want < half",
			res.Stats.Messages.Useless, res.Stats.Messages.Total())
	}
}

// Larger units increase Water's useless data ("slight increase in the
// number of useless messages when going to larger consistency units"),
// and dynamic aggregation stays within a few percent of the 4 KB page.
func TestUnitSizeEffects(t *testing.T) {
	r4 := mustRun(t, small(), tmk.Config{Procs: 8, UnitPages: 1, Collect: true})
	r16 := mustRun(t, small(), tmk.Config{Procs: 8, UnitPages: 4, Collect: true})
	rd := mustRun(t, small(), tmk.Config{Procs: 8, Dynamic: true, Collect: true})
	if r16.Stats.UselessBytes <= r4.Stats.UselessBytes {
		t.Fatalf("useless bytes: 4K=%d 16K=%d, want growth",
			r4.Stats.UselessBytes, r16.Stats.UselessBytes)
	}
	if ratio := float64(rd.Time) / float64(r4.Time); ratio > 1.10 {
		t.Fatalf("dynamic/4K time ratio = %.3f, want <= 1.10", ratio)
	}
}

func TestNames(t *testing.T) {
	a := New(small())
	if a.Name() != "Water" || a.Dataset() != "96" || a.Locks() != 96 {
		t.Fatal("identity")
	}
	if a.Check() == nil {
		t.Fatal("Check before run must fail")
	}
}
