package water

import "repro/internal/apps"

// The paper dataset (input-size independent, Figure 1) and a
// small/medium/large sweep.
func init() {
	reg := func(dataset, paper string, cfg Config) {
		apps.Register(apps.Entry{
			App: "Water", Dataset: dataset, Paper: paper,
			// Per-molecule force locks: whether a re-acquire hits the
			// lock cache depends on wall-clock grant interleaving, so
			// message counts wobble (rarely) between runs. Not
			// replay-derivable.
			ScheduleSensitive: true,
			Make: func(procs int) apps.Workload {
				c := cfg
				c.Procs = procs
				return New(c)
			},
		})
	}
	reg("96", "343 molecules", Config{Molecules: 96, Steps: 2})
	reg("small", "", Config{Molecules: 48, Steps: 2})
	reg("medium", "", Config{Molecules: 96, Steps: 2})
	reg("large", "", Config{Molecules: 192, Steps: 2})
}
