// Package water implements the paper's Water application (SPLASH): a
// molecular-dynamics simulation computing intra- and inter-molecular
// forces with an O(n²/2) interaction pattern and a cut-off radius.
//
// Sharing pattern (§5.5): the molecule array is contiguous and block-
// partitioned; a lock protects each molecule's force accumulator.
// Write-write false sharing occurs at the block boundaries during the
// intra-molecular phase (useless messages: a processor receives the
// preceding neighbour's molecule data it never reads). In the
// inter-molecular phase each processor reads the n/2 molecules following
// its own, wrap-around — fine-grained reads over half the array, so
// aggregation is beneficial. Private per-molecule state (velocities and
// intra-molecular scratch) travels as piggybacked useless data.
//
// Lock-ordered force accumulation makes floating-point sums order-
// dependent, so verification uses a small relative tolerance.
package water

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/mem"
	"repro/internal/tmk"
)

// seqMemo shares the sequential reference across workload instances of
// the same configuration (see apps.SeqMemo); Check treats the returned
// slice as read-only.
var seqMemo apps.SeqMemo[[]float64]

// Molecule layout: 16 words.
const (
	mX = iota
	mY
	mZ
	mVX // private to the owner
	mVY
	mVZ
	mFX // force accumulator, lock-protected
	mFY
	mFZ
	mScratch0 // intra-molecular private state (owner-only)
	mScratch1
	mScratch2
	mScratch3
	mScratch4
	mScratch5
	mScratch6
	molWords
)

// Config selects the dataset.
type Config struct {
	Molecules int
	Steps     int
	Procs     int
}

// App is one Water instance.
type App struct {
	cfg  Config
	mols apps.Arr
	out  []float64
}

// New returns a Water workload.
func New(cfg Config) *App {
	if cfg.Steps <= 0 {
		cfg.Steps = 2
	}
	return &App{cfg: cfg}
}

// Name implements apps.Workload.
func (a *App) Name() string { return "Water" }

// Dataset implements apps.Workload.
func (a *App) Dataset() string { return fmt.Sprintf("%d", a.cfg.Molecules) }

// SegmentBytes implements apps.Workload.
func (a *App) SegmentBytes() int {
	return mem.RoundUpPages(a.cfg.Molecules*molWords*mem.WordSize) + mem.PageSize
}

// Locks implements apps.Workload: one per molecule.
func (a *App) Locks() int { return a.cfg.Molecules }

// Prepare implements apps.Workload.
func (a *App) Prepare(sys *tmk.System) {
	a.mols = apps.Arr{Base: sys.AllocPages(
		mem.RoundUpPages(a.cfg.Molecules*molWords*mem.WordSize) / mem.PageSize)}
}

func (a *App) mol(i, f int) mem.Addr { return a.mols.At(i*molWords + f) }

func initPos(i int) (x, y, z float64) {
	h := func(mult, mod int) float64 {
		return float64((i*mult+7)%mod) / float64(mod)
	}
	return h(97, 251), h(131, 257), h(173, 263)
}

// pairForce is the (deterministic, cut-off) interaction force on
// molecule i from molecule j.
func pairForce(xi, yi, zi, xj, yj, zj float64) (fx, fy, fz float64) {
	const cutoff2 = 0.25
	dx, dy, dz := xj-xi, yj-yi, zj-zi
	d2 := dx*dx + dy*dy + dz*dz
	if d2 >= cutoff2 || d2 == 0 {
		return 0, 0, 0
	}
	k := 1.0/(d2+0.01) - 1.0/(cutoff2+0.01)
	return k * dx, k * dy, k * dz
}

// Body implements apps.Workload.
func (a *App) Body(p *tmk.Proc) {
	n, P := a.cfg.Molecules, p.NProcs()
	lo, hi := apps.Band(n, P, p.ID())

	// Owners initialize their block.
	for i := lo; i < hi; i++ {
		x, y, z := initPos(i)
		p.WriteF64(a.mol(i, mX), x)
		p.WriteF64(a.mol(i, mY), y)
		p.WriteF64(a.mol(i, mZ), z)
	}
	p.Barrier()

	for step := 0; step < a.cfg.Steps; step++ {
		// Intra-molecular phase: update private per-molecule state,
		// writing the whole molecule record (the boundary-page
		// write-write false sharing of §5.5).
		for i := lo; i < hi; i++ {
			x := p.ReadF64(a.mol(i, mX))
			y := p.ReadF64(a.mol(i, mY))
			z := p.ReadF64(a.mol(i, mZ))
			for s := 0; s < 7; s++ {
				p.WriteF64(a.mol(i, mScratch0+s),
					x*float64(s+1)+y-z*float64(step+1))
			}
		}
		p.Barrier()

		// Inter-molecular phase: each processor interacts its molecules
		// with the n/2 following molecules (wrap-around), accumulating
		// into a private buffer first and applying each molecule's total
		// under that molecule's lock — the SPLASH structure (one lock
		// acquisition per touched molecule per step, not per pair).
		acc := make([]float64, 3*n)
		touched := make([]bool, n)
		for i := lo; i < hi; i++ {
			xi := p.ReadF64(a.mol(i, mX))
			yi := p.ReadF64(a.mol(i, mY))
			zi := p.ReadF64(a.mol(i, mZ))
			for d := 1; d <= n/2; d++ {
				j := (i + d) % n
				fx, fy, fz := pairForce(xi, yi, zi,
					p.ReadF64(a.mol(j, mX)),
					p.ReadF64(a.mol(j, mY)),
					p.ReadF64(a.mol(j, mZ)))
				p.Compute(1500) // per-pair site-site force arithmetic (9 site pairs)
				if fx == 0 && fy == 0 && fz == 0 {
					continue
				}
				acc[3*i] += fx
				acc[3*i+1] += fy
				acc[3*i+2] += fz
				acc[3*j] -= fx
				acc[3*j+1] -= fy
				acc[3*j+2] -= fz
				touched[i] = true
				touched[j] = true
			}
		}
		for j := 0; j < n; j++ {
			if !touched[j] {
				continue
			}
			p.Lock(j)
			p.WriteF64(a.mol(j, mFX), p.ReadF64(a.mol(j, mFX))+acc[3*j])
			p.WriteF64(a.mol(j, mFY), p.ReadF64(a.mol(j, mFY))+acc[3*j+1])
			p.WriteF64(a.mol(j, mFZ), p.ReadF64(a.mol(j, mFZ))+acc[3*j+2])
			p.Unlock(j)
		}
		p.Barrier()

		// Integration: owners advance their molecules and clear forces.
		const dt = 0.002
		for i := lo; i < hi; i++ {
			vx := p.ReadF64(a.mol(i, mVX)) + dt*p.ReadF64(a.mol(i, mFX))
			vy := p.ReadF64(a.mol(i, mVY)) + dt*p.ReadF64(a.mol(i, mFY))
			vz := p.ReadF64(a.mol(i, mVZ)) + dt*p.ReadF64(a.mol(i, mFZ))
			p.WriteF64(a.mol(i, mVX), vx)
			p.WriteF64(a.mol(i, mVY), vy)
			p.WriteF64(a.mol(i, mVZ), vz)
			p.WriteF64(a.mol(i, mX), p.ReadF64(a.mol(i, mX))+dt*vx)
			p.WriteF64(a.mol(i, mY), p.ReadF64(a.mol(i, mY))+dt*vy)
			p.WriteF64(a.mol(i, mZ), p.ReadF64(a.mol(i, mZ))+dt*vz)
			p.WriteF64(a.mol(i, mFX), 0)
			p.WriteF64(a.mol(i, mFY), 0)
			p.WriteF64(a.mol(i, mFZ), 0)
		}
		p.Barrier()
	}

	if p.ID() == 0 {
		a.out = make([]float64, 0, 3*n)
		for i := 0; i < n; i++ {
			a.out = append(a.out,
				p.ReadF64(a.mol(i, mX)),
				p.ReadF64(a.mol(i, mY)),
				p.ReadF64(a.mol(i, mZ)))
		}
	}
}

// Sequential computes the reference trajectory in plain Go (canonical
// i-ascending accumulation order).
func (a *App) Sequential() []float64 {
	n := a.cfg.Molecules
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	vx := make([]float64, n)
	vy := make([]float64, n)
	vz := make([]float64, n)
	fx := make([]float64, n)
	fy := make([]float64, n)
	fz := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i], y[i], z[i] = initPos(i)
	}
	const dt = 0.002
	for step := 0; step < a.cfg.Steps; step++ {
		for i := 0; i < n; i++ {
			for d := 1; d <= n/2; d++ {
				j := (i + d) % n
				gx, gy, gz := pairForce(x[i], y[i], z[i], x[j], y[j], z[j])
				fx[i] += gx
				fy[i] += gy
				fz[i] += gz
				fx[j] -= gx
				fy[j] -= gy
				fz[j] -= gz
			}
		}
		for i := 0; i < n; i++ {
			vx[i] += dt * fx[i]
			vy[i] += dt * fy[i]
			vz[i] += dt * fz[i]
			x[i] += dt * vx[i]
			y[i] += dt * vy[i]
			z[i] += dt * vz[i]
			fx[i], fy[i], fz[i] = 0, 0, 0
		}
	}
	out := make([]float64, 0, 3*n)
	for i := 0; i < n; i++ {
		out = append(out, x[i], y[i], z[i])
	}
	return out
}

// Check implements apps.Workload. Lock-order-dependent FP accumulation
// means bitwise equality cannot be expected; positions must match the
// reference within a tight relative tolerance.
func (a *App) Check() error {
	if a.out == nil {
		return fmt.Errorf("water: no output captured")
	}
	want := seqMemo.Get(fmt.Sprintf("%+v", a.cfg), a.Sequential)
	for i := range want {
		if err := apps.CheckClose(fmt.Sprintf("water: coord %d", i),
			a.out[i], want[i], 1e-9); err != nil {
			return err
		}
	}
	return nil
}
