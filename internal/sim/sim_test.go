package sim

import (
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock = %v, want 0", c.Now())
	}
	c.Advance(5 * Microsecond)
	c.Advance(3 * Microsecond)
	if got := c.Now(); got != 8*Microsecond {
		t.Fatalf("Now = %v, want 8µs", got)
	}
}

func TestClockAdvanceNegativeIgnored(t *testing.T) {
	var c Clock
	c.Advance(10 * Microsecond)
	c.Advance(-4 * Microsecond)
	if got := c.Now(); got != 10*Microsecond {
		t.Fatalf("Now = %v, want 10µs (negative charge must be ignored)", got)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	var c Clock
	c.Advance(10 * Microsecond)
	c.AdvanceTo(5 * Microsecond) // backward: no-op
	if got := c.Now(); got != 10*Microsecond {
		t.Fatalf("AdvanceTo moved clock backward: %v", got)
	}
	c.AdvanceTo(25 * Microsecond)
	if got := c.Now(); got != 25*Microsecond {
		t.Fatalf("AdvanceTo = %v, want 25µs", got)
	}
}

func TestMeet(t *testing.T) {
	if got := Meet(3*Microsecond, 7*Microsecond); got != 7*Microsecond {
		t.Fatalf("Meet = %v, want 7µs", got)
	}
	if got := Meet(7*Microsecond, 3*Microsecond); got != 7*Microsecond {
		t.Fatalf("Meet = %v, want 7µs", got)
	}
}

func TestMaxClock(t *testing.T) {
	if got := MaxClock(); got != 0 {
		t.Fatalf("MaxClock() = %v, want 0", got)
	}
	if got := MaxClock(1, 9, 4); got != 9 {
		t.Fatalf("MaxClock = %v, want 9", got)
	}
}

func TestDefaultCostModelMatchesPaperRTT(t *testing.T) {
	m := DefaultCostModel()
	// Paper §5.1: 1-byte UDP round trip = 296 µs.
	rtt := m.RoundTrip(1, 0)
	lo, hi := 295*Microsecond, 297*Microsecond
	if rtt < lo || rtt > hi {
		t.Fatalf("1-byte RTT = %v, want ~296µs", rtt)
	}
}

func TestDefaultCostModelBandwidth(t *testing.T) {
	m := DefaultCostModel()
	// 100 Mbps = 80 ns per byte.
	d := m.RoundTrip(0, 4096) - m.RoundTrip(0, 0)
	want := Duration(4096) * 80 * Nanosecond
	if d != want {
		t.Fatalf("4096-byte payload cost = %v, want %v", d, want)
	}
}

func TestDefaultCostModelDiffFetchInPaperRange(t *testing.T) {
	m := DefaultCostModel()
	// Paper §5.1: diff fetch 579–1746 µs. A diff fetch is
	// fault + request/reply round trip + remote service + diff encode
	// (in our engine diffs are pre-encoded, but the cost is charged).
	small := m.PageFault + m.RoundTrip(64, 512) + m.RequestService
	large := m.PageFault + m.RoundTrip(64, 3*4096) + m.RequestService + 2*m.DiffPerPage
	if small < 300*Microsecond || small > 800*Microsecond {
		t.Errorf("small diff fetch = %v, want within a plausible 300–800µs", small)
	}
	if large < 800*Microsecond || large > 2000*Microsecond {
		t.Errorf("large diff fetch = %v, want within a plausible 0.8–2ms", large)
	}
}

func TestRoundTripMonotonicInBytes(t *testing.T) {
	m := DefaultCostModel()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.RoundTrip(0, x) <= m.RoundTrip(0, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFormatSeconds(t *testing.T) {
	if got := FormatSeconds(1500 * Millisecond); got != "1.500" {
		t.Fatalf("FormatSeconds = %q, want %q", got, "1.500")
	}
}
