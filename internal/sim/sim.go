// Package sim provides the simulated-time substrate for the DSM
// reproduction: per-processor virtual clocks and the communication cost
// model calibrated to the paper's §5.1 platform microbenchmarks
// (8×166 MHz Pentium, 100 Mbps switched Ethernet, UDP/IP).
//
// All protocol work in this repository is real (messages, diffs, write
// notices are actually produced and consumed); only *time* is simulated.
// Each processor owns a Clock; protocol actions charge calibrated costs to
// it, and the run's "execution time" is the maximum clock value at the end.
package sim

import (
	"fmt"
	"time"
)

// Duration is simulated time. It uses the same representation as
// time.Duration so costs read naturally (e.g. 296 * sim.Microsecond).
type Duration = time.Duration

// Convenience re-exports so callers need not import time for literals.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// CostModel holds the calibrated costs of the simulated platform. The
// defaults reproduce the paper's §5.1 microbenchmark table:
//
//	1-byte UDP round trip     296 µs
//	lock acquisition          374–574 µs
//	8-processor barrier       861 µs
//	diff fetch                579–1746 µs
//
// The derived per-leg and per-byte constants below regenerate those
// figures; see BenchmarkMicro* at the repository root.
type CostModel struct {
	// MessageLeg is the fixed cost of one message traversal (send
	// overhead + wire + receive overhead), excluding payload bytes.
	// A minimal round trip is 2*MessageLeg.
	MessageLeg Duration

	// PerByte is the incremental cost of each payload byte
	// (100 Mbps = 12.5 MB/s ⇒ 80 ns/byte).
	PerByte Duration

	// RequestService is the fixed remote-side cost of servicing a
	// request (interrupt, lookup) before the reply is sent.
	RequestService Duration

	// PageFault is the cost of fielding an access fault (trap + handler
	// entry), charged on every fault whether or not data is fetched.
	PageFault Duration

	// ProtOp is the cost of one memory-protection change
	// (mprotect-equivalent) on the simulated VM.
	ProtOp Duration

	// TwinPerPage is the cost of copying one 4 KB page to make a twin.
	TwinPerPage Duration

	// DiffPerPage is the cost of comparing one page against its twin to
	// encode a diff.
	DiffPerPage Duration

	// ApplyPerWord is the cost of applying one diffed word to a replica.
	ApplyPerWord Duration

	// BarrierManager is the manager-side aggregation cost of a barrier,
	// charged once per barrier on top of the message legs.
	BarrierManager Duration

	// LockService is the manager/holder-side cost of a lock grant.
	LockService Duration

	// MemAccess is the per-shared-access compute charge used by the
	// applications (fault-free loads/stores). It stands in for the
	// application compute the paper measured on the 166 MHz Pentiums.
	MemAccess Duration
}

// DefaultCostModel returns the model calibrated to the paper's platform.
func DefaultCostModel() CostModel {
	return CostModel{
		MessageLeg:     148 * Microsecond, // 2 legs = 296 µs 1-byte RTT
		PerByte:        80 * Nanosecond,   // 100 Mbps
		RequestService: 30 * Microsecond,
		PageFault:      25 * Microsecond,
		ProtOp:         10 * Microsecond,
		TwinPerPage:    20 * Microsecond,
		DiffPerPage:    60 * Microsecond,
		ApplyPerWord:   25 * Nanosecond,
		BarrierManager: 325 * Microsecond, // 296 (legs) + 325 + 8×30 (arrival service) = 861 µs

		LockService: 40 * Microsecond,
		MemAccess:   60 * Nanosecond,
	}
}

// RoundTrip returns the cost of a request/reply exchange carrying the
// given payload sizes, excluding remote service time.
func (c CostModel) RoundTrip(requestBytes, replyBytes int) Duration {
	return 2*c.MessageLeg +
		Duration(requestBytes+replyBytes)*c.PerByte
}

// Clock is one processor's virtual clock. It is owned by a single
// goroutine; cross-processor synchronization merges clocks explicitly
// (see Meet), mirroring how simulated time flows along messages.
type Clock struct {
	now Duration
}

// Now returns the current virtual time.
func (c *Clock) Now() Duration { return c.now }

// Advance charges d to the clock. Negative charges are ignored so cost
// arithmetic in callers need not special-case zero-byte payloads.
func (c *Clock) Advance(d Duration) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock forward to at least t (never backward).
func (c *Clock) AdvanceTo(t Duration) {
	if t > c.now {
		c.now = t
	}
}

// Meet returns the later of the two clock values; synchronization points
// (barrier departure, lock hand-off) set both parties to the meet.
func Meet(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// MaxClock returns the maximum of the given times; a run's execution time
// is MaxClock over all processors' final clocks.
func MaxClock(ts ...Duration) Duration {
	var m Duration
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}

// FormatSeconds renders a simulated duration as seconds with millisecond
// resolution, the unit the paper's tables use.
func FormatSeconds(d Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}
