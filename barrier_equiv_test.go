//go:build !race

// Equivalence tests for the scaling representations introduced with the
// sparse-clock work: the sparse engine mode must be observationally
// identical to the dense reference (same messages, bytes, simulated
// time), and every tree-barrier radix must leave the protocol in the
// same state as the centralized golden fabric (same per-episode merged
// vector times, same faults/twins/diffs/intervals, same application
// results) even though its message fabric — and therefore its timing —
// differs by design.
//
// Excluded under the race detector for the same reason as the golden
// tests: TSP's counts depend on deterministic lock hand-off order.

package dsm

import (
	"testing"

	"repro/internal/apps"
	_ "repro/internal/apps/all" // populate the workload registry
	"repro/internal/tmk"
	"repro/internal/vc"
)

// runLogged runs one workload cell and returns the result plus a deep
// copy of the barrier log (the System is rebuilt per call, but copying
// keeps the comparison independent of engine internals).
func runLogged(t *testing.T, app, dataset string, procs int, cfg tmk.Config) (*tmk.Result, []vc.Time) {
	t.Helper()
	e, ok := apps.Lookup(app, dataset)
	if !ok {
		t.Fatalf("%s/%s not registered", app, dataset)
	}
	w := e.Make(procs)
	cfg.Procs = procs
	cfg.Collect = true
	sys, err := apps.NewSystem(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run(w.Body)
	if err := w.Check(); err != nil {
		t.Fatalf("%s/%s check: %v", app, dataset, err)
	}
	log := make([]vc.Time, len(sys.BarrierLog()))
	for i, vt := range sys.BarrierLog() {
		log[i] = vt.Clone()
	}
	return res, log
}

// TestScaleModesEquivalent pins the tentpole's substitution claim: the
// sparse representation (epoch-relative stamps, deviation-driven deltas,
// lazy replicas) reproduces the dense reference bit-for-bit — message
// counts, wire bytes, and simulated time — across the static protocols
// and the adaptive configuration.
func TestScaleModesEquivalent(t *testing.T) {
	cells := []struct {
		app, dataset, protocol string
	}{
		{"Jacobi", "small", "homeless"},
		{"Jacobi", "small", "home"},
		{"Jacobi", "small", "adaptive"},
		{"TSP", "small", "homeless"},
		{"TSP", "small", "home"},
		// Storm at 64 procs drives the fault-time missing-write
		// reconstruction (notices.go) through every episode: the sparse
		// engine keeps no per-unit acquire state at all, so this cell
		// pins that the rebuilt lists reproduce the dense wire exactly.
		{"Storm", "small", "homeless"},
		{"Storm", "small", "home"},
	}
	for _, c := range cells {
		c := c
		procs := 8
		if c.app == "Storm" {
			procs = 64
		}
		t.Run(c.app+"/"+c.protocol, func(t *testing.T) {
			dense, denseLog := runLogged(t, c.app, c.dataset, procs,
				tmk.Config{UnitPages: 1, Protocol: c.protocol, Scale: tmk.ScaleDense})
			sparse, sparseLog := runLogged(t, c.app, c.dataset, procs,
				tmk.Config{UnitPages: 1, Protocol: c.protocol, Scale: tmk.ScaleSparse})
			if sparse.Messages != dense.Messages || sparse.Bytes != dense.Bytes {
				t.Errorf("wire totals differ: sparse %d msgs/%d B, dense %d msgs/%d B",
					sparse.Messages, sparse.Bytes, dense.Messages, dense.Bytes)
			}
			if sparse.Time != dense.Time {
				t.Errorf("simulated time differs: sparse %v, dense %v", sparse.Time, dense.Time)
			}
			if sparse.Faults != dense.Faults || sparse.Intervals != dense.Intervals ||
				sparse.DiffsEncoded != dense.DiffsEncoded {
				t.Errorf("engine events differ: sparse %d/%d/%d, dense %d/%d/%d",
					sparse.Faults, sparse.Intervals, sparse.DiffsEncoded,
					dense.Faults, dense.Intervals, dense.DiffsEncoded)
			}
			compareBarrierLogs(t, denseLog, sparseLog)
		})
	}
}

// TestTreeBarrierEquivalence pins the tree fabric against the
// centralized golden reference: for radices 2, 4, and 8 the per-episode
// merged vector times and the protocol's event counts must match
// exactly — the fabric changes who carries which message, never what
// the barrier means.
func TestTreeBarrierEquivalence(t *testing.T) {
	cells := []struct {
		app, dataset string
		procs        int
	}{
		{"Jacobi", "small", 8},
		{"Jacobi", "small", 64},
		{"TSP", "small", 8},
	}
	for _, c := range cells {
		c := c
		t.Run(c.app, func(t *testing.T) {
			central, centralLog := runLogged(t, c.app, c.dataset, c.procs,
				tmk.Config{UnitPages: 1, Barrier: "central"})
			if len(centralLog) == 0 {
				t.Fatal("no barrier episodes recorded under Collect")
			}
			for _, radix := range []int{2, 4, 8} {
				tree, treeLog := runLogged(t, c.app, c.dataset, c.procs,
					tmk.Config{UnitPages: 1, Barrier: "tree", BarrierRadix: radix})
				compareBarrierLogs(t, centralLog, treeLog)
				if tree.Faults != central.Faults || tree.Twins != central.Twins ||
					tree.Intervals != central.Intervals || tree.DiffsEncoded != central.DiffsEncoded {
					t.Errorf("radix %d: engine events differ: tree %d/%d/%d/%d, central %d/%d/%d/%d",
						radix, tree.Faults, tree.Twins, tree.Intervals, tree.DiffsEncoded,
						central.Faults, central.Twins, central.Intervals, central.DiffsEncoded)
				}
				// 2(n-1) barrier legs per episode vs the centralized 2n.
				legsPerEpisode := 2 * (c.procs - 1)
				if wantFewer := 2 * c.procs; legsPerEpisode >= wantFewer && c.procs > 1 {
					t.Fatalf("tree fabric must use fewer legs (%d vs %d)", legsPerEpisode, wantFewer)
				}
				if tree.Messages >= central.Messages && c.procs > 1 && c.app == "Jacobi" {
					t.Errorf("radix %d: tree sent %d messages, central %d — expected fewer barrier legs",
						radix, tree.Messages, central.Messages)
				}
			}
		})
	}
}

func compareBarrierLogs(t *testing.T, want, got []vc.Time) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("barrier episode count differs: want %d, got %d", len(want), len(got))
		return
	}
	for i := range want {
		if !want[i].Equal(got[i]) {
			t.Errorf("episode %d merged time differs: want %v, got %v", i+1, want[i], got[i])
			return
		}
	}
}
