//go:build !race

// Golden-count regression tests for the protocol-layer refactor: the
// homeless protocol must reproduce the pre-refactor engine's message
// and byte counts exactly (values recorded from `dsmrun -json` at
// commit 60f6268, before the Protocol interface was extracted).
//
// Excluded under the race detector: the TSP counts depend on lock
// hand-off order, which is deterministic in normal runs but perturbed
// by -race instrumentation (see the TrialSummary doc in internal/tmk).

package dsm

import (
	"testing"

	"repro/internal/apps"
	_ "repro/internal/apps/all" // populate the workload registry
	"repro/internal/sim"
	"repro/internal/tmk"
)

func TestHomelessGoldenCounts(t *testing.T) {
	goldens := []struct {
		app, dataset string
		messages     int
		bytes        int
		time         sim.Duration // 0 = not asserted
	}{
		// dsmrun -app jacobi -dataset small -json @ 60f6268
		{"Jacobi", "small", 294, 500952, 46004895 * sim.Nanosecond},
		// dsmrun -app tsp -dataset small -json @ 60f6268
		{"TSP", "small", 94, 45116, 0},
	}
	for _, g := range goldens {
		g := g
		t.Run(g.app, func(t *testing.T) {
			e, ok := apps.Lookup(g.app, g.dataset)
			if !ok {
				t.Fatalf("%s/%s not registered", g.app, g.dataset)
			}
			res, err := apps.Run(e.Make(8), tmk.Config{
				Procs: 8, UnitPages: 1, Protocol: "homeless", Collect: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Messages != g.messages {
				t.Errorf("messages = %d, want pre-refactor %d", res.Messages, g.messages)
			}
			if res.Bytes != g.bytes {
				t.Errorf("bytes = %d, want pre-refactor %d", res.Bytes, g.bytes)
			}
			if g.time != 0 && res.Time != g.time {
				t.Errorf("time = %v, want pre-refactor %v", res.Time, g.time)
			}
		})
	}
}
