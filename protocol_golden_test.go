//go:build !race

// Golden-count regression tests for the protocol- and placement-layer
// refactors: the homeless protocol must reproduce the pre-refactor
// engine's message and byte counts exactly (values recorded from
// `dsmrun -json` at commit 60f6268, before the Protocol interface was
// extracted), and the home protocol under the default round-robin
// placement must reproduce the pre-placement-layer counts exactly
// (values recorded at commit feb88a8, before homeOf moved behind the
// Placement policy).
//
// Excluded under the race detector: the TSP counts depend on lock
// hand-off order, which is deterministic in normal runs but perturbed
// by -race instrumentation (see the TrialSummary doc in internal/tmk).

package dsm

import (
	"testing"

	"repro/internal/apps"
	_ "repro/internal/apps/all" // populate the workload registry
	"repro/internal/sim"
	"repro/internal/tmk"
)

func TestHomelessGoldenCounts(t *testing.T) {
	goldens := []struct {
		app, dataset string
		messages     int
		bytes        int
		time         sim.Duration // 0 = not asserted
	}{
		// dsmrun -app jacobi -dataset small -json @ 60f6268
		{"Jacobi", "small", 294, 500952, 46004895 * sim.Nanosecond},
		// dsmrun -app tsp -dataset small -json @ 60f6268
		{"TSP", "small", 94, 45116, 0},
	}
	for _, g := range goldens {
		g := g
		t.Run(g.app, func(t *testing.T) {
			e, ok := apps.Lookup(g.app, g.dataset)
			if !ok {
				t.Fatalf("%s/%s not registered", g.app, g.dataset)
			}
			res, err := apps.Run(e.Make(8), tmk.Config{
				Procs: 8, UnitPages: 1, Protocol: "homeless", Collect: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Messages != g.messages {
				t.Errorf("messages = %d, want pre-refactor %d", res.Messages, g.messages)
			}
			if res.Bytes != g.bytes {
				t.Errorf("bytes = %d, want pre-refactor %d", res.Bytes, g.bytes)
			}
			if g.time != 0 && res.Time != g.time {
				t.Errorf("time = %v, want pre-refactor %v", res.Time, g.time)
			}
		})
	}
}

func TestHomeRRGoldenCounts(t *testing.T) {
	goldens := []struct {
		app, dataset string
		messages     int
		bytes        int
		time         sim.Duration // 0 = not asserted
	}{
		// dsmrun -app jacobi -dataset small -protocol home -json @ feb88a8
		{"Jacobi", "small", 307, 848112, 67212680 * sim.Nanosecond},
		// dsmrun -app tsp -dataset small -protocol home -json @ feb88a8
		{"TSP", "small", 161, 78904, 0},
	}
	for _, g := range goldens {
		g := g
		t.Run(g.app, func(t *testing.T) {
			e, ok := apps.Lookup(g.app, g.dataset)
			if !ok {
				t.Fatalf("%s/%s not registered", g.app, g.dataset)
			}
			res, err := apps.Run(e.Make(8), tmk.Config{
				Procs: 8, UnitPages: 1, Protocol: "home", Placement: "rr", Collect: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Messages != g.messages {
				t.Errorf("messages = %d, want pre-placement-layer %d", res.Messages, g.messages)
			}
			if res.Bytes != g.bytes {
				t.Errorf("bytes = %d, want pre-placement-layer %d", res.Bytes, g.bytes)
			}
			if g.time != 0 && res.Time != g.time {
				t.Errorf("time = %v, want pre-placement-layer %v", res.Time, g.time)
			}
			if res.Rehomes != 0 || res.RehomeBytes != 0 {
				t.Errorf("rr placement rehomed: %d moves, %d bytes", res.Rehomes, res.RehomeBytes)
			}
		})
	}
}
