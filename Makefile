# Convenience targets; CI runs the same commands.

GO ?= go

.PHONY: all test vet bench bench-check networks placements serve loadtest docker

all: test

test:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

# bench regenerates the perf-trajectory baseline: every application's
# small dataset under the default configuration (4 KB units, homeless,
# ideal network). Commit the refreshed BENCH_baseline.json whenever a
# PR intentionally moves these numbers.
bench:
	$(GO) run ./cmd/dsmbench -baseline -json > BENCH_baseline.json

# bench-check is the regression gate: re-run the baseline suite and fail
# on >2% simulated-time drift against the committed file (the ideal
# network is deterministic, so drift is a real engine change). CI runs
# this on every push.
bench-check:
	$(GO) run ./cmd/dsmbench -check-baseline BENCH_baseline.json

# networks prints the interconnect sensitivity sweep.
networks:
	$(GO) run ./cmd/dsmbench -networks

# placements prints the home-placement comparison (home & adaptive on
# ideal and bus, every registered policy).
placements:
	$(GO) run ./cmd/dsmbench -placements

# serve starts the experiment service on DSMD_ADDR (default :8080).
# Configure with DSMD_ADDR / DSMD_CACHE_ENTRIES / DSMD_MAX_CONCURRENT_RUNS.
serve:
	$(GO) run ./cmd/dsmd

# loadtest fires concurrent mixed hit/miss spec traffic at an in-process
# experiment service backed by the real engine and reports requests/sec,
# engine-run count, and cache hit rate.
loadtest:
	$(GO) test ./internal/expsvc/ -run NoTestsJustBench -bench BenchmarkServerMixed -benchtime 2s

# docker builds the dsmd container image (static binary, FROM scratch).
docker:
	docker build -t dsmd .
