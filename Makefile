# Convenience targets; CI runs the same commands.

GO ?= go

.PHONY: all test vet bench bench-check perf-check scaling networks placements serve loadtest docker profile alloc-check trace-smoke

all: test

test:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

# bench regenerates the perf-trajectory baseline: every application's
# small dataset under the default configuration (4 KB units, homeless,
# ideal network). Commit the refreshed BENCH_baseline.json whenever a
# PR intentionally moves these numbers.
bench:
	$(GO) run ./cmd/dsmbench -baseline -json > BENCH_baseline.json

# bench-check is the regression gate: re-run the baseline suite and fail
# on >2% simulated-time drift against the committed file (the ideal
# network is deterministic, so drift is a real engine change). CI runs
# this on every push.
bench-check:
	$(GO) run ./cmd/dsmbench -check-baseline BENCH_baseline.json

# perf-check is the wall-clock trajectory gate: BENCH_after.json
# carries a perf section (host-normalized -networks sweep wall time),
# so -check-baseline additionally re-runs the sweep and fails on >25%
# normalized slowdown — a lost optimization, not scheduler jitter.
# It also gates the committed scaling sweep: BENCH_scaling.json must
# claim a >=5x sparse/tree win at 256 procs and a live re-run of the
# best cell must reproduce >=2x. Finally -check-speedup re-runs the
# derived -networks sweep and fails unless it beats the committed
# all-engine-runs BENCH_before.json wall time by >=3x — the gate on
# the replay-derivation optimization itself.
perf-check:
	$(GO) run ./cmd/dsmbench -check-baseline BENCH_after.json
	$(GO) run ./cmd/dsmbench -check-scaling BENCH_scaling.json
	$(GO) run ./cmd/dsmbench -check-speedup BENCH_before.json

# scaling regenerates the committed 8->1024-proc scaling curves
# (storm/large, {homeless,home} x {ideal,bus} x {dense/central,
# sparse/tree}). The dense 1024-proc cells take minutes each by
# design — that quadratic cost is the datum — so the full sweep is a
# coffee break, not a CI job. Commit the refreshed BENCH_scaling.json
# whenever a PR moves these numbers.
scaling:
	$(GO) run ./cmd/dsmbench -scaling -json > BENCH_scaling.json

# profile runs the -networks sweep under the std runtime/pprof
# collectors and prints the top CPU and allocation sinks. The raw
# profiles land in ./prof/ for interactive `go tool pprof` sessions —
# this is how every before/after claim in DESIGN.md §11 is reproduced.
profile:
	mkdir -p prof
	$(GO) build -o prof/dsmbench ./cmd/dsmbench
	./prof/dsmbench -networks -cpuprofile prof/cpu.prof -memprofile prof/mem.prof > prof/networks.txt
	$(GO) tool pprof -top -nodecount 15 prof/dsmbench prof/cpu.prof
	$(GO) tool pprof -top -nodecount 15 -sample_index=alloc_space prof/dsmbench prof/mem.prof

# alloc-check runs only the allocation-budget tests: steady-state
# allocs/op in the lrc interval path, mem diff path, vc operations,
# the homeless jacobi inner loop, and the MemSink capture path (plain
# and capture-enabled engine runs) must stay under the pinned budgets.
alloc-check:
	$(GO) test ./internal/lrc/ ./internal/mem/ ./internal/vc/ ./internal/simnet/ ./internal/tmk/ ./internal/trace/ -run 'Alloc|Budget' -v

# trace-smoke captures one traced run and checks that a same-model
# replay reproduces its totals bit-identically (dsmtrace exits 1 if
# not), then re-prices the capture across the other interconnects.
trace-smoke:
	$(GO) run ./cmd/dsmrun -app jacobi -dataset small -network bus -trace /tmp/dsm-trace-smoke.jsonl -json > /dev/null
	$(GO) run ./cmd/dsmtrace -replay /tmp/dsm-trace-smoke.jsonl
	$(GO) run ./cmd/dsmtrace -replay -network ideal /tmp/dsm-trace-smoke.jsonl
	$(GO) run ./cmd/dsmtrace /tmp/dsm-trace-smoke.jsonl | head -20

# networks prints the interconnect sensitivity sweep.
networks:
	$(GO) run ./cmd/dsmbench -networks

# placements prints the home-placement comparison (home & adaptive on
# ideal and bus, every registered policy).
placements:
	$(GO) run ./cmd/dsmbench -placements

# serve starts the experiment service on DSMD_ADDR (default :8080).
# Configure with DSMD_ADDR / DSMD_CACHE_ENTRIES / DSMD_MAX_CONCURRENT_RUNS.
serve:
	$(GO) run ./cmd/dsmd

# loadtest fires concurrent mixed hit/miss spec traffic at an in-process
# experiment service backed by the real engine and reports requests/sec,
# engine-run count, and cache hit rate.
loadtest:
	$(GO) test ./internal/expsvc/ -run NoTestsJustBench -bench BenchmarkServerMixed -benchtime 2s

# docker builds the dsmd container image (static binary, FROM scratch).
docker:
	docker build -t dsmd .
