# Convenience targets; CI runs the same commands.

GO ?= go

.PHONY: all test vet bench bench-check networks placements

all: test

test:
	$(GO) build ./... && $(GO) test ./...

vet:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

# bench regenerates the perf-trajectory baseline: every application's
# small dataset under the default configuration (4 KB units, homeless,
# ideal network). Commit the refreshed BENCH_baseline.json whenever a
# PR intentionally moves these numbers.
bench:
	$(GO) run ./cmd/dsmbench -baseline -json > BENCH_baseline.json

# bench-check is the regression gate: re-run the baseline suite and fail
# on >2% simulated-time drift against the committed file (the ideal
# network is deterministic, so drift is a real engine change). CI runs
# this on every push.
bench-check:
	$(GO) run ./cmd/dsmbench -check-baseline BENCH_baseline.json

# networks prints the interconnect sensitivity sweep.
networks:
	$(GO) run ./cmd/dsmbench -networks

# placements prints the home-placement comparison (home & adaptive on
# ideal and bus, every registered policy).
placements:
	$(GO) run ./cmd/dsmbench -placements
