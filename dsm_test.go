package dsm

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
)

// The public façade: the quick-start program from the package comment.
func TestPublicAPIQuickstart(t *testing.T) {
	sys, err := New(
		WithProcs(4),
		WithSegmentBytes(1<<16),
		WithLocks(1),
		WithCollection(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	x, err := sys.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := sys.Alloc(256 * WordSize)
	if err != nil {
		t.Fatal(err)
	}
	var seen float64
	res := sys.Run(func(p *Proc) {
		p.Lock(0)
		p.WriteI64(x, p.ReadI64(x)+1)
		p.Unlock(0)
		p.Barrier()
		if p.ID() == 0 {
			for i := 0; i < 256; i++ {
				p.WriteF64(arr+WordSize*i, float64(i))
			}
		}
		p.Barrier()
		if p.ID() == 3 {
			for i := 0; i < 256; i++ {
				seen += p.ReadF64(arr + WordSize*i)
			}
		}
	})
	if seen != 255*256/2 {
		t.Fatalf("sum = %v", seen)
	}
	if res.Time <= 0 || res.Messages == 0 || res.Stats == nil {
		t.Fatalf("result incomplete: %+v", res)
	}
	if res.Stats.Messages.Total() != res.Messages {
		t.Fatalf("stats/message mismatch: %d vs %d",
			res.Stats.Messages.Total(), res.Messages)
	}
}

// Every invalid option or combination must surface as an error from
// New — the public path never panics.
func TestOptionValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want string
	}{
		{"zero procs", []Option{WithProcs(0)}, "WithProcs"},
		{"negative procs", []Option{WithProcs(-3)}, "WithProcs"},
		{"zero segment", []Option{WithSegmentBytes(0)}, "WithSegmentBytes"},
		{"zero unit", []Option{WithUnitPages(0)}, "WithUnitPages"},
		{"negative locks", []Option{WithLocks(-1)}, "WithLocks"},
		{"zero group bound", []Option{WithMaxGroupPages(0)}, "WithMaxGroupPages"},
		{
			"dynamic with multi-page unit",
			[]Option{WithDynamicAggregation(), WithUnitPages(2)},
			"dynamic aggregation requires UnitPages == 1",
		},
		{"unknown network", []Option{WithNetwork("token-ring")}, "WithNetwork"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys, err := New(tc.opts...)
			if err == nil {
				t.Fatalf("New(%s) succeeded (%+v), want error", tc.name, sys.Config())
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestWithNetworkSweep runs one false-sharing kernel across every
// registered interconnect model through the public API: the default is
// ideal (zero queue delay), contended models only add delay, and the
// computed result is identical everywhere — the network axis changes
// timing, never semantics.
func TestWithNetworkSweep(t *testing.T) {
	networks := Networks()
	if len(networks) < 4 {
		t.Fatalf("Networks() = %v, want at least ideal/bus/switch + one preset", networks)
	}
	body := func(p *Proc, arr Addr) {
		for i := 0; i < 128; i++ {
			p.WriteF64(arr+WordSize*(p.ID()*128+i), float64(p.ID()))
		}
		p.Barrier()
		var sum float64
		for i := 0; i < 4*128; i++ {
			sum += p.ReadF64(arr + WordSize*i)
		}
		p.Barrier()
	}
	var idealTime Duration
	for _, name := range networks {
		sys, err := New(WithProcs(4), WithSegmentBytes(1<<16), WithNetwork(name))
		if err != nil {
			t.Fatal(err)
		}
		if got := sys.Config().Network; got != name {
			t.Fatalf("Config().Network = %q, want %q", got, name)
		}
		arr, err := sys.Alloc(4 * 128 * WordSize)
		if err != nil {
			t.Fatal(err)
		}
		res := sys.Run(func(p *Proc) { body(p, arr) })
		if res.Network != name {
			t.Fatalf("Result.Network = %q, want %q", res.Network, name)
		}
		switch name {
		case "ideal":
			idealTime = res.Time
			if res.QueueDelay != 0 {
				t.Fatalf("ideal run reports queue delay %v", res.QueueDelay)
			}
		case "bus", "switch":
			if res.QueueDelay <= 0 {
				t.Fatalf("%s run with 4 concurrent writers reports no queue delay", name)
			}
		}
	}
	if idealTime <= 0 {
		t.Fatal("ideal network never ran")
	}
}

// TestDefaultNetworkMatchesIdeal pins the compatibility guarantee: a
// System built without WithNetwork prices exactly as WithNetwork("ideal").
func TestDefaultNetworkMatchesIdeal(t *testing.T) {
	run := func(opts ...Option) *Result {
		sys, err := New(append([]Option{WithProcs(4), WithSegmentBytes(1 << 15)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		arr, err := sys.Alloc(512 * WordSize)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run(func(p *Proc) {
			if p.ID() == 0 {
				for i := 0; i < 512; i++ {
					p.WriteF64(arr+WordSize*i, float64(i))
				}
			}
			p.Barrier()
			_ = p.ReadF64(arr + WordSize*511)
		})
	}
	def, ideal := run(), run(WithNetwork("ideal"))
	if def.Time != ideal.Time || def.Messages != ideal.Messages || def.Bytes != ideal.Bytes {
		t.Fatalf("default run %+v != ideal run %+v", def, ideal)
	}
	if def.Network != "ideal" {
		t.Fatalf("default network = %q", def.Network)
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	sys, err := New()
	if err != nil {
		t.Fatal(err)
	}
	cfg := sys.Config()
	if cfg.Procs != 8 || cfg.UnitPages != 1 || cfg.MaxGroupPages != 4 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if sys.SegmentBytes() != PageSize || sys.NumPages() != 1 || sys.NumUnits() != 1 {
		t.Fatalf("segment geometry: %d bytes, %d pages, %d units",
			sys.SegmentBytes(), sys.NumPages(), sys.NumUnits())
	}
}

// Exhausting the shared segment is an error from Alloc, not a panic.
func TestAllocOutOfMemoryError(t *testing.T) {
	sys, err := New(WithSegmentBytes(PageSize))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Alloc(2 * PageSize); err == nil {
		t.Fatal("expected out-of-memory error")
	}
	if _, err := sys.AllocPages(2); err == nil {
		t.Fatal("expected out-of-memory error from AllocPages")
	}
	// The segment is still usable after a failed allocation.
	if a, err := sys.Alloc(PageSize); err != nil || a != 0 {
		t.Fatalf("Alloc after failure = %d, %v", a, err)
	}
}

// One System executes N independent trials with bit-identical
// simulated times (barrier programs are deterministic).
func TestRunTrialsDeterministic(t *testing.T) {
	sys, err := New(WithProcs(4), WithSegmentBytes(4*PageSize), WithCollection(true))
	if err != nil {
		t.Fatal(err)
	}
	body := func(p *Proc) {
		for r := 0; r < 3; r++ {
			if p.ID() == r%4 {
				for w := 0; w < 64; w++ {
					p.WriteF64(p.ID()*PageSize+8*w, float64(r))
				}
			}
			p.Barrier()
			for w := 0; w < 64; w++ {
				p.ReadF64((r%4)*PageSize + 8*w)
			}
			p.Barrier()
		}
	}
	ts, err := sys.RunTrials(3, body)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Trials) != 3 {
		t.Fatalf("trials = %d, want 3", len(ts.Trials))
	}
	for i, r := range ts.Trials {
		if r.Time != ts.Trials[0].Time {
			t.Fatalf("trial %d time %v != trial 0 time %v", i, r.Time, ts.Trials[0].Time)
		}
		if r.Messages != ts.Trials[0].Messages {
			t.Fatalf("trial %d messages %d != trial 0 messages %d",
				i, r.Messages, ts.Trials[0].Messages)
		}
	}
	if ts.MinTime != ts.MaxTime || ts.MeanTime != ts.MinTime {
		t.Fatalf("aggregates differ on deterministic program: %+v", ts)
	}
	if _, err := sys.RunTrials(0, body); err == nil {
		t.Fatal("RunTrials(0) must error")
	}
}

func TestPublicConstantsAndCostModel(t *testing.T) {
	if PageSize != 4096 || WordSize != 8 {
		t.Fatal("page geometry")
	}
	cm := DefaultCostModel()
	rtt := cm.RoundTrip(1, 0)
	if rtt < 295*sim.Microsecond || rtt > 297*sim.Microsecond {
		t.Fatalf("RTT = %v, want ~296µs", rtt)
	}
}

func TestWithCostModelOverride(t *testing.T) {
	cm := DefaultCostModel()
	cm.MessageLeg *= 10
	slow, err := New(WithProcs(2), WithCostModel(cm))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := New(WithProcs(2))
	if err != nil {
		t.Fatal(err)
	}
	body := func(p *Proc) { p.Barrier() }
	if st, ft := slow.Run(body).Time, fast.Run(body).Time; st <= ft {
		t.Fatalf("inflated cost model not applied: slow=%v fast=%v", st, ft)
	}
}

func TestPublicAPIDynamicAggregation(t *testing.T) {
	sys, err := New(
		WithProcs(2),
		WithSegmentBytes(8*PageSize),
		WithDynamicAggregation(),
		WithCollection(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run(func(p *Proc) {
		for round := 0; round < 3; round++ {
			if p.ID() == 0 {
				for pg := 0; pg < 4; pg++ {
					p.WriteF64(pg*PageSize, float64(round+pg+1))
				}
			}
			p.Barrier()
			if p.ID() == 1 {
				for pg := 0; pg < 4; pg++ {
					p.ReadF64(pg * PageSize)
				}
			}
			p.Barrier()
		}
	})
	// Rounds 2 and 3 fetch the learned 4-page group in one exchange.
	if res.Stats.Exchanges != 4+1+1 {
		t.Fatalf("exchanges = %d, want 6", res.Stats.Exchanges)
	}
}

// A context canceled before RunTrialsContext starts must abort the call
// with the context's error and run no trials at all; the plain RunTrials
// path keeps working unchanged.
func TestPublicAPIRunTrialsContextCanceled(t *testing.T) {
	sys, err := New(WithProcs(2), WithSegmentBytes(4*PageSize))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if _, err := sys.RunTrialsContext(ctx, 3, func(p *Proc) { ran = true; p.Barrier() }); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunTrialsContext error = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("a trial body ran under a pre-canceled context")
	}
	res, err := sys.RunTrials(2, func(p *Proc) { p.Barrier() })
	if err != nil {
		t.Fatalf("RunTrials after canceled call: %v", err)
	}
	if len(res.Trials) != 2 {
		t.Fatalf("trials = %d, want 2", len(res.Trials))
	}
}
