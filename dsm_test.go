package dsm

import (
	"testing"

	"repro/internal/sim"
)

// The public façade: the quick-start program from the package comment.
func TestPublicAPIQuickstart(t *testing.T) {
	sys := New(Config{Procs: 4, SegmentBytes: 1 << 16, Locks: 1, Collect: true})
	x := sys.Alloc(8)
	arr := sys.Alloc(256 * WordSize)
	var seen float64
	res := sys.Run(func(p *Proc) {
		p.Lock(0)
		p.WriteI64(x, p.ReadI64(x)+1)
		p.Unlock(0)
		p.Barrier()
		if p.ID() == 0 {
			for i := 0; i < 256; i++ {
				p.WriteF64(arr+WordSize*i, float64(i))
			}
		}
		p.Barrier()
		if p.ID() == 3 {
			for i := 0; i < 256; i++ {
				seen += p.ReadF64(arr + WordSize*i)
			}
		}
	})
	if seen != 255*256/2 {
		t.Fatalf("sum = %v", seen)
	}
	if res.Time <= 0 || res.Messages == 0 || res.Stats == nil {
		t.Fatalf("result incomplete: %+v", res)
	}
	if res.Stats.Messages.Total() != res.Messages {
		t.Fatalf("stats/message mismatch: %d vs %d",
			res.Stats.Messages.Total(), res.Messages)
	}
}

func TestPublicConstantsAndCostModel(t *testing.T) {
	if PageSize != 4096 || WordSize != 8 {
		t.Fatal("page geometry")
	}
	cm := DefaultCostModel()
	rtt := cm.RoundTrip(1, 0)
	if rtt < 295*sim.Microsecond || rtt > 297*sim.Microsecond {
		t.Fatalf("RTT = %v, want ~296µs", rtt)
	}
}

func TestPublicAPIDynamicAggregation(t *testing.T) {
	sys := New(Config{Procs: 2, SegmentBytes: 8 * PageSize, Dynamic: true, Collect: true})
	res := sys.Run(func(p *Proc) {
		for round := 0; round < 3; round++ {
			if p.ID() == 0 {
				for pg := 0; pg < 4; pg++ {
					p.WriteF64(pg*PageSize, float64(round+pg+1))
				}
			}
			p.Barrier()
			if p.ID() == 1 {
				for pg := 0; pg < 4; pg++ {
					p.ReadF64(pg * PageSize)
				}
			}
			p.Barrier()
		}
	})
	// Rounds 2 and 3 fetch the learned 4-page group in one exchange.
	if res.Stats.Exchanges != 4+1+1 {
		t.Fatalf("exchanges = %d, want 6", res.Stats.Exchanges)
	}
}
