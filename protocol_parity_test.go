package dsm

import (
	"strings"
	"testing"

	"repro/internal/apps"
	_ "repro/internal/apps/all" // populate the workload registry
	"repro/internal/tmk"
)

// Protocol parity on the paper's applications: jacobi and tsp on the
// small datasets must verify against the sequential reference under
// every registered protocol — the application result does not depend
// on the coherence engine.
func TestProtocolParityOnApps(t *testing.T) {
	for _, name := range []string{"Jacobi", "TSP"} {
		for _, protocol := range tmk.ProtocolNames() {
			name, protocol := name, protocol
			t.Run(name+"/"+protocol, func(t *testing.T) {
				t.Parallel()
				e, ok := apps.Lookup(name, "small")
				if !ok {
					t.Fatalf("%s/small not registered", name)
				}
				res, err := apps.Run(e.Make(8),
					tmk.Config{Procs: 8, Protocol: protocol, Collect: true})
				if err != nil {
					t.Fatal(err)
				}
				if res.Messages <= 0 || res.Time <= 0 {
					t.Fatalf("implausible result: %+v", res)
				}
			})
		}
	}
}

// Bit-identical memory images across protocols and placements: a
// program mixing barrier phases (producer/consumer with false sharing)
// and lock-based accumulation must leave every shared word identical
// under homeless and home-based LRC, wherever the homes are placed and
// however they move mid-run.
func TestProtocolParityBitIdentical(t *testing.T) {
	const (
		procs = 8
		pages = 16
	)
	image := func(protocol string, extra ...Option) []int64 {
		sys, err := New(append([]Option{
			WithProcs(procs),
			WithSegmentBytes(pages * PageSize),
			WithLocks(2),
			WithProtocol(protocol),
		}, extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		base, err := sys.AllocPages(pages - 1)
		if err != nil {
			t.Fatal(err)
		}
		n := (pages - 1) * PageSize / WordSize
		out := make([]int64, 0, n)
		sys.Run(func(p *Proc) {
			// Phase 1: cyclic writes — every processor writes words of
			// every page (write-write false sharing).
			for w := p.ID(); w < n; w += procs {
				p.WriteI64(base+w*WordSize, int64(3*w+1))
			}
			p.Barrier()
			// Phase 2: neighbours read-modify-write a shifted slice.
			for w := (p.ID() + 1) % procs; w < n; w += procs {
				v := p.ReadI64(base + w*WordSize)
				p.WriteI64(base+w*WordSize, v*7)
			}
			p.Barrier()
			// Phase 3: lock-ordered accumulation, one accumulator word
			// per lock so every read-modify-write is guarded by the
			// lock that owns its word (addition commutes, so the final
			// values are independent of lock hand-off order).
			for i := 0; i < 3; i++ {
				l := i % 2
				p.Lock(l)
				a := base + l*WordSize
				p.WriteI64(a, p.ReadI64(a)+int64(p.ID()+1))
				p.Unlock(l)
			}
			p.Barrier()
			if p.ID() == 0 {
				for w := 0; w < n; w++ {
					out = append(out, p.ReadI64(base+w*WordSize))
				}
			}
		})
		return out
	}

	baseline := image("homeless")
	if len(baseline) == 0 {
		t.Fatal("empty baseline image")
	}
	check := func(label string, got []int64) {
		t.Helper()
		if len(got) != len(baseline) {
			t.Fatalf("%s: image length %d != %d", label, len(got), len(baseline))
		}
		for w := range got {
			if got[w] != baseline[w] {
				t.Fatalf("%s: word %d = %d, homeless has %d",
					label, w, got[w], baseline[w])
			}
		}
	}
	for _, protocol := range Protocols() {
		if protocol == "homeless" {
			continue
		}
		for _, placement := range Placements() {
			check(protocol+"/"+placement, image(protocol, WithPlacement(placement)))
		}
		// The gate-disabled adaptive engine switches on ideal, exercising
		// handoffs (static placements) and home migration (mobile).
		if protocol == "adaptive" {
			for _, placement := range Placements() {
				check(protocol+"/nogate/"+placement,
					image(protocol, WithPlacement(placement), WithAdaptiveQueueGate(-1)))
			}
		}
	}
}

// Adaptive parity on the full evaluation: every registered application's
// small dataset must verify against its sequential reference under the
// adaptive protocol at the paper's processor count — per-unit switching
// and ownership handoffs never change what the program computes.
func TestAdaptiveParityAllApps(t *testing.T) {
	for _, app := range apps.Apps() {
		app := app
		t.Run(app, func(t *testing.T) {
			t.Parallel()
			e, ok := apps.Lookup(app, "small")
			if !ok {
				t.Fatalf("%s: no small dataset", app)
			}
			res, err := apps.Run(e.Make(8),
				tmk.Config{Procs: 8, Protocol: "adaptive", Collect: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.Messages <= 0 || res.Time <= 0 || res.Stats == nil {
				t.Fatalf("implausible result: %+v", res)
			}
			total := 0
			for _, n := range res.UnitSwitches {
				total += n
			}
			if total != res.ProtocolSwitches || len(res.UnitSwitches) != res.SwitchedUnits {
				t.Fatalf("switch accounting inconsistent: %+v", res)
			}
		})
	}
}

// The adaptive protocol actually engages on the paper's false-sharing
// workload: on a contended interconnect (the §8 contention gate holds
// units homeless on the quiet ideal network), Barnes' falsely shared
// force pages must migrate to the home engine, and the run must still
// verify against the sequential reference (Check runs inside apps.Run).
func TestAdaptiveSwitchesOnBarnes(t *testing.T) {
	e, ok := apps.Lookup("Barnes", "512")
	if !ok {
		t.Fatal("Barnes/512 not registered")
	}
	res, err := apps.Run(e.Make(8), tmk.Config{
		Procs: 8, Protocol: "adaptive", Network: "bus", Collect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SwitchedUnits == 0 || res.HomeUnits == 0 {
		t.Fatalf("Barnes/512 did not migrate its false-shared units: %+v", res)
	}
}

// The §8 contention gate is network-aware: the same Barnes run that
// migrates units on the contended bus holds every unit homeless on the
// contention-free ideal network (where homeless's extra messages cost
// nothing extra), and behaves identically to plain homeless there.
func TestAdaptiveContentionGateIdealVsBus(t *testing.T) {
	e, ok := apps.Lookup("Barnes", "512")
	if !ok {
		t.Fatal("Barnes/512 not registered")
	}
	onIdeal, err := apps.Run(e.Make(8), tmk.Config{Procs: 8, Protocol: "adaptive", Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if onIdeal.ProtocolSwitches != 0 || onIdeal.HomeUnits != 0 {
		t.Fatalf("gate open on ideal: %d switches, %d home units",
			onIdeal.ProtocolSwitches, onIdeal.HomeUnits)
	}
	homeless, err := apps.Run(e.Make(8), tmk.Config{Procs: 8, Protocol: "homeless", Collect: true})
	if err != nil {
		t.Fatal(err)
	}
	if onIdeal.Messages != homeless.Messages || onIdeal.Bytes != homeless.Bytes {
		t.Fatalf("held-homeless adaptive (%d msgs, %d bytes) != homeless (%d, %d)",
			onIdeal.Messages, onIdeal.Bytes, homeless.Messages, homeless.Bytes)
	}
	onBus, err := apps.Run(e.Make(8), tmk.Config{
		Procs: 8, Protocol: "adaptive", Network: "bus", Collect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if onBus.ProtocolSwitches == 0 {
		t.Fatal("gate closed on the contended bus: no switches")
	}
}

// Placement parity on real applications: jacobi and water on the small
// datasets must verify against the sequential reference under the
// home-based engine for every registered placement — where the homes
// live (and whether they move) never changes what the program computes.
func TestPlacementParityOnApps(t *testing.T) {
	for _, name := range []string{"Jacobi", "Water"} {
		for _, placement := range tmk.PlacementNames() {
			name, placement := name, placement
			t.Run(name+"/"+placement, func(t *testing.T) {
				t.Parallel()
				e, ok := apps.Lookup(name, "small")
				if !ok {
					t.Fatalf("%s/small not registered", name)
				}
				res, err := apps.Run(e.Make(8),
					tmk.Config{Procs: 8, Protocol: "home", Placement: placement, Collect: true})
				if err != nil {
					t.Fatal(err)
				}
				if res.Messages <= 0 || res.Time <= 0 {
					t.Fatalf("implausible result: %+v", res)
				}
				if res.Placement != placement {
					t.Fatalf("Result.Placement = %q, want %q", res.Placement, placement)
				}
				if res.RehomeBytes > 0 && res.Rehomes == 0 {
					t.Fatalf("rehome accounting inconsistent: %+v", res)
				}
			})
		}
	}
}

// WithPlacement validates its argument and surfaces unknown placements
// as errors from New, never panics; Placements lists the registry.
func TestWithPlacementValidation(t *testing.T) {
	for _, good := range []string{"rr", "Block", "FIRSTTOUCH", "migrate"} {
		if _, err := New(WithPlacement(good)); err != nil {
			t.Fatalf("WithPlacement(%s): %v", good, err)
		}
	}
	_, err := New(WithPlacement("bogus"))
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("want descriptive error, got %v", err)
	}
	if !strings.Contains(err.Error(), "firsttouch") {
		t.Fatalf("error should list known placements, got %v", err)
	}
	want := []string{"block", "firsttouch", "migrate", "rr"}
	got := Placements()
	if len(got) != len(want) {
		t.Fatalf("Placements() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Placements() = %v, want %v", got, want)
		}
	}
	sys, err := New(WithProtocol("home"), WithPlacement("firsttouch"))
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Config().Placement; got != "firsttouch" {
		t.Fatalf("Config().Placement = %q, want firsttouch", got)
	}
}

// WithProtocol validates its argument and surfaces unknown protocols
// as errors from New, never panics.
func TestWithProtocolValidation(t *testing.T) {
	if _, err := New(WithProtocol("home")); err != nil {
		t.Fatalf("WithProtocol(home): %v", err)
	}
	if _, err := New(WithProtocol("HOMELESS")); err != nil {
		t.Fatalf("protocol names are case-insensitive: %v", err)
	}
	if _, err := New(WithProtocol("adaptive")); err != nil {
		t.Fatalf("WithProtocol(adaptive): %v", err)
	}
	_, err := New(WithProtocol("bogus"))
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("want descriptive error, got %v", err)
	}
	if !strings.Contains(err.Error(), "home") {
		t.Fatalf("error should list known protocols, got %v", err)
	}
}

// WithAdaptiveHysteresis validates its threshold and threads it to the
// engine configuration.
func TestWithAdaptiveHysteresisValidation(t *testing.T) {
	sys, err := New(WithProtocol("adaptive"), WithAdaptiveHysteresis(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.Config().AdaptHysteresis; got != 3 {
		t.Fatalf("AdaptHysteresis = %d, want 3", got)
	}
	for _, bad := range []int{0, -1} {
		if _, err := New(WithAdaptiveHysteresis(bad)); err == nil {
			t.Fatalf("WithAdaptiveHysteresis(%d) accepted", bad)
		}
	}
}

// RunTrials runs concurrently on per-trial engines but must stay
// deterministic and in order: every trial of a barrier program reports
// the same simulated time as a plain Run, and the System itself is
// untouched.
func TestRunTrialsParallelDeterminism(t *testing.T) {
	build := func() (*System, Addr) {
		sys, err := New(WithProcs(4), WithSegmentBytes(8*PageSize))
		if err != nil {
			t.Fatal(err)
		}
		base, err := sys.AllocPages(4)
		if err != nil {
			t.Fatal(err)
		}
		return sys, base
	}
	body := func(base Addr) func(p *Proc) {
		return func(p *Proc) {
			n := 4 * PageSize / WordSize
			for w := p.ID(); w < n; w += p.NProcs() {
				p.WriteF64(base+w*WordSize, float64(w))
			}
			p.Barrier()
			for w := p.NProcs() - 1 - p.ID(); w < n; w += p.NProcs() {
				_ = p.ReadF64(base + w*WordSize)
			}
		}
	}

	sys, base := build()
	single := sys.Run(body(base))

	ts, err := sys.RunTrials(6, body(base))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts.Trials) != 6 {
		t.Fatalf("trials = %d, want 6", len(ts.Trials))
	}
	for i, r := range ts.Trials {
		if r.Time != single.Time {
			t.Fatalf("trial %d time %v != single-run time %v", i, r.Time, single.Time)
		}
		if r.Messages != single.Messages || r.Bytes != single.Bytes {
			t.Fatalf("trial %d counts (%d msgs, %d bytes) != single run (%d, %d)",
				i, r.Messages, r.Bytes, single.Messages, single.Bytes)
		}
	}
	if ts.MinTime != ts.MaxTime || ts.MeanTime != single.Time {
		t.Fatalf("aggregate not deterministic: min %v mean %v max %v",
			ts.MinTime, ts.MeanTime, ts.MaxTime)
	}

	if _, err := sys.RunTrials(0, body(base)); err == nil {
		t.Fatal("RunTrials(0) should error")
	}
}
