// Package dsm is the public API of this reproduction of "Tradeoffs
// Between False Sharing and Aggregation in Software Distributed Shared
// Memory" (Amza, Cox, Rajamani, Zwaenepoel — PPoPP 1997).
//
// It exposes a TreadMarks-style software DSM: lazy release consistency,
// a multiple-writer protocol (twinning + word-granularity diffing),
// locks and barriers, static consistency units of 1–4 pages, and the
// paper's dynamic page-group aggregation — all running on a simulated
// 8-node cluster whose communication costs are calibrated to the paper's
// platform (see internal/sim).
//
// Quick start:
//
//	sys := dsm.New(dsm.Config{Procs: 8, SegmentBytes: 1 << 20, Collect: true})
//	x := sys.Alloc(8) // one shared float64
//	res := sys.Run(func(p *dsm.Proc) {
//		if p.ID() == 0 {
//			p.WriteF64(x, 42)
//		}
//		p.Barrier()
//		_ = p.ReadF64(x)
//	})
//	fmt.Println(res.Time, res.Messages, res.Stats.Messages.Useless)
//
// The eight applications of the paper's evaluation live under
// internal/apps; the experiment harness that regenerates every table and
// figure is cmd/dsmbench.
package dsm

import (
	"repro/internal/instrument"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tmk"
)

// Config configures a DSM instance. See tmk.Config for field semantics.
type Config = tmk.Config

// System is a DSM instance: shared segment, processors, locks, barrier.
type System = tmk.System

// Proc is one simulated processor's handle, valid inside Run's body.
type Proc = tmk.Proc

// Result is the outcome of a Run: simulated time, message/byte counts,
// and (with Config.Collect) the paper's communication classification.
type Result = tmk.Result

// Stats is the §5.3 communication breakdown.
type Stats = instrument.Stats

// Addr is a byte offset into the shared segment.
type Addr = mem.Addr

// Duration is simulated time.
type Duration = sim.Duration

// Page geometry of the simulated VM (the paper's hardware page).
const (
	PageSize = mem.PageSize
	WordSize = mem.WordSize
)

// New builds a DSM instance.
func New(cfg Config) *System { return tmk.NewSystem(cfg) }

// DefaultCostModel returns the communication cost model calibrated to
// the paper's §5.1 platform measurements.
func DefaultCostModel() sim.CostModel { return sim.DefaultCostModel() }
