// Package dsm is the public API of this reproduction of "Tradeoffs
// Between False Sharing and Aggregation in Software Distributed Shared
// Memory" (Amza, Cox, Rajamani, Zwaenepoel — PPoPP 1997).
//
// It exposes a software DSM with a pluggable coherence layer: lazy
// release consistency with a multiple-writer protocol (twinning +
// word-granularity diffing), locks and barriers, static consistency
// units of 1–4 pages, and the paper's dynamic page-group aggregation —
// all running on a simulated 8-node cluster whose communication costs
// are calibrated to the paper's platform (see internal/sim). Three
// coherence protocols are built in and selected with WithProtocol:
// "homeless" (TreadMarks-style, the paper's protocol and the default),
// "home" (home-based LRC — fewer messages, more bytes), and "adaptive"
// (a per-unit hybrid: every consistency unit starts homeless and is
// switched between the two engines at barriers by its writer-count
// signature, with WithAdaptiveHysteresis damping oscillation); see
// DESIGN.md §5 and §8. The interconnect is equally pluggable (WithNetwork):
// "ideal" reproduces the paper's flat cost arithmetic, while "bus",
// "switch", and the preset family ("atm", "myrinet", "10gbe") make
// contention and faster networks first-class experiment axes; see
// DESIGN.md §6. Where the home-based engines keep each unit's
// authoritative copy is a third axis (WithPlacement): "rr" round-robin
// homes (the paper-era default), "block" contiguous ranges,
// "firsttouch" first-writer binding, or "migrate" (JIAJIA-style home
// migration chasing the dominant writer); see DESIGN.md §9.
//
// A System is built with functional options and validated up front —
// misconfiguration is an error, never a panic:
//
//	sys, err := dsm.New(
//		dsm.WithProcs(8),
//		dsm.WithSegmentBytes(1<<20),
//		dsm.WithCollection(true),
//	)
//	if err != nil { ... }
//	x, err := sys.Alloc(8) // one shared float64
//	res := sys.Run(func(p *dsm.Proc) {
//		if p.ID() == 0 {
//			p.WriteF64(x, 42)
//		}
//		p.Barrier()
//		_ = p.ReadF64(x)
//	})
//	fmt.Println(res.Time, res.Messages, res.Stats.Messages.Useless)
//
// A System is reusable: Run may be called repeatedly (state is reset
// between runs, allocations survive), and RunTrials executes N
// independent trials and aggregates their results — the shape real
// benchmarking needs.
//
// The eight applications of the paper's evaluation are registered by
// name in internal/apps (see apps.Names); the experiment harness that
// regenerates every table and figure is cmd/dsmbench, and any
// app × dataset × configuration × trials combination is runnable from
// cmd/dsmrun.
package dsm

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"

	"repro/internal/instrument"
	"repro/internal/mem"
	"repro/internal/netmodel"
	"repro/internal/sim"
	"repro/internal/tmk"
	"repro/internal/trace"
)

// Proc is one simulated processor's handle, valid inside Run's body.
type Proc = tmk.Proc

// Result is the outcome of a Run: simulated time, message/byte counts,
// and (with WithCollection) the paper's communication classification.
type Result = tmk.Result

// Trials is the outcome of RunTrials: per-trial Results plus
// min/mean/max aggregates.
type Trials = tmk.TrialSummary

// Config is the resolved engine configuration, readable via
// System.Config.
type Config = tmk.Config

// Stats is the §5.3 communication breakdown.
type Stats = instrument.Stats

// Addr is a byte offset into the shared segment.
type Addr = mem.Addr

// Duration is simulated time.
type Duration = sim.Duration

// CostModel holds the calibrated communication costs of the simulated
// platform.
type CostModel = sim.CostModel

// Page geometry of the simulated VM (the paper's hardware page).
const (
	PageSize = mem.PageSize
	WordSize = mem.WordSize
)

// DefaultCostModel returns the communication cost model calibrated to
// the paper's §5.1 platform measurements.
func DefaultCostModel() CostModel { return sim.DefaultCostModel() }

// Protocols returns the names of the registered coherence protocols,
// sorted: currently "adaptive" (the per-unit hybrid: units switch
// between the two static engines at barriers, driven by their
// writer-count signatures), "home" (home-based LRC: diffs flushed to a
// static home at release, misses fetch the whole unit from the home),
// and "homeless" (the paper's TreadMarks protocol: diffs stay with
// their writers, misses fetch from every concurrent writer).
func Protocols() []string { return tmk.ProtocolNames() }

// Networks returns the names of the registered interconnect timing
// models, sorted: "ideal" (the paper's flat contention-free cost
// arithmetic, the default), "bus" (shared-medium Ethernet with one
// global serialization resource), "switch" (the paper's switched
// Ethernet with per-NIC port occupancy), and the preset family ("atm",
// "myrinet", "10gbe") scaling the platform's latency, bandwidth, and
// software overhead.
func Networks() []string { return netmodel.Names() }

// Placements returns the names of the registered home-placement
// policies, sorted: "block" (contiguous unit ranges), "firsttouch"
// (home = the unit's first writer, bound at the first barrier after
// the first write), "migrate" (JIAJIA-style: the home chases the
// dominant writer at each barrier, with the state transfer priced on
// the wire), and "rr" (round-robin, the paper-era default). Placement
// decides where home-based engines keep each unit's authoritative
// copy; it has no effect under the homeless protocol.
func Placements() []string { return tmk.PlacementNames() }

// Barriers returns the names of the registered barrier fabrics,
// sorted: "central" (every arrival is one message to a single manager
// — the paper's barrier and the 8-proc golden reference) and "tree"
// (a configurable-radix combining tree: arrivals combine upward and
// releases fan downward one priced message per tree edge, turning the
// manager's n-message pile-up into log-depth waves); see DESIGN.md §13.
func Barriers() []string { return tmk.BarrierNames() }

// Scales returns the engine's scaling representations: "sparse"
// (epoch-relative interval clocks, deviation-driven deltas, lazy
// replicas — the default, bit-identical to dense on every wire count)
// and "dense" (the flat O(procs) reference representation); see
// DESIGN.md §13.
func Scales() []string { return []string{tmk.ScaleSparse, tmk.ScaleDense} }

// Option configures a System under construction. Options validate
// their arguments and report bad values as errors from New.
type Option func(*Config) error

// WithProcs sets the number of simulated processors (default 8, the
// paper's cluster size).
func WithProcs(n int) Option {
	return func(c *Config) error {
		if n <= 0 {
			return fmt.Errorf("dsm: WithProcs(%d): processor count must be positive", n)
		}
		c.Procs = n
		return nil
	}
}

// WithSegmentBytes sets the shared-segment size (default one page);
// it is rounded up to a whole number of consistency units.
func WithSegmentBytes(n int) Option {
	return func(c *Config) error {
		if n <= 0 {
			return fmt.Errorf("dsm: WithSegmentBytes(%d): segment size must be positive", n)
		}
		c.SegmentBytes = n
		return nil
	}
}

// WithUnitPages sets the static consistency unit in 4 KB pages. The
// paper evaluates 1, 2, and 4; any positive size is accepted.
// Incompatible with WithDynamicAggregation unless n == 1.
func WithUnitPages(n int) Option {
	return func(c *Config) error {
		if n <= 0 {
			return fmt.Errorf("dsm: WithUnitPages(%d): unit must be at least one page", n)
		}
		c.UnitPages = n
		return nil
	}
}

// WithDynamicAggregation enables the paper's §4 dynamic page-group
// aggregation. It requires the 1-page unit (the algorithm aggregates
// VM pages); combining it with WithUnitPages(n > 1) is an error from
// New.
func WithDynamicAggregation() Option {
	return func(c *Config) error {
		c.Dynamic = true
		return nil
	}
}

// WithMaxGroupPages bounds a dynamic page group (default 4 pages =
// 16 KB, the largest static unit the paper evaluates).
func WithMaxGroupPages(n int) Option {
	return func(c *Config) error {
		if n <= 0 {
			return fmt.Errorf("dsm: WithMaxGroupPages(%d): bound must be positive", n)
		}
		c.MaxGroupPages = n
		return nil
	}
}

// WithLocks provisions n global locks (default 0).
func WithLocks(n int) Option {
	return func(c *Config) error {
		if n < 0 {
			return fmt.Errorf("dsm: WithLocks(%d): lock count cannot be negative", n)
		}
		c.Locks = n
		return nil
	}
}

// WithProtocol selects the coherence protocol by name
// (case-insensitive): "homeless" — the paper's TreadMarks protocol and
// the default — "home" — home-based LRC — or "adaptive" — the per-unit
// hybrid of the two. An unknown name is an error from New listing the
// registered protocols (Protocols).
func WithProtocol(name string) Option {
	return func(c *Config) error {
		if !tmk.KnownProtocol(name) {
			return fmt.Errorf("dsm: WithProtocol(%q): unknown protocol (known: %s)",
				name, strings.Join(tmk.ProtocolNames(), ", "))
		}
		c.Protocol = name
		return nil
	}
}

// WithAdaptiveHysteresis sets the adaptive protocol's switch threshold:
// a unit changes engine only after n consecutive barrier phases whose
// writer signature contradicts its current assignment (default
// tmk.DefaultAdaptHysteresis). Ignored by the static protocols.
func WithAdaptiveHysteresis(n int) Option {
	return func(c *Config) error {
		if n <= 0 {
			return fmt.Errorf("dsm: WithAdaptiveHysteresis(%d): threshold must be at least 1", n)
		}
		c.AdaptHysteresis = n
		return nil
	}
}

// WithPlacement selects the home-placement policy by name
// (case-insensitive; see Placements). The default, "rr", reproduces
// the paper-era round-robin homes exactly; "block" assigns contiguous
// unit ranges, "firsttouch" binds each unit to its first writer, and
// "migrate" moves homes to each unit's dominant writer at barriers,
// pricing the home-state transfers on the wire. Consulted only by
// home-based engines (WithProtocol "home" or "adaptive"). An unknown
// name is an error from New listing the registered policies.
func WithPlacement(name string) Option {
	return func(c *Config) error {
		if !tmk.KnownPlacement(name) {
			return fmt.Errorf("dsm: WithPlacement(%q): unknown placement (known: %s)",
				name, strings.Join(tmk.PlacementNames(), ", "))
		}
		c.Placement = name
		return nil
	}
}

// WithAdaptiveQueueGate sets the adaptive protocol's contention gate:
// units migrate homeless→home only while the network's measured mean
// queue delay per message is at least d. The zero default derives the
// gate from the cost calibration (MessageLeg/16, which separates the
// contended models from ideal and the fast presets); a negative d
// disables the gate, restoring the signature-only switch rule.
// Ignored by the static protocols.
func WithAdaptiveQueueGate(d Duration) Option {
	return func(c *Config) error {
		c.AdaptQueueGate = d
		return nil
	}
}

// WithNetwork selects the interconnect timing model by name
// (case-insensitive; see Networks). The default, "ideal", reproduces
// the paper's flat cost arithmetic; the contended models ("bus",
// "switch") add occupancy-based queuing delay, and the presets
// ("atm", "myrinet", "10gbe") rescale the platform. An unknown name is
// an error from New listing the registered models.
func WithNetwork(name string) Option {
	return func(c *Config) error {
		if !netmodel.Known(name) {
			return fmt.Errorf("dsm: WithNetwork(%q): unknown network model (known: %s)",
				name, strings.Join(netmodel.Names(), ", "))
		}
		c.Network = name
		return nil
	}
}

// WithScale selects the engine's scaling representation by name
// (case-insensitive; see Scales). The default, "sparse", carries
// vector time as a base epoch plus a deviation list and materializes
// replica frames lazily — built for 64–1024-processor systems, and
// bit-identical to "dense" on every message and byte count (the
// equivalence tests pin this). "dense" keeps the flat O(procs)
// reference representation. An unknown name is an error from New.
func WithScale(name string) Option {
	return func(c *Config) error {
		n := strings.ToLower(name)
		if n != tmk.ScaleSparse && n != tmk.ScaleDense {
			return fmt.Errorf("dsm: WithScale(%q): unknown scale mode (known: %s)",
				name, strings.Join(Scales(), ", "))
		}
		c.Scale = n
		return nil
	}
}

// WithBarrier selects the barrier fabric by name (case-insensitive;
// see Barriers). The default, "central", reproduces the paper's
// single-manager barrier exactly; "tree" combines arrivals up (and
// fans releases down) a WithBarrierRadix-ary tree of the processors,
// pricing every hop as a real message on the network model. The two
// fabrics leave identical post-barrier state — only message routing,
// and therefore timing under contention, differs. An unknown name is
// an error from New listing the registered fabrics.
func WithBarrier(name string) Option {
	return func(c *Config) error {
		if !tmk.KnownBarrier(name) {
			return fmt.Errorf("dsm: WithBarrier(%q): unknown barrier (known: %s)",
				name, strings.Join(tmk.BarrierNames(), ", "))
		}
		c.Barrier = name
		return nil
	}
}

// WithBarrierRadix sets the tree barrier's fan-in — the number of
// children combined per tree node (default tmk.DefaultBarrierRadix).
// Ignored by the centralized fabric.
func WithBarrierRadix(n int) Option {
	return func(c *Config) error {
		if n < 2 {
			return fmt.Errorf("dsm: WithBarrierRadix(%d): fan-in must be at least 2", n)
		}
		c.BarrierRadix = n
		return nil
	}
}

// WithCostModel overrides the communication cost model (default: the
// paper's §5.1 calibration, DefaultCostModel).
func WithCostModel(cm CostModel) Option {
	return func(c *Config) error {
		cmCopy := cm
		c.Cost = &cmCopy
		return nil
	}
}

// WithCollection toggles the §5.3 instrumentation (word-level
// usefulness, false-sharing signature). Off, runs are faster and
// Result.Stats is nil.
func WithCollection(on bool) Option {
	return func(c *Config) error {
		c.Collect = on
		return nil
	}
}

// TraceWriter is a capture stream for run traces: a versioned JSONL
// event log carrying every priced protocol message in pricing order
// plus the engine's lifecycle events (barriers, locks, page faults,
// protocol switches, home moves). One TraceWriter may be shared by any
// number of Systems — every Run opens its own run id, so interleaved
// captures demultiplex losslessly. Check Close (or Err) when capture
// ends: write errors are sticky and a partial trace must not pass
// silently. The capture format is replayable — see cmd/dsmtrace.
type TraceWriter = trace.Writer

// NewTraceWriter starts a trace capture stream on out (typically a
// file), writing the schema header line. The stream is unbuffered;
// wrap out in a bufio.Writer for high-rate captures and flush it
// before closing the file.
func NewTraceWriter(out io.Writer) *TraceWriter { return trace.NewWriter(out) }

// WithTrace captures every Run of the System into the given stream.
// Tracing serializes message pricing (it records pricing order), so
// leave it off for performance measurements.
func WithTrace(tw *TraceWriter) Option {
	return func(c *Config) error {
		if tw == nil {
			return fmt.Errorf("dsm: WithTrace(nil): trace writer must not be nil")
		}
		c.Trace = tw
		return nil
	}
}

// System is a DSM instance: shared segment, processors, locks,
// barrier. It is reusable — Run and RunTrials reset protocol state
// between executions while the shared-memory layout persists.
type System struct {
	eng *tmk.System
}

// New builds a DSM instance from the given options. Invalid options
// and invalid combinations (dynamic aggregation with multi-page units)
// are reported as errors.
func New(opts ...Option) (*System, error) {
	var cfg Config
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	eng, err := tmk.NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	return &System{eng: eng}, nil
}

// Alloc reserves n bytes of shared memory (8-byte aligned) and returns
// the base address, or an error when the segment is exhausted.
// Allocation is a pre-run, single-threaded operation, mirroring
// TreadMarks' Tmk_malloc; allocations survive Reset and repeated Runs.
func (s *System) Alloc(n int) (Addr, error) { return s.eng.TryAlloc(n) }

// AllocPages reserves n whole pages aligned to a unit boundary.
// Applications use this to control the layout effects the paper
// studies.
func (s *System) AllocPages(n int) (Addr, error) { return s.eng.TryAllocPages(n) }

// Run executes body once per processor, concurrently, and returns the
// run's accounting. Calling Run again first resets protocol state, so
// every call is an independent trial over the same memory layout.
func (s *System) Run(body func(p *Proc)) *Result { return s.eng.Run(body) }

// RunTrials executes body as n independent trials and returns per-trial
// and aggregate (min/mean/max) results. Trials are independent by
// construction — each runs on its own engine built from this System's
// configuration — so they execute concurrently, bounded by GOMAXPROCS;
// results are reported in trial order regardless of completion order.
// For barrier-synchronized programs the simulation is deterministic, so
// all trials report bit-identical times. The System itself is left
// untouched (its allocations and any prior Run's state survive).
func (s *System) RunTrials(n int, body func(p *Proc)) (*Trials, error) {
	return s.RunTrialsContext(context.Background(), n, body)
}

// RunTrialsContext is RunTrials with cancellation: ctx is consulted
// before each trial starts, so an aborted caller (a closed HTTP
// request, a Ctrl-C'd CLI) skips the trials not yet launched instead of
// running them all to completion, and the call reports ctx's error. A
// trial already executing runs to its end — the simulated processors
// synchronize through barriers and locks that cannot be torn down
// mid-phase — so cancellation latency is bounded by the in-flight
// trials.
func (s *System) RunTrialsContext(ctx context.Context, n int, body func(p *Proc)) (*Trials, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dsm: RunTrials needs a positive trial count (got %d)", n)
	}
	cfg := s.eng.Config()
	results := make([]*tmk.Result, n)
	errs := make([]error, n)
	limit := runtime.GOMAXPROCS(0)
	if limit < 1 {
		limit = 1
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			eng, err := tmk.NewSystem(cfg)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = eng.Run(body)
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dsm: RunTrials canceled: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return tmk.Summarize(results), nil
}

// Reset returns the system to its freshly built state (zeroed memory,
// empty protocol metadata, zeroed counters) while keeping allocations.
func (s *System) Reset() { s.eng.Reset() }

// Config returns the resolved (defaults filled) configuration.
func (s *System) Config() Config { return s.eng.Config() }

// SegmentBytes returns the rounded shared-segment size.
func (s *System) SegmentBytes() int { return s.eng.SegmentBytes() }

// NumPages returns the number of 4 KB pages in the segment.
func (s *System) NumPages() int { return s.eng.NumPages() }

// NumUnits returns the number of consistency units in the segment.
func (s *System) NumUnits() int { return s.eng.NumUnits() }
