// dynagg demonstrates the paper's §4 dynamic aggregation algorithm
// adapting at runtime: a producer/consumer pattern over scattered,
// non-contiguous pages that static units cannot aggregate, followed by a
// pattern change the algorithm recovers from after one interval of
// hysteresis.
//
// Run with: go run ./examples/dynagg
package main

import (
	"fmt"
	"log"

	dsm "repro"
)

const pages = 16

// scattered is the set of non-contiguous pages the consumer reads —
// static units can't fuse pages 1, 5, 9, 13.
var scattered = []int{1, 5, 9, 13}

func run(dynamic bool, rounds int) (exchanges int, timeMs float64) {
	opts := []dsm.Option{
		dsm.WithProcs(2),
		dsm.WithSegmentBytes(pages * dsm.PageSize),
		dsm.WithCollection(true),
	}
	if dynamic {
		opts = append(opts, dsm.WithDynamicAggregation())
	}
	sys, err := dsm.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	res := sys.Run(func(p *dsm.Proc) {
		for round := 0; round < rounds; round++ {
			if p.ID() == 0 {
				for _, pg := range scattered {
					for w := 0; w < 512; w++ {
						p.WriteF64(pg*dsm.PageSize+8*w, float64(round*100+pg))
					}
				}
			}
			p.Barrier()
			if p.ID() == 1 {
				for _, pg := range scattered {
					for w := 0; w < 512; w++ {
						p.ReadF64(pg*dsm.PageSize + 8*w)
					}
				}
			}
			p.Barrier()
		}
	})
	return res.Stats.Exchanges, float64(res.Time.Microseconds()) / 1000
}

func main() {
	const rounds = 6
	se, st := run(false, rounds)
	de, dt := run(true, rounds)
	fmt.Printf("producer/consumer over non-contiguous pages %v, %d rounds\n\n", scattered, rounds)
	fmt.Printf("%-22s %12s %12s\n", "configuration", "exchanges", "time (ms)")
	fmt.Printf("%-22s %12d %12.2f\n", "static 4K pages", se, st)
	fmt.Printf("%-22s %12d %12.2f\n", "dynamic page groups", de, dt)
	fmt.Printf("\nAfter one observation round the dynamic scheme fetches all %d\n", len(scattered))
	fmt.Println("pages in a single exchange per round — page groups need not be")
	fmt.Println("contiguous, which no static unit size can imitate here.")
}
