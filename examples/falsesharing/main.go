// falsesharing reproduces, in a dozen lines of application code, the
// paper's §2 taxonomy: write-write false sharing that costs useless
// messages, and false sharing mixed with true sharing that costs only
// piggybacked useless data.
//
// Run with: go run ./examples/falsesharing
package main

import (
	"fmt"
	"log"

	dsm "repro"
)

func breakdown(title string, res *dsm.Result) {
	st := res.Stats
	fmt.Printf("%-34s messages %3d (useless %3d)   data %6d B (piggybacked useless %5d B, on useless msgs %5d B)\n",
		title, st.Messages.Total(), st.Messages.Useless,
		st.TotalDataBytes(), st.PiggybackedBytes, st.UselessBytes)
}

func newSystem(procs int) *dsm.System {
	sys, err := dsm.New(
		dsm.WithProcs(procs),
		dsm.WithSegmentBytes(dsm.PageSize),
		dsm.WithCollection(true),
	)
	if err != nil {
		log.Fatal(err)
	}
	return sys
}

func main() {
	// Case 1 — §2's useless-message example: p0 writes the top half of a
	// page, p1 the bottom half; p2 reads only the top half. The exchange
	// with p1 is pure false-sharing cost: two useless messages.
	res := newSystem(3).Run(func(p *dsm.Proc) {
		half := dsm.PageSize / dsm.WordSize / 2
		switch p.ID() {
		case 0:
			for w := 0; w < half; w++ {
				p.WriteF64(8*w, 1)
			}
		case 1:
			for w := half; w < 2*half; w++ {
				p.WriteF64(8*w, 2)
			}
		}
		p.Barrier()
		if p.ID() == 2 {
			for w := 0; w < half; w++ {
				p.ReadF64(8 * w)
			}
		}
		p.Barrier()
	})
	breakdown("write-write false sharing:", res)

	// Case 2 — §2's useless-data example: p0 writes the whole page, p1
	// reads half. The message is necessary (true sharing), but half the
	// diff is piggybacked useless data.
	res = newSystem(2).Run(func(p *dsm.Proc) {
		words := dsm.PageSize / dsm.WordSize
		if p.ID() == 0 {
			for w := 0; w < words; w++ {
				p.WriteF64(8*w, 3)
			}
		}
		p.Barrier()
		if p.ID() == 1 {
			for w := 0; w < words/2; w++ {
				p.ReadF64(8 * w)
			}
		}
		p.Barrier()
	})
	breakdown("false sharing + true sharing:", res)

	fmt.Println("\nThe paper's point: only the first pattern costs extra messages;")
	fmt.Println("the second only fattens messages that must travel anyway.")
}
