// netsweep runs one false-sharing-heavy kernel across every registered
// interconnect model — the paper's question turned around: instead of
// "how do unit sizes trade on 100 Mbps switched Ethernet", ask how the
// same program moves when the network is a contended shared medium
// (bus), the paper's switch with per-NIC occupancy, or a faster preset
// (atm, myrinet, 10gbe). The computed result is identical under every
// model; only the virtual clock moves.
//
// Run with: go run ./examples/netsweep
package main

import (
	"fmt"
	"log"

	dsm "repro"
)

const (
	words = 2048 // four pages of interleaved per-processor counters
	procs = 8
	iters = 3
)

func run(network string) *dsm.Result {
	sys, err := dsm.New(
		dsm.WithProcs(procs),
		dsm.WithSegmentBytes(words*8+8*dsm.PageSize),
		dsm.WithNetwork(network),
	)
	if err != nil {
		log.Fatal(err)
	}
	arr, err := sys.Alloc(words * 8)
	if err != nil {
		log.Fatal(err)
	}
	return sys.Run(func(p *dsm.Proc) {
		// Interleaved ownership: processor p writes words p, p+8,
		// p+16, … so every page has eight concurrent writers — the
		// false-sharing pattern that makes traffic, and therefore the
		// interconnect, matter.
		for it := 0; it < iters; it++ {
			for w := p.ID(); w < words; w += procs {
				p.WriteF64(arr+8*w, p.ReadF64(arr+8*w)+1)
			}
			p.Barrier()
		}
		var sum float64
		for w := 0; w < words; w++ {
			sum += p.ReadF64(arr + 8*w)
		}
		if want := float64(words * iters); sum != want {
			log.Fatalf("proc %d on %s: sum = %v, want %v", p.ID(), network, sum, want)
		}
		p.Barrier()
	})
}

func main() {
	fmt.Printf("%-10s %12s %12s %10s %12s\n",
		"network", "time (ms)", "queue (ms)", "messages", "KB on wire")
	for _, network := range dsm.Networks() {
		res := run(network)
		fmt.Printf("%-10s %12.2f %12.2f %10d %12.1f\n",
			network,
			float64(res.Time.Microseconds())/1000,
			float64(res.QueueDelay.Microseconds())/1000,
			res.Messages, float64(res.Bytes)/1024)
	}
	fmt.Println("\nEight writers per page means every barrier moves diffs from every")
	fmt.Println("processor: the bus serializes them (queue delay), the switch only")
	fmt.Println("queues them at shared NIC ports, and the faster presets shrink the")
	fmt.Println("whole exchange — same protocol work, different clock.")
}
