// Quickstart: the smallest complete DSM program — shared memory, a
// barrier, a lock, and the communication breakdown the library reports.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	dsm "repro"
)

func main() {
	sys, err := dsm.New(
		dsm.WithProcs(4),
		dsm.WithSegmentBytes(1<<20),
		dsm.WithLocks(1),
		dsm.WithCollection(true),
	)
	if err != nil {
		log.Fatal(err)
	}

	// One shared counter and one shared array of 1024 float64.
	counter, err := sys.Alloc(8)
	if err != nil {
		log.Fatal(err)
	}
	array, err := sys.Alloc(1024 * 8)
	if err != nil {
		log.Fatal(err)
	}

	res := sys.Run(func(p *dsm.Proc) {
		// Every processor increments the counter under the lock.
		for i := 0; i < 10; i++ {
			p.Lock(0)
			p.WriteI64(counter, p.ReadI64(counter)+1)
			p.Unlock(0)
		}
		p.Barrier()

		// Processor 0 fills the array; after the barrier everyone reads
		// it — watch the messages this costs.
		if p.ID() == 0 {
			for i := 0; i < 1024; i++ {
				p.WriteF64(array+8*i, float64(i)*0.5)
			}
		}
		p.Barrier()
		var sum float64
		for i := 0; i < 1024; i++ {
			sum += p.ReadF64(array + 8*i)
		}
		if p.ID() == 1 {
			fmt.Printf("processor 1 sees counter=%d, array sum=%.1f\n",
				p.ReadI64(counter), sum)
		}
		p.Barrier()
	})

	fmt.Printf("simulated time: %.3f ms\n", float64(res.Time.Microseconds())/1000)
	fmt.Printf("messages: %d total, %d useless\n",
		res.Stats.Messages.Total(), res.Stats.Messages.Useless)
	fmt.Printf("diff data: %d bytes useful, %d bytes useless\n",
		res.Stats.UsefulBytes, res.Stats.UselessBytes+res.Stats.PiggybackedBytes)
}
