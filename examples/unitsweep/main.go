// unitsweep runs a Jacobi-style stencil at every consistency-unit size
// and with dynamic aggregation, printing the paper's core trade-off: the
// aggregation win when granularity cooperates, and where false sharing
// starts to bite. Each configuration runs as three trials on one
// reusable System — bit-identical for this barrier program, as the
// min==mean column shows.
//
// Run with: go run ./examples/unitsweep
package main

import (
	"fmt"
	"log"

	dsm "repro"
)

const (
	rows   = 64
	cols   = 512 // one page per row
	iters  = 3
	procs  = 8
	trials = 3
)

func run(unit int, dynamic bool) *dsm.Trials {
	opts := []dsm.Option{
		dsm.WithProcs(procs),
		dsm.WithSegmentBytes(2*rows*cols*8 + dsm.PageSize*8),
		dsm.WithUnitPages(unit),
		dsm.WithCollection(true),
	}
	if dynamic {
		opts = append(opts, dsm.WithDynamicAggregation())
	}
	sys, err := dsm.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	a, err := sys.Alloc(rows * cols * 8)
	if err != nil {
		log.Fatal(err)
	}
	b, err := sys.Alloc(rows * cols * 8)
	if err != nil {
		log.Fatal(err)
	}
	at := func(base dsm.Addr, r, c int) dsm.Addr { return base + 8*(r*cols+c) }

	ts, err := sys.RunTrials(trials, func(p *dsm.Proc) {
		per := rows / procs
		lo, hi := p.ID()*per, (p.ID()+1)*per
		if p.ID() == 0 {
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					p.WriteF64(at(a, r, c), float64((r+c)%13))
				}
			}
		}
		p.Barrier()
		src, dst := a, b
		for it := 0; it < iters; it++ {
			for r := lo; r < hi; r++ {
				if r == 0 || r == rows-1 {
					continue
				}
				for c := 1; c < cols-1; c++ {
					v := 0.25 * (p.ReadF64(at(src, r-1, c)) + p.ReadF64(at(src, r+1, c)) +
						p.ReadF64(at(src, r, c-1)) + p.ReadF64(at(src, r, c+1)))
					p.WriteF64(at(dst, r, c), v)
				}
			}
			p.Barrier()
			src, dst = dst, src
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	return ts
}

func main() {
	fmt.Printf("%-18s %10s %10s %10s %12s %14s\n",
		"configuration", "min (ms)", "mean (ms)", "messages", "useless msgs", "useless bytes")
	type cfg struct {
		name    string
		unit    int
		dynamic bool
	}
	for _, c := range []cfg{
		{"4K (1 page)", 1, false},
		{"8K (2 pages)", 2, false},
		{"16K (4 pages)", 4, false},
		{"dynamic groups", 1, true},
	} {
		ts := run(c.unit, c.dynamic)
		st := ts.Trials[0].Stats
		fmt.Printf("%-18s %10.2f %10.2f %10d %12d %14d\n",
			c.name,
			float64(ts.MinTime.Microseconds())/1000,
			float64(ts.MeanTime.Microseconds())/1000,
			st.Messages.Total(), st.Messages.Useless,
			st.UselessBytes+st.PiggybackedBytes)
	}
	fmt.Println("\nRow == one page here, so 8K/16K units drag neighbouring rows along")
	fmt.Println("(useless bytes grow); dynamic aggregation gets the message savings")
	fmt.Println("without that cost after one observation interval.")
}
